package arc

// Random access: a ReaderAt decodes only the chunks covering a
// requested byte range instead of streaming the whole archive, using
// the container v2 footer index when present (see docs/CONTAINER.md)
// and a sequential header scan otherwise — v1 streams and
// index-destroyed v2 streams keep full random access, only opening
// costs more. Decoded chunks are kept in a bounded LRU cache, so
// repeated reads of a hot region skip the ECC decode entirely.

import (
	"io"
	"os"

	"repro/internal/core"
)

// RangeOptions tunes a ReaderAt.
type RangeOptions struct {
	// Workers bounds the per-chunk codec parallelism (<= 0 means 1).
	Workers int
	// Pipeline bounds how many chunks of a multi-chunk range are
	// loaded and repaired concurrently (<= 0 selects a default bounded
	// by the worker budget, as in StreamOptions).
	Pipeline int
	// CacheBytes is the decoded-chunk cache budget (<= 0 selects the
	// 64 MiB default).
	CacheBytes int64
}

// ReaderAt is random access over an ARC stream. It implements
// io.ReaderAt over the original (decoded, repaired) bytes and is safe
// for concurrent use.
type ReaderAt struct {
	rr *core.RangeReader
	f  *os.File // owned when opened via OpenFileReaderAt
}

// OpenReaderAt opens an ARC stream of the given size for random
// access. The caller keeps ownership of src, which must stay usable
// until Close.
func OpenReaderAt(src io.ReaderAt, size int64, opts RangeOptions) (*ReaderAt, error) {
	rr, err := core.OpenRangeReader(src, size, core.RangeOptions{
		Workers:    opts.Workers,
		Pipeline:   opts.Pipeline,
		CacheBytes: opts.CacheBytes,
	})
	if err != nil {
		return nil, err
	}
	return &ReaderAt{rr: rr}, nil
}

// OpenFileReaderAt opens the ARC stream at path for random access,
// owning the file handle: Close releases it.
func OpenFileReaderAt(path string, opts RangeOptions) (*ReaderAt, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		_ = f.Close() // error path: the stat error wins
		return nil, err
	}
	r, err := OpenReaderAt(f, fi.Size(), opts)
	if err != nil {
		_ = f.Close() // error path: the open error wins
		return nil, err
	}
	r.f = f
	return r, nil
}

// ReadRange reads n original bytes starting at first into dst,
// decoding (and repairing) only the chunks that cover the range. It
// returns the bytes written — always the leading contiguous prefix —
// and the repair statistics for chunk decodes this call performed
// (cache hits were repaired when first loaded and contribute nothing).
// A range extending past the end returns what exists with io.EOF.
func (r *ReaderAt) ReadRange(dst []byte, first, n int64) (int, StreamReport, error) {
	return r.rr.ReadRange(dst, first, n)
}

// ReadAt implements io.ReaderAt over the original bytes.
func (r *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	return r.rr.ReadAt(p, off)
}

// Size returns the total original bytes the stream reproduces.
func (r *ReaderAt) Size() int64 { return r.rr.Size() }

// Chunks returns the number of independently addressable chunks.
func (r *ReaderAt) Chunks() int { return r.rr.Chunks() }

// Indexed reports whether the v2 footer index was found and verified;
// false means the reader fell back to the sequential header scan.
func (r *ReaderAt) Indexed() bool { return r.rr.Indexed() }

// IndexReport returns the repairs the index applied to itself through
// its own ECC while opening (zero when unindexed or undamaged).
func (r *ReaderAt) IndexReport() Report { return r.rr.IndexReport() }

// Report returns repair statistics accumulated across every chunk this
// reader has decoded.
func (r *ReaderAt) Report() StreamReport { return r.rr.Report() }

// Close releases the reader (and the file handle, when the reader owns
// one). Concurrent reads parked on in-flight chunk loads are unblocked
// with an error. Close is idempotent.
func (r *ReaderAt) Close() error {
	err := r.rr.Close()
	if r.f != nil {
		cerr := r.f.Close()
		r.f = nil
		if err == nil {
			err = cerr
		}
	}
	return err
}
