package arc

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestEncodeDecodeFile(t *testing.T) {
	a := initTest(t, 1)
	dir := t.TempDir()
	src := filepath.Join(dir, "src.bin")
	enc := filepath.Join(dir, "enc.arc")
	dst := filepath.Join(dir, "dst.bin")
	data := make([]byte, 500<<10)
	rand.New(rand.NewSource(110)).Read(data)
	if err := os.WriteFile(src, data, 0o644); err != nil {
		t.Fatal(err)
	}
	choice, written, err := a.EncodeFile(src, enc, 0.2, AnyBW, AnyECC, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Overhead > 0.2 {
		t.Fatalf("choice overhead %.3f", choice.Overhead)
	}
	fi, err := os.Stat(enc)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != written {
		t.Fatalf("reported %d bytes, file has %d", written, fi.Size())
	}
	rep, err := DecodeFile(enc, dst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chunks != 4 {
		t.Fatalf("decoded %d chunks, want 4", rep.Chunks)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("file round trip mismatch")
	}
}

func TestDecodeFileRepairs(t *testing.T) {
	a := initTest(t, 1)
	dir := t.TempDir()
	src := filepath.Join(dir, "src.bin")
	enc := filepath.Join(dir, "enc.arc")
	dst := filepath.Join(dir, "dst.bin")
	data := make([]byte, 100<<10)
	rand.New(rand.NewSource(111)).Read(data)
	if err := os.WriteFile(src, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.EncodeFile(src, enc, AnyMem, AnyBW, WithErrorsPerMB(1), 32<<10); err != nil {
		t.Fatal(err)
	}
	// Flip a few bits on disk.
	buf, err := os.ReadFile(enc)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(112))
	for i := 0; i < 4; i++ {
		bit := rng.Intn(len(buf) * 8)
		buf[bit/8] ^= 0x80 >> (bit % 8)
	}
	if err := os.WriteFile(enc, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := DecodeFile(enc, dst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorrectedBlocks == 0 {
		t.Fatal("no repairs recorded")
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("repaired file mismatch")
	}
}

func TestEncodeFileMissingSource(t *testing.T) {
	a := initTest(t, 1)
	if _, _, err := a.EncodeFile("/nonexistent/file", filepath.Join(t.TempDir(), "x"), AnyMem, AnyBW, AnyECC, 0); err == nil {
		t.Fatal("missing source must fail")
	}
	if _, err := DecodeFile("/nonexistent/file", filepath.Join(t.TempDir(), "y"), 1); err == nil {
		t.Fatal("missing encoded file must fail")
	}
}

func TestEngineConcurrentUse(t *testing.T) {
	// The engine must be safe for concurrent Encode/Decode.
	a := initTest(t, 2)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			data := make([]byte, 20<<10)
			rng.Read(data)
			for i := 0; i < 5; i++ {
				enc, err := a.Encode(data, 0.3, AnyBW, AnyECC)
				if err != nil {
					done <- err
					return
				}
				dec, err := a.Decode(enc.Encoded)
				if err != nil {
					done <- err
					return
				}
				if !bytes.Equal(dec.Data, data) {
					done <- os.ErrInvalid
					return
				}
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
