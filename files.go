package arc

// File-level convenience API: protect and recover whole files without
// holding both the plain and encoded forms in memory at once (the
// streaming chunk format bounds the working set to one chunk per
// pipeline slot).

import (
	"fmt"
	"io"
	"os"
)

// EncodeFile protects the file at src, writing the ARC stream to dst.
// Constraints follow Encode; chunkSize <= 0 selects the default.
// It returns the configuration choice and the encoded size.
func (a *ARC) EncodeFile(src, dst string, mem, bw float64, res Resiliency, chunkSize int) (Choice, int64, error) {
	return a.EncodeFileWith(src, dst, mem, bw, res, StreamOptions{ChunkSize: chunkSize})
}

// EncodeFileWith is EncodeFile with explicit stream options (chunk
// size and encode pipelining). File archives are always written in
// container v2 — the footer index costs a few dozen bytes per chunk
// and buys ReaderAt random access — so opts.Indexed is forced on;
// callers needing a bare v1 stream can use NewWriterWith directly.
func (a *ARC) EncodeFileWith(src, dst string, mem, bw float64, res Resiliency, opts StreamOptions) (Choice, int64, error) {
	opts.Indexed = true
	in, err := os.Open(src)
	if err != nil {
		return Choice{}, 0, err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return Choice{}, 0, err
	}
	w, err := a.NewWriterWith(out, mem, bw, res, opts)
	if err != nil {
		_ = out.Close() // error path: the open error wins
		return Choice{}, 0, err
	}
	if _, err := io.Copy(w, in); err != nil {
		_ = w.Close()   // error path: join in-flight encodes
		_ = out.Close() // error path: the copy error wins
		return Choice{}, 0, fmt.Errorf("arc: encode %s: %w", src, err)
	}
	if err := w.Close(); err != nil {
		_ = out.Close() // error path: the close error wins
		return Choice{}, 0, err
	}
	if err := out.Close(); err != nil {
		return Choice{}, 0, err
	}
	return w.Choice(), w.BytesWritten(), nil
}

// DecodeFile verifies and repairs the ARC stream at src, writing the
// recovered payload to dst. The returned report aggregates repairs
// over all chunks. Uncorrectable damage aborts with an error after
// writing every chunk that preceded it.
func DecodeFile(src, dst string, workers int) (StreamReport, error) {
	return DecodeFileWith(src, dst, workers, StreamOptions{})
}

// DecodeFileWith is DecodeFile with explicit stream options (decode
// pipelining / read-ahead).
func DecodeFileWith(src, dst string, workers int, opts StreamOptions) (StreamReport, error) {
	in, err := os.Open(src)
	if err != nil {
		return StreamReport{}, err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return StreamReport{}, err
	}
	r := NewReaderWith(in, workers, opts)
	defer r.Close()
	_, cerr := io.Copy(out, r)
	if err := out.Close(); err != nil && cerr == nil {
		cerr = err
	}
	if cerr != nil {
		return r.Report(), fmt.Errorf("arc: decode %s: %w", src, cerr)
	}
	return r.Report(), nil
}
