package arc

// Seek benchmark: the cost of reading a small range out of a large v2
// archive, against the v1 answer of decoding the whole stream. The
// sub-benchmark names (full_seq, full_pipe, range_cold, range_warm)
// are a contract with `benchmeta seek`, which gates BENCH_seek.json on
// the cold range read beating the sequential full decode by >=20x and
// the cache-warm repeat beating the cold read by >=5x
// (docs/CONTAINER.md).

import (
	"bytes"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
)

const (
	seekArchiveSize = 64 << 20 // 64 MiB original, 1 MiB chunks
	seekChunkSize   = 1 << 20
	seekRangeOff    = 17<<20 + 100000 // mid-archive, not chunk-aligned
	seekRangeLen    = 300000          // ~0.45% of the archive, one chunk
)

// seekBench lazily builds the 64 MiB v2 archive once and shares it
// across all sub-benchmarks (encoding it dominates any single run).
var seekBench struct {
	once    sync.Once
	err     error
	encoded []byte
	want    []byte // plaintext of the benchmarked range
}

func seekArchive(b *testing.B) []byte {
	b.Helper()
	seekBench.once.Do(func() {
		data := make([]byte, seekArchiveSize)
		rand.New(rand.NewSource(41)).Read(data)
		seekBench.want = append([]byte(nil), data[seekRangeOff:seekRangeOff+seekRangeLen]...)
		var buf bytes.Buffer
		eng := &core.Engine{}
		choice := core.Choice{Config: core.Config{Method: SECDED, Param: 64}, Threads: 1}
		w, err := eng.NewChunkWriterChoice(&buf, choice, core.StreamOptions{
			ChunkSize: seekChunkSize,
			Pipeline:  runtime.GOMAXPROCS(0),
			Indexed:   true,
		})
		if err != nil {
			seekBench.err = err
			return
		}
		if _, err := w.Write(data); err != nil {
			seekBench.err = err
			return
		}
		if err := w.Close(); err != nil {
			seekBench.err = err
			return
		}
		seekBench.encoded = buf.Bytes()
	})
	if seekBench.err != nil {
		b.Fatal(seekBench.err)
	}
	return seekBench.encoded
}

func BenchmarkSeek(b *testing.B) {
	encoded := seekArchive(b)

	// The v1 answer: decode the whole stream to reach any byte of it.
	// Sequential is the gated baseline; the pipelined variant is
	// recorded alongside so the artifact shows the honest best case of
	// not having an index.
	for _, fv := range []struct {
		name     string
		pipeline int
	}{
		{"full_seq", 1},
		{"full_pipe", runtime.GOMAXPROCS(0)},
	} {
		b.Run(fv.name, func(b *testing.B) {
			b.SetBytes(seekArchiveSize)
			for i := 0; i < b.N; i++ {
				r := core.NewChunkReaderWith(bytes.NewReader(encoded), 1,
					core.StreamOptions{Pipeline: fv.pipeline})
				n, err := io.Copy(io.Discard, r)
				if err != nil {
					b.Fatal(err)
				}
				if n != seekArchiveSize {
					b.Fatalf("decoded %d bytes, want %d", n, seekArchiveSize)
				}
			}
		})
	}

	dst := make([]byte, seekRangeLen)
	checkRange := func(b *testing.B, r *ReaderAt) {
		b.Helper()
		got, _, err := r.ReadRange(dst, seekRangeOff, seekRangeLen)
		if err != nil {
			b.Fatal(err)
		}
		if got != seekRangeLen || !bytes.Equal(dst, seekBench.want) {
			b.Fatal("ranged bytes differ from the plaintext")
		}
	}

	// Cold: a fresh reader per iteration, so every op pays the trailer
	// read, the index decode, and the covering chunk's ECC decode.
	b.Run("range_cold", func(b *testing.B) {
		b.SetBytes(seekRangeLen)
		for i := 0; i < b.N; i++ {
			r, err := OpenReaderAt(bytes.NewReader(encoded), int64(len(encoded)), RangeOptions{})
			if err != nil {
				b.Fatal(err)
			}
			checkRange(b, r)
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Warm: one reader, range primed, so every op is a cache hit — the
	// steady state of a read-mostly consumer revisiting a hot region.
	b.Run("range_warm", func(b *testing.B) {
		r, err := OpenReaderAt(bytes.NewReader(encoded), int64(len(encoded)), RangeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		checkRange(b, r) // prime the decoded-chunk cache
		b.SetBytes(seekRangeLen)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			checkRange(b, r)
		}
	})
}
