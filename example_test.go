package arc_test

// Testable examples: these run under `go test` and render in godoc,
// so the documented usage can never silently rot.

import (
	"bytes"
	"fmt"
	"log"

	arc "repro"
)

// initExample builds a quiet engine for examples (tiny training
// sample, no cache writes).
func initExample() *arc.ARC {
	a, err := arc.InitWithOptions(1, arc.Options{CacheDir: "-", TrainSampleBytes: 16 << 10})
	if err != nil {
		log.Fatal(err)
	}
	return a
}

// Example shows the paper's Algorithm 1: four lines to protect and
// recover a byte stream.
func Example() {
	a := initExample()
	defer a.Close()

	data := bytes.Repeat([]byte("lossy compressed bytes "), 1000)
	enc, err := a.Encode(data, arc.AnyMem, arc.AnyBW, arc.AnyECC)
	if err != nil {
		log.Fatal(err)
	}

	enc.Encoded[5000] ^= 0x04 // a soft error strikes

	dec, err := a.Decode(enc.Encoded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered:", bytes.Equal(dec.Data, data))
	// Output: recovered: true
}

// ExampleARC_Encode demonstrates constraint-driven configuration
// choice: a 20% storage budget with burst protection selects a
// Reed-Solomon configuration.
func ExampleARC_Encode() {
	a := initExample()
	defer a.Close()

	data := make([]byte, 600<<10)
	enc, err := a.Encode(data, 0.2, arc.AnyBW, arc.WithCaps(arc.CorBurst))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("method:", enc.Choice.Config.Method)
	fmt.Println("within budget:", enc.Choice.Overhead <= 0.2)
	// Output:
	// method: ARC_RS
	// within budget: true
}

// ExampleWithErrorsPerMB shows the paper's Section 6.3 constraint: an
// expected rate of one error per MB selects SEC-DED over 8-byte
// blocks.
func ExampleWithErrorsPerMB() {
	a := initExample()
	defer a.Close()

	enc, err := a.Encode(make([]byte, 100<<10), arc.AnyMem, arc.AnyBW, arc.WithErrorsPerMB(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(enc.Choice.Config)
	// Output: secded64
}

// ExampleSecdedEncode exercises the Table-1 engine surface directly:
// SEC-DED protection without the container or optimizer.
func ExampleSecdedEncode() {
	data := []byte("eight-byte codewords protect this text")
	enc := arc.SecdedEncode(data, 64, 1)
	enc[3] ^= 0x20 // single-bit error
	got, rep, err := arc.SecdedDecode(enc, len(data), 64, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("corrected blocks:", rep.CorrectedBlocks)
	fmt.Println(string(got[:10]))
	// Output:
	// corrected blocks: 1
	// eight-byte
}

// ExampleARC_NewWriter streams data through chunked protection.
func ExampleARC_NewWriter() {
	a := initExample()
	defer a.Close()

	var protected bytes.Buffer
	w, err := a.NewWriter(&protected, arc.AnyMem, arc.AnyBW, arc.AnyECC, 16<<10)
	if err != nil {
		log.Fatal(err)
	}
	payload := bytes.Repeat([]byte{9}, 50<<10)
	if _, err := w.Write(payload); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	infos, err := arc.InspectStream(bytes.NewReader(protected.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("chunks:", len(infos))
	// Output: chunks: 4
}
