package arc

// End-to-end integration tests: the full pipeline the paper motivates —
// scientific field -> lossy compression -> ARC protection -> soft
// errors -> repair -> decompression -> bound verification — across
// every compressor mode and dataset.

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/pressio"
)

func TestFullPipelineAllModesAllDatasets(t *testing.T) {
	a := initTest(t, 1)
	rng := rand.New(rand.NewSource(90))
	for _, field := range datasets.StudyFields(1, 90) {
		for _, comp := range pressio.StudySet() {
			comp, field := comp, field
			t.Run(comp.Name()+"/"+field.Name, func(t *testing.T) {
				compressed, err := comp.Compress(field.Data, field.Dims)
				if err != nil {
					t.Fatal(err)
				}
				enc, err := a.Encode(compressed, AnyMem, AnyBW, WithErrorsPerMB(1))
				if err != nil {
					t.Fatal(err)
				}
				// Ten single-bit soft errors, one at a time.
				for trial := 0; trial < 10; trial++ {
					mut := append([]byte(nil), enc.Encoded...)
					bit := rng.Intn(len(mut) * 8)
					mut[bit/8] ^= 0x80 >> (bit % 8)
					dec, err := a.Decode(mut)
					if err != nil {
						t.Fatalf("trial %d: repair failed: %v", trial, err)
					}
					if !bytes.Equal(dec.Data, compressed) {
						t.Fatalf("trial %d: repaired stream differs", trial)
					}
				}
				// The repaired stream decompresses within bound.
				got, dims, err := comp.Decompress(compressed)
				if err != nil {
					t.Fatal(err)
				}
				if len(dims) != len(field.Dims) {
					t.Fatalf("dims %v", dims)
				}
				if comp.BoundsError() {
					if comp.Name() == "SZ-PWREL" {
						// Point-wise relative mode bounds |err|/|value|.
						for i := range field.Data {
							if field.Data[i] == 0 {
								continue
							}
							rel := abs(got[i]-field.Data[i]) / abs(field.Data[i])
							if rel > comp.Bound()*(1+1e-9) {
								t.Fatalf("relative bound violated at %d: %g", i, rel)
							}
						}
					} else if n := metrics.CountIncorrect(field.Data, got, comp.Bound()*(1+1e-9)); n != 0 {
						t.Fatalf("%d bound violations after protected round trip", n)
					}
				}
			})
		}
	}
}

func TestProtectionBeatsNoProtection(t *testing.T) {
	// The paper's core value proposition, quantified: with N flips,
	// unprotected streams frequently corrupt silently; ARC-protected
	// streams never do.
	a := initTest(t, 1)
	field := datasets.CESM(32, 64, 91)
	comp, err := pressio.New("SZ-ABS", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	compressed, err := comp.Compress(field.Data, field.Dims)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := a.Encode(compressed, AnyMem, AnyBW, WithErrorsPerMB(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(92))
	unprotectedSDC := 0
	protectedSDC := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		// Unprotected.
		mut := append([]byte(nil), compressed...)
		bit := rng.Intn(len(mut) * 8)
		mut[bit/8] ^= 0x80 >> (bit % 8)
		if got, _, err := comp.Decompress(mut); err == nil {
			if len(got) == len(field.Data) &&
				metrics.CountIncorrect(field.Data, got, 0.1*(1+1e-9)) > 0 {
				unprotectedSDC++
			}
		}
		// Protected.
		pmut := append([]byte(nil), enc.Encoded...)
		pbit := rng.Intn(len(pmut) * 8)
		pmut[pbit/8] ^= 0x80 >> (pbit % 8)
		dec, err := a.Decode(pmut)
		if err != nil || !bytes.Equal(dec.Data, compressed) {
			protectedSDC++
		}
	}
	if unprotectedSDC == 0 {
		t.Fatal("expected unprotected flips to cause SDC (the paper's premise)")
	}
	if protectedSDC != 0 {
		t.Fatalf("protected stream suffered %d failures; ARC must prevent all", protectedSDC)
	}
	t.Logf("unprotected: %d/%d trials ended in SDC; protected: 0/%d", unprotectedSDC, trials, trials)
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(4096)
		buf := make([]byte, n)
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: Decode panicked: %v", trial, r)
				}
			}()
			_, _ = Decode(buf, 1)
		}()
	}
}

func TestDecodeHeavilyCorruptedContainers(t *testing.T) {
	a := initTest(t, 1)
	data := make([]byte, 50_000)
	rand.New(rand.NewSource(94)).Read(data)
	enc, err := a.Encode(data, AnyMem, AnyBW, AnyECC)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(95))
	for trial := 0; trial < 100; trial++ {
		mut := append([]byte(nil), enc.Encoded...)
		// 1% of all bits flipped: far beyond any correction budget.
		nflips := len(mut) * 8 / 100
		for i := 0; i < nflips; i++ {
			bit := rng.Intn(len(mut) * 8)
			mut[bit/8] ^= 0x80 >> (bit % 8)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panicked: %v", trial, r)
				}
			}()
			_, _ = a.Decode(mut)
		}()
	}
}

func TestCrossEngineDecode(t *testing.T) {
	// Containers are self-describing: data encoded by one engine
	// decodes under another (or none).
	a1 := initTest(t, 2)
	a2 := initTest(t, 1)
	data := make([]byte, 20_000)
	rand.New(rand.NewSource(96)).Read(data)
	enc, err := a1.Encode(data, 0.2, AnyBW, AnyECC)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := a2.Decode(enc.Encoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Data, data) {
		t.Fatal("cross-engine decode mismatch")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
