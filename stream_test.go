package arc

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"repro/internal/ecc"
)

func TestStreamRoundTrip(t *testing.T) {
	a := initTest(t, 1)
	data := make([]byte, 300<<10)
	rand.New(rand.NewSource(70)).Read(data)

	var encoded bytes.Buffer
	w, err := a.NewWriter(&encoded, 0.2, AnyBW, AnyECC, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	// Write in odd-sized pieces to exercise buffering.
	for off := 0; off < len(data); {
		n := 7919
		if off+n > len(data) {
			n = len(data) - off
		}
		if _, err := w.Write(data[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.BytesWritten() != int64(encoded.Len()) {
		t.Fatalf("BytesWritten %d != buffer %d", w.BytesWritten(), encoded.Len())
	}

	r := NewReader(bytes.NewReader(encoded.Bytes()), 1)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stream round trip mismatch")
	}
	if rep := r.Report(); rep.Chunks != 5 { // 300 KiB / 64 KiB chunks
		t.Fatalf("read %d chunks, want 5", rep.Chunks)
	}
}

func TestStreamRepairsFlips(t *testing.T) {
	a := initTest(t, 1)
	data := make([]byte, 200<<10)
	rand.New(rand.NewSource(71)).Read(data)

	var encoded bytes.Buffer
	w, err := a.NewWriter(&encoded, AnyMem, AnyBW, WithErrorsPerMB(1), 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// One flip per chunk region.
	buf := encoded.Bytes()
	rng := rand.New(rand.NewSource(72))
	for i := 0; i < 6; i++ {
		bit := rng.Intn(len(buf) * 8)
		buf[bit/8] ^= 0x80 >> (bit % 8)
	}
	r := NewReader(bytes.NewReader(buf), 1)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("repaired stream mismatch")
	}
	if r.Report().CorrectedBlocks == 0 {
		t.Fatal("report shows no repairs")
	}
}

func TestStreamUncorrectableChunkStopsCleanly(t *testing.T) {
	a := initTest(t, 1)
	data := make([]byte, 128<<10)
	rand.New(rand.NewSource(73)).Read(data)
	var encoded bytes.Buffer
	w, err := a.NewWriter(&encoded, AnyMem, AnyBW, WithMethods(Parity), 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	buf := encoded.Bytes()
	// Corrupt the *second* chunk's payload (parity detects, cannot fix).
	chunkLen := len(buf) / 4
	buf[chunkLen+2000] ^= 0x01
	r := NewReader(bytes.NewReader(buf), 1)
	got := make([]byte, 0, len(data))
	tmp := make([]byte, 8192)
	var rerr error
	for {
		n, err := r.Read(tmp)
		got = append(got, tmp[:n]...)
		if err != nil {
			rerr = err
			break
		}
	}
	if !errors.Is(rerr, ecc.ErrUncorrectable) {
		t.Fatalf("want ErrUncorrectable, got %v", rerr)
	}
	// Everything before the bad chunk must have been delivered intact.
	if len(got) < 32<<10 {
		t.Fatalf("only %d bytes delivered before failure", len(got))
	}
	if !bytes.Equal(got[:32<<10], data[:32<<10]) {
		t.Fatal("first chunk corrupted")
	}
}

func TestStreamEmptyAndTruncated(t *testing.T) {
	// Empty stream: immediate EOF.
	r := NewReader(bytes.NewReader(nil), 1)
	if _, err := r.Read(make([]byte, 10)); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	// Truncated mid-header.
	r = NewReader(bytes.NewReader([]byte{1, 2, 3}), 1)
	if _, err := r.Read(make([]byte, 10)); err == nil || err == io.EOF {
		t.Fatalf("truncated header must be an error, got %v", err)
	}

	a := initTest(t, 1)
	var encoded bytes.Buffer
	w, err := a.NewWriter(&encoded, AnyMem, AnyBW, AnyECC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncated mid-payload.
	buf := encoded.Bytes()[:encoded.Len()-3]
	r = NewReader(bytes.NewReader(buf), 1)
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("truncated payload must error")
	}
}

func TestStreamWriteAfterClose(t *testing.T) {
	a := initTest(t, 1)
	var encoded bytes.Buffer
	w, err := a.NewWriter(&encoded, AnyMem, AnyBW, AnyECC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("write after close must fail")
	}
}

func TestStreamChoiceExposed(t *testing.T) {
	a := initTest(t, 1)
	var encoded bytes.Buffer
	w, err := a.NewWriter(&encoded, AnyMem, AnyBW, WithMethods(SECDED), 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Choice().Config.Method != SECDED {
		t.Fatalf("choice %v", w.Choice().Config)
	}
	_ = w.Close()
}

func TestStreamPipelinedMatchesSequential(t *testing.T) {
	a := initTest(t, 2)
	data := make([]byte, 150<<10+19)
	rand.New(rand.NewSource(80)).Read(data)

	encode := func(pipeline int) []byte {
		var buf bytes.Buffer
		w, err := a.NewWriterWith(&buf, 0.2, AnyBW, AnyECC,
			StreamOptions{ChunkSize: 16 << 10, Pipeline: pipeline})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	sequential := encode(1)
	pipelined := encode(4)
	if !bytes.Equal(sequential, pipelined) {
		t.Fatal("pipelined encode is not byte-identical to sequential")
	}

	r := NewReaderWith(bytes.NewReader(pipelined), 1, StreamOptions{Pipeline: 4})
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("pipelined stream round trip mismatch")
	}
	if rep := r.Report(); rep.Chunks != 10 { // ceil((150K+19)/16K)
		t.Fatalf("read %d chunks, want 10", rep.Chunks)
	}
}

func TestStreamPipelinedReaderCloseEarly(t *testing.T) {
	a := initTest(t, 1)
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(81)).Read(data)
	var encoded bytes.Buffer
	w, err := a.NewWriter(&encoded, AnyMem, AnyBW, AnyECC, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewReaderWith(bytes.NewReader(encoded.Bytes()), 1, StreamOptions{Pipeline: 4})
	head := make([]byte, 512)
	if _, err := io.ReadFull(r, head); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(head, data[:512]) {
		t.Fatal("head mismatch")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(head); err == nil {
		t.Fatal("read after Close must fail")
	}
}

func TestInspectStream(t *testing.T) {
	a := initTest(t, 1)
	data := make([]byte, 100<<10)
	rand.New(rand.NewSource(75)).Read(data)
	var encoded bytes.Buffer
	w, err := a.NewWriter(&encoded, 0.2, AnyBW, AnyECC, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	infos, err := InspectStream(bytes.NewReader(encoded.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 4 {
		t.Fatalf("inspected %d chunks, want 4", len(infos))
	}
	total := 0
	for _, ci := range infos {
		total += ci.OrigLen
		if ci.Config != w.Choice().Config {
			t.Fatalf("chunk config %s != %s", ci.Config, w.Choice().Config)
		}
	}
	if total != len(data) {
		t.Fatalf("original sizes sum to %d, want %d", total, len(data))
	}
	// Truncated stream: error after the chunks that parsed.
	if _, err := InspectStream(bytes.NewReader(encoded.Bytes()[:encoded.Len()-5])); err == nil {
		t.Fatal("truncated stream must error")
	}
	// Empty stream inspects to nothing.
	if infos, err := InspectStream(bytes.NewReader(nil)); err != nil || len(infos) != 0 {
		t.Fatal("empty stream must inspect cleanly")
	}
}
