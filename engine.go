package arc

// This file exposes the ARC Engine functions of the paper's Table 1:
// direct, constraint-free access to each ECC codec for developers who
// integrate ARC at a lower level (e.g. as the last stage of a lossy
// compression pipeline). Unlike ARC.Encode, these return raw ECC
// streams without the self-describing container, so callers must keep
// the original length (and parameters) themselves.

import (
	"repro/internal/ecc"
	"repro/internal/ecc/hamming"
	"repro/internal/ecc/parity"
	"repro/internal/ecc/reedsolomon"
	"repro/internal/ecc/secded"
)

// Report re-exports the decode report type.
type Report = ecc.Report

// ParityEncode (arc_parity_encode) protects data with one even parity
// bit per blockBytes of data.
func ParityEncode(data []byte, blockBytes, workers int) []byte {
	return parity.New(blockBytes, workers).Encode(data)
}

// ParityDecode (arc_parity_decode) verifies a parity stream. Parity
// detects but cannot correct: on any mismatch the data is returned
// together with an error wrapping ecc.ErrUncorrectable.
func ParityDecode(encoded []byte, origLen, blockBytes, workers int) ([]byte, Report, error) {
	return parity.New(blockBytes, workers).Decode(encoded, origLen)
}

// HammingEncode (arc_hamming_encode) protects data with Hamming
// codewords over dataBits-wide blocks (8 or 64).
func HammingEncode(data []byte, dataBits, workers int) []byte {
	return hamming.New(dataBits, workers).Encode(data)
}

// HammingDecode (arc_hamming_decode) corrects single-bit errors per
// codeword.
func HammingDecode(encoded []byte, origLen, dataBits, workers int) ([]byte, Report, error) {
	return hamming.New(dataBits, workers).Decode(encoded, origLen)
}

// SecdedEncode (arc_secded_encode) protects data with SEC-DED
// (extended Hamming) codewords over dataBits-wide blocks (8 or 64).
func SecdedEncode(data []byte, dataBits, workers int) []byte {
	return secded.New(dataBits, workers).Encode(data)
}

// SecdedDecode (arc_secded_decode) corrects single-bit and detects
// double-bit errors per codeword.
func SecdedDecode(encoded []byte, origLen, dataBits, workers int) ([]byte, Report, error) {
	return secded.New(dataBits, workers).Decode(encoded, origLen)
}

// ReedSolomonEncode (arc_reed_solomon_encode) stripes data over k data
// devices plus m code devices of deviceSize bytes each (deviceSize <= 0
// selects the default).
func ReedSolomonEncode(data []byte, k, m, deviceSize, workers int) ([]byte, error) {
	c, err := reedsolomon.New(k, m, deviceSize, workers)
	if err != nil {
		return nil, err
	}
	return c.Encode(data), nil
}

// ReedSolomonDecode (arc_reed_solomon_decode) locates corrupt devices
// via their checksums and rebuilds up to m of them per stripe.
func ReedSolomonDecode(encoded []byte, origLen, k, m, deviceSize, workers int) ([]byte, Report, error) {
	c, err := reedsolomon.New(k, m, deviceSize, workers)
	if err != nil {
		return nil, Report{}, err
	}
	return c.Decode(encoded, origLen)
}
