package faultinject

import (
	"fmt"
	"math/rand"
)

// Injector produces one corrupted copy of a buffer per trial. The
// fault-injection study uses single-bit flips (the dominant real-world
// fault, per Sridharan et al.); the resiliency evaluation also needs
// multi-bit and burst patterns.
type Injector interface {
	Name() string
	// Inject returns a corrupted copy of buf (never modifying buf).
	Inject(buf []byte, rng *rand.Rand) []byte
}

// SingleBit flips one uniformly random bit — the classic soft error.
type SingleBit struct{}

// Name implements Injector.
func (SingleBit) Name() string { return "single-bit" }

// Inject implements Injector.
func (SingleBit) Inject(buf []byte, rng *rand.Rand) []byte {
	mut := append([]byte(nil), buf...)
	if len(mut) > 0 {
		FlipBitInPlace(mut, rng.Intn(len(mut)*8))
	}
	return mut
}

// MultiBit flips K uniformly random bits (sparse multi-bit fault).
type MultiBit struct{ K int }

// Name implements Injector.
func (m MultiBit) Name() string { return fmt.Sprintf("multi-bit-%d", m.K) }

// Inject implements Injector.
func (m MultiBit) Inject(buf []byte, rng *rand.Rand) []byte {
	mut := append([]byte(nil), buf...)
	if len(mut) == 0 {
		return mut
	}
	for i := 0; i < m.K; i++ {
		FlipBitInPlace(mut, rng.Intn(len(mut)*8))
	}
	return mut
}

// Burst corrupts Bytes consecutive bytes starting at a random offset —
// the within-one-DRAM-device pattern Sridharan et al. report dominating
// Cielo's multi-bit faults.
type Burst struct{ Bytes int }

// Name implements Injector.
func (b Burst) Name() string { return fmt.Sprintf("burst-%dB", b.Bytes) }

// Inject implements Injector.
func (b Burst) Inject(buf []byte, rng *rand.Rand) []byte {
	mut := append([]byte(nil), buf...)
	n := b.Bytes
	if n > len(mut) {
		n = len(mut)
	}
	if n == 0 {
		return mut
	}
	off := rng.Intn(len(mut) - n + 1)
	for i := 0; i < n; i++ {
		// Guarantee each byte actually changes.
		mut[off+i] ^= byte(1 + rng.Intn(255))
	}
	return mut
}

// RegionBurst is Burst restricted to offsets in [Lo, Hi) — useful for
// keeping bursts out of (or inside) a container header.
type RegionBurst struct {
	Bytes  int
	Lo, Hi int
}

// Name implements Injector.
func (b RegionBurst) Name() string { return fmt.Sprintf("burst-%dB@[%d,%d)", b.Bytes, b.Lo, b.Hi) }

// Inject implements Injector.
func (b RegionBurst) Inject(buf []byte, rng *rand.Rand) []byte {
	mut := append([]byte(nil), buf...)
	lo, hi := b.Lo, b.Hi
	if hi > len(mut) {
		hi = len(mut)
	}
	if lo < 0 {
		lo = 0
	}
	n := b.Bytes
	if lo >= hi || n <= 0 {
		return mut
	}
	if n > hi-lo {
		n = hi - lo
	}
	off := lo + rng.Intn(hi-lo-n+1)
	for i := 0; i < n; i++ {
		mut[off+i] ^= byte(1 + rng.Intn(255))
	}
	return mut
}

// InjectionTrial is the outcome of one injector-driven repair trial.
type InjectionTrial struct {
	Recovered bool
	Detected  bool
}

// RepairFunc attempts to verify/repair a corrupted buffer, returning
// the recovered payload (or best effort) and an error when damage was
// detected but not correctable.
type RepairFunc func(mut []byte) (recovered []byte, err error)

// RunRepairCampaign drives an injector against a protected buffer:
// for each trial the buffer is corrupted, repaired, and compared to
// the expected payload. It returns the recovery and detection rates.
func RunRepairCampaign(protected, expect []byte, inj Injector, repair RepairFunc, trials int, seed int64) (recovered, detectedButLost, silentCorruption int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < trials; i++ {
		mut := inj.Inject(protected, rng)
		got, err := repair(mut)
		switch {
		case err == nil && equalBytes(got, expect):
			recovered++
		case err != nil:
			detectedButLost++
		default:
			silentCorruption++
		}
	}
	return recovered, detectedButLost, silentCorruption
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
