package faultinject

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestSingleBitInjector(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 100)
	mut := SingleBit{}.Inject(buf, rng)
	if bytes.Equal(mut, buf) {
		t.Fatal("must flip something")
	}
	diff := 0
	for i := range buf {
		if mut[i] != buf[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want 1", diff)
	}
	if (SingleBit{}).Name() != "single-bit" {
		t.Fatal("name")
	}
}

func TestMultiBitInjector(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	buf := make([]byte, 1000)
	mut := MultiBit{K: 5}.Inject(buf, rng)
	flips := 0
	for i := range buf {
		for b := 0; b < 8; b++ {
			if (mut[i]^buf[i])>>b&1 == 1 {
				flips++
			}
		}
	}
	// Collisions can cancel, so flips <= 5 and odd/even parity matches.
	if flips == 0 || flips > 5 {
		t.Fatalf("%d net flips for K=5", flips)
	}
	if (MultiBit{K: 3}).Name() != "multi-bit-3" {
		t.Fatal("name")
	}
}

func TestBurstInjector(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	buf := make([]byte, 256)
	mut := Burst{Bytes: 16}.Inject(buf, rng)
	// Changed region must be exactly 16 consecutive bytes.
	first, last := -1, -1
	for i := range buf {
		if mut[i] != buf[i] {
			if first == -1 {
				first = i
			}
			last = i
		}
	}
	if first == -1 || last-first != 15 {
		t.Fatalf("burst span [%d,%d]", first, last)
	}
	for i := first; i <= last; i++ {
		if mut[i] == buf[i] {
			t.Fatal("burst must change every byte in its span")
		}
	}
	// Burst longer than the buffer clamps.
	small := Burst{Bytes: 99}.Inject([]byte{1, 2}, rng)
	if len(small) != 2 {
		t.Fatal("clamp failed")
	}
}

func TestRegionBurstStaysInRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	buf := make([]byte, 300)
	for trial := 0; trial < 50; trial++ {
		mut := RegionBurst{Bytes: 8, Lo: 100, Hi: 200}.Inject(buf, rng)
		for i := range buf {
			if mut[i] != buf[i] && (i < 100 || i >= 200) {
				t.Fatalf("burst escaped region at %d", i)
			}
		}
	}
}

func TestInjectorsNeverMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	buf := make([]byte, 64)
	snapshot := append([]byte(nil), buf...)
	for _, inj := range []Injector{SingleBit{}, MultiBit{K: 4}, Burst{Bytes: 8}, RegionBurst{Bytes: 4, Lo: 0, Hi: 64}} {
		inj.Inject(buf, rng)
		if !bytes.Equal(buf, snapshot) {
			t.Fatalf("%s mutated its input", inj.Name())
		}
	}
}

func TestRunRepairCampaign(t *testing.T) {
	expect := []byte("payload")
	protected := append([]byte("protected:"), expect...)
	// A fake repair that succeeds when the prefix is intact, errors
	// when the first byte changed, and silently corrupts otherwise.
	repair := func(mut []byte) ([]byte, error) {
		if mut[0] != 'p' {
			return nil, errors.New("detected")
		}
		return mut[10:], nil
	}
	rec, det, silent := RunRepairCampaign(protected, expect, SingleBit{}, repair, 200, 6)
	if rec+det+silent != 200 {
		t.Fatal("trials must sum")
	}
	if rec == 0 || silent == 0 {
		t.Fatalf("expected a mix, got rec=%d det=%d silent=%d", rec, det, silent)
	}
}
