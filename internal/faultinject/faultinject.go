// Package faultinject implements the paper's fault-injection study
// harness (Section 4): it flips single bits in lossy-compressed data
// held in memory, attempts decompression in a sandbox, classifies the
// outcome into the paper's four return statuses, and computes the
// data-integrity metrics of every trial that completes.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/pressio"
)

// Status classifies a trial's return status (Section 4.2).
type Status int

const (
	// Completed: decompression succeeded with the error present — the
	// dangerous case, since downstream use propagates the corruption.
	Completed Status = iota
	// CompressorException: the compressor detected the damage and
	// returned an error.
	CompressorException
	// Terminated: the decompressor crashed (panicked).
	Terminated
	// Timeout: decompression exceeded the trial's time budget
	// (3x the average clean decompression time, per the paper).
	Timeout
)

var statusNames = [...]string{"Completed", "Compressor Exception", "Terminated", "Timeout"}

// String implements fmt.Stringer.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Statuses lists all statuses in display order.
func Statuses() []Status {
	return []Status{Completed, CompressorException, Terminated, Timeout}
}

// FlipBit returns a copy of buf with bit i (MSB-first within bytes)
// flipped. It panics if i is out of range.
func FlipBit(buf []byte, i int) []byte {
	if i < 0 || i >= len(buf)*8 {
		panic(fmt.Sprintf("faultinject: bit %d out of range [0,%d)", i, len(buf)*8))
	}
	mut := make([]byte, len(buf))
	copy(mut, buf)
	mut[i/8] ^= 0x80 >> (i % 8)
	return mut
}

// FlipBitInPlace flips bit i of buf directly.
func FlipBitInPlace(buf []byte, i int) {
	buf[i/8] ^= 0x80 >> (i % 8)
}

// decodeResult carries the sandboxed decompression outcome.
type decodeResult struct {
	data     []float64
	err      error
	panicked interface{}
	timedOut bool
	elapsed  time.Duration
}

// sandboxDecode runs the decompression with panic capture and a wall
// clock budget. A budget of 0 disables the timeout.
func sandboxDecode(c pressio.Compressor, buf []byte, budget time.Duration) decodeResult {
	done := make(chan decodeResult, 1)
	go func() {
		var res decodeResult
		start := time.Now()
		defer func() {
			if r := recover(); r != nil {
				res.panicked = r
				res.elapsed = time.Since(start)
			}
			done <- res
		}()
		data, _, err := c.Decompress(buf)
		res.data, res.err, res.elapsed = data, err, time.Since(start)
	}()
	if budget <= 0 {
		return <-done
	}
	select {
	case res := <-done:
		return res
	case <-time.After(budget):
		return decodeResult{timedOut: true, elapsed: budget}
	}
}

// TrialResult records one fault-injection trial.
type TrialResult struct {
	Bit    int
	Status Status
	// Metrics is valid only for Completed trials.
	Metrics metrics.Summary
	// BandwidthMBs is the decompression bandwidth (original MB /
	// decode seconds) of the trial.
	BandwidthMBs float64
	Elapsed      time.Duration
}

// Config parameterizes a fault-injection campaign.
type Config struct {
	Compressor pressio.Compressor
	Data       []float64
	Dims       []int
	// SampleFraction selects the uniform fraction of compressed bits
	// to test, e.g. 0.01 for 1% (the paper scales this by dataset
	// size). Values >= 1 test every bit.
	SampleFraction float64
	// MaxTrials caps the number of trials regardless of fraction
	// (0 = no cap).
	MaxTrials int
	Seed      int64
	// TimeoutFactor scales the average clean decode time into the
	// trial budget (paper: 3.0). 0 defaults to 3.
	TimeoutFactor float64
	// Workers runs trials concurrently.
	Workers int
}

// Campaign is the result of a fault-injection study on one
// compressor/dataset configuration.
type Campaign struct {
	CompressorName string
	CompressedSize int
	OriginalSize   int
	Ratio          float64
	// Bound is the per-value error bound used for incorrect-element
	// accounting (for non-bounding modes, the control decode's maximum
	// absolute difference serves as the de facto bound).
	Bound float64
	// Control metrics from decoding the uncorrupted stream.
	Control      metrics.Summary
	ControlBWMBs float64
	Trials       []TrialResult
}

// Counts tallies trials by status.
func (c *Campaign) Counts() map[Status]int {
	m := make(map[Status]int, 4)
	for _, t := range c.Trials {
		m[t.Status]++
	}
	return m
}

// PercentByStatus returns the percentage of trials with the status.
func (c *Campaign) PercentByStatus(s Status) float64 {
	if len(c.Trials) == 0 {
		return 0
	}
	return 100 * float64(c.Counts()[s]) / float64(len(c.Trials))
}

// CompletedStats aggregates the percent-incorrect distribution over
// Completed trials: mean, min, max.
func (c *Campaign) CompletedStats() (mean, lo, hi float64, n int) {
	lo = 101
	for _, t := range c.Trials {
		if t.Status != Completed {
			continue
		}
		p := t.Metrics.PercentIncorrect
		mean += p
		lo = min(lo, p)
		hi = max(hi, p)
		n++
	}
	if n == 0 {
		return 0, 0, 0, 0
	}
	mean /= float64(n)
	return mean, lo, hi, n
}

// Run executes the campaign: compress once, measure the control
// decode, then flip each sampled bit and classify the outcome.
func Run(cfg Config) (*Campaign, error) {
	c := cfg.Compressor
	buf, err := c.Compress(cfg.Data, cfg.Dims)
	if err != nil {
		return nil, fmt.Errorf("faultinject: compress: %w", err)
	}
	camp := &Campaign{
		CompressorName: c.Name(),
		CompressedSize: len(buf),
		OriginalSize:   len(cfg.Data) * 8,
		Ratio:          float64(len(cfg.Data)*8) / float64(len(buf)),
	}

	// Control decode: averages over three runs set the timeout budget.
	var controlTime time.Duration
	var control []float64
	for i := 0; i < 3; i++ {
		res := sandboxDecode(c, buf, 0)
		if res.err != nil || res.panicked != nil {
			return nil, fmt.Errorf("faultinject: control decode failed: %v %v", res.err, res.panicked)
		}
		control = res.data
		controlTime += res.elapsed
	}
	controlTime /= 3
	camp.ControlBWMBs = mbPerSec(camp.OriginalSize, controlTime)

	// Error bound for incorrect-element accounting.
	if c.BoundsError() {
		camp.Bound = c.Bound()
	} else {
		camp.Bound = metrics.MaxDiff(cfg.Data, control)
	}
	camp.Control = metrics.Evaluate(cfg.Data, control, camp.Bound)

	tf := cfg.TimeoutFactor
	if tf <= 0 {
		tf = 3
	}
	budget := time.Duration(float64(controlTime) * tf)
	if budget < 10*time.Millisecond {
		budget = 10 * time.Millisecond // floor for timer resolution
	}

	bits := sampleBits(len(buf)*8, cfg.SampleFraction, cfg.MaxTrials, cfg.Seed)
	camp.Trials = make([]TrialResult, len(bits))
	parallel.For(len(bits), cfg.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			camp.Trials[i] = runTrial(c, buf, bits[i], cfg.Data, camp.Bound, budget, camp.OriginalSize)
		}
	})
	return camp, nil
}

func runTrial(c pressio.Compressor, buf []byte, bit int, orig []float64, bound float64, budget time.Duration, origSize int) TrialResult {
	mut := FlipBit(buf, bit)
	res := sandboxDecode(c, mut, budget)
	tr := TrialResult{Bit: bit, Elapsed: res.elapsed}
	switch {
	case res.timedOut:
		tr.Status = Timeout
		tr.Elapsed = budget
	case res.panicked != nil:
		tr.Status = Terminated
	case res.err != nil:
		tr.Status = CompressorException
	case len(res.data) != len(orig):
		// Wrong shape decodes cannot be compared pointwise; the
		// consumer would still notice, so treat as an exception.
		tr.Status = CompressorException
	default:
		tr.Status = Completed
		tr.Metrics = metrics.Evaluate(orig, res.data, bound)
		tr.BandwidthMBs = mbPerSec(origSize, res.elapsed)
	}
	return tr
}

// sampleBits picks a uniform sample of bit positions.
func sampleBits(totalBits int, fraction float64, maxTrials int, seed int64) []int {
	if totalBits <= 0 {
		return nil
	}
	n := totalBits
	if fraction > 0 && fraction < 1 {
		n = int(float64(totalBits) * fraction)
		if n < 1 {
			n = 1
		}
	}
	if maxTrials > 0 && n > maxTrials {
		n = maxTrials
	}
	if n >= totalBits {
		bits := make([]int, totalBits)
		for i := range bits {
			bits[i] = i
		}
		return bits
	}
	// Uniform stratified sampling: one bit per equal-width stratum,
	// jittered — matches the paper's "uniform sampling approach" while
	// covering the whole stream.
	rng := rand.New(rand.NewSource(seed))
	bits := make([]int, 0, n)
	stride := float64(totalBits) / float64(n)
	for i := 0; i < n; i++ {
		lo := int(float64(i) * stride)
		hi := int(float64(i+1) * stride)
		if hi <= lo {
			hi = lo + 1
		}
		b := lo + rng.Intn(hi-lo)
		if b >= totalBits {
			b = totalBits - 1
		}
		bits = append(bits, b)
	}
	sort.Ints(bits)
	return bits
}

func mbPerSec(bytes int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / d.Seconds()
}
