package faultinject

import (
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/pressio"
)

func TestFlipBit(t *testing.T) {
	buf := []byte{0x00, 0xFF}
	m := FlipBit(buf, 0)
	if m[0] != 0x80 {
		t.Fatalf("bit 0 flip: %#x", m[0])
	}
	if buf[0] != 0x00 {
		t.Fatal("FlipBit must not modify its input")
	}
	m = FlipBit(buf, 15)
	if m[1] != 0xFE {
		t.Fatalf("bit 15 flip: %#x", m[1])
	}
	// Double flip restores.
	m2 := FlipBit(FlipBit(buf, 7), 7)
	if m2[0] != buf[0] || m2[1] != buf[1] {
		t.Fatal("double flip must restore")
	}
}

func TestFlipBitOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out of range flip must panic")
		}
	}()
	FlipBit([]byte{0}, 8)
}

func TestFlipBitInPlace(t *testing.T) {
	buf := []byte{0}
	FlipBitInPlace(buf, 3)
	if buf[0] != 0x10 {
		t.Fatalf("got %#x", buf[0])
	}
}

func TestSampleBits(t *testing.T) {
	bits := sampleBits(1000, 0.1, 0, 1)
	if len(bits) != 100 {
		t.Fatalf("sampled %d bits, want 100", len(bits))
	}
	for i := 1; i < len(bits); i++ {
		if bits[i] <= bits[i-1] {
			t.Fatal("samples must be strictly increasing (stratified)")
		}
	}
	if bits[0] >= 100 || bits[len(bits)-1] < 900 {
		t.Fatal("stratified sampling must cover the whole stream")
	}
	// Full coverage.
	all := sampleBits(64, 1.0, 0, 1)
	if len(all) != 64 {
		t.Fatalf("fraction 1 must test every bit, got %d", len(all))
	}
	// Cap.
	capped := sampleBits(1000, 1.0, 50, 1)
	if len(capped) != 50 {
		t.Fatalf("MaxTrials cap failed: %d", len(capped))
	}
	if sampleBits(0, 1, 0, 1) != nil {
		t.Fatal("zero-length stream must sample nothing")
	}
}

func TestStatusString(t *testing.T) {
	want := map[Status]string{
		Completed:           "Completed",
		CompressorException: "Compressor Exception",
		Terminated:          "Terminated",
		Timeout:             "Timeout",
	}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("%d: %q", s, s.String())
		}
	}
	if len(Statuses()) != 4 {
		t.Fatal("Statuses must list all four")
	}
}

func TestCampaignSZ(t *testing.T) {
	f := datasets.CESM(32, 64, 9)
	c, err := pressio.New("SZ-ABS", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := Run(Config{
		Compressor:     c,
		Data:           f.Data,
		Dims:           f.Dims,
		SampleFraction: 1,
		MaxTrials:      300,
		Seed:           1,
		Workers:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Trials) != 300 {
		t.Fatalf("ran %d trials", len(camp.Trials))
	}
	counts := camp.Counts()
	if counts[Completed] == 0 {
		t.Fatal("expected some Completed trials (the paper's SDC case)")
	}
	if counts[Completed] == len(camp.Trials) {
		t.Log("note: all trials completed; SZ streams usually throw some exceptions")
	}
	// Control decode must be clean.
	if camp.Control.IncorrectElements != 0 {
		t.Fatalf("control decode has %d incorrect elements", camp.Control.IncorrectElements)
	}
	if camp.Ratio <= 1 {
		t.Fatalf("compression ratio %.2f", camp.Ratio)
	}
	mean, _, worst, n := camp.CompletedStats()
	if n == 0 {
		t.Fatal("no completed trials in stats")
	}
	t.Logf("SZ-ABS: %d trials, %.1f%% completed, mean incorrect %.2f%%, max %.2f%%",
		len(camp.Trials), camp.PercentByStatus(Completed), mean, worst)
}

func TestCampaignZFPRateAllComplete(t *testing.T) {
	f := datasets.CESM(32, 64, 10)
	c, err := pressio.New("ZFP-Rate", 8)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := Run(Config{
		Compressor:     c,
		Data:           f.Data,
		Dims:           f.Dims,
		SampleFraction: 1,
		MaxTrials:      200,
		Seed:           2,
		Workers:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 100% of ZFP trials Completed. Header flips in our stream
	// can raise exceptions (the real study flips payload too), so only
	// require a dominant majority with zero crashes.
	if pc := camp.PercentByStatus(Completed); pc < 90 {
		t.Fatalf("ZFP-Rate completed only %.1f%%, want ~100%%", pc)
	}
	if camp.Counts()[Terminated] != 0 {
		t.Fatal("ZFP-Rate must never crash")
	}
	// Corruption stays within one block: incorrect counts tiny.
	for _, tr := range camp.Trials {
		if tr.Status == Completed && tr.Metrics.IncorrectElements > 16 {
			t.Fatalf("bit %d corrupted %d elements, want <= 16", tr.Bit, tr.Metrics.IncorrectElements)
		}
	}
}

func TestTimeoutClassification(t *testing.T) {
	// A compressor whose decode hangs must be classified Timeout.
	c := hangingCompressor{}
	res := sandboxDecode(c, []byte{1}, 30*time.Millisecond)
	if !res.timedOut {
		t.Fatal("expected timeout")
	}
}

func TestTerminatedClassification(t *testing.T) {
	c := panickyCompressor{}
	res := sandboxDecode(c, []byte{1}, 0)
	if res.panicked == nil {
		t.Fatal("expected panic capture")
	}
}

type hangingCompressor struct{}

func (hangingCompressor) Name() string { return "hang" }
func (hangingCompressor) Compress(d []float64, dims []int) ([]byte, error) {
	return []byte{1}, nil
}
func (hangingCompressor) Decompress(buf []byte) ([]float64, []int, error) {
	time.Sleep(10 * time.Second)
	return nil, nil, nil
}
func (hangingCompressor) Bound() float64                         { return 0.1 }
func (hangingCompressor) BoundsError() bool                      { return true }
func (hangingCompressor) WithBound(b float64) pressio.Compressor { return hangingCompressor{} }

type panickyCompressor struct{}

func (panickyCompressor) Name() string { return "panic" }
func (panickyCompressor) Compress(d []float64, dims []int) ([]byte, error) {
	return []byte{1}, nil
}
func (panickyCompressor) Decompress(buf []byte) ([]float64, []int, error) {
	panic("simulated crash")
}
func (panickyCompressor) Bound() float64                         { return 0.1 }
func (panickyCompressor) BoundsError() bool                      { return true }
func (panickyCompressor) WithBound(b float64) pressio.Compressor { return panickyCompressor{} }
