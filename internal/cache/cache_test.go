package cache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetOrLoadHitMiss(t *testing.T) {
	c := New(1 << 20)
	loads := 0
	load := func() ([]byte, error) { loads++; return []byte("chunk-0"), nil }

	k := Key{Archive: 1, Chunk: 0}
	v, err := c.GetOrLoad(k, load)
	if err != nil || string(v) != "chunk-0" {
		t.Fatalf("first GetOrLoad = %q, %v", v, err)
	}
	v, err = c.GetOrLoad(k, func() ([]byte, error) { t.Fatal("loaded twice"); return nil, nil })
	if err != nil || string(v) != "chunk-0" {
		t.Fatalf("second GetOrLoad = %q, %v", v, err)
	}
	if loads != 1 {
		t.Fatalf("loads = %d, want 1", loads)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 7 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BudgetBytes != 1<<20 {
		t.Fatalf("budget = %d, want %d", st.BudgetBytes, 1<<20)
	}
}

func TestLoadErrorNotCached(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	k := Key{Archive: 3, Chunk: 9}
	if _, err := c.GetOrLoad(k, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("error load = %v, want boom", err)
	}
	// The failure must not poison the key: the next load runs and wins.
	v, err := c.GetOrLoad(k, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(v) != "ok" {
		t.Fatalf("retry = %q, %v", v, err)
	}
	if st := c.Stats(); st.Entries != 1 || st.Misses != 2 {
		t.Fatalf("stats after retry = %+v", st)
	}
}

func TestEvictionUnderBudget(t *testing.T) {
	// A tiny budget forces every insert to evict its predecessors.
	c := New(shardCount * 16) // 16 bytes per shard
	val := bytes.Repeat([]byte{0xAB}, 12)
	// Same archive, consecutive chunks; keys spread across shards, so
	// drive enough of them through that some shard sees two inserts.
	for i := int64(0); i < 64; i++ {
		if _, err := c.GetOrLoad(Key{Archive: 7, Chunk: i}, func() ([]byte, error) { return val, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after 64 oversized inserts: %+v", st)
	}
	if st.Bytes > int64(shardCount*16+len(val)*shardCount) {
		t.Fatalf("resident bytes %d exceed budget slack: %+v", st.Bytes, st)
	}
	// The most recent entry in its shard always survives.
	hit := false
	if _, err := c.GetOrLoad(Key{Archive: 7, Chunk: 63}, func() ([]byte, error) {
		return val, nil
	}); err != nil {
		t.Fatal(err)
	}
	hit = c.Stats().Hits > 0
	if !hit {
		t.Fatalf("most recent entry was evicted: %+v", c.Stats())
	}
}

func TestSingleFlightConcurrent(t *testing.T) {
	c := New(1 << 20)
	var loads atomic.Int64
	release := make(chan struct{})
	k := Key{Archive: 5, Chunk: 5}

	const callers = 16
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.GetOrLoad(k, func() ([]byte, error) {
				loads.Add(1)
				<-release
				return []byte("slow"), nil
			})
		}(i)
	}
	close(release)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("load ran %d times, want 1", n)
	}
	for i := range results {
		if errs[i] != nil || string(results[i]) != "slow" {
			t.Fatalf("caller %d got %q, %v", i, results[i], errs[i])
		}
	}
}

func TestCloseUnblocksFollowers(t *testing.T) {
	c := New(1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	k := Key{Archive: 9, Chunk: 1}

	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.GetOrLoad(k, func() ([]byte, error) {
			close(started)
			<-release
			return []byte("late"), nil
		})
		leaderDone <- err
	}()
	<-started

	followerDone := make(chan error, 1)
	go func() {
		_, err := c.GetOrLoad(k, func() ([]byte, error) { return nil, errors.New("follower must not load") })
		followerDone <- err
	}()

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-followerDone; !errors.Is(err, ErrClosed) {
		t.Fatalf("follower err = %v, want ErrClosed", err)
	}
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v, want nil (its own load completed)", err)
	}
	// Post-close lookups refuse rather than repopulate.
	if _, err := c.GetOrLoad(k, func() ([]byte, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close GetOrLoad err = %v, want ErrClosed", err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("closed cache still resident: %+v", st)
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New(4 << 10) // small enough to churn
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{Archive: uint64(g % 3), Chunk: int64(i % 17)}
				want := fmt.Sprintf("a%d-c%d", k.Archive, k.Chunk)
				v, err := c.GetOrLoad(k, func() ([]byte, error) { return []byte(want), nil })
				if err != nil {
					t.Error(err)
					return
				}
				if string(v) != want {
					t.Errorf("key %+v returned %q, want %q", k, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Fatalf("hits+misses = %d, want %d (%+v)", st.Hits+st.Misses, 8*200, st)
	}
}
