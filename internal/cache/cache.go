// Package cache provides the decoded-chunk cache behind ARC's range
// reads: a sharded, mutex-striped LRU keyed by (archive, chunk) with a
// byte-size budget, single-flight loading so concurrent readers of one
// chunk decode it once, and hit/miss/eviction counters exported as a
// metrics.CacheStats for the arcd STATS endpoint.
//
// Values are immutable once inserted: readers receive the cached slice
// directly and must not write through it. Eviction only drops the
// cache's reference, so a slice handed out before an eviction stays
// valid for its holder — there is no recycling and therefore no
// use-after-evict hazard.
package cache

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Key identifies one cached chunk: the archive it belongs to (callers
// sharing one Cache across archives allocate distinct Archive ids) and
// the chunk ordinal within it.
type Key struct {
	Archive uint64
	Chunk   int64
}

// shardCount is the number of independent LRU shards. Striping the
// mutex keeps concurrent readers of different chunks off each other's
// locks; 16 shards cover the worker counts the range decoder runs.
const shardCount = 16

// DefaultBudgetBytes is the cache budget when the caller passes <= 0.
const DefaultBudgetBytes = 64 << 20

// ErrClosed reports a load attempted on (or interrupted by) a closed
// cache.
var ErrClosed = errors.New("cache: closed")

// entry is one resident chunk, linked into its shard's LRU list
// (front = most recent).
type entry struct {
	key        Key
	val        []byte
	prev, next *entry // LRU neighbors; nil at list ends
}

// flight is one in-progress load. The leader closes done after
// publishing val/err; followers block on done (or the cache's quit).
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// shard is one LRU stripe. All fields are guarded by mu.
type shard struct {
	mu       sync.Mutex
	entries  map[Key]*entry
	inflight map[Key]*flight
	head     *entry // most recently used
	tail     *entry // least recently used
	bytes    int64
}

// Cache is a sharded single-flight LRU of decoded chunks. Construct
// with New; all methods are safe for concurrent use. The quit channel
// doubles as the cancellation affordance for followers parked on an
// in-flight load: Close unblocks them with ErrClosed.
type Cache struct {
	shards      [shardCount]shard
	shardBudget int64
	budget      int64
	quit        chan struct{}
	quitOnce    sync.Once

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	bytes     atomic.Int64
	entries   atomic.Int64
}

// New creates a cache with the given byte budget (<= 0 selects
// DefaultBudgetBytes). The budget is split evenly across shards; each
// shard always retains at least its most recent entry, so a single
// chunk larger than a shard's slice is still cacheable.
func New(budgetBytes int64) *Cache {
	if budgetBytes <= 0 {
		budgetBytes = DefaultBudgetBytes
	}
	c := &Cache{
		budget:      budgetBytes,
		shardBudget: budgetBytes / shardCount,
		quit:        make(chan struct{}),
	}
	if c.shardBudget < 1 {
		c.shardBudget = 1
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*entry)
		c.shards[i].inflight = make(map[Key]*flight)
	}
	return c
}

// shardFor maps a key to its stripe with a cheap integer mix.
func (c *Cache) shardFor(k Key) *shard {
	h := k.Archive*0x9E3779B97F4A7C15 + uint64(k.Chunk)*0xBF58476D1CE4E5B9
	h ^= h >> 29
	return &c.shards[h%shardCount]
}

// GetOrLoad returns the cached value for k, or runs load exactly once
// per miss (concurrent callers of the same key wait for the leader's
// result rather than loading again). The returned slice is shared and
// must be treated as read-only. After Close, GetOrLoad (and followers
// already parked on a load) fail with ErrClosed.
func (c *Cache) GetOrLoad(k Key, load func() ([]byte, error)) ([]byte, error) {
	select {
	case <-c.quit:
		return nil, ErrClosed
	default:
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.moveToFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		return e.val, nil
	}
	if fl, ok := s.inflight[k]; ok {
		s.mu.Unlock()
		c.misses.Add(1)
		select {
		case <-fl.done:
			return fl.val, fl.err
		case <-c.quit:
			return nil, ErrClosed
		}
	}
	fl := &flight{done: make(chan struct{})}
	s.inflight[k] = fl
	s.mu.Unlock()
	c.misses.Add(1)

	fl.val, fl.err = load()
	// Publish before delisting so a follower that raced past the
	// entries check still finds the flight or the inserted entry.
	closed := false
	select {
	case <-c.quit:
		closed = true // Close raced the load; don't repopulate a drained cache
	default:
	}
	s.mu.Lock()
	delete(s.inflight, k)
	if fl.err == nil && !closed {
		c.insertLocked(s, k, fl.val)
	}
	s.mu.Unlock()
	close(fl.done)
	return fl.val, fl.err
}

// insertLocked adds (k, val) to s, evicting from the cold end until the
// shard is back under budget. The newly inserted entry is never
// evicted, so an oversized chunk still serves repeat reads until the
// next insert displaces it. Caller holds s.mu.
func (c *Cache) insertLocked(s *shard, k Key, val []byte) {
	if _, ok := s.entries[k]; ok {
		return // a racing leader for the same key already landed it
	}
	e := &entry{key: k, val: val}
	s.entries[k] = e
	s.pushFront(e)
	s.bytes += int64(len(val))
	c.bytes.Add(int64(len(val)))
	c.entries.Add(1)
	for s.bytes > c.shardBudget && s.tail != nil && s.tail != e {
		c.evictLocked(s, s.tail)
	}
}

// evictLocked removes e from s. Caller holds s.mu.
func (c *Cache) evictLocked(s *shard, e *entry) {
	s.unlink(e)
	delete(s.entries, e.key)
	s.bytes -= int64(len(e.val))
	c.bytes.Add(-int64(len(e.val)))
	c.entries.Add(-1)
	c.evictions.Add(1)
}

// Close marks the cache closed and unblocks every follower parked on
// an in-flight load. Leaders finish their loads (the result is still
// delivered to them); resident entries are dropped. Close is
// idempotent.
func (c *Cache) Close() error {
	c.quitOnce.Do(func() { close(c.quit) })
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for s.tail != nil {
			c.evictLocked(s, s.tail)
		}
		s.mu.Unlock()
	}
	return nil
}

// Stats snapshots the counters.
func (c *Cache) Stats() metrics.CacheStats {
	return metrics.CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		Entries:     c.entries.Load(),
		Bytes:       c.bytes.Load(),
		BudgetBytes: c.budget,
	}
}

// pushFront links e as the most recently used entry.
func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// unlink removes e from the LRU list.
func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront marks e as most recently used.
func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
