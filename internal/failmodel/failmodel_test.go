package failmodel

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ecc"
)

func TestSec64FailureModel(t *testing.T) {
	// The paper's headline numbers: Cielo fails every 1.9 days, Hopper
	// every 5.43 days.
	if m := Cielo().MTBFDays(); math.Abs(m-1.9) > 1e-9 {
		t.Fatalf("Cielo MTBF %.3f days, want 1.9", m)
	}
	if m := Hopper().MTBFDays(); math.Abs(m-5.43) > 1e-9 {
		t.Fatalf("Hopper MTBF %.3f days, want 5.43", m)
	}
}

func TestFaultMixMatchesPaper(t *testing.T) {
	c, h := Cielo(), Hopper()
	if math.Abs(c.SingleBitFraction-0.7079) > 1e-9 {
		t.Fatal("Cielo single-bit fraction")
	}
	if math.Abs(h.SingleBitFraction-0.946) > 1e-9 {
		t.Fatal("Hopper single-bit fraction")
	}
	if math.Abs(c.MultiBitFraction()-0.2921) > 1e-9 {
		t.Fatalf("Cielo multi-bit fraction %.4f, want 0.2921 (paper)", c.MultiBitFraction())
	}
	if c.SoftErrorFraction != 0.349 || h.SoftErrorFraction != 0.421 {
		t.Fatal("soft-error fractions must match Sridharan et al.")
	}
}

func TestCieloNeedsBurstProtection(t *testing.T) {
	rec := Recommend(Cielo())
	if !rec.Resiliency.Caps.Has(ecc.CorrectBurst) {
		t.Fatal("Cielo must be advised ARC_COR_BURST (paper Section 6.4)")
	}
	if rec.Config.Method != ecc.MethodReedSolomon {
		t.Fatalf("Cielo config %s, want Reed-Solomon", rec.Config)
	}
	if !strings.Contains(rec.Rationale, "Cielo") {
		t.Fatal("rationale must name the system")
	}
}

func TestHopperNeedsOnlySparseCorrection(t *testing.T) {
	rec := Recommend(Hopper())
	if rec.Resiliency.Caps.Has(ecc.CorrectBurst) {
		t.Fatal("Hopper does not need burst protection (94.6% single-bit)")
	}
	if !rec.Resiliency.Caps.Has(ecc.CorrectSparse) {
		t.Fatal("Hopper needs sparse correction")
	}
	if rec.Config.Method != ecc.MethodSECDED {
		t.Fatalf("Hopper config %s, want SEC-DED", rec.Config)
	}
}

func TestAltitudeRelationship(t *testing.T) {
	// Sridharan et al. attribute Cielo's ~2x rate to altitude; the
	// profiles must preserve both orderings.
	c, h := Cielo(), Hopper()
	if c.AltitudeFeet <= h.AltitudeFeet {
		t.Fatal("Cielo sits higher than Hopper")
	}
	if c.MTBFDays() >= h.MTBFDays() {
		t.Fatal("Cielo must fail more often than Hopper")
	}
	ratio := h.MTBFDays() / c.MTBFDays()
	if ratio < 2 || ratio > 3.5 {
		t.Fatalf("failure-rate ratio %.2f outside the paper's ~2x-3x", ratio)
	}
}

func TestExpectedErrorsPerMB(t *testing.T) {
	s := Cielo()
	low := s.ExpectedErrorsPerMB(128*1024, 1)
	high := s.ExpectedErrorsPerMB(128*1024, 30)
	if low <= 0 || high <= low {
		t.Fatalf("rates must grow with residency: %g vs %g", low, high)
	}
	if s.ExpectedErrorsPerMB(0, 10) != 0 {
		t.Fatal("zero memory must yield zero rate")
	}
}

func TestInfiniteMTBFForIdleSystem(t *testing.T) {
	s := System{Name: "idle", Nodes: 0, SoftErrorsPerNodePerDay: 0}
	if !math.IsInf(s.MTBFDays(), 1) {
		t.Fatal("zero rate must give infinite MTBF")
	}
}

func TestFromFIT(t *testing.T) {
	// 25 FIT/device, 144 devices/node, 40% soft, sea level.
	s := FromFIT("custom", 1000, 144, 25, 0.4, 0)
	if s.MTBFDays() <= 0 || math.IsInf(s.MTBFDays(), 1) {
		t.Fatalf("MTBF %g", s.MTBFDays())
	}
	// Altitude raises the rate (lowers MTBF).
	high := FromFIT("custom-high", 1000, 144, 25, 0.4, 7300)
	if high.MTBFDays() >= s.MTBFDays() {
		t.Fatal("altitude must lower MTBF")
	}
	ratio := s.MTBFDays() / high.MTBFDays()
	if ratio < 1.8 || ratio > 2.7 {
		t.Fatalf("7300 ft should be ~2x sea level, got %.2fx", ratio)
	}
	// Recommend works on synthetic profiles too.
	rec := Recommend(s)
	if rec.Config.Method == 0 {
		t.Fatal("no recommendation")
	}
}

func TestAltitudeScale(t *testing.T) {
	if altitudeScale(0) != 1 || altitudeScale(-5) != 1 {
		t.Fatal("sea level must scale 1")
	}
	if s := altitudeScale(6500); math.Abs(s-2) > 1e-9 {
		t.Fatalf("6500 ft = %g, want 2", s)
	}
}
