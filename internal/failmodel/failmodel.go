// Package failmodel encodes the DRAM failure-rate model the paper uses
// in its ease-of-use evaluation (Section 6.4), parameterized with the
// published findings of Sridharan et al. on the Cielo and Hopper
// supercomputers. It converts per-system fault rates into a mean time
// between failures and recommends ARC resiliency constraints from the
// observed fault-type mix.
package failmodel

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ecc"
)

// System describes an HPC system's published memory-fault profile.
type System struct {
	Name  string
	Nodes int
	// AltitudeFeet drives the relative neutron-flux note in reports
	// (Sridharan et al. attribute Cielo's higher rate to altitude).
	AltitudeFeet int
	// SoftErrorsPerNodePerDay is the per-node rate of detected soft
	// errors, calibrated so the whole system reproduces the paper's
	// MTBF (Cielo: a failure every 1.9 days across 8,500 nodes).
	SoftErrorsPerNodePerDay float64
	// SoftErrorFraction is the share of all faults that are soft
	// errors (Cielo 34.9%, Hopper 42.1%).
	SoftErrorFraction float64
	// SingleBitFraction is the share of faults caused by single-bit
	// errors (Cielo 70.79%, Hopper 94.6%).
	SingleBitFraction float64
	// BurstFraction is the share of multi-bit faults that appear as
	// bursts within one DRAM device (paper: most of Cielo's multi-bit
	// faults; 4.05% on Hopper).
	BurstFraction float64
}

// Cielo returns the Cielo profile: 8,500 nodes at ~7,300 ft in Los
// Alamos; the paper derives one soft-error failure every 1.9 days.
func Cielo() System {
	return System{
		Name:         "Cielo",
		Nodes:        8500,
		AltitudeFeet: 7300,
		// Rate calibrated to the paper's MTBF: 1/(8500 * r) = 1.9 days.
		SoftErrorsPerNodePerDay: 1.0 / (1.9 * 8500),
		SoftErrorFraction:       0.349,
		SingleBitFraction:       0.7079,
		BurstFraction:           0.80,
	}
}

// Hopper returns the Hopper profile: 6,000 nodes at 43 ft in Oakland;
// the paper derives one soft-error failure every 5.43 days.
func Hopper() System {
	return System{
		Name:                    "Hopper",
		Nodes:                   6000,
		AltitudeFeet:            43,
		SoftErrorsPerNodePerDay: 1.0 / (5.43 * 6000),
		SoftErrorFraction:       0.421,
		SingleBitFraction:       0.946,
		BurstFraction:           0.0405,
	}
}

// MTBFDays returns the system-wide mean time between soft-error
// failures in days.
func (s System) MTBFDays() float64 {
	rate := float64(s.Nodes) * s.SoftErrorsPerNodePerDay
	if rate <= 0 {
		return math.Inf(1)
	}
	return 1 / rate
}

// MultiBitFraction is the share of faults that are not single-bit.
func (s System) MultiBitFraction() float64 { return 1 - s.SingleBitFraction }

// ExpectedErrorsPerMB estimates the number of soft errors a resident
// dataset of the given size accumulates per MB over a residency
// duration, assuming errors land uniformly over the node's memory.
func (s System) ExpectedErrorsPerMB(nodeMemoryMB float64, residencyDays float64) float64 {
	if nodeMemoryMB <= 0 {
		return 0
	}
	return s.SoftErrorsPerNodePerDay * residencyDays / nodeMemoryMB * 1e6 // scaled: errors spread over node memory
}

// Recommendation is the constraint advice derived from a system
// profile (the paper's Section 6.4 guidance).
type Recommendation struct {
	System System
	// Resiliency is the suggested ARC resiliency constraint.
	Resiliency core.Resiliency
	// Config is the concrete configuration the constraint selects
	// under no storage/throughput pressure.
	Config core.Config
	// Rationale explains the choice in the paper's terms.
	Rationale string
}

// Recommend maps a system profile to an ARC resiliency constraint:
// systems with high failure rates and substantial multi-bit/burst
// shares need Reed-Solomon (ARC_COR_BURST); low-rate, overwhelmingly
// single-bit systems are served by SEC-DED (ARC_COR_SPARSE).
func Recommend(s System) Recommendation {
	multiBit := s.MultiBitFraction()
	burstHeavy := multiBit > 0.15 && s.BurstFraction > 0.5
	if burstHeavy {
		res := core.Resiliency{Caps: ecc.CorrectBurst}
		return Recommendation{
			System:     s,
			Resiliency: res,
			Config:     core.Config{Method: ecc.MethodReedSolomon, Param: 15},
			Rationale: fmt.Sprintf(
				"%s fails every %.1f days and %.1f%% of faults are multi-bit (mostly bursts within one DRAM device): use ARC_COR_BURST so ARC applies Reed-Solomon.",
				s.Name, s.MTBFDays(), 100*multiBit),
		}
	}
	res := core.Resiliency{Caps: ecc.CorrectSparse}
	return Recommendation{
		System:     s,
		Resiliency: res,
		Config:     core.MinimalAdequateConfig(1),
		Rationale: fmt.Sprintf(
			"%s fails every %.1f days and %.1f%% of faults are single-bit: ARC_COR_SPARSE (SEC-DED) corrects them with ~12.5%% overhead.",
			s.Name, s.MTBFDays(), 100*s.SingleBitFraction),
	}
}

// FromFIT builds a System profile from first principles, the way
// Sridharan et al. derive theirs: a per-DRAM-device fault rate in FIT
// (failures per 10^9 device-hours), the device count per node, and the
// share of faults that are transient (soft). An altitude scaling
// approximates the neutron-flux effect the study attributes Cielo's
// elevated rate to (roughly 2.2x from sea level to 7,300 ft).
func FromFIT(name string, nodes, devicesPerNode int, fitPerDevice, softFraction float64, altitudeFeet int) System {
	// FIT -> faults per device-day.
	perDeviceDay := fitPerDevice * 24 / 1e9
	alt := altitudeScale(altitudeFeet)
	return System{
		Name:                    name,
		Nodes:                   nodes,
		AltitudeFeet:            altitudeFeet,
		SoftErrorsPerNodePerDay: perDeviceDay * float64(devicesPerNode) * softFraction * alt,
		SoftErrorFraction:       softFraction,
		SingleBitFraction:       0.85, // field-study ballpark when unknown
		BurstFraction:           0.25,
	}
}

// altitudeScale approximates the relative neutron flux at an altitude
// versus sea level (doubling roughly every ~6,500 ft in the troposphere,
// consistent with Cielo/Hopper's ~2x at 7,300 ft vs 43 ft).
func altitudeScale(feet int) float64 {
	if feet <= 0 {
		return 1
	}
	return math.Pow(2, float64(feet)/6500)
}
