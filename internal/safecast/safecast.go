// Package safecast provides checked integer conversions for the
// codec packages. The arcvet mathbits analyzer flags raw conversions
// that can silently change a value (sign flips, narrowing); routing
// them through these helpers turns "trust me, it fits" into an
// enforced invariant — a violated bound panics with a descriptive
// message instead of corrupting an encoded stream.
//
// The Bits* helpers are the deliberate exceptions: they reinterpret
// a bit pattern across signedness (two's complement) and exist so
// intentional reinterpretation reads differently from an accidental
// conversion.
package safecast

import (
	"fmt"
	"math"
)

// U8 converts a non-negative int that must fit a byte.
func U8(n int) uint8 {
	if n < 0 || n > math.MaxUint8 {
		panic(fmt.Sprintf("safecast: %d does not fit uint8", n))
	}
	return uint8(n)
}

// U32 converts a non-negative int that must fit 32 bits — stream
// header length fields, counts, and dimensions.
func U32(n int) uint32 {
	if n < 0 || n > math.MaxUint32 {
		panic(fmt.Sprintf("safecast: %d does not fit uint32", n))
	}
	return uint32(n)
}

// U64 converts an int that must be non-negative.
func U64(n int) uint64 {
	if n < 0 {
		panic(fmt.Sprintf("safecast: %d is negative", n))
	}
	return uint64(n)
}

// I32 converts an int that must fit 32 signed bits.
func I32(n int) int32 {
	if n < math.MinInt32 || n > math.MaxInt32 {
		panic(fmt.Sprintf("safecast: %d does not fit int32", n))
	}
	return int32(n)
}

// I32From64 converts an int64 that must fit 32 signed bits —
// quantized regression coefficients serialized as 32-bit fields.
func I32From64(n int64) int32 {
	if n < math.MinInt32 || n > math.MaxInt32 {
		panic(fmt.Sprintf("safecast: %d does not fit int32", n))
	}
	return int32(n)
}

// Int converts a uint64 that must fit the platform int.
func Int(n uint64) int {
	if n > math.MaxInt {
		panic(fmt.Sprintf("safecast: %d does not fit int", n))
	}
	return int(n)
}

// Bits32 reinterprets an int32 as its two's-complement bit pattern.
func Bits32(x int32) uint32 {
	return uint32(x)
}

// SignBits32 reinterprets a uint32 bit pattern as a signed int32.
func SignBits32(x uint32) int32 {
	return int32(x)
}
