package safecast

import (
	"math"
	"testing"
)

func TestRoundTrips(t *testing.T) {
	if U8(255) != 255 || U32(math.MaxUint32) != math.MaxUint32 || U64(7) != 7 {
		t.Fatal("in-range unsigned conversions must be identity")
	}
	if I32(math.MinInt32) != math.MinInt32 || I32From64(-5) != -5 || Int(42) != 42 {
		t.Fatal("in-range signed conversions must be identity")
	}
	if Bits32(-1) != math.MaxUint32 || SignBits32(math.MaxUint32) != -1 {
		t.Fatal("bit reinterpretation must follow two's complement")
	}
}

func TestPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"U8 negative", func() { U8(-1) }},
		{"U8 overflow", func() { U8(256) }},
		{"U32 negative", func() { U32(-1) }},
		{"U32 overflow", func() { U32(math.MaxUint32 + 1) }},
		{"U64 negative", func() { U64(-1) }},
		{"I32 overflow", func() { I32(math.MaxInt32 + 1) }},
		{"I32From64 underflow", func() { I32From64(math.MinInt32 - 1) }},
		{"Int overflow", func() { Int(math.MaxInt + 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}
