// Package parity implements ARC's lightest-weight protection: one even
// parity bit per N-byte data block. It detects any odd number of bit
// flips within a block (so all single-bit errors) but corrects nothing,
// matching the paper's ARC_PARITY method.
package parity

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/ecc"
	"repro/internal/parallel"
)

// Code protects data with one even-parity bit per BlockBytes of data.
//
// Encoded layout: the data verbatim, followed by the parity bits packed
// MSB-first (bit for block 0 in the high bit of the first parity byte).
type Code struct {
	// BlockBytes is the number of data bytes covered by each parity
	// bit. Smaller blocks raise overhead and detection granularity.
	BlockBytes int
	// Workers is the parallelism level (0 = GOMAXPROCS).
	Workers int
}

// New returns a parity code with the given block size in bytes.
// It panics when blockBytes is not positive, which indicates a
// programming error in configuration construction.
func New(blockBytes, workers int) *Code {
	if blockBytes <= 0 {
		panic("parity: BlockBytes must be positive")
	}
	return &Code{BlockBytes: blockBytes, Workers: workers}
}

// Name implements ecc.Code.
func (c *Code) Name() string { return fmt.Sprintf("parity%d", c.BlockBytes) }

// Caps implements ecc.Code: parity detects sparse errors only.
func (c *Code) Caps() ecc.Capability { return ecc.DetectSparse }

// Overhead implements ecc.Code: one bit per BlockBytes bytes.
func (c *Code) Overhead() float64 { return 1.0 / (8.0 * float64(c.BlockBytes)) }

// EncodedSize implements ecc.Code.
func (c *Code) EncodedSize(n int) int {
	return n + (c.blocks(n)+7)/8
}

func (c *Code) blocks(n int) int { return (n + c.BlockBytes - 1) / c.BlockBytes }

// blockParity returns the even-parity bit (0 or 1) over the block.
// The parity of the whole block equals the parity of the XOR-fold of
// its bytes, so the loop folds uint64 lanes and takes one popcount at
// the end instead of walking byte by byte.
func blockParity(block []byte) byte {
	var acc uint64
	n := len(block) &^ 7
	for i := 0; i < n; i += 8 {
		acc ^= binary.LittleEndian.Uint64(block[i:])
	}
	var tail byte
	for _, b := range block[n:] {
		tail ^= b
	}
	return byte((bits.OnesCount64(acc) + bits.OnesCount8(tail)) & 1)
}

// parityByte computes the packed parity byte covering blocks
// pb*8 .. pb*8+7 of data. When every one of those blocks is a full
// 8-byte block (the common interior case for the paper's parity8
// config), each parity bit is one uint64 load and one popcount;
// otherwise it falls back to the general per-block walk.
func (c *Code) parityByte(data []byte, pb, nb int) byte {
	n := len(data)
	var v byte
	if base := pb * 8 * c.BlockBytes; c.BlockBytes == 8 && base+64 <= n {
		for j := 0; j < 8; j++ {
			w := binary.LittleEndian.Uint64(data[base+j*8:])
			v |= byte(bits.OnesCount64(w)&1) << (7 - j)
		}
		return v
	}
	for j := 0; j < 8; j++ {
		b := pb*8 + j
		if b >= nb {
			break
		}
		start := b * c.BlockBytes
		end := start + c.BlockBytes
		if end > n {
			end = n
		}
		if blockParity(data[start:end]) == 1 {
			v |= 0x80 >> j
		}
	}
	return v
}

// Encode implements ecc.Code.
func (c *Code) Encode(data []byte) []byte {
	return c.EncodeTo(nil, data, nil)
}

// EncodeTo implements ecc.EncoderTo. Workers own whole parity bytes
// (groups of eight blocks), so no two goroutines write the same byte;
// every output byte is fully assigned, so a reused dst needs no
// clearing.
func (c *Code) EncodeTo(dst, data []byte, _ *ecc.Scratch) []byte {
	n := len(data)
	nb := c.blocks(n)
	out := ecc.GrowTo(dst, c.EncodedSize(n))
	copy(out, data)
	par := out[n:]
	// Serial fast path: a closure handed to parallel.For escapes and
	// would allocate even when it runs inline.
	if parallel.Clamp(c.Workers, len(par)) == 1 {
		c.encodeRange(data, par, 0, len(par), nb)
	} else {
		parallel.For(len(par), c.Workers, func(lo, hi int) {
			c.encodeRange(data, par, lo, hi, nb)
		})
	}
	return out
}

// encodeRange fills parity bytes [lo, hi); safe to run concurrently on
// disjoint ranges.
func (c *Code) encodeRange(data, par []byte, lo, hi, nb int) {
	for pb := lo; pb < hi; pb++ {
		par[pb] = c.parityByte(data, pb, nb)
	}
}

// Decode implements ecc.Code. Parity corrects nothing: if any block's
// parity mismatches, Decode returns the (possibly corrupt) data along
// with ecc.ErrUncorrectable so the caller can decide what to salvage.
func (c *Code) Decode(encoded []byte, origLen int) ([]byte, ecc.Report, error) {
	return c.DecodeTo(nil, encoded, origLen, nil)
}

// DecodeTo implements ecc.DecoderTo.
func (c *Code) DecodeTo(dst, encoded []byte, origLen int, _ *ecc.Scratch) ([]byte, ecc.Report, error) {
	var rep ecc.Report
	if origLen < 0 || len(encoded) < c.EncodedSize(origLen) {
		return nil, rep, fmt.Errorf("%w: need %d bytes, have %d", ecc.ErrTruncated, c.EncodedSize(origLen), len(encoded))
	}
	data := encoded[:origLen]
	par := encoded[origLen:c.EncodedSize(origLen)]
	nb := c.blocks(origLen)
	var detected int64
	// Serial fast path: see EncodeTo. The atomic counter is declared
	// inside the parallel branch so its heap allocation (it is captured
	// by an escaping closure) never taxes the serial path.
	if parallel.Clamp(c.Workers, len(par)) == 1 {
		detected = c.countRange(data, par, 0, len(par), nb)
	} else {
		var adet int64
		parallel.For(len(par), c.Workers, func(lo, hi int) {
			if local := c.countRange(data, par, lo, hi, nb); local > 0 {
				atomic.AddInt64(&adet, local)
			}
		})
		detected = adet
	}
	rep.DetectedBlocks = int(detected)
	out := ecc.GrowTo(dst, origLen)
	copy(out, data)
	if rep.DetectedBlocks > 0 {
		return out, rep, fmt.Errorf("%w: parity mismatch in %d block(s)", ecc.ErrUncorrectable, rep.DetectedBlocks)
	}
	return out, rep, nil
}

// countRange counts mismatched parity bits over parity bytes [lo, hi);
// safe to run concurrently on disjoint ranges.
func (c *Code) countRange(data, par []byte, lo, hi, nb int) int64 {
	local := 0
	for pb := lo; pb < hi; pb++ {
		if diff := c.parityByte(data, pb, nb) ^ par[pb]; diff != 0 {
			local += bits.OnesCount8(diff)
		}
	}
	return int64(local)
}

var (
	_ ecc.Code      = (*Code)(nil)
	_ ecc.EncoderTo = (*Code)(nil)
	_ ecc.DecoderTo = (*Code)(nil)
)
