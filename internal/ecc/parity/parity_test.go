package parity

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ecc"
)

func TestRoundTripClean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bb := range []int{1, 2, 4, 8, 16, 64} {
		for _, n := range []int{0, 1, 7, 8, 9, 100, 4096, 4097} {
			data := make([]byte, n)
			rng.Read(data)
			c := New(bb, 1)
			enc := c.Encode(data)
			if len(enc) != c.EncodedSize(n) {
				t.Fatalf("bb=%d n=%d: EncodedSize mismatch", bb, n)
			}
			got, rep, err := c.Decode(enc, n)
			if err != nil {
				t.Fatalf("bb=%d n=%d: clean decode failed: %v", bb, n, err)
			}
			if rep.DetectedBlocks != 0 {
				t.Fatalf("clean decode detected %d", rep.DetectedBlocks)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("bb=%d n=%d: data mismatch", bb, n)
			}
		}
	}
}

func TestDetectsEverySingleBitFlip(t *testing.T) {
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x23, 0x45}
	c := New(2, 1)
	enc := c.Encode(data)
	for bit := 0; bit < len(enc)*8; bit++ {
		mut := make([]byte, len(enc))
		copy(mut, enc)
		mut[bit/8] ^= 0x80 >> (bit % 8)
		_, rep, err := c.Decode(mut, len(data))
		if err == nil {
			t.Fatalf("bit %d flip went undetected", bit)
		}
		if !errors.Is(err, ecc.ErrUncorrectable) {
			t.Fatalf("bit %d: wrong error %v", bit, err)
		}
		if rep.DetectedBlocks == 0 {
			t.Fatalf("bit %d: report shows no detection", bit)
		}
	}
}

func TestMissesEvenErrorsInOneBlock(t *testing.T) {
	// The documented weakness: two flips in the same block cancel.
	data := make([]byte, 16)
	c := New(16, 1)
	enc := c.Encode(data)
	enc[0] ^= 0x01
	enc[5] ^= 0x01
	_, rep, err := c.Decode(enc, len(data))
	if err != nil {
		t.Fatalf("double error in one block should be missed, got %v", err)
	}
	if rep.DetectedBlocks != 0 {
		t.Fatal("double error unexpectedly detected")
	}
}

func TestDetectsOddErrorsAcrossBlocks(t *testing.T) {
	data := make([]byte, 32)
	c := New(8, 1)
	enc := c.Encode(data)
	enc[0] ^= 0x01  // block 0
	enc[9] ^= 0x01  // block 1
	enc[17] ^= 0x01 // block 2
	_, rep, err := c.Decode(enc, len(data))
	if err == nil {
		t.Fatal("three flips across blocks must be detected")
	}
	if rep.DetectedBlocks != 3 {
		t.Fatalf("detected %d blocks, want 3", rep.DetectedBlocks)
	}
}

func TestTruncatedStream(t *testing.T) {
	c := New(8, 1)
	enc := c.Encode(make([]byte, 64))
	if _, _, err := c.Decode(enc[:len(enc)-1], 64); !errors.Is(err, ecc.ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestOverheadMatchesActual(t *testing.T) {
	for _, bb := range []int{1, 4, 8, 32} {
		c := New(bb, 1)
		n := 1 << 16
		actual := float64(c.EncodedSize(n)-n) / float64(n)
		if diff := actual - c.Overhead(); diff > 1e-3 || diff < -1e-3 {
			t.Fatalf("bb=%d: Overhead()=%f actual=%f", bb, c.Overhead(), actual)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 100_003)
	rng.Read(data)
	serial := New(8, 1).Encode(data)
	for _, w := range []int{2, 3, 8} {
		par := New(8, w).Encode(data)
		if !bytes.Equal(serial, par) {
			t.Fatalf("workers=%d produced different encoding", w)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	c := New(4, 2)
	prop := func(data []byte) bool {
		enc := c.Encode(data)
		got, _, err := c.Decode(enc, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSingleFlipDetected(t *testing.T) {
	c := New(8, 1)
	prop := func(data []byte, where uint16) bool {
		if len(data) == 0 {
			return true
		}
		enc := c.Encode(data)
		bit := int(where) % (len(enc) * 8)
		enc[bit/8] ^= 0x80 >> (bit % 8)
		_, _, err := c.Decode(enc, len(data))
		return errors.Is(err, ecc.ErrUncorrectable)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 1) should panic")
		}
	}()
	New(0, 1)
}

func TestName(t *testing.T) {
	if New(8, 1).Name() != "parity8" {
		t.Fatal("unexpected name")
	}
	if !New(8, 1).Caps().Has(ecc.DetectSparse) {
		t.Fatal("parity must report DetectSparse")
	}
	if New(8, 1).Caps().Has(ecc.CorrectSparse) {
		t.Fatal("parity must not claim correction")
	}
}
