package hamming

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ecc"
)

func TestParams(t *testing.T) {
	p8 := NewParams(8, false)
	if p8.R != 4 || p8.N != 12 || p8.CheckLen != 4 {
		t.Fatalf("k=8: got R=%d N=%d CheckLen=%d, want 4/12/4", p8.R, p8.N, p8.CheckLen)
	}
	p8x := NewParams(8, true)
	if p8x.CheckLen != 5 {
		t.Fatalf("k=8 extended CheckLen=%d, want 5", p8x.CheckLen)
	}
	p64 := NewParams(64, false)
	if p64.R != 7 || p64.N != 71 || p64.CheckLen != 7 {
		t.Fatalf("k=64: got R=%d N=%d CheckLen=%d, want 7/71/7", p64.R, p64.N, p64.CheckLen)
	}
	p64x := NewParams(64, true)
	if p64x.CheckLen != 8 {
		t.Fatalf("k=64 extended CheckLen=%d, want 8 (the classic (72,64) code)", p64x.CheckLen)
	}
}

func TestParamsUnsupportedWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewParams(16, false) should panic")
		}
	}()
	NewParams(16, false)
}

func TestOverhead(t *testing.T) {
	if got := New(8, 1).Overhead(); got != 0.5 {
		t.Fatalf("hamming8 overhead %f, want 0.5", got)
	}
	if got := New(64, 1).Overhead(); got != 7.0/64.0 {
		t.Fatalf("hamming64 overhead %f", got)
	}
	if got := NewExtended(64, 1, "secded64").Overhead(); got != 0.125 {
		t.Fatalf("secded64 overhead %f, want 0.125", got)
	}
}

func TestRoundTripClean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{8, 64} {
		for _, ext := range []bool{false, true} {
			for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1000} {
				c := &Code{P: NewParams(k, ext), Workers: 1}
				data := make([]byte, n)
				rng.Read(data)
				enc := c.Encode(data)
				if len(enc) != c.EncodedSize(n) {
					t.Fatalf("k=%d ext=%v n=%d: size mismatch", k, ext, n)
				}
				got, rep, err := c.Decode(enc, n)
				if err != nil {
					t.Fatalf("k=%d ext=%v n=%d: %v", k, ext, n, err)
				}
				if rep.DetectedBlocks != 0 {
					t.Fatalf("clean decode flagged %d blocks", rep.DetectedBlocks)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("k=%d ext=%v n=%d: data mismatch", k, ext, n)
				}
			}
		}
	}
}

func TestCorrectsEverySingleBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, k := range []int{8, 64} {
		for _, ext := range []bool{false, true} {
			c := &Code{P: NewParams(k, ext), Workers: 1}
			data := make([]byte, 24)
			rng.Read(data)
			enc := c.Encode(data)
			// Bits past usedBits are padding in the final check byte;
			// flips there are invisible (and harmless).
			usedBits := len(data)*8 + c.blocks(len(data))*c.P.CheckLen
			for bit := 0; bit < len(enc)*8; bit++ {
				mut := make([]byte, len(enc))
				copy(mut, enc)
				mut[bit/8] ^= 0x80 >> (bit % 8)
				got, rep, err := c.Decode(mut, len(data))
				if err != nil {
					t.Fatalf("k=%d ext=%v bit=%d: single flip not corrected: %v", k, ext, bit, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("k=%d ext=%v bit=%d: wrong correction", k, ext, bit)
				}
				wantCorrected := 1
				if bit >= usedBits {
					wantCorrected = 0
				}
				if rep.CorrectedBlocks != wantCorrected {
					t.Fatalf("k=%d ext=%v bit=%d: corrected %d blocks, want %d", k, ext, bit, rep.CorrectedBlocks, wantCorrected)
				}
			}
		}
	}
}

func TestExtendedDetectsDoubleErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{8, 64} {
		c := &Code{P: NewParams(k, true), Workers: 1}
		data := make([]byte, k/8) // exactly one block
		rng.Read(data)
		enc := c.Encode(data)
		totalBits := len(enc) * 8
		trials := 0
		for t1 := 0; t1 < totalBits && trials < 300; t1++ {
			for t2 := t1 + 1; t2 < totalBits && trials < 300; t2 += 3 {
				mut := make([]byte, len(enc))
				copy(mut, enc)
				mut[t1/8] ^= 0x80 >> (t1 % 8)
				mut[t2/8] ^= 0x80 >> (t2 % 8)
				got, _, err := c.Decode(mut, len(data))
				trials++
				if err == nil && !bytes.Equal(got, data) {
					t.Fatalf("k=%d flips (%d,%d): silent miscorrection — SEC-DED must detect doubles", k, t1, t2)
				}
				if err != nil && !errors.Is(err, ecc.ErrUncorrectable) {
					t.Fatalf("wrong error type: %v", err)
				}
			}
		}
	}
}

func TestPlainHammingMiscorrectsSomeDoubles(t *testing.T) {
	// Documents the known weakness that motivates SEC-DED: plain
	// Hamming applied to a double error either miscorrects or flags it,
	// but cannot reliably detect.
	c := New(8, 1)
	data := []byte{0xA5}
	enc := c.Encode(data)
	sawMiscorrection := false
	total := len(enc) * 8
	for t1 := 0; t1 < total; t1++ {
		for t2 := t1 + 1; t2 < total; t2++ {
			mut := make([]byte, len(enc))
			copy(mut, enc)
			mut[t1/8] ^= 0x80 >> (t1 % 8)
			mut[t2/8] ^= 0x80 >> (t2 % 8)
			got, _, err := c.Decode(mut, 1)
			if err == nil && !bytes.Equal(got, data) {
				sawMiscorrection = true
			}
		}
	}
	if !sawMiscorrection {
		t.Fatal("expected plain Hamming to miscorrect at least one double error")
	}
}

func TestTruncated(t *testing.T) {
	c := New(64, 1)
	enc := c.Encode(make([]byte, 128))
	if _, _, err := c.Decode(enc[:len(enc)-1], 128); !errors.Is(err, ecc.ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, 100_003)
	rng.Read(data)
	for _, k := range []int{8, 64} {
		for _, ext := range []bool{false, true} {
			serial := (&Code{P: NewParams(k, ext), Workers: 1}).Encode(data)
			for _, w := range []int{2, 5} {
				par := (&Code{P: NewParams(k, ext), Workers: w}).Encode(data)
				if !bytes.Equal(serial, par) {
					t.Fatalf("k=%d ext=%v workers=%d: encoding differs", k, ext, w)
				}
			}
		}
	}
}

func TestQuickSingleFlipAlwaysCorrected(t *testing.T) {
	c := &Code{P: NewParams(64, true), Workers: 2}
	prop := func(data []byte, where uint32) bool {
		if len(data) == 0 {
			return true
		}
		enc := c.Encode(data)
		bit := int(where) % (len(enc) * 8)
		enc[bit/8] ^= 0x80 >> (bit % 8)
		got, _, err := c.Decode(enc, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBitHelpersRoundTrip(t *testing.T) {
	prop := func(v uint16, widthSeed uint8) bool {
		width := 1 + int(widthSeed)%16
		val := uint64(v) & ((1 << width) - 1)
		buf := make([]byte, 8)
		writeBits(buf, 5, val, width)
		return readBits(buf, 5, width) == val
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSyndromePointsAtFlippedPosition(t *testing.T) {
	// Whitebox invariant: flipping data bit i changes the check bits by
	// exactly the positional code of that bit.
	p := NewParams(64, false)
	var data uint64 = 0x0123456789ABCDEF
	base := p.checkBits(data)
	for i := 0; i < 64; i++ {
		got := p.checkBits(data ^ (1 << i))
		if int(base^got) != p.dataPos[i] {
			t.Fatalf("bit %d: syndrome %d, want position %d", i, base^got, p.dataPos[i])
		}
	}
}

func TestName(t *testing.T) {
	if New(8, 1).Name() != "hamming8" {
		t.Fatal("bad name")
	}
	if NewExtended(64, 1, "secded64").Name() != "secded64" {
		t.Fatal("bad override name")
	}
}
