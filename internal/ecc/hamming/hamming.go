// Package hamming implements ARC's single-error-correcting Hamming
// codes over 8-bit and 64-bit data blocks, plus the extended (SEC-DED)
// variant used by internal/ecc/secded.
//
// Codewords use the classical positional construction: data bits occupy
// the non-power-of-two positions 1..n of a codeword, parity bits the
// power-of-two positions, and the syndrome of a received word equals
// the position of a single flipped bit. The extended variant appends an
// overall parity bit, which separates single errors (correctable) from
// double errors (detectable only).
//
// Encoded layout: the data verbatim, followed by the per-block check
// bits packed MSB-first. Keeping data contiguous means encode is a copy
// plus check-bit computation and decode verifies in place — the layout
// of the protected stream never interleaves.
package hamming

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/ecc"
	"repro/internal/parallel"
)

// Params holds the derived constants for a Hamming code over k data
// bits.
type Params struct {
	K        int      // data bits per block (8 or 64)
	R        int      // parity bits
	N        int      // codeword length K + R
	Extended bool     // SEC-DED: one extra overall parity bit
	CheckLen int      // check bits per block: R (+1 if Extended)
	dataPos  []int    // codeword position of data bit i
	posToBit []int    // codeword position -> data bit index, -1 for parity
	masks    []uint64 // masks[j]: data bits covered by parity j
}

// NewParams derives the code constants for k data bits. Only k = 8 and
// k = 64 are supported — the two block widths the paper's ARC engine
// offers ("both generate parity bits for one byte or eight byte data
// blocks at a time").
func NewParams(k int, extended bool) *Params {
	if k != 8 && k != 64 {
		panic(fmt.Sprintf("hamming: unsupported data width %d (want 8 or 64)", k))
	}
	r := 0
	for (1 << r) < k+r+1 {
		r++
	}
	p := &Params{K: k, R: r, N: k + r, Extended: extended}
	p.CheckLen = r
	if extended {
		p.CheckLen++
	}
	p.dataPos = make([]int, 0, k)
	p.posToBit = make([]int, p.N+1)
	for i := range p.posToBit {
		p.posToBit[i] = -1
	}
	for pos := 1; pos <= p.N; pos++ {
		if pos&(pos-1) == 0 { // power of two: parity position
			continue
		}
		p.posToBit[pos] = len(p.dataPos)
		p.dataPos = append(p.dataPos, pos)
	}
	if len(p.dataPos) != k {
		panic("hamming: internal position accounting error")
	}
	p.masks = make([]uint64, r)
	for j := 0; j < r; j++ {
		var m uint64
		for i, pos := range p.dataPos {
			if pos&(1<<j) != 0 {
				m |= 1 << i
			}
		}
		p.masks[j] = m
	}
	return p
}

// checkBits computes the parity bits (bit j of the result is parity j)
// for a data block.
func (p *Params) checkBits(data uint64) byte {
	var c byte
	for j, m := range p.masks {
		c |= byte(bits.OnesCount64(data&m)&1) << j
	}
	return c
}

// Code is a Hamming (or extended Hamming) code over fixed-width blocks.
type Code struct {
	P       *Params
	Workers int
	// nameOverride lets the secded package present the extended code
	// under its own family name.
	nameOverride string
}

// New returns a single-error-correcting Hamming code over dataBits-wide
// blocks (8 or 64).
func New(dataBits, workers int) *Code {
	return &Code{P: NewParams(dataBits, false), Workers: workers}
}

// NewExtended returns the SEC-DED variant; used by internal/ecc/secded.
func NewExtended(dataBits, workers int, name string) *Code {
	return &Code{P: NewParams(dataBits, true), Workers: workers, nameOverride: name}
}

// Name implements ecc.Code.
func (c *Code) Name() string {
	if c.nameOverride != "" {
		return c.nameOverride
	}
	return fmt.Sprintf("hamming%d", c.P.K)
}

// Caps implements ecc.Code.
func (c *Code) Caps() ecc.Capability {
	caps := ecc.DetectSparse | ecc.CorrectSparse
	return caps
}

// Overhead implements ecc.Code.
func (c *Code) Overhead() float64 {
	return float64(c.P.CheckLen) / float64(c.P.K)
}

// blockBytes is the data bytes per block.
func (c *Code) blockBytes() int { return c.P.K / 8 }

func (c *Code) blocks(n int) int {
	bb := c.blockBytes()
	return (n + bb - 1) / bb
}

// EncodedSize implements ecc.Code.
func (c *Code) EncodedSize(n int) int {
	return n + (c.blocks(n)*c.P.CheckLen+7)/8
}

// loadBlock reads block b of data as a little-endian uint64, zero
// padding a trailing partial block.
func (c *Code) loadBlock(data []byte, b int) uint64 {
	bb := c.blockBytes()
	start := b * bb
	end := start + bb
	if end <= len(data) {
		if bb == 8 {
			return binary.LittleEndian.Uint64(data[start:end])
		}
		return uint64(data[start])
	}
	var tmp [8]byte
	copy(tmp[:], data[start:])
	return binary.LittleEndian.Uint64(tmp[:])
}

// storeBlock writes a (possibly corrected) block back into data.
func (c *Code) storeBlock(data []byte, b int, v uint64) {
	bb := c.blockBytes()
	start := b * bb
	if bb == 8 && start+8 <= len(data) {
		binary.LittleEndian.PutUint64(data[start:], v)
		return
	}
	for i := 0; i < bb && start+i < len(data); i++ {
		data[start+i] = byte(v >> (8 * i))
	}
}

// blockCheck computes the full check-bit word for a block: parity bits
// in the low R bits, and (when extended) the overall parity bit above
// them. Overall parity covers data bits and parity bits so that the
// whole codeword has even weight.
func (c *Code) blockCheck(data uint64) uint16 {
	chk := uint16(c.P.checkBits(data))
	if c.P.Extended {
		overall := (bits.OnesCount64(data) + bits.OnesCount16(chk)) & 1
		chk |= uint16(overall) << c.P.R
	}
	return chk
}

// Encode implements ecc.Code.
func (c *Code) Encode(data []byte) []byte {
	return c.EncodeTo(nil, data, nil)
}

// EncodeTo implements ecc.EncoderTo. Every check byte is fully
// assigned (encodeChecks zero-pads partial groups in-register), so a
// reused dst needs no clearing.
func (c *Code) EncodeTo(dst, data []byte, _ *ecc.Scratch) []byte {
	n := len(data)
	nb := c.blocks(n)
	out := ecc.GrowTo(dst, c.EncodedSize(n))
	copy(out, data)
	chk := out[n:]
	cl := c.P.CheckLen
	// Workers own whole check bytes; with CheckLen in {4,5,7,8}, block
	// boundaries rarely align to bytes, so parallelize over groups of
	// blocks whose check bits start at a byte boundary: lcm(cl,8)/cl
	// blocks per group.
	group := lcm(cl, 8) / cl
	groups := (nb + group - 1) / group
	// Serial fast path: a closure handed to parallel.For escapes and
	// would allocate even when it runs inline — the chunk-stream
	// steady state encodes with one worker.
	if parallel.Clamp(c.Workers, groups) == 1 {
		c.encodeChecks(data, chk, 0, groups, group, nb)
	} else {
		parallel.For(groups, c.Workers, func(glo, ghi int) {
			c.encodeChecks(data, chk, glo, ghi, group, nb)
		})
	}
	return out
}

// encodeChecks computes and packs the check words for block groups
// [glo, ghi). Each group's check bits start at a byte boundary and
// span group*CheckLen <= 56 bits, so a whole group accumulates into
// one uint64 and lands with whole-byte stores — the word-level
// replacement for the per-bit writeBits packing that EncodeRef
// retains as the scalar reference.
func (c *Code) encodeChecks(data, chk []byte, glo, ghi, group, nb int) {
	cl := c.P.CheckLen
	if cl == 8 && c.P.K == 64 {
		// SEC-DED(72,64): one byte-aligned check byte per 8-byte block
		// (group == 1, so group index == block index). The hottest
		// configuration gets a flat loop: word load, a handful of
		// popcounts, one byte store.
		full := len(data) / 8
		for b := glo; b < ghi && b < full; b++ {
			chk[b] = byte(c.blockCheck(binary.LittleEndian.Uint64(data[b*8:])))
		}
		for b := max(glo, full); b < ghi; b++ {
			chk[b] = byte(c.blockCheck(c.loadBlock(data, b)))
		}
		return
	}
	bb := c.blockBytes()
	for g := glo; g < ghi; g++ {
		b0 := g * group
		b1 := min(b0+group, nb)
		var acc uint64
		for b := b0; b < b1; b++ {
			var v uint16
			if bb == 8 && (b+1)*8 <= len(data) {
				v = c.blockCheck(binary.LittleEndian.Uint64(data[b*8:]))
			} else {
				v = c.blockCheck(c.loadBlock(data, b))
			}
			acc = acc<<cl | uint64(v)
		}
		nbits := (b1 - b0) * cl
		nbytes := (nbits + 7) / 8
		// MSB-align the bit string within its byte span (the final
		// partial group zero-pads, exactly like writeBits into a zeroed
		// buffer).
		acc <<= uint(nbytes*8 - nbits)
		off := b0 * cl / 8
		for k := nbytes - 1; k >= 0; k-- {
			chk[off+k] = byte(acc)
			acc >>= 8
		}
	}
}

// EncodeRef is the retained scalar reference implementation of Encode
// (per-bit writeBits packing), kept for differential tests and as the
// baseline the word kernels are benchmarked against. Its output is
// byte-identical to Encode's.
func (c *Code) EncodeRef(data []byte) []byte {
	n := len(data)
	nb := c.blocks(n)
	out := make([]byte, c.EncodedSize(n))
	copy(out, data)
	chk := out[n:]
	cl := c.P.CheckLen
	bitPos := 0
	for b := 0; b < nb; b++ {
		v := c.blockCheck(c.loadBlock(data, b))
		writeBits(chk, bitPos, uint64(v), cl)
		bitPos += cl
	}
	return out
}

// blockStats accumulates one worker's decode counters.
type blockStats struct{ det, bits, blocks, unc int64 }

// decodeBlock verifies block b of out against its stored check word,
// correcting out in place and updating st. It is shared by Decode's
// word-level check unpacking and DecodeRef's per-bit reference.
func (c *Code) decodeBlock(out []byte, b int, stored uint16, st *blockStats) {
	data := c.loadBlock(out, b)
	storedParity := stored & ((1 << c.P.R) - 1)
	syndrome := int(storedParity ^ uint16(c.P.checkBits(data)))
	if c.P.Extended {
		// Encode makes the whole codeword (data bits, parity bits,
		// overall bit) even-weight, so an odd received weight means an
		// odd number of flips.
		odd := (bits.OnesCount64(data)+bits.OnesCount16(stored))&1 == 1
		switch {
		case syndrome == 0 && !odd:
			// Clean.
		case syndrome == 0 && odd:
			// Only the overall parity bit flipped; the data and check
			// bits agree.
			st.det++
			st.bits++
			st.blocks++
		case odd:
			// Single error; the syndrome names its position.
			st.det++
			if syndrome > c.P.N {
				// A position outside the codeword means at least a
				// triple flip. Detect only.
				st.unc++
				return
			}
			if bi := c.P.posToBit[syndrome]; bi >= 0 {
				c.storeBlock(out, b, data^(1<<bi))
			}
			// Syndrome at a parity position: the stored check bits
			// were hit; data is already correct.
			st.bits++
			st.blocks++
		default:
			// Nonzero syndrome with even weight: a double error.
			// Detect only — this is the "DED" in SEC-DED.
			st.det++
			st.unc++
		}
		return
	}
	if syndrome == 0 {
		return
	}
	st.det++
	if syndrome > c.P.N {
		// Syndrome points outside the codeword: multi-bit corruption.
		// Detect only.
		st.unc++
		return
	}
	if bi := c.P.posToBit[syndrome]; bi >= 0 {
		c.storeBlock(out, b, data^(1<<bi))
	}
	st.bits++
	st.blocks++
}

// Decode implements ecc.Code.
func (c *Code) Decode(encoded []byte, origLen int) ([]byte, ecc.Report, error) {
	return c.DecodeTo(nil, encoded, origLen, nil)
}

// DecodeTo implements ecc.DecoderTo.
func (c *Code) DecodeTo(dst, encoded []byte, origLen int, _ *ecc.Scratch) ([]byte, ecc.Report, error) {
	var rep ecc.Report
	if origLen < 0 || len(encoded) < c.EncodedSize(origLen) {
		return nil, rep, fmt.Errorf("%w: need %d bytes, have %d", ecc.ErrTruncated, c.EncodedSize(origLen), len(encoded))
	}
	out := ecc.GrowTo(dst, origLen)
	copy(out, encoded[:origLen])
	chk := encoded[origLen:c.EncodedSize(origLen)]
	nb := c.blocks(origLen)
	cl := c.P.CheckLen
	group := lcm(cl, 8) / cl
	groups := (nb + group - 1) / group
	var total blockStats
	// Serial fast path: see EncodeTo — the closure plus the counters it
	// captures by address would otherwise allocate per Decode.
	if parallel.Clamp(c.Workers, groups) == 1 {
		c.decodeGroups(out, chk, 0, groups, group, nb, &total)
	} else {
		var detected, corrBits, corrBlocks, uncorrectable int64
		parallel.For(groups, c.Workers, func(glo, ghi int) {
			var st blockStats
			c.decodeGroups(out, chk, glo, ghi, group, nb, &st)
			atomic.AddInt64(&detected, st.det)
			atomic.AddInt64(&corrBits, st.bits)
			atomic.AddInt64(&corrBlocks, st.blocks)
			atomic.AddInt64(&uncorrectable, st.unc)
		})
		total = blockStats{det: detected, bits: corrBits, blocks: corrBlocks, unc: uncorrectable}
	}
	rep.DetectedBlocks = int(total.det)
	rep.CorrectedBits = int(total.bits)
	rep.CorrectedBlocks = int(total.blocks)
	if total.unc > 0 {
		return out, rep, fmt.Errorf("%w: %d block(s) with multi-bit damage", ecc.ErrUncorrectable, total.unc)
	}
	return out, rep, nil
}

// decodeGroups verifies and repairs block groups [glo, ghi) of out,
// accumulating into st; safe to run concurrently on disjoint ranges.
func (c *Code) decodeGroups(out, chk []byte, glo, ghi, group, nb int, st *blockStats) {
	cl := c.P.CheckLen
	if cl == 8 {
		// Byte-aligned check words (group == 1): read directly.
		for b := glo; b < ghi; b++ {
			c.decodeBlock(out, b, uint16(chk[b]), st)
		}
		return
	}
	// Load each group's byte-aligned check span into a uint64 and peel
	// the per-block fields MSB-first — the word-level replacement for
	// per-bit readBits.
	for g := glo; g < ghi; g++ {
		b0 := g * group
		b1 := min(b0+group, nb)
		nbits := (b1 - b0) * cl
		nbytes := (nbits + 7) / 8
		off := b0 * cl / 8
		var acc uint64
		for k := 0; k < nbytes; k++ {
			acc = acc<<8 | uint64(chk[off+k])
		}
		sh := uint(nbytes * 8)
		for b := b0; b < b1; b++ {
			sh -= uint(cl)
			c.decodeBlock(out, b, uint16(acc>>sh)&((1<<cl)-1), st)
		}
	}
}

// DecodeRef is the retained scalar reference implementation of Decode
// (per-bit readBits unpacking), kept for differential tests and as the
// benchmark baseline. Results are identical to Decode's.
func (c *Code) DecodeRef(encoded []byte, origLen int) ([]byte, ecc.Report, error) {
	var rep ecc.Report
	if origLen < 0 || len(encoded) < c.EncodedSize(origLen) {
		return nil, rep, fmt.Errorf("%w: need %d bytes, have %d", ecc.ErrTruncated, c.EncodedSize(origLen), len(encoded))
	}
	out := make([]byte, origLen)
	copy(out, encoded[:origLen])
	chk := encoded[origLen:c.EncodedSize(origLen)]
	nb := c.blocks(origLen)
	cl := c.P.CheckLen
	var st blockStats
	bitPos := 0
	for b := 0; b < nb; b++ {
		stored := uint16(readBits(chk, bitPos, cl))
		bitPos += cl
		c.decodeBlock(out, b, stored, &st)
	}
	rep.DetectedBlocks = int(st.det)
	rep.CorrectedBits = int(st.bits)
	rep.CorrectedBlocks = int(st.blocks)
	if st.unc > 0 {
		return out, rep, fmt.Errorf("%w: %d block(s) with multi-bit damage", ecc.ErrUncorrectable, st.unc)
	}
	return out, rep, nil
}

// writeBits stores the low `width` bits of v into buf starting at
// absolute bit position pos (MSB-first within each byte), most
// significant of the field first.
func writeBits(buf []byte, pos int, v uint64, width int) {
	for i := width - 1; i >= 0; i-- {
		if v>>i&1 == 1 {
			buf[pos/8] |= 0x80 >> (pos % 8)
		}
		pos++
	}
}

// readBits extracts `width` bits starting at bit position pos.
func readBits(buf []byte, pos int, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		v = v<<1 | uint64(buf[pos/8]>>(7-pos%8)&1)
		pos++
	}
	return v
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

var (
	_ ecc.Code      = (*Code)(nil)
	_ ecc.EncoderTo = (*Code)(nil)
	_ ecc.DecoderTo = (*Code)(nil)
)
