package hamming

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/ecc"
)

// kernelLens exercises empty inputs, partial trailing blocks, group
// boundaries, and buffers large enough for several worker spans.
var kernelLens = []int{0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 100, 511, 512, 513, 4096, 4099}

func kernelCodes() []*Code {
	return []*Code{
		New(8, 1), New(64, 1),
		NewExtended(8, 1, "secded8"), NewExtended(64, 1, "secded64"),
		New(8, 4), New(64, 4),
		NewExtended(8, 4, "secded8"), NewExtended(64, 4, "secded64"),
	}
}

// TestEncodeMatchesRef pins the word-packed check path to the per-bit
// scalar reference for every code family and awkward length.
func TestEncodeMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, c := range kernelCodes() {
		for _, n := range kernelLens {
			data := make([]byte, n)
			rng.Read(data)
			got := c.Encode(data)
			want := c.EncodeRef(data)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s workers=%d n=%d: Encode diverges from EncodeRef", c.Name(), c.Workers, n)
			}
		}
	}
}

// TestDecodeMatchesRef corrupts encodings with random flips — clean,
// correctable, and uncorrectable alike — and requires the word-level
// decode to agree with the reference on output, report, and error.
func TestDecodeMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, c := range kernelCodes() {
		for _, n := range kernelLens {
			data := make([]byte, n)
			rng.Read(data)
			enc := c.Encode(data)
			for _, flips := range []int{0, 1, 2, 5} {
				cor := append([]byte(nil), enc...)
				for f := 0; f < flips && len(cor) > 0; f++ {
					i := rng.Intn(len(cor) * 8)
					cor[i/8] ^= 0x80 >> (i % 8)
				}
				got, gotRep, gotErr := c.Decode(cor, n)
				want, wantRep, wantErr := c.DecodeRef(cor, n)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s n=%d flips=%d: Decode output diverges from DecodeRef", c.Name(), n, flips)
				}
				if gotRep != wantRep {
					t.Fatalf("%s n=%d flips=%d: report %+v != %+v", c.Name(), n, flips, gotRep, wantRep)
				}
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("%s n=%d flips=%d: error %v != %v", c.Name(), n, flips, gotErr, wantErr)
				}
			}
		}
	}
}

// TestRefRoundTrip keeps the reference implementations honest on their
// own: encode, flip one bit, decode, expect the original back.
func TestRefRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, c := range []*Code{New(64, 1), NewExtended(64, 1, "secded64")} {
		data := make([]byte, 256)
		rng.Read(data)
		enc := c.EncodeRef(data)
		i := rng.Intn(len(enc) * 8)
		enc[i/8] ^= 0x80 >> (i % 8)
		out, rep, err := c.DecodeRef(enc, len(data))
		if err != nil {
			t.Fatalf("%s: single flip should correct: %v", c.Name(), err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("%s: reference round trip corrupted data", c.Name())
		}
		if rep.CorrectedBits != 1 {
			t.Fatalf("%s: corrected %d bits, want 1", c.Name(), rep.CorrectedBits)
		}
	}
}

// TestDecodeRefTruncated mirrors Decode's truncation contract.
func TestDecodeRefTruncated(t *testing.T) {
	c := New(64, 1)
	if _, _, err := c.DecodeRef(make([]byte, 3), 64); !errors.Is(err, ecc.ErrTruncated) {
		t.Fatalf("expected ErrTruncated, got %v", err)
	}
}
