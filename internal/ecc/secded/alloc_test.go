package secded_test

import (
	"testing"

	"repro/internal/ecc"
	"repro/internal/ecc/secded"
	"repro/internal/raceflag"
)

// TestSECDEDEncodeToAllocFree pins the steady-state contract for the
// hottest ECC configuration: SEC-DED(72,64) EncodeTo/DecodeTo with a
// reused dst and scratch allocate nothing after warm-up.
func TestSECDEDEncodeToAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation accounting is unreliable under the race detector")
	}
	c := secded.New(64, 1)
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i * 17)
	}
	var s ecc.Scratch
	dst := make([]byte, c.EncodedSize(len(data)))
	ddst := make([]byte, len(data))
	enc := c.EncodeTo(dst, data, &s)
	if avg := testing.AllocsPerRun(100, func() { c.EncodeTo(dst, data, &s) }); avg != 0 {
		t.Errorf("EncodeTo allocates %.2f allocs/op, want 0", avg)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, _, err := c.DecodeTo(ddst, enc, len(data), &s); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("DecodeTo allocates %.2f allocs/op, want 0", avg)
	}
}
