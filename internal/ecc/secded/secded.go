// Package secded implements ARC's SEC-DED (single-error-correct,
// double-error-detect) codes: extended Hamming codes with an extra
// overall parity bit over 8-bit and 64-bit data blocks, i.e. the
// classical (13,8) and (72,64) codes.
//
// The codeword engine lives in internal/ecc/hamming; this package
// instantiates its extended variant and brands it with the SEC-DED
// family name and capabilities.
package secded

import (
	"fmt"

	"repro/internal/ecc"
	"repro/internal/ecc/hamming"
)

// New returns a SEC-DED code over dataBits-wide blocks (8 or 64).
func New(dataBits, workers int) *hamming.Code {
	return hamming.NewExtended(dataBits, workers, fmt.Sprintf("secded%d", dataBits))
}

var _ ecc.Code = (*hamming.Code)(nil)
