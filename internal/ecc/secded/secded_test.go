package secded

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/ecc"
)

func TestNameAndOverhead(t *testing.T) {
	c8 := New(8, 1)
	if c8.Name() != "secded8" {
		t.Fatalf("name %q", c8.Name())
	}
	if c8.Overhead() != 5.0/8.0 {
		t.Fatalf("secded8 overhead %f, want 0.625", c8.Overhead())
	}
	c64 := New(64, 1)
	if c64.Name() != "secded64" {
		t.Fatalf("name %q", c64.Name())
	}
	if c64.Overhead() != 0.125 {
		t.Fatalf("secded64 overhead %f, want 0.125 (the (72,64) code)", c64.Overhead())
	}
}

func TestSingleErrorCorrectedDoubleDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := New(64, 1)
	data := make([]byte, 64)
	rng.Read(data)
	enc := c.Encode(data)

	// Single flip anywhere: corrected.
	for trial := 0; trial < 200; trial++ {
		bit := rng.Intn(len(enc) * 8)
		mut := append([]byte(nil), enc...)
		mut[bit/8] ^= 0x80 >> (bit % 8)
		got, rep, err := c.Decode(mut, len(data))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("single flip at %d not corrected: %v", bit, err)
		}
		if rep.CorrectedBlocks != 1 {
			t.Fatalf("expected exactly 1 corrected block, got %d", rep.CorrectedBlocks)
		}
	}

	// Double flip within one 8-byte block: detected, never silently
	// miscorrected.
	for trial := 0; trial < 200; trial++ {
		blockStart := (rng.Intn(len(data)/8) * 8) * 8 // bit offset of a data block
		b1 := blockStart + rng.Intn(64)
		b2 := blockStart + rng.Intn(64)
		if b1 == b2 {
			continue
		}
		mut := append([]byte(nil), enc...)
		mut[b1/8] ^= 0x80 >> (b1 % 8)
		mut[b2/8] ^= 0x80 >> (b2 % 8)
		got, _, err := c.Decode(mut, len(data))
		if err == nil {
			if !bytes.Equal(got, data) {
				t.Fatalf("double flip (%d, %d) silently miscorrected", b1, b2)
			}
			continue
		}
		if !errors.Is(err, ecc.ErrUncorrectable) {
			t.Fatalf("wrong error: %v", err)
		}
	}
}

func TestErrorsInDifferentBlocksAllCorrected(t *testing.T) {
	// SEC-DED corrects one error per codeword, so flips in distinct
	// blocks are all repairable — this is why ARC's 1-error-per-MB
	// resiliency constraint maps to SEC-DED over 8-byte blocks.
	rng := rand.New(rand.NewSource(10))
	c := New(64, 1)
	data := make([]byte, 1024)
	rng.Read(data)
	enc := c.Encode(data)
	// Flip one bit in each of ten distinct data blocks.
	for b := 0; b < 10; b++ {
		bit := (b*13)*64 + rng.Intn(64)
		enc[bit/8] ^= 0x80 >> (bit % 8)
	}
	got, rep, err := c.Decode(enc, len(data))
	if err != nil {
		t.Fatalf("distinct-block errors should all correct: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("corrected output mismatch")
	}
	if rep.CorrectedBlocks != 10 {
		t.Fatalf("corrected %d blocks, want 10", rep.CorrectedBlocks)
	}
}

func TestCaps(t *testing.T) {
	c := New(64, 1)
	if !c.Caps().Has(ecc.CorrectSparse) || !c.Caps().Has(ecc.DetectSparse) {
		t.Fatal("secded must detect and correct sparse errors")
	}
	if c.Caps().Has(ecc.CorrectBurst) {
		t.Fatal("secded must not claim burst correction")
	}
}
