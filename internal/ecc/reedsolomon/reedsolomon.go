// Package reedsolomon implements ARC's strongest protection: a
// systematic Reed-Solomon erasure code over GF(2^8), the stand-in for
// the Jerasure library the paper leverages.
//
// Data is striped across K equally sized "data devices"; each stripe
// gains M parity ("code") devices computed from a Vandermonde-derived
// systematic generator matrix. A per-device CRC-32 locates corrupted
// devices — turning errors into erasures — and any M or fewer corrupted
// devices per stripe are rebuilt by inverting the surviving rows of the
// generator matrix. Because whole devices are repaired regardless of
// how many bits within them flipped, the code corrects dense burst
// errors, matching the paper's ARC_COR_BURST capability.
//
// Stripe layout: K data devices, then M parity devices, then a CRC
// table of 4 bytes per device. A corrupted CRC entry merely marks its
// (healthy) device as an erasure, which the same machinery repairs.
package reedsolomon

import (
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"repro/internal/ecc"
	"repro/internal/gf256"
	"repro/internal/parallel"
)

// castagnoli is the CRC-32C table used for device checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Code is a Reed-Solomon code with K data devices and M code devices
// per stripe of K*DeviceSize bytes.
type Code struct {
	K          int // data devices per stripe
	M          int // code (parity) devices per stripe
	DeviceSize int // bytes per device
	Workers    int
	// ChecksumBytes is the per-device checksum width: 4 (CRC-32C, the
	// default) or 2 (truncated CRC-16 — less overhead, but a corrupted
	// device escapes detection with probability 2^-16 instead of
	// 2^-32; see BenchmarkAblationCRCWidth).
	ChecksumBytes int

	gen *gf256.Matrix // (K+M) x K systematic generator
}

// DefaultDeviceSize is used when callers pass deviceSize <= 0.
const DefaultDeviceSize = 1024

// genCache memoizes generator matrices per (K, M): deriving one costs
// a K x K inversion, which would otherwise dominate small encodes.
// Cached matrices are immutable after construction.
var genCache sync.Map // genKey -> *gf256.Matrix

type genKey struct{ k, m int }

// New constructs a Reed-Solomon code. K and M must be positive with
// K+M <= 256 (the field order); deviceSize <= 0 selects
// DefaultDeviceSize.
func New(k, m, deviceSize, workers int) (*Code, error) {
	if deviceSize <= 0 {
		deviceSize = DefaultDeviceSize
	}
	var gen *gf256.Matrix
	if cached, ok := genCache.Load(genKey{k, m}); ok {
		gen = cached.(*gf256.Matrix)
	} else {
		var err error
		gen, err = gf256.RSGeneratorMatrix(k, m)
		if err != nil {
			return nil, fmt.Errorf("reedsolomon: %w", err)
		}
		genCache.Store(genKey{k, m}, gen)
	}
	return &Code{K: k, M: m, DeviceSize: deviceSize, Workers: workers, ChecksumBytes: 4, gen: gen}, nil
}

// NewCauchy is New with a Cauchy-derived generator matrix instead of
// the Vandermonde one (Jerasure offers both constructions; the codes
// are equally MDS but not stream-compatible with each other).
func NewCauchy(k, m, deviceSize, workers int) (*Code, error) {
	if deviceSize <= 0 {
		deviceSize = DefaultDeviceSize
	}
	gen, err := gf256.RSCauchyGeneratorMatrix(k, m)
	if err != nil {
		return nil, fmt.Errorf("reedsolomon: %w", err)
	}
	return &Code{K: k, M: m, DeviceSize: deviceSize, Workers: workers, ChecksumBytes: 4, gen: gen}, nil
}

// WithChecksumBytes returns a copy of the code using the given device
// checksum width (2 or 4 bytes).
func (c *Code) WithChecksumBytes(n int) (*Code, error) {
	if n != 2 && n != 4 {
		return nil, fmt.Errorf("reedsolomon: checksum width must be 2 or 4, got %d", n)
	}
	cc := *c
	cc.ChecksumBytes = n
	return &cc, nil
}

// csBytes is ChecksumBytes with the zero value treated as 4.
func (c *Code) csBytes() int {
	if c.ChecksumBytes == 0 {
		return 4
	}
	return c.ChecksumBytes
}

// checksum computes the device checksum at the configured width.
func (c *Code) checksum(dev []byte) uint32 {
	sum := crc32.Checksum(dev, castagnoli)
	if c.csBytes() == 2 {
		return sum & 0xFFFF
	}
	return sum
}

// putCS/getCS store checksums at the configured width.
func (c *Code) putCS(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	if c.csBytes() == 4 {
		b[2] = byte(v >> 16)
		b[3] = byte(v >> 24)
	}
}

func (c *Code) getCS(b []byte) uint32 {
	v := uint32(b[0]) | uint32(b[1])<<8
	if c.csBytes() == 4 {
		v |= uint32(b[2])<<16 | uint32(b[3])<<24
	}
	return v
}

// Name implements ecc.Code.
func (c *Code) Name() string { return fmt.Sprintf("rs-k%d-m%d", c.K, c.M) }

// Caps implements ecc.Code.
func (c *Code) Caps() ecc.Capability {
	return ecc.DetectSparse | ecc.CorrectSparse | ecc.CorrectBurst
}

func (c *Code) stripeDataBytes() int { return c.K * c.DeviceSize }

func (c *Code) stripeEncBytes() int {
	return (c.K+c.M)*c.DeviceSize + (c.K+c.M)*c.csBytes()
}

// Overhead implements ecc.Code.
func (c *Code) Overhead() float64 {
	return float64(c.stripeEncBytes()-c.stripeDataBytes()) / float64(c.stripeDataBytes())
}

func (c *Code) stripes(n int) int {
	if n == 0 {
		return 0
	}
	return (n + c.stripeDataBytes() - 1) / c.stripeDataBytes()
}

// EncodedSize implements ecc.Code.
func (c *Code) EncodedSize(n int) int { return c.stripes(n) * c.stripeEncBytes() }

// MaxCorrectableDevices returns M, the per-stripe correction budget.
func (c *Code) MaxCorrectableDevices() int { return c.M }

// Encode implements ecc.Code.
func (c *Code) Encode(data []byte) []byte {
	return c.EncodeTo(nil, data, nil)
}

// EncodeTo implements ecc.EncoderTo. The stripe encoder assigns every
// output byte (including explicit zero padding of a partial final
// stripe), so a reused dst needs no up-front clearing.
func (c *Code) EncodeTo(dst, data []byte, _ *ecc.Scratch) []byte {
	n := len(data)
	ns := c.stripes(n)
	out := ecc.GrowTo(dst, c.EncodedSize(n))
	// The serial case calls the range body directly: a closure passed
	// to parallel.For escapes (For hands it to goroutines on its other
	// path), which would cost an allocation per Encode even for one
	// worker — the chunk-stream steady state this code serves.
	if parallel.Clamp(c.Workers, ns) == 1 {
		c.encodeRange(data, out, 0, ns)
	} else {
		parallel.For(ns, c.Workers, func(lo, hi int) {
			c.encodeRange(data, out, lo, hi)
		})
	}
	return out
}

// encodeRange encodes stripes [lo, hi); safe to run concurrently on
// disjoint ranges.
func (c *Code) encodeRange(data, out []byte, lo, hi int) {
	n := len(data)
	sdb := c.stripeDataBytes()
	seb := c.stripeEncBytes()
	for s := lo; s < hi; s++ {
		src := data[min(s*sdb, n):min((s+1)*sdb, n)]
		c.encodeStripe(src, out[s*seb:(s+1)*seb])
	}
}

// encodeStripe fills one encoded stripe from up to stripeDataBytes of
// source data (shorter input is zero-padded).
func (c *Code) encodeStripe(src, dst []byte) {
	ds := c.DeviceSize
	copy(dst, src)
	if len(src) < c.K*ds {
		// Zero-pad the final partial stripe explicitly: dst may be a
		// reused buffer with stale contents.
		clear(dst[len(src) : c.K*ds])
	}
	devices := dst[:(c.K+c.M)*ds]
	// Parity devices: parity_i = sum_j gen[K+i][j] * data_j, row-major
	// over the generator so each coefficient's cached gf256.Table row
	// stays hot for a full device-length pass. The first term
	// overwrites (the parity device starts zeroed, so assign == xor)
	// and saves one read-modify-write pass over pdev.
	for i := 0; i < c.M; i++ {
		row := c.gen.Row(c.K + i)
		pdev := devices[(c.K+i)*ds : (c.K+i+1)*ds]
		gf256.MulSliceAssign(row[0], devices[:ds], pdev)
		for j := 1; j < c.K; j++ {
			gf256.MulSlice(row[j], devices[j*ds:(j+1)*ds], pdev)
		}
	}
	// Checksum table.
	cs := c.csBytes()
	crcs := dst[(c.K+c.M)*ds:]
	for d := 0; d < c.K+c.M; d++ {
		c.putCS(crcs[d*cs:], c.checksum(devices[d*ds:(d+1)*ds]))
	}
}

// Decode implements ecc.Code.
func (c *Code) Decode(encoded []byte, origLen int) ([]byte, ecc.Report, error) {
	return c.DecodeTo(nil, encoded, origLen, nil)
}

// DecodeTo implements ecc.DecoderTo. The clean path (no corrupt
// devices) performs no allocations beyond growing dst; the repair path
// allocates its inversion scratch, which is acceptable because repair
// is the rare case.
func (c *Code) DecodeTo(dst, encoded []byte, origLen int, _ *ecc.Scratch) ([]byte, ecc.Report, error) {
	var rep ecc.Report
	if origLen < 0 || len(encoded) < c.EncodedSize(origLen) {
		return nil, rep, fmt.Errorf("%w: need %d bytes, have %d", ecc.ErrTruncated, c.EncodedSize(origLen), len(encoded))
	}
	ns := c.stripes(origLen)
	out := ecc.GrowTo(dst, origLen)
	var detected, corrected, failed int64
	// Serial fast path: see EncodeTo. The atomics live inside the
	// parallel branch — counters captured by an escaping closure are
	// heap-allocated at their declaration, so they must not be declared
	// on the path the steady state takes.
	if parallel.Clamp(c.Workers, ns) == 1 {
		detected, corrected, failed = c.decodeRange(encoded, out, origLen, 0, ns)
	} else {
		var adet, acor, afail int64
		parallel.For(ns, c.Workers, func(lo, hi int) {
			ldet, lcor, lfail := c.decodeRange(encoded, out, origLen, lo, hi)
			atomic.AddInt64(&adet, ldet)
			atomic.AddInt64(&acor, lcor)
			atomic.AddInt64(&afail, lfail)
		})
		detected, corrected, failed = adet, acor, afail
	}
	rep.DetectedBlocks = int(detected)
	rep.CorrectedBlocks = int(corrected)
	if failed > 0 {
		return out, rep, fmt.Errorf("%w: %d stripe(s) had more than %d corrupt devices", ecc.ErrUncorrectable, failed, c.M)
	}
	return out, rep, nil
}

// decodeRange decodes stripes [lo, hi), returning local counters; safe
// to run concurrently on disjoint ranges.
func (c *Code) decodeRange(encoded, out []byte, origLen, lo, hi int) (det, cor, fail int64) {
	sdb := c.stripeDataBytes()
	seb := c.stripeEncBytes()
	for s := lo; s < hi; s++ {
		dst := out[min(s*sdb, origLen):min((s+1)*sdb, origLen)]
		d, co, err := c.decodeStripe(encoded[s*seb:(s+1)*seb], dst)
		det += int64(d)
		cor += int64(co)
		if err != nil {
			fail++
		}
	}
	return det, cor, fail
}

// decodeStripe verifies one stripe and writes the recovered data
// region into dst (len(dst) <= stripeDataBytes for the final stripe).
// It returns the number of corrupt devices detected and rebuilt.
func (c *Code) decodeStripe(stripe, dst []byte) (detected, corrected int, err error) {
	ds := c.DeviceSize
	total := c.K + c.M
	devices := stripe[:total*ds]
	crcs := stripe[total*ds:]
	cs := c.csBytes()
	var bad []int
	for d := 0; d < total; d++ {
		if c.checksum(devices[d*ds:(d+1)*ds]) != c.getCS(crcs[d*cs:]) {
			bad = append(bad, d)
		}
	}
	if len(bad) == 0 {
		copy(dst, devices)
		return 0, 0, nil
	}
	detected = len(bad)
	if len(bad) > c.M {
		// Best effort: return the raw data region so callers can
		// inspect, but flag the stripe as unrecoverable.
		copy(dst, devices)
		return detected, 0, ecc.ErrUncorrectable
	}
	isBad := make(map[int]bool, len(bad))
	for _, d := range bad {
		isBad[d] = true
	}
	// Select the first K healthy devices and invert their generator
	// rows: data = inv * healthy.
	good := make([]int, 0, c.K)
	for d := 0; d < total && len(good) < c.K; d++ {
		if !isBad[d] {
			good = append(good, d)
		}
	}
	sub := c.gen.SubMatrix(good)
	inv, ierr := sub.Invert()
	if ierr != nil {
		// Cannot happen for an MDS code; treat defensively as failure.
		copy(dst, devices)
		return detected, 0, ecc.ErrUncorrectable
	}
	// Rebuild only the bad *data* devices; parity devices need no
	// reconstruction to produce output. The input stripe is never
	// modified: repairs land in a scratch copy of the data region.
	scratch := make([]byte, c.K*ds)
	copy(scratch, devices[:c.K*ds])
	for _, d := range bad {
		if d >= c.K {
			corrected++ // parity device: repairable, not needed
			continue
		}
		rebuilt := scratch[d*ds : (d+1)*ds]
		row := inv.Row(d)
		// First term assigns (no zeroing pass needed), the rest
		// accumulate — same row-major shape as encodeStripe.
		gf256.MulSliceAssign(row[0], devices[good[0]*ds:(good[0]+1)*ds], rebuilt)
		for j := 1; j < len(good); j++ {
			g := good[j]
			gf256.MulSlice(row[j], devices[g*ds:(g+1)*ds], rebuilt)
		}
		corrected++
	}
	copy(dst, scratch)
	return detected, corrected, nil
}

var (
	_ ecc.Code      = (*Code)(nil)
	_ ecc.EncoderTo = (*Code)(nil)
	_ ecc.DecoderTo = (*Code)(nil)
)
