package reedsolomon

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ecc"
)

func mustNew(t *testing.T, k, m, ds, w int) *Code {
	t.Helper()
	c, err := New(k, m, ds, w)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2, 64, 1); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := New(2, 0, 64, 1); err == nil {
		t.Fatal("m=0 must fail")
	}
	if _, err := New(200, 100, 64, 1); err == nil {
		t.Fatal("k+m > 256 must fail")
	}
	c, err := New(4, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.DeviceSize != DefaultDeviceSize {
		t.Fatal("deviceSize <= 0 must select the default")
	}
}

func TestRoundTripClean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, cfg := range []struct{ k, m, ds int }{
		{4, 2, 16}, {10, 4, 64}, {241, 15, 32}, {153, 103, 16},
	} {
		c := mustNew(t, cfg.k, cfg.m, cfg.ds, 1)
		for _, n := range []int{0, 1, cfg.ds - 1, cfg.ds, cfg.k * cfg.ds, cfg.k*cfg.ds + 1, 3 * cfg.k * cfg.ds} {
			data := make([]byte, n)
			rng.Read(data)
			enc := c.Encode(data)
			if len(enc) != c.EncodedSize(n) {
				t.Fatalf("k=%d m=%d n=%d: size mismatch", cfg.k, cfg.m, n)
			}
			got, rep, err := c.Decode(enc, n)
			if err != nil {
				t.Fatalf("clean decode: %v", err)
			}
			if rep.DetectedBlocks != 0 {
				t.Fatalf("clean decode detected %d devices", rep.DetectedBlocks)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("k=%d m=%d n=%d: mismatch", cfg.k, cfg.m, n)
			}
		}
	}
}

func TestCorrectsUpToMDeviceErasures(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := mustNew(t, 8, 3, 32, 1)
	data := make([]byte, 8*32*2) // two stripes
	rng.Read(data)
	enc := c.Encode(data)
	// Corrupt exactly M devices in stripe 0: smash whole devices.
	for _, d := range []int{1, 5, 9} { // two data devices + one parity
		off := d * 32
		for i := 0; i < 32; i++ {
			enc[off+i] ^= 0xFF
		}
	}
	got, rep, err := c.Decode(enc, len(data))
	if err != nil {
		t.Fatalf("M erasures must be correctable: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("rebuilt data mismatch")
	}
	if rep.DetectedBlocks != 3 || rep.CorrectedBlocks != 3 {
		t.Fatalf("report %+v, want 3 detected / 3 corrected", rep)
	}
}

func TestFailsBeyondMErasures(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := mustNew(t, 6, 2, 16, 1)
	data := make([]byte, 6*16)
	rng.Read(data)
	enc := c.Encode(data)
	for _, d := range []int{0, 2, 4} { // M+1 corrupt devices
		enc[d*16] ^= 0x01
	}
	_, rep, err := c.Decode(enc, len(data))
	if !errors.Is(err, ecc.ErrUncorrectable) {
		t.Fatalf("want ErrUncorrectable, got %v", err)
	}
	if rep.DetectedBlocks != 3 {
		t.Fatalf("detected %d, want 3", rep.DetectedBlocks)
	}
}

func TestBurstErrorWithinOneDevice(t *testing.T) {
	// The defining RS property for ARC: any number of flips inside M
	// devices is still one erasure each.
	rng := rand.New(rand.NewSource(14))
	c := mustNew(t, 10, 2, 64, 1)
	data := make([]byte, 10*64)
	rng.Read(data)
	enc := c.Encode(data)
	for i := 0; i < 64; i++ { // obliterate an entire device
		enc[3*64+i] = byte(rng.Intn(256))
	}
	got, _, err := c.Decode(enc, len(data))
	if err != nil {
		t.Fatalf("burst within one device must correct: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch after burst repair")
	}
}

func TestCRCTableCorruptionIsAnErasure(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	c := mustNew(t, 4, 2, 16, 1)
	data := make([]byte, 4*16)
	rng.Read(data)
	enc := c.Encode(data)
	// Flip a bit inside the CRC table: its device looks corrupt but is
	// healthy; rebuilding it must reproduce identical content.
	crcOff := (4 + 2) * 16
	enc[crcOff+1] ^= 0x40
	got, rep, err := c.Decode(enc, len(data))
	if err != nil {
		t.Fatalf("CRC-entry flip must be recoverable: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch after CRC-entry repair")
	}
	if rep.DetectedBlocks != 1 {
		t.Fatalf("detected %d, want 1", rep.DetectedBlocks)
	}
}

func TestDecodeDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	c := mustNew(t, 4, 2, 16, 1)
	data := make([]byte, 4*16)
	rng.Read(data)
	enc := c.Encode(data)
	enc[5] ^= 0x10
	snapshot := append([]byte(nil), enc...)
	if _, _, err := c.Decode(enc, len(data)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, snapshot) {
		t.Fatal("Decode mutated its input")
	}
}

func TestTruncated(t *testing.T) {
	c := mustNew(t, 4, 2, 16, 1)
	enc := c.Encode(make([]byte, 64))
	if _, _, err := c.Decode(enc[:len(enc)-1], 64); !errors.Is(err, ecc.ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestOverheadMatchesActual(t *testing.T) {
	c := mustNew(t, 241, 15, 64, 1)
	n := 241 * 64 * 4 // whole stripes so padding doesn't skew
	actual := float64(c.EncodedSize(n)-n) / float64(n)
	if diff := actual - c.Overhead(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Overhead()=%f actual=%f", c.Overhead(), actual)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	data := make([]byte, 8*32*7+5)
	rng.Read(data)
	serial := mustNew(t, 8, 3, 32, 1).Encode(data)
	for _, w := range []int{2, 4} {
		par := mustNew(t, 8, 3, 32, w).Encode(data)
		if !bytes.Equal(serial, par) {
			t.Fatalf("workers=%d: encoding differs", w)
		}
	}
}

func TestQuickRandomDeviceCorruption(t *testing.T) {
	c := mustNew(t, 6, 3, 8, 1)
	rng := rand.New(rand.NewSource(18))
	prop := func(seed int64, nBad8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		data := make([]byte, 6*8*2)
		r.Read(data)
		enc := c.Encode(data)
		nBad := int(nBad8) % 4 // 0..3 == up to M
		// Pick distinct devices within stripe 0.
		perm := rng.Perm(9)[:nBad]
		for _, d := range perm {
			off := d * 8
			enc[off+r.Intn(8)] ^= byte(1 << r.Intn(8))
		}
		got, _, err := c.Decode(enc, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperConfigurations(t *testing.T) {
	// The configurations the paper reports ARC choosing: 241+15 under a
	// 0.2 memory constraint and 153+103 under 0.9.
	rng := rand.New(rand.NewSource(19))
	for _, cfg := range []struct{ k, m int }{{241, 15}, {153, 103}} {
		c := mustNew(t, cfg.k, cfg.m, 64, 2)
		data := make([]byte, cfg.k*64)
		rng.Read(data)
		enc := c.Encode(data)
		// Corrupt m/2 devices.
		for d := 0; d < cfg.m/2; d++ {
			enc[d*2*64] ^= 0xAA
		}
		got, _, err := c.Decode(enc, len(data))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("k=%d m=%d failed: %v", cfg.k, cfg.m, err)
		}
	}
}

func TestNameCaps(t *testing.T) {
	c := mustNew(t, 241, 15, 0, 1)
	if c.Name() != "rs-k241-m15" {
		t.Fatalf("name %q", c.Name())
	}
	if !c.Caps().Has(ecc.CorrectBurst) {
		t.Fatal("RS must claim burst correction")
	}
	if c.MaxCorrectableDevices() != 15 {
		t.Fatal("MaxCorrectableDevices mismatch")
	}
}

func TestChecksumWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	base := mustNew(t, 8, 3, 64, 1)
	for _, w := range []int{2, 4} {
		c, err := base.WithChecksumBytes(w)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 8*64*2+13)
		rng.Read(data)
		enc := c.Encode(data)
		// CRC-16 saves 2 bytes per device vs CRC-32.
		if w == 2 && len(enc) >= base.EncodedSize(len(data)) {
			t.Fatal("CRC-16 must shrink the stream")
		}
		got, _, err := c.Decode(enc, len(data))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("width %d: clean round trip failed: %v", w, err)
		}
		// Device corruption still located and repaired.
		enc[70] ^= 0x5A
		got, rep, err := c.Decode(enc, len(data))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("width %d: repair failed: %v", w, err)
		}
		if rep.CorrectedBlocks != 1 {
			t.Fatalf("width %d: corrected %d", w, rep.CorrectedBlocks)
		}
	}
	if _, err := base.WithChecksumBytes(3); err == nil {
		t.Fatal("width 3 must fail")
	}
}

func TestCauchyConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c, err := NewCauchy(8, 3, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 8*32*2+9)
	rng.Read(data)
	enc := c.Encode(data)
	// Smash three devices in stripe 0 (the full correction budget).
	for _, d := range []int{0, 4, 9} {
		for i := 0; i < 32; i++ {
			enc[d*32+i] ^= 0xC3
		}
	}
	got, rep, err := c.Decode(enc, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("cauchy repair failed: %v", err)
	}
	if rep.CorrectedBlocks != 3 {
		t.Fatalf("corrected %d", rep.CorrectedBlocks)
	}
	// Cauchy and Vandermonde streams are intentionally incompatible.
	v := mustNew(t, 8, 3, 32, 1)
	venc := v.Encode(data)
	if bytes.Equal(venc, c.Encode(data)) {
		t.Fatal("different generators should produce different parity")
	}
	if _, err := NewCauchy(0, 3, 32, 1); err == nil {
		t.Fatal("invalid shape must fail")
	}
}
