// Package ecc defines the shared contract implemented by ARC's four
// error-correcting codes (parity, Hamming, SEC-DED, Reed-Solomon) and
// the capability/flag vocabulary the ARC optimizer filters on.
package ecc

import "errors"

// Code is an error-correcting code over byte streams. Implementations
// are stateless after construction and safe for concurrent use.
type Code interface {
	// Name identifies the code and its parameters, e.g. "secded8" or
	// "rs-k241-m15".
	Name() string

	// Overhead is the asymptotic storage overhead as a fraction of the
	// input size (0.125 means the encoded stream is ~12.5% larger).
	Overhead() float64

	// EncodedSize returns the exact encoded length in bytes for an
	// input of n bytes.
	EncodedSize(n int) int

	// Encode protects data and returns the encoded stream. The input
	// is not modified.
	Encode(data []byte) []byte

	// Decode verifies encoded, corrects what it can, and returns the
	// original data (of length origLen, which the caller persists out
	// of band — ARC's container header carries it). A non-nil error
	// means errors were detected that the code could not correct; the
	// returned Report is valid either way.
	Decode(encoded []byte, origLen int) ([]byte, Report, error)

	// Caps describes what error patterns the code can detect/correct.
	Caps() Capability
}

// EncoderTo is the allocation-free variant of Code.Encode, implemented
// by all built-in codes. EncodeTo writes the encoded stream into dst
// when cap(dst) suffices (dst may be nil) and returns the encoded
// slice, which has length EncodedSize(len(data)) and aliases dst only
// when dst's capacity was used. dst must not overlap data. s provides
// reusable internal scratch and may be nil (fresh buffers are then
// allocated, making EncodeTo(nil, data, nil) equivalent to Encode).
type EncoderTo interface {
	EncodeTo(dst, data []byte, s *Scratch) []byte
}

// DecoderTo is the allocation-free variant of Code.Decode. DecodeTo
// writes the recovered data into dst when cap(dst) suffices (dst may
// be nil) and follows Decode's contract otherwise. dst must not
// overlap encoded. s provides reusable internal scratch and may be nil.
type DecoderTo interface {
	DecodeTo(dst, encoded []byte, origLen int, s *Scratch) ([]byte, Report, error)
}

// EncodeTo calls c.EncodeTo when c implements EncoderTo, and otherwise
// falls back to c.Encode plus a copy into dst. Use it to stay
// allocation-free with built-in codes while remaining correct for
// third-party Code implementations.
func EncodeTo(c Code, dst, data []byte, s *Scratch) []byte {
	if e, ok := c.(EncoderTo); ok {
		return e.EncodeTo(dst, data, s)
	}
	out := c.Encode(data)
	dst = GrowTo(dst, len(out))
	copy(dst, out)
	return dst
}

// DecodeTo calls c.DecodeTo when c implements DecoderTo, and otherwise
// falls back to c.Decode plus a copy into dst.
func DecodeTo(c Code, dst, encoded []byte, origLen int, s *Scratch) ([]byte, Report, error) {
	if d, ok := c.(DecoderTo); ok {
		return d.DecodeTo(dst, encoded, origLen, s)
	}
	out, rep, err := c.Decode(encoded, origLen)
	if out == nil {
		return nil, rep, err
	}
	dst = GrowTo(dst, len(out))
	copy(dst, out)
	return dst, rep, err
}

// Scratch is a grow-only arena of reusable byte buffers for the *To
// codec entry points. Each implementation addresses slots by small
// fixed indices of its own choosing; the arena never shrinks, so after
// warm-up repeated calls with the same shape allocate nothing. A
// Scratch must not be shared between concurrent calls. The zero value
// and nil are both ready to use (nil always allocates fresh buffers).
type Scratch struct {
	slots [][]byte
}

// Slot returns scratch buffer i resized to length n. Contents are
// unspecified — callers that need zeroed memory must clear it. Safe on
// a nil receiver, which degrades to a plain allocation.
func (s *Scratch) Slot(i, n int) []byte {
	if s == nil {
		return make([]byte, n)
	}
	for len(s.slots) <= i {
		s.slots = append(s.slots, nil)
	}
	s.slots[i] = GrowTo(s.slots[i], n)
	return s.slots[i]
}

// GrowTo returns b resized to length n, reusing b's storage when its
// capacity suffices and allocating otherwise. Contents are unspecified.
func GrowTo(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

// Report summarizes what a Decode observed.
type Report struct {
	// DetectedBlocks is the number of code blocks (parity blocks,
	// Hamming codewords, or RS devices) in which an error was detected.
	DetectedBlocks int
	// CorrectedBits is the number of bit corrections applied (for
	// Reed-Solomon, rebuilt devices count via CorrectedBlocks instead).
	CorrectedBits int
	// CorrectedBlocks is the number of code blocks fully repaired.
	CorrectedBlocks int
}

// Merge accumulates another report into r (used by parallel decodes).
func (r *Report) Merge(o Report) {
	r.DetectedBlocks += o.DetectedBlocks
	r.CorrectedBits += o.CorrectedBits
	r.CorrectedBlocks += o.CorrectedBlocks
}

// ErrUncorrectable reports that decode found errors beyond the code's
// correction ability. Wrap with context; test with errors.Is.
var ErrUncorrectable = errors.New("ecc: detected errors are uncorrectable")

// ErrTruncated reports that an encoded stream is shorter than its
// parameters require.
var ErrTruncated = errors.New("ecc: encoded stream truncated")

// Method enumerates the ECC families ARC offers (the paper's
// ARC_PARITY, ARC_HAMMING, ARC_SECDED, ARC_RS flags).
type Method uint8

const (
	MethodParity Method = iota + 1
	MethodHamming
	MethodSECDED
	MethodReedSolomon
	// MethodInterleavedSECDED is ARC's extension method: SEC-DED(72,64)
	// behind a codeword interleaver, correcting single bursts up to the
	// interleave depth at SEC-DED's storage cost.
	MethodInterleavedSECDED
)

// String returns the paper's flag spelling for the method.
func (m Method) String() string {
	switch m {
	case MethodParity:
		return "ARC_PARITY"
	case MethodHamming:
		return "ARC_HAMMING"
	case MethodSECDED:
		return "ARC_SECDED"
	case MethodReedSolomon:
		return "ARC_RS"
	case MethodInterleavedSECDED:
		return "ARC_IL_SECDED"
	default:
		return "ARC_UNKNOWN"
	}
}

// Capability is a bitmask of error-response abilities (the paper's
// ARC_DET_SPARSE, ARC_COR_SPARSE, ARC_COR_BURST flags).
type Capability uint8

const (
	// DetectSparse: detects sparse, uniformly distributed errors.
	DetectSparse Capability = 1 << iota
	// CorrectSparse: corrects sparse, uniformly distributed errors.
	CorrectSparse
	// CorrectBurst: corrects densely packed burst errors.
	CorrectBurst
)

// Has reports whether c includes every capability in want.
func (c Capability) Has(want Capability) bool { return c&want == want }

// String lists the capability flags in the paper's spelling.
func (c Capability) String() string {
	s := ""
	if c.Has(DetectSparse) {
		s += "ARC_DET_SPARSE|"
	}
	if c.Has(CorrectSparse) {
		s += "ARC_COR_SPARSE|"
	}
	if c.Has(CorrectBurst) {
		s += "ARC_COR_BURST|"
	}
	if s == "" {
		return "NONE"
	}
	return s[:len(s)-1]
}
