package ecc

import "testing"

func TestMethodString(t *testing.T) {
	want := map[Method]string{
		MethodParity:      "ARC_PARITY",
		MethodHamming:     "ARC_HAMMING",
		MethodSECDED:      "ARC_SECDED",
		MethodReedSolomon: "ARC_RS",
		Method(99):        "ARC_UNKNOWN",
	}
	for m, w := range want {
		if m.String() != w {
			t.Fatalf("%d: %q", m, m.String())
		}
	}
}

func TestCapabilityHas(t *testing.T) {
	c := DetectSparse | CorrectSparse
	if !c.Has(DetectSparse) || !c.Has(CorrectSparse) {
		t.Fatal("Has must match set bits")
	}
	if c.Has(CorrectBurst) {
		t.Fatal("Has must reject unset bits")
	}
	if !c.Has(DetectSparse | CorrectSparse) {
		t.Fatal("Has must accept subsets")
	}
	if c.Has(DetectSparse | CorrectBurst) {
		t.Fatal("Has requires every bit")
	}
	if !c.Has(0) {
		t.Fatal("empty requirement always satisfied")
	}
}

func TestCapabilityString(t *testing.T) {
	if got := (DetectSparse | CorrectSparse | CorrectBurst).String(); got != "ARC_DET_SPARSE|ARC_COR_SPARSE|ARC_COR_BURST" {
		t.Fatalf("full caps: %q", got)
	}
	if got := Capability(0).String(); got != "NONE" {
		t.Fatalf("empty caps: %q", got)
	}
	if got := CorrectBurst.String(); got != "ARC_COR_BURST" {
		t.Fatalf("single cap: %q", got)
	}
}

func TestReportMerge(t *testing.T) {
	a := Report{DetectedBlocks: 1, CorrectedBits: 2, CorrectedBlocks: 3}
	b := Report{DetectedBlocks: 10, CorrectedBits: 20, CorrectedBlocks: 30}
	a.Merge(b)
	if a.DetectedBlocks != 11 || a.CorrectedBits != 22 || a.CorrectedBlocks != 33 {
		t.Fatalf("merged %+v", a)
	}
}
