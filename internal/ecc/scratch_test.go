package ecc_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/ecc"
	"repro/internal/ecc/hamming"
	"repro/internal/ecc/interleave"
	"repro/internal/ecc/parity"
	"repro/internal/ecc/reedsolomon"
	"repro/internal/ecc/secded"
)

func testCodes(t *testing.T) []ecc.Code {
	t.Helper()
	rs, err := reedsolomon.New(5, 3, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	il, err := interleave.NewSECDED(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	return []ecc.Code{
		parity.New(8, 1),
		hamming.New(8, 1),
		hamming.New(64, 1),
		secded.New(64, 1),
		rs,
		il,
	}
}

// poison fills b with a nonzero pattern so stale scratch contents that
// leak into an output are caught by the byte-compare.
func poison(b []byte) []byte {
	for i := range b {
		b[i] = 0xA5
	}
	return b
}

// TestEncodeToMatchesEncode drives every code's EncodeTo/DecodeTo with
// deliberately dirty, reused dst and scratch buffers across many
// lengths (including partial final blocks/stripes/codewords) and
// requires byte-identical results to the allocating Encode/Decode.
func TestEncodeToMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lengths := []int{0, 1, 7, 8, 9, 63, 64, 65, 200, 319, 320, 321, 1000, 4096}
	for _, c := range testCodes(t) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			var scratch ecc.Scratch
			var dst, ddst []byte
			// Reuse dst/scratch across iterations in descending-then-
			// ascending length order so both grow and shrink paths run.
			for pass := 0; pass < 2; pass++ {
				for _, n := range lengths {
					data := make([]byte, n)
					rng.Read(data)

					want := c.Encode(data)
					dst = poison(ecc.GrowTo(dst, c.EncodedSize(n)))
					got := ecc.EncodeTo(c, dst, data, &scratch)
					if !bytes.Equal(got, want) {
						t.Fatalf("n=%d pass=%d: EncodeTo differs from Encode", n, pass)
					}

					wantDec, wantRep, wantErr := c.Decode(want, n)
					ddst = poison(ecc.GrowTo(ddst, n))
					gotDec, gotRep, gotErr := ecc.DecodeTo(c, ddst, got, n, &scratch)
					if !bytes.Equal(gotDec, wantDec) || gotRep != wantRep || !errors.Is(gotErr, wantErr) {
						t.Fatalf("n=%d pass=%d: DecodeTo differs from Decode (rep %+v vs %+v, err %v vs %v)",
							n, pass, gotRep, wantRep, gotErr, wantErr)
					}
					if !bytes.Equal(gotDec, data) {
						t.Fatalf("n=%d pass=%d: clean round trip corrupted data", n, pass)
					}
				}
				// Second pass ascends after the first descends.
				for i, j := 0, len(lengths)-1; i < j; i, j = i+1, j-1 {
					lengths[i], lengths[j] = lengths[j], lengths[i]
				}
			}
		})
	}
}

// TestDecodeToCorrectsWithDirtyScratch flips a bit and checks the *To
// path still corrects it with reused scratch.
func TestDecodeToCorrectsWithDirtyScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range testCodes(t) {
		if !c.Caps().Has(ecc.CorrectSparse) {
			continue
		}
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			var scratch ecc.Scratch
			var dst []byte
			data := make([]byte, 777)
			rng.Read(data)
			for trial := 0; trial < 8; trial++ {
				enc := ecc.EncodeTo(c, nil, data, &scratch)
				enc[rng.Intn(len(enc))] ^= 1 << rng.Intn(8)
				dst = poison(ecc.GrowTo(dst, len(data)))
				got, rep, err := ecc.DecodeTo(c, dst, enc, len(data), &scratch)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("trial %d: single flip not corrected", trial)
				}
				if rep.CorrectedBits+rep.CorrectedBlocks == 0 && rep.DetectedBlocks == 0 {
					// The flip may have landed in interleaver padding,
					// which no codeword covers — that's fine.
					continue
				}
			}
		})
	}
}

// fallbackCode implements only ecc.Code; the package helpers must
// still work (via Encode/Decode plus copy).
type fallbackCode struct{ ecc.Code }

func TestToHelpersFallBackForPlainCodes(t *testing.T) {
	base := parity.New(8, 1)
	c := fallbackCode{base}
	data := []byte("the quick brown fox jumps over the lazy dog")
	var scratch ecc.Scratch
	dst := poison(make([]byte, base.EncodedSize(len(data))))
	got := ecc.EncodeTo(c, dst, data, &scratch)
	if !bytes.Equal(got, base.Encode(data)) {
		t.Fatal("fallback EncodeTo mismatch")
	}
	dec, _, err := ecc.DecodeTo(c, poison(make([]byte, len(data))), got, len(data), &scratch)
	if err != nil || !bytes.Equal(dec, data) {
		t.Fatalf("fallback DecodeTo mismatch: %v", err)
	}
}

func TestScratchSlotGrowOnly(t *testing.T) {
	var s ecc.Scratch
	a := s.Slot(3, 100)
	if len(a) != 100 {
		t.Fatalf("slot len = %d, want 100", len(a))
	}
	b := s.Slot(3, 50)
	if len(b) != 50 || &a[0] != &b[0] {
		t.Fatal("shrinking a slot must reuse its storage")
	}
	var nilScratch *ecc.Scratch
	if got := nilScratch.Slot(0, 10); len(got) != 10 {
		t.Fatal("nil scratch must degrade to allocation")
	}
}
