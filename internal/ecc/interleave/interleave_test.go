package interleave

import (
	"bytes"
	"errors"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ecc"
	"repro/internal/ecc/secded"
)

func TestNewValidation(t *testing.T) {
	if _, err := NewSECDED(1, 1); err == nil {
		t.Fatal("depth 1 must fail")
	}
	if _, err := NewSECDED(0, 1); err == nil {
		t.Fatal("depth 0 must fail")
	}
	c, err := NewSECDED(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "ilsecded64" {
		t.Fatalf("name %q", c.Name())
	}
	if c.MaxBurstBytes() != 64 {
		t.Fatal("MaxBurstBytes")
	}
}

func TestCapsGainBurst(t *testing.T) {
	c, err := NewSECDED(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Caps().Has(ecc.CorrectBurst) {
		t.Fatal("interleaved secded must claim burst correction")
	}
	if !c.Caps().Has(ecc.CorrectSparse) {
		t.Fatal("inner caps must be preserved")
	}
	// Overhead must equal the inner code's (pure permutation).
	if c.Overhead() != secded.New(64, 1).Overhead() {
		t.Fatal("interleaving must not change overhead")
	}
}

func TestRoundTripClean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, depth := range []int{2, 16, 64, 256} {
		c, err := NewSECDED(depth, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{0, 1, depth - 1, depth, depth + 1, 10_000} {
			data := make([]byte, n)
			rng.Read(data)
			enc := c.Encode(data)
			if len(enc) != c.EncodedSize(n) {
				t.Fatalf("depth=%d n=%d: size mismatch", depth, n)
			}
			if len(enc)%depth != 0 {
				t.Fatal("encoded size must be a multiple of depth")
			}
			got, rep, err := c.Decode(enc, n)
			if err != nil {
				t.Fatalf("depth=%d n=%d: %v", depth, n, err)
			}
			if rep.DetectedBlocks != 0 {
				t.Fatal("clean decode flagged errors")
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("depth=%d n=%d: mismatch", depth, n)
			}
		}
	}
}

func TestCorrectsBurstUpToDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	depth := 64
	c, err := NewSECDED(depth, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 32<<10)
	rng.Read(data)
	enc := c.Encode(data)
	for trial := 0; trial < 50; trial++ {
		mut := append([]byte(nil), enc...)
		off := rng.Intn(len(mut) - depth)
		// A full-depth burst with every byte fully corrupted — the
		// worst case a failing DRAM device produces.
		for i := 0; i < depth; i++ {
			mut[off+i] ^= byte(1 + rng.Intn(255))
		}
		got, rep, err := c.Decode(mut, len(data))
		if err != nil {
			t.Fatalf("trial %d: burst not corrected: %v", trial, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d: mismatch", trial)
		}
		if rep.CorrectedBlocks == 0 {
			t.Fatal("no corrections reported")
		}
	}
}

func TestPlainSECDEDFailsSameBurst(t *testing.T) {
	// The motivating contrast: without interleaving the same burst
	// defeats SEC-DED.
	rng := rand.New(rand.NewSource(3))
	plain := secded.New(64, 1)
	data := make([]byte, 32<<10)
	rng.Read(data)
	enc := plain.Encode(data)
	failed := false
	for trial := 0; trial < 20 && !failed; trial++ {
		mut := append([]byte(nil), enc...)
		off := rng.Intn(len(mut) - 64)
		for i := 0; i < 64; i++ {
			mut[off+i] ^= byte(1 << rng.Intn(8))
		}
		if _, _, err := plain.Decode(mut, len(data)); err != nil {
			failed = true
		}
	}
	if !failed {
		t.Fatal("plain secded should fail a 64-byte burst")
	}
}

func TestSingleFlipStillCorrected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, err := NewSECDED(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4096)
	rng.Read(data)
	enc := c.Encode(data)
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), enc...)
		bit := rng.Intn(len(mut) * 8)
		mut[bit/8] ^= 0x80 >> (bit % 8)
		got, _, err := c.Decode(mut, len(data))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("trial %d: single flip not corrected: %v", trial, err)
		}
	}
}

func TestTruncated(t *testing.T) {
	c, err := NewSECDED(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	enc := c.Encode(make([]byte, 1000))
	if _, _, err := c.Decode(enc[:len(enc)-1], 1000); !errors.Is(err, ecc.ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	c, err := NewSECDED(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(data []byte) bool {
		enc := c.Encode(data)
		got, _, err := c.Decode(enc, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveIsBitPermutation(t *testing.T) {
	// Whitebox: bit interleaving is a pure permutation — the total
	// population count is preserved (padding contributes zeros).
	c, err := NewSECDED(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	inner := secded.New(64, 1).Encode(data)
	outer := c.Encode(data)
	pop := func(buf []byte) int {
		n := 0
		for _, b := range buf {
			n += bits.OnesCount8(b)
		}
		return n
	}
	if pop(inner) != pop(outer) {
		t.Fatalf("population count changed: %d -> %d", pop(inner), pop(outer))
	}
}

func TestSameCodewordBitsSpreadFarApart(t *testing.T) {
	// The guarantee behind burst correction: after interleaving, any
	// two bits of one codeword are >= 8*Depth output positions apart.
	depth := 8
	c, err := NewSECDED(depth, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := 16 << 10 // cols >> 73
	rows := 8 * depth
	cols := c.EncodedSize(n) * 8 / rows
	for _, cw := range []int{0, 7, 100, cwCount(n) - 1} {
		var positions []int
		for b := cw * cwLen * 8; b < (cw+1)*cwLen*8; b++ {
			row, col := b/cols, b%cols
			positions = append(positions, col*rows+row)
		}
		for i := 0; i < len(positions); i++ {
			for j := i + 1; j < len(positions); j++ {
				d := positions[i] - positions[j]
				if d < 0 {
					d = -d
				}
				if d < rows {
					t.Fatalf("codeword %d: bits %d apart (< %d)", cw, d, rows)
				}
			}
		}
	}
}
