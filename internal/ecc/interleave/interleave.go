// Package interleave implements a bit interleaver around SEC-DED: a
// permutation of the encoded stream that spreads any burst of up to
// Depth consecutive corrupted bytes so every SEC-DED codeword receives
// at most one corrupted *bit* — which single-error correction repairs.
// This turns the cheap 12.5%-overhead SEC-DED(72,64) into a
// burst-tolerant code, giving ARC's optimizer a low-cost alternative
// to Reed-Solomon for burst-dominated systems (one of the paper's
// "additional ECC algorithms" extension points).
//
// Construction: the SEC-DED(72,64) encoding is regrouped so each
// codeword's 72 bits are contiguous, then the bit string is written as
// the transpose of a (8*Depth) x C bit matrix. Two bits of the same
// codeword are at most 71 positions apart before transposition and at
// least 8*Depth positions apart after it, so a burst shorter than
// Depth bytes — even with every bit of every byte corrupted — touches
// each codeword at most once. (The guarantee needs C >= 73, i.e. a
// stream of at least ~73*Depth bytes; shorter streams still round-trip
// with plain SEC-DED's burst behaviour.)
//
// Interleaving is a pure permutation: overhead is identical to
// SEC-DED's plus at most Depth-1 padding bytes. The bit-granular
// shuffle costs roughly an order of magnitude more CPU than SEC-DED
// alone — the storage-vs-throughput trade the ARC optimizer weighs
// against Reed-Solomon.
package interleave

import (
	"fmt"

	"repro/internal/ecc"
	"repro/internal/ecc/hamming"
	"repro/internal/ecc/secded"
)

// cwData and cwLen describe the SEC-DED(72,64) codeword byte layout.
const (
	cwData = 8          // data bytes per codeword
	cwLen  = cwData + 1 // plus exactly one byte-aligned check byte
)

// Code wraps SEC-DED(72,64) with a depth-Depth-byte bit interleaver.
type Code struct {
	Depth int
	inner *hamming.Code
}

// NewSECDED returns an interleaved SEC-DED(72,64) code of the given
// depth (the longest burst, in bytes, the permutation spreads).
func NewSECDED(depth, workers int) (*Code, error) {
	if depth < 2 {
		return nil, fmt.Errorf("interleave: depth must be >= 2, got %d", depth)
	}
	return &Code{Depth: depth, inner: secded.New(64, workers)}, nil
}

// Name implements ecc.Code.
func (c *Code) Name() string { return fmt.Sprintf("ilsecded%d", c.Depth) }

// Caps implements ecc.Code: sparse correction from SEC-DED plus burst
// correction from the interleaver.
func (c *Code) Caps() ecc.Capability {
	return ecc.DetectSparse | ecc.CorrectSparse | ecc.CorrectBurst
}

// Overhead implements ecc.Code (padding is asymptotically negligible).
func (c *Code) Overhead() float64 { return c.inner.Overhead() }

// cwCount is the number of codewords covering n data bytes.
func cwCount(n int) int { return (n + cwData - 1) / cwData }

// groupedSize is the codeword-contiguous length in bytes.
func groupedSize(n int) int { return cwCount(n) * cwLen }

// EncodedSize implements ecc.Code: the grouped size padded to a
// multiple of Depth bytes (the bit matrix needs 8*Depth rows).
func (c *Code) EncodedSize(n int) int {
	g := groupedSize(n)
	return (g + c.Depth - 1) / c.Depth * c.Depth
}

// MaxBurstBytes is the longest single burst (fully corrupted bytes
// included) the interleaver guarantees to spread to one bit per
// codeword, for streams of at least ~73x this length.
func (c *Code) MaxBurstBytes() int { return c.Depth }

// groupInto rearranges a SEC-DED encoding (data region + check region)
// into codeword-contiguous order in g (len groupedSize(origLen)),
// zero-padding the final partial codeword's data bytes explicitly so a
// reused g carries no stale contents.
func groupInto(g, inner []byte, origLen int) {
	cw := cwCount(origLen)
	for x := 0; x < cw; x++ {
		lo := x * cwData
		hi := lo + cwData
		if hi > origLen {
			hi = origLen
		}
		n := copy(g[x*cwLen:x*cwLen+cwData], inner[lo:hi])
		if n < cwData {
			clear(g[x*cwLen+n : x*cwLen+cwData])
		}
		g[x*cwLen+cwData] = inner[origLen+x]
	}
}

// ungroupInto inverts groupInto, filling inner (len origLen+cwCount).
// Every byte of inner is assigned.
func ungroupInto(inner, g []byte, origLen int) {
	cw := cwCount(origLen)
	for x := 0; x < cw; x++ {
		lo := x * cwData
		hi := lo + cwData
		if hi > origLen {
			hi = origLen
		}
		copy(inner[lo:hi], g[x*cwLen:])
		inner[origLen+x] = g[x*cwLen+cwData]
	}
}

// getBit/setBit address bits MSB-first within bytes.
func getBit(buf []byte, i int) byte { return buf[i>>3] >> (7 - i&7) & 1 }

func setBit(buf []byte, i int) { buf[i>>3] |= 0x80 >> (i & 7) }

// Scratch slot indices within the shared ecc.Scratch arena.
const (
	slotInner   = 0 // inner SEC-DED encoding / regrouped inner stream
	slotGrouped = 1 // codeword-contiguous bit string
)

// Encode implements ecc.Code.
func (c *Code) Encode(data []byte) []byte {
	return c.EncodeTo(nil, data, nil)
}

// EncodeTo implements ecc.EncoderTo. The bit transpose ORs into the
// output, so a reused dst is cleared first.
func (c *Code) EncodeTo(dst, data []byte, s *ecc.Scratch) []byte {
	inner := c.inner.EncodeTo(s.Slot(slotInner, c.inner.EncodedSize(len(data))), data, s)
	g := s.Slot(slotGrouped, groupedSize(len(data)))
	groupInto(g, inner, len(data))
	padded := c.EncodedSize(len(data))
	rows := 8 * c.Depth
	cols := padded * 8 / rows
	out := ecc.GrowTo(dst, padded)
	clear(out)
	// Bit transpose: out bit col*rows+row = g bit row*cols+col. The
	// (row, col) coordinates advance incrementally — no div/mod per
	// bit — and all-zero source bytes skip their eight bit tests
	// entirely (out starts zeroed).
	row, col := 0, 0
	advance := func(n int) {
		col += n
		for col >= cols {
			col -= cols
			row++
		}
	}
	for _, b := range g {
		if b == 0 {
			advance(8)
			continue
		}
		for t := 0; t < 8; t++ {
			if b&(0x80>>t) != 0 {
				setBit(out, col*rows+row)
			}
			advance(1)
		}
	}
	return out
}

// Decode implements ecc.Code.
func (c *Code) Decode(encoded []byte, origLen int) ([]byte, ecc.Report, error) {
	return c.DecodeTo(nil, encoded, origLen, nil)
}

// DecodeTo implements ecc.DecoderTo. Both intermediate buffers (the
// de-transposed bit string and the regrouped inner stream) are fully
// assigned, so reuse needs no clearing.
func (c *Code) DecodeTo(dst, encoded []byte, origLen int, s *ecc.Scratch) ([]byte, ecc.Report, error) {
	var rep ecc.Report
	want := c.EncodedSize(origLen)
	if origLen < 0 || len(encoded) < want {
		return nil, rep, fmt.Errorf("%w: need %d bytes, have %d", ecc.ErrTruncated, want, len(encoded))
	}
	rows := 8 * c.Depth
	cols := want * 8 / rows
	g := s.Slot(slotGrouped, groupedSize(origLen))
	// Inverse transpose with the same incremental (row, col) walk as
	// Encode; each grouped byte assembles from eight scattered bits.
	row, col := 0, 0
	for k := range g {
		var b byte
		for t := 0; t < 8; t++ {
			b = b<<1 | getBit(encoded, col*rows+row)
			col++
			if col == cols {
				col = 0
				row++
			}
		}
		g[k] = b
	}
	inner := s.Slot(slotInner, origLen+cwCount(origLen))
	ungroupInto(inner, g, origLen)
	return c.inner.DecodeTo(dst, inner, origLen, s)
}

var (
	_ ecc.Code      = (*Code)(nil)
	_ ecc.EncoderTo = (*Code)(nil)
	_ ecc.DecoderTo = (*Code)(nil)
)
