// Package pressio is a small compressor-abstraction layer modeled on
// LibPressio, which the paper uses to normalize its interactions with
// SZ and ZFP. It exposes the five compressor/mode configurations the
// fault study evaluates behind one interface and a registry keyed by
// the paper's mode names.
package pressio

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sz"
	"repro/internal/zfp"
)

// Compressor abstracts an error-bounded lossy compressor configuration.
// Implementations are safe for concurrent use.
type Compressor interface {
	// Name is the paper's spelling of the configuration, e.g. "SZ-ABS".
	Name() string
	// Compress encodes row-major data with the given dims (1-3).
	Compress(data []float64, dims []int) ([]byte, error)
	// Decompress decodes a buffer produced by Compress.
	Decompress(buf []byte) ([]float64, []int, error)
	// Bound returns the configured error-bounding parameter.
	Bound() float64
	// BoundsError reports whether the configuration enforces a
	// per-value error bound (false for ZFP-Rate and SZ-PSNR, whose
	// parameters are not per-value bounds).
	BoundsError() bool
	// WithBound returns a copy of the configuration with a different
	// bounding parameter (used by the compression-ratio search).
	WithBound(b float64) Compressor
}

type szComp struct {
	mode  sz.Mode
	bound float64
}

func (c szComp) Name() string { return c.mode.String() }
func (c szComp) Compress(data []float64, dims []int) ([]byte, error) {
	return sz.Compress(data, dims, sz.Options{Mode: c.mode, ErrorBound: c.bound})
}
func (c szComp) Decompress(buf []byte) ([]float64, []int, error) { return sz.Decompress(buf) }
func (c szComp) Bound() float64                                  { return c.bound }
func (c szComp) BoundsError() bool                               { return c.mode != sz.ModePSNR }
func (c szComp) WithBound(b float64) Compressor                  { return szComp{c.mode, b} }

type zfpComp struct {
	mode  zfp.Mode
	bound float64
}

func (c zfpComp) Name() string { return c.mode.String() }
func (c zfpComp) Compress(data []float64, dims []int) ([]byte, error) {
	return zfp.Compress(data, dims, zfp.Options{Mode: c.mode, Param: c.bound})
}
func (c zfpComp) Decompress(buf []byte) ([]float64, []int, error) { return zfp.Decompress(buf) }
func (c zfpComp) Bound() float64                                  { return c.bound }
func (c zfpComp) BoundsError() bool                               { return c.mode == zfp.ModeAccuracy }
func (c zfpComp) WithBound(b float64) Compressor                  { return zfpComp{c.mode, b} }

// New returns the named compressor configuration. Names follow the
// paper: SZ-ABS, SZ-PWREL, SZ-PSNR, ZFP-ACC, ZFP-Rate.
func New(name string, bound float64) (Compressor, error) {
	switch name {
	case "SZ-ABS":
		return szComp{sz.ModeABS, bound}, nil
	case "SZ-PWREL":
		return szComp{sz.ModePWREL, bound}, nil
	case "SZ-PSNR":
		return szComp{sz.ModePSNR, bound}, nil
	case "ZFP-ACC":
		return zfpComp{zfp.ModeAccuracy, bound}, nil
	case "ZFP-Rate":
		return zfpComp{zfp.ModeRate, bound}, nil
	default:
		return nil, fmt.Errorf("pressio: unknown compressor %q (want one of %v)", name, Names())
	}
}

// Names lists the available configuration names in a stable order.
func Names() []string {
	n := []string{"SZ-ABS", "SZ-PWREL", "SZ-PSNR", "ZFP-ACC", "ZFP-Rate"}
	sort.Strings(n)
	return n
}

// StudySet returns the five configurations with the paper's default
// parameters: eps = 0.1 for SZ-ABS, SZ-PWREL, ZFP-ACC; PSNR 90 for
// SZ-PSNR; rate 8 for ZFP-Rate (Section 4.1.1).
func StudySet() []Compressor {
	return []Compressor{
		szComp{sz.ModeABS, 0.1},
		szComp{sz.ModePWREL, 0.1},
		szComp{sz.ModePSNR, 90},
		zfpComp{zfp.ModeAccuracy, 0.1},
		zfpComp{zfp.ModeRate, 8},
	}
}

// SearchBound binary-searches the bounding parameter so that the
// compression ratio (uncompressed float64 bytes / compressed bytes)
// lands within tol of target. It returns the tuned compressor and the
// achieved ratio. Only monotone modes are supported (CR grows with the
// bound); ZFP-Rate's ratio is set directly from the rate instead.
func SearchBound(c Compressor, data []float64, dims []int, target, tol float64, maxIter int) (Compressor, float64, error) {
	if c.Name() == "ZFP-Rate" {
		// CR = 64 bits per value / rate, so invert directly.
		rate := 64 / target
		if rate <= 0 || rate > 64 {
			return nil, 0, fmt.Errorf("pressio: target ratio %g out of range for ZFP-Rate", target)
		}
		tuned := c.WithBound(rate)
		buf, err := tuned.Compress(data, dims)
		if err != nil {
			return nil, 0, err
		}
		return tuned, ratio(data, buf), nil
	}
	lo, hi := 1e-12, 1e12
	var achieved float64
	best := c
	for i := 0; i < maxIter; i++ {
		mid := geomMid(lo, hi)
		tuned := c.WithBound(mid)
		buf, err := tuned.Compress(data, dims)
		if err != nil {
			return nil, 0, err
		}
		achieved = ratio(data, buf)
		best = tuned
		if achieved > target*(1+tol) {
			hi = mid // too lossy: shrink bound
		} else if achieved < target*(1-tol) {
			lo = mid
		} else {
			return tuned, achieved, nil
		}
	}
	return best, achieved, nil
}

func ratio(data []float64, buf []byte) float64 {
	return float64(len(data)*8) / float64(len(buf))
}

func geomMid(lo, hi float64) float64 {
	// Geometric midpoint suits the many-decades search space.
	m := lo * hi
	if m <= 0 {
		return (lo + hi) / 2
	}
	return math.Sqrt(m)
}
