package pressio

import (
	"math"
	"testing"

	"repro/internal/datasets"
	"repro/internal/metrics"
)

func TestRegistryAndStudySet(t *testing.T) {
	set := StudySet()
	if len(set) != 5 {
		t.Fatalf("study set has %d configurations, want 5", len(set))
	}
	wantNames := map[string]float64{
		"SZ-ABS": 0.1, "SZ-PWREL": 0.1, "SZ-PSNR": 90, "ZFP-ACC": 0.1, "ZFP-Rate": 8,
	}
	for _, c := range set {
		want, ok := wantNames[c.Name()]
		if !ok {
			t.Fatalf("unexpected configuration %q", c.Name())
		}
		if c.Bound() != want {
			t.Fatalf("%s bound %g, want %g", c.Name(), c.Bound(), want)
		}
	}
	for _, n := range Names() {
		if _, err := New(n, 0.1); err != nil {
			t.Fatalf("New(%s): %v", n, err)
		}
	}
	if _, err := New("LZ4", 1); err == nil {
		t.Fatal("unknown compressor must fail")
	}
}

func TestAllConfigurationsRoundTrip(t *testing.T) {
	f := datasets.CESM(32, 32, 5)
	for _, c := range StudySet() {
		buf, err := c.Compress(f.Data, f.Dims)
		if err != nil {
			t.Fatalf("%s compress: %v", c.Name(), err)
		}
		got, dims, err := c.Decompress(buf)
		if err != nil {
			t.Fatalf("%s decompress: %v", c.Name(), err)
		}
		if len(dims) != len(f.Dims) || dims[0] != f.Dims[0] {
			t.Fatalf("%s dims %v", c.Name(), dims)
		}
		if c.BoundsError() {
			if n := metrics.CountIncorrect(f.Data, got, c.Bound()*(1+1e-9)); n != 0 {
				t.Fatalf("%s: %d bound violations on clean round-trip", c.Name(), n)
			}
		}
	}
}

func TestBoundsErrorFlags(t *testing.T) {
	flags := map[string]bool{
		"SZ-ABS": true, "SZ-PWREL": true, "SZ-PSNR": false,
		"ZFP-ACC": true, "ZFP-Rate": false,
	}
	for _, c := range StudySet() {
		if c.BoundsError() != flags[c.Name()] {
			t.Fatalf("%s BoundsError = %v", c.Name(), c.BoundsError())
		}
	}
}

func TestWithBound(t *testing.T) {
	c, err := New("SZ-ABS", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	c2 := c.WithBound(0.5)
	if c2.Bound() != 0.5 || c.Bound() != 0.1 {
		t.Fatal("WithBound must return an adjusted copy")
	}
	if c2.Name() != c.Name() {
		t.Fatal("WithBound must preserve the mode")
	}
}

func TestSearchBoundHitsTarget(t *testing.T) {
	f := datasets.CESM(64, 128, 6)
	for _, name := range []string{"SZ-ABS", "ZFP-ACC"} {
		c, err := New(name, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range []float64{25, 13} {
			tuned, achieved, err := SearchBound(c, f.Data, f.Dims, target, 0.15, 40)
			if err != nil {
				t.Fatalf("%s target %g: %v", name, target, err)
			}
			if math.Abs(achieved-target)/target > 0.3 {
				t.Fatalf("%s: achieved CR %.1f for target %.0f", name, achieved, target)
			}
			if tuned.Name() != name {
				t.Fatal("tuned compressor changed identity")
			}
		}
	}
}

func TestSearchBoundZFPRate(t *testing.T) {
	f := datasets.CESM(32, 64, 7)
	c, err := New("ZFP-Rate", 8)
	if err != nil {
		t.Fatal(err)
	}
	tuned, achieved, err := SearchBound(c, f.Data, f.Dims, 8, 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Bound() != 8 {
		t.Fatalf("rate %g, want 8 (64 bits / CR 8)", tuned.Bound())
	}
	if achieved < 6 || achieved > 10 {
		t.Fatalf("achieved CR %g for rate target 8", achieved)
	}
	if _, _, err := SearchBound(c, f.Data, f.Dims, 0.5, 0.1, 10); err == nil {
		t.Fatal("impossible rate target must fail")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	n := Names()
	if len(n) != 5 {
		t.Fatalf("names %v", n)
	}
	for i := 1; i < len(n); i++ {
		if n[i-1] >= n[i] {
			t.Fatal("Names must be sorted and unique")
		}
	}
}

func TestSearchBoundConverges(t *testing.T) {
	// Even with a tight iteration cap, SearchBound returns its best
	// attempt rather than failing.
	f := datasets.CESM(32, 64, 8)
	c, err := New("SZ-ABS", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tuned, achieved, err := SearchBound(c, f.Data, f.Dims, 20, 0.001, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tuned == nil || achieved <= 0 {
		t.Fatalf("no best-effort result: %v %g", tuned, achieved)
	}
}
