package huffman

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bitio"
)

// randFreqs produces a frequency table with a random subset of used
// symbols, covering degenerate (1-symbol) through dense alphabets.
func randFreqs(rng *rand.Rand, n, used int) []int64 {
	freqs := make([]int64, n)
	for i := 0; i < used; i++ {
		freqs[rng.Intn(n)] += int64(rng.Intn(1000) + 1)
	}
	return freqs
}

// TestBuildIntoMatchesBuild pins the reuse contract: a codec rebuilt in
// place over a sequence of unrelated alphabets must emit bit-identical
// streams to a fresh Build, and its decode tables (including the LUT,
// which relies on being cleared between builds) must decode them.
func TestBuildIntoMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reused := new(Codec)
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(2000) + 1
		used := rng.Intn(n) + 1
		freqs := randFreqs(rng, n, used)
		fresh, ferr := Build(freqs)
		got, gerr := BuildInto(reused, freqs)
		if (ferr == nil) != (gerr == nil) {
			t.Fatalf("trial %d: Build err=%v, BuildInto err=%v", trial, ferr, gerr)
		}
		if ferr != nil {
			continue
		}
		if got != reused {
			t.Fatalf("trial %d: BuildInto returned a different codec", trial)
		}
		var fw, gw bitio.Writer
		fresh.WriteTable(&fw)
		got.WriteTable(&gw)
		syms := make([]int, 0, 256)
		for s, f := range freqs {
			if f > 0 {
				for k := 0; k < 3; k++ {
					syms = append(syms, s)
				}
			}
		}
		for _, s := range syms {
			fresh.Encode(&fw, s)
			got.Encode(&gw, s)
		}
		if !bytes.Equal(fw.Bytes(), gw.Bytes()) {
			t.Fatalf("trial %d: reused codec emitted a different stream", trial)
		}
		// Decode with the reused codec's tables.
		r := bitio.NewReader(gw.Bytes())
		if _, err := ReadTableMax(r, n); err != nil {
			t.Fatalf("trial %d: table: %v", trial, err)
		}
		for i, want := range syms {
			s, err := got.Decode(r)
			if err != nil {
				t.Fatalf("trial %d: symbol %d: %v", trial, i, err)
			}
			if s != want {
				t.Fatalf("trial %d: symbol %d: got %d want %d", trial, i, s, want)
			}
		}
	}
}

// TestReadTableMaxIntoMatchesReadTableMax runs the same reuse check on
// the decode side: a codec reloaded in place from serialized tables of
// varying shapes must decode exactly like a freshly allocated one.
func TestReadTableMaxIntoMatchesReadTableMax(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	reused := new(Codec)
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(2000) + 1
		used := rng.Intn(n) + 1
		freqs := randFreqs(rng, n, used)
		enc, err := Build(freqs)
		if err != nil {
			continue
		}
		var w bitio.Writer
		enc.WriteTable(&w)
		var syms []int
		for s, f := range freqs {
			if f > 0 {
				syms = append(syms, s)
				enc.Encode(&w, s)
			}
		}
		stream := w.Bytes()

		fr := bitio.NewReader(stream)
		fresh, err := ReadTableMax(fr, n)
		if err != nil {
			t.Fatalf("trial %d: fresh table: %v", trial, err)
		}
		rr := bitio.NewReader(stream)
		got, err := ReadTableMaxInto(reused, rr, n)
		if err != nil {
			t.Fatalf("trial %d: reused table: %v", trial, err)
		}
		if got != reused {
			t.Fatalf("trial %d: ReadTableMaxInto returned a different codec", trial)
		}
		for i, want := range syms {
			fs, ferr := fresh.Decode(fr)
			gs, gerr := got.Decode(rr)
			if ferr != nil || gerr != nil {
				t.Fatalf("trial %d: symbol %d: fresh err=%v reused err=%v", trial, i, ferr, gerr)
			}
			if fs != want || gs != want {
				t.Fatalf("trial %d: symbol %d: fresh=%d reused=%d want %d", trial, i, fs, gs, want)
			}
		}
	}
}

// TestReadTableMaxIntoAfterError reuses a codec whose previous load
// failed partway (tables half-written), which must not poison the next
// load.
func TestReadTableMaxIntoAfterError(t *testing.T) {
	freqs := []int64{5, 0, 3, 2, 0, 1}
	enc, err := Build(freqs)
	if err != nil {
		t.Fatal(err)
	}
	var w bitio.Writer
	enc.WriteTable(&w)
	enc.Encode(&w, 0)
	stream := w.Bytes()

	reused := new(Codec)
	// Truncated table: fails after the header parse touched the codec.
	if _, err := ReadTableMaxInto(reused, bitio.NewReader(stream[:5]), len(freqs)); err == nil {
		t.Fatal("truncated table unexpectedly accepted")
	}
	r := bitio.NewReader(stream)
	c, err := ReadTableMaxInto(reused, r, len(freqs))
	if err != nil {
		t.Fatalf("reload after error: %v", err)
	}
	s, err := c.Decode(r)
	if err != nil || s != 0 {
		t.Fatalf("decode after reload: sym=%d err=%v", s, err)
	}
}
