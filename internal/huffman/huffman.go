// Package huffman implements a canonical Huffman codec for the
// quantization-code streams produced by the SZ-like compressor
// (internal/sz). The code table is serialized into the compressed
// stream — exactly the loop-controlling metadata whose corruption the
// paper's fault study traces to decompression exceptions and timeouts.
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitio"
)

// MaxCodeLen bounds code lengths so serialized lengths fit in 6 bits
// and decode state fits a uint64.
const MaxCodeLen = 63

// ErrCorrupt reports an invalid serialized table or bitstream.
var ErrCorrupt = errors.New("huffman: corrupt stream")

// Codec is a canonical Huffman code over the alphabet [0, NumSymbols).
type Codec struct {
	NumSymbols int
	lengths    []uint8  // code length per symbol, 0 = unused
	codes      []uint64 // canonical code per symbol (valid when length > 0)

	// Canonical decode tables.
	maxLen     int
	firstCode  []uint64 // first canonical code of each length
	firstIndex []int    // index into symsByCode of each length's first symbol
	symsByCode []int32  // symbols sorted by (length, symbol)

	// lut accelerates Decode: indexing the next lutBits bits yields the
	// symbol and code length directly for codes up to lutBits long;
	// entries with length 0 fall back to the canonical walk.
	lut []lutEntry

	// nodes is grow-only scratch for the Huffman tree: BuildInto carves
	// all 2*nused-1 nodes out of one slab instead of allocating each.
	nodes []hnode
	// hscratch is the grow-only heap backing array for BuildInto.
	hscratch []*hnode
}

// grow returns s resized to n elements, reusing its backing array when
// the capacity suffices. Contents are unspecified; callers that depend
// on zeroing must clear explicitly.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// lutBits sizes the fast decode table (4096 entries, 24 KiB).
const lutBits = 12

type lutEntry struct {
	sym int32
	len uint8 // 0: code longer than lutBits, use the slow path
}

type hnode struct {
	freq        int64
	sym         int // -1 for internal
	left, right *hnode
}

type hheap []*hnode

func (h hheap) Len() int { return len(h) }
func (h hheap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].sym < h[j].sym // deterministic tie-break
}
func (h hheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hheap) Push(x interface{}) { *h = append(*h, x.(*hnode)) }
func (h *hheap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Build constructs a canonical Huffman code from symbol frequencies.
// At least one frequency must be positive.
func Build(freqs []int64) (*Codec, error) {
	return BuildInto(nil, freqs)
}

// BuildInto is Build reusing c's storage (tables, tree nodes, and the
// decode LUT) when their capacity suffices, so a codec rebuilt per
// chunk allocates nothing in steady state. A nil c allocates a fresh
// codec. On error c's tables are left in an unspecified state; reusing
// it for a later BuildInto/ReadTableMaxInto call remains valid.
func BuildInto(c *Codec, freqs []int64) (*Codec, error) {
	n := len(freqs)
	if n == 0 {
		return nil, errors.New("huffman: empty alphabet")
	}
	if n > maxAlphabet {
		return nil, fmt.Errorf("huffman: alphabet size %d exceeds limit %d", n, maxAlphabet)
	}
	if c == nil {
		c = new(Codec)
	}
	nused := 0
	for _, f := range freqs {
		if f > 0 {
			nused++
		}
	}
	if nused == 0 {
		return nil, errors.New("huffman: no symbols with positive frequency")
	}
	c.NumSymbols = n
	c.lengths = grow(c.lengths, n)
	clear(c.lengths)
	c.codes = grow(c.codes, n)
	// One slab holds every tree node (nused leaves + nused-1 internal);
	// the heap takes stable pointers into it because the slab is sized
	// up front and never reallocated mid-build.
	c.nodes = grow(c.nodes, 2*nused-1)
	ni := 0
	h := hheap(c.hscratch[:0])
	for s, f := range freqs {
		if f > 0 {
			c.nodes[ni] = hnode{freq: f, sym: s}
			h = append(h, &c.nodes[ni])
			ni++
		}
	}
	if len(h) == 1 {
		// Degenerate single-symbol alphabet: one-bit code.
		c.lengths[h[0].sym] = 1
	} else {
		heap.Init(&h)
		for h.Len() > 1 {
			a := heap.Pop(&h).(*hnode)
			b := heap.Pop(&h).(*hnode)
			c.nodes[ni] = hnode{freq: a.freq + b.freq, sym: -1, left: a, right: b}
			heap.Push(&h, &c.nodes[ni])
			ni++
		}
		root := h[0]
		if err := assignLengths(root, 0, c.lengths); err != nil {
			return nil, err
		}
	}
	c.hscratch = h[:0]
	if err := c.buildCanonical(); err != nil {
		return nil, err
	}
	return c, nil
}

func assignLengths(n *hnode, depth int, lengths []uint8) error {
	if n.sym >= 0 {
		if depth > MaxCodeLen {
			return fmt.Errorf("huffman: code length %d exceeds limit", depth)
		}
		lengths[n.sym] = uint8(depth) //arcvet:ignore mathbits depth <= MaxCodeLen (63) is checked above
		return nil
	}
	if err := assignLengths(n.left, depth+1, lengths); err != nil {
		return err
	}
	return assignLengths(n.right, depth+1, lengths)
}

// buildCanonical derives canonical codes and decode tables from
// c.lengths. It validates the length distribution (Kraft equality is
// not required — a single-symbol code underfills — but overfull
// distributions are rejected), which is the integrity check corrupted
// headers trip over.
func (c *Codec) buildCanonical() error {
	maxLen := 0
	var counts [MaxCodeLen + 1]int
	for _, l := range c.lengths {
		if int(l) > MaxCodeLen {
			return ErrCorrupt
		}
		if l > 0 {
			counts[l]++
			if int(l) > maxLen {
				maxLen = int(l)
			}
		}
	}
	if maxLen == 0 {
		return ErrCorrupt
	}
	c.maxLen = maxLen
	// Kraft sum must not exceed 1 (overfull code is undecodable).
	var kraft uint64
	for l := 1; l <= maxLen; l++ {
		kraft += uint64(counts[l]) << (maxLen - l) //arcvet:ignore mathbits counts are non-negative cardinalities
	}
	if kraft > 1<<uint(maxLen) {
		return ErrCorrupt
	}
	// Symbols sorted by (length, symbol value); the previous build's
	// slice is reused as the append target.
	used := c.symsByCode[:0]
	for s, l := range c.lengths {
		if l > 0 {
			used = append(used, int32(s)) //arcvet:ignore mathbits s < maxAlphabet (1<<26), enforced by Build and ReadTable
		}
	}
	sort.Slice(used, func(i, j int) bool {
		li, lj := c.lengths[used[i]], c.lengths[used[j]]
		if li != lj {
			return li < lj
		}
		return used[i] < used[j]
	})
	c.symsByCode = used
	c.firstCode = grow(c.firstCode, maxLen+2)
	c.firstIndex = grow(c.firstIndex, maxLen+2)
	code := uint64(0)
	idx := 0
	for l := 1; l <= maxLen; l++ {
		c.firstCode[l] = code
		c.firstIndex[l] = idx
		code += uint64(counts[l]) //arcvet:ignore mathbits counts are non-negative cardinalities
		idx += counts[l]
		code <<= 1
	}
	c.firstIndex[maxLen+1] = idx
	// Codes within a length are assigned in symsByCode order, so a
	// single pass with per-length counters covers every symbol.
	var next [MaxCodeLen + 1]uint64
	copy(next[:], c.firstCode[:maxLen+1])
	for _, s := range used {
		l := int(c.lengths[s])
		c.codes[s] = next[l]
		next[l]++
	}
	c.buildLUT()
	return nil
}

// buildLUT fills the fast decode table: every lutBits-wide window
// whose prefix is the code of symbol s maps to (s, len). The table is
// cleared before filling: Decode treats a zero length as "no short
// code", so stale entries from a reused codec would mis-decode.
func (c *Codec) buildLUT() {
	c.lut = grow(c.lut, 1<<lutBits)
	clear(c.lut)
	for _, s := range c.symsByCode {
		l := int(c.lengths[s])
		if l > lutBits {
			continue
		}
		base := c.codes[s] << uint(lutBits-l)
		count := 1 << uint(lutBits-l)
		for i := uint64(0); i < uint64(count); i++ { //arcvet:ignore mathbits count = 1 << (lutBits-l) is positive
			c.lut[base+i] = lutEntry{sym: s, len: uint8(l)} //arcvet:ignore mathbits l <= lutBits (12) inside this loop
		}
	}
}

// Length returns the code length of symbol s (0 when unused).
func (c *Codec) Length(s int) int { return int(c.lengths[s]) }

// Encode appends the code for symbol s to w. Encoding a symbol that
// never appeared in the Build frequencies panics: it indicates a bug
// in the caller's frequency accounting.
func (c *Codec) Encode(w *bitio.Writer, s int) {
	l := c.lengths[s]
	if l == 0 {
		panic(fmt.Sprintf("huffman: symbol %d has no code", s))
	}
	w.WriteBits(c.codes[s], int(l))
}

// Decode reads one symbol from r. Invalid codes and truncated streams
// return ErrCorrupt-wrapped errors.
func (c *Codec) Decode(r *bitio.Reader) (int, error) {
	// Fast path: one table lookup when the code is short (the
	// overwhelmingly common case for quantization codes). Peek
	// zero-pads past the end of the buffer, so near the tail the LUT
	// entry is still authoritative as long as the matched code fits in
	// the bits that are actually there.
	if window, avail := r.Peek(lutBits); avail > 0 {
		// The mask is a no-op by Peek's contract (window < 1<<lutBits)
		// but makes the bound explicit: no wire-derived window can
		// index past the 1<<lutBits-entry table.
		if e := c.lut[window&(1<<lutBits-1)]; e.len != 0 && int(e.len) <= avail {
			_ = r.Skip(int(e.len)) // cannot fail: avail >= len
			return int(e.sym), nil
		}
	}
	return c.decodeSlow(r)
}

// decodeSlow is the canonical per-length walk, used near the end of
// the buffer and for codes longer than lutBits.
func (c *Codec) decodeSlow(r *bitio.Reader) (int, error) {
	var code uint64
	for l := 1; l <= c.maxLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, fmt.Errorf("%w: truncated mid-code", ErrCorrupt)
		}
		code = code<<1 | uint64(b)
		first := c.firstCode[l]
		count := c.firstIndex[l+1] - c.firstIndex[l]
		//arcvet:ignore mathbits count > 0 is checked first
		if count > 0 && code >= first && code < first+uint64(count) {
			idx := c.firstIndex[l] + int(code-first) //arcvet:ignore mathbits code-first < count <= maxAlphabet by the guard above
			return int(c.symsByCode[idx]), nil
		}
	}
	return 0, fmt.Errorf("%w: no code matches", ErrCorrupt)
}

// WriteTable serializes the code table: alphabet size, number of used
// symbols, then (symbol, length) pairs with 6-bit lengths.
func (c *Codec) WriteTable(w *bitio.Writer) {
	w.WriteBits(uint64(len(c.lengths)), 32) // == NumSymbols by construction
	w.WriteBits(uint64(len(c.symsByCode)), 32)
	for _, s := range c.symsByCode {
		w.WriteBits(uint64(s), 32) //arcvet:ignore mathbits symbols are indices in [0, maxAlphabet)
		w.WriteBits(uint64(c.lengths[s]), 6)
	}
}

// maxAlphabet bounds accepted alphabet sizes so corrupted headers
// cannot drive huge allocations.
const maxAlphabet = 1 << 26

// ReadTable deserializes a code table written by WriteTable and
// rebuilds decode state, validating as it goes. It accepts any
// alphabet up to maxAlphabet; decoders that know their alphabet size
// should prefer ReadTableMax.
func ReadTable(r *bitio.Reader) (*Codec, error) {
	return ReadTableMax(r, maxAlphabet)
}

// ReadTableMax is ReadTable with a caller-imposed alphabet bound: the
// lengths/codes arrays are sized from the serialized symbol count, so
// a decoder that knows its alphabet passes maxSyms to keep a corrupted
// table header from allocating beyond it.
func ReadTableMax(r *bitio.Reader, maxSyms int) (*Codec, error) {
	return ReadTableMaxInto(nil, r, maxSyms)
}

// ReadTableMaxInto is ReadTableMax reusing c's storage (length/code
// tables and the decode LUT) when its capacity suffices; a nil c
// allocates a fresh codec. On error c is left in an unspecified state
// but remains valid for a later *Into call.
func ReadTableMaxInto(c *Codec, r *bitio.Reader, maxSyms int) (*Codec, error) {
	if maxSyms <= 0 || maxSyms > maxAlphabet {
		maxSyms = maxAlphabet
	}
	nsym, err := r.ReadBits(32)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated table", ErrCorrupt)
	}
	nused, err := r.ReadBits(32)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated table", ErrCorrupt)
	}
	if nsym == 0 || nsym > uint64(maxSyms) || nused > nsym { //arcvet:ignore mathbits maxSyms is clamped to (0, maxAlphabet] above
		return nil, fmt.Errorf("%w: implausible table header (nsym=%d nused=%d)", ErrCorrupt, nsym, nused)
	}
	// Each used-symbol entry is serialized as 32+6 bits; a stream too
	// short to hold the claimed count is corrupt, and rejecting it here
	// avoids the pointless entry-by-entry walk.
	if need := nused * 38; need > uint64(r.Remaining()) { //arcvet:ignore mathbits Remaining is a non-negative bit count
		return nil, fmt.Errorf("%w: table claims %d entries but only %d bits remain", ErrCorrupt, nused, r.Remaining())
	}
	if c == nil {
		c = new(Codec)
	}
	c.NumSymbols = int(nsym) //arcvet:ignore mathbits nsym <= maxAlphabet is validated above
	c.lengths = grow(c.lengths, c.NumSymbols)
	clear(c.lengths) // the duplicate-symbol check below reads zeroes
	c.codes = grow(c.codes, c.NumSymbols)
	for i := uint64(0); i < nused; i++ {
		s, err := r.ReadBits(32)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated table entry", ErrCorrupt)
		}
		l, err := r.ReadBits(6)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated table entry", ErrCorrupt)
		}
		if s >= nsym || l == 0 {
			return nil, fmt.Errorf("%w: bad table entry (sym=%d len=%d)", ErrCorrupt, s, l)
		}
		if c.lengths[s] != 0 {
			return nil, fmt.Errorf("%w: duplicate symbol %d", ErrCorrupt, s)
		}
		c.lengths[s] = uint8(l) //arcvet:ignore mathbits l was read from 6 bits, so l < 64
	}
	if err := c.buildCanonical(); err != nil {
		return nil, err
	}
	return c, nil
}
