package huffman

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
)

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Fatal("empty alphabet must fail")
	}
	if _, err := Build([]int64{0, 0, 0}); err == nil {
		t.Fatal("all-zero frequencies must fail")
	}
}

func TestSingleSymbol(t *testing.T) {
	c, err := Build([]int64{0, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	var w bitio.Writer
	for i := 0; i < 10; i++ {
		c.Encode(&w, 1)
	}
	r := bitio.NewReader(w.Bytes())
	for i := 0; i < 10; i++ {
		s, err := c.Decode(r)
		if err != nil || s != 1 {
			t.Fatalf("decode %d: %v %v", i, s, err)
		}
	}
}

func TestRoundTripSkewed(t *testing.T) {
	freqs := []int64{1000, 500, 100, 10, 1, 1, 1, 1}
	c, err := Build(freqs)
	if err != nil {
		t.Fatal(err)
	}
	// More frequent symbols must not have longer codes.
	for i := 1; i < len(freqs); i++ {
		if c.Length(i-1) > c.Length(i) {
			t.Fatalf("symbol %d (freq %d) has longer code than %d (freq %d)",
				i-1, freqs[i-1], i, freqs[i])
		}
	}
	rng := rand.New(rand.NewSource(21))
	syms := make([]int, 5000)
	for i := range syms {
		syms[i] = rng.Intn(len(freqs))
	}
	var w bitio.Writer
	for _, s := range syms {
		c.Encode(&w, s)
	}
	r := bitio.NewReader(w.Bytes())
	for i, want := range syms {
		got, err := c.Decode(r)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("decode %d: got %d want %d", i, got, want)
		}
	}
}

func TestTableRoundTrip(t *testing.T) {
	freqs := make([]int64, 1000)
	rng := rand.New(rand.NewSource(22))
	for i := range freqs {
		if rng.Intn(3) == 0 {
			freqs[i] = int64(rng.Intn(10000)) + 1
		}
	}
	c, err := Build(freqs)
	if err != nil {
		t.Fatal(err)
	}
	var w bitio.Writer
	c.WriteTable(&w)
	c.Encode(&w, firstUsed(freqs))
	r := bitio.NewReader(w.Bytes())
	c2, err := ReadTable(r)
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumSymbols != c.NumSymbols {
		t.Fatal("NumSymbols mismatch")
	}
	for s := range freqs {
		if c.Length(s) != c2.Length(s) {
			t.Fatalf("symbol %d length mismatch", s)
		}
	}
	got, err := c2.Decode(r)
	if err != nil || got != firstUsed(freqs) {
		t.Fatalf("decode after table: %v %v", got, err)
	}
}

func firstUsed(freqs []int64) int {
	for s, f := range freqs {
		if f > 0 {
			return s
		}
	}
	return -1
}

func TestCorruptTableRejected(t *testing.T) {
	c, err := Build([]int64{5, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	var w bitio.Writer
	c.WriteTable(&w)
	clean := w.Bytes()
	rejected, accepted := 0, 0
	for bit := 0; bit < len(clean)*8; bit++ {
		mut := append([]byte(nil), clean...)
		mut[bit/8] ^= 0x80 >> (bit % 8)
		if _, err := ReadTable(bitio.NewReader(mut)); err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("bit %d: non-ErrCorrupt error %v", bit, err)
			}
			rejected++
		} else {
			accepted++
		}
	}
	// Not every flip is detectable (e.g. swapping which symbols map to
	// which code), but gross corruption must be rejected often.
	if rejected == 0 {
		t.Fatal("no corrupted table was ever rejected")
	}
	t.Logf("table flips: %d rejected, %d silently accepted", rejected, accepted)
}

func TestDecodeTruncatedStream(t *testing.T) {
	c, err := Build([]int64{1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	var w bitio.Writer
	for i := 0; i < 100; i++ {
		c.Encode(&w, i%5)
	}
	buf := w.Bytes()
	r := bitio.NewReader(buf[:1])
	var derr error
	for i := 0; i < 100; i++ {
		if _, derr = c.Decode(r); derr != nil {
			break
		}
	}
	if !errors.Is(derr, ErrCorrupt) {
		t.Fatalf("truncated stream must yield ErrCorrupt, got %v", derr)
	}
}

func TestEncodeUnusedSymbolPanics(t *testing.T) {
	c, err := Build([]int64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("encoding unused symbol must panic")
		}
	}()
	var w bitio.Writer
	c.Encode(&w, 1)
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		freqs := make([]int64, 256)
		for _, b := range raw {
			freqs[b]++
		}
		c, err := Build(freqs)
		if err != nil {
			return false
		}
		var w bitio.Writer
		c.WriteTable(&w)
		for _, b := range raw {
			c.Encode(&w, int(b))
		}
		r := bitio.NewReader(w.Bytes())
		c2, err := ReadTable(r)
		if err != nil {
			return false
		}
		for _, want := range raw {
			got, err := c2.Decode(r)
			if err != nil || got != int(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionBeatsFixedWidth(t *testing.T) {
	// A heavily skewed source must code in fewer bits than fixed 8-bit.
	freqs := make([]int64, 256)
	freqs[0] = 1_000_000
	for i := 1; i < 256; i++ {
		freqs[i] = 1
	}
	c, err := Build(freqs)
	if err != nil {
		t.Fatal(err)
	}
	if c.Length(0) != 1 {
		t.Fatalf("dominant symbol should get a 1-bit code, got %d", c.Length(0))
	}
}

func TestFastAndSlowDecodeAgree(t *testing.T) {
	// Property: the LUT fast path and the canonical walk decode
	// identically, including near the end of the buffer.
	rng := rand.New(rand.NewSource(30))
	freqs := make([]int64, 300)
	for i := range freqs {
		freqs[i] = int64(rng.Intn(1000)) + 1
	}
	c, err := Build(freqs)
	if err != nil {
		t.Fatal(err)
	}
	syms := make([]int, 4000)
	var w bitio.Writer
	for i := range syms {
		syms[i] = rng.Intn(300)
		c.Encode(&w, syms[i])
	}
	buf := w.Bytes()
	fast := bitio.NewReader(buf)
	slow := bitio.NewReader(buf)
	for i, want := range syms {
		f, ferr := c.Decode(fast)
		s, serr := c.decodeSlow(slow)
		if ferr != nil || serr != nil {
			t.Fatalf("symbol %d: errs %v %v", i, ferr, serr)
		}
		if f != want || s != want {
			t.Fatalf("symbol %d: fast %d slow %d want %d", i, f, s, want)
		}
		if fast.Pos() != slow.Pos() {
			t.Fatalf("symbol %d: positions diverged %d vs %d", i, fast.Pos(), slow.Pos())
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	freqs := make([]int64, 65536)
	// Zipf-ish skew like real quantization codes.
	for i := range freqs {
		freqs[i] = int64(1000000 / (i + 1))
	}
	c, err := Build(freqs)
	if err != nil {
		b.Fatal(err)
	}
	n := 100000
	var w bitio.Writer
	zipf := rand.NewZipf(rng, 1.3, 1, 65535)
	syms := make([]int, n)
	for i := range syms {
		syms[i] = int(zipf.Uint64()) //arcvet:ignore mathbits zipf imax is 65535
		c.Encode(&w, syms[i])
	}
	buf := w.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bitio.NewReader(buf)
		for j := 0; j < n; j++ {
			if _, err := c.Decode(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(int64(n))
}
