// Package profiling wires the conventional -cpuprofile/-memprofile
// flags into a command's flag set and manages the runtime/pprof
// sessions behind them. Both cmd/arc and cmd/arcstudy use it, so the
// chunk hot path and the fault-injection study can be profiled with
// the same switches `go test` uses:
//
//	arc encode -in f -out f.arc -cpuprofile cpu.pprof -memprofile mem.pprof
//	go tool pprof cpu.pprof
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations registered by AddFlags.
type Flags struct {
	cpu string
	mem string
}

// AddFlags registers -cpuprofile and -memprofile on fs and returns the
// holder to Start later.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := new(Flags)
	fs.StringVar(&f.cpu, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&f.mem, "memprofile", "", "write a heap allocation profile to `file` on exit")
	return f
}

// Start begins CPU profiling when requested. The returned stop
// function ends the CPU profile and writes the heap profile; call it
// (typically via defer) after the measured work. Profile-write
// failures at stop time are reported to stderr rather than returned:
// by then the command's real work has succeeded and its exit status
// should say so.
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if f.cpu != "" {
		cpuFile, err = os.Create(f.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			_ = cpuFile.Close() // the StartCPUProfile error is the one to report
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: cpuprofile:", err)
			}
		}
		if f.mem != "" {
			mf, err := os.Create(f.mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling: memprofile:", err)
				return
			}
			runtime.GC() // flush recently freed objects so live-heap numbers are current
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: memprofile:", err)
			}
			if err := mf.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: memprofile:", err)
			}
		}
	}, nil
}
