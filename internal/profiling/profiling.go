// Package profiling wires the conventional -cpuprofile/-memprofile
// flags into a command's flag set and manages the runtime/pprof
// sessions behind them. Both cmd/arc and cmd/arcstudy use it, so the
// chunk hot path and the fault-injection study can be profiled with
// the same switches `go test` uses:
//
//	arc encode -in f -out f.arc -cpuprofile cpu.pprof -memprofile mem.pprof
//	go tool pprof cpu.pprof
package profiling

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations registered by AddFlags.
type Flags struct {
	cpu string
	mem string
}

// AddFlags registers -cpuprofile and -memprofile on fs and returns the
// holder to Start later.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := new(Flags)
	fs.StringVar(&f.cpu, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&f.mem, "memprofile", "", "write a heap allocation profile to `file` on exit")
	return f
}

// Start begins CPU profiling when requested. The returned stop
// function ends the CPU profile and writes the heap profile; call it
// after the measured work and propagate its error — a profile the
// user asked for but that failed to land on disk should fail the
// command, not vanish into a log line. Commands that defer it fold
// the error into a named return so the exit status reflects it.
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if f.cpu != "" {
		cpuFile, err = os.Create(f.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			_ = cpuFile.Close() // the StartCPUProfile error is the one to report
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		var errs []error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				errs = append(errs, fmt.Errorf("cpuprofile: %w", err))
			}
		}
		if f.mem != "" {
			if err := writeHeapProfile(f.mem); err != nil {
				errs = append(errs, fmt.Errorf("memprofile: %w", err))
			}
		}
		return errors.Join(errs...)
	}, nil
}

// writeHeapProfile snapshots the live heap to path.
func writeHeapProfile(path string) error {
	mf, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // flush recently freed objects so live-heap numbers are current
	if err := pprof.WriteHeapProfile(mf); err != nil {
		_ = mf.Close() // the profile is already lost; report the write error
		return err
	}
	return mf.Close()
}
