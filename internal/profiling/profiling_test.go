package profiling

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the CPU profile has something to sample.
	sink := 0
	for i := 0; i < 1<<20; i++ {
		sink += i * i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestNoFlagsNoFiles(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil { // must be a no-op without erroring
		t.Fatal(err)
	}
}

func TestMemProfileStopError(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := AddFlags(fs)
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "mem")
	if err := fs.Parse([]string{"-memprofile", bad}); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("expected stop to report the unwritable heap profile")
	}
}

func TestCPUProfileCreateError(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "cpu")}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Start(); err == nil {
		t.Fatal("expected an error for an uncreatable profile path")
	}
}
