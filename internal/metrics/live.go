package metrics

// Live service counters: the data-integrity half of this package
// scores reconstructions after the fact; this half watches a running
// archive service. Everything here is safe for concurrent use and
// allocation-free on the update path — counters are atomics and the
// latency histogram is a fixed array of buckets — so the serving hot
// path can record every request without a lock or a GC ripple.

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of latency buckets: two sub-buckets per
// power of two of nanoseconds (half-octave resolution, ~±25% on a
// reported quantile), spanning 1ns to the full int64 range.
const histBuckets = 128

// Histogram is a concurrency-safe latency histogram with half-octave
// log-scaled buckets. The zero value is ready to use. Observe is
// wait-free; quantile queries walk the fixed bucket array and may run
// concurrently with observers (a racing quantile sees some prefix of
// the in-flight updates, which is the best any live view can offer).
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds
	max    atomic.Int64  // nanoseconds
}

// bucketIndex maps a duration to its bucket: index 2*octave plus one
// when the half-octave bit is set.
func bucketIndex(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	o := bits.Len64(uint64(ns)) - 1
	i := 2 * o
	if o >= 1 && ns&(1<<(o-1)) != 0 {
		i++
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketUpper returns the inclusive upper bound of bucket i in
// nanoseconds.
func bucketUpper(i int) int64 {
	o := i / 2
	lo := int64(1) << o
	if i%2 == 0 {
		if o == 0 {
			return 1
		}
		return lo + lo/2 - 1
	}
	if o >= 62 {
		return math.MaxInt64
	}
	return lo<<1 - 1
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(ns))
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean observed latency (0 with no samples).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observed sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns an upper bound on the p-quantile (p in [0,1]) with
// half-octave resolution, clamped to the observed maximum. With no
// samples it returns 0.
func (h *Histogram) Quantile(p float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			up := bucketUpper(i)
			if m := h.max.Load(); m > 0 && up > m {
				up = m
			}
			return time.Duration(up)
		}
	}
	return time.Duration(h.max.Load())
}

// HistogramSnapshot is a point-in-time JSON-marshalable view.
type HistogramSnapshot struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Snapshot captures the histogram's current quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count:  h.Count(),
		MeanMs: durMs(h.Mean()),
		P50Ms:  durMs(h.Quantile(0.50)),
		P90Ms:  durMs(h.Quantile(0.90)),
		P99Ms:  durMs(h.Quantile(0.99)),
		MaxMs:  durMs(h.Max()),
	}
}

func durMs(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000
}

// opCounters is one operation's request/error tally.
type opCounters struct {
	requests atomic.Int64
	errors   atomic.Int64
}

// Live is the counter set a long-running service exposes on its stats
// endpoint: per-operation request and error counts, byte traffic,
// repair totals, connection gauges, and a request-latency histogram.
// Construct with NewLive; all methods are safe for concurrent use.
type Live struct {
	start   time.Time
	opNames []string
	ops     []opCounters

	connsTotal  atomic.Int64
	connsActive atomic.Int64
	frameErrors atomic.Int64

	bytesIn  atomic.Int64
	bytesOut atomic.Int64

	repairedRequests atomic.Int64
	uncorrectable    atomic.Int64
	detectedBlocks   atomic.Int64
	correctedBits    atomic.Int64
	correctedBlocks  atomic.Int64

	latency Histogram

	// cacheSrc holds a func() CacheStats installed by SetCacheSource;
	// Snapshot polls it so the STATS payload carries live cache
	// counters without this package importing the cache.
	cacheSrc atomic.Value
}

// CacheStats is a point-in-time view of a chunk cache's counters, as
// embedded in a LiveSnapshot (and exposed directly by the cache).
type CacheStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Entries     int64 `json:"entries"`
	Bytes       int64 `json:"bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
}

// NewLive creates a Live counter set with one request/error pair per
// named operation. Operation indexes follow the argument order.
func NewLive(opNames ...string) *Live {
	return &Live{
		start:   time.Now(),
		opNames: append([]string(nil), opNames...),
		ops:     make([]opCounters, len(opNames)),
	}
}

// ConnOpened records an accepted connection.
func (l *Live) ConnOpened() {
	l.connsTotal.Add(1)
	l.connsActive.Add(1)
}

// ConnClosed records a finished connection.
func (l *Live) ConnClosed() { l.connsActive.Add(-1) }

// FrameError records a malformed, oversized, or truncated frame that
// never resolved to an operation.
func (l *Live) FrameError() { l.frameErrors.Add(1) }

// RequestDone records one completed request: its operation index, the
// payload bytes read and written, whether it failed, and its latency
// from frame-decoded to response-ready.
func (l *Live) RequestDone(op int, failed bool, bytesIn, bytesOut int, d time.Duration) {
	if op >= 0 && op < len(l.ops) {
		l.ops[op].requests.Add(1)
		if failed {
			l.ops[op].errors.Add(1)
		}
	}
	l.bytesIn.Add(int64(bytesIn))
	l.bytesOut.Add(int64(bytesOut))
	l.latency.Observe(d)
}

// RepairObserved accumulates a decode/verify/repair report: blocks
// with detected damage, bit and block corrections applied, and whether
// the damage exceeded the code's budget.
func (l *Live) RepairObserved(detectedBlocks, correctedBits, correctedBlocks int, uncorrectable bool) {
	l.detectedBlocks.Add(int64(detectedBlocks))
	l.correctedBits.Add(int64(correctedBits))
	l.correctedBlocks.Add(int64(correctedBlocks))
	if correctedBits > 0 || correctedBlocks > 0 {
		l.repairedRequests.Add(1)
	}
	if uncorrectable {
		l.uncorrectable.Add(1)
	}
}

// Latency exposes the request-latency histogram for direct observation
// (e.g. by tests) without going through RequestDone.
func (l *Live) Latency() *Histogram { return &l.latency }

// SetCacheSource installs the function Snapshot polls for cache
// counters. A nil source (or never calling this) leaves the snapshot's
// cache field absent.
func (l *Live) SetCacheSource(src func() CacheStats) {
	if src != nil {
		l.cacheSrc.Store(src)
	}
}

// OpSnapshot is one operation's counters in a LiveSnapshot.
type OpSnapshot struct {
	Name     string `json:"name"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`
}

// LiveSnapshot is a point-in-time, JSON-marshalable view of a Live
// counter set — the payload of the service's STATS response.
type LiveSnapshot struct {
	UptimeSeconds    float64           `json:"uptime_seconds"`
	ConnsTotal       int64             `json:"conns_total"`
	ConnsActive      int64             `json:"conns_active"`
	Requests         int64             `json:"requests"`
	Errors           int64             `json:"errors"`
	FrameErrors      int64             `json:"frame_errors"`
	BytesIn          int64             `json:"bytes_in"`
	BytesOut         int64             `json:"bytes_out"`
	RepairedRequests int64             `json:"repaired_requests"`
	Uncorrectable    int64             `json:"uncorrectable"`
	DetectedBlocks   int64             `json:"detected_blocks"`
	CorrectedBits    int64             `json:"corrected_bits"`
	CorrectedBlocks  int64             `json:"corrected_blocks"`
	Latency          HistogramSnapshot `json:"latency"`
	Cache            *CacheStats       `json:"cache,omitempty"`
	Ops              []OpSnapshot      `json:"ops"`
}

// Snapshot captures every counter. Concurrent updates may land between
// field reads; each individual counter is still exact.
func (l *Live) Snapshot() LiveSnapshot {
	s := LiveSnapshot{
		UptimeSeconds:    time.Since(l.start).Seconds(),
		ConnsTotal:       l.connsTotal.Load(),
		ConnsActive:      l.connsActive.Load(),
		FrameErrors:      l.frameErrors.Load(),
		BytesIn:          l.bytesIn.Load(),
		BytesOut:         l.bytesOut.Load(),
		RepairedRequests: l.repairedRequests.Load(),
		Uncorrectable:    l.uncorrectable.Load(),
		DetectedBlocks:   l.detectedBlocks.Load(),
		CorrectedBits:    l.correctedBits.Load(),
		CorrectedBlocks:  l.correctedBlocks.Load(),
		Latency:          l.latency.Snapshot(),
		Ops:              make([]OpSnapshot, len(l.ops)),
	}
	if src, ok := l.cacheSrc.Load().(func() CacheStats); ok {
		cs := src()
		s.Cache = &cs
	}
	for i := range l.ops {
		req := l.ops[i].requests.Load()
		errs := l.ops[i].errors.Load()
		s.Ops[i] = OpSnapshot{Name: l.opNames[i], Requests: req, Errors: errs}
		s.Requests += req
		s.Errors += errs
	}
	return s
}
