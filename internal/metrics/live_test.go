package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsMonotone(t *testing.T) {
	prev := -1
	for _, ns := range []int64{1, 2, 3, 5, 8, 11, 17, 100, 1000, 1 << 20, 1 << 40} {
		i := bucketIndex(ns)
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d, below previous %d", ns, i, prev)
		}
		if up := bucketUpper(i); up < ns {
			t.Fatalf("bucketUpper(%d) = %d < observed %d", i, up, ns)
		}
		prev = i
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// 100 samples: 1ms ... 100ms. Half-octave buckets bound any
	// quantile to within ~50% above the true value.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 50*time.Millisecond || p50 > 75*time.Millisecond {
		t.Fatalf("p50 = %v, want within [50ms, 75ms]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 99*time.Millisecond || p99 > 100*time.Millisecond {
		t.Fatalf("p99 = %v, want within [99ms, 100ms] (clamped to max)", p99)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	if m := h.Mean(); m < 50*time.Millisecond || m > 51*time.Millisecond {
		t.Fatalf("mean = %v", m)
	}
	// Quantiles are clamped to the observed maximum.
	if q := h.Quantile(1); q != 100*time.Millisecond {
		t.Fatalf("p100 = %v", q)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.Quantile(0.5) == 0 {
		t.Fatal("p50 = 0 after concurrent observes")
	}
}

func TestLiveSnapshot(t *testing.T) {
	l := NewLive("encode", "decode", "stats")
	l.ConnOpened()
	l.ConnOpened()
	l.ConnClosed()
	l.FrameError()
	l.RequestDone(0, false, 1000, 1200, 2*time.Millisecond)
	l.RequestDone(1, true, 1200, 40, 5*time.Millisecond)
	l.RequestDone(99, false, 1, 1, time.Millisecond) // out of range: bytes still counted
	l.RepairObserved(3, 2, 1, false)
	l.RepairObserved(1, 0, 0, true)

	s := l.Snapshot()
	if s.ConnsTotal != 2 || s.ConnsActive != 1 {
		t.Fatalf("conns = %d/%d", s.ConnsTotal, s.ConnsActive)
	}
	if s.Requests != 2 || s.Errors != 1 || s.FrameErrors != 1 {
		t.Fatalf("requests/errors/frames = %d/%d/%d", s.Requests, s.Errors, s.FrameErrors)
	}
	if s.BytesIn != 2201 || s.BytesOut != 1241 {
		t.Fatalf("bytes = %d/%d", s.BytesIn, s.BytesOut)
	}
	if s.RepairedRequests != 1 || s.Uncorrectable != 1 || s.CorrectedBits != 2 || s.DetectedBlocks != 4 {
		t.Fatalf("repair counters: %+v", s)
	}
	if len(s.Ops) != 3 || s.Ops[0].Name != "encode" || s.Ops[0].Requests != 1 || s.Ops[1].Errors != 1 {
		t.Fatalf("ops: %+v", s.Ops)
	}
	if s.Latency.Count != 3 || s.Latency.P99Ms <= 0 {
		t.Fatalf("latency: %+v", s.Latency)
	}

	// The snapshot is the STATS wire payload: it must marshal cleanly.
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back LiveSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.BytesIn != s.BytesIn || back.Ops[2].Name != "stats" {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}
