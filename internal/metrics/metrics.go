// Package metrics implements the data-integrity metrics of the paper's
// fault study (Section 4.1.3): RMSE, PSNR, maximum absolute difference,
// and the percentage of incorrect elements (values whose error violates
// the configured bound).
package metrics

import (
	"fmt"
	"math"
)

// Summary holds the integrity metrics of a reconstructed dataset
// relative to the original.
type Summary struct {
	RMSE    float64
	PSNR    float64 // dB; +Inf for identical data
	MaxDiff float64
	// IncorrectElements is the count of values whose absolute error
	// exceeds the bound passed to Evaluate (only meaningful when a
	// bound was supplied).
	IncorrectElements int
	// PercentIncorrect = 100 * IncorrectElements / N.
	PercentIncorrect float64
	N                int
}

// RMSE computes the root-mean-squared error between orig and got
// (Equation 1 of the paper). The slices must be the same length.
func RMSE(orig, got []float64) float64 {
	if len(orig) != len(got) {
		panic(fmt.Sprintf("metrics: length mismatch %d != %d", len(orig), len(got)))
	}
	if len(orig) == 0 {
		return 0
	}
	var sum float64
	for i := range orig {
		d := orig[i] - got[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(orig)))
}

// PSNR computes the peak signal-to-noise ratio in dB (Equation 2),
// using the original data's value range as the peak. Identical data
// yields +Inf.
func PSNR(orig, got []float64) float64 {
	rmse := RMSE(orig, got)
	if rmse == 0 {
		return math.Inf(1)
	}
	lo, hi := Range(orig)
	return 20 * math.Log10((hi-lo)/rmse)
}

// Range returns the min and max of data.
func Range(data []float64) (lo, hi float64) {
	if len(data) == 0 {
		return 0, 0
	}
	lo, hi = data[0], data[0]
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// MaxDiff returns the maximum absolute pointwise difference.
func MaxDiff(orig, got []float64) float64 {
	if len(orig) != len(got) {
		panic(fmt.Sprintf("metrics: length mismatch %d != %d", len(orig), len(got)))
	}
	var m float64
	for i := range orig {
		d := math.Abs(orig[i] - got[i])
		if d > m || math.IsNaN(d) {
			m = d
			if math.IsNaN(d) {
				return math.NaN()
			}
		}
	}
	return m
}

// CountIncorrect counts elements whose absolute error exceeds bound —
// the paper's "percent of incorrect elements" numerator. NaN
// differences count as incorrect.
func CountIncorrect(orig, got []float64, bound float64) int {
	if len(orig) != len(got) {
		panic(fmt.Sprintf("metrics: length mismatch %d != %d", len(orig), len(got)))
	}
	n := 0
	for i := range orig {
		d := math.Abs(orig[i] - got[i])
		if d > bound || math.IsNaN(d) {
			n++
		}
	}
	return n
}

// Evaluate computes the full Summary. Pass a negative bound to skip the
// incorrect-element accounting (the paper does this for SZ-PSNR, whose
// mode does not bound per-value error).
func Evaluate(orig, got []float64, bound float64) Summary {
	s := Summary{
		RMSE:    RMSE(orig, got),
		MaxDiff: MaxDiff(orig, got),
		N:       len(orig),
	}
	s.PSNR = PSNR(orig, got)
	if bound >= 0 {
		s.IncorrectElements = CountIncorrect(orig, got, bound)
		if s.N > 0 {
			s.PercentIncorrect = 100 * float64(s.IncorrectElements) / float64(s.N)
		}
	}
	return s
}

// BoundKind selects the error-bound semantics of VerifyBound.
type BoundKind int

const (
	// BoundAbs: |got - orig| <= bound for every element.
	BoundAbs BoundKind = iota + 1
	// BoundRel: |got - orig| <= bound * |orig| point-wise (exact zeros
	// must be preserved exactly).
	BoundRel
	// BoundPSNR: the dataset-level PSNR must be at least bound dB.
	BoundPSNR
)

// VerifyBound checks a reconstruction against its promised bound and
// returns the index of the first violation (-1 when none). A small
// relative slack absorbs float64 round-off in the check itself.
func VerifyBound(orig, got []float64, kind BoundKind, bound float64) int {
	const slack = 1 + 1e-9
	switch kind {
	case BoundAbs:
		for i := range orig {
			if math.Abs(got[i]-orig[i]) > bound*slack {
				return i
			}
		}
		return -1
	case BoundRel:
		for i := range orig {
			if orig[i] == 0 {
				if got[i] != 0 {
					return i
				}
				continue
			}
			if math.Abs(got[i]-orig[i]) > bound*math.Abs(orig[i])*slack {
				return i
			}
		}
		return -1
	case BoundPSNR:
		if PSNR(orig, got) < bound/slack {
			return 0
		}
		return -1
	default:
		panic(fmt.Sprintf("metrics: unknown bound kind %d", kind))
	}
}
