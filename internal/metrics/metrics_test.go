package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRMSEBasic(t *testing.T) {
	if got := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("identical data RMSE = %g", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE = %g, want sqrt(12.5)", got)
	}
	if got := RMSE(nil, nil); got != 0 {
		t.Fatal("empty RMSE must be 0")
	}
}

func TestRMSELengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestPSNR(t *testing.T) {
	orig := []float64{0, 10} // range 10
	got := []float64{1, 10}  // rmse = 1/sqrt(2)
	want := 20 * math.Log10(10/(1/math.Sqrt2))
	if p := PSNR(orig, got); math.Abs(p-want) > 1e-9 {
		t.Fatalf("PSNR = %g, want %g", p, want)
	}
	if p := PSNR(orig, orig); !math.IsInf(p, 1) {
		t.Fatal("identical data must give +Inf PSNR")
	}
}

func TestMaxDiff(t *testing.T) {
	if got := MaxDiff([]float64{1, 5, 3}, []float64{2, 1, 3}); got != 4 {
		t.Fatalf("MaxDiff = %g, want 4", got)
	}
	if got := MaxDiff([]float64{1}, []float64{math.NaN()}); !math.IsNaN(got) {
		t.Fatal("NaN difference must propagate")
	}
}

func TestCountIncorrect(t *testing.T) {
	orig := []float64{0, 0, 0, 0}
	got := []float64{0.05, 0.15, -0.2, math.NaN()}
	if n := CountIncorrect(orig, got, 0.1); n != 3 {
		t.Fatalf("CountIncorrect = %d, want 3 (two violations + NaN)", n)
	}
	if n := CountIncorrect(orig, orig, 0); n != 0 {
		t.Fatal("identical data must have 0 incorrect")
	}
}

func TestEvaluate(t *testing.T) {
	orig := []float64{0, 1, 2, 3}
	got := []float64{0, 1, 2, 4}
	s := Evaluate(orig, got, 0.5)
	if s.N != 4 || s.IncorrectElements != 1 {
		t.Fatalf("summary %+v", s)
	}
	if s.PercentIncorrect != 25 {
		t.Fatalf("percent = %g, want 25", s.PercentIncorrect)
	}
	if s.MaxDiff != 1 {
		t.Fatalf("MaxDiff = %g", s.MaxDiff)
	}
	// Negative bound skips incorrect accounting (SZ-PSNR convention).
	s2 := Evaluate(orig, got, -1)
	if s2.IncorrectElements != 0 || s2.PercentIncorrect != 0 {
		t.Fatal("negative bound must skip incorrect-element accounting")
	}
}

func TestRange(t *testing.T) {
	lo, hi := Range([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("Range = (%g, %g)", lo, hi)
	}
	lo, hi = Range(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("empty range must be (0,0)")
	}
}

func TestQuickPSNRDecreasesWithNoise(t *testing.T) {
	prop := func(seed uint8) bool {
		idx := int(seed) % 100
		orig := make([]float64, 100)
		for i := range orig {
			orig[i] = float64(i)
		}
		small := make([]float64, 100)
		big := make([]float64, 100)
		copy(small, orig)
		copy(big, orig)
		small[idx] += 0.01
		big[idx] += 1.0
		return PSNR(orig, small) > PSNR(orig, big)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyBound(t *testing.T) {
	orig := []float64{0, 1, -2, 1000}
	okAbs := []float64{0.05, 1.05, -2.05, 1000.05}
	if i := VerifyBound(orig, okAbs, BoundAbs, 0.1); i != -1 {
		t.Fatalf("abs ok flagged %d", i)
	}
	badAbs := []float64{0, 1, -2, 1000.2}
	if i := VerifyBound(orig, badAbs, BoundAbs, 0.1); i != 3 {
		t.Fatalf("abs violation at %d, want 3", i)
	}
	okRel := []float64{0, 1.009, -2.01, 1009}
	if i := VerifyBound(orig, okRel, BoundRel, 0.01); i != -1 {
		t.Fatalf("rel ok flagged %d", i)
	}
	badZero := []float64{0.001, 1, -2, 1000}
	if i := VerifyBound(orig, badZero, BoundRel, 0.01); i != 0 {
		t.Fatal("zero must be preserved exactly under rel bounds")
	}
	if i := VerifyBound(orig, orig, BoundPSNR, 90); i != -1 {
		t.Fatal("identical data has infinite PSNR")
	}
	noisy := []float64{100, 1, -2, 1000}
	if i := VerifyBound(orig, noisy, BoundPSNR, 90); i != 0 {
		t.Fatal("gross noise must fail a 90 dB target")
	}
}

func TestVerifyBoundUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind must panic")
		}
	}()
	VerifyBound([]float64{1}, []float64{1}, BoundKind(9), 1)
}
