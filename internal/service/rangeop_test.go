package service

// READ_RANGE operation tests: round trips against a root archive,
// cache-warm accounting surfaced through STATS (including the
// snapshot's JSON shape), name confinement, budget refusals, and the
// range-mix workload's ground-truth verdicts.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/ecc"
)

// writeTestArchive encodes size random bytes as a v2 (indexed) ARC
// stream at dir/name and returns the plaintext.
func writeTestArchive(t *testing.T, dir, name string, size, chunkSize int) []byte {
	t.Helper()
	data := make([]byte, size)
	rand.New(rand.NewSource(int64(size))).Read(data)
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	cw, err := new(core.Engine).NewChunkWriterChoice(f,
		core.Choice{Config: core.Config{Method: ecc.MethodSECDED, Param: 64}, Threads: 1},
		core.StreamOptions{ChunkSize: chunkSize, Pipeline: 1, Indexed: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return data
}

func TestReadRangeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	data := writeTestArchive(t, dir, "a.arc", 64<<10, 8<<10)
	_, addr := newTestServer(t, Config{Root: dir})
	c := dialTest(t, addr)
	ctx := context.Background()

	// Cold mid-range read spanning a chunk boundary.
	got, rep, err := c.ReadRange(ctx, "a.arc", 7<<10, 3<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[7<<10:10<<10]) {
		t.Fatal("ranged bytes differ from the plaintext")
	}
	if rep.CorrectedBits != 0 {
		t.Fatalf("pristine archive reported corrections: %+v", rep)
	}

	// Warm repeat: same window, served from the decoded-chunk cache.
	got, _, err = c.ReadRange(ctx, "a.arc", 7<<10, 3<<10)
	if err != nil || !bytes.Equal(got, data[7<<10:10<<10]) {
		t.Fatalf("warm ranged read: %v", err)
	}

	// A range running past the end returns the existing tail.
	got, _, err = c.ReadRange(ctx, "a.arc", 63<<10, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[63<<10:]) {
		t.Fatalf("tail read returned %d bytes", len(got))
	}

	// A wholly out-of-range window is empty, not an error.
	got, _, err = c.ReadRange(ctx, "a.arc", 1<<20, 16)
	if err != nil || len(got) != 0 {
		t.Fatalf("past-end read = %d bytes, %v", len(got), err)
	}
}

func TestReadRangeRefusals(t *testing.T) {
	dir := t.TempDir()
	writeTestArchive(t, dir, "a.arc", 16<<10, 8<<10)
	// An unprotected sibling outside the root must stay unreachable.
	if err := os.WriteFile(filepath.Join(dir, "..", "escape.arc"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, addr := newTestServer(t, Config{Root: dir, MaxPayload: 1 << 20})
	c := dialTest(t, addr)
	ctx := context.Background()

	for name, off := range map[string]int64{
		"../escape.arc": 0, // traversal
		"missing.arc":   0, // nonexistent
		"":              0, // empty name (refused at parse)
	} {
		if _, _, err := c.ReadRange(ctx, name, off, 16); !isStatus(err, StatusBadRequest) {
			t.Fatalf("name %q: err = %v, want bad-request", name, err)
		}
	}

	// A window larger than the response budget is refused up front.
	if _, _, err := c.ReadRange(ctx, "a.arc", 0, 1<<20); !isStatus(err, StatusBadRequest) {
		t.Fatal("over-budget window accepted")
	}

	// A server with no root refuses the op entirely.
	_, addr2 := newTestServer(t, Config{})
	c2 := dialTest(t, addr2)
	if _, _, err := c2.ReadRange(ctx, "a.arc", 0, 16); !isStatus(err, StatusBadRequest) {
		t.Fatal("rootless server served a ranged read")
	}
}

func isStatus(err error, want Status) bool {
	var re *RemoteErr
	return errors.As(err, &re) && re.Status == want
}

func TestStatsSnapshotShape(t *testing.T) {
	dir := t.TempDir()
	data := writeTestArchive(t, dir, "a.arc", 32<<10, 8<<10)
	_, addr := newTestServer(t, Config{Root: dir})
	c := dialTest(t, addr)
	ctx := context.Background()

	// One cold and one warm read so both cache counters move.
	for i := 0; i < 2; i++ {
		got, _, err := c.ReadRange(ctx, "a.arc", 1000, 2000)
		if err != nil || !bytes.Equal(got, data[1000:3000]) {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	raw, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// The JSON shape is the monitoring contract: spot-check the keys
	// dashboards scrape rather than round-tripping through the struct.
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	var cacheStats struct {
		Hits        *int64 `json:"hits"`
		Misses      *int64 `json:"misses"`
		Evictions   *int64 `json:"evictions"`
		Bytes       *int64 `json:"bytes"`
		BudgetBytes *int64 `json:"budget_bytes"`
	}
	if err := json.Unmarshal(snap["cache"], &cacheStats); err != nil {
		t.Fatalf("stats payload lacks a cache object: %v", err)
	}
	for k, v := range map[string]*int64{
		"hits": cacheStats.Hits, "misses": cacheStats.Misses,
		"evictions": cacheStats.Evictions, "bytes": cacheStats.Bytes,
		"budget_bytes": cacheStats.BudgetBytes,
	} {
		if v == nil {
			t.Fatalf("cache object lacks %q", k)
		}
	}
	if *cacheStats.Hits == 0 || *cacheStats.Misses == 0 {
		t.Fatalf("cache counters did not move: hits=%d misses=%d", *cacheStats.Hits, *cacheStats.Misses)
	}
	var latency struct {
		P50 *float64 `json:"p50_ms"`
		P99 *float64 `json:"p99_ms"`
	}
	if err := json.Unmarshal(snap["latency"], &latency); err != nil {
		t.Fatal(err)
	}
	if latency.P50 == nil || latency.P99 == nil {
		t.Fatal("latency object lacks p50_ms/p99_ms")
	}
	var ops []struct {
		Name     string `json:"name"`
		Requests int64  `json:"requests"`
	}
	if err := json.Unmarshal(snap["ops"], &ops); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, op := range ops {
		if op.Name == "read-range" && op.Requests == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ops lack a read-range row with 2 requests: %s", raw)
	}

	// A rootless server's snapshot omits the cache object entirely.
	_, addr2 := newTestServer(t, Config{})
	c2 := dialTest(t, addr2)
	raw2, err := c2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var snap2 map[string]json.RawMessage
	if err := json.Unmarshal(raw2, &snap2); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap2["cache"]; ok {
		t.Fatal("rootless server advertises cache counters")
	}
}

func TestWorkloadRangeMix(t *testing.T) {
	dir := t.TempDir()
	data := writeTestArchive(t, dir, "load.arc", 128<<10, 16<<10)
	_, addr := newTestServer(t, Config{Root: dir, CacheBytes: 48 << 10}) // ~3 chunks: force churn
	res, err := RunWorkload(context.Background(), WorkloadOptions{
		Addr:         addr,
		Clients:      4,
		Requests:     40,
		RangeRatio:   0.5,
		RangeArchive: "load.arc",
		RangePlain:   data,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RangeReads == 0 {
		t.Fatal("range mix issued no ranged reads")
	}
	if res.Errors != 0 || res.SilentMismatches != 0 {
		t.Fatalf("range workload unhealthy: errors=%d mismatches=%d", res.Errors, res.SilentMismatches)
	}
	if res.Requests != 4*40 {
		t.Fatalf("requests = %d, want %d", res.Requests, 4*40)
	}
}
