package service

import (
	"bytes"
	"errors"
	"io"
	"runtime"
	"testing"

	"repro/internal/ecc"
)

// TestFrameGolden pins the wire layout byte for byte: a frame written
// by any future implementation must match these exact bytes, and these
// exact bytes must parse back. Change the protocol, bump the version.
func TestFrameGolden(t *testing.T) {
	got := AppendFrame(nil, Frame{Op: OpEncode, Status: StatusRequest, Payload: []byte("hi")})
	want := []byte{
		0x41, 0xF7, // magic
		1,       // version
		1,       // op encode
		0,       // status request
		0, 0, 0, // reserved
		0, 0, 0, 2, // payload length
		'h', 'i',
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden frame mismatch:\n got %x\nwant %x", got, want)
	}

	f, err := ReadFrame(bytes.NewReader(want), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Op != OpEncode || f.Status != StatusRequest || string(f.Payload) != "hi" {
		t.Fatalf("golden frame parsed to %+v", f)
	}

	// An empty-payload response frame, same treatment.
	got = AppendFrame(nil, Frame{Op: OpStats, Status: StatusOK})
	want = []byte{0x41, 0xF7, 1, 5, 1, 0, 0, 0, 0, 0, 0, 0}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden empty frame mismatch:\n got %x\nwant %x", got, want)
	}
}

func TestWriteFrameMatchesAppendFrame(t *testing.T) {
	f := Frame{Op: OpRepair, Status: StatusOK, Payload: []byte("payload bytes")}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), AppendFrame(nil, f)) {
		t.Fatalf("WriteFrame and AppendFrame disagree:\n%x\n%x", buf.Bytes(), AppendFrame(nil, f))
	}
}

func TestReadFrameRejectsMalformed(t *testing.T) {
	valid := AppendFrame(nil, Frame{Op: OpDecode, Status: StatusRequest, Payload: []byte("x")})
	mutate := func(i int, v byte) []byte {
		b := append([]byte(nil), valid...)
		b[i] = v
		return b
	}
	cases := []struct {
		name string
		in   []byte
	}{
		{"bad magic 0", mutate(0, 0x00)},
		{"bad magic 1", mutate(1, 0x00)},
		{"bad version", mutate(2, 2)},
		{"zero op", mutate(3, 0)},
		{"unknown op", mutate(3, 99)},
		{"unknown status", mutate(4, 99)},
		{"reserved byte 5", mutate(5, 1)},
		{"reserved byte 6", mutate(6, 1)},
		{"reserved byte 7", mutate(7, 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadFrame(bytes.NewReader(tc.in), 0, nil); !errors.Is(err, ErrBadFrame) {
				t.Fatalf("err = %v, want ErrBadFrame", err)
			}
		})
	}
}

func TestReadFrameTruncated(t *testing.T) {
	full := AppendFrame(nil, Frame{Op: OpVerify, Status: StatusRequest, Payload: bytes.Repeat([]byte("a"), 100)})
	// A clean EOF between frames is io.EOF; anything shorter than a
	// whole frame is io.ErrUnexpectedEOF.
	if _, err := ReadFrame(bytes.NewReader(nil), 0, nil); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
	for _, n := range []int{1, FrameHeaderLen - 1, FrameHeaderLen, FrameHeaderLen + 50, len(full) - 1} {
		if _, err := ReadFrame(bytes.NewReader(full[:n]), 0, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncated at %d: err = %v, want io.ErrUnexpectedEOF", n, err)
		}
	}
}

func TestReadFrameOversized(t *testing.T) {
	f := Frame{Op: OpEncode, Status: StatusRequest, Payload: bytes.Repeat([]byte("b"), 2048)}
	enc := AppendFrame(nil, f)
	got, err := ReadFrame(bytes.NewReader(enc), 1024, nil)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	// The refusal still identifies the request so a server can answer
	// it by op.
	if got.Op != OpEncode || got.Payload != nil {
		t.Fatalf("oversized frame returned %+v", got)
	}
	// At exactly the limit the frame is fine.
	if _, err := ReadFrame(bytes.NewReader(enc), 2048, nil); err != nil {
		t.Fatal(err)
	}
}

// TestReadFrameForgedLengthBoundedAlloc is the wire-side extension of
// the decoder-hardening contract: a header promising DefaultMaxPayload
// bytes backed by almost no data must cost bounded allocation, not a
// 32 MiB up-front make.
func TestReadFrameForgedLengthBoundedAlloc(t *testing.T) {
	header := AppendFrame(nil, Frame{Op: OpDecode, Status: StatusRequest})
	// Rewrite the length field to promise the full default budget.
	header[8], header[9], header[10], header[11] = 0x02, 0x00, 0x00, 0x00 // 32 MiB
	for _, body := range []int{0, 1, directPayloadCap, directPayloadCap + 1, 3 * directPayloadCap} {
		in := append(append([]byte(nil), header...), make([]byte, body)...)
		delta := decodeAllocDelta(func() {
			if _, err := ReadFrame(bytes.NewReader(in), 0, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("body %d: err = %v, want io.ErrUnexpectedEOF", body, err)
			}
		})
		if budget := frameAllocBudget(len(in)); delta > budget {
			t.Fatalf("body %d: allocated %d bytes, budget %d", body, delta, budget)
		}
	}
}

// frameAllocBudget bounds the bytes ReadFrame may allocate for an
// input of inputLen bytes: geometric growth re-copies at most double
// the arrived data, plus the direct-allocation floor and slack for the
// test harness itself.
func frameAllocBudget(inputLen int) uint64 {
	return 8*uint64(inputLen) + (256 << 10)
}

// decodeAllocDelta measures the bytes allocated while fn runs (the
// idiom of the repo root's fuzz_test.go).
func decodeAllocDelta(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

func TestReadFrameScratchReuse(t *testing.T) {
	payload := bytes.Repeat([]byte("s"), 4096)
	enc := AppendFrame(nil, Frame{Op: OpDecode, Status: StatusOK, Payload: payload})
	scratch := make([]byte, 0, 8192)
	f, err := ReadFrame(bytes.NewReader(enc), 0, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Fatal("payload mismatch with scratch reuse")
	}
	if &f.Payload[0] != &scratch[:1][0] {
		t.Fatal("payload did not reuse the scratch buffer")
	}
}

func TestEncodeRequestRoundTrip(t *testing.T) {
	data := []byte("some plaintext")
	req := AppendEncodeRequest(nil, ecc.MethodSECDED, 64, data)
	method, param, got, err := ParseEncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if method != ecc.MethodSECDED || param != 64 || !bytes.Equal(got, data) {
		t.Fatalf("round trip: method=%v param=%d data=%q", method, param, got)
	}
	for i := 0; i < encodeReqHeaderLen; i++ {
		if _, _, _, err := ParseEncodeRequest(req[:i]); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("short request len %d: err = %v, want ErrBadFrame", i, err)
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	want := Report{DetectedBlocks: 3, CorrectedBits: 2, CorrectedBlocks: 1}
	payload := append(AppendReport(nil, want), []byte("data")...)
	got, rest, err := ParseReport(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || string(rest) != "data" {
		t.Fatalf("round trip: %+v rest=%q", got, rest)
	}
	if _, _, err := ParseReport(payload[:reportLen-1]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short report: err = %v, want ErrBadFrame", err)
	}
}

// FuzzFrameDecode throws arbitrary bytes at ReadFrame and checks the
// hardened-decoder contract on the wire: bounded allocation whatever
// the length prefix claims, no panics, and exact re-encode round trips
// for every accepted frame.
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Op: OpEncode, Status: StatusRequest, Payload: []byte("seed")}))
	f.Add(AppendFrame(nil, Frame{Op: OpStats, Status: StatusOK}))
	forged := AppendFrame(nil, Frame{Op: OpDecode, Status: StatusRequest})
	forged[8] = 0x7F // promise ~2 GiB
	f.Add(forged)
	f.Add([]byte{0x41, 0xF7, 1})
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var frame Frame
		var err error
		delta := decodeAllocDelta(func() {
			frame, err = ReadFrame(bytes.NewReader(data), 0, nil)
		})
		if delta > frameAllocBudget(len(data)) {
			t.Fatalf("ReadFrame allocated %d bytes for %d input bytes", delta, len(data))
		}
		if err != nil {
			return
		}
		// Accepted frames must survive an exact re-encode round trip,
		// and the encoding must be a prefix of the input (trailing
		// bytes are the next frame's business).
		enc := AppendFrame(nil, frame)
		if !bytes.Equal(enc, data[:len(enc)]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", enc, data[:len(enc)])
		}
		back, err := ReadFrame(bytes.NewReader(enc), 0, nil)
		if err != nil {
			t.Fatalf("re-encoded frame failed to parse: %v", err)
		}
		if back.Op != frame.Op || back.Status != frame.Status || !bytes.Equal(back.Payload, frame.Payload) {
			t.Fatal("round-tripped frame differs")
		}
	})
}
