package service

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestChaosFaultInjectionUnderLoad is the headline guarantee of the
// service under fire: with many clients hammering a live arcd and a
// large fraction of containers corrupted mid-flight, every
// within-budget corruption is repaired to the exact original bytes,
// every over-budget corruption is loudly refused, and nothing — not
// one request — is silently wrong. Then the server drains without
// leaking a goroutine.
func TestChaosFaultInjectionUnderLoad(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{Workers: 4, Window: 8})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	clients, requests := 6, 60
	if testing.Short() {
		clients, requests = 3, 20
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	res, err := RunWorkload(ctx, WorkloadOptions{
		Addr:           addr.String(),
		Clients:        clients,
		Requests:       requests,
		EncodeRatio:    0.4,
		MinSize:        64,
		MaxSize:        32 << 10,
		CorruptRate:    0.6,
		OverBudgetRate: 0.3,
		Seed:           42,
	})
	if err != nil {
		t.Fatal(err)
	}

	if res.Requests != clients*requests {
		t.Errorf("completed %d requests, want %d", res.Requests, clients*requests)
	}
	if res.Errors != 0 {
		t.Errorf("workload counted %d errors, want 0", res.Errors)
	}

	// The integrity contract. Each clause is the paper's promise under
	// adversarial load: repair what the budget covers, refuse what it
	// does not, never lie.
	if res.InjectedWithin == 0 || res.InjectedOver == 0 {
		t.Fatalf("chaos campaign under-injected: within=%d over=%d (seed/rate drift?)",
			res.InjectedWithin, res.InjectedOver)
	}
	if res.SilentMismatches != 0 {
		t.Errorf("SILENT MISMATCHES: %d decodes returned wrong bytes as OK", res.SilentMismatches)
	}
	if res.RepairedWithin != res.InjectedWithin || res.UnrepairedWithin != 0 {
		t.Errorf("repaired %d of %d within-budget corruptions (%d unrepaired)",
			res.RepairedWithin, res.InjectedWithin, res.UnrepairedWithin)
	}
	if res.ReportedOver != res.InjectedOver {
		t.Errorf("reported %d of %d over-budget corruptions as uncorrectable",
			res.ReportedOver, res.InjectedOver)
	}
	// Bit-for-bit accounting: the server's repair reports must add up
	// to exactly the damage injected.
	if res.CorrectedBits != res.InjectedWithinBits {
		t.Errorf("server reported %d corrected bits, injected %d",
			res.CorrectedBits, res.InjectedWithinBits)
	}

	// The embedded server snapshot corroborates the client-side tally.
	if len(res.ServerStats) == 0 {
		t.Fatal("workload result missing server stats")
	}
	var snap metrics.LiveSnapshot
	if err := json.Unmarshal(res.ServerStats, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Uncorrectable != int64(res.InjectedOver) {
		t.Errorf("server counted %d uncorrectable decodes, workload injected %d over-budget",
			snap.Uncorrectable, res.InjectedOver)
	}
	if snap.CorrectedBits < int64(res.InjectedWithinBits) {
		t.Errorf("server corrected %d bits, workload injected %d",
			snap.CorrectedBits, res.InjectedWithinBits)
	}
	if snap.Requests < int64(res.Requests) {
		t.Errorf("server saw %d requests, workload sent %d", snap.Requests, res.Requests)
	}
	if res.Latency.Count == 0 || res.Latency.P99Ms <= 0 {
		t.Errorf("latency histogram empty: %+v", res.Latency)
	}

	// Drain and leak-check: chaos must not leave wreckage behind.
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown after chaos: %v", err)
	}
	checkNoLeaks(t, base)
}

// TestWorkloadRejectsUninjectableConfig: fault injection depends on
// the SEC-DED layout; asking for it with another code must fail fast
// instead of producing meaningless accounting.
func TestWorkloadRejectsUninjectableConfig(t *testing.T) {
	_, err := RunWorkload(context.Background(), WorkloadOptions{
		Addr:        "127.0.0.1:1",
		CorruptRate: 0.5,
		Method:      2, // hamming
		Param:       32,
	})
	if err == nil {
		t.Fatal("workload accepted fault injection on a non-secded64 config")
	}
}

// TestWorkloadCleanRun: no corruption, every op mixed in, zero errors.
func TestWorkloadCleanRun(t *testing.T) {
	s := New(Config{})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }() // drained below via workload completion

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := RunWorkload(ctx, WorkloadOptions{
		Addr:     addr.String(),
		Clients:  2,
		Requests: 20,
		MaxSize:  4 << 10,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.SilentMismatches != 0 {
		t.Fatalf("clean run: %d errors, %d mismatches", res.Errors, res.SilentMismatches)
	}
	if res.Requests != 40 || res.Encodes == 0 || res.Decodes == 0 {
		t.Fatalf("mix did not exercise the ops: %+v", res)
	}
	if res.InjectedWithin != 0 || res.InjectedOver != 0 {
		t.Fatalf("clean run injected corruption: %+v", res)
	}
	if res.RequestsPerS <= 0 || res.ElapsedMs <= 0 {
		t.Fatalf("throughput accounting: %+v", res)
	}
}
