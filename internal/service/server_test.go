package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/faultinject"
	"repro/internal/metrics"
)

const settleDeadline = 5 * time.Second

// goroutinesSettleTo polls until the goroutine count drops to base
// (the idiom of internal/core/stream_pipeline_test.go).
func goroutinesSettleTo(base int) bool {
	deadline := time.Now().Add(settleDeadline)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return true
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	return false
}

func checkNoLeaks(t *testing.T, base int) {
	t.Helper()
	if !goroutinesSettleTo(base) {
		t.Errorf("goroutine leak: %d running, want <= %d", runtime.NumGoroutine(), base)
	}
}

// newTestServer boots a server on an ephemeral port and tears it down
// with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s := New(cfg)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, addr.String()
}

func dialTest(t *testing.T, addr string) *Client {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestServerEncodeDecodeRoundTrip(t *testing.T) {
	_, addr := newTestServer(t, Config{})
	c := dialTest(t, addr)
	ctx := testCtx(t)

	data := make([]byte, 10_000)
	rand.New(rand.NewSource(1)).Read(data)

	container, err := c.Encode(ctx, 0, 0, data) // method 0: server default
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := c.Decode(ctx, container)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decode did not return the original bytes")
	}
	if rep != (Report{}) {
		t.Fatalf("clean container reported repairs: %+v", rep)
	}
	if rep, err := c.Verify(ctx, container); err != nil || rep != (Report{}) {
		t.Fatalf("verify: %+v, %v", rep, err)
	}

	// An explicit configuration must round-trip too.
	container2, err := c.Encode(ctx, ecc.MethodHamming, 8, data)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := c.Decode(ctx, container2); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("hamming8 round trip failed: %v", err)
	}
}

func TestServerDecodeRepairsCorruption(t *testing.T) {
	_, addr := newTestServer(t, Config{})
	c := dialTest(t, addr)
	ctx := testCtx(t)

	data := bytes.Repeat([]byte("resilient data "), 100)
	container, err := c.Encode(ctx, ecc.MethodSECDED, 64, data)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), container...)
	faultinject.FlipBitInPlace(mut[core.ContainerOverheadBytes:], 8*8*3+5) // one bit in data block 3

	got, rep, err := c.Decode(ctx, mut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decode did not repair the flipped bit")
	}
	if rep.CorrectedBits != 1 || rep.DetectedBlocks != 1 {
		t.Fatalf("report = %+v, want 1 corrected bit in 1 detected block", rep)
	}
}

func TestServerRepairRestoresBudget(t *testing.T) {
	_, addr := newTestServer(t, Config{})
	c := dialTest(t, addr)
	ctx := testCtx(t)

	data := bytes.Repeat([]byte("abcdefgh"), 64)
	container, err := c.Encode(ctx, ecc.MethodSECDED, 64, data)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), container...)
	faultinject.FlipBitInPlace(mut[core.ContainerOverheadBytes:], 3)

	fresh, rep, err := c.Repair(ctx, mut)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorrectedBits != 1 {
		t.Fatalf("repair report = %+v", rep)
	}
	// The fresh container decodes cleanly — corrections folded in, no
	// residual damage.
	res, err := core.DecodeContainer(fresh, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) || res.Report.DetectedBlocks != 0 {
		t.Fatalf("repaired container: %d detected blocks", res.Report.DetectedBlocks)
	}
}

func TestServerUncorrectableIsLoud(t *testing.T) {
	_, addr := newTestServer(t, Config{})
	c := dialTest(t, addr)
	ctx := testCtx(t)

	data := bytes.Repeat([]byte("x"), 4096)
	container, err := c.Encode(ctx, ecc.MethodSECDED, 64, data)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), container...)
	// Two flips in one SEC-DED block: detectable, beyond correction.
	faultinject.FlipBitInPlace(mut[core.ContainerOverheadBytes:], 8*8*2+1)
	faultinject.FlipBitInPlace(mut[core.ContainerOverheadBytes:], 8*8*2+9)

	got, _, err := c.Decode(ctx, mut)
	if !IsUncorrectable(err) {
		t.Fatalf("err = %v, want uncorrectable", err)
	}
	if got != nil {
		t.Fatal("uncorrectable decode returned data")
	}
	if _, _, err := c.Repair(ctx, mut); !IsUncorrectable(err) {
		t.Fatalf("repair err = %v, want uncorrectable", err)
	}
}

func TestServerBadRequests(t *testing.T) {
	_, addr := newTestServer(t, Config{})
	c := dialTest(t, addr)
	ctx := testCtx(t)

	var re *RemoteErr
	if _, _, err := c.Decode(ctx, []byte("not a container")); !errors.As(err, &re) || re.Status != StatusBadRequest {
		t.Fatalf("garbage decode: err = %v, want bad-request", err)
	}
	if _, err := c.Encode(ctx, ecc.Method(200), 7, []byte("data")); !errors.As(err, &re) || re.Status != StatusBadRequest {
		t.Fatalf("bogus method: err = %v, want bad-request", err)
	}
	// The connection survives bad requests.
	if _, err := c.Encode(ctx, 0, 0, []byte("still works")); err != nil {
		t.Fatalf("connection did not survive bad requests: %v", err)
	}
}

func TestServerStats(t *testing.T) {
	_, addr := newTestServer(t, Config{})
	c := dialTest(t, addr)
	ctx := testCtx(t)

	if _, err := c.Encode(ctx, 0, 0, []byte("count me")); err != nil {
		t.Fatal(err)
	}
	raw, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var snap metrics.LiveSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests < 1 || snap.ConnsActive < 1 || snap.BytesIn == 0 {
		t.Fatalf("stats snapshot: %+v", snap)
	}
	if len(snap.Ops) != len(OpNames()) || snap.Ops[0].Name != "encode" || snap.Ops[0].Requests != 1 {
		t.Fatalf("per-op stats: %+v", snap.Ops)
	}
}

// TestServerOversizedFrame checks the bounded-allocation refusal: the
// server answers with StatusOversized addressed to the right op, then
// closes the connection.
func TestServerOversizedFrame(t *testing.T) {
	_, addr := newTestServer(t, Config{MaxPayload: 1024})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }() // already closed by the server on the happy path

	big := AppendEncodeRequest(nil, 0, 0, make([]byte, 4096))
	if err := WriteFrame(conn, Frame{Op: OpEncode, Status: StatusRequest, Payload: big}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(conn, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Op != OpEncode || f.Status != StatusOversized {
		t.Fatalf("response = %s/%s, want encode/oversized", f.Op, f.Status)
	}
	// The stream is done: the server closes after the refusal.
	if _, err := ReadFrame(conn, 0, nil); err == nil {
		t.Fatal("connection survived an oversized frame")
	}
}

func TestServerMalformedFrameDropsConnection(t *testing.T) {
	s, addr := newTestServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }() // server closes first; this is belt and braces

	if _, err := conn.Write(bytes.Repeat([]byte{0xFF}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := readUntilClosed(conn); err != nil {
		t.Fatal(err)
	}
	if s.Stats().FrameErrors == 0 {
		t.Fatal("malformed frame not counted")
	}
}

// readUntilClosed drains conn until the peer closes it. A reset
// counts: the server closing with unread client bytes in its receive
// buffer surfaces as ECONNRESET rather than a clean EOF.
func readUntilClosed(conn net.Conn) error {
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	for {
		var b [256]byte
		if _, err := conn.Read(b[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, syscall.ECONNRESET) {
				return nil
			}
			return err
		}
	}
}

// TestServerPipelinedResponsesInOrder writes a burst of requests
// before reading anything, then checks the responses come back in
// submission order — the parallel.Pipe ordering contract on the wire.
func TestServerPipelinedResponsesInOrder(t *testing.T) {
	_, addr := newTestServer(t, Config{Workers: 4, Window: 16})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }() // test cleanup

	// Mix sizes so processing times differ: ordering must come from
	// the pipeline, not from uniform timing.
	const n = 12
	sizes := make([]int, n)
	var burst []byte
	for i := range sizes {
		sizes[i] = 128 << (i % 5)
		payload := AppendEncodeRequest(nil, 0, 0, bytes.Repeat([]byte{byte(i)}, sizes[i]))
		burst = AppendFrame(burst, Frame{Op: OpEncode, Status: StatusRequest, Payload: payload})
	}
	if _, err := conn.Write(burst); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f, err := ReadFrame(conn, 0, nil)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if f.Op != OpEncode || f.Status != StatusOK {
			t.Fatalf("response %d: %s/%s", i, f.Op, f.Status)
		}
		res, err := core.DecodeContainer(f.Payload, 1)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if len(res.Data) != sizes[i] || (sizes[i] > 0 && res.Data[0] != byte(i)) {
			t.Fatalf("response %d out of order: got %d-byte payload", i, len(res.Data))
		}
	}
}

// TestArcdShutdownDrains is the graceful-drain regression: requests
// already accepted when Shutdown begins still get their responses, and
// no goroutine outlives the server.
func TestArcdShutdownDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{Workers: 1, Window: 16})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Two connections: one large encode occupies the single budget
	// slot while the other conn's request queues behind it, so both
	// are in flight when Shutdown starts.
	connA, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = connA.Close() }() // server closes on drain; belt and braces
	connB, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = connB.Close() }() // as above

	bigReq := AppendEncodeRequest(nil, 0, 0, make([]byte, 2<<20))
	if err := WriteFrame(connA, Frame{Op: OpEncode, Status: StatusRequest, Payload: bigReq}); err != nil {
		t.Fatal(err)
	}
	smallReq := AppendEncodeRequest(nil, 0, 0, []byte("queued behind the big one"))
	if err := WriteFrame(connB, Frame{Op: OpEncode, Status: StatusRequest, Payload: smallReq}); err != nil {
		t.Fatal(err)
	}

	// Let the server pull both requests off the sockets before the
	// drain begins.
	waitFor(t, func() bool { return s.Stats().ConnsActive == 2 })
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Both responses must have been flushed before the drain closed
	// the connections.
	for i, conn := range []net.Conn{connA, connB} {
		if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
			t.Fatal(err)
		}
		f, err := ReadFrame(conn, 0, nil)
		if err != nil {
			t.Fatalf("conn %d: response lost in shutdown: %v", i, err)
		}
		if f.Status != StatusOK {
			t.Fatalf("conn %d: status %s", i, f.Status)
		}
	}
	checkNoLeaks(t, base)
}

// TestArcdClientDisconnectMidStream kills clients at the nastiest
// moments — mid-header, mid-payload, and with responses unread — and
// checks the server neither leaks goroutines nor stops serving.
func TestArcdClientDisconnectMidStream(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{Window: 2})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	abandon := func(t *testing.T, write func(conn net.Conn)) {
		t.Helper()
		conn, err := net.Dial("tcp", addr.String())
		if err != nil {
			t.Fatal(err)
		}
		write(conn)
		_ = conn.Close() // the abrupt disconnect under test
	}

	t.Run("mid header", func(t *testing.T) {
		abandon(t, func(conn net.Conn) {
			_, _ = conn.Write([]byte{0x41, 0xF7, 1}) // partial header, then gone
		})
	})
	t.Run("mid payload", func(t *testing.T) {
		abandon(t, func(conn net.Conn) {
			full := AppendFrame(nil, Frame{Op: OpEncode, Status: StatusRequest, Payload: make([]byte, 100_000)})
			_, _ = conn.Write(full[:len(full)/2]) // half the promised payload
		})
	})
	t.Run("responses unread", func(t *testing.T) {
		abandon(t, func(conn net.Conn) {
			var burst []byte
			for i := 0; i < 8; i++ {
				payload := AppendEncodeRequest(nil, 0, 0, bytes.Repeat([]byte{1}, 64<<10))
				burst = AppendFrame(burst, Frame{Op: OpEncode, Status: StatusRequest, Payload: payload})
			}
			_, _ = conn.Write(burst) // never reads a single response
		})
	})

	// Every abandoned connection's handler must wind down on its own.
	waitFor(t, func() bool { return s.Stats().ConnsActive == 0 })

	// And the server still serves.
	c := dialTest(t, addr.String())
	if _, err := c.Encode(testCtx(t), 0, 0, []byte("alive")); err != nil {
		t.Fatalf("server wedged after disconnects: %v", err)
	}
	_ = c.Close() // before the leak check, so its conn's handler exits

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	checkNoLeaks(t, base)
}

// waitFor polls cond until it holds or the settle deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(settleDeadline)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached before deadline")
}

// TestServerSoakConcurrentClients is the race-mode soak: many clients,
// many mixed requests, every response checked, no leaks afterwards.
func TestServerSoakConcurrentClients(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{Workers: 4, Window: 4})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	perClient := 30
	if testing.Short() {
		perClient = 8
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			errs <- soakClient(ctx, addr.String(), cl, perClient)
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}

	snap := s.Stats()
	if want := int64(clients * perClient); snap.Requests < want {
		t.Fatalf("server counted %d requests, want >= %d", snap.Requests, want)
	}
	if snap.Errors != 0 {
		t.Fatalf("server counted %d request errors", snap.Errors)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	checkNoLeaks(t, base)
}

func soakClient(ctx context.Context, addr string, id, requests int) error {
	c, err := Dial(ctx, addr, 0)
	if err != nil {
		return err
	}
	defer func() { _ = c.Close() }() // errors already reported via return

	rng := rand.New(rand.NewSource(int64(id)))
	data := make([]byte, 256+rng.Intn(8<<10))
	rng.Read(data)
	container, err := c.Encode(ctx, 0, 0, data)
	if err != nil {
		return fmt.Errorf("client %d: encode: %w", id, err)
	}
	for i := 0; i < requests; i++ {
		switch i % 3 {
		case 0:
			got, _, err := c.Decode(ctx, container)
			if err != nil {
				return fmt.Errorf("client %d req %d: decode: %w", id, i, err)
			}
			if !bytes.Equal(got, data) {
				return fmt.Errorf("client %d req %d: decode mismatch", id, i)
			}
		case 1:
			if _, err := c.Verify(ctx, container); err != nil {
				return fmt.Errorf("client %d req %d: verify: %w", id, i, err)
			}
		default:
			fresh, err := c.Encode(ctx, 0, 0, data)
			if err != nil {
				return fmt.Errorf("client %d req %d: encode: %w", id, i, err)
			}
			container = fresh
		}
	}
	return nil
}

// TestServerRejectsResponseStatusRequests: a frame claiming to be a
// response has no business arriving at a server.
func TestServerRejectsResponseStatusRequests(t *testing.T) {
	s, addr := newTestServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }() // server closes first on this path

	if err := WriteFrame(conn, Frame{Op: OpStats, Status: StatusOK}); err != nil {
		t.Fatal(err)
	}
	if err := readUntilClosed(conn); err != nil {
		t.Fatal(err)
	}
	if s.Stats().FrameErrors == 0 {
		t.Fatal("response-status request not counted as a frame error")
	}
}

func TestServerServeTwiceAndAfterClose(t *testing.T) {
	s := New(Config{})
	if _, err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Listen("127.0.0.1:0"); err == nil {
		t.Fatal("second Listen succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{})
	_ = s2.Close()
	if _, err := s2.Listen("127.0.0.1:0"); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Listen after Close: err = %v, want ErrServerClosed", err)
	}
}
