package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/faultinject"
	"repro/internal/metrics"
)

// WorkloadOptions parameterizes an arcload run against an arcd
// server: how many clients, how many requests each, the operation
// mix, the payload-size distribution, and the mid-flight corruption
// campaign. The zero value plus an Addr is a usable smoke workload.
type WorkloadOptions struct {
	// Addr is the arcd address to hammer.
	Addr string
	// Clients is the number of concurrent connections (<= 0 means 4).
	Clients int
	// Requests is the number of requests per client (<= 0 means 50).
	// An encode and the decode of its container count separately.
	Requests int
	// EncodeRatio is the target fraction of requests that are encodes
	// (<= 0 means 0.5; clamped to [0.1, 1] so decodes always have
	// containers to chew on).
	EncodeRatio float64
	// MinSize/MaxSize bound the plaintext payload sizes in bytes
	// (defaults 64 and 256<<10). Sizes are Zipf-skewed toward
	// MinSize, the hot-small/cold-large shape of real archives.
	MinSize, MaxSize int
	// ZipfS is the Zipf skew parameter (> 1; default 1.4; larger
	// means smaller payloads dominate harder).
	ZipfS float64
	// CorruptRate is the fraction of decode-side requests whose
	// container is corrupted mid-flight before being sent (default 0;
	// the chaos suite runs 0.5).
	CorruptRate float64
	// OverBudgetRate is the fraction of those corruptions pushed
	// beyond the ECC budget (two bit flips inside one SEC-DED
	// codeword), which the server must report as uncorrectable.
	OverBudgetRate float64
	// MaxFlips bounds the within-budget bit flips per corrupted
	// container; each lands in a distinct codeword (default 3).
	MaxFlips int
	// Method/Param is the ECC configuration requested on encodes.
	// The fault-injection accounting assumes SEC-DED over 64-bit
	// blocks (the default), whose data-verbatim layout makes
	// within/over-budget corruption constructible by position; other
	// configurations may only run with CorruptRate 0.
	Method ecc.Method
	Param  int
	// Seed makes runs reproducible (0 means 1).
	Seed int64
	// MaxPayload bounds frames on the client side (<= 0 means
	// DefaultMaxPayload).
	MaxPayload int
	// RangeRatio is the fraction of requests issued as READ_RANGE
	// calls against RangeArchive (0 disables; clamped to [0, 0.9] so
	// the encode/decode mix keeps running). Requires a server with an
	// archive root.
	RangeRatio float64
	// RangeArchive is the archive file name (within the server's root)
	// ranged reads address.
	RangeArchive string
	// RangePlain is the plaintext RangeArchive encodes — the ground
	// truth every ranged response is byte-compared against.
	RangePlain []byte
}

func (o WorkloadOptions) withDefaults() (WorkloadOptions, error) {
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Requests <= 0 {
		o.Requests = 50
	}
	if o.EncodeRatio <= 0 {
		o.EncodeRatio = 0.5
	}
	if o.EncodeRatio < 0.1 {
		o.EncodeRatio = 0.1
	}
	if o.EncodeRatio > 1 {
		o.EncodeRatio = 1
	}
	if o.MinSize <= 0 {
		o.MinSize = 64
	}
	if o.MaxSize <= 0 {
		o.MaxSize = 256 << 10
	}
	if o.MaxSize < o.MinSize {
		o.MaxSize = o.MinSize
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.4
	}
	if o.MaxFlips <= 0 {
		o.MaxFlips = 3
	}
	if o.Method == 0 {
		o.Method, o.Param = ecc.MethodSECDED, 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.CorruptRate > 0 && (o.Method != ecc.MethodSECDED || o.Param != 64) {
		return o, errors.New("service: fault injection requires the secded64 configuration (its layout makes error budgets constructible)")
	}
	if o.RangeRatio < 0 {
		o.RangeRatio = 0
	}
	if o.RangeRatio > 0.9 {
		o.RangeRatio = 0.9
	}
	if o.RangeRatio > 0 && (o.RangeArchive == "" || len(o.RangePlain) == 0) {
		return o, errors.New("service: the range workload requires RangeArchive and its RangePlain ground truth")
	}
	return o, nil
}

// WorkloadResult is an arcload run's summary: the op and corruption
// accounting, the integrity verdicts, and the client-side service
// levels. It is the JSON contract consumed by `benchmeta service`.
type WorkloadResult struct {
	Clients    int `json:"clients"`
	Requests   int `json:"requests"`
	Encodes    int `json:"encodes"`
	Decodes    int `json:"decodes"`
	Verifies   int `json:"verifies"`
	Repairs    int `json:"repairs"`
	RangeReads int `json:"range_reads"`
	// Errors counts unexpected failures: transport errors, protocol
	// violations, and any response that contradicts the ground truth.
	// A healthy run reports 0.
	Errors int `json:"errors"`

	// InjectedWithin / InjectedOver count corrupted containers sent,
	// by whether the damage fit the ECC budget. InjectedWithinBits is
	// the total bit flips across within-budget containers.
	InjectedWithin     int `json:"injected_within_budget"`
	InjectedWithinBits int `json:"injected_within_budget_bits"`
	InjectedOver       int `json:"injected_over_budget"`
	// RepairedWithin counts within-budget containers that decoded to
	// exactly the original bytes; CorrectedBits sums the server's
	// reported corrections on them. A healthy run has RepairedWithin
	// == InjectedWithin and CorrectedBits == InjectedWithinBits.
	RepairedWithin int `json:"repaired_within_budget"`
	CorrectedBits  int `json:"corrected_bits"`
	// RangeCorrectedBits sums the corrections READ_RANGE responses
	// reported — repairs the archive performed silently under reads.
	RangeCorrectedBits int `json:"range_corrected_bits"`
	// ReportedOver counts over-budget containers the server refused
	// as uncorrectable — the only acceptable outcome for them.
	ReportedOver int `json:"reported_over_budget"`
	// SilentMismatches counts decodes that returned OK with bytes
	// differing from the original — the catastrophic outcome the ECC
	// stack exists to prevent. Any value but 0 is a bug.
	SilentMismatches int `json:"silent_mismatches"`
	// UnrepairedWithin counts within-budget corruptions the server
	// failed to repair. Any value but 0 is a bug.
	UnrepairedWithin int `json:"unrepaired_within_budget"`

	BytesSent     int64   `json:"bytes_sent"`
	BytesReceived int64   `json:"bytes_received"`
	ElapsedMs     float64 `json:"elapsed_ms"`
	RequestsPerS  float64 `json:"requests_per_s"`
	// ThroughputMBs is payload traffic (both directions) over the
	// wall clock.
	ThroughputMBs float64 `json:"throughput_mb_s"`

	Latency metrics.HistogramSnapshot `json:"latency"`

	// ServerStats embeds the server's own STATS snapshot from the end
	// of the run, when fetching it succeeded.
	ServerStats json.RawMessage `json:"server_stats,omitempty"`
}

// clientTally accumulates one worker's counts, merged under the
// runner's lock after the worker exits.
type clientTally struct {
	result WorkloadResult
	err    error
}

// cachedItem pairs a container with the plaintext it protects — the
// ground truth a decode is byte-compared against.
type cachedItem struct {
	original  []byte
	container []byte
}

// RunWorkload drives one arcload campaign and blocks until every
// client finishes or ctx is cancelled (clients notice cancellation on
// their next request boundary; a non-nil ctx error is returned after
// the merge). Transport-level failures surface in the error; result
// integrity verdicts live in the WorkloadResult.
func RunWorkload(ctx context.Context, opts WorkloadOptions) (*WorkloadResult, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	var (
		mu      sync.Mutex
		merged  WorkloadResult
		firstEs error
	)
	lat := &metrics.Histogram{}
	start := time.Now()
	var wg sync.WaitGroup
	for cl := 0; cl < opts.Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			t := runClient(ctx, opts, cl, lat)
			mu.Lock()
			defer mu.Unlock()
			mergeResults(&merged, &t.result)
			if t.err != nil && firstEs == nil {
				firstEs = t.err
			}
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged.Clients = opts.Clients
	merged.ElapsedMs = float64(elapsed) / float64(time.Millisecond)
	if elapsed > 0 {
		merged.RequestsPerS = float64(merged.Requests) / elapsed.Seconds()
		merged.ThroughputMBs = float64(merged.BytesSent+merged.BytesReceived) / (1 << 20) / elapsed.Seconds()
	}
	merged.Latency = lat.Snapshot()

	if firstEs == nil {
		firstEs = fetchServerStats(ctx, opts, &merged)
	}
	if firstEs == nil {
		firstEs = ctx.Err()
	}
	return &merged, firstEs
}

// fetchServerStats grabs the server's STATS snapshot for the result.
func fetchServerStats(ctx context.Context, opts WorkloadOptions, res *WorkloadResult) error {
	c, err := Dial(ctx, opts.Addr, opts.MaxPayload)
	if err != nil {
		return fmt.Errorf("service: stats fetch: %w", err)
	}
	defer func() { _ = c.Close() }() // read side already done
	raw, err := c.Stats(ctx)
	if err != nil {
		return fmt.Errorf("service: stats fetch: %w", err)
	}
	res.ServerStats = raw
	return nil
}

func mergeResults(dst, src *WorkloadResult) {
	dst.Requests += src.Requests
	dst.Encodes += src.Encodes
	dst.Decodes += src.Decodes
	dst.Verifies += src.Verifies
	dst.Repairs += src.Repairs
	dst.RangeReads += src.RangeReads
	dst.Errors += src.Errors
	dst.InjectedWithin += src.InjectedWithin
	dst.InjectedWithinBits += src.InjectedWithinBits
	dst.InjectedOver += src.InjectedOver
	dst.RepairedWithin += src.RepairedWithin
	dst.CorrectedBits += src.CorrectedBits
	dst.RangeCorrectedBits += src.RangeCorrectedBits
	dst.ReportedOver += src.ReportedOver
	dst.SilentMismatches += src.SilentMismatches
	dst.UnrepairedWithin += src.UnrepairedWithin
	dst.BytesSent += src.BytesSent
	dst.BytesReceived += src.BytesReceived
}

// runClient is one worker: a dedicated connection issuing Requests
// requests with the configured mix.
func runClient(ctx context.Context, opts WorkloadOptions, id int, lat *metrics.Histogram) clientTally {
	var t clientTally
	rng := rand.New(rand.NewSource(opts.Seed + int64(id)*7919))
	zipf := rand.NewZipf(rng, opts.ZipfS, 1, uint64(opts.MaxSize-opts.MinSize))

	c, err := Dial(ctx, opts.Addr, opts.MaxPayload)
	if err != nil {
		t.err = fmt.Errorf("service: client %d dial: %w", id, err)
		return t
	}
	defer func() { _ = c.Close() }() // the tally already has any real error

	// cache holds recent encodes for the decode side of the mix.
	var cache []cachedItem
	for i := 0; i < opts.Requests; i++ {
		if ctx.Err() != nil {
			return t
		}
		if opts.RangeRatio > 0 && rng.Float64() < opts.RangeRatio {
			if err := clientRangeRead(ctx, c, opts, rng, lat, &t); err != nil {
				t.err = fmt.Errorf("service: client %d: %w", id, err)
				return t
			}
			continue
		}
		if len(cache) == 0 || rng.Float64() < opts.EncodeRatio {
			item, err := clientEncode(ctx, c, opts, rng, zipf, lat, &t)
			if err != nil {
				t.err = fmt.Errorf("service: client %d: %w", id, err)
				return t
			}
			if len(cache) < 32 {
				cache = append(cache, item)
			} else {
				cache[rng.Intn(len(cache))] = item
			}
			continue
		}
		item := cache[rng.Intn(len(cache))]
		if err := clientDecodeSide(ctx, c, opts, rng, item, lat, &t); err != nil {
			t.err = fmt.Errorf("service: client %d: %w", id, err)
			return t
		}
	}
	return t
}

// clientEncode issues one ENCODE and caches the round trip's ground
// truth after sanity-decoding the container locally is skipped — the
// decode side of the mix does that through the server.
func clientEncode(ctx context.Context, c *Client, opts WorkloadOptions, rng *rand.Rand, zipf *rand.Zipf, lat *metrics.Histogram, t *clientTally) (cachedItem, error) {
	size := opts.MinSize + int(zipf.Uint64())
	data := make([]byte, size)
	rng.Read(data)

	start := time.Now()
	container, err := c.Encode(ctx, opts.Method, opts.Param, data)
	lat.Observe(time.Since(start))
	t.result.Requests++
	t.result.Encodes++
	t.result.BytesSent += int64(size)
	if err != nil {
		t.result.Errors++
		return cachedItem{}, fmt.Errorf("encode (%d bytes): %w", size, err)
	}
	t.result.BytesReceived += int64(len(container))
	return cachedItem{original: data, container: container}, nil
}

// clientRangeRead issues one READ_RANGE against the configured
// archive and byte-compares the response with the plaintext ground
// truth — a mismatch is the same silent-wrongness verdict a bad
// decode earns.
func clientRangeRead(ctx context.Context, c *Client, opts WorkloadOptions, rng *rand.Rand, lat *metrics.Histogram, t *clientTally) error {
	size := int64(len(opts.RangePlain))
	first := rng.Int63n(size)
	maxN := size - first
	if maxN > 64<<10 {
		maxN = 64 << 10
	}
	n := 1 + rng.Int63n(maxN)

	start := time.Now()
	data, rep, err := c.ReadRange(ctx, opts.RangeArchive, first, n)
	lat.Observe(time.Since(start))
	t.result.Requests++
	t.result.RangeReads++
	t.result.RangeCorrectedBits += rep.CorrectedBits
	t.result.BytesSent += rangeReqHeaderLen + int64(len(opts.RangeArchive))
	if err != nil {
		t.result.Errors++
		if transportError(err) {
			return fmt.Errorf("read-range [%d, +%d): %w", first, n, err)
		}
		return nil
	}
	t.result.BytesReceived += int64(len(data))
	if !bytes.Equal(data, opts.RangePlain[first:first+n]) {
		t.result.SilentMismatches++
		t.result.Errors++
	}
	return nil
}

// clientDecodeSide issues one decode-shaped request (DECODE, VERIFY,
// or REPAIR), optionally corrupting the container first, and verdicts
// the response against the ground truth.
func clientDecodeSide(ctx context.Context, c *Client, opts WorkloadOptions, rng *rand.Rand, item cachedItem, lat *metrics.Histogram, t *clientTally) error {
	container := item.container
	kind := corruptNone
	flips := 0
	if opts.CorruptRate > 0 && rng.Float64() < opts.CorruptRate {
		mut := append([]byte(nil), container...)
		if rng.Float64() < opts.OverBudgetRate {
			if corruptOverBudget(mut, len(item.original), rng) {
				kind = corruptOver
			}
		} else {
			flips = corruptWithinBudget(mut, len(item.original), rng, opts.MaxFlips)
			if flips > 0 {
				kind = corruptWithin
				t.result.InjectedWithin++
				t.result.InjectedWithinBits += flips
			}
		}
		container = mut
	}

	// Rotate through the three decode-shaped ops; REPAIR and VERIFY
	// each take a slice of the traffic so every server path sees load.
	op := OpDecode
	switch r := rng.Float64(); {
	case r < 0.15:
		op = OpVerify
	case r < 0.3:
		op = OpRepair
	}
	if kind == corruptOver {
		// VERIFY has no data to compare; the uncorrectable verdict is
		// still exercised. REPAIR and DECODE behave identically here.
		op = OpDecode
	}

	start := time.Now()
	var (
		data []byte
		rep  Report
		err  error
	)
	switch op {
	case OpVerify:
		rep, err = c.Verify(ctx, container)
		t.result.Verifies++
	case OpRepair:
		var fresh []byte
		fresh, rep, err = c.Repair(ctx, container)
		t.result.Repairs++
		if err == nil {
			// A repaired container must decode (locally — the ground
			// truth check must not trust the server twice) to the
			// original bytes.
			res, derr := core.DecodeContainer(fresh, 1)
			if derr != nil || !bytes.Equal(res.Data, item.original) {
				t.result.SilentMismatches++
			}
			data = item.original // comparison already done
		}
	default:
		data, rep, err = c.Decode(ctx, container)
		t.result.Decodes++
	}
	lat.Observe(time.Since(start))
	t.result.Requests++
	t.result.BytesSent += int64(len(container))
	t.result.BytesReceived += int64(len(data))

	switch kind {
	case corruptNone, corruptWithin:
		if err != nil {
			t.result.Errors++
			if kind == corruptWithin {
				t.result.UnrepairedWithin++
			}
			if transportError(err) {
				return fmt.Errorf("%s: %w", op, err)
			}
			return nil
		}
		if op != OpVerify && op != OpRepair && !bytes.Equal(data, item.original) {
			t.result.SilentMismatches++
			t.result.Errors++
			return nil
		}
		if kind == corruptWithin {
			t.result.RepairedWithin++
			t.result.CorrectedBits += rep.CorrectedBits
		}
	case corruptOver:
		t.result.InjectedOver++
		switch {
		case err == nil:
			// The server claims success on damage beyond the budget:
			// either it miscorrected (bytes differ — silent wrongness)
			// or the "over-budget" construction failed. Both are
			// integrity bugs worth failing the run over.
			t.result.Errors++
			if !bytes.Equal(data, item.original) {
				t.result.SilentMismatches++
			}
		case IsUncorrectable(err):
			t.result.ReportedOver++
		default:
			t.result.Errors++
			if transportError(err) {
				return fmt.Errorf("%s: %w", op, err)
			}
		}
	}
	return nil
}

// transportError distinguishes connection-level failures (fatal for
// the client loop) from per-request server verdicts.
func transportError(err error) bool {
	var re *RemoteErr
	return !errors.As(err, &re)
}

type corruptKind int

const (
	corruptNone corruptKind = iota
	corruptWithin
	corruptOver
)

// secded64 layout facts the injectors rely on (see
// internal/ecc/hamming: "the data verbatim, followed by the per-block
// check bits"): byte i of the original data lives at container offset
// ContainerOverheadBytes+i, and bits of data block b are the 64 bits
// at offsets [8b, 8b+8) of that region. Flips in distinct blocks are
// independently correctable; two flips in one block are detectable
// but beyond the correction budget.

// corruptWithinBudget flips up to maxFlips bits, each in a distinct
// SEC-DED data block, and returns how many bits it flipped (0 when
// the payload is too small to corrupt safely).
func corruptWithinBudget(container []byte, origLen int, rng *rand.Rand, maxFlips int) int {
	if origLen == 0 {
		return 0
	}
	blocks := (origLen + 7) / 8
	n := 1 + rng.Intn(maxFlips)
	if n > blocks {
		n = blocks
	}
	flipped := 0
	for _, b := range rng.Perm(blocks)[:n] {
		lo := b * 8
		hi := min(lo+8, origLen)
		bit := lo*8 + rng.Intn((hi-lo)*8)
		faultinject.FlipBitInPlace(container[core.ContainerOverheadBytes:], bit)
		flipped++
	}
	return flipped
}

// corruptOverBudget flips two distinct bits inside one SEC-DED data
// block — a double error the code must detect but cannot correct.
// Returns false when the payload has no full byte to corrupt.
func corruptOverBudget(container []byte, origLen int, rng *rand.Rand) bool {
	if origLen < 1 {
		return false
	}
	blocks := (origLen + 7) / 8
	b := rng.Intn(blocks)
	lo := b * 8
	hi := min(lo+8, origLen)
	width := (hi - lo) * 8
	if width < 2 {
		return false
	}
	first := rng.Intn(width)
	second := rng.Intn(width - 1)
	if second >= first {
		second++
	}
	payload := container[core.ContainerOverheadBytes:]
	faultinject.FlipBitInPlace(payload, lo*8+first)
	faultinject.FlipBitInPlace(payload, lo*8+second)
	return true
}
