// Package service implements arcd, the ARC archive service: a
// concurrent TCP daemon that encodes, decodes, verifies, and repairs
// ARC containers for many clients over a small length-prefixed framed
// protocol, plus the client and workload-generation sides used by
// cmd/arcload and the fault-injection-under-load test suite.
//
// See docs/SERVICE.md for the frame format, the backpressure and
// worker-budget model, and the shutdown semantics.
package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/ecc"
)

// Frame layout (all integers big-endian):
//
//	offset size field
//	0      2    magic 0x41 0xF7
//	2      1    version (1)
//	3      1    op
//	4      1    status (0 in requests)
//	5      3    reserved, must be zero
//	8      4    payload length
//	12     n    payload
//
// The frame header carries no checksum on purpose: TCP already
// guards the wire, and the payloads that matter — ARC containers —
// carry their own voted, CRC-guarded headers and ECC. The framing's
// job is delimitation and dispatch, not integrity.
const (
	frameMagic0 = 0x41
	frameMagic1 = 0xF7
	frameVer    = 1

	// FrameHeaderLen is the fixed frame header size in bytes.
	FrameHeaderLen = 12

	// DefaultMaxPayload bounds a frame payload unless the server or
	// client is configured otherwise.
	DefaultMaxPayload = 32 << 20
)

// Op identifies a request (and its response: responses echo the op).
type Op uint8

// The six operations of the protocol.
const (
	OpEncode Op = 1 + iota
	OpDecode
	OpVerify
	OpRepair
	OpStats
	OpReadRange
	opMax = OpReadRange
)

var opNames = [...]string{"invalid", "encode", "decode", "verify", "repair", "stats", "read-range"}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// OpNames lists the operation names in op order, for metrics labels
// (index 0 is the out-of-range slot).
func OpNames() []string { return append([]string(nil), opNames[1:]...) }

// Status classifies a response. Requests always carry StatusRequest.
type Status uint8

// Response statuses.
const (
	StatusRequest Status = iota // a request frame
	StatusOK
	// StatusUncorrectable: damage was detected beyond the ECC budget.
	// The payload is a human-readable report — never partial data, so
	// over-budget corruption is loud, not silent.
	StatusUncorrectable
	// StatusBadRequest: the payload was not a parseable container or
	// carried an invalid configuration.
	StatusBadRequest
	// StatusOversized: the request payload exceeded the server's
	// frame budget. The connection closes after this response.
	StatusOversized
	// StatusInternal: the server failed for reasons not attributable
	// to the request.
	StatusInternal
	statusMax = StatusInternal
)

var statusNames = [...]string{"request", "ok", "uncorrectable", "bad-request", "oversized", "internal"}

// String implements fmt.Stringer.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Frame is one protocol frame.
type Frame struct {
	Op      Op
	Status  Status
	Payload []byte
}

// Framing errors. ReadFrame wraps each in enough context to log;
// test with errors.Is.
var (
	ErrBadFrame      = errors.New("service: malformed frame")
	ErrFrameTooLarge = errors.New("service: frame payload exceeds limit")
)

// AppendFrame appends f's wire encoding to dst and returns the
// extended slice. It never fails: lengths above MaxUint32 cannot be
// constructed through the exported API (ReadFrame would refuse them
// anyway).
func AppendFrame(dst []byte, f Frame) []byte {
	var h [FrameHeaderLen]byte
	h[0], h[1], h[2] = frameMagic0, frameMagic1, frameVer
	h[3] = byte(f.Op)
	h[4] = byte(f.Status)
	binary.BigEndian.PutUint32(h[8:], uint32(len(f.Payload)))
	dst = append(dst, h[:]...)
	return append(dst, f.Payload...)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	var h [FrameHeaderLen]byte
	h[0], h[1], h[2] = frameMagic0, frameMagic1, frameVer
	h[3] = byte(f.Op)
	h[4] = byte(f.Status)
	binary.BigEndian.PutUint32(h[8:], uint32(len(f.Payload)))
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	if len(f.Payload) == 0 {
		return nil
	}
	_, err := w.Write(f.Payload)
	return err
}

// directPayloadCap is the largest payload ReadFrame allocates up
// front. Larger payloads grow geometrically as bytes actually arrive,
// so a forged length prefix costs an attacker bandwidth, not server
// memory — the wire-side extension of the decoder-hardening contract
// (docs/DECODER_HARDENING.md).
const directPayloadCap = 64 << 10

// ReadFrame reads one frame from r. limit bounds the accepted payload
// length (<= 0 selects DefaultMaxPayload); longer frames fail with
// ErrFrameTooLarge before any payload allocation. scratch, when
// non-nil, is reused as the payload buffer if it has capacity — the
// returned Frame aliases it. A truncated header or payload fails with
// io.EOF or io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, limit int, scratch []byte) (Frame, error) {
	if limit <= 0 {
		limit = DefaultMaxPayload
	}
	var h [FrameHeaderLen]byte
	// ReadFull keeps a clean EOF between frames as io.EOF and turns a
	// partial header into io.ErrUnexpectedEOF.
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return Frame{}, err
	}
	if h[0] != frameMagic0 || h[1] != frameMagic1 {
		return Frame{}, fmt.Errorf("%w: bad magic %#02x%02x", ErrBadFrame, h[0], h[1])
	}
	if h[2] != frameVer {
		return Frame{}, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, h[2])
	}
	op, status := Op(h[3]), Status(h[4])
	if op < OpEncode || op > opMax {
		return Frame{}, fmt.Errorf("%w: unknown op %d", ErrBadFrame, h[3])
	}
	if status > statusMax {
		return Frame{}, fmt.Errorf("%w: unknown status %d", ErrBadFrame, h[4])
	}
	if h[5] != 0 || h[6] != 0 || h[7] != 0 {
		return Frame{}, fmt.Errorf("%w: nonzero reserved bytes", ErrBadFrame)
	}
	n64 := binary.BigEndian.Uint32(h[8:])
	if int64(n64) > int64(limit) {
		// The op and status still come back with the error so a server
		// can address its refusal to the right request.
		return Frame{Op: op, Status: status}, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, n64, limit)
	}
	n := int(n64)
	f := Frame{Op: op, Status: status}
	if n == 0 {
		return f, nil
	}
	buf, err := readPayload(r, scratch, n)
	if err != nil {
		return Frame{}, err
	}
	f.Payload = buf
	return f, nil
}

// readPayload reads exactly n bytes, reusing dst's storage when it
// suffices and otherwise growing geometrically from directPayloadCap
// as data arrives (see directPayloadCap).
func readPayload(r io.Reader, dst []byte, n int) ([]byte, error) {
	if n <= directPayloadCap || cap(dst) >= n {
		buf := growTo(dst, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fullErr(err)
		}
		return buf, nil
	}
	buf := growTo(dst, directPayloadCap)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fullErr(err)
	}
	for len(buf) < n {
		grown := make([]byte, min(len(buf)*2, n))
		copy(grown, buf)
		if _, err := io.ReadFull(r, grown[len(buf):]); err != nil {
			return nil, fullErr(err)
		}
		buf = grown
	}
	return buf, nil
}

// fullErr normalizes a short payload read to io.ErrUnexpectedEOF: a
// clean EOF mid-payload is still a truncated frame.
func fullErr(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// growTo returns a length-n slice sharing dst's storage when possible.
func growTo(dst []byte, n int) []byte {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]byte, n)
}

// Encode requests prefix the data with the requested configuration:
//
//	offset size field
//	0      1    ecc method (0 = server default)
//	1      2    method parameter
//	3      n    data to protect
const encodeReqHeaderLen = 3

// AppendEncodeRequest appends an OpEncode request payload: the
// method/param prefix followed by data. Method 0 asks the server to
// use its configured default.
func AppendEncodeRequest(dst []byte, method ecc.Method, param int, data []byte) []byte {
	var h [encodeReqHeaderLen]byte
	h[0] = byte(method)
	binary.BigEndian.PutUint16(h[1:], uint16(param))
	dst = append(dst, h[:]...)
	return append(dst, data...)
}

// ParseEncodeRequest splits an OpEncode payload. The returned data
// aliases payload.
func ParseEncodeRequest(payload []byte) (method ecc.Method, param int, data []byte, err error) {
	if len(payload) < encodeReqHeaderLen {
		return 0, 0, nil, fmt.Errorf("%w: encode request shorter than its header", ErrBadFrame)
	}
	return ecc.Method(payload[0]), int(binary.BigEndian.Uint16(payload[1:])), payload[encodeReqHeaderLen:], nil
}

// Read-range requests name an archive in the server's root and an
// original-byte window to decode:
//
//	offset size field
//	0      8    first original byte (big-endian)
//	8      8    byte count
//	16     n    archive name (bare file name, no separators)
const rangeReqHeaderLen = 16

// AppendReadRangeRequest appends an OpReadRange request payload. The
// response carries a Report followed by the decoded bytes — possibly
// fewer than n when the range extends past the archive's end.
func AppendReadRangeRequest(dst []byte, name string, first, n int64) []byte {
	var h [rangeReqHeaderLen]byte
	binary.BigEndian.PutUint64(h[0:], uint64(first))
	binary.BigEndian.PutUint64(h[8:], uint64(n))
	dst = append(dst, h[:]...)
	return append(dst, name...)
}

// ParseReadRangeRequest splits an OpReadRange payload.
func ParseReadRangeRequest(payload []byte) (name string, first, n int64, err error) {
	if len(payload) < rangeReqHeaderLen {
		return "", 0, 0, fmt.Errorf("%w: read-range request shorter than its header", ErrBadFrame)
	}
	first = int64(binary.BigEndian.Uint64(payload[0:]))
	n = int64(binary.BigEndian.Uint64(payload[8:]))
	if first < 0 || n < 0 {
		return "", 0, 0, fmt.Errorf("%w: negative read-range window", ErrBadFrame)
	}
	name = string(payload[rangeReqHeaderLen:])
	if name == "" {
		return "", 0, 0, fmt.Errorf("%w: read-range request names no archive", ErrBadFrame)
	}
	return name, first, n, nil
}

// Report is the repair accounting a DECODE, VERIFY, REPAIR, or
// READ_RANGE response carries ahead of its data: how much damage the
// container showed and how much was corrected.
type Report struct {
	DetectedBlocks  int
	CorrectedBits   int
	CorrectedBlocks int
}

// reportLen is the wire size of a Report.
const reportLen = 12

// AppendReport appends r's wire encoding.
func AppendReport(dst []byte, r Report) []byte {
	var b [reportLen]byte
	binary.BigEndian.PutUint32(b[0:], uint32(r.DetectedBlocks))
	binary.BigEndian.PutUint32(b[4:], uint32(r.CorrectedBits))
	binary.BigEndian.PutUint32(b[8:], uint32(r.CorrectedBlocks))
	return append(dst, b[:]...)
}

// ParseReport splits a response payload into its leading Report and
// the remaining data (which aliases payload).
func ParseReport(payload []byte) (Report, []byte, error) {
	if len(payload) < reportLen {
		return Report{}, nil, fmt.Errorf("%w: response shorter than its report", ErrBadFrame)
	}
	r := Report{
		DetectedBlocks:  int(binary.BigEndian.Uint32(payload[0:])),
		CorrectedBits:   int(binary.BigEndian.Uint32(payload[4:])),
		CorrectedBlocks: int(binary.BigEndian.Uint32(payload[8:])),
	}
	return r, payload[reportLen:], nil
}
