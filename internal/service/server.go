package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/metrics"
	"repro/internal/parallel"
)

// Config parameterizes a Server. The zero value is usable: every
// field has a conservative default.
type Config struct {
	// Workers is the shared worker budget: at most this many requests
	// are encoded/decoded at once across all connections (<= 0 means
	// GOMAXPROCS). Per-connection pipelines borrow slots from this
	// budget, so one greedy client cannot monopolize the CPUs.
	Workers int
	// Window bounds the in-flight requests per connection (<= 0 means
	// 8). A full window stops the connection's frame reader, which
	// backpressures the client through TCP.
	Window int
	// MaxPayload bounds a request frame's payload (<= 0 means
	// DefaultMaxPayload). Oversized frames get StatusOversized and
	// the connection closes.
	MaxPayload int
	// Threads is the per-request codec parallelism (<= 0 means 1 —
	// service concurrency comes from many requests, not from
	// splitting one).
	Threads int
	// Default is the encode configuration used when a request carries
	// method 0. The zero value selects SEC-DED over 64-bit blocks.
	Default core.Config
	// Root, when non-empty, is the directory whose ARC archives
	// READ_RANGE requests may address by bare file name. Empty
	// disables the operation.
	Root string
	// CacheBytes is the decoded-chunk cache budget shared by every
	// archive opened for READ_RANGE (<= 0 selects the cache default).
	CacheBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = DefaultMaxPayload
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Default.Method == 0 {
		c.Default = core.Config{Method: ecc.MethodSECDED, Param: 64}
	}
	return c
}

// perConnWorkers bounds one connection's pipeline workers. The shared
// budget is the real concurrency cap; this only bounds the goroutines
// parked per connection.
func (c Config) perConnWorkers() int {
	return min(4, c.Workers)
}

// Server is the arcd archive service: a TCP listener whose
// connections speak the framed protocol of this package. Each
// connection runs a bounded, order-preserving request pipeline
// (parallel.Pipe) whose workers draw from a server-wide budget;
// Shutdown drains in-flight requests before closing. Construct with
// New, start with Serve or Listen, observe with Stats.
type Server struct {
	cfg   Config
	stats *metrics.Live

	// budget holds the shared worker slots. Request processing —
	// never frame I/O — holds a slot, so a stalled client costs no
	// budget.
	budget chan struct{}
	// quit is closed exactly once, by Close or Shutdown: it stops the
	// accept loop and tells every connection to finish what it has
	// read and stop reading more.
	quit     chan struct{}
	quitOnce sync.Once

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup // accept loop + one handler per connection

	// READ_RANGE state (cache is nil when no Root is configured).
	// Archives open lazily on first request and stay open — with their
	// decoded chunks cached under a per-archive key — until the server
	// stops.
	cache    *cache.Cache
	archMu   sync.Mutex
	archives map[string]*archive
	archSeq  atomic.Uint64 // cache-key allocator
	archOnce sync.Once     // guards closeArchives
}

// archive is one lazily opened ARC file served by READ_RANGE.
type archive struct {
	f  *os.File
	rr *core.RangeReader
}

// New creates an unstarted server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		stats:  metrics.NewLive(OpNames()...),
		budget: make(chan struct{}, cfg.Workers),
		quit:   make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	if cfg.Root != "" {
		s.cache = cache.New(cfg.CacheBytes)
		s.archives = make(map[string]*archive)
		s.stats.SetCacheSource(s.cache.Stats)
	}
	return s
}

// ErrServerClosed reports Serve/Listen on a server that was shut down.
var ErrServerClosed = errors.New("service: server closed")

// Listen binds addr (e.g. "127.0.0.1:0") and starts serving in the
// background. The bound address is returned so callers can dial
// ephemeral ports.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := s.Serve(ln); err != nil {
		_ = ln.Close() // the Serve error is the one worth reporting
		return nil, err
	}
	return ln.Addr(), nil
}

// Serve adopts ln and starts the accept loop in the background. It
// returns immediately; use Shutdown or Close to stop.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return errors.New("service: Serve called twice")
	}
	select {
	case <-s.quit:
		return ErrServerClosed
	default:
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the listener's address (nil before Serve/Listen).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Stats snapshots the live counters.
func (s *Server) Stats() metrics.LiveSnapshot { return s.stats.Snapshot() }

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept failure (EMFILE and friends): back off
			// briefly instead of spinning.
			time.Sleep(5 * time.Millisecond)
			continue
		}
		s.mu.Lock()
		select {
		case <-s.quit:
			// Shutdown won the race: it will not see this connection,
			// so refuse it here.
			s.mu.Unlock()
			_ = conn.Close() // refused during shutdown; nothing to report
			continue
		default:
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.stats.ConnOpened()
		go s.handleConn(conn)
	}
}

// request is one framed request in flight through a connection's
// pipeline. oversized marks a frame refused by the reader before its
// payload was consumed; it flows through the pipeline so the refusal
// reaches the client in submission order.
type request struct {
	op        Op
	payload   []byte
	oversized bool
	start     time.Time
}

// response is the processed result, ready to frame.
type response struct {
	op      Op
	status  Status
	payload []byte
	in      int // request payload bytes, for the byte counters
	start   time.Time
}

// handleConn runs one connection: this goroutine reads frames and
// submits them to a pipeline (the producer); a second goroutine
// writes responses in order (the consumer); pipeline workers process
// requests under the shared budget. The pipeline window bounds
// in-flight requests, so a slow or absent reader on the client side
// backpressures all the way to the socket.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.stats.ConnClosed()
	defer s.forgetConn(conn)

	pipe := parallel.NewPipe(s.cfg.perConnWorkers(), s.cfg.Window, func(req request) (response, error) {
		return s.process(req), nil
	})

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		if err := s.writeResponses(conn, pipe); err != nil {
			// The client is gone (or wedged a protocol violation):
			// abort so a producer blocked in Submit on a full window
			// unblocks — otherwise a half-closed client that keeps
			// sending would strand this connection forever.
			pipe.Abort()
		}
	}()

	s.readRequests(conn, pipe)

	// Producer side done: no more submissions. Close lets the writer
	// drain every in-flight request, then join the workers. If the
	// writer bailed early, drain its leftovers here so pipeline
	// workers never block on an unread result.
	pipe.Close()
	<-writerDone
	for {
		if _, ok, _ := pipe.Next(); !ok {
			break
		}
	}
	pipe.Wait()
}

// forgetConn removes conn from the tracked set and closes it.
func (s *Server) forgetConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	_ = conn.Close() // best-effort: Close/Shutdown may have closed it already
}

// readRequests is the connection's producer loop: it reads frames
// until the client stops, a frame is unusable, or the server drains.
// Protocol errors that still leave the stream framed (oversized
// payload) produce an error response through the pipeline so ordering
// holds, then end the loop; unframeable input just ends the loop.
func (s *Server) readRequests(conn net.Conn, pipe *parallel.Pipe[request, response]) {
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		// No scratch reuse here: each payload is handed to a pipeline
		// worker and must survive until it runs.
		f, err := ReadFrame(conn, s.cfg.MaxPayload, nil)
		if err != nil {
			switch {
			case errors.Is(err, io.EOF):
				// Clean disconnect between frames.
			case isDrainTimeout(err, s.quit):
				// Shutdown unblocked this read via the deadline; the
				// requests already submitted still drain.
			case errors.Is(err, ErrFrameTooLarge):
				// The op survives the refusal, so the client hears
				// which request was too big — in order, through the
				// pipeline like any other response.
				s.stats.FrameError()
				_ = pipe.Submit(request{op: f.Op, oversized: true, start: time.Now()}) // aborted pipe: teardown below
			default:
				// Malformed or truncated frame: the stream cannot be
				// re-synchronized, so drop the connection.
				s.stats.FrameError()
			}
			return
		}
		if f.Status != StatusRequest {
			s.stats.FrameError()
			return
		}
		if err := pipe.Submit(request{op: f.Op, payload: f.Payload, start: time.Now()}); err != nil {
			return
		}
	}
}

// isDrainTimeout reports whether err is the read-deadline timeout
// Shutdown injects to unblock producer loops, as opposed to a
// genuine network timeout.
func isDrainTimeout(err error, quit chan struct{}) bool {
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		return false
	}
	select {
	case <-quit:
		return true
	default:
		return false
	}
}

// writeResponses is the connection's consumer loop: it frames results
// in submission order. A write error (client gone) stops the loop;
// the handler then aborts and drains the pipeline.
func (s *Server) writeResponses(conn net.Conn, pipe *parallel.Pipe[request, response]) error {
	var buf []byte
	for {
		resp, ok, err := pipe.Next()
		if !ok || err != nil {
			return err
		}
		buf = AppendFrame(buf[:0], Frame{Op: resp.op, Status: resp.status, Payload: resp.payload})
		if _, err := conn.Write(buf); err != nil {
			return err
		}
		failed := resp.status != StatusOK
		s.stats.RequestDone(int(resp.op)-1, failed, resp.in, len(resp.payload), time.Since(resp.start))
		if resp.status == StatusOversized {
			// The request that provoked this was never fully read;
			// the stream is done.
			return errors.New("service: oversized request")
		}
	}
}

// process executes one request under the shared worker budget. It
// never returns an error through the pipeline — failures become error
// responses so the connection (and request ordering) survive them.
func (s *Server) process(req request) response {
	// Acquire a budget slot. In-flight requests always finish —
	// shutdown drains, never cancels — so this send is bounded by the
	// other requests' processing time.
	s.budget <- struct{}{}
	defer func() { <-s.budget }()

	resp := response{op: req.op, in: len(req.payload), start: req.start}
	if req.oversized {
		resp.status = StatusOversized
		resp.payload = []byte("request payload exceeds the server's frame budget")
		return resp
	}
	switch req.op {
	case OpEncode:
		s.processEncode(req, &resp)
	case OpDecode:
		s.processDecode(req, &resp, true)
	case OpVerify:
		s.processDecode(req, &resp, false)
	case OpRepair:
		s.processRepair(req, &resp)
	case OpStats:
		b, err := json.Marshal(s.stats.Snapshot())
		if err != nil {
			resp.status = StatusInternal
			resp.payload = []byte(err.Error())
			return resp
		}
		resp.status = StatusOK
		resp.payload = b
	case OpReadRange:
		s.processReadRange(req, &resp)
	}
	return resp
}

// validArchiveName rejects anything but a bare file name: READ_RANGE
// must never address outside the configured root.
func validArchiveName(name string) error {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\\x00") {
		return fmt.Errorf("service: invalid archive name %q", name)
	}
	return nil
}

// archive returns the open reader for name, opening it on first use.
// File and index I/O run outside archMu so a slow open never blocks
// requests for already-open archives; a racing duplicate open loses
// the insert and closes its handles.
func (s *Server) archive(name string) (*archive, error) {
	if err := validArchiveName(name); err != nil {
		return nil, err
	}
	s.archMu.Lock()
	a, ok := s.archives[name]
	s.archMu.Unlock()
	if ok {
		return a, nil
	}
	f, err := os.Open(filepath.Join(s.cfg.Root, name))
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		_ = f.Close() // error path: the stat error wins
		return nil, err
	}
	rr, err := core.OpenRangeReader(f, fi.Size(), core.RangeOptions{
		Workers:  s.cfg.Threads,
		Pipeline: s.cfg.perConnWorkers(),
		Cache:    s.cache,
		CacheKey: s.archSeq.Add(1),
	})
	if err != nil {
		_ = f.Close() // error path: the open error wins
		return nil, err
	}
	a = &archive{f: f, rr: rr}
	s.archMu.Lock()
	if ex, ok := s.archives[name]; ok {
		s.archMu.Unlock()
		_ = rr.Close() // lost the race; shared cache unaffected
		_ = f.Close()
		return ex, nil
	}
	s.archives[name] = a
	s.archMu.Unlock()
	return a, nil
}

// processReadRange decodes (and repairs) one byte range of a root
// archive. The response is a Report followed by the decoded bytes —
// fewer than requested when the range runs past the archive's end.
func (s *Server) processReadRange(req request, resp *response) {
	if s.cache == nil {
		resp.status = StatusBadRequest
		resp.payload = []byte("server has no archive root configured")
		return
	}
	name, first, n, err := ParseReadRangeRequest(req.payload)
	if err != nil {
		resp.status = StatusBadRequest
		resp.payload = []byte(err.Error())
		return
	}
	if n > int64(s.cfg.MaxPayload-reportLen) {
		resp.status = StatusBadRequest
		resp.payload = []byte(fmt.Sprintf("range of %d bytes exceeds the response frame budget (%d)", n, s.cfg.MaxPayload-reportLen))
		return
	}
	a, err := s.archive(name)
	if err != nil {
		resp.status = StatusBadRequest
		resp.payload = []byte(err.Error())
		return
	}
	dst := make([]byte, n)
	got, rep, err := a.rr.ReadRange(dst, first, n)
	if rep.Chunks > 0 || err != nil {
		s.stats.RepairObserved(rep.DetectedBlocks, rep.CorrectedBits, rep.CorrectedBlocks,
			err != nil && !errors.Is(err, io.EOF))
	}
	if err != nil && !errors.Is(err, io.EOF) {
		resp.status, resp.payload = decodeFailure(err)
		return
	}
	resp.status = StatusOK
	out := AppendReport(nil, Report{
		DetectedBlocks:  rep.DetectedBlocks,
		CorrectedBits:   rep.CorrectedBits,
		CorrectedBlocks: rep.CorrectedBlocks,
	})
	resp.payload = append(out, dst[:got]...)
}

// chooseConfig resolves a request's method/param prefix, falling back
// to the server default for method 0.
func (s *Server) chooseConfig(method ecc.Method, param int) core.Config {
	if method == 0 {
		return s.cfg.Default
	}
	return core.Config{Method: method, Param: param}
}

func (s *Server) processEncode(req request, resp *response) {
	method, param, data, err := ParseEncodeRequest(req.payload)
	if err != nil {
		resp.status = StatusBadRequest
		resp.payload = []byte(err.Error())
		return
	}
	cfg := s.chooseConfig(method, param)
	res, err := core.EncodeContainerWith(data, core.Choice{Config: cfg, Threads: s.cfg.Threads})
	if err != nil {
		resp.status = StatusBadRequest
		resp.payload = []byte(err.Error())
		return
	}
	resp.status = StatusOK
	resp.payload = res.Encoded
}

// processDecode handles OpDecode (withData true: report + original
// bytes) and OpVerify (report only).
func (s *Server) processDecode(req request, resp *response, withData bool) {
	res, err := core.DecodeContainer(req.payload, s.cfg.Threads)
	if res != nil {
		rep := res.Report
		s.stats.RepairObserved(rep.DetectedBlocks, rep.CorrectedBits, rep.CorrectedBlocks, err != nil)
	}
	if err != nil {
		resp.status, resp.payload = decodeFailure(err)
		return
	}
	resp.status = StatusOK
	out := AppendReport(nil, Report{
		DetectedBlocks:  res.Report.DetectedBlocks,
		CorrectedBits:   res.Report.CorrectedBits,
		CorrectedBlocks: res.Report.CorrectedBlocks,
	})
	if withData {
		out = append(out, res.Data...)
	}
	resp.payload = out
}

// processRepair decodes, then re-encodes the recovered bytes with the
// container's own configuration: the response is a fresh container
// with every correction folded in and full ECC budget restored.
func (s *Server) processRepair(req request, resp *response) {
	res, err := core.DecodeContainer(req.payload, s.cfg.Threads)
	if res != nil {
		rep := res.Report
		s.stats.RepairObserved(rep.DetectedBlocks, rep.CorrectedBits, rep.CorrectedBlocks, err != nil)
	}
	if err != nil {
		resp.status, resp.payload = decodeFailure(err)
		return
	}
	enc, err := core.EncodeContainerWith(res.Data, core.Choice{Config: res.Config, Threads: s.cfg.Threads})
	if err != nil {
		resp.status = StatusInternal
		resp.payload = []byte(err.Error())
		return
	}
	resp.status = StatusOK
	out := AppendReport(nil, Report{
		DetectedBlocks:  res.Report.DetectedBlocks,
		CorrectedBits:   res.Report.CorrectedBits,
		CorrectedBlocks: res.Report.CorrectedBlocks,
	})
	resp.payload = append(out, enc.Encoded...)
}

// decodeFailure maps a container decode error to a response status:
// detected-but-uncorrectable damage is reported as such (never as
// data), anything else as a bad request.
func decodeFailure(err error) (Status, []byte) {
	if errors.Is(err, ecc.ErrUncorrectable) {
		return StatusUncorrectable, []byte(err.Error())
	}
	return StatusBadRequest, []byte(err.Error())
}

// Shutdown gracefully stops the server: it closes the listener,
// unblocks every connection's reader, lets in-flight requests finish
// and their responses flush, then closes the connections. If ctx
// expires first, remaining connections are severed and Shutdown
// returns ctx.Err() once the handlers exit. Shutdown (and Close) are
// idempotent; later calls just wait for completion.
func (s *Server) Shutdown(ctx context.Context) error {
	s.beginQuit()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.closeArchives()
		return nil
	case <-ctx.Done():
		s.closeConns()
		<-done
		s.closeArchives()
		return ctx.Err()
	}
}

// closeArchives tears down READ_RANGE state after every handler has
// exited: no request can be mid-read, so readers and files close
// cleanly. Closing the shared cache also drops every decoded chunk.
func (s *Server) closeArchives() {
	s.archOnce.Do(func() {
		if s.cache == nil {
			return
		}
		s.archMu.Lock()
		defer s.archMu.Unlock()
		for name, a := range s.archives {
			_ = a.rr.Close() // RangeReader.Close never fails
			_ = a.f.Close()  // read-only handle; nothing to flush
			delete(s.archives, name)
		}
		_ = s.cache.Close() // Close on a cache never fails
	})
}

// Close stops the server immediately: listener and connections are
// closed without waiting for in-flight requests' responses to flush,
// though workers still run to completion. It never leaks the
// handlers: Close returns once every goroutine has exited.
func (s *Server) Close() error {
	s.beginQuit()
	s.closeConns()
	s.wg.Wait()
	s.closeArchives()
	return nil
}

// beginQuit closes quit once, closes the listener, and pokes every
// connection's blocked reader with an immediate read deadline so
// producer loops observe the drain.
func (s *Server) beginQuit() {
	s.quitOnce.Do(func() { close(s.quit) })
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		_ = s.ln.Close() // may already be closed; idempotent either way
	}
	now := time.Now()
	for conn := range s.conns {
		_ = conn.SetReadDeadline(now) // a closed conn means its reader already exited
	}
}

// closeConns severs every tracked connection.
func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		_ = conn.Close() // already-closed conns are fine
	}
}

// String identifies the server in logs.
func (s *Server) String() string {
	if a := s.Addr(); a != nil {
		return fmt.Sprintf("arcd(%s)", a)
	}
	return "arcd(unstarted)"
}
