package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/ecc"
)

// Client is a synchronous arcd client: each call writes one request
// frame and reads its response. A Client is NOT safe for concurrent
// use — open one Client per worker (the load generator does exactly
// that), or speak raw frames over one connection to use the server's
// per-connection pipelining.
type Client struct {
	conn       net.Conn
	scratch    []byte // response payload buffer, reused across calls
	maxPayload int
}

// Dial connects to an arcd server. maxPayload bounds accepted
// response payloads (<= 0 means DefaultMaxPayload).
func Dial(ctx context.Context, addr string, maxPayload int) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	return &Client{conn: conn, maxPayload: maxPayload}, nil
}

// Close closes the connection. In-flight calls fail.
func (c *Client) Close() error { return c.conn.Close() }

// RemoteErr is a non-OK response: the server refused or failed the
// request. Status carries the protocol verdict, Msg the server's
// explanation.
type RemoteErr struct {
	Op     Op
	Status Status
	Msg    string
}

// Error implements error.
func (e *RemoteErr) Error() string {
	return fmt.Sprintf("service: %s: %s: %s", e.Op, e.Status, e.Msg)
}

// IsUncorrectable reports whether err is a StatusUncorrectable
// response — damage beyond the container's ECC budget, detected and
// refused rather than silently returned.
func IsUncorrectable(err error) bool {
	var re *RemoteErr
	return errors.As(err, &re) && re.Status == StatusUncorrectable
}

// roundTrip performs one call. The returned payload aliases the
// client's scratch buffer: it is valid until the next call.
func (c *Client) roundTrip(ctx context.Context, op Op, payload []byte) ([]byte, error) {
	if deadline, ok := ctx.Deadline(); ok {
		if err := c.conn.SetDeadline(deadline); err != nil {
			return nil, err
		}
	} else if err := c.conn.SetDeadline(time.Time{}); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := WriteFrame(c.conn, Frame{Op: op, Status: StatusRequest, Payload: payload}); err != nil {
		return nil, err
	}
	f, err := ReadFrame(c.conn, c.maxPayload, c.scratch[:0])
	if err != nil {
		return nil, err
	}
	if cap(f.Payload) > cap(c.scratch) {
		c.scratch = f.Payload
	}
	if f.Op != op {
		return nil, fmt.Errorf("%w: response op %s for a %s request", ErrBadFrame, f.Op, op)
	}
	if f.Status != StatusOK {
		return nil, &RemoteErr{Op: f.Op, Status: f.Status, Msg: string(f.Payload)}
	}
	return f.Payload, nil
}

// Encode asks the server to protect data with the given ECC
// configuration (method 0 selects the server's default). It returns
// the ARC container, copied out of the receive buffer.
func (c *Client) Encode(ctx context.Context, method ecc.Method, param int, data []byte) ([]byte, error) {
	req := AppendEncodeRequest(make([]byte, 0, encodeReqHeaderLen+len(data)), method, param, data)
	out, err := c.roundTrip(ctx, OpEncode, req)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), out...), nil
}

// Decode asks the server to verify, repair, and unwrap a container.
// It returns the recovered data (copied) and the repair report. On
// over-budget damage the error is a StatusUncorrectable RemoteErr and
// no data is returned.
func (c *Client) Decode(ctx context.Context, container []byte) ([]byte, Report, error) {
	out, err := c.roundTrip(ctx, OpDecode, container)
	if err != nil {
		return nil, Report{}, err
	}
	rep, data, err := ParseReport(out)
	if err != nil {
		return nil, Report{}, err
	}
	return append([]byte(nil), data...), rep, nil
}

// Verify asks the server to verify (and count repairs for) a
// container without returning its data.
func (c *Client) Verify(ctx context.Context, container []byte) (Report, error) {
	out, err := c.roundTrip(ctx, OpVerify, container)
	if err != nil {
		return Report{}, err
	}
	rep, _, err := ParseReport(out)
	return rep, err
}

// Repair asks the server to decode a container and re-encode it
// fresh: the returned container (copied) has all corrections folded
// in and its full ECC budget restored.
func (c *Client) Repair(ctx context.Context, container []byte) ([]byte, Report, error) {
	out, err := c.roundTrip(ctx, OpRepair, container)
	if err != nil {
		return nil, Report{}, err
	}
	rep, fresh, err := ParseReport(out)
	if err != nil {
		return nil, Report{}, err
	}
	return append([]byte(nil), fresh...), rep, nil
}

// ReadRange asks the server to decode n original bytes of the named
// root archive starting at byte first. It returns the decoded bytes
// (copied; fewer than n when the range runs past the archive's end)
// and the repair accounting for the chunks the server decoded serving
// this call — cache-warm ranges report zero.
func (c *Client) ReadRange(ctx context.Context, name string, first, n int64) ([]byte, Report, error) {
	req := AppendReadRangeRequest(make([]byte, 0, rangeReqHeaderLen+len(name)), name, first, n)
	out, err := c.roundTrip(ctx, OpReadRange, req)
	if err != nil {
		return nil, Report{}, err
	}
	rep, data, err := ParseReport(out)
	if err != nil {
		return nil, Report{}, err
	}
	return append([]byte(nil), data...), rep, nil
}

// Stats fetches the server's live counters as raw JSON (a
// metrics.LiveSnapshot).
func (c *Client) Stats(ctx context.Context) ([]byte, error) {
	out, err := c.roundTrip(ctx, OpStats, nil)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), out...), nil
}
