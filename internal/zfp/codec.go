package zfp

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/bitio"
)

// blockScratch is the per-block working set: gathered values, the
// fixed-point coefficients, and the negabinary magnitudes. Blocks are
// tiny (4^d values) but the codec touches one per 4^d samples, so
// allocating these per block dominated the encoder's garbage.
type blockScratch struct {
	vals   []float64
	coeffs []int64
	u      []uint64
}

var blockScratchPool = sync.Pool{New: func() any { return new(blockScratch) }}

// getBlockScratch returns a scratch sized for size-element blocks.
// Contents are unspecified; encodeBlock/decodeBlock assign (or clear)
// every element they read.
func getBlockScratch(size int) *blockScratch {
	s, ok := blockScratchPool.Get().(*blockScratch)
	if !ok {
		s = new(blockScratch) // unreachable: the pool's New returns *blockScratch
	}
	s.vals = growSlice(s.vals, size)
	s.coeffs = growSlice(s.coeffs, size)
	s.u = growSlice(s.u, size)
	return s
}

func putBlockScratch(s *blockScratch) { blockScratchPool.Put(s) }

func growSlice[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// blockBits returns the exact bit budget of one fixed-rate block.
func blockBits(rate float64, size int) int {
	return int(math.Round(rate * float64(size)))
}

// minRate is the smallest fixed rate that can hold a block header
// (nonzero flag + exponent) plus one plane bit; lower rates would
// emit blocks larger than their own fixed budget, which cannot be
// decoded. Compress validates against it.
func minRate(size int) float64 {
	return float64(2+expBits) / float64(size)
}

// kminFor computes the lowest bit plane a variable-length mode must
// keep. For accuracy mode, bit k of a coefficient carries weight
// 2^(k-fixedPointBits+emax), and truncation below the tolerance (with
// a safety margin for inverse transform growth) is allowed. For
// precision mode, exactly Param planes from the top are kept.
func kminFor(opts Options, emax int) int {
	var k int
	switch opts.Mode {
	case ModePrecision:
		k = intPrec - int(opts.Param)
	default: // ModeAccuracy
		// 2^(kmin - fixedPointBits + emax) <= tol / 2^accMargin
		k = int(math.Floor(math.Log2(opts.Param))) + fixedPointBits - emax - accMargin
	}
	if k < 0 {
		k = 0
	}
	if k > intPrec {
		k = intPrec
	}
	return k
}

// blockExp returns the max binary exponent over the block per
// math.Frexp (value magnitude < 2^e), and whether any value is
// nonzero.
func blockExp(vals []float64) (int, bool) {
	e := math.MinInt32
	nonzero := false
	for _, v := range vals {
		if v == 0 {
			continue
		}
		nonzero = true
		_, ve := math.Frexp(v)
		if ve > e {
			e = ve
		}
	}
	return e, nonzero
}

// encodeBlock writes one block from s.vals (filled by the caller's
// gather); s.coeffs and s.u are scratch.
func encodeBlock(w *bitio.Writer, s *blockScratch, bl *blocker, opts Options) {
	vals, coeffs := s.vals, s.coeffs
	size := bl.blockSize
	rateMode := opts.Mode == ModeRate
	var budget int
	if rateMode {
		budget = blockBits(opts.Param, size)
	} else {
		budget = 1 + expBits + intPrec*size // effectively unlimited
	}
	start := w.Len()

	emax, nonzero := blockExp(vals)
	biased := emax + expBias
	if biased < 1 || biased > 2*expBias {
		nonzero = false // beyond double range: treat as zero block
	}
	if !nonzero {
		w.WriteBit(0)
	} else {
		w.WriteBit(1)
		w.WriteBits(uint64(biased), expBits) //arcvet:ignore mathbits biased is checked in [1, 2*expBias] above
		scale := math.Ldexp(1, fixedPointBits-emax)
		for i, v := range vals {
			coeffs[i] = int64(v * scale)
		}
		fwdXform(coeffs, bl.nd)
		// Reorder to sequency order and map to negabinary. Every entry
		// of the reused scratch is assigned, so no clearing is needed.
		u := s.u
		int2uintBlock(u, coeffs, bl.perm)
		kmin := 0
		if !rateMode {
			kmin = kminFor(opts, emax)
		}
		encodePlanes(w, u, size, kmin, budget-1-expBits)
	}
	if rateMode {
		// Pad to the exact fixed size.
		for w.Len()-start < budget {
			w.WriteBit(0)
		}
	}
}

// encodePlanes implements ZFP's embedded group-testing coder: for each
// bit plane from MSB down, the first n bits (coefficients already
// significant) are written verbatim and the remainder is unary
// run-length coded. n grows monotonically as coefficients become
// significant.
func encodePlanes(w *bitio.Writer, u []uint64, size, kmin, bits int) {
	n := 0
	for k := intPrec - 1; k >= kmin && bits > 0; k-- {
		// Gather plane k: bit i of x = bit k of coefficient i.
		var x uint64
		for i := 0; i < size; i++ {
			x |= (u[i] >> uint(k) & 1) << uint(i)
		}
		// Step 2: first n bits verbatim (LSB of x first).
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		for i := 0; i < m; i++ {
			w.WriteBit(uint(x))
			x >>= 1
		}
		// Step 3: unary run-length encode the remainder. Bit 0 of x is
		// position n. Each outer iteration emits a group-test bit
		// ("any 1s left in this plane?"); a positive test is followed
		// by the run of bits up to and including the next 1 — except
		// that a 1 in the final position is implied, not written.
		for n < size && bits > 0 {
			bits--
			if x == 0 {
				w.WriteBit(0)
				break
			}
			w.WriteBit(1)
			hit := false
			for n < size-1 && bits > 0 {
				bits--
				b := uint(x & 1)
				w.WriteBit(b)
				if b == 1 {
					hit = true
					break
				}
				x >>= 1
				n++
			}
			// Consume the position that held (or implies) the 1. When
			// bits ran out mid-run with positions left, this consumes
			// one position silently; the decoder mirrors that.
			_ = hit
			x >>= 1
			n++
		}
	}
}

// decodeBlock reads one block into s.vals (scattered by the caller);
// s.coeffs and s.u are scratch.
func decodeBlock(r *bitio.Reader, s *blockScratch, bl *blocker, opts Options) error {
	vals, coeffs := s.vals, s.coeffs
	size := bl.blockSize
	rateMode := opts.Mode == ModeRate
	var budget int
	if rateMode {
		budget = blockBits(opts.Param, size)
	} else {
		budget = 1 + expBits + intPrec*size
	}
	start := r.Pos()

	flag, err := r.ReadBit()
	if err != nil {
		return fmt.Errorf("%w: truncated block flag", ErrCorrupt)
	}
	if flag == 0 {
		for i := range vals {
			vals[i] = 0
		}
	} else {
		biasedU, err := r.ReadBits(expBits)
		if err != nil {
			return fmt.Errorf("%w: truncated exponent", ErrCorrupt)
		}
		emax := int(biasedU) - expBias //arcvet:ignore mathbits biasedU fits in expBits (11) bits
		kmin := 0
		if !rateMode {
			kmin = kminFor(opts, emax)
		}
		// decodePlanes ORs bits into u, so the reused scratch must start
		// zeroed.
		u := s.u
		clear(u)
		maxPlanes := 0
		if rateMode {
			maxPlanes = opts.maxDecodePlanes
		}
		if err := decodePlanes(r, u, size, kmin, budget-1-expBits, maxPlanes); err != nil {
			return err
		}
		uint2intBlock(coeffs, u, bl.perm)
		invXform(coeffs, bl.nd)
		scale := math.Ldexp(1, emax-fixedPointBits)
		for i := range vals {
			vals[i] = float64(coeffs[i]) * scale
		}
	}
	if rateMode {
		consumed := r.Pos() - start
		if consumed > budget {
			return fmt.Errorf("%w: block overran its budget", ErrCorrupt)
		}
		if err := r.Skip(budget - consumed); err != nil {
			return fmt.Errorf("%w: truncated block padding", ErrCorrupt)
		}
	}
	return nil
}

// decodePlanes mirrors encodePlanes exactly. maxPlanes > 0 stops the
// consumption early (progressive decode); the caller skips the block's
// remaining budget, which is only sound for fixed-rate blocks.
func decodePlanes(r *bitio.Reader, u []uint64, size, kmin, bits, maxPlanes int) error {
	n := 0
	for k := intPrec - 1; k >= kmin && bits > 0; k-- {
		if maxPlanes > 0 && intPrec-k > maxPlanes {
			break
		}
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		var x uint64
		for i := 0; i < m; i++ {
			b, err := r.ReadBit()
			if err != nil {
				return fmt.Errorf("%w: truncated plane", ErrCorrupt)
			}
			x |= uint64(b) << uint(i)
		}
		for n < size && bits > 0 {
			bits--
			g, err := r.ReadBit()
			if err != nil {
				return fmt.Errorf("%w: truncated group bit", ErrCorrupt)
			}
			if g == 0 {
				break
			}
			hit := false
			for n < size-1 && bits > 0 {
				bits--
				b, err := r.ReadBit()
				if err != nil {
					return fmt.Errorf("%w: truncated run", ErrCorrupt)
				}
				if b == 1 {
					hit = true
					break
				}
				n++
			}
			switch {
			case hit:
				// Explicit 1 at position n.
				x |= 1 << uint(n)
			case n == size-1:
				// The group test guaranteed a 1 remains and only the
				// final position is left: the 1 is implied.
				x |= 1 << uint(n)
			default:
				// Bits exhausted mid-run: the encoder consumed this
				// position without confirming it; leave it zero.
			}
			n++
		}
		for i := 0; x != 0; i, x = i+1, x>>1 {
			u[i] |= (x & 1) << uint(k)
		}
	}
	return nil
}
