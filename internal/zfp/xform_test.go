package zfp

import (
	"math"
	"math/rand"
	"testing"
)

// xformTestBlocks yields random coefficient blocks spanning the full
// int64 range plus structured patterns that stress carry/sign paths of
// the S-transform.
func xformTestBlocks(nd int, seed int64) [][]int64 {
	size := 1 << (2 * nd)
	rng := rand.New(rand.NewSource(seed))
	var blocks [][]int64
	for i := 0; i < 64; i++ {
		b := make([]int64, size)
		for j := range b {
			b[j] = int64(rng.Uint64()) >> uint(rng.Intn(63)) //arcvet:ignore mathbits full-range wraparound values are the point of this stress input
		}
		blocks = append(blocks, b)
	}
	patterns := []int64{0, 1, -1, math.MaxInt64, math.MinInt64, 1 << 55, -(1 << 55)}
	for _, v := range patterns {
		b := make([]int64, size)
		for j := range b {
			b[j] = v
		}
		blocks = append(blocks, b)
		alt := make([]int64, size)
		for j := range alt {
			if j%2 == 0 {
				alt[j] = v
			} else {
				alt[j] = -v
			}
		}
		blocks = append(blocks, alt)
	}
	return blocks
}

// TestXformMatchesRef pins the unrolled transforms to the strided
// references, element for element, in every dimensionality.
func TestXformMatchesRef(t *testing.T) {
	for nd := 1; nd <= 3; nd++ {
		for bi, blk := range xformTestBlocks(nd, int64(nd)) {
			fast := append([]int64(nil), blk...)
			ref := append([]int64(nil), blk...)
			fwdXform(fast, nd)
			fwdXformRef(ref, nd)
			for i := range fast {
				if fast[i] != ref[i] {
					t.Fatalf("nd=%d block=%d: fwdXform[%d]=%d, want %d", nd, bi, i, fast[i], ref[i])
				}
			}
			invXform(fast, nd)
			invXformRef(ref, nd)
			for i := range fast {
				if fast[i] != ref[i] {
					t.Fatalf("nd=%d block=%d: invXform[%d]=%d, want %d", nd, bi, i, fast[i], ref[i])
				}
			}
		}
	}
}

// TestNegabinaryBlockMatchesScalar pins the block negabinary helpers to
// the element-wise mapping through the sequency permutation.
func TestNegabinaryBlockMatchesScalar(t *testing.T) {
	for nd := 1; nd <= 3; nd++ {
		perm := sequencyPerm(nd)
		for bi, blk := range xformTestBlocks(nd, int64(10+nd)) {
			u := make([]uint64, len(blk))
			int2uintBlock(u, blk, perm)
			for i, p := range perm {
				if want := int2uint(blk[p]); u[i] != want {
					t.Fatalf("nd=%d block=%d: u[%d]=%#x, want %#x", nd, bi, i, u[i], want)
				}
			}
			back := make([]int64, len(blk))
			uint2intBlock(back, u, perm)
			for i := range blk {
				if back[i] != blk[i] {
					t.Fatalf("nd=%d block=%d: negabinary round-trip [%d]=%d, want %d", nd, bi, i, back[i], blk[i])
				}
			}
		}
	}
}

// TestXformAllocs pins the unrolled kernels to zero allocations.
func TestXformAllocs(t *testing.T) {
	blk := make([]int64, 64)
	perm := sequencyPerm(3)
	u := make([]uint64, 64)
	if allocs := testing.AllocsPerRun(100, func() {
		fwdXform(blk, 3)
		invXform(blk, 3)
		int2uintBlock(u, blk, perm)
		uint2intBlock(blk, u, perm)
	}); allocs != 0 {
		t.Errorf("xform kernels allocate %v times per run, want 0", allocs)
	}
}

func BenchmarkKernelZFPLift(b *testing.B) {
	blocks := make([]int64, 64*256)
	rng := rand.New(rand.NewSource(9))
	for i := range blocks {
		blocks[i] = int64(rng.Uint64()) >> 9 //arcvet:ignore mathbits random sign-extended coefficients, wraparound is fine
	}
	nbytes := int64(len(blocks) * 8)
	b.Run("word", func(b *testing.B) {
		b.SetBytes(nbytes)
		for i := 0; i < b.N; i++ {
			for off := 0; off < len(blocks); off += 64 {
				fwdXform(blocks[off:off+64], 3)
				invXform(blocks[off:off+64], 3)
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(nbytes)
		for i := 0; i < b.N; i++ {
			for off := 0; off < len(blocks); off += 64 {
				fwdXformRef(blocks[off:off+64], 3)
				invXformRef(blocks[off:off+64], 3)
			}
		}
	})
}
