package zfp

// Unrolled S-transform kernels over whole 4^d blocks. The two-level
// lifting of a 4-vector is fused into one call (lift4/unlift4), and
// the per-axis strided loops of the reference are fully unrolled over
// fixed-size array views, so the compiler emits no bounds checks and
// can schedule the independent 4-vectors of each axis pass in
// parallel. Every operation is two's-complement integer arithmetic —
// exactly associative under wrapping — so the unrolled kernels are
// bit-identical to fwdXformRef/invXformRef; xform_test.go pins that
// differentially.

// lift4 applies the two-level forward S-transform to one 4-vector:
// level 1 pairs (x0,x1) and (x2,x3), level 2 pairs the two lows.
// Output slot order is [ll, hl, h0, h1], matching fwdLift.
func lift4(x0, x1, x2, x3 int64) (int64, int64, int64, int64) {
	l0, h0 := (x0+x1)>>1, x0-x1
	l1, h1 := (x2+x3)>>1, x2-x3
	return (l0 + l1) >> 1, l0 - l1, h0, h1
}

// unlift4 inverts lift4.
func unlift4(ll, hl, h0, h1 int64) (int64, int64, int64, int64) {
	l0 := ll + ((hl + (hl & 1)) >> 1)
	l1 := l0 - hl
	x0 := l0 + ((h0 + (h0 & 1)) >> 1)
	x1 := x0 - h0
	x2 := l1 + ((h1 + (h1 & 1)) >> 1)
	x3 := x2 - h1
	return x0, x1, x2, x3
}

// fwdXform decorrelates a full block in place, lifting along each axis.
func fwdXform(c []int64, nd int) {
	switch nd {
	case 1:
		b := (*[4]int64)(c)
		b[0], b[1], b[2], b[3] = lift4(b[0], b[1], b[2], b[3])
	case 2:
		fwdXform2D((*[16]int64)(c))
	default:
		fwdXform3D((*[64]int64)(c))
	}
}

// invXform inverts fwdXform (axes in reverse order).
func invXform(c []int64, nd int) {
	switch nd {
	case 1:
		b := (*[4]int64)(c)
		b[0], b[1], b[2], b[3] = unlift4(b[0], b[1], b[2], b[3])
	case 2:
		invXform2D((*[16]int64)(c))
	default:
		invXform3D((*[64]int64)(c))
	}
}

// fwdXform2D lifts a 2D block: rows (stride 1), then columns (stride 4).
func fwdXform2D(b *[16]int64) {
	b[0], b[1], b[2], b[3] = lift4(b[0], b[1], b[2], b[3])
	b[4], b[5], b[6], b[7] = lift4(b[4], b[5], b[6], b[7])
	b[8], b[9], b[10], b[11] = lift4(b[8], b[9], b[10], b[11])
	b[12], b[13], b[14], b[15] = lift4(b[12], b[13], b[14], b[15])
	b[0], b[4], b[8], b[12] = lift4(b[0], b[4], b[8], b[12])
	b[1], b[5], b[9], b[13] = lift4(b[1], b[5], b[9], b[13])
	b[2], b[6], b[10], b[14] = lift4(b[2], b[6], b[10], b[14])
	b[3], b[7], b[11], b[15] = lift4(b[3], b[7], b[11], b[15])
}

// invXform2D inverts fwdXform2D: columns, then rows.
func invXform2D(b *[16]int64) {
	b[0], b[4], b[8], b[12] = unlift4(b[0], b[4], b[8], b[12])
	b[1], b[5], b[9], b[13] = unlift4(b[1], b[5], b[9], b[13])
	b[2], b[6], b[10], b[14] = unlift4(b[2], b[6], b[10], b[14])
	b[3], b[7], b[11], b[15] = unlift4(b[3], b[7], b[11], b[15])
	b[0], b[1], b[2], b[3] = unlift4(b[0], b[1], b[2], b[3])
	b[4], b[5], b[6], b[7] = unlift4(b[4], b[5], b[6], b[7])
	b[8], b[9], b[10], b[11] = unlift4(b[8], b[9], b[10], b[11])
	b[12], b[13], b[14], b[15] = unlift4(b[12], b[13], b[14], b[15])
}

// fwdXform3D lifts a 3D block: x (stride 1), y (stride 4), z (stride 16).
func fwdXform3D(b *[64]int64) {
	b[0], b[1], b[2], b[3] = lift4(b[0], b[1], b[2], b[3])
	b[4], b[5], b[6], b[7] = lift4(b[4], b[5], b[6], b[7])
	b[8], b[9], b[10], b[11] = lift4(b[8], b[9], b[10], b[11])
	b[12], b[13], b[14], b[15] = lift4(b[12], b[13], b[14], b[15])
	b[16], b[17], b[18], b[19] = lift4(b[16], b[17], b[18], b[19])
	b[20], b[21], b[22], b[23] = lift4(b[20], b[21], b[22], b[23])
	b[24], b[25], b[26], b[27] = lift4(b[24], b[25], b[26], b[27])
	b[28], b[29], b[30], b[31] = lift4(b[28], b[29], b[30], b[31])
	b[32], b[33], b[34], b[35] = lift4(b[32], b[33], b[34], b[35])
	b[36], b[37], b[38], b[39] = lift4(b[36], b[37], b[38], b[39])
	b[40], b[41], b[42], b[43] = lift4(b[40], b[41], b[42], b[43])
	b[44], b[45], b[46], b[47] = lift4(b[44], b[45], b[46], b[47])
	b[48], b[49], b[50], b[51] = lift4(b[48], b[49], b[50], b[51])
	b[52], b[53], b[54], b[55] = lift4(b[52], b[53], b[54], b[55])
	b[56], b[57], b[58], b[59] = lift4(b[56], b[57], b[58], b[59])
	b[60], b[61], b[62], b[63] = lift4(b[60], b[61], b[62], b[63])
	b[0], b[4], b[8], b[12] = lift4(b[0], b[4], b[8], b[12])
	b[1], b[5], b[9], b[13] = lift4(b[1], b[5], b[9], b[13])
	b[2], b[6], b[10], b[14] = lift4(b[2], b[6], b[10], b[14])
	b[3], b[7], b[11], b[15] = lift4(b[3], b[7], b[11], b[15])
	b[16], b[20], b[24], b[28] = lift4(b[16], b[20], b[24], b[28])
	b[17], b[21], b[25], b[29] = lift4(b[17], b[21], b[25], b[29])
	b[18], b[22], b[26], b[30] = lift4(b[18], b[22], b[26], b[30])
	b[19], b[23], b[27], b[31] = lift4(b[19], b[23], b[27], b[31])
	b[32], b[36], b[40], b[44] = lift4(b[32], b[36], b[40], b[44])
	b[33], b[37], b[41], b[45] = lift4(b[33], b[37], b[41], b[45])
	b[34], b[38], b[42], b[46] = lift4(b[34], b[38], b[42], b[46])
	b[35], b[39], b[43], b[47] = lift4(b[35], b[39], b[43], b[47])
	b[48], b[52], b[56], b[60] = lift4(b[48], b[52], b[56], b[60])
	b[49], b[53], b[57], b[61] = lift4(b[49], b[53], b[57], b[61])
	b[50], b[54], b[58], b[62] = lift4(b[50], b[54], b[58], b[62])
	b[51], b[55], b[59], b[63] = lift4(b[51], b[55], b[59], b[63])
	b[0], b[16], b[32], b[48] = lift4(b[0], b[16], b[32], b[48])
	b[1], b[17], b[33], b[49] = lift4(b[1], b[17], b[33], b[49])
	b[2], b[18], b[34], b[50] = lift4(b[2], b[18], b[34], b[50])
	b[3], b[19], b[35], b[51] = lift4(b[3], b[19], b[35], b[51])
	b[4], b[20], b[36], b[52] = lift4(b[4], b[20], b[36], b[52])
	b[5], b[21], b[37], b[53] = lift4(b[5], b[21], b[37], b[53])
	b[6], b[22], b[38], b[54] = lift4(b[6], b[22], b[38], b[54])
	b[7], b[23], b[39], b[55] = lift4(b[7], b[23], b[39], b[55])
	b[8], b[24], b[40], b[56] = lift4(b[8], b[24], b[40], b[56])
	b[9], b[25], b[41], b[57] = lift4(b[9], b[25], b[41], b[57])
	b[10], b[26], b[42], b[58] = lift4(b[10], b[26], b[42], b[58])
	b[11], b[27], b[43], b[59] = lift4(b[11], b[27], b[43], b[59])
	b[12], b[28], b[44], b[60] = lift4(b[12], b[28], b[44], b[60])
	b[13], b[29], b[45], b[61] = lift4(b[13], b[29], b[45], b[61])
	b[14], b[30], b[46], b[62] = lift4(b[14], b[30], b[46], b[62])
	b[15], b[31], b[47], b[63] = lift4(b[15], b[31], b[47], b[63])
}

// invXform3D inverts fwdXform3D: z, then y, then x.
func invXform3D(b *[64]int64) {
	b[0], b[16], b[32], b[48] = unlift4(b[0], b[16], b[32], b[48])
	b[1], b[17], b[33], b[49] = unlift4(b[1], b[17], b[33], b[49])
	b[2], b[18], b[34], b[50] = unlift4(b[2], b[18], b[34], b[50])
	b[3], b[19], b[35], b[51] = unlift4(b[3], b[19], b[35], b[51])
	b[4], b[20], b[36], b[52] = unlift4(b[4], b[20], b[36], b[52])
	b[5], b[21], b[37], b[53] = unlift4(b[5], b[21], b[37], b[53])
	b[6], b[22], b[38], b[54] = unlift4(b[6], b[22], b[38], b[54])
	b[7], b[23], b[39], b[55] = unlift4(b[7], b[23], b[39], b[55])
	b[8], b[24], b[40], b[56] = unlift4(b[8], b[24], b[40], b[56])
	b[9], b[25], b[41], b[57] = unlift4(b[9], b[25], b[41], b[57])
	b[10], b[26], b[42], b[58] = unlift4(b[10], b[26], b[42], b[58])
	b[11], b[27], b[43], b[59] = unlift4(b[11], b[27], b[43], b[59])
	b[12], b[28], b[44], b[60] = unlift4(b[12], b[28], b[44], b[60])
	b[13], b[29], b[45], b[61] = unlift4(b[13], b[29], b[45], b[61])
	b[14], b[30], b[46], b[62] = unlift4(b[14], b[30], b[46], b[62])
	b[15], b[31], b[47], b[63] = unlift4(b[15], b[31], b[47], b[63])
	b[0], b[4], b[8], b[12] = unlift4(b[0], b[4], b[8], b[12])
	b[1], b[5], b[9], b[13] = unlift4(b[1], b[5], b[9], b[13])
	b[2], b[6], b[10], b[14] = unlift4(b[2], b[6], b[10], b[14])
	b[3], b[7], b[11], b[15] = unlift4(b[3], b[7], b[11], b[15])
	b[16], b[20], b[24], b[28] = unlift4(b[16], b[20], b[24], b[28])
	b[17], b[21], b[25], b[29] = unlift4(b[17], b[21], b[25], b[29])
	b[18], b[22], b[26], b[30] = unlift4(b[18], b[22], b[26], b[30])
	b[19], b[23], b[27], b[31] = unlift4(b[19], b[23], b[27], b[31])
	b[32], b[36], b[40], b[44] = unlift4(b[32], b[36], b[40], b[44])
	b[33], b[37], b[41], b[45] = unlift4(b[33], b[37], b[41], b[45])
	b[34], b[38], b[42], b[46] = unlift4(b[34], b[38], b[42], b[46])
	b[35], b[39], b[43], b[47] = unlift4(b[35], b[39], b[43], b[47])
	b[48], b[52], b[56], b[60] = unlift4(b[48], b[52], b[56], b[60])
	b[49], b[53], b[57], b[61] = unlift4(b[49], b[53], b[57], b[61])
	b[50], b[54], b[58], b[62] = unlift4(b[50], b[54], b[58], b[62])
	b[51], b[55], b[59], b[63] = unlift4(b[51], b[55], b[59], b[63])
	b[0], b[1], b[2], b[3] = unlift4(b[0], b[1], b[2], b[3])
	b[4], b[5], b[6], b[7] = unlift4(b[4], b[5], b[6], b[7])
	b[8], b[9], b[10], b[11] = unlift4(b[8], b[9], b[10], b[11])
	b[12], b[13], b[14], b[15] = unlift4(b[12], b[13], b[14], b[15])
	b[16], b[17], b[18], b[19] = unlift4(b[16], b[17], b[18], b[19])
	b[20], b[21], b[22], b[23] = unlift4(b[20], b[21], b[22], b[23])
	b[24], b[25], b[26], b[27] = unlift4(b[24], b[25], b[26], b[27])
	b[28], b[29], b[30], b[31] = unlift4(b[28], b[29], b[30], b[31])
	b[32], b[33], b[34], b[35] = unlift4(b[32], b[33], b[34], b[35])
	b[36], b[37], b[38], b[39] = unlift4(b[36], b[37], b[38], b[39])
	b[40], b[41], b[42], b[43] = unlift4(b[40], b[41], b[42], b[43])
	b[44], b[45], b[46], b[47] = unlift4(b[44], b[45], b[46], b[47])
	b[48], b[49], b[50], b[51] = unlift4(b[48], b[49], b[50], b[51])
	b[52], b[53], b[54], b[55] = unlift4(b[52], b[53], b[54], b[55])
	b[56], b[57], b[58], b[59] = unlift4(b[56], b[57], b[58], b[59])
	b[60], b[61], b[62], b[63] = unlift4(b[60], b[61], b[62], b[63])
}

// int2uintBlock maps a block's transform coefficients through the
// negabinary transform into u, permuted into sequency order.
func int2uintBlock(u []uint64, coeffs []int64, perm []int) {
	u = u[:len(perm)]
	for i, p := range perm {
		u[i] = int2uint(coeffs[p])
	}
}

// uint2intBlock inverts int2uintBlock, scattering sequency-ordered
// negabinary values back into block layout.
func uint2intBlock(coeffs []int64, u []uint64, perm []int) {
	u = u[:len(perm)]
	for i, p := range perm {
		coeffs[p] = uint2int(u[i])
	}
}
