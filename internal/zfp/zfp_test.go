package zfp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func smooth2D(nx, ny int, seed int64) ([]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, nx*ny)
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			fx, fy := float64(x)/float64(nx), float64(y)/float64(ny)
			data[x*ny+y] = 10*math.Sin(3*fx*math.Pi)*math.Cos(2*fy*math.Pi) + 0.05*rng.NormFloat64()
		}
	}
	return data, []int{nx, ny}
}

func TestSTransformExactInverse(t *testing.T) {
	prop := func(a, b int32) bool {
		l, h := sFwd(int64(a), int64(b))
		ga, gb := sInv(l, h)
		return ga == int64(a) && gb == int64(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestXformExactInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, nd := range []int{1, 2, 3} {
		size := 1 << (2 * nd)
		for trial := 0; trial < 100; trial++ {
			c := make([]int64, size)
			want := make([]int64, size)
			for i := range c {
				c[i] = int64(rng.Uint64()>>8) - (1 << 54) //arcvet:ignore mathbits top 8 bits cleared by the shift
				want[i] = c[i]
			}
			fwdXform(c, nd)
			invXform(c, nd)
			for i := range c {
				if c[i] != want[i] {
					t.Fatalf("nd=%d trial=%d: xform not invertible at %d", nd, trial, i)
				}
			}
		}
	}
}

func TestNegabinaryRoundTrip(t *testing.T) {
	prop := func(x int64) bool { return uint2int(int2uint(x)) == x }
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Small magnitudes must map to small unsigned values (leading
	// zeros feed the embedded coder).
	for _, x := range []int64{0, 1, -1, 2, -2, 100, -100} {
		u := int2uint(x)
		if u > 1<<9 {
			t.Fatalf("int2uint(%d) = %#x too large", x, u)
		}
	}
}

func TestSequencyPermIsPermutation(t *testing.T) {
	for nd := 1; nd <= 3; nd++ {
		p := sequencyPerm(nd)
		size := 1 << (2 * nd)
		if len(p) != size {
			t.Fatalf("nd=%d: perm len %d", nd, len(p))
		}
		seen := make([]bool, size)
		for _, i := range p {
			if seen[i] {
				t.Fatalf("nd=%d: duplicate index %d", nd, i)
			}
			seen[i] = true
		}
		if p[0] != 0 {
			t.Fatalf("nd=%d: DC coefficient must come first", nd)
		}
	}
}

func TestAccuracyBoundHolds(t *testing.T) {
	for _, tol := range []float64{1.0, 0.1, 0.001} {
		data, dims := smooth2D(67, 59, 31) // non-multiple-of-4 edges
		buf, err := Compress(data, dims, Options{Mode: ModeAccuracy, Param: tol})
		if err != nil {
			t.Fatal(err)
		}
		got, gotDims, err := Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotDims[0] != 67 || gotDims[1] != 59 {
			t.Fatalf("dims %v", gotDims)
		}
		for i := range data {
			if d := math.Abs(got[i] - data[i]); d > tol {
				t.Fatalf("tol=%g: bound violated at %d: %g", tol, i, d)
			}
		}
	}
}

func TestAccuracy1DAnd3D(t *testing.T) {
	n := 1000
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Cos(float64(i) / 30)
	}
	buf, err := Compress(data, []int{n}, Options{Mode: ModeAccuracy, Param: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(got[i]-data[i]) > 1e-4 {
			t.Fatalf("1D bound violated at %d", i)
		}
	}

	dims3 := []int{10, 11, 13}
	d3 := make([]float64, 10*11*13)
	for i := range d3 {
		d3[i] = math.Sin(float64(i) / 100)
	}
	buf3, err := Compress(d3, dims3, Options{Mode: ModeAccuracy, Param: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	got3, _, err := Decompress(buf3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d3 {
		if math.Abs(got3[i]-d3[i]) > 0.01 {
			t.Fatalf("3D bound violated at %d", i)
		}
	}
}

func TestRateModeExactSize(t *testing.T) {
	for _, rate := range []float64{2, 4, 8, 16} {
		data, dims := smooth2D(64, 64, 32)
		buf, err := Compress(data, dims, Options{Mode: ModeRate, Param: rate})
		if err != nil {
			t.Fatal(err)
		}
		bl := newBlocker(dims)
		wantPayloadBits := bl.numBlocks * blockBits(rate, bl.blockSize)
		headerBytes := len(magic) + 3 + 4*len(dims) + 8
		gotPayload := len(buf) - headerBytes
		if want := (wantPayloadBits + 7) / 8; gotPayload != want {
			t.Fatalf("rate=%g: payload %d bytes, want %d", rate, gotPayload, want)
		}
		got, _, err := Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		// Rate mode bounds nothing, but at rate 8 on a smooth field the
		// reconstruction should be close.
		if rate >= 8 {
			for i := range data {
				if math.Abs(got[i]-data[i]) > 0.5 {
					t.Fatalf("rate=%g: wild error %g at %d", rate, got[i]-data[i], i)
				}
			}
		}
	}
}

func TestRateFlipNeverFailsAndStaysLocal(t *testing.T) {
	// The paper's two headline ZFP-Rate findings: decode always
	// completes, and a flip corrupts at most one 4^d block.
	data, dims := smooth2D(64, 64, 33)
	buf, err := Compress(data, dims, Options{Mode: ModeRate, Param: 8})
	if err != nil {
		t.Fatal(err)
	}
	clean, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(34))
	headerBytes := len(magic) + 3 + 4*len(dims) + 8
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), buf...)
		// Flip within the block payload (header corruption is the
		// container's job to catch, and real ZFP headers are tiny).
		bit := headerBytes*8 + rng.Intn((len(buf)-headerBytes)*8)
		mut[bit/8] ^= 0x80 >> (bit % 8)
		got, _, err := Decompress(mut)
		if err != nil {
			t.Fatalf("trial %d: rate-mode decode must never fail, got %v", trial, err)
		}
		diffs := 0
		for i := range clean {
			if got[i] != clean[i] {
				diffs++
			}
		}
		if diffs > 16 {
			t.Fatalf("trial %d: flip corrupted %d elements, want <= 16 (one 2D block)", trial, diffs)
		}
	}
}

func TestAccuracyFlipPropagates(t *testing.T) {
	// Variable-length blocks: a flip desynchronizes later blocks, so
	// corruption typically spreads far beyond 16 elements.
	data, dims := smooth2D(64, 64, 35)
	buf, err := Compress(data, dims, Options{Mode: ModeAccuracy, Param: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	clean, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(36))
	headerBytes := len(magic) + 3 + 4*len(dims) + 8
	sawWideCorruption := false
	for trial := 0; trial < 200 && !sawWideCorruption; trial++ {
		mut := append([]byte(nil), buf...)
		bit := headerBytes*8 + rng.Intn((len(buf)-headerBytes)/2*8)
		mut[bit/8] ^= 0x80 >> (bit % 8)
		got, _, err := Decompress(mut)
		if err != nil {
			continue // exceptions happen in ACC mode; fine
		}
		diffs := 0
		for i := range clean {
			if got[i] != clean[i] {
				diffs++
			}
		}
		if diffs > 64 {
			sawWideCorruption = true
		}
	}
	if !sawWideCorruption {
		t.Fatal("expected at least one flip to propagate beyond a single block in ACC mode")
	}
}

func TestZeroBlockAndConstant(t *testing.T) {
	data := make([]float64, 256)
	buf, err := Compress(data, []int{16, 16}, Options{Mode: ModeAccuracy, Param: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("zero field not preserved at %d: %g", i, v)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Compress([]float64{1}, []int{2}, Options{Mode: ModeAccuracy, Param: 0.1}); err == nil {
		t.Fatal("dims mismatch must fail")
	}
	if _, err := Compress([]float64{1}, []int{1}, Options{Mode: ModeAccuracy, Param: 0}); err == nil {
		t.Fatal("zero tolerance must fail")
	}
	if _, err := Compress([]float64{1}, []int{1}, Options{Mode: ModeRate, Param: 100}); err == nil {
		t.Fatal("rate > 64 must fail")
	}
	if _, err := Compress([]float64{1}, []int{1}, Options{Mode: 9, Param: 1}); err == nil {
		t.Fatal("bad mode must fail")
	}
}

func TestDecompressGarbage(t *testing.T) {
	if _, _, err := Decompress(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatal("nil must be corrupt")
	}
	if _, _, err := Decompress([]byte("garbage data here")); !errors.Is(err, ErrCorrupt) {
		t.Fatal("garbage must be corrupt")
	}
}

func TestModeString(t *testing.T) {
	if ModeAccuracy.String() != "ZFP-ACC" || ModeRate.String() != "ZFP-Rate" {
		t.Fatal("mode names wrong")
	}
}

func TestCompressionRatioAccuracy(t *testing.T) {
	data, dims := smooth2D(128, 128, 37)
	buf, err := Compress(data, dims, Options{Mode: ModeAccuracy, Param: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cr := float64(len(data)*8) / float64(len(buf))
	if cr < 3 {
		t.Fatalf("ACC compression ratio %.1f too low", cr)
	}
	t.Logf("ZFP-ACC CR = %.1fx", cr)
}

func TestRateRandomAccessProperty(t *testing.T) {
	// Fixed-rate blocks are independently decodable: decoding a stream
	// where all other blocks are zeroed must still reproduce the
	// values of the intact block exactly.
	data, dims := smooth2D(16, 16, 38)
	buf, err := Compress(data, dims, Options{Mode: ModeRate, Param: 16})
	if err != nil {
		t.Fatal(err)
	}
	clean, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	headerBytes := len(magic) + 3 + 4*len(dims) + 8
	bl := newBlocker(dims)
	bb := blockBits(16, bl.blockSize)
	if bb%8 != 0 {
		t.Skip("test requires byte-aligned blocks")
	}
	// Zero every block except #5.
	mut := append([]byte(nil), buf...)
	for b := 0; b < bl.numBlocks; b++ {
		if b == 5 {
			continue
		}
		off := headerBytes + b*bb/8
		for i := 0; i < bb/8; i++ {
			mut[off+i] = 0
		}
	}
	got, _, err := Decompress(mut)
	if err != nil {
		t.Fatal(err)
	}
	// Compare block 5's cells against the clean decode.
	bc := bl.blockCoords(5)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			x0, x1 := bc[0]*4+i, bc[1]*4+j
			if x0 >= dims[0] || x1 >= dims[1] {
				continue
			}
			idx := x0*dims[1] + x1
			if got[idx] != clean[idx] {
				t.Fatalf("block 5 cell (%d,%d) changed: random access broken", i, j)
			}
		}
	}
}
