// Package zfp implements a transform-based lossy compressor modeled on
// ZFP (Lindstrom, TVCG 2014), the second compressor in the paper's
// fault study.
//
// The pipeline mirrors ZFP's stages: values are gathered into 4^d
// blocks, aligned to a common block exponent (block floating point),
// converted to fixed-point integers, decorrelated with an exactly
// invertible integer wavelet lifting (a two-level S-transform per axis;
// ZFP proper uses its own non-orthogonal lift — the substitution keeps
// the exact-invertibility and energy-compaction properties the fault
// study depends on), mapped to negabinary-style unsigned magnitudes,
// and entropy coded one bit plane at a time with ZFP's group-testing
// scheme.
//
// Two modes are provided, matching the study:
//
//   - ModeAccuracy (ZFP-ACC): encodes bit planes down to the level the
//     absolute tolerance requires. Blocks are variable length, so a bit
//     flip desynchronizes every later block — the propagation behaviour
//     the paper measures.
//   - ModeRate (ZFP-Rate): every block gets exactly rate*4^d bits.
//     Blocks are fixed size and independent, so a flip corrupts at most
//     one block (<= 16 values in 2D) and decoding never fails — both
//     hallmark findings of the paper.
package zfp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/bitio"
	"repro/internal/parallel"
	"repro/internal/safecast"
)

// Mode selects the compression mode.
type Mode uint8

const (
	// ModeAccuracy bounds the absolute error by Param.
	ModeAccuracy Mode = iota + 1
	// ModeRate spends exactly Param bits per value.
	ModeRate
	// ModePrecision keeps exactly Param bit planes per block (ZFP's
	// fixed-precision mode; variable-length blocks like ModeAccuracy).
	ModePrecision
)

func (m Mode) String() string {
	switch m {
	case ModeAccuracy:
		return "ZFP-ACC"
	case ModeRate:
		return "ZFP-Rate"
	case ModePrecision:
		return "ZFP-Prec"
	default:
		return fmt.Sprintf("ZFP-mode%d", uint8(m))
	}
}

// Options configures compression.
type Options struct {
	Mode Mode
	// Param is the absolute error tolerance (ModeAccuracy) or the rate
	// in bits per value (ModeRate).
	Param float64
	// Workers parallelizes ModeRate compression and decompression over
	// block ranges (0/1 = serial). Fixed-rate blocks are independent
	// and fixed-size, which is exactly what makes ZFP's OpenMP and
	// CUDA execution possible; the variable-length modes stay serial.
	Workers int

	// maxDecodePlanes caps how many bit planes a ModeRate decode
	// consumes per block (0 = all). Set via DecompressProgressive.
	maxDecodePlanes int
}

// ErrCorrupt reports an undecodable stream.
var ErrCorrupt = errors.New("zfp: corrupt stream")

const (
	magic   = "ZFG1"
	version = 1
	// fixedPointBits positions the block's largest magnitude near bit
	// 55, leaving headroom for transform range growth (the two-level
	// S-transform grows coefficients by at most 4x per axis, 2^6 total
	// in 3D).
	fixedPointBits = 55
	intPrec        = 64 // bit planes per coefficient
	expBits        = 11
	expBias        = 1023
	maxElements    = 1 << 27
	maxDim         = 1 << 28
	// accMargin is the safety margin (in bit planes) between the
	// truncation level and the tolerance, absorbing inverse-transform
	// error growth.
	accMargin = 2
)

// Compress compresses data laid out row-major with 1-3 dims.
func Compress(data []float64, dims []int, opts Options) ([]byte, error) {
	if err := checkDims(data, dims); err != nil {
		return nil, err
	}
	switch opts.Mode {
	case ModeAccuracy:
		if opts.Param <= 0 {
			return nil, fmt.Errorf("zfp: tolerance must be positive, got %g", opts.Param)
		}
	case ModeRate:
		if opts.Param <= 0 || opts.Param > 64 {
			return nil, fmt.Errorf("zfp: rate must be in (0, 64], got %g", opts.Param)
		}
		if floor := minRate(newBlocker(dims).blockSize); opts.Param < floor {
			return nil, fmt.Errorf("zfp: rate %g cannot hold a block header; need >= %.3f for %dD data",
				opts.Param, floor, len(dims))
		}
	case ModePrecision:
		if opts.Param < 1 || opts.Param > intPrec || opts.Param != math.Trunc(opts.Param) {
			return nil, fmt.Errorf("zfp: precision must be an integer in [1, %d], got %g", intPrec, opts.Param)
		}
	default:
		return nil, fmt.Errorf("zfp: unknown mode %d", opts.Mode)
	}

	var out bytes.Buffer
	out.WriteString(magic)
	out.WriteByte(version)
	out.WriteByte(byte(opts.Mode))
	out.WriteByte(safecast.U8(len(dims)))
	for _, d := range dims {
		binWrite(&out, safecast.U32(d))
	}
	binWrite(&out, math.Float64bits(opts.Param))

	bl := newBlocker(dims)
	if opts.Mode == ModeRate && opts.Workers > 1 && bl.numBlocks > 1 {
		out.Write(encodeRateParallel(data, bl, opts))
		return out.Bytes(), nil
	}
	var w bitio.Writer
	s := getBlockScratch(bl.blockSize)
	for b := 0; b < bl.numBlocks; b++ {
		bl.gather(data, b, s.vals)
		encodeBlock(&w, s, bl, opts)
	}
	putBlockScratch(s)
	out.Write(w.Bytes())
	return out.Bytes(), nil
}

// rateGroup returns the number of fixed-rate blocks whose combined bit
// length is byte-aligned, so parallel workers can own whole groups and
// their buffers concatenate without bit shifting.
func rateGroup(opts Options, size int) int {
	bb := blockBits(opts.Param, size)
	g := 8 / gcdInt(bb, 8)
	return g
}

func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// encodeRateParallel compresses fixed-rate blocks with worker-owned
// byte-aligned groups; the output is bit-identical to the serial path.
func encodeRateParallel(data []float64, bl *blocker, opts Options) []byte {
	bb := blockBits(opts.Param, bl.blockSize)
	group := rateGroup(opts, bl.blockSize)
	groups := (bl.numBlocks + group - 1) / group
	bufs := make([][]byte, groups)
	parallel.For(groups, opts.Workers, func(lo, hi int) {
		s := getBlockScratch(bl.blockSize)
		defer putBlockScratch(s)
		for g := lo; g < hi; g++ {
			var w bitio.Writer
			for b := g * group; b < (g+1)*group && b < bl.numBlocks; b++ {
				bl.gather(data, b, s.vals)
				encodeBlock(&w, s, bl, opts)
			}
			bufs[g] = w.Bytes()
		}
	})
	total := (bl.numBlocks*bb + 7) / 8
	out := make([]byte, 0, total)
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}

func checkDims(data []float64, dims []int) error {
	if len(dims) < 1 || len(dims) > 3 {
		return fmt.Errorf("zfp: want 1-3 dims, got %d", len(dims))
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return fmt.Errorf("zfp: non-positive dimension %d", d)
		}
		n *= d
	}
	if n != len(data) {
		return fmt.Errorf("zfp: dims product %d != len(data) %d", n, len(data))
	}
	return nil
}

// DecompressProgressive decodes a fixed-rate stream at reduced
// precision: at most maxPlanes bit planes per block are consumed, the
// rest skipped — ZFP's progressive-access property (a low-resolution
// preview without reading/decoding full precision). maxPlanes <= 0
// decodes everything; non-rate streams are rejected.
func DecompressProgressive(buf []byte, maxPlanes, workers int) ([]float64, []int, error) {
	out, dims, mode, err := decompress(buf, maxPlanes, workers)
	if err != nil {
		return nil, nil, err
	}
	if maxPlanes > 0 && mode != ModeRate {
		return nil, nil, fmt.Errorf("zfp: progressive decode requires a fixed-rate stream, got %s", mode)
	}
	return out, dims, nil
}

// Decompress reverses Compress.
func Decompress(buf []byte) ([]float64, []int, error) {
	out, dims, _, err := decompress(buf, 0, 0)
	return out, dims, err
}

func decompress(buf []byte, maxPlanes, workers int) ([]float64, []int, Mode, error) {
	rd := bytes.NewReader(buf)
	hdr := make([]byte, len(magic))
	if _, err := rd.Read(hdr); err != nil || string(hdr) != magic {
		return nil, nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	var ver, modeB, ndims uint8
	if err := binRead(rd, &ver, &modeB, &ndims); err != nil {
		return nil, nil, 0, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if ver != version {
		return nil, nil, 0, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, ver)
	}
	mode := Mode(modeB)
	if mode != ModeAccuracy && mode != ModeRate && mode != ModePrecision {
		return nil, nil, 0, fmt.Errorf("%w: bad mode %d", ErrCorrupt, modeB)
	}
	if ndims < 1 || ndims > 3 {
		return nil, nil, 0, fmt.Errorf("%w: bad ndims %d", ErrCorrupt, ndims)
	}
	dims := make([]int, ndims)
	n := 1
	for i := range dims {
		var d uint32
		if err := binRead(rd, &d); err != nil {
			return nil, nil, 0, fmt.Errorf("%w: truncated dims", ErrCorrupt)
		}
		if d == 0 || d > maxDim {
			return nil, nil, 0, fmt.Errorf("%w: bad dimension %d", ErrCorrupt, d)
		}
		dims[i] = int(d)
		n *= int(d)
		if n > maxElements {
			return nil, nil, 0, fmt.Errorf("%w: element count overflows cap", ErrCorrupt)
		}
	}
	var paramBits uint64
	if err := binRead(rd, &paramBits); err != nil {
		return nil, nil, 0, fmt.Errorf("%w: truncated param", ErrCorrupt)
	}
	param := math.Float64frombits(paramBits)
	opts := Options{Mode: mode, Param: param, Workers: workers, maxDecodePlanes: maxPlanes}
	switch mode {
	case ModeAccuracy:
		if !(param > 0) || math.IsInf(param, 0) {
			return nil, nil, 0, fmt.Errorf("%w: bad tolerance", ErrCorrupt)
		}
	case ModeRate:
		if !(param > 0) || param > 64 {
			return nil, nil, 0, fmt.Errorf("%w: bad rate", ErrCorrupt)
		}
	case ModePrecision:
		if param < 1 || param > intPrec {
			return nil, nil, 0, fmt.Errorf("%w: bad precision", ErrCorrupt)
		}
	}

	headerLen := len(buf) - rd.Len()
	payload := buf[headerLen:]
	bl := newBlocker(dims)
	// Every block consumes at least one bit (the zero-block flag), so a
	// payload shorter than numBlocks bits cannot be a valid stream.
	// Rejecting it before sizing the output keeps allocations
	// proportional to the input instead of to header-claimed dims.
	if bl.numBlocks > 8*len(payload) {
		return nil, nil, 0, fmt.Errorf("%w: %d blocks cannot fit in %d payload bytes", ErrCorrupt, bl.numBlocks, len(payload))
	}
	out := make([]float64, n)
	if mode == ModeRate && opts.Workers > 1 && bl.numBlocks > 1 {
		if err := decodeRateParallel(payload, out, bl, opts); err != nil {
			return nil, nil, 0, err
		}
		return out, dims, mode, nil
	}
	br := bitio.NewReader(payload)
	s := getBlockScratch(bl.blockSize)
	defer putBlockScratch(s)
	for b := 0; b < bl.numBlocks; b++ {
		if err := decodeBlock(br, s, bl, opts); err != nil {
			return nil, nil, 0, err
		}
		bl.scatter(out, b, s.vals)
	}
	return out, dims, mode, nil
}

// decodeRateParallel is the random-access decode path: each worker
// seeks directly to its group's byte offset.
func decodeRateParallel(payload []byte, out []float64, bl *blocker, opts Options) error {
	bb := blockBits(opts.Param, bl.blockSize)
	group := rateGroup(opts, bl.blockSize)
	groups := (bl.numBlocks + group - 1) / group
	groupBytes := group * bb / 8
	return parallel.ForErr(groups, opts.Workers, func(lo, hi int) error {
		s := getBlockScratch(bl.blockSize)
		defer putBlockScratch(s)
		for g := lo; g < hi; g++ {
			off := g * groupBytes
			if off > len(payload) {
				return fmt.Errorf("%w: payload ends before group %d", ErrCorrupt, g)
			}
			br := bitio.NewReader(payload[off:])
			for b := g * group; b < (g+1)*group && b < bl.numBlocks; b++ {
				if err := decodeBlock(br, s, bl, opts); err != nil {
					return err
				}
				bl.scatter(out, b, s.vals)
			}
		}
		return nil
	})
}

func binWrite(w *bytes.Buffer, v interface{}) { _ = binary.Write(w, binary.LittleEndian, v) }

func binRead(r *bytes.Reader, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}
