package zfp

import (
	"math/rand"
	"testing"
)

func TestBlockerShapes(t *testing.T) {
	cases := []struct {
		dims      []int
		blockSize int
		numBlocks int
	}{
		{[]int{4}, 4, 1},
		{[]int{5}, 4, 2},
		{[]int{8, 8}, 16, 4},
		{[]int{9, 7}, 16, 3 * 2},
		{[]int{4, 4, 4}, 64, 1},
		{[]int{5, 9, 13}, 64, 2 * 3 * 4},
	}
	for _, c := range cases {
		bl := newBlocker(c.dims)
		if bl.blockSize != c.blockSize || bl.numBlocks != c.numBlocks {
			t.Fatalf("dims %v: got %d/%d, want %d/%d",
				c.dims, bl.blockSize, bl.numBlocks, c.blockSize, c.numBlocks)
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, dims := range [][]int{{7}, {9, 5}, {5, 6, 7}} {
		n := 1
		for _, d := range dims {
			n *= d
		}
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.Float64()
		}
		bl := newBlocker(dims)
		out := make([]float64, n)
		buf := make([]float64, bl.blockSize)
		for b := 0; b < bl.numBlocks; b++ {
			bl.gather(data, b, buf)
			bl.scatter(out, b, buf)
		}
		for i := range data {
			if out[i] != data[i] {
				t.Fatalf("dims %v: gather/scatter mismatch at %d", dims, i)
			}
		}
	}
}

func TestGatherClampsPadding(t *testing.T) {
	// A 5-wide 1D array: block 1 covers indices 4..7, clamped to 4.
	data := []float64{10, 20, 30, 40, 50}
	bl := newBlocker([]int{5})
	buf := make([]float64, 4)
	bl.gather(data, 1, buf)
	for i, want := range []float64{50, 50, 50, 50} {
		if buf[i] != want {
			t.Fatalf("padding[%d] = %g, want %g (edge replication)", i, buf[i], want)
		}
	}
}

func TestScatterSkipsPadding(t *testing.T) {
	data := make([]float64, 5)
	bl := newBlocker([]int{5})
	buf := []float64{1, 2, 3, 4}
	bl.scatter(data, 1, buf)
	if data[4] != 1 {
		t.Fatalf("in-range cell not written: %v", data)
	}
	// Nothing beyond index 4 exists; no panic is the assertion.
}

func TestBlockCoords(t *testing.T) {
	bl := newBlocker([]int{9, 7}) // 3 x 2 blocks
	c := bl.blockCoords(0)
	if c[0] != 0 || c[1] != 0 {
		t.Fatalf("block 0 coords %v", c)
	}
	c = bl.blockCoords(5) // last block: row 2, col 1
	if c[0] != 2 || c[1] != 1 {
		t.Fatalf("block 5 coords %v", c)
	}
}

func TestFreqWeightOrdering(t *testing.T) {
	// After the two-level S-transform, slot 0 is the DC average and
	// slots 2-3 the finest details; the sequency order must reflect it.
	p := sequencyPerm(2)
	// The all-DC position (0,0) -> linear 0 must come first; the
	// all-high position (3,3) -> linear 15 must come last.
	if p[0] != 0 {
		t.Fatalf("first coefficient %d, want 0", p[0])
	}
	if p[len(p)-1] != 15 {
		t.Fatalf("last coefficient %d, want 15", p[len(p)-1])
	}
}
