package zfp

import (
	"bytes"
	"math"
	"testing"
)

func TestParallelRateMatchesSerial(t *testing.T) {
	data, dims := smooth2D(96, 96, 60)
	for _, rate := range []float64{1, 2, 4, 7, 8, 12, 16} {
		serial, err := Compress(data, dims, Options{Mode: ModeRate, Param: rate})
		if err != nil {
			t.Fatalf("rate=%g: %v", rate, err)
		}
		for _, w := range []int{2, 3, 8} {
			par, err := Compress(data, dims, Options{Mode: ModeRate, Param: rate, Workers: w})
			if err != nil {
				t.Fatalf("rate=%g workers=%d: %v", rate, w, err)
			}
			if !bytes.Equal(serial, par) {
				t.Fatalf("rate=%g workers=%d: parallel encoding differs", rate, w)
			}
		}
	}
}

func TestParallelRateDecode(t *testing.T) {
	data, dims := smooth2D(64, 64, 61)
	buf, err := Compress(data, dims, Options{Mode: ModeRate, Param: 16, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	serial, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Parallel decode needs the Workers option at decompression time;
	// build opts through the internal path.
	bl := newBlocker(dims)
	out := make([]float64, len(data))
	headerLen := len(magic) + 3 + 4*len(dims) + 8
	if err := decodeRateParallel(buf[headerLen:], out, bl, Options{Mode: ModeRate, Param: 16, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if out[i] != serial[i] {
			t.Fatalf("parallel decode differs at %d", i)
		}
	}
}

func TestRateGroupAlignment(t *testing.T) {
	for _, rate := range []float64{1, 2, 3, 4, 5, 7, 8, 11, 16} {
		size := 16 // 2D block
		bb := blockBits(rate, size)
		g := rateGroup(Options{Mode: ModeRate, Param: rate}, size)
		if (g*bb)%8 != 0 {
			t.Fatalf("rate=%g: group of %d blocks (%d bits) not byte aligned", rate, g, g*bb)
		}
	}
}

func TestParallelAccuracyStaysSerial(t *testing.T) {
	// Variable-length modes cannot parallelize over blocks; Workers
	// must be silently ignored and results identical.
	data, dims := smooth2D(32, 32, 62)
	a, err := Compress(data, dims, Options{Mode: ModeAccuracy, Param: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compress(data, dims, Options{Mode: ModeAccuracy, Param: 0.01, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("accuracy mode must not depend on Workers")
	}
	got, _, err := Decompress(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(got[i]-data[i]) > 0.01 {
			t.Fatal("bound violated")
		}
	}
}
