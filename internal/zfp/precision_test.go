package zfp

import (
	"math"
	"testing"
)

func TestPrecisionModeRoundTrip(t *testing.T) {
	data, dims := smooth2D(48, 48, 50)
	for _, prec := range []float64{16, 32, 52} {
		buf, err := Compress(data, dims, Options{Mode: ModePrecision, Param: prec})
		if err != nil {
			t.Fatalf("prec=%g: %v", prec, err)
		}
		got, _, err := Decompress(buf)
		if err != nil {
			t.Fatalf("prec=%g: %v", prec, err)
		}
		// With prec planes kept, the worst-case coefficient error is
		// ~2^(emax + (intPrec-prec) - fixedPointBits); at 52 planes the
		// reconstruction is essentially exact for these magnitudes.
		var worst float64
		for i := range data {
			if d := math.Abs(got[i] - data[i]); d > worst {
				worst = d
			}
		}
		if prec == 52 && worst > 1e-9 {
			t.Fatalf("52 planes should be near-exact, worst %g", worst)
		}
		if prec == 16 && worst > 1 {
			t.Fatalf("16 planes wildly off: %g", worst)
		}
	}
}

func TestPrecisionMonotone(t *testing.T) {
	// More precision -> smaller error and larger stream.
	data, dims := smooth2D(32, 32, 51)
	var prevErr float64 = -1
	var prevLen int
	for _, prec := range []float64{8, 16, 32, 48} {
		buf, err := Compress(data, dims, Options{Mode: ModePrecision, Param: prec})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		for i := range data {
			if d := math.Abs(got[i] - data[i]); d > worst {
				worst = d
			}
		}
		if prevErr >= 0 {
			if worst > prevErr*1.001 {
				t.Fatalf("prec=%g: error %g grew from %g", prec, worst, prevErr)
			}
			if len(buf) < prevLen {
				t.Fatalf("prec=%g: stream shrank", prec)
			}
		}
		prevErr, prevLen = worst, len(buf)
	}
}

func TestPrecisionValidation(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	if _, err := Compress(data, []int{4}, Options{Mode: ModePrecision, Param: 0}); err == nil {
		t.Fatal("precision 0 must fail")
	}
	if _, err := Compress(data, []int{4}, Options{Mode: ModePrecision, Param: 65}); err == nil {
		t.Fatal("precision 65 must fail")
	}
	if _, err := Compress(data, []int{4}, Options{Mode: ModePrecision, Param: 8.5}); err == nil {
		t.Fatal("fractional precision must fail")
	}
	if ModePrecision.String() != "ZFP-Prec" {
		t.Fatal("mode name")
	}
}

func TestProgressiveDecode(t *testing.T) {
	data, dims := smooth2D(48, 48, 70)
	buf, err := Compress(data, dims, Options{Mode: ModeRate, Param: 24})
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	worstAt := map[int]float64{}
	for _, planes := range []int{4, 16, 0} { // 0 = everything
		got, gotDims, err := DecompressProgressive(buf, planes, 1)
		if err != nil {
			t.Fatalf("planes=%d: %v", planes, err)
		}
		if gotDims[0] != 48 {
			t.Fatalf("dims %v", gotDims)
		}
		var worst float64
		for i := range full {
			if d := math.Abs(got[i] - full[i]); d > worst {
				worst = d
			}
		}
		worstAt[planes] = worst
	}
	if worstAt[0] != 0 {
		t.Fatalf("full progressive decode must match Decompress, worst %g", worstAt[0])
	}
	// Negabinary truncation error is not strictly monotone per plane,
	// but over a wide gap more planes must mean (much) less error.
	if worstAt[16] >= worstAt[4]/2 {
		t.Fatalf("16 planes (err %g) should beat 4 planes (err %g) decisively",
			worstAt[16], worstAt[4])
	}
	if worstAt[4] == 0 {
		t.Fatal("4-plane decode should differ from full precision")
	}
}

func TestProgressiveRejectsVariableLengthModes(t *testing.T) {
	data, dims := smooth2D(16, 16, 71)
	buf, err := Compress(data, dims, Options{Mode: ModeAccuracy, Param: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecompressProgressive(buf, 8, 1); err == nil {
		t.Fatal("progressive decode of an accuracy stream must fail")
	}
	// maxPlanes <= 0 is a plain decode and works for any mode.
	if _, _, err := DecompressProgressive(buf, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRateTooLowForBlockHeaderRejected(t *testing.T) {
	// 1D blocks hold 4 values; rate 1 gives 4 bits per block, below
	// the 13-bit block header — an undecodable stream if allowed.
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := Compress(data, []int{8}, Options{Mode: ModeRate, Param: 1}); err == nil {
		t.Fatal("1D rate 1 must be rejected")
	}
	// Rate 4 (16 bits/block) is fine in 1D.
	buf, err := Compress(data, []int{8}, Options{Mode: ModeRate, Param: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decompress(buf); err != nil {
		t.Fatal(err)
	}
	// 2D rate 1 stays legal (16 bits per 16-value block).
	d2 := make([]float64, 16)
	if _, err := Compress(d2, []int{4, 4}, Options{Mode: ModeRate, Param: 1}); err != nil {
		t.Fatal(err)
	}
}
