package zfp

// blocker maps between the row-major data array and 4^d blocks,
// replicating edge values into partial blocks (ZFP's padding scheme)
// so every block is full.
type blocker struct {
	dims      []int // row-major: dims[0] slowest
	nd        int
	blockSize int   // 4^nd
	nBlk      []int // blocks along each dim
	numBlocks int
	perm      []int // sequency-order permutation of block-local indices
}

func newBlocker(dims []int) *blocker {
	b := &blocker{dims: dims, nd: len(dims)}
	b.blockSize = 1
	for i := 0; i < b.nd; i++ {
		b.blockSize *= 4
	}
	b.nBlk = make([]int, b.nd)
	b.numBlocks = 1
	for i, d := range dims {
		b.nBlk[i] = (d + 3) / 4
		b.numBlocks *= b.nBlk[i]
	}
	b.perm = sequencyPerm(b.nd)
	return b
}

// freqWeight orders block-local per-axis offsets by frequency after the
// two-level S-transform: slot 0 holds the DC average, slot 1 the
// level-2 detail, slots 2-3 the level-1 details.
var freqWeight = [4]int{0, 1, 2, 2}

// sequencyPerm returns block-local linear indices sorted by total
// frequency (low first), ZFP's "total sequency" coefficient order.
func sequencyPerm(nd int) []int {
	size := 1
	for i := 0; i < nd; i++ {
		size *= 4
	}
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	weight := func(i int) int {
		w := 0
		for d := 0; d < nd; d++ {
			w += freqWeight[i&3]
			i >>= 2
		}
		return w
	}
	// Insertion sort by (weight, index): size <= 64, stability matters
	// only for determinism.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j-1], idx[j]
			if weight(a) > weight(b) || (weight(a) == weight(b) && a > b) {
				idx[j-1], idx[j] = b, a
			} else {
				break
			}
		}
	}
	return idx
}

// blockCoords decomposes block index b into per-dim block coordinates
// (slowest dim first).
func (bl *blocker) blockCoords(b int) [3]int {
	var c [3]int
	for i := bl.nd - 1; i >= 0; i-- {
		c[i] = b % bl.nBlk[i]
		b /= bl.nBlk[i]
	}
	return c
}

// gather copies block b of data into dst (length blockSize), clamping
// out-of-range coordinates to the array edge.
func (bl *blocker) gather(data []float64, b int, dst []float64) {
	bc := bl.blockCoords(b)
	switch bl.nd {
	case 1:
		d0 := bl.dims[0]
		for i := 0; i < 4; i++ {
			x := clamp(bc[0]*4+i, d0)
			dst[i] = data[x]
		}
	case 2:
		d0, d1 := bl.dims[0], bl.dims[1]
		for i := 0; i < 4; i++ {
			x0 := clamp(bc[0]*4+i, d0)
			for j := 0; j < 4; j++ {
				x1 := clamp(bc[1]*4+j, d1)
				dst[i*4+j] = data[x0*d1+x1]
			}
		}
	default:
		d0, d1, d2 := bl.dims[0], bl.dims[1], bl.dims[2]
		for i := 0; i < 4; i++ {
			x0 := clamp(bc[0]*4+i, d0)
			for j := 0; j < 4; j++ {
				x1 := clamp(bc[1]*4+j, d1)
				for k := 0; k < 4; k++ {
					x2 := clamp(bc[2]*4+k, d2)
					dst[(i*4+j)*4+k] = data[(x0*d1+x1)*d2+x2]
				}
			}
		}
	}
}

// scatter writes block b back into out, skipping padded positions.
func (bl *blocker) scatter(out []float64, b int, src []float64) {
	bc := bl.blockCoords(b)
	switch bl.nd {
	case 1:
		d0 := bl.dims[0]
		for i := 0; i < 4; i++ {
			if x := bc[0]*4 + i; x < d0 {
				out[x] = src[i]
			}
		}
	case 2:
		d0, d1 := bl.dims[0], bl.dims[1]
		for i := 0; i < 4; i++ {
			x0 := bc[0]*4 + i
			if x0 >= d0 {
				continue
			}
			for j := 0; j < 4; j++ {
				if x1 := bc[1]*4 + j; x1 < d1 {
					out[x0*d1+x1] = src[i*4+j]
				}
			}
		}
	default:
		d0, d1, d2 := bl.dims[0], bl.dims[1], bl.dims[2]
		for i := 0; i < 4; i++ {
			x0 := bc[0]*4 + i
			if x0 >= d0 {
				continue
			}
			for j := 0; j < 4; j++ {
				x1 := bc[1]*4 + j
				if x1 >= d1 {
					continue
				}
				for k := 0; k < 4; k++ {
					if x2 := bc[2]*4 + k; x2 < d2 {
						out[(x0*d1+x1)*d2+x2] = src[(i*4+j)*4+k]
					}
				}
			}
		}
	}
}

func clamp(x, n int) int {
	if x >= n {
		return n - 1
	}
	return x
}

// fwdLift applies the exactly invertible two-level S-transform to the
// 4-vector at p[0], p[s], p[2s], p[3s]:
//
//	level 1: (x0,x1) -> (l0,h0), (x2,x3) -> (l1,h1)
//	level 2: (l0,l1) -> (ll,hl)
//	output slots: [ll, hl, h0, h1]
func fwdLift(p []int64, s int) {
	x0, x1, x2, x3 := p[0], p[s], p[2*s], p[3*s]
	l0, h0 := sFwd(x0, x1)
	l1, h1 := sFwd(x2, x3)
	ll, hl := sFwd(l0, l1)
	p[0], p[s], p[2*s], p[3*s] = ll, hl, h0, h1
}

// invLift inverts fwdLift.
func invLift(p []int64, s int) {
	ll, hl, h0, h1 := p[0], p[s], p[2*s], p[3*s]
	l0, l1 := sInv(ll, hl)
	x0, x1 := sInv(l0, h0)
	x2, x3 := sInv(l1, h1)
	p[0], p[s], p[2*s], p[3*s] = x0, x1, x2, x3
}

// sFwd is the exact integer S-transform: l = floor((a+b)/2), h = a-b.
func sFwd(a, b int64) (l, h int64) {
	return (a + b) >> 1, a - b
}

// sInv inverts sFwd: a = l + (h + (h&1))/2, b = a - h.
func sInv(l, h int64) (a, b int64) {
	a = l + ((h + (h & 1)) >> 1)
	return a, a - h
}

// fwdXformRef is the scalar reference implementation of fwdXform,
// lifting one strided 4-vector at a time. Retained for differential
// tests and as the benchmark baseline of the unrolled kernels in
// xform.go (the integer S-transform is exactly associative, so the
// unrolled variants are bit-identical by construction — the tests pin
// that).
func fwdXformRef(c []int64, nd int) {
	switch nd {
	case 1:
		fwdLift(c, 1)
	case 2:
		for y := 0; y < 4; y++ { // along x (fastest axis)
			fwdLift(c[y*4:], 1)
		}
		for x := 0; x < 4; x++ { // along y
			fwdLift(c[x:], 4)
		}
	default:
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				fwdLift(c[(z*4+y)*4:], 1)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				fwdLift(c[z*16+x:], 4)
			}
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				fwdLift(c[y*4+x:], 16)
			}
		}
	}
}

// invXformRef is the scalar reference implementation of invXform
// (axes in reverse order).
func invXformRef(c []int64, nd int) {
	switch nd {
	case 1:
		invLift(c, 1)
	case 2:
		for x := 0; x < 4; x++ {
			invLift(c[x:], 4)
		}
		for y := 0; y < 4; y++ {
			invLift(c[y*4:], 1)
		}
	default:
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				invLift(c[y*4+x:], 16)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				invLift(c[z*16+x:], 4)
			}
		}
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				invLift(c[(z*4+y)*4:], 1)
			}
		}
	}
}

// negabinary mask for signed<->unsigned mapping (ZFP's int2uint).
const nbMask = 0xaaaaaaaaaaaaaaaa

//arcvet:ignore mathbits negabinary deliberately reinterprets the sign bit pattern
func int2uint(x int64) uint64 { return (uint64(x) + nbMask) ^ nbMask }

//arcvet:ignore mathbits negabinary deliberately reinterprets the sign bit pattern
func uint2int(x uint64) int64 { return int64((x ^ nbMask) - nbMask) }
