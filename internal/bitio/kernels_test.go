package bitio

import (
	"bytes"
	"math/rand"
	"testing"
)

// refWriteBits is the scalar reference for WriteBits: one WriteBit per
// bit, exactly the original implementation.
func refWriteBits(w *Writer, v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(uint(v >> uint(i)))
	}
}

// refReadBits is the scalar reference for ReadBits.
func refReadBits(r *Reader, n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// randomFields produces a deterministic mixed-width (value, width)
// sequence that lands on every alignment.
func randomFields(seed int64, count int) (vals []uint64, widths []int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < count; i++ {
		n := rng.Intn(65) // 0..64
		vals = append(vals, rng.Uint64())
		widths = append(widths, n)
	}
	return vals, widths
}

// TestWriteBitsMatchesRef writes the same field sequence through the
// accumulator path and the per-bit reference and requires identical
// buffers at every prefix length.
func TestWriteBitsMatchesRef(t *testing.T) {
	vals, widths := randomFields(20, 4000)
	var fast, ref Writer
	for i := range vals {
		fast.WriteBits(vals[i], widths[i])
		refWriteBits(&ref, vals[i], widths[i])
		if fast.Len() != ref.Len() {
			t.Fatalf("field %d (width %d): Len %d != %d", i, widths[i], fast.Len(), ref.Len())
		}
	}
	if !bytes.Equal(fast.Bytes(), ref.Bytes()) {
		t.Fatal("accumulator WriteBits diverges from per-bit reference")
	}
}

// TestWriteBitsInterleavedWithWriteBit mixes single-bit and multi-bit
// writes so the accumulator sees every residual fill level.
func TestWriteBitsInterleavedWithWriteBit(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var fast, ref Writer
	for i := 0; i < 3000; i++ {
		if rng.Intn(2) == 0 {
			b := uint(rng.Intn(2))
			fast.WriteBit(b)
			ref.WriteBit(b)
		} else {
			v, n := rng.Uint64(), rng.Intn(65)
			fast.WriteBits(v, n)
			refWriteBits(&ref, v, n)
		}
	}
	if !bytes.Equal(fast.Bytes(), ref.Bytes()) {
		t.Fatal("interleaved WriteBit/WriteBits diverges from reference")
	}
}

// TestReadBitsMatchesRef reads mixed-width fields from a shared random
// buffer through both paths, from every starting bit offset.
func TestReadBitsMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	buf := make([]byte, 300)
	rng.Read(buf)
	for off := 0; off < 16; off++ {
		fast, ref := NewReader(buf), NewReader(buf)
		if err := fast.Skip(off); err != nil {
			t.Fatal(err)
		}
		if err := ref.Skip(off); err != nil {
			t.Fatal(err)
		}
		for {
			n := rng.Intn(65)
			got, gotErr := fast.ReadBits(n)
			want, wantErr := refReadBits(ref, n)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("off=%d n=%d: error mismatch %v vs %v", off, n, gotErr, wantErr)
			}
			if gotErr != nil {
				break
			}
			if got != want {
				t.Fatalf("off=%d n=%d pos=%d: %#x != %#x", off, n, ref.Pos(), got, want)
			}
			if fast.Pos() != ref.Pos() {
				t.Fatalf("off=%d: positions diverged %d vs %d", off, fast.Pos(), ref.Pos())
			}
		}
	}
}

// TestReadBitsNearEnd covers the word loader's zero-padded tail: reads
// that end exactly at, or one bit before, the buffer boundary.
func TestReadBitsNearEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for size := 1; size <= 12; size++ {
		buf := make([]byte, size)
		rng.Read(buf)
		total := size * 8
		for n := 0; n <= 64 && n <= total; n++ {
			r := NewReader(buf)
			if err := r.Skip(total - n); err != nil {
				t.Fatal(err)
			}
			got, err := r.ReadBits(n)
			if err != nil {
				t.Fatalf("size=%d n=%d: %v", size, n, err)
			}
			ref := NewReader(buf)
			if err := ref.Skip(total - n); err != nil {
				t.Fatal(err)
			}
			want, err := refReadBits(ref, n)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("size=%d n=%d: %#x != %#x", size, n, got, want)
			}
			// One past the end must fail without advancing.
			if _, err := r.ReadBits(1); err == nil {
				t.Fatalf("size=%d: read past end succeeded", size)
			}
		}
	}
}

// TestPeekMatchesRef pins Peek's word extraction to a per-bit walk,
// including the zero-padded short tail.
func TestPeekMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	buf := make([]byte, 40)
	rng.Read(buf)
	total := len(buf) * 8
	for pos := 0; pos <= total; pos++ {
		for _, n := range []int{0, 1, 7, 8, 12, 13, 31, 57, 63, 64} {
			r := NewReader(buf)
			if err := r.Skip(pos); err != nil {
				t.Fatal(err)
			}
			got, gotAvail := r.Peek(n)
			wantAvail := total - pos
			if wantAvail > n {
				wantAvail = n
			}
			var want uint64
			ref := NewReader(buf)
			if err := ref.Skip(pos); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < wantAvail; i++ {
				b, err := ref.ReadBit()
				if err != nil {
					t.Fatal(err)
				}
				want = want<<1 | uint64(b)
			}
			want <<= uint(n - wantAvail)
			if got != want || gotAvail != wantAvail {
				t.Fatalf("pos=%d n=%d: (%#x,%d) != (%#x,%d)", pos, n, got, gotAvail, want, wantAvail)
			}
			if r.Pos() != pos {
				t.Fatalf("Peek advanced the reader: %d -> %d", pos, r.Pos())
			}
		}
	}
}

// TestRoundTripFields writes a random field sequence and reads it back
// bit-exactly through the fast paths.
func TestRoundTripFields(t *testing.T) {
	vals, widths := randomFields(25, 2000)
	var w Writer
	for i := range vals {
		w.WriteBits(vals[i], widths[i])
	}
	r := NewReader(w.Bytes())
	for i := range vals {
		got, err := r.ReadBits(widths[i])
		if err != nil {
			t.Fatalf("field %d: %v", i, err)
		}
		want := vals[i]
		if widths[i] < 64 {
			want &= 1<<uint(widths[i]) - 1
		}
		if got != want {
			t.Fatalf("field %d (width %d): %#x != %#x", i, widths[i], got, want)
		}
	}
}
