// Package bitio provides MSB-first bit-granular readers and writers
// over byte slices, shared by the Huffman coder (internal/huffman) and
// the ZFP-like embedded bit-plane coder (internal/zfp).
package bitio

import "io"

// Writer accumulates bits MSB-first into an in-memory buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  byte
	nCur int // bits currently in cur (0..7)
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	w.cur = w.cur<<1 | byte(b&1)
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(uint(v >> i))
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return len(w.buf)*8 + w.nCur }

// Bytes flushes any partial byte (zero padded on the right) and
// returns the accumulated buffer. The Writer remains usable; further
// writes continue after the flushed padding, so callers should only
// call Bytes once when finished.
func (w *Writer) Bytes() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.nCur))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int // absolute bit position
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBit returns the next bit. It returns io.ErrUnexpectedEOF when
// the buffer is exhausted — corrupted streams routinely run off the
// end, and the fault-injection harness classifies that as a
// compressor exception rather than a crash.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= len(r.buf)*8 {
		return 0, io.ErrUnexpectedEOF
	}
	b := uint(r.buf[r.pos/8]>>(7-r.pos%8)) & 1
	r.pos++
	return b, nil
}

// ReadBits returns the next n bits (MSB first). n must be in [0, 64].
func (r *Reader) ReadBits(n int) (uint64, error) {
	if r.pos+n > len(r.buf)*8 {
		return 0, io.ErrUnexpectedEOF
	}
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<1 | uint64(r.buf[r.pos/8]>>(7-r.pos%8)&1)
		r.pos++
	}
	return v, nil
}

// Pos returns the current absolute bit position.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.buf)*8 - r.pos }

// Skip advances the position by n bits, which may leave the reader at
// end of buffer but returns io.ErrUnexpectedEOF if it would go beyond.
func (r *Reader) Skip(n int) error {
	if r.pos+n > len(r.buf)*8 {
		return io.ErrUnexpectedEOF
	}
	r.pos += n
	return nil
}

// AlignByte advances to the next byte boundary (no-op when aligned).
func (r *Reader) AlignByte() {
	if rem := r.pos % 8; rem != 0 {
		r.pos += 8 - rem
	}
}

// Peek returns the next n bits (MSB first) without advancing. When
// fewer than n bits remain, the missing low bits are zero and avail
// reports how many were real. n must be in [0, 64].
func (r *Reader) Peek(n int) (v uint64, avail int) {
	total := len(r.buf) * 8
	avail = total - r.pos
	if avail > n {
		avail = n
	}
	pos := r.pos
	for i := 0; i < avail; i++ {
		v = v<<1 | uint64(r.buf[pos/8]>>(7-pos%8)&1)
		pos++
	}
	v <<= uint(n - avail)
	return v, avail
}
