// Package bitio provides MSB-first bit-granular readers and writers
// over byte slices, shared by the Huffman coder (internal/huffman) and
// the ZFP-like embedded bit-plane coder (internal/zfp).
//
// Both directions run word-at-a-time: the Writer batches bits in a
// 64-bit accumulator and flushes whole bytes, and the Reader extracts
// multi-bit fields from 8-byte loads instead of walking bit by bit.
// The bit stream layout is unchanged from the original per-bit
// implementation — see docs/KERNELS.md for the equivalence argument.
package bitio

import (
	"encoding/binary"
	"io"
)

// Writer accumulates bits MSB-first into an in-memory buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	acc  uint64 // pending bits in the low nAcc positions, oldest highest
	nAcc int    // bits currently in acc (0..7 between calls)
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	w.acc = w.acc<<1 | uint64(b&1)
	w.nAcc++
	if w.nAcc == 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc, w.nAcc = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n int) {
	if n < 64 {
		v &= 1<<uint(n) - 1
	}
	if w.nAcc+n > 64 {
		// acc holds at most 7 residual bits, so only fields wider than
		// 57 bits can overflow the accumulator; split the field and
		// recurse (each half fits).
		w.WriteBits(v>>32, n-32)
		w.WriteBits(v&0xFFFFFFFF, 32)
		return
	}
	w.acc = w.acc<<uint(n) | v
	w.nAcc += n
	for w.nAcc >= 8 {
		w.nAcc -= 8
		w.buf = append(w.buf, byte(w.acc>>uint(w.nAcc)))
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return len(w.buf)*8 + w.nAcc }

// Bytes flushes any partial byte (zero padded on the right) and
// returns the accumulated buffer. The Writer remains usable; further
// writes continue after the flushed padding, so callers should only
// call Bytes once when finished.
func (w *Writer) Bytes() []byte {
	if w.nAcc > 0 {
		// Only the low nAcc bits of acc are live; bits above them may
		// be stale from earlier flushes.
		w.buf = append(w.buf, byte(w.acc&(1<<uint(w.nAcc)-1))<<(8-w.nAcc))
		w.acc, w.nAcc = 0, 0
	}
	return w.buf
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int // absolute bit position
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBit returns the next bit. It returns io.ErrUnexpectedEOF when
// the buffer is exhausted — corrupted streams routinely run off the
// end, and the fault-injection harness classifies that as a
// compressor exception rather than a crash.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= len(r.buf)*8 {
		return 0, io.ErrUnexpectedEOF
	}
	b := uint(r.buf[r.pos/8]>>(7-r.pos%8)) & 1
	r.pos++
	return b, nil
}

// loadWord returns the 64 bits starting at byte index bi, MSB-first,
// zero padded past the end of the buffer.
func (r *Reader) loadWord(bi int) uint64 {
	if bi+8 <= len(r.buf) {
		return binary.BigEndian.Uint64(r.buf[bi:])
	}
	var w uint64
	for i := bi; i < len(r.buf); i++ {
		w = w<<8 | uint64(r.buf[i])
	}
	return w << (8 * uint(8-(len(r.buf)-bi)))
}

// extract returns the n bits starting at bit position pos. The caller
// guarantees pos+n <= len(buf)*8 (reading past the end is confined to
// loadWord's zero padding) and n in [1, 64].
func (r *Reader) extract(pos, n int) uint64 {
	bi, off := pos>>3, uint(pos&7)
	w := r.loadWord(bi)
	if int(off)+n <= 64 {
		return w << off >> uint(64-n)
	}
	// The field straddles the 8-byte window: take the window's last
	// 64-off bits, then the remainder (at most 7 bits) from the next
	// byte.
	k := 64 - int(off)
	rem := uint(n - k)
	return w<<off>>uint(64-k)<<rem | r.loadWord(bi+8)>>(64-rem)
}

// ReadBits returns the next n bits (MSB first). n must be in [0, 64].
func (r *Reader) ReadBits(n int) (uint64, error) {
	if r.pos+n > len(r.buf)*8 {
		return 0, io.ErrUnexpectedEOF
	}
	if n == 0 {
		return 0, nil
	}
	v := r.extract(r.pos, n)
	r.pos += n
	return v, nil
}

// Pos returns the current absolute bit position.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.buf)*8 - r.pos }

// Skip advances the position by n bits, which may leave the reader at
// end of buffer but returns io.ErrUnexpectedEOF if it would go beyond.
func (r *Reader) Skip(n int) error {
	if r.pos+n > len(r.buf)*8 {
		return io.ErrUnexpectedEOF
	}
	r.pos += n
	return nil
}

// AlignByte advances to the next byte boundary (no-op when aligned).
func (r *Reader) AlignByte() {
	if rem := r.pos % 8; rem != 0 {
		r.pos += 8 - rem
	}
}

// Peek returns the next n bits (MSB first) without advancing. When
// fewer than n bits remain, the missing low bits are zero and avail
// reports how many were real. n must be in [0, 64].
func (r *Reader) Peek(n int) (v uint64, avail int) {
	avail = len(r.buf)*8 - r.pos
	if avail > n {
		avail = n
	}
	if avail > 0 {
		v = r.extract(r.pos, avail) << uint(n-avail)
	}
	return v, avail
}
