package bitio

import (
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	var w Writer
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 3)
	w.WriteBit(1)
	buf := w.Bytes()
	r := NewReader(buf)
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Fatalf("got %b", v)
	}
	if v, _ := r.ReadBits(8); v != 0xFF {
		t.Fatalf("got %x", v)
	}
	if v, _ := r.ReadBits(3); v != 0 {
		t.Fatalf("got %b", v)
	}
	if v, _ := r.ReadBit(); v != 1 {
		t.Fatalf("got %d", v)
	}
}

func TestLen(t *testing.T) {
	var w Writer
	if w.Len() != 0 {
		t.Fatal("empty writer must have Len 0")
	}
	w.WriteBits(0, 13)
	if w.Len() != 13 {
		t.Fatalf("Len = %d, want 13", w.Len())
	}
	if got := len(w.Bytes()); got != 2 {
		t.Fatalf("Bytes len = %d, want 2 (13 bits padded)", got)
	}
}

func TestPaddingIsZero(t *testing.T) {
	var w Writer
	w.WriteBits(0b111, 3)
	buf := w.Bytes()
	if buf[0] != 0b11100000 {
		t.Fatalf("padding wrong: %08b", buf[0])
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader([]byte{0xAB})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != io.ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
	r2 := NewReader([]byte{0xAB})
	if _, err := r2.ReadBits(9); err != io.ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF for over-read, got %v", err)
	}
}

func TestSkipAndPos(t *testing.T) {
	r := NewReader([]byte{0xF0, 0x0F})
	if err := r.Skip(4); err != nil {
		t.Fatal(err)
	}
	if r.Pos() != 4 || r.Remaining() != 12 {
		t.Fatalf("pos=%d rem=%d", r.Pos(), r.Remaining())
	}
	if v, _ := r.ReadBits(8); v != 0x00 {
		t.Fatalf("got %x", v)
	}
	if err := r.Skip(5); err != io.ErrUnexpectedEOF {
		t.Fatalf("over-skip must fail, got %v", err)
	}
}

func TestAlignByte(t *testing.T) {
	r := NewReader([]byte{0x00, 0xFF})
	_, _ = r.ReadBits(3)
	r.AlignByte()
	if r.Pos() != 8 {
		t.Fatalf("pos = %d, want 8", r.Pos())
	}
	r.AlignByte() // aligned: no-op
	if r.Pos() != 8 {
		t.Fatal("AlignByte on boundary must be a no-op")
	}
}

func TestRoundTripRandomFields(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	type field struct {
		v uint64
		n int
	}
	var fields []field
	var w Writer
	for i := 0; i < 1000; i++ {
		n := 1 + rng.Intn(64)
		v := rng.Uint64() & (^uint64(0) >> (64 - n))
		fields = append(fields, field{v, n})
		w.WriteBits(v, n)
	}
	r := NewReader(w.Bytes())
	for i, f := range fields {
		got, err := r.ReadBits(f.n)
		if err != nil {
			t.Fatalf("field %d: %v", i, err)
		}
		if got != f.v {
			t.Fatalf("field %d: got %x want %x (n=%d)", i, got, f.v, f.n)
		}
	}
}

func TestQuickSingleValueRoundTrip(t *testing.T) {
	prop := func(v uint64, n8 uint8) bool {
		n := 1 + int(n8)%64
		v &= ^uint64(0) >> (64 - n)
		var w Writer
		w.WriteBits(v, n)
		got, err := NewReader(w.Bytes()).ReadBits(n)
		return err == nil && got == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPeekDoesNotAdvance(t *testing.T) {
	r := NewReader([]byte{0b10110100, 0xFF})
	v, avail := r.Peek(5)
	if avail != 5 || v != 0b10110 {
		t.Fatalf("peek = %b avail %d", v, avail)
	}
	if r.Pos() != 0 {
		t.Fatal("Peek must not advance")
	}
	got, _ := r.ReadBits(5)
	if got != 0b10110 {
		t.Fatal("read after peek mismatch")
	}
	// Peek past the end: zero padded, avail reports truth.
	r2 := NewReader([]byte{0b11000000})
	v, avail = r2.Peek(12)
	if avail != 8 {
		t.Fatalf("avail = %d, want 8", avail)
	}
	if v != 0b110000000000 {
		t.Fatalf("padded peek = %012b", v)
	}
	// Empty reader.
	if _, avail := NewReader(nil).Peek(8); avail != 0 {
		t.Fatal("empty peek must report 0 available")
	}
}
