//go:build amd64

package gf256

// amd64 tier ladder: avx2 > ssse3 > word. Feature bits are detected
// once at package init (before dispatch.go's init runs, per the spec's
// variable-before-init ordering); the use* booleans are what the hot
// paths branch on and are rewritten by applyTier.

var hasSSSE3, hasAVX2 = detectAMD64()

var (
	useSSSE3 bool
	useAVX2  bool
)

// detectAMD64 probes CPUID. SSSE3 is CPUID.1:ECX bit 9. AVX2 needs the
// instruction set (CPUID.7.0:EBX bit 5) and YMM state: OSXSAVE and AVX
// (CPUID.1:ECX bits 27/28) plus XCR0 bits 1-2 confirming the OS saves
// XMM+YMM registers across context switches.
func detectAMD64() (ssse3, avx2 bool) {
	maxLeaf, _, _, _ := cpuid(0)
	_, _, ecx1, _ := cpuid(1)
	ssse3 = ecx1&(1<<9) != 0
	const osxsaveAVX = 1<<27 | 1<<28
	if maxLeaf >= 7 && ecx1&osxsaveAVX == osxsaveAVX {
		if xcr0, _ := xgetbv(); xcr0&0x6 == 0x6 {
			_, ebx7, _, _ := cpuid(7)
			avx2 = ebx7&(1<<5) != 0
		}
	}
	return ssse3, avx2
}

func features() []string {
	var f []string
	if hasAVX2 {
		f = append(f, TierAVX2)
	}
	if hasSSSE3 {
		f = append(f, TierSSSE3)
	}
	return f
}

// applyTier activates the named tier. A wider tier implies the
// narrower ones below it (an avx2 dispatch still uses the ssse3 kernel
// for 16-31 byte slices).
func applyTier(name string) error {
	switch name {
	case TierAVX2:
		if !hasAVX2 {
			return errUnsupportedTier(name)
		}
		useAVX2, useSSSE3 = true, true
	case TierSSSE3:
		if !hasSSSE3 {
			return errUnsupportedTier(name)
		}
		useAVX2, useSSSE3 = false, true
	case TierWord:
		useAVX2, useSSSE3 = false, false
	default:
		return errUnsupportedTier(name)
	}
	activeTierName = name
	return nil
}

// mulXorSIMD applies dst[i] ^= c*src[i] to a SIMD-width prefix and
// returns how many bytes it handled (0 = caller takes the word path).
func mulXorSIMD(c byte, src, dst []byte) int {
	if useAVX2 && len(src) >= 32 {
		n := len(src) &^ 31
		gfMulXorAVX2(&nibTables[c], src[:n], dst[:n])
		return n
	}
	if useSSSE3 && len(src) >= 16 {
		n := len(src) &^ 15
		gfMulXorNib(&nibTables[c], src[:n], dst[:n])
		return n
	}
	return 0
}

// mulAssignSIMD is the overwrite variant of mulXorSIMD.
func mulAssignSIMD(c byte, src, dst []byte) int {
	if useAVX2 && len(src) >= 32 {
		n := len(src) &^ 31
		gfMulAVX2(&nibTables[c], src[:n], dst[:n])
		return n
	}
	if useSSSE3 && len(src) >= 16 {
		n := len(src) &^ 15
		gfMulNib(&nibTables[c], src[:n], dst[:n])
		return n
	}
	return 0
}

// xorSIMD applies dst[i] ^= src[i] to a SIMD-width prefix and returns
// how many bytes it handled. Only the 32-byte AVX2 lane beats the
// portable word loop; SSSE3-class XOR is no wider than uint64 pairs,
// so the ssse3 tier keeps the word path here.
func xorSIMD(src, dst []byte) int {
	if useAVX2 && len(src) >= 32 {
		n := len(src) &^ 31
		gfXorAVX2(src[:n], dst[:n])
		return n
	}
	return 0
}
