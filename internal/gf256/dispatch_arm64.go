//go:build arm64

package gf256

// arm64 tier ladder: neon > word. Advanced SIMD (NEON) is an
// architectural requirement of AArch64, so there is no HWCAP probe —
// the TBL kernels are always available and only the ARC_SIMD override
// can demote the dispatch to the word tier.

var useNEON bool

func features() []string { return []string{TierNEON} }

func applyTier(name string) error {
	switch name {
	case TierNEON:
		useNEON = true
	case TierWord:
		useNEON = false
	default:
		return errUnsupportedTier(name)
	}
	activeTierName = name
	return nil
}

// mulXorSIMD applies dst[i] ^= c*src[i] to a SIMD-width prefix and
// returns how many bytes it handled (0 = caller takes the word path).
func mulXorSIMD(c byte, src, dst []byte) int {
	if useNEON && len(src) >= 16 {
		n := len(src) &^ 15
		gfMulXorNEON(&nibTables[c], src[:n], dst[:n])
		return n
	}
	return 0
}

// mulAssignSIMD is the overwrite variant of mulXorSIMD.
func mulAssignSIMD(c byte, src, dst []byte) int {
	if useNEON && len(src) >= 16 {
		n := len(src) &^ 15
		gfMulNEON(&nibTables[c], src[:n], dst[:n])
		return n
	}
	return 0
}

// xorSIMD applies dst[i] ^= src[i] to a SIMD-width prefix and returns
// how many bytes it handled.
func xorSIMD(src, dst []byte) int {
	if useNEON && len(src) >= 16 {
		n := len(src) &^ 15
		gfXorNEON(src[:n], dst[:n])
		return n
	}
	return 0
}

// gfMulXorNEON computes dst[i] ^= tab-multiply(src[i]) over len(src)
// bytes, which must be a multiple of 16 and equal len(dst).
// Implemented in mul_arm64.s.
func gfMulXorNEON(tab *[32]byte, src, dst []byte)

// gfMulNEON computes dst[i] = tab-multiply(src[i]) (overwrite, not
// accumulate) with the same contract as gfMulXorNEON.
// Implemented in mul_arm64.s.
func gfMulNEON(tab *[32]byte, src, dst []byte)

// gfXorNEON computes dst[i] ^= src[i] over len(src) bytes, a multiple
// of 16. Implemented in mul_arm64.s.
func gfXorNEON(src, dst []byte)
