package gf256

import (
	"fmt"
	"os"
	"strings"
)

// Runtime SIMD dispatch. Each architecture contributes a ladder of
// tiers (widest first); the slice kernels consult the active tier on
// every call and fall through to the portable uint64 word path when no
// SIMD tier applies. The tier is chosen once at init from CPU feature
// detection, optionally capped by the ARC_SIMD environment variable so
// every compiled-in tier is testable on one host. The scalar reference
// implementations (MulSliceRef and friends) sit below the word tier
// and are never dispatched to — they exist as differential-test
// oracles and benchmark baselines.
const (
	// TierAVX2 is the amd64 32-byte VPSHUFB path.
	TierAVX2 = "avx2"
	// TierSSSE3 is the amd64 16-byte PSHUFB path.
	TierSSSE3 = "ssse3"
	// TierNEON is the arm64 16-byte TBL path.
	TierNEON = "neon"
	// TierWord is the portable uint64-lane path, available everywhere.
	TierWord = "word"
)

// SIMDEnv is the environment variable consulted at init to cap the
// dispatch tier: one of the tier names above, "off"/"none"/"scalar"
// (aliases for "word"), or ""/"auto" for the best supported tier.
// Unsupported or unknown values fall back to the best supported tier.
const SIMDEnv = "ARC_SIMD"

// activeTierName is the tier the slice kernels currently dispatch to.
// It is written at init and by ForceTier (tests, benchmarks); readers
// on the hot path consult the per-arch booleans it controls instead.
var activeTierName = TierWord

// ActiveTier returns the dispatch tier the slice kernels currently
// use: one of Tiers().
func ActiveTier() string { return activeTierName }

// Features returns the detected CPU SIMD features relevant to this
// package (widest first), regardless of any ARC_SIMD override:
// e.g. ["avx2", "ssse3"] on a modern amd64 host, ["neon"] on arm64,
// nil elsewhere.
func Features() []string { return features() }

// Tiers returns the dispatch tiers runnable on this host, widest
// first. The portable word tier is always last and always present.
func Tiers() []string { return append(features(), TierWord) }

// ForceTier switches the slice kernels to the named tier and returns a
// restore function that reinstates the previous tier. It errors when
// the tier is not supported on this host. It mutates package-level
// dispatch state, so callers (tests, benchmarks) must not run
// concurrently with other users of the package.
func ForceTier(name string) (restore func(), err error) {
	prev := activeTierName
	if err := applyTier(name); err != nil {
		return nil, err
	}
	return func() { _ = applyTier(prev) }, nil
}

func errUnsupportedTier(name string) error {
	return fmt.Errorf("gf256: tier %q not supported on this host (have %s)",
		name, strings.Join(Tiers(), ", "))
}

func init() {
	best := TierWord
	if f := features(); len(f) > 0 {
		best = f[0]
	}
	want := best
	switch v := strings.ToLower(os.Getenv(SIMDEnv)); v {
	case "", "auto":
	case "off", "none", "scalar":
		want = TierWord
	default:
		want = v
	}
	if applyTier(want) != nil {
		// Unsupported request (ARC_SIMD=avx2 on an SSSE3-only host, or
		// a typo): run at the best supported tier rather than failing.
		_ = applyTier(best)
	}
}
