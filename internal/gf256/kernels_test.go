package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// kernelLens covers empty, sub-word, word-boundary, straddling, and
// large buffers so both the uint64 lanes and the scalar tails run.
var kernelLens = []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 255, 1000, 1024, 1031}

// TestMulSliceMatchesRef pins the dispatched kernel to the scalar
// reference for every coefficient, over odd lengths and unaligned
// slice offsets, under every SIMD tier the host can run.
func TestMulSliceMatchesRef(t *testing.T) { forEachTier(t, testMulSliceMatchesRef) }

func testMulSliceMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for c := 0; c < 256; c++ {
		for _, n := range kernelLens {
			for _, off := range []int{0, 1, 3, 7} {
				raw := make([]byte, n+off)
				rng.Read(raw)
				src := raw[off:]
				dst1 := make([]byte, n+off)
				rng.Read(dst1)
				dst2 := append([]byte(nil), dst1...)
				MulSlice(byte(c), src, dst1[off:])
				MulSliceRef(byte(c), src, dst2[off:])
				if !bytes.Equal(dst1, dst2) {
					t.Fatalf("MulSlice(c=%d, n=%d, off=%d) diverges from reference", c, n, off)
				}
			}
		}
	}
}

func TestMulSliceAssignMatchesRef(t *testing.T) { forEachTier(t, testMulSliceAssignMatchesRef) }

func testMulSliceAssignMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for c := 0; c < 256; c++ {
		for _, n := range kernelLens {
			for _, off := range []int{0, 1, 5} {
				raw := make([]byte, n+off)
				rng.Read(raw)
				src := raw[off:]
				dst1 := make([]byte, n)
				rng.Read(dst1)
				dst2 := append([]byte(nil), dst1...)
				MulSliceAssign(byte(c), src, dst1)
				MulSliceAssignRef(byte(c), src, dst2)
				if !bytes.Equal(dst1, dst2) {
					t.Fatalf("MulSliceAssign(c=%d, n=%d, off=%d) diverges from reference", c, n, off)
				}
			}
		}
	}
}

func TestXorSliceMatchesRef(t *testing.T) { forEachTier(t, testXorSliceMatchesRef) }

func testXorSliceMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range kernelLens {
		for off := 0; off < 8; off++ {
			raw := make([]byte, n+off)
			rng.Read(raw)
			src := raw[off:]
			dst1 := make([]byte, n)
			rng.Read(dst1)
			dst2 := append([]byte(nil), dst1...)
			XorSlice(src, dst1)
			XorSliceRef(src, dst2)
			if !bytes.Equal(dst1, dst2) {
				t.Fatalf("XorSlice(n=%d, off=%d) diverges from reference", n, off)
			}
		}
	}
}

// forEachTier runs fn as a subtest under every dispatch tier the host
// supports (word always included), restoring the original tier after.
func forEachTier(t *testing.T, fn func(*testing.T)) {
	for _, tier := range Tiers() {
		t.Run(tier, func(t *testing.T) {
			restore, err := ForceTier(tier)
			if err != nil {
				t.Fatalf("ForceTier(%q): %v", tier, err)
			}
			defer restore()
			fn(t)
		})
	}
}

// TestMulSliceAgainstFieldMul cross-checks the table rows themselves:
// the slice kernels must agree with element-wise field multiplication.
func TestMulSliceAgainstFieldMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := make([]byte, 257)
	rng.Read(src)
	for _, c := range []byte{0, 1, 2, 3, 0x1D, 0x80, 0xFF} {
		dst := make([]byte, len(src))
		MulSliceAssign(c, src, dst)
		for i, s := range src {
			if want := Mul(c, s); dst[i] != want {
				t.Fatalf("c=%d src[%d]=%d: got %d want %d", c, i, s, dst[i], want)
			}
		}
	}
}

func TestSliceKernelLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MulSlice":       func() { MulSlice(2, make([]byte, 3), make([]byte, 4)) },
		"MulSliceAssign": func() { MulSliceAssign(2, make([]byte, 3), make([]byte, 4)) },
		"XorSlice":       func() { XorSlice(make([]byte, 3), make([]byte, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}
