package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXOR(t *testing.T) {
	if Add(0x53, 0xCA) != 0x53^0xCA {
		t.Fatal("Add must be XOR")
	}
	if Sub(0x53, 0xCA) != Add(0x53, 0xCA) {
		t.Fatal("Sub must equal Add in characteristic 2")
	}
}

func TestMulIdentity(t *testing.T) {
	for a := 0; a < 256; a++ {
		if got := Mul(byte(a), 1); got != byte(a) {
			t.Fatalf("Mul(%d, 1) = %d", a, got)
		}
		if got := Mul(byte(a), 0); got != 0 {
			t.Fatalf("Mul(%d, 0) = %d", a, got)
		}
	}
}

func TestMulMatchesSchoolbook(t *testing.T) {
	// Carry-less multiplication reduced mod Poly, the definitional form.
	schoolbook := func(a, b byte) byte {
		var prod uint16
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				prod ^= uint16(a) << i
			}
		}
		for i := 15; i >= 8; i-- {
			if prod&(1<<i) != 0 {
				prod ^= uint16(Poly) << (i - 8)
			}
		}
		return byte(prod)
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			want := schoolbook(byte(a), byte(b))
			if got := Mul(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%#x, %#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestMulCommutativeAssociativeDistributive(t *testing.T) {
	comm := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	assoc := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
	dist := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	if err := quick.Check(dist, nil); err != nil {
		t.Error(err)
	}
}

func TestDivInvertsMul(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			p := Mul(byte(a), byte(b))
			if got := Div(p, byte(b)); got != byte(a) {
				t.Fatalf("Div(Mul(%d,%d), %d) = %d, want %d", a, b, b, got, a)
			}
		}
	}
}

func TestInv(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := Mul(byte(a), Inv(byte(a))); got != 1 {
			t.Fatalf("a * Inv(a) = %d for a = %d", got, a)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) should panic")
		}
	}()
	Inv(0)
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(x, 0) should panic")
		}
	}()
	Div(5, 0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := Exp(Log(byte(a))); got != byte(a) {
			t.Fatalf("Exp(Log(%d)) = %d", a, got)
		}
	}
}

func TestExpGeneratesWholeField(t *testing.T) {
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator produced %d distinct elements, want 255", len(seen))
	}
	if seen[0] {
		t.Fatal("generator must never produce zero")
	}
}

func TestPow(t *testing.T) {
	for a := 0; a < 256; a++ {
		want := byte(1)
		for n := 0; n < 10; n++ {
			if got := Pow(byte(a), n); got != want {
				t.Fatalf("Pow(%d, %d) = %d, want %d", a, n, got, want)
			}
			want = Mul(want, byte(a))
		}
	}
}

func TestMulSliceAccumulates(t *testing.T) {
	src := []byte{1, 2, 3, 255}
	dst := []byte{10, 20, 30, 40}
	want := make([]byte, len(dst))
	for i := range src {
		want[i] = dst[i] ^ Mul(7, src[i])
	}
	MulSlice(7, src, dst)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulSlice mismatch at %d: got %d want %d", i, dst[i], want[i])
		}
	}
}

func TestMulSliceZeroCoefficientIsNoop(t *testing.T) {
	src := []byte{1, 2, 3}
	dst := []byte{9, 9, 9}
	MulSlice(0, src, dst)
	for _, v := range dst {
		if v != 9 {
			t.Fatal("MulSlice with c=0 must not modify dst")
		}
	}
}

func TestMulSliceOneCoefficientIsXOR(t *testing.T) {
	src := []byte{1, 2, 3}
	dst := []byte{4, 5, 6}
	MulSlice(1, src, dst)
	want := []byte{5, 7, 5}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulSlice c=1 mismatch at %d", i)
		}
	}
}

func TestMulSliceAssign(t *testing.T) {
	src := []byte{1, 2, 3}
	dst := make([]byte, 3)
	MulSliceAssign(3, src, dst)
	for i := range src {
		if dst[i] != Mul(3, src[i]) {
			t.Fatalf("MulSliceAssign mismatch at %d", i)
		}
	}
	MulSliceAssign(0, src, dst)
	for _, v := range dst {
		if v != 0 {
			t.Fatal("MulSliceAssign with c=0 must zero dst")
		}
	}
}

func TestMulSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	MulSlice(2, []byte{1}, []byte{1, 2})
}

func TestTableMatchesMul(t *testing.T) {
	for c := 0; c < 256; c += 17 {
		row := Table(byte(c))
		for x := 0; x < 256; x++ {
			if row[x] != Mul(byte(c), byte(x)) {
				t.Fatalf("Table(%d)[%d] mismatch", c, x)
			}
		}
	}
}
