// Package gf256 implements arithmetic over the finite field GF(2^8),
// the substrate for the Reed-Solomon coder in internal/ecc/reedsolomon.
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the same polynomial used by most
// storage erasure-coding libraries (including Jerasure, which the paper
// builds on). Multiplication and division run through log/exp tables
// built once at package init.
package gf256

import "encoding/binary"

// Poly is the primitive polynomial used to construct the field,
// represented with the implicit x^8 term stripped (0x11D & 0xFF = 0x1D
// plus the carry handling below).
const Poly = 0x11D

// Order is the number of elements in the field.
const Order = 256

var (
	expTable [510]byte // doubled so Mul can skip a mod 255
	logTable [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		expTable[i+255] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	// logTable[0] is undefined in the field; leave it zero. Callers must
	// special-case zero operands, as Mul and Div below do.
}

// Add returns a+b in GF(2^8). Addition is XOR; it is its own inverse,
// so Sub is identical.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a-b in GF(2^8), which equals a+b.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a/b in GF(2^8). Div panics if b is zero, mirroring
// integer division by zero; callers construct matrices from nonzero
// pivots only.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += 255
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. It panics when a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: zero has no inverse")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns the generator element 2 raised to the power n (n may be
// any non-negative integer; it is reduced mod 255).
func Exp(n int) byte {
	if n < 0 {
		panic("gf256: negative exponent")
	}
	return expTable[n%255]
}

// Log returns the discrete logarithm base 2 of a. It panics when a is
// zero, which has no logarithm.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Pow returns a raised to the power n.
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return expTable[(int(logTable[a])*n)%255]
}

// XorSlice computes dst[i] ^= src[i] for every index — the c == 1
// Reed-Solomon lane — eight bytes per iteration over uint64 words.
// dst and src must be the same length.
func XorSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: XorSlice length mismatch")
	}
	if n := xorSIMD(src, dst); n > 0 {
		for i := n; i < len(src); i++ {
			dst[i] ^= src[i]
		}
		return
	}
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// XorSliceRef is the scalar reference implementation of XorSlice,
// retained for differential tests and as the benchmark baseline.
func XorSliceRef(src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: XorSliceRef length mismatch")
	}
	for i, s := range src {
		dst[i] ^= s
	}
}

// MulSlice computes dst[i] ^= c * src[i] for every index, the inner
// kernel of Reed-Solomon encoding. dst and src must be the same length.
//
// The hot path works a uint64 word at a time: one 8-byte load of src,
// eight table lookups assembled into a word, then a single 8-byte
// load/XOR/store of dst. The c == 1 lane degenerates to XorSlice.
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		XorSlice(src, dst)
		return
	}
	row := mulRow(c)
	if n := mulXorSIMD(c, src, dst); n > 0 {
		for i := n; i < len(src); i++ {
			dst[i] ^= row[src[i]]
		}
		return
	}
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		v := uint64(row[byte(s)]) |
			uint64(row[byte(s>>8)])<<8 |
			uint64(row[byte(s>>16)])<<16 |
			uint64(row[byte(s>>24)])<<24 |
			uint64(row[byte(s>>32)])<<32 |
			uint64(row[byte(s>>40)])<<40 |
			uint64(row[byte(s>>48)])<<48 |
			uint64(row[s>>56])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^v)
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= row[src[i]]
	}
}

// MulSliceRef is the scalar reference implementation of MulSlice (one
// table lookup plus XOR per byte), retained for differential tests and
// as the benchmark baseline the word kernel is measured against.
func MulSliceRef(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSliceRef length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	row := mulRow(c)
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// MulSliceAssign computes dst[i] = c * src[i] (overwrite, not
// accumulate) for every index, with the same word-at-a-time hot path
// as MulSlice.
func MulSliceAssign(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSliceAssign length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	row := mulRow(c)
	if n := mulAssignSIMD(c, src, dst); n > 0 {
		for i := n; i < len(src); i++ {
			dst[i] = row[src[i]]
		}
		return
	}
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		v := uint64(row[byte(s)]) |
			uint64(row[byte(s>>8)])<<8 |
			uint64(row[byte(s>>16)])<<16 |
			uint64(row[byte(s>>24)])<<24 |
			uint64(row[byte(s>>32)])<<32 |
			uint64(row[byte(s>>40)])<<40 |
			uint64(row[byte(s>>48)])<<48 |
			uint64(row[s>>56])<<56
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
	for i := n; i < len(src); i++ {
		dst[i] = row[src[i]]
	}
}

// MulSliceAssignRef is the scalar reference implementation of
// MulSliceAssign, retained for differential tests and benchmarks.
func MulSliceAssignRef(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSliceAssignRef length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	row := mulRow(c)
	for i, s := range src {
		dst[i] = row[s]
	}
}

// mulTables caches the 256-entry multiplication row per coefficient.
// Every row is built eagerly by the init below (64 KiB total) and is
// immutable afterwards, so concurrent readers need no synchronization.
var mulTables [256]*[256]byte

// nibTables caches, per coefficient, the 16 products of each low
// nibble value (entries 0..15) and each high nibble value (16..31).
// By GF(2)-linearity c*x == c*(x&0x0F) ^ c*(x&0xF0), so these 32 bytes
// reproduce the full 256-entry row; the amd64 PSHUFB kernel applies
// them 16 source bytes at a time. 8 KiB total, immutable after init.
var nibTables [256][32]byte

func init() {
	// Precompute all rows eagerly: 64 KiB total, built once, immutable
	// afterwards, hence safe for concurrent readers.
	for c := 0; c < 256; c++ {
		var row [256]byte
		for x := 0; x < 256; x++ {
			row[x] = Mul(byte(c), byte(x))
		}
		r := row
		mulTables[c] = &r
		for x := 0; x < 16; x++ {
			nibTables[c][x] = row[x]
			nibTables[c][16+x] = row[x<<4]
		}
	}
}

func mulRow(c byte) *[256]byte { return mulTables[c] }

// Table returns the full multiplication row for coefficient c:
// Table(c)[x] == Mul(c, x). The returned array must not be modified.
func Table(c byte) *[256]byte { return mulRow(c) }
