// Package gf256 implements arithmetic over the finite field GF(2^8),
// the substrate for the Reed-Solomon coder in internal/ecc/reedsolomon.
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the same polynomial used by most
// storage erasure-coding libraries (including Jerasure, which the paper
// builds on). Multiplication and division run through log/exp tables
// built once at package init.
package gf256

// Poly is the primitive polynomial used to construct the field,
// represented with the implicit x^8 term stripped (0x11D & 0xFF = 0x1D
// plus the carry handling below).
const Poly = 0x11D

// Order is the number of elements in the field.
const Order = 256

var (
	expTable [510]byte // doubled so Mul can skip a mod 255
	logTable [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		expTable[i+255] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	// logTable[0] is undefined in the field; leave it zero. Callers must
	// special-case zero operands, as Mul and Div below do.
}

// Add returns a+b in GF(2^8). Addition is XOR; it is its own inverse,
// so Sub is identical.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a-b in GF(2^8), which equals a+b.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a/b in GF(2^8). Div panics if b is zero, mirroring
// integer division by zero; callers construct matrices from nonzero
// pivots only.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += 255
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. It panics when a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: zero has no inverse")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns the generator element 2 raised to the power n (n may be
// any non-negative integer; it is reduced mod 255).
func Exp(n int) byte {
	if n < 0 {
		panic("gf256: negative exponent")
	}
	return expTable[n%255]
}

// Log returns the discrete logarithm base 2 of a. It panics when a is
// zero, which has no logarithm.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Pow returns a raised to the power n.
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return expTable[(int(logTable[a])*n)%255]
}

// MulSlice computes dst[i] ^= c * src[i] for every index, the inner
// kernel of Reed-Solomon encoding. dst and src must be the same length.
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	// Build the 256-entry row for this coefficient once; it turns the
	// inner loop into a table lookup plus XOR.
	row := mulRow(c)
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// MulSliceAssign computes dst[i] = c * src[i] (overwrite, not
// accumulate) for every index.
func MulSliceAssign(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSliceAssign length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	row := mulRow(c)
	for i, s := range src {
		dst[i] = row[s]
	}
}

// mulTables caches the 256-entry multiplication row per coefficient.
// Rows are built lazily; the array of pointers is fixed size so access
// is race-free after construction only if callers serialize — to keep
// the package dependency-free we build rows on the fly instead when
// contention is possible. Encoding paths in this repo precompute rows
// via Table.
var mulTables [256]*[256]byte

func init() {
	// Precompute all rows eagerly: 64 KiB total, built once, immutable
	// afterwards, hence safe for concurrent readers.
	for c := 0; c < 256; c++ {
		var row [256]byte
		for x := 0; x < 256; x++ {
			row[x] = Mul(byte(c), byte(x))
		}
		r := row
		mulTables[c] = &r
	}
}

func mulRow(c byte) *[256]byte { return mulTables[c] }

// Table returns the full multiplication row for coefficient c:
// Table(c)[x] == Mul(c, x). The returned array must not be modified.
func Table(c byte) *[256]byte { return mulRow(c) }
