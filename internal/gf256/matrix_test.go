package gf256

import (
	"math/rand"
	"testing"
)

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if id.At(r, c) != want {
				t.Fatalf("Identity(4)[%d][%d] = %d", r, c, id.At(r, c))
			}
		}
	}
}

func TestMatrixMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(5, 5)
	for i := range m.Data {
		m.Data[i] = byte(rng.Intn(256))
	}
	got := m.Mul(Identity(5))
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatal("M * I != M")
		}
	}
	got = Identity(5).Mul(m)
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatal("I * M != M")
		}
	}
}

func TestMatrixMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched shapes should panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = byte(rng.Intn(256))
		}
		inv, err := m.Invert()
		if err != nil {
			continue // singular draw; skip
		}
		prod := m.Mul(inv)
		id := Identity(n)
		for i := range id.Data {
			if prod.Data[i] != id.Data[i] {
				t.Fatalf("trial %d: M * M^-1 != I", trial)
			}
		}
	}
}

func TestInvertSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 3)
	m.Set(0, 1, 5)
	m.Set(1, 0, 3)
	m.Set(1, 1, 5) // duplicate row
	if _, err := m.Invert(); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestInvertNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-square invert should panic")
		}
	}()
	_, _ = NewMatrix(2, 3).Invert()
}

func TestVandermonde(t *testing.T) {
	v := Vandermonde(4, 3)
	for r := 0; r < 4; r++ {
		for c := 0; c < 3; c++ {
			if v.At(r, c) != Pow(byte(r), c) {
				t.Fatalf("Vandermonde[%d][%d] wrong", r, c)
			}
		}
	}
	// First column must be all ones (x^0).
	for r := 0; r < 4; r++ {
		if v.At(r, 0) != 1 {
			t.Fatal("Vandermonde first column must be 1")
		}
	}
}

func TestRSGeneratorSystematic(t *testing.T) {
	g, err := RSGeneratorMatrix(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != 9 || g.Cols != 6 {
		t.Fatalf("generator shape %dx%d", g.Rows, g.Cols)
	}
	// Top k rows must be the identity for a systematic code.
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if g.At(r, c) != want {
				t.Fatalf("generator top square not identity at (%d,%d)", r, c)
			}
		}
	}
}

func TestRSGeneratorMDS(t *testing.T) {
	// The MDS property: any k of the k+m rows form an invertible matrix.
	k, m := 4, 3
	g, err := RSGeneratorMatrix(k, m)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustively check all C(7,4) = 35 row subsets.
	var rows []int
	var recurse func(start int)
	recurse = func(start int) {
		if len(rows) == k {
			sub := g.SubMatrix(rows)
			if _, err := sub.Invert(); err != nil {
				t.Fatalf("rows %v not invertible: MDS violated", rows)
			}
			return
		}
		for i := start; i < k+m; i++ {
			rows = append(rows, i)
			recurse(i + 1)
			rows = rows[:len(rows)-1]
		}
	}
	recurse(0)
}

func TestRSGeneratorBounds(t *testing.T) {
	if _, err := RSGeneratorMatrix(0, 3); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := RSGeneratorMatrix(3, 0); err == nil {
		t.Fatal("m=0 must fail")
	}
	if _, err := RSGeneratorMatrix(200, 100); err == nil {
		t.Fatal("k+m > 256 must fail")
	}
	if _, err := RSGeneratorMatrix(241, 15); err != nil {
		t.Fatalf("paper config 241+15 must work: %v", err)
	}
	if _, err := RSGeneratorMatrix(153, 103); err != nil {
		t.Fatalf("paper config 153+103 must work: %v", err)
	}
}

func TestSubMatrix(t *testing.T) {
	m := NewMatrix(3, 2)
	for i := range m.Data {
		m.Data[i] = byte(i)
	}
	s := m.SubMatrix([]int{2, 0})
	if s.At(0, 0) != 4 || s.At(0, 1) != 5 || s.At(1, 0) != 0 || s.At(1, 1) != 1 {
		t.Fatal("SubMatrix selected wrong rows")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewMatrix(2, 2)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone must not alias")
	}
}

func TestCauchyInvertibleSubmatrices(t *testing.T) {
	c, err := Cauchy(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invert(); err != nil {
		t.Fatal("full Cauchy matrix must invert")
	}
	// Every element must be nonzero (definitional: 1/(x+y)).
	for _, v := range c.Data {
		if v == 0 {
			t.Fatal("Cauchy entries are nonzero by construction")
		}
	}
	if _, err := Cauchy(0, 4); err == nil {
		t.Fatal("zero rows must fail")
	}
	if _, err := Cauchy(200, 100); err == nil {
		t.Fatal("overflowing the field must fail")
	}
}

func TestRSCauchyGeneratorMDS(t *testing.T) {
	k, m := 4, 3
	g, err := RSCauchyGeneratorMatrix(k, m)
	if err != nil {
		t.Fatal(err)
	}
	// Systematic top.
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if g.At(r, c) != want {
				t.Fatal("top square must be identity")
			}
		}
	}
	// MDS: all C(7,4) row subsets invertible.
	var rows []int
	var recurse func(start int)
	recurse = func(start int) {
		if len(rows) == k {
			if _, err := g.SubMatrix(rows).Invert(); err != nil {
				t.Fatalf("rows %v singular: Cauchy MDS violated", rows)
			}
			return
		}
		for i := start; i < k+m; i++ {
			rows = append(rows, i)
			recurse(i + 1)
			rows = rows[:len(rows)-1]
		}
	}
	recurse(0)
	if _, err := RSCauchyGeneratorMatrix(0, 1); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := RSCauchyGeneratorMatrix(200, 100); err == nil {
		t.Fatal("k+m > 256 must fail")
	}
}
