package gf256

import (
	"bytes"
	"testing"
)

// FuzzGF256Dispatch feeds the same inputs through every compiled-in
// dispatch tier (forced via the feature-mask override) plus the scalar
// references and requires byte-identical outputs. The slice is split at
// an arbitrary point into src/dst so the fuzzer controls length,
// alignment, and content of both operands.
func FuzzGF256Dispatch(f *testing.F) {
	f.Add(byte(2), []byte{})
	f.Add(byte(0x1D), []byte{1, 2, 3, 4, 5, 6, 7})
	f.Add(byte(0xFF), bytes.Repeat([]byte{0xA5, 0x3C}, 40))
	f.Add(byte(1), make([]byte, 65))
	f.Fuzz(func(t *testing.T, c byte, data []byte) {
		src := data[:len(data)/2]
		dst := data[len(data)/2 : len(data)/2*2]

		wantMul := append([]byte(nil), dst...)
		MulSliceRef(c, src, wantMul)
		wantAssign := make([]byte, len(src))
		MulSliceAssignRef(c, src, wantAssign)
		wantXor := append([]byte(nil), dst...)
		XorSliceRef(src, wantXor)

		for _, tier := range Tiers() {
			restore, err := ForceTier(tier)
			if err != nil {
				t.Fatalf("ForceTier(%q): %v", tier, err)
			}
			gotMul := append([]byte(nil), dst...)
			MulSlice(c, src, gotMul)
			gotAssign := make([]byte, len(src))
			MulSliceAssign(c, src, gotAssign)
			gotXor := append([]byte(nil), dst...)
			XorSlice(src, gotXor)
			restore()

			if !bytes.Equal(gotMul, wantMul) {
				t.Errorf("tier %q MulSlice(c=%d, n=%d) diverges from reference", tier, c, len(src))
			}
			if !bytes.Equal(gotAssign, wantAssign) {
				t.Errorf("tier %q MulSliceAssign(c=%d, n=%d) diverges from reference", tier, c, len(src))
			}
			if !bytes.Equal(gotXor, wantXor) {
				t.Errorf("tier %q XorSlice(n=%d) diverges from reference", tier, len(src))
			}
		}
	})
}
