//go:build amd64

package gf256

// The amd64 fast path multiplies 16 bytes per instruction group with
// PSHUFB nibble tables, the technique used by production erasure
// coders in the Jerasure/klauspost lineage (and by ISA-L): by
// GF(2)-linearity, c*x == c*(x & 0x0F) ^ c*(x & 0xF0), so one 16-entry
// table per nibble half turns the multiply into two byte shuffles and
// an XOR. PSHUFB needs SSSE3, which is detected once at init; every
// other path (tail bytes, short slices, other GOARCHes) uses the
// portable word kernel, and the outputs are byte-identical because the
// nibble tables are derived from the same multiplication row.

// cpuid executes the CPUID instruction for the given leaf (sub-leaf 0).
// Implemented in mul_amd64.s.
func cpuid(op uint32) (eax, ebx, ecx, edx uint32)

// gfMulXorNib computes dst[i] ^= tab-multiply(src[i]) over len(src)
// bytes, which must be a multiple of 16 and equal len(dst).
// Implemented in mul_amd64.s.
func gfMulXorNib(tab *[32]byte, src, dst []byte)

// gfMulNib computes dst[i] = tab-multiply(src[i]) (overwrite, not
// accumulate) with the same contract as gfMulXorNib.
// Implemented in mul_amd64.s.
func gfMulNib(tab *[32]byte, src, dst []byte)

// useAsm reports whether the CPU supports SSSE3 (CPUID leaf 1, ECX bit
// 9). amd64 guarantees SSE2 only, so PSHUFB must be feature-checked.
var useAsm = func() bool {
	_, _, ecx, _ := cpuid(1)
	return ecx&(1<<9) != 0
}()
