//go:build amd64

package gf256

// The amd64 fast paths multiply 16 or 32 bytes per instruction group
// with PSHUFB/VPSHUFB nibble tables, the technique used by production
// erasure coders in the Jerasure/klauspost lineage (and by ISA-L): by
// GF(2)-linearity, c*x == c*(x & 0x0F) ^ c*(x & 0xF0), so one 16-entry
// table per nibble half turns the multiply into two byte shuffles and
// an XOR. The AVX2 kernels broadcast the same 16-byte tables into both
// 128-bit lanes of a YMM register and process 32 source bytes per
// iteration. Tier selection (CPUID feature detection, ARC_SIMD
// override) lives in dispatch_amd64.go; every path is byte-identical
// because the nibble tables are derived from the same multiplication
// row.

// cpuid executes the CPUID instruction for the given leaf (sub-leaf 0).
// Implemented in mul_amd64.s.
func cpuid(op uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0), which reports the
// register state the OS saves on context switch. Only called after
// CPUID confirms OSXSAVE support. Implemented in mul_amd64.s.
func xgetbv() (eax, edx uint32)

// gfMulXorNib computes dst[i] ^= tab-multiply(src[i]) over len(src)
// bytes, which must be a multiple of 16 and equal len(dst).
// Implemented in mul_amd64.s (SSSE3).
func gfMulXorNib(tab *[32]byte, src, dst []byte)

// gfMulNib computes dst[i] = tab-multiply(src[i]) (overwrite, not
// accumulate) with the same contract as gfMulXorNib.
// Implemented in mul_amd64.s (SSSE3).
func gfMulNib(tab *[32]byte, src, dst []byte)

// gfMulXorAVX2 is gfMulXorNib over 32-byte VPSHUFB lanes; len(src)
// must be a multiple of 32. Implemented in mul_amd64.s (AVX2).
func gfMulXorAVX2(tab *[32]byte, src, dst []byte)

// gfMulAVX2 is the overwrite variant of gfMulXorAVX2.
// Implemented in mul_amd64.s (AVX2).
func gfMulAVX2(tab *[32]byte, src, dst []byte)

// gfXorAVX2 computes dst[i] ^= src[i] over len(src) bytes, a multiple
// of 32. Implemented in mul_amd64.s (AVX2).
func gfXorAVX2(src, dst []byte)
