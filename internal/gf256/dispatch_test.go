package gf256

import (
	"bytes"
	"math/rand"
	"slices"
	"testing"
)

func TestTiersAlwaysIncludeWord(t *testing.T) {
	tiers := Tiers()
	if len(tiers) == 0 || tiers[len(tiers)-1] != TierWord {
		t.Fatalf("Tiers() = %v, want word as final fallback", tiers)
	}
	if !slices.Contains(tiers, ActiveTier()) {
		t.Fatalf("ActiveTier() = %q not in Tiers() %v", ActiveTier(), tiers)
	}
}

func TestFeaturesMatchTiers(t *testing.T) {
	f := Features()
	tiers := Tiers()
	if len(tiers) != len(f)+1 {
		t.Fatalf("Tiers() = %v, Features() = %v: want tiers = features + word", tiers, f)
	}
	for i, name := range f {
		if tiers[i] != name {
			t.Fatalf("Tiers()[%d] = %q, want feature %q", i, tiers[i], name)
		}
	}
}

func TestForceTierRestores(t *testing.T) {
	orig := ActiveTier()
	restore, err := ForceTier(TierWord)
	if err != nil {
		t.Fatalf("ForceTier(word): %v", err)
	}
	if got := ActiveTier(); got != TierWord {
		t.Fatalf("ActiveTier() = %q after ForceTier(word)", got)
	}
	restore()
	if got := ActiveTier(); got != orig {
		t.Fatalf("ActiveTier() = %q after restore, want %q", got, orig)
	}
}

func TestForceTierRejectsUnsupported(t *testing.T) {
	if _, err := ForceTier("quantum"); err == nil {
		t.Fatal("ForceTier of a made-up tier succeeded")
	}
	// A tier belonging to a different architecture must be rejected too.
	foreign := TierNEON
	if slices.Contains(Features(), TierNEON) {
		foreign = TierAVX2
	}
	if _, err := ForceTier(foreign); err == nil {
		t.Fatalf("ForceTier(%q) succeeded on a host without it", foreign)
	}
	// A failed force must not change the active tier.
	if !slices.Contains(Tiers(), ActiveTier()) {
		t.Fatalf("ActiveTier() = %q invalid after failed ForceTier", ActiveTier())
	}
}

// TestTierCrossAgreement runs the same random workload under every
// supported tier and requires bit-identical results across tiers, not
// just against the scalar reference.
func TestTierCrossAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := make([]byte, 1031)
	rng.Read(src)
	base := make([]byte, len(src))
	rng.Read(base)

	for _, c := range []byte{0, 1, 2, 0x53, 0xFF} {
		var want []byte
		for _, tier := range Tiers() {
			restore, err := ForceTier(tier)
			if err != nil {
				t.Fatalf("ForceTier(%q): %v", tier, err)
			}
			got := append([]byte(nil), base...)
			MulSlice(c, src, got)
			XorSlice(src, got)
			MulSliceAssign(c, got, got)
			restore()
			if want == nil {
				want = got
			} else if !bytes.Equal(got, want) {
				t.Fatalf("tier %q diverges for c=%d", tier, c)
			}
		}
	}
}
