package gf256

import (
	"errors"
	"fmt"
)

// Matrix is a dense matrix over GF(2^8), stored row-major.
type Matrix struct {
	Rows, Cols int
	Data       []byte // len Rows*Cols
}

// NewMatrix allocates a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("gf256: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r. The slice aliases the matrix storage.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde returns the rows x cols matrix with element (r, c) equal
// to r^c (with 0^0 == 1), the classical starting point for
// Reed-Solomon generator matrices.
func Vandermonde(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, Pow(byte(r), c))
		}
	}
	return m
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("gf256: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(r, k)
			if a == 0 {
				continue
			}
			row := Table(a)
			orow := other.Row(k)
			dst := out.Row(r)
			for c, b := range orow {
				dst[c] ^= row[b]
			}
		}
	}
	return out
}

// ErrSingular reports that a matrix could not be inverted.
var ErrSingular = errors.New("gf256: matrix is singular")

// Invert returns the inverse of a square matrix using Gauss-Jordan
// elimination with partial pivoting (any nonzero pivot works in a
// field, but row swaps are still needed to find one).
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		panic("gf256: cannot invert non-square matrix")
	}
	n := m.Rows
	work := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot row at or below the diagonal.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Scale the pivot row so the pivot becomes 1.
		if p := work.At(col, col); p != 1 {
			scale := Inv(p)
			scaleRow(work.Row(col), scale)
			scaleRow(inv.Row(col), scale)
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			addScaledRow(work.Row(r), work.Row(col), f)
			addScaledRow(inv.Row(r), inv.Row(col), f)
		}
	}
	return inv, nil
}

// SubMatrix returns the matrix restricted to the given rows (all
// columns), in the order provided.
func (m *Matrix) SubMatrix(rows []int) *Matrix {
	out := NewMatrix(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

func swapRows(m *Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func scaleRow(row []byte, c byte) {
	t := Table(c)
	for i, v := range row {
		row[i] = t[v]
	}
}

// addScaledRow computes dst[i] ^= c * src[i].
func addScaledRow(dst, src []byte, c byte) {
	t := Table(c)
	for i, v := range src {
		dst[i] ^= t[v]
	}
}

// RSGeneratorMatrix builds the (k+m) x k systematic generator matrix
// for a Reed-Solomon code with k data devices and m code devices: the
// top k rows are the identity (data passes through unchanged) and the
// bottom m rows produce the parity devices.
//
// It is derived from a (k+m) x k Vandermonde matrix by multiplying with
// the inverse of its top square, which preserves the MDS property (any
// k rows remain invertible) while making the code systematic.
func RSGeneratorMatrix(k, m int) (*Matrix, error) {
	if k <= 0 || m <= 0 {
		return nil, fmt.Errorf("gf256: invalid RS shape k=%d m=%d", k, m)
	}
	if k+m > Order {
		return nil, fmt.Errorf("gf256: k+m = %d exceeds field order %d", k+m, Order)
	}
	v := Vandermonde(k+m, k)
	top := v.SubMatrix(intRange(k))
	topInv, err := top.Invert()
	if err != nil {
		// Cannot happen: the top square of a Vandermonde matrix with
		// distinct evaluation points is nonsingular.
		return nil, err
	}
	return v.Mul(topInv), nil
}

func intRange(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

// Cauchy returns the rows x cols Cauchy matrix with element (r, c)
// equal to 1/(x_r + y_c) for distinct points x_r = r + cols and
// y_c = c. Every square submatrix of a Cauchy matrix is invertible,
// which makes it an alternative Reed-Solomon generator construction
// (Jerasure offers both); rows + cols must not exceed the field order.
func Cauchy(rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("gf256: invalid Cauchy shape %dx%d", rows, cols)
	}
	if rows+cols > Order {
		return nil, fmt.Errorf("gf256: rows+cols = %d exceeds field order %d", rows+cols, Order)
	}
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		x := byte(r + cols)
		for c := 0; c < cols; c++ {
			y := byte(c)
			m.Set(r, c, Inv(Add(x, y)))
		}
	}
	return m, nil
}

// RSCauchyGeneratorMatrix builds a systematic (k+m) x k generator with
// Cauchy parity rows: identity on top, a k x m Cauchy block below. The
// MDS property follows from every Cauchy submatrix being nonsingular.
func RSCauchyGeneratorMatrix(k, m int) (*Matrix, error) {
	if k <= 0 || m <= 0 {
		return nil, fmt.Errorf("gf256: invalid RS shape k=%d m=%d", k, m)
	}
	if k+m > Order {
		return nil, fmt.Errorf("gf256: k+m = %d exceeds field order %d", k+m, Order)
	}
	cau, err := Cauchy(m, k)
	if err != nil {
		return nil, err
	}
	g := NewMatrix(k+m, k)
	for i := 0; i < k; i++ {
		g.Set(i, i, 1)
	}
	for r := 0; r < m; r++ {
		copy(g.Row(k+r), cau.Row(r))
	}
	return g, nil
}
