//go:build arm64

#include "textflag.h"

// The NEON nibble-table kernels mirror the amd64 PSHUFB ones: TBL
// performs sixteen 4-bit table lookups per instruction, and unlike
// x86's per-word PSRLW, VUSHR shifts per byte, so extracting the high
// nibbles needs no extra mask. The tables are the same 32 bytes per
// coefficient built at init, so outputs are byte-identical to the
// portable word path.

// func gfMulXorNEON(tab *[32]byte, src, dst []byte)
//
// dst[i] ^= mul(src[i]) for len(src) bytes (a multiple of 16).
TEXT ·gfMulXorNEON(SB), NOSPLIT, $0-56
	MOVD tab+0(FP), R0
	MOVD src_base+8(FP), R1
	MOVD src_len+16(FP), R2
	MOVD dst_base+32(FP), R3
	VLD1 (R0), [V0.B16, V1.B16]   // low, high nibble product tables
	MOVD $0x0F, R4
	VDUP R4, V2.B16               // 16 lanes of 0x0F
	LSR  $4, R2, R2               // 16-byte blocks
	CBZ  R2, xordone

xorloop:
	VLD1.P 16(R1), [V3.B16]       // 16 source bytes
	VUSHR  $4, V3.B16, V4.B16     // high nibbles
	VAND   V2.B16, V3.B16, V3.B16 // low nibbles
	VTBL   V3.B16, [V0.B16], V5.B16
	VTBL   V4.B16, [V1.B16], V6.B16
	VEOR   V6.B16, V5.B16, V5.B16 // mul(src)
	VLD1   (R3), [V7.B16]
	VEOR   V7.B16, V5.B16, V5.B16 // accumulate into dst
	VST1.P [V5.B16], 16(R3)
	SUBS   $1, R2, R2
	BNE    xorloop

xordone:
	RET

// func gfMulNEON(tab *[32]byte, src, dst []byte)
//
// dst[i] = mul(src[i]) — the overwrite variant of gfMulXorNEON.
TEXT ·gfMulNEON(SB), NOSPLIT, $0-56
	MOVD tab+0(FP), R0
	MOVD src_base+8(FP), R1
	MOVD src_len+16(FP), R2
	MOVD dst_base+32(FP), R3
	VLD1 (R0), [V0.B16, V1.B16]
	MOVD $0x0F, R4
	VDUP R4, V2.B16
	LSR  $4, R2, R2
	CBZ  R2, muldone

mulloop:
	VLD1.P 16(R1), [V3.B16]
	VUSHR  $4, V3.B16, V4.B16
	VAND   V2.B16, V3.B16, V3.B16
	VTBL   V3.B16, [V0.B16], V5.B16
	VTBL   V4.B16, [V1.B16], V6.B16
	VEOR   V6.B16, V5.B16, V5.B16
	VST1.P [V5.B16], 16(R3)
	SUBS   $1, R2, R2
	BNE    mulloop

muldone:
	RET

// func gfXorNEON(src, dst []byte)
//
// dst[i] ^= src[i] over 16-byte lanes; len(src) must be a multiple
// of 16.
TEXT ·gfXorNEON(SB), NOSPLIT, $0-48
	MOVD src_base+0(FP), R1
	MOVD src_len+8(FP), R2
	MOVD dst_base+24(FP), R3
	LSR  $4, R2, R2
	CBZ  R2, eordone

eorloop:
	VLD1.P 16(R1), [V0.B16]
	VLD1   (R3), [V1.B16]
	VEOR   V1.B16, V0.B16, V0.B16
	VST1.P [V0.B16], 16(R3)
	SUBS   $1, R2, R2
	BNE    eorloop

eordone:
	RET
