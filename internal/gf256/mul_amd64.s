//go:build amd64

#include "textflag.h"

// func cpuid(op uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	XORL CX, CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func gfMulXorNib(tab *[32]byte, src, dst []byte)
//
// dst[i] ^= mul(src[i]) for len(src) bytes (a multiple of 16).
// tab[0:16] holds the products of the low nibble values, tab[16:32]
// the products of the high nibble values (already shifted into place
// when the table was built): mul(x) = tab[x&0x0F] ^ tab[16+(x>>4)].
TEXT ·gfMulXorNib(SB), NOSPLIT, $0-56
	MOVQ tab+0(FP), AX
	MOVQ src_base+8(FP), SI
	MOVQ src_len+16(FP), CX
	MOVQ dst_base+32(FP), DI
	MOVOU (AX), X0            // low-nibble product table
	MOVOU 16(AX), X1          // high-nibble product table
	MOVQ  $0x0F0F0F0F0F0F0F0F, AX
	MOVQ  AX, X2
	PUNPCKLQDQ X2, X2         // broadcast: 16 lanes of 0x0F
	SHRQ $4, CX               // 16-byte blocks
	JZ   xordone

xorloop:
	MOVOU (SI), X3            // 16 source bytes
	MOVOU X3, X4
	PAND  X2, X3              // low nibbles
	PSRLW $4, X4
	PAND  X2, X4              // high nibbles
	MOVOU X0, X5
	MOVOU X1, X6
	PSHUFB X3, X5             // products of the low halves
	PSHUFB X4, X6             // products of the high halves
	PXOR  X6, X5              // mul(src)
	MOVOU (DI), X7
	PXOR  X7, X5              // accumulate into dst
	MOVOU X5, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DI
	DECQ  CX
	JNZ   xorloop

xordone:
	RET

// func gfMulNib(tab *[32]byte, src, dst []byte)
//
// dst[i] = mul(src[i]) — the overwrite variant of gfMulXorNib.
TEXT ·gfMulNib(SB), NOSPLIT, $0-56
	MOVQ tab+0(FP), AX
	MOVQ src_base+8(FP), SI
	MOVQ src_len+16(FP), CX
	MOVQ dst_base+32(FP), DI
	MOVOU (AX), X0
	MOVOU 16(AX), X1
	MOVQ  $0x0F0F0F0F0F0F0F0F, AX
	MOVQ  AX, X2
	PUNPCKLQDQ X2, X2
	SHRQ $4, CX
	JZ   done

loop:
	MOVOU (SI), X3
	MOVOU X3, X4
	PAND  X2, X3
	PSRLW $4, X4
	PAND  X2, X4
	MOVOU X0, X5
	MOVOU X1, X6
	PSHUFB X3, X5
	PSHUFB X4, X6
	PXOR  X6, X5
	MOVOU X5, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DI
	DECQ  CX
	JNZ   loop

done:
	RET
