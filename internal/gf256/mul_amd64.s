//go:build amd64

#include "textflag.h"

// nibMask is the 0x0F byte mask the nibble kernels broadcast.
DATA nibMask<>+0(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA nibMask<>+8(SB)/8, $0x0F0F0F0F0F0F0F0F
GLOBL nibMask<>(SB), RODATA|NOPTR, $16

// func cpuid(op uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	XORL CX, CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gfMulXorNib(tab *[32]byte, src, dst []byte)
//
// dst[i] ^= mul(src[i]) for len(src) bytes (a multiple of 16).
// tab[0:16] holds the products of the low nibble values, tab[16:32]
// the products of the high nibble values (already shifted into place
// when the table was built): mul(x) = tab[x&0x0F] ^ tab[16+(x>>4)].
TEXT ·gfMulXorNib(SB), NOSPLIT, $0-56
	MOVQ tab+0(FP), AX
	MOVQ src_base+8(FP), SI
	MOVQ src_len+16(FP), CX
	MOVQ dst_base+32(FP), DI
	MOVOU (AX), X0            // low-nibble product table
	MOVOU 16(AX), X1          // high-nibble product table
	MOVQ  $0x0F0F0F0F0F0F0F0F, AX
	MOVQ  AX, X2
	PUNPCKLQDQ X2, X2         // broadcast: 16 lanes of 0x0F
	SHRQ $4, CX               // 16-byte blocks
	JZ   xordone

xorloop:
	MOVOU (SI), X3            // 16 source bytes
	MOVOU X3, X4
	PAND  X2, X3              // low nibbles
	PSRLW $4, X4
	PAND  X2, X4              // high nibbles
	MOVOU X0, X5
	MOVOU X1, X6
	PSHUFB X3, X5             // products of the low halves
	PSHUFB X4, X6             // products of the high halves
	PXOR  X6, X5              // mul(src)
	MOVOU (DI), X7
	PXOR  X7, X5              // accumulate into dst
	MOVOU X5, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DI
	DECQ  CX
	JNZ   xorloop

xordone:
	RET

// func gfMulNib(tab *[32]byte, src, dst []byte)
//
// dst[i] = mul(src[i]) — the overwrite variant of gfMulXorNib.
TEXT ·gfMulNib(SB), NOSPLIT, $0-56
	MOVQ tab+0(FP), AX
	MOVQ src_base+8(FP), SI
	MOVQ src_len+16(FP), CX
	MOVQ dst_base+32(FP), DI
	MOVOU (AX), X0
	MOVOU 16(AX), X1
	MOVQ  $0x0F0F0F0F0F0F0F0F, AX
	MOVQ  AX, X2
	PUNPCKLQDQ X2, X2
	SHRQ $4, CX
	JZ   done

loop:
	MOVOU (SI), X3
	MOVOU X3, X4
	PAND  X2, X3
	PSRLW $4, X4
	PAND  X2, X4
	MOVOU X0, X5
	MOVOU X1, X6
	PSHUFB X3, X5
	PSHUFB X4, X6
	PXOR  X6, X5
	MOVOU X5, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DI
	DECQ  CX
	JNZ   loop

done:
	RET

// func gfMulXorAVX2(tab *[32]byte, src, dst []byte)
//
// The AVX2 widening of gfMulXorNib: the two 16-byte nibble product
// tables are broadcast into both 128-bit lanes of a YMM register
// (VPSHUFB shuffles within each lane independently, so both lanes need
// the full table), then each iteration multiplies 32 source bytes.
// len(src) must be a multiple of 32.
TEXT ·gfMulXorAVX2(SB), NOSPLIT, $0-56
	MOVQ tab+0(FP), AX
	MOVQ src_base+8(FP), SI
	MOVQ src_len+16(FP), CX
	MOVQ dst_base+32(FP), DI
	VBROADCASTI128 (AX), Y0       // low-nibble product table, both lanes
	VBROADCASTI128 16(AX), Y1     // high-nibble product table, both lanes
	VBROADCASTI128 nibMask<>(SB), Y2
	SHRQ $5, CX                   // 32-byte blocks
	JZ   axordone

axorloop:
	VMOVDQU (SI), Y3              // 32 source bytes
	VPSRLW  $4, Y3, Y4
	VPAND   Y2, Y3, Y3            // low nibbles
	VPAND   Y2, Y4, Y4            // high nibbles
	VPSHUFB Y3, Y0, Y5            // products of the low halves
	VPSHUFB Y4, Y1, Y6            // products of the high halves
	VPXOR   Y6, Y5, Y5            // mul(src)
	VPXOR   (DI), Y5, Y5          // accumulate into dst
	VMOVDQU Y5, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     axorloop

axordone:
	VZEROUPPER
	RET

// func gfMulAVX2(tab *[32]byte, src, dst []byte)
//
// dst[i] = mul(src[i]) — the overwrite variant of gfMulXorAVX2.
TEXT ·gfMulAVX2(SB), NOSPLIT, $0-56
	MOVQ tab+0(FP), AX
	MOVQ src_base+8(FP), SI
	MOVQ src_len+16(FP), CX
	MOVQ dst_base+32(FP), DI
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 16(AX), Y1
	VBROADCASTI128 nibMask<>(SB), Y2
	SHRQ $5, CX
	JZ   adone

aloop:
	VMOVDQU (SI), Y3
	VPSRLW  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y4, Y1, Y6
	VPXOR   Y6, Y5, Y5
	VMOVDQU Y5, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     aloop

adone:
	VZEROUPPER
	RET

// func gfXorAVX2(src, dst []byte)
//
// dst[i] ^= src[i] over 32-byte lanes; len(src) must be a multiple
// of 32.
TEXT ·gfXorAVX2(SB), NOSPLIT, $0-48
	MOVQ src_base+0(FP), SI
	MOVQ src_len+8(FP), CX
	MOVQ dst_base+24(FP), DI
	SHRQ $5, CX
	JZ   xdone

xloop:
	VMOVDQU (SI), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     xloop

xdone:
	VZEROUPPER
	RET
