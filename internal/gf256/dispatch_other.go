//go:build !amd64 && !arm64

package gf256

// Architectures without a SIMD kernel always run the portable word
// tier; the constant-false hooks let the compiler erase the dispatch
// branches entirely.

func features() []string { return nil }

func applyTier(name string) error {
	if name != TierWord {
		return errUnsupportedTier(name)
	}
	activeTierName = name
	return nil
}

func mulXorSIMD(c byte, src, dst []byte) int    { return 0 }
func mulAssignSIMD(c byte, src, dst []byte) int { return 0 }
func xorSIMD(src, dst []byte) int               { return 0 }
