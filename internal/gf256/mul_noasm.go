//go:build !amd64

package gf256

// Non-amd64 builds always take the portable word kernel; useAsm is a
// constant false so the compiler removes the assembly branch entirely.
const useAsm = false

func gfMulXorNib(tab *[32]byte, src, dst []byte) {
	panic("gf256: gfMulXorNib without asm support")
}

func gfMulNib(tab *[32]byte, src, dst []byte) {
	panic("gf256: gfMulNib without asm support")
}
