package gf256

import (
	"testing"

	"repro/internal/raceflag"
)

// TestMulSliceAllocFree pins the kernel contract: the GF(256)
// multiply-accumulate primitives allocate nothing (they sit inside the
// per-stripe Reed-Solomon loop, which the chunk stream drives once per
// chunk in steady state).
func TestMulSliceAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation accounting is unreliable under the race detector")
	}
	src := make([]byte, 64<<10)
	dst := make([]byte, 64<<10)
	for i := range src {
		src[i] = byte(i * 31)
	}
	if avg := testing.AllocsPerRun(100, func() { MulSlice(0x1D, src, dst) }); avg != 0 {
		t.Errorf("MulSlice allocates %.2f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { MulSliceAssign(0x1D, src, dst) }); avg != 0 {
		t.Errorf("MulSliceAssign allocates %.2f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { XorSlice(src, dst) }); avg != 0 {
		t.Errorf("XorSlice allocates %.2f allocs/op, want 0", avg)
	}
}
