package core

// RangeReader behaviour: range correctness against the original bytes
// (both load paths), io.ReaderAt semantics, cache warm/cold
// accounting, damaged-chunk repair, a concurrent hammer under a budget
// small enough to force mid-read eviction, and goroutine-leak checks
// for Close with loads still in flight. The hammer and leak tests run
// under `go test -race ./...` in CI.

import (
	"bytes"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cache"
)

func TestReadRangeSpotChecks(t *testing.T) {
	const chunkSize, size = 2 << 10, 2<<10*9 + 431
	stream, data := encodeIndexed(t, chunkSize, size, 1)
	rng := rand.New(rand.NewSource(42))

	for _, pipeline := range []int{1, 4} {
		rr := openRange(t, stream, RangeOptions{Pipeline: pipeline})
		for trial := 0; trial < 50; trial++ {
			first := rng.Int63n(int64(size))
			n := rng.Int63n(int64(size) / 2)
			want := int64(size) - first
			if n < want {
				want = n
			}
			dst := make([]byte, n)
			got, _, err := rr.ReadRange(dst, first, n)
			if first+n > int64(size) {
				if err != io.EOF {
					t.Fatalf("pipeline %d: range past end returned %v, want io.EOF", pipeline, err)
				}
			} else if err != nil {
				t.Fatalf("pipeline %d: ReadRange(%d, %d): %v", pipeline, first, n, err)
			}
			if int64(got) != want {
				t.Fatalf("pipeline %d: ReadRange(%d, %d) = %d bytes, want %d", pipeline, first, n, got, want)
			}
			if !bytes.Equal(dst[:got], data[first:first+want]) {
				t.Fatalf("pipeline %d: range [%d, +%d) content mismatch", pipeline, first, n)
			}
		}
		if err := rr.Close(); err != nil {
			t.Fatalf("pipeline %d: close: %v", pipeline, err)
		}
	}
}

func TestReadAtContract(t *testing.T) {
	stream, data := encodeIndexed(t, 1<<10, 1<<10*3+100, 1)
	rr := openRange(t, stream, RangeOptions{})

	var ra io.ReaderAt = rr // compile-time interface check

	p := make([]byte, 500)
	n, err := ra.ReadAt(p, 1000)
	if n != 500 || err != nil {
		t.Fatalf("ReadAt mid = %d, %v", n, err)
	}
	if !bytes.Equal(p, data[1000:1500]) {
		t.Fatal("ReadAt mid content mismatch")
	}

	// Reading off the end delivers the partial tail plus io.EOF.
	tail := int64(len(data)) - 100
	n, err = ra.ReadAt(p, tail)
	if n != 100 || err != io.EOF {
		t.Fatalf("ReadAt tail = %d, %v; want 100, io.EOF", n, err)
	}
	if !bytes.Equal(p[:n], data[tail:]) {
		t.Fatal("ReadAt tail content mismatch")
	}

	if n, err = ra.ReadAt(p, int64(len(data))+5); n != 0 || err != io.EOF {
		t.Fatalf("ReadAt past end = %d, %v; want 0, io.EOF", n, err)
	}
	if _, _, err := rr.ReadRange(p, -1, 10); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, _, err := rr.ReadRange(p[:2], 0, 10); err == nil {
		t.Fatal("short destination accepted")
	}
}

func TestRangeReaderWarmReadsSkipDecode(t *testing.T) {
	stream, data := encodeIndexed(t, 4<<10, 4*4<<10, 1)
	rr := openRange(t, stream, RangeOptions{})

	dst := make([]byte, 6000)
	_, cold, err := rr.ReadRange(dst, 3000, 6000) // [3000, 9000) spans chunks 0-2
	if err != nil {
		t.Fatal(err)
	}
	if cold.Chunks != 3 {
		t.Fatalf("cold read decoded %d chunks, want 3", cold.Chunks)
	}
	_, warm, err := rr.ReadRange(dst, 3000, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Chunks != 0 {
		t.Fatalf("warm read decoded %d chunks, want 0 (cache hit)", warm.Chunks)
	}
	if !bytes.Equal(dst, data[3000:9000]) {
		t.Fatal("warm read content mismatch")
	}
	if total := rr.Report(); total.Chunks != 3 {
		t.Fatalf("lifetime report counts %d decodes, want 3", total.Chunks)
	}
}

func TestRangeReaderRepairsDamagedChunk(t *testing.T) {
	stream, data := encodeIndexed(t, 4<<10, 3*4<<10, 1)
	// Flip one payload bit in chunk 1 (its container starts after
	// chunk 0's; one bit is within SEC-DED's per-block budget).
	infos, err := InspectStream(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	chunk1 := ContainerOverheadBytes + infos[0].EncLen
	s := append([]byte(nil), stream...)
	s[chunk1+ContainerOverheadBytes+100] ^= 0x04

	rr := openRange(t, s, RangeOptions{})
	dst := make([]byte, 100)
	_, rep, err := rr.ReadRange(dst, 4<<10+500, 100) // inside chunk 1
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorrectedBits != 1 {
		t.Fatalf("cold damaged read corrected %d bits, want 1 (%+v)", rep.CorrectedBits, rep)
	}
	if !bytes.Equal(dst, data[4<<10+500:4<<10+600]) {
		t.Fatal("repaired chunk content mismatch")
	}
	// The repaired bytes are cached; the warm read re-repairs nothing.
	_, rep, err = rr.ReadRange(dst, 4<<10+500, 100)
	if err != nil || rep.CorrectedBits != 0 || rep.Chunks != 0 {
		t.Fatalf("warm read after repair: rep=%+v err=%v", rep, err)
	}
}

func TestRangeReaderSharedCacheKeysDisjoint(t *testing.T) {
	streamA, dataA := encodeIndexed(t, 1<<10, 4<<10, 1)
	rng := rand.New(rand.NewSource(77))
	dataB := make([]byte, 4<<10)
	rng.Read(dataB)
	streamB := encodeStream(t, indexTestChoice,
		StreamOptions{ChunkSize: 1 << 10, Pipeline: 1, Indexed: true}, dataB)

	shared := cache.New(1 << 20)
	defer shared.Close()
	ra := openRange(t, streamA, RangeOptions{Cache: shared, CacheKey: 1})
	rb := openRange(t, streamB, RangeOptions{Cache: shared, CacheKey: 2})

	if !bytes.Equal(readAll(t, ra), dataA) || !bytes.Equal(readAll(t, rb), dataB) {
		t.Fatal("shared-cache readers returned wrong data")
	}
	// Re-read both warm: same chunk ordinals, different archives — the
	// keys must not collide.
	if !bytes.Equal(readAll(t, ra), dataA) || !bytes.Equal(readAll(t, rb), dataB) {
		t.Fatal("shared-cache warm reads collided across archives")
	}
	// Closing a reader that borrowed the cache leaves it usable.
	if err := ra.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readAll(t, rb), dataB) {
		t.Fatal("closing one reader drained the shared cache")
	}
}

// TestRangeReaderHammer drives overlapping concurrent ranges through a
// cache whose budget holds only ~2 of 32 chunks, so entries are
// evicted out from under readers mid-flight; every read must still see
// exactly the original bytes. Run with -race.
func TestRangeReaderHammer(t *testing.T) {
	const chunkSize = 8 << 10
	const chunks = 32
	stream, data := encodeIndexed(t, chunkSize, chunkSize*chunks, 4)

	rr := openRange(t, stream, RangeOptions{
		Pipeline:   4,
		CacheBytes: 20 << 10, // ~2.5 chunks across 16 shards: constant churn
	})

	const goroutines = 8
	const iters = 60
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			dst := make([]byte, 3*chunkSize)
			for i := 0; i < iters; i++ {
				first := rng.Int63n(int64(len(data) - 1))
				n := rng.Int63n(int64(len(dst)-1)) + 1
				if first+n > int64(len(data)) {
					n = int64(len(data)) - first
				}
				got, _, err := rr.ReadRange(dst, first, n)
				if err != nil {
					t.Errorf("g%d: ReadRange(%d, %d): %v", g, first, n, err)
					return
				}
				if !bytes.Equal(dst[:got], data[first:first+int64(got)]) {
					t.Errorf("g%d: range [%d, +%d) corrupted under churn", g, first, n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// blockingReaderAt serves from mem but parks every ReadAt beyond a
// byte threshold until released, simulating slow cold storage.
type blockingReaderAt struct {
	mem     *bytes.Reader
	gate    chan struct{}
	armedAt int64 // offsets >= armedAt block (headers/index stay fast)
}

func (b *blockingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= b.armedAt {
		<-b.gate
	}
	return b.mem.ReadAt(p, off)
}

// TestRangeReaderCloseWithInflightLoads closes the reader while chunk
// loads are parked inside the source ReaderAt: blocked followers must
// fail fast with the cache's closed error, the leader must finish
// without deadlock once the source unblocks, and no goroutines may
// survive. Run with -race.
func TestRangeReaderCloseWithInflightLoads(t *testing.T) {
	base := runtime.NumGoroutine()
	stream, _ := encodeIndexed(t, 4<<10, 8*4<<10, 1)

	src := &blockingReaderAt{
		mem:     bytes.NewReader(stream),
		gate:    make(chan struct{}),
		armedAt: int64(len(stream)) + 1, // disarmed while OpenRangeReader reads the footer
	}
	rr, err := OpenRangeReader(src, int64(len(stream)), RangeOptions{Pipeline: 2})
	if err != nil {
		t.Fatal(err)
	}
	src.armedAt = 0 // every chunk read now parks on the gate

	const readers = 4
	done := make(chan error, readers)
	for i := 0; i < readers; i++ {
		go func() {
			dst := make([]byte, 4<<10)
			_, _, err := rr.ReadRange(dst, 0, 4<<10) // all contend for chunk 0
			done <- err
		}()
	}

	// Close while the leader is parked in src.ReadAt and followers are
	// parked on the in-flight load.
	if err := rr.Close(); err != nil {
		t.Fatal(err)
	}
	close(src.gate) // let the leader's read finish

	errs := 0
	for i := 0; i < readers; i++ {
		if err := <-done; err != nil {
			errs++
		}
	}
	// The leader completed its own load and may succeed; every blocked
	// follower must have been released with an error rather than
	// hanging. At minimum, nobody deadlocks and nothing leaks.
	if errs == 0 && readers > 1 {
		t.Log("all readers succeeded (leader finished before followers parked) — acceptable, leak check still applies")
	}
	if _, _, err := rr.ReadRange(make([]byte, 1), 0, 1); err == nil {
		t.Fatal("ReadRange after Close succeeded")
	}
	checkNoLeaks(t, base)
}
