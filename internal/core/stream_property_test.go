package core

// Property-based round-trip tests for the chunk stream: a
// generator-driven grid over ECC configuration × payload/chunk
// geometry × pipeline depth asserting that decode(encode(x)) == x
// byte-for-byte, that pipelined and sequential encoders emit identical
// streams, and that error injection within each code's correction
// budget always repairs.

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"repro/internal/ecc"
)

// propertyConfigs spans every ECC family in the search space,
// including several Reed-Solomon strengths and the interleaved
// extension method.
var propertyConfigs = []Config{
	{ecc.MethodParity, 1},
	{ecc.MethodParity, 8},
	{ecc.MethodHamming, 8},
	{ecc.MethodHamming, 64},
	{ecc.MethodSECDED, 8},
	{ecc.MethodSECDED, 64},
	{ecc.MethodReedSolomon, 2},
	{ecc.MethodReedSolomon, 15},
	{ecc.MethodReedSolomon, 103},
	{ecc.MethodInterleavedSECDED, 64},
}

// propertyGeometries exercises the chunking edge cases: a 1-byte chunk
// size, a payload that is an exact chunk multiple, a final partial
// chunk, a sub-chunk payload, and a 1-byte payload.
var propertyGeometries = []struct {
	name      string
	chunkSize int
	payload   int
}{
	{"chunk1B", 1, 48},
	{"exactMultiple", 1 << 10, 4 << 10},
	{"finalPartial", 1 << 10, 4<<10 + 37},
	{"subChunk", 1 << 10, 333},
	{"payload1B", 1 << 10, 1},
	{"empty", 1 << 10, 0},
}

func TestStreamRoundTripPropertyGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(0x57EA))
	for _, cfg := range propertyConfigs {
		for _, g := range propertyGeometries {
			data := make([]byte, g.payload)
			rng.Read(data)
			choice := Choice{Config: cfg, Threads: 2}
			var sequential []byte
			for _, pl := range []int{1, 4} {
				opts := StreamOptions{ChunkSize: g.chunkSize, Pipeline: pl}
				enc := encodeStream(t, choice, opts, data)
				if pl == 1 {
					sequential = enc
				} else if !bytes.Equal(enc, sequential) {
					t.Fatalf("%s/%s: pipeline=%d stream differs from sequential", cfg, g.name, pl)
				}
				cr := NewChunkReaderWith(bytes.NewReader(enc), 2, StreamOptions{Pipeline: pl})
				got, err := io.ReadAll(cr)
				if err != nil {
					t.Fatalf("%s/%s/pipeline=%d: decode: %v", cfg, g.name, pl, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("%s/%s/pipeline=%d: decode(encode(x)) != x", cfg, g.name, pl)
				}
				wantChunks := (g.payload + g.chunkSize - 1) / g.chunkSize
				if cr.Report().Chunks != wantChunks {
					t.Fatalf("%s/%s/pipeline=%d: %d chunks, want %d",
						cfg, g.name, pl, cr.Report().Chunks, wantChunks)
				}
			}
		}
	}
}

// correctionBudget returns how many bit flips may be injected per
// chunk payload with a repair guarantee, and 0 for detect-only codes.
// One flip is always within budget for the sparse-correcting codes
// (one flip can touch at most one codeword). For Reed-Solomon with m
// code devices, any f <= m flips hit at most f distinct devices per
// stripe, all CRC-locatable, so f erasures always rebuild.
func correctionBudget(cfg Config) int {
	switch cfg.Method {
	case ecc.MethodHamming, ecc.MethodSECDED, ecc.MethodInterleavedSECDED:
		return 1
	case ecc.MethodReedSolomon:
		if cfg.Param < 4 {
			return cfg.Param
		}
		return 4
	default:
		return 0
	}
}

func TestStreamInjectedFlipsWithinBudgetAlwaysRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(0xF11B))
	data := make([]byte, 12<<10+55)
	rng.Read(data)
	for _, cfg := range propertyConfigs {
		budget := correctionBudget(cfg)
		if budget == 0 {
			continue // parity detects only; covered below
		}
		choice := Choice{Config: cfg, Threads: 1}
		clean := encodeStream(t, choice, StreamOptions{ChunkSize: 2 << 10, Pipeline: 1}, data)
		infos, err := InspectStream(bytes.NewReader(clean))
		if err != nil {
			t.Fatalf("%s: inspect: %v", cfg, err)
		}
		for trial := 0; trial < 3; trial++ {
			enc := append([]byte(nil), clean...)
			// Inject up to `budget` flips into every chunk's payload
			// (never the replicated header — that has its own scheme).
			off := 0
			for _, ci := range infos {
				payload := enc[off+ContainerOverheadBytes : off+ContainerOverheadBytes+ci.EncLen]
				for f := 0; f < budget; f++ {
					bit := rng.Intn(len(payload) * 8)
					payload[bit/8] ^= 0x80 >> (bit % 8)
				}
				off += ContainerOverheadBytes + ci.EncLen
			}
			for _, pl := range []int{1, 4} {
				cr := NewChunkReaderWith(bytes.NewReader(enc), 1, StreamOptions{Pipeline: pl})
				got, rerr := io.ReadAll(cr)
				if rerr != nil {
					t.Fatalf("%s/trial=%d/pipeline=%d: %d flips/chunk must repair, got %v",
						cfg, trial, pl, budget, rerr)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("%s/trial=%d/pipeline=%d: silent corruption after repair", cfg, trial, pl)
				}
			}
		}
	}
}

func TestStreamParityDetectsButNeverLies(t *testing.T) {
	rng := rand.New(rand.NewSource(0xDE7))
	data := make([]byte, 8<<10)
	rng.Read(data)
	choice := Choice{Config: Config{Method: ecc.MethodParity, Param: 8}, Threads: 1}
	clean := encodeStream(t, choice, StreamOptions{ChunkSize: 2 << 10, Pipeline: 1}, data)
	for trial := 0; trial < 5; trial++ {
		enc := append([]byte(nil), clean...)
		// One flip somewhere in some chunk's payload region.
		chunk := rng.Intn(4)
		chunkLen := len(enc) / 4
		bit := rng.Intn((chunkLen - ContainerOverheadBytes) * 8)
		enc[chunk*chunkLen+ContainerOverheadBytes+bit/8] ^= 0x80 >> (bit % 8)
		for _, pl := range []int{1, 4} {
			cr := NewChunkReaderWith(bytes.NewReader(enc), 1, StreamOptions{Pipeline: pl})
			got, err := io.ReadAll(cr)
			if err == nil {
				t.Fatalf("trial %d/pipeline=%d: parity silently accepted a flipped payload", trial, pl)
			}
			// Everything before the damaged chunk must be intact.
			if want := chunk * (2 << 10); len(got) < want || !bytes.Equal(got[:want], data[:want]) {
				t.Fatalf("trial %d/pipeline=%d: prefix before damage not delivered intact", trial, pl)
			}
		}
	}
}
