package core

// Container format v2: a v1 chunk stream followed by a footer index
// and a fixed-size trailer. The index maps element (byte) ranges to
// chunk locations so a reader can decode just the chunks covering a
// requested range; it is wrapped in the same self-describing container
// header as a data chunk (with a reserved pseudo-method byte) and its
// payload is protected by its own SEC-DED code plus a CRC over the raw
// entries — the index is as resilient as the data it points to. The
// trailer is written three times with per-replica CRCs and read back
// with byte-wise majority voting, mirroring the chunk header's
// defense. v1 streams carry neither and remain fully readable; a v2
// stream whose entire footer is destroyed degrades to the sequential
// scan path (see rangereader.go).
//
//	[chunk 0][chunk 1]...[chunk n-1][index chunk][trailer x3]
//
// Index chunk: a standard replicated container header with
// Method = indexMethod, OrigLen = len(entries)*indexEntrySize + 4
// (the raw entries plus their CRC32), EncLen = the SEC-DED(64)
// encoding of that, and Param = the entry count. Sequential readers
// recognize the method byte, consume the footer, and report a clean
// EOF, so `arc decode` of a v2 stream yields exactly the v1 bytes.
//
// Trailer replica layout (24 bytes, little-endian):
//
//	offset size field
//	0      4    magic "ARCX"
//	4      1    container format version (2)
//	5      3    reserved, zero
//	8      8    index chunk offset from stream start
//	16     4    entry count
//	20     4    CRC32 (IEEE) of bytes [0,20)
import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/ecc"
	"repro/internal/ecc/secded"
)

const (
	// indexMethod is the reserved pseudo-method byte marking the index
	// chunk. It is far outside the real ecc.Method range, so a data
	// chunk can never alias it.
	indexMethod ecc.Method = 0x49 // 'I'

	// indexEntrySize is the wire size of one index entry.
	indexEntrySize = 32

	trailerMagic     = "ARCX"
	trailerVersion   = 2
	trailerRecordLen = 24
	trailerReplicas  = 3

	// TrailerBytes is the fixed v2 trailer size: three replicated,
	// CRC-guarded records.
	TrailerBytes = trailerRecordLen * trailerReplicas
)

// indexEntry locates one chunk: where its container starts in the
// stream, how long its encoded payload is, and which original byte
// range it reproduces. HdrCRC digests the chunk's replicated header
// region so a stale or misdirected index is detected before a decode
// is attempted.
type indexEntry struct {
	Off       int64  // container offset from stream start
	EncLen    int64  // encoded payload length (container is ContainerOverheadBytes + EncLen)
	OrigStart int64  // cumulative original-byte offset of this chunk
	OrigLen   int64  // original bytes this chunk reproduces
	HdrCRC    uint32 // CRC32 (IEEE) of the container's replicated header
}

// indexCode returns the SEC-DED(64) code protecting index payloads,
// built once — codes are stateless and safe for concurrent use.
var indexCode = sync.OnceValue(func() ecc.Code { return secded.New(64, 1) })

// appendIndexFooter appends the complete v2 footer — index chunk plus
// replicated trailer — for the given entries (streamLen is the byte
// length of the chunk stream the footer follows, i.e. the index
// chunk's offset).
func appendIndexFooter(dst []byte, entries []indexEntry, streamLen int64) []byte {
	raw := make([]byte, len(entries)*indexEntrySize+4)
	for i, e := range entries {
		p := raw[i*indexEntrySize:]
		binary.LittleEndian.PutUint64(p[0:], uint64(e.Off))
		binary.LittleEndian.PutUint64(p[8:], uint64(e.EncLen))
		binary.LittleEndian.PutUint64(p[16:], uint64(e.OrigStart))
		binary.LittleEndian.PutUint32(p[24:], uint32(e.OrigLen))
		binary.LittleEndian.PutUint32(p[28:], e.HdrCRC)
	}
	crc := crc32.ChecksumIEEE(raw[:len(raw)-4])
	binary.LittleEndian.PutUint32(raw[len(raw)-4:], crc)

	enc := indexCode().Encode(raw)
	h := header{
		Method:  indexMethod,
		Param:   len(entries),
		DevSize: 0,
		OrigLen: len(raw),
		EncLen:  len(enc),
	}
	hdr := make([]byte, ContainerOverheadBytes)
	marshalHeaderInto(hdr, h)
	dst = append(dst, hdr...)
	dst = append(dst, enc...)
	return appendTrailer(dst, streamLen, len(entries))
}

// appendTrailer appends the three CRC-guarded trailer replicas.
func appendTrailer(dst []byte, indexOff int64, entries int) []byte {
	var one [trailerRecordLen]byte
	copy(one[:], trailerMagic)
	one[4] = trailerVersion
	binary.LittleEndian.PutUint64(one[8:], uint64(indexOff))
	binary.LittleEndian.PutUint32(one[16:], uint32(entries))
	crc := crc32.ChecksumIEEE(one[:trailerRecordLen-4])
	binary.LittleEndian.PutUint32(one[trailerRecordLen-4:], crc)
	for i := 0; i < trailerReplicas; i++ {
		dst = append(dst, one[:]...)
	}
	return dst
}

// parseTrailer recovers (indexOff, entryCount) from the trailing
// TrailerBytes of a stream. Like the chunk header, it first accepts
// any replica with a valid CRC and then falls back to byte-wise
// majority voting across the three.
func parseTrailer(buf []byte) (indexOff int64, entries int, err error) {
	if len(buf) < TrailerBytes {
		return 0, 0, fmt.Errorf("%w: short trailer (%d bytes)", ErrContainer, len(buf))
	}
	buf = buf[len(buf)-TrailerBytes:]
	for i := 0; i < trailerReplicas; i++ {
		if off, n, err := parseTrailerRecord(buf[i*trailerRecordLen : (i+1)*trailerRecordLen]); err == nil {
			return off, n, nil
		}
	}
	var voted [trailerRecordLen]byte
	voteBytes(voted[:], buf, buf[trailerRecordLen:], buf[2*trailerRecordLen:])
	off, n, verr := parseTrailerRecord(voted[:])
	if verr != nil {
		return 0, 0, fmt.Errorf("%w: all trailer replicas damaged beyond voting", ErrContainer)
	}
	return off, n, nil
}

func parseTrailerRecord(r []byte) (int64, int, error) {
	want := binary.LittleEndian.Uint32(r[trailerRecordLen-4:])
	if crc32.ChecksumIEEE(r[:trailerRecordLen-4]) != want {
		return 0, 0, fmt.Errorf("%w: trailer CRC mismatch", ErrContainer)
	}
	if string(r[:4]) != trailerMagic {
		return 0, 0, fmt.Errorf("%w: bad trailer magic", ErrContainer)
	}
	if r[4] != trailerVersion {
		return 0, 0, fmt.Errorf("%w: unsupported container version %d", ErrContainer, r[4])
	}
	if r[5] != 0 || r[6] != 0 || r[7] != 0 {
		return 0, 0, fmt.Errorf("%w: nonzero reserved trailer bytes", ErrContainer)
	}
	off := int64(binary.LittleEndian.Uint64(r[8:]))
	n := int(binary.LittleEndian.Uint32(r[16:]))
	if off < 0 || n < 0 {
		return 0, 0, fmt.Errorf("%w: negative trailer fields", ErrContainer)
	}
	return off, n, nil
}

// decodeIndexPayload verifies and repairs an index chunk's encoded
// payload and parses its entries. h is the (already voted) index chunk
// header, entries the trailer's entry count, and streamSize the total
// stream length — every allocation and bound below is cross-checked
// against those before it is trusted. The returned ecc.Report counts
// the index's own repairs.
func decodeIndexPayload(h header, enc []byte, entries int, indexOff, streamSize int64) ([]indexEntry, ecc.Report, error) {
	var zero ecc.Report
	rawLen := entries*indexEntrySize + 4
	if h.OrigLen != rawLen {
		return nil, zero, fmt.Errorf("%w: index length %d disagrees with trailer entry count %d", ErrContainer, h.OrigLen, entries)
	}
	code := indexCode()
	if h.EncLen != code.EncodedSize(rawLen) || h.EncLen != len(enc) {
		return nil, zero, fmt.Errorf("%w: index payload length %d (want %d)", ErrContainer, len(enc), code.EncodedSize(rawLen))
	}
	raw, rep, err := code.Decode(enc, rawLen)
	if err != nil {
		return nil, rep, fmt.Errorf("%w: index beyond ECC budget: %v", ErrContainer, err)
	}
	want := binary.LittleEndian.Uint32(raw[rawLen-4:])
	if crc32.ChecksumIEEE(raw[:rawLen-4]) != want {
		return nil, rep, fmt.Errorf("%w: index CRC mismatch after repair", ErrContainer)
	}
	out := make([]indexEntry, entries)
	var nextOff, nextOrig int64
	for i := range out {
		p := raw[i*indexEntrySize:]
		e := indexEntry{
			Off:       int64(binary.LittleEndian.Uint64(p[0:])),
			EncLen:    int64(binary.LittleEndian.Uint64(p[8:])),
			OrigStart: int64(binary.LittleEndian.Uint64(p[16:])),
			OrigLen:   int64(binary.LittleEndian.Uint32(p[24:])),
			HdrCRC:    binary.LittleEndian.Uint32(p[28:]),
		}
		if e.Off != nextOff || e.OrigStart != nextOrig || e.EncLen < 0 || e.OrigLen <= 0 {
			return nil, rep, fmt.Errorf("%w: index entry %d is inconsistent", ErrContainer, i)
		}
		if e.Off+int64(ContainerOverheadBytes)+e.EncLen > indexOff || indexOff > streamSize {
			return nil, rep, fmt.Errorf("%w: index entry %d exceeds the stream", ErrContainer, i)
		}
		nextOff = e.Off + int64(ContainerOverheadBytes) + e.EncLen
		nextOrig = e.OrigStart + e.OrigLen
		out[i] = e
	}
	if nextOff != indexOff {
		return nil, rep, fmt.Errorf("%w: index covers %d stream bytes, expected %d", ErrContainer, nextOff, indexOff)
	}
	return out, rep, nil
}

// headerCRC digests a container's replicated header region — the
// chunk-identity check an index entry carries.
func headerCRC(container []byte) uint32 {
	return crc32.ChecksumIEEE(container[:ContainerOverheadBytes])
}
