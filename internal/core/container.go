package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/ecc"
)

// The container wraps ECC-encoded payloads with a self-describing
// header so arc_decode needs no side-band information. The header is
// the one region the payload's ECC does not cover, so it is written
// three times and read back with byte-wise majority voting — a single
// soft error (or a short burst inside one replica) cannot take down
// the metadata that locates everything else.

const (
	containerMagic   = "ARC1"
	containerVersion = 1
	headerLen        = 4 + 1 + 1 + 4 + 4 + 8 + 8 + 4 // magic..crc
	headerReplicas   = 3
)

// ErrContainer reports an unusable container (bad magic, version, or
// unrecoverable header corruption).
var ErrContainer = errors.New("core: corrupt container")

// header is the decoded container metadata.
type header struct {
	Method  ecc.Method
	Param   int
	DevSize int // Reed-Solomon device size (0 for other methods)
	OrigLen int
	EncLen  int
}

func (h header) config() Config { return Config{Method: h.Method, Param: h.Param} }

// marshalHeader builds one header replica (with CRC) and returns the
// full replicated prefix.
func marshalHeader(h header) []byte {
	out := make([]byte, headerLen*headerReplicas)
	marshalHeaderInto(out, h)
	return out
}

// marshalHeaderInto writes the replicated header prefix into dst
// (which must hold ContainerOverheadBytes). The single replica builds
// on the stack, so the call allocates nothing.
func marshalHeaderInto(dst []byte, h header) {
	var one [headerLen]byte
	copy(one[:], containerMagic)
	one[4] = containerVersion
	one[5] = byte(h.Method)
	binary.LittleEndian.PutUint32(one[6:], uint32(h.Param))
	binary.LittleEndian.PutUint32(one[10:], uint32(h.DevSize))
	binary.LittleEndian.PutUint64(one[14:], uint64(h.OrigLen))
	binary.LittleEndian.PutUint64(one[22:], uint64(h.EncLen))
	crc := crc32.ChecksumIEEE(one[:headerLen-4])
	binary.LittleEndian.PutUint32(one[headerLen-4:], crc)
	for i := 0; i < headerReplicas; i++ {
		copy(dst[i*headerLen:], one[:])
	}
}

// unmarshalHeader recovers the header from the replicated prefix. It
// first looks for any replica with a valid CRC; failing that, it
// majority-votes each byte across replicas and retries, so even three
// damaged replicas recover when the damage does not align. The happy
// path allocates nothing (this runs once per chunk on the stream read
// path).
func unmarshalHeader(buf []byte) (header, error) {
	if len(buf) < headerLen*headerReplicas {
		return header{}, fmt.Errorf("%w: short header (%d bytes)", ErrContainer, len(buf))
	}
	for i := 0; i < headerReplicas; i++ {
		if h, err := parseOne(buf[i*headerLen : (i+1)*headerLen]); err == nil {
			return h, nil
		}
	}
	var voted [headerLen]byte
	voteBytes(voted[:], buf, buf[headerLen:], buf[2*headerLen:])
	h, err := parseOne(voted[:])
	if err != nil {
		return header{}, fmt.Errorf("%w: all header replicas damaged beyond voting", ErrContainer)
	}
	return h, nil
}

// vote3 returns the bitwise majority of three bytes.
func vote3(a, b, c byte) byte {
	return (a & b) | (a & c) | (b & c)
}

func parseOne(r []byte) (header, error) {
	want := binary.LittleEndian.Uint32(r[headerLen-4:])
	if crc32.ChecksumIEEE(r[:headerLen-4]) != want {
		return header{}, fmt.Errorf("%w: header CRC mismatch", ErrContainer)
	}
	if string(r[:4]) != containerMagic {
		return header{}, fmt.Errorf("%w: bad magic", ErrContainer)
	}
	if r[4] != containerVersion {
		return header{}, fmt.Errorf("%w: unsupported version %d", ErrContainer, r[4])
	}
	h := header{
		Method:  ecc.Method(r[5]),
		Param:   int(binary.LittleEndian.Uint32(r[6:])),
		DevSize: int(binary.LittleEndian.Uint32(r[10:])),
		OrigLen: int(binary.LittleEndian.Uint64(r[14:])),
		EncLen:  int(binary.LittleEndian.Uint64(r[22:])),
	}
	if h.OrigLen < 0 || h.EncLen < 0 {
		return header{}, fmt.Errorf("%w: negative lengths", ErrContainer)
	}
	return h, nil
}

// wrap assembles the final container: replicated header + payload.
func wrap(h header, payload []byte) []byte {
	hdr := marshalHeader(h)
	out := make([]byte, 0, len(hdr)+len(payload))
	out = append(out, hdr...)
	return append(out, payload...)
}

// unwrap splits a container into header and payload.
func unwrap(buf []byte) (header, []byte, error) {
	h, err := unmarshalHeader(buf)
	if err != nil {
		return header{}, nil, err
	}
	payload := buf[headerLen*headerReplicas:]
	if len(payload) < h.EncLen {
		return header{}, nil, fmt.Errorf("%w: payload truncated (%d < %d)", ErrContainer, len(payload), h.EncLen)
	}
	return h, payload[:h.EncLen], nil
}

// ContainerOverheadBytes is the fixed container cost in bytes.
const ContainerOverheadBytes = headerLen * headerReplicas

// chunkBuf is a pooled, grow-only byte buffer that circulates through
// the chunk stream machinery (payload accumulation, encoded
// containers, decoded chunks). Pooling the wrapper struct — not the
// slice — keeps sync.Pool round trips free of boxing allocations.
//
// Ownership is linear: whoever holds the *chunkBuf owns b exclusively
// and must either hand the whole wrapper on or putChunkBuf it; no
// slice of b may outlive the Put.
type chunkBuf struct{ b []byte }

var chunkBufPool = sync.Pool{New: func() any { return new(chunkBuf) }}

// getChunkBuf returns a pooled buffer resized to length n (contents
// unspecified).
func getChunkBuf(n int) *chunkBuf {
	cb := chunkBufPool.Get().(*chunkBuf)
	cb.b = growTo(cb.b, n)
	return cb
}

func putChunkBuf(cb *chunkBuf) {
	if cb != nil {
		chunkBufPool.Put(cb)
	}
}

// growTo returns b resized to length n, reusing its storage when the
// capacity suffices. Contents are unspecified.
func growTo(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}
