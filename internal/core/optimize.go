package core

import (
	"fmt"
	"math"

	"repro/internal/ecc"
)

// Sentinel constraint values mirroring the paper's ARC_ANY_* flags.
const (
	// AnyMem removes the storage constraint.
	AnyMem = math.MaxFloat64
	// AnyBW removes the throughput constraint.
	AnyBW = 0.0
)

// Resiliency is the paper's resiliency constraint: restrict ARC to
// specific ECC methods, to methods with specific error-response
// capabilities, or to methods able to correct an expected error rate.
// The zero value (ARC_ANY_ECC) allows every method.
type Resiliency struct {
	// Methods restricts to these ECC families (nil/empty = any).
	Methods []ecc.Method
	// Caps requires these error-response capabilities (0 = any).
	Caps ecc.Capability
	// ErrorsPerMB, when positive, restricts to methods able to correct
	// that expected uniform soft-error rate.
	ErrorsPerMB float64
}

// AnyECC is the unrestricted resiliency constraint.
var AnyECC = Resiliency{}

// allows reports whether the constraint admits a configuration.
func (r Resiliency) allows(c Config) bool {
	if len(r.Methods) > 0 {
		ok := false
		for _, m := range r.Methods {
			if m == c.Method {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if r.Caps != 0 && !c.Caps().Has(r.Caps) {
		return false
	}
	if r.ErrorsPerMB > 0 {
		ok := false
		for _, m := range MethodsForErrorRate(r.ErrorsPerMB) {
			if m == c.Method {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Choice is the optimizer's selected configuration.
type Choice struct {
	Config  Config
	Threads int
	// PredictedEncMBs/PredictedDecMBs come from the training table.
	PredictedEncMBs float64
	PredictedDecMBs float64
	// Overhead is the configuration's storage overhead fraction.
	Overhead float64
	// OverBudget is set when no configuration satisfied the memory
	// constraint and ARC had to exceed it (the paper prints a warning
	// in this case).
	OverBudget bool
	// UnderThroughput is set when the predicted throughput misses the
	// requested lower bound.
	UnderThroughput bool
}

// Optimizer selects ECC configurations under the three constraints,
// driven by the trained throughput table.
type Optimizer struct {
	Table      *TrainTable
	MaxThreads int
}

// candidate pairs a configuration with its best thread choice for a
// throughput bound.
type candidate struct {
	cfg      Config
	threads  int
	encMBs   float64
	decMBs   float64
	overhead float64
	meetsBW  bool
}

// candidates enumerates allowed configurations; for each, threads are
// chosen as the fewest that meet the throughput bound (the paper uses
// fewer threads when resources suffice), falling back to the fastest
// available when none meets it.
func (o *Optimizer) candidates(res Resiliency, bw float64) []candidate {
	var out []candidate
	counts := o.Table.ThreadCounts()
	for _, cfg := range AllConfigs() {
		if !res.allows(cfg) {
			continue
		}
		var best *candidate
		for _, th := range counts {
			if o.MaxThreads > 0 && th > o.MaxThreads {
				continue
			}
			e, ok := o.Table.Lookup(cfg.String(), th)
			if !ok {
				continue
			}
			c := candidate{cfg: cfg, threads: th, encMBs: e.EncMBs, decMBs: e.DecMBs,
				overhead: cfg.Overhead(), meetsBW: e.EncMBs >= bw}
			if c.meetsBW {
				// Fewest threads that meet the bound: counts ascend,
				// so the first hit wins.
				best = &c
				break
			}
			// Track the fastest as fallback.
			if best == nil || c.encMBs > best.encMBs {
				best = &c
			}
		}
		if best != nil {
			out = append(out, *best)
		}
	}
	return out
}

// ErrNoConfiguration reports an over-constrained request (e.g. a
// resiliency constraint naming no known method).
var ErrNoConfiguration = fmt.Errorf("core: no ECC configuration matches the constraints")

// Joint implements the paper's selection procedure: among allowed
// configurations, prefer those meeting both the memory bound (overhead
// under but closest to it) and the throughput bound (above but closest
// to it); if none meets both, fall back to the configuration closest
// to the memory budget with throughput closest to the bound.
func (o *Optimizer) Joint(mem, bw float64, res Resiliency) (Choice, error) {
	if res.ErrorsPerMB > 0 && mem == AnyMem {
		// Guarantee mode: the user stated an error rate but no storage
		// budget, so ARC applies the cheapest configuration adequate
		// for the rate (the paper's 1 err/MB -> SEC-DED over every
		// eight bytes) rather than spending unbounded storage.
		cfg := MinimalAdequateConfig(res.ErrorsPerMB)
		if res.allows(cfg) {
			mem = cfg.Overhead()
		}
	}
	cands := o.candidates(res, bw)
	if len(cands) == 0 {
		return Choice{}, ErrNoConfiguration
	}
	// Pass 1: overhead <= mem and throughput >= bw; maximize overhead
	// (closest under budget = strongest protection the budget buys),
	// tie-break on smallest throughput surplus.
	var best *candidate
	for i := range cands {
		c := &cands[i]
		if c.overhead > mem || !c.meetsBW {
			continue
		}
		if best == nil || c.overhead > best.overhead ||
			(c.overhead == best.overhead && c.encMBs < best.encMBs) {
			best = c
		}
	}
	if best != nil {
		return choiceFrom(*best, mem, bw), nil
	}
	// Pass 2: the throughput bound is unreachable; hold the budget and
	// get as close to the bound as possible (paper: "ARC attempts to
	// get as close as possible"), breaking ties toward protection.
	for i := range cands {
		c := &cands[i]
		if c.overhead > mem {
			continue
		}
		if best == nil || c.encMBs > best.encMBs ||
			(c.encMBs == best.encMBs && c.overhead > best.overhead) {
			best = c
		}
	}
	if best != nil {
		return choiceFrom(*best, mem, bw), nil
	}
	// Pass 3: nothing fits the budget (paper: go over, warn, use the
	// configuration with the lowest possible overhead).
	for i := range cands {
		c := &cands[i]
		if best == nil || c.overhead < best.overhead ||
			(c.overhead == best.overhead && c.encMBs > best.encMBs) {
			best = c
		}
	}
	return choiceFrom(*best, mem, bw), nil
}

// Memory optimizes for the storage budget only.
func (o *Optimizer) Memory(mem float64, res Resiliency) (Choice, error) {
	return o.Joint(mem, AnyBW, res)
}

// Throughput optimizes for the throughput bound only.
func (o *Optimizer) Throughput(bw float64, res Resiliency) (Choice, error) {
	return o.Joint(AnyMem, bw, res)
}

func choiceFrom(c candidate, mem, bw float64) Choice {
	return Choice{
		Config:          c.cfg,
		Threads:         c.threads,
		PredictedEncMBs: c.encMBs,
		PredictedDecMBs: c.decMBs,
		Overhead:        c.overhead,
		OverBudget:      c.overhead > mem,
		UnderThroughput: bw > 0 && c.encMBs < bw,
	}
}
