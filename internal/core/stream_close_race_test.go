package core

// Regression test for ChunkReader.Close racing a mid-stream decode
// error — the scenario the chansafety analyzer guards statically. The
// reader's Close cancels the pipeline from the consumer side at the
// same moment a decode worker is failing a damaged chunk and the
// producer is still submitting; a shutdown bug here strands the
// producer on a send or a worker on a result channel. The test runs
// the window at several read depths (before the pipeline starts, with
// the error chunk still in flight, and after the error has surfaced)
// and checks the goroutine count settles back every time. CI runs it
// under -race with -count=5 to vary scheduling.

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/ecc"
)

func TestChunkReaderCloseRacesMidStreamError(t *testing.T) {
	base := runtime.NumGoroutine()
	data := make([]byte, 16<<10)
	rand.New(rand.NewSource(107)).Read(data)
	// Parity detects but cannot correct: a payload flip is terminal.
	choice := Choice{Config: Config{Method: ecc.MethodParity, Param: 8}, Threads: 1}
	enc := encodeStream(t, choice, StreamOptions{ChunkSize: 2 << 10, Pipeline: 1}, data)
	chunkLen := len(enc) / 8
	enc[3*chunkLen+ContainerOverheadBytes+50] ^= 0x01

	// Read depths in bytes: 0 closes an unstarted pipeline, 1 closes
	// with chunk 3 still being decoded, 3 chunks' worth closes just
	// under the error, -1 drains until the error surfaces first.
	for _, depth := range []int{0, 1, 700, 3 * (2 << 10), -1} {
		cr := NewChunkReaderWith(bytes.NewReader(enc), 1, StreamOptions{Pipeline: 8})
		if depth < 0 {
			_, err := io.ReadAll(cr)
			if !errors.Is(err, ecc.ErrUncorrectable) {
				t.Fatalf("drain: want ErrUncorrectable, got %v", err)
			}
		} else if depth > 0 {
			if _, err := io.ReadFull(cr, make([]byte, depth)); err != nil {
				t.Fatalf("depth %d: %v", depth, err)
			}
		}
		if err := cr.Close(); err != nil {
			t.Fatalf("depth %d: Close = %v", depth, err)
		}
		if _, err := cr.Read(make([]byte, 16)); err == nil {
			t.Fatalf("depth %d: Read after Close succeeded", depth)
		}
		// Close must have cancelled and joined the producer and every
		// decode worker, even with the poisoned chunk in flight.
		checkNoLeaks(t, base)
	}
}
