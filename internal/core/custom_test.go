package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ecc"
)

// triplicate is a toy custom code: every byte stored three times,
// majority-voted on decode. Param is unused (grid of one).
type triplicate struct{}

func (triplicate) Name() string          { return "triple1" }
func (triplicate) Overhead() float64     { return 2.0 }
func (triplicate) EncodedSize(n int) int { return 3 * n }
func (triplicate) Caps() ecc.Capability {
	return ecc.DetectSparse | ecc.CorrectSparse | ecc.CorrectBurst
}

func (triplicate) Encode(data []byte) []byte {
	out := make([]byte, 3*len(data))
	copy(out, data)
	copy(out[len(data):], data)
	copy(out[2*len(data):], data)
	return out
}

func (triplicate) Decode(enc []byte, origLen int) ([]byte, ecc.Report, error) {
	var rep ecc.Report
	if len(enc) < 3*origLen {
		return nil, rep, ecc.ErrTruncated
	}
	out := make([]byte, origLen)
	for i := 0; i < origLen; i++ {
		a, b, c := enc[i], enc[origLen+i], enc[2*origLen+i]
		v := (a & b) | (a & c) | (b & c)
		out[i] = v
		if a != b || b != c {
			rep.DetectedBlocks++
			rep.CorrectedBlocks++
		}
	}
	return out, rep, nil
}

var tripleMethod = CustomMethod{
	ID:       CustomMethodBase,
	Name:     "triple",
	Params:   []int{1},
	Overhead: func(int) float64 { return 2.0 },
	Caps:     ecc.DetectSparse | ecc.CorrectSparse | ecc.CorrectBurst,
	Build: func(param, workers, devSize int) (ecc.Code, error) {
		return triplicate{}, nil
	},
}

func TestRegisterCustomValidation(t *testing.T) {
	if err := RegisterCustomMethod(CustomMethod{ID: 5}); err == nil {
		t.Fatal("reserved id must fail")
	}
	if err := RegisterCustomMethod(CustomMethod{ID: CustomMethodBase}); err == nil {
		t.Fatal("incomplete definition must fail")
	}
}

func TestCustomMethodEndToEnd(t *testing.T) {
	if err := RegisterCustomMethod(tripleMethod); err != nil {
		t.Fatal(err)
	}
	defer UnregisterCustomMethod(tripleMethod.ID)

	// Duplicate registration rejected.
	if err := RegisterCustomMethod(tripleMethod); err == nil {
		t.Fatal("duplicate id must fail")
	}

	// The family shows up in the configuration space.
	found := false
	for _, c := range AllConfigs() {
		if c.Method == tripleMethod.ID {
			found = true
			if c.String() != "triple1" {
				t.Fatalf("custom config string %q", c)
			}
			if c.Overhead() != 2.0 {
				t.Fatal("custom overhead not consulted")
			}
			if !c.Caps().Has(ecc.CorrectBurst) {
				t.Fatal("custom caps not consulted")
			}
		}
	}
	if !found {
		t.Fatal("custom config missing from AllConfigs")
	}

	// A fresh engine trains it and the optimizer can be pinned to it.
	eng, err := NewEngine(EngineOptions{MaxThreads: 1, CacheDir: "-", SampleBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, ok := eng.Table().Lookup("triple1", 1); !ok {
		t.Fatal("custom config not trained")
	}
	data := make([]byte, 10_000)
	rand.New(rand.NewSource(80)).Read(data)
	enc, err := eng.Encode(data, AnyMem, AnyBW, Resiliency{Methods: []ecc.Method{tripleMethod.ID}})
	if err != nil {
		t.Fatal(err)
	}
	if enc.Choice.Config.Method != tripleMethod.ID {
		t.Fatalf("chose %s", enc.Choice.Config)
	}
	// Decode dispatches by container method id, including repairs.
	mut := append([]byte(nil), enc.Encoded...)
	mut[ContainerOverheadBytes+500] ^= 0xFF
	dec, err := eng.Decode(mut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Data, data) {
		t.Fatal("custom decode mismatch")
	}
	if dec.Report.CorrectedBlocks != 1 {
		t.Fatalf("corrected %d, want 1", dec.Report.CorrectedBlocks)
	}
}

func TestCustomMethodSelectedByBudget(t *testing.T) {
	if err := RegisterCustomMethod(tripleMethod); err != nil {
		t.Fatal(err)
	}
	defer UnregisterCustomMethod(tripleMethod.ID)
	eng, err := NewEngine(EngineOptions{MaxThreads: 1, CacheDir: "-", SampleBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// With a budget of 2.5 the 2.0-overhead custom family is the
	// closest-under choice.
	choice, err := eng.Optimizer().Memory(2.5, AnyECC)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Config.Method != tripleMethod.ID {
		t.Fatalf("budget 2.5 chose %s, want the custom family", choice.Config)
	}
}

func TestCustomConfigStringFallback(t *testing.T) {
	c := Config{Method: 200, Param: 3}
	if got := c.String(); got != fmt.Sprintf("unknown-%d-%d", 200, 3) {
		t.Fatalf("unregistered custom id string %q", got)
	}
	if _, err := c.Build(1); err == nil {
		t.Fatal("unregistered custom id must not build")
	}
}
