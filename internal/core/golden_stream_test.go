package core

// Golden stream-format regression: small encoded streams are committed
// under testdata/ and must decode, byte-for-byte, forever. This guards
// the chunk container layout against silent drift from pipeline
// changes or future container edits — an ARC stream written today is a
// storage artifact that tomorrow's reader has to recover.
//
// To regenerate after an *intentional* format change (which must also
// bump containerVersion), run:
//
//	ARC_UPDATE_GOLDEN=1 go test -run TestGoldenStreams ./internal/core/
//
// and commit the new files plus updated digests.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ecc"
)

// goldenStreams pins each committed stream to its configuration,
// geometry, and encoded-byte digest (sha256 prefix, as in
// golden_test.go).
var goldenStreams = []struct {
	file      string
	config    Config
	chunkSize int
	payload   int
	digest    string
}{
	{"stream_parity8_3chunks.arc", Config{ecc.MethodParity, 8}, 1024, 3 * 1024, "efc41d76beb8a951"},
	{"stream_secded64_partial.arc", Config{ecc.MethodSECDED, 64}, 1024, 2*1024 + 300, "1f775fdb7e8cd697"},
	{"stream_rs-m15_4chunks.arc", Config{ecc.MethodReedSolomon, 15}, 2048, 4 * 2048, "c491459152b003ab"},
	{"stream_ilsecded64_2chunks.arc", Config{ecc.MethodInterleavedSECDED, 64}, 1024, 2*1024 + 1, "4a59b9151df208e8"},
}

// goldenStreamPayload regenerates the deterministic plaintext each
// golden stream encodes.
func goldenStreamPayload(n int) []byte {
	rng := rand.New(rand.NewSource(0x60D5))
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(rng.Intn(256))
	}
	return buf
}

func goldenStreamEncode(t *testing.T, cfg Config, chunkSize int, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw, err := streamTestEngine(1).NewChunkWriterChoice(&buf,
		Choice{Config: cfg, Threads: 1}, StreamOptions{ChunkSize: chunkSize, Pipeline: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGoldenStreams(t *testing.T) {
	update := os.Getenv("ARC_UPDATE_GOLDEN") != ""
	for _, g := range goldenStreams {
		path := filepath.Join("testdata", g.file)
		payload := goldenStreamPayload(g.payload)
		if update {
			enc := goldenStreamEncode(t, g.config, g.chunkSize, payload)
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, enc, 0o644); err != nil {
				t.Fatal(err)
			}
			h := sha256.Sum256(enc)
			t.Logf("%s: regenerated, digest %s", g.file, hex.EncodeToString(h[:8]))
			continue
		}
		enc, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden stream (run with ARC_UPDATE_GOLDEN=1 to generate): %v", g.file, err)
		}
		// The committed artifact itself must be pristine.
		h := sha256.Sum256(enc)
		if got := hex.EncodeToString(h[:8]); got != g.digest {
			t.Fatalf("%s: golden file digest %s != pinned %s (testdata corrupted or format changed)", g.file, got, g.digest)
		}
		// Today's bytes decode forever — through both read paths.
		for _, pl := range []int{1, 4} {
			cr := NewChunkReaderWith(bytes.NewReader(enc), 1, StreamOptions{Pipeline: pl})
			got, err := io.ReadAll(cr)
			if err != nil {
				t.Fatalf("%s/pipeline=%d: golden stream no longer decodes: %v", g.file, pl, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("%s/pipeline=%d: golden stream decodes to wrong payload", g.file, pl)
			}
			wantChunks := (g.payload + g.chunkSize - 1) / g.chunkSize
			if cr.Report().Chunks != wantChunks {
				t.Fatalf("%s/pipeline=%d: %d chunks, want %d", g.file, pl, cr.Report().Chunks, wantChunks)
			}
		}
		// And today's writer still emits exactly these bytes (pins the
		// pipelined encoder to the committed format).
		for _, pl := range []int{1, 4} {
			reenc := encodeStream(t, Choice{Config: g.config, Threads: 1},
				StreamOptions{ChunkSize: g.chunkSize, Pipeline: pl}, payload)
			if !bytes.Equal(reenc, enc) {
				t.Fatalf("%s/pipeline=%d: writer output drifted from the committed stream\n"+
					"If this change is intentional, bump containerVersion and regenerate with ARC_UPDATE_GOLDEN=1.",
					g.file, pl)
			}
		}
		// Header metadata stays inspectable without decode.
		infos, err := InspectStream(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("%s: inspect: %v", g.file, err)
		}
		for _, ci := range infos {
			if ci.Config != g.config {
				t.Fatalf("%s: chunk config %s != %s", g.file, ci.Config, g.config)
			}
		}
	}
}
