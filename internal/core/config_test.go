package core

import (
	"testing"

	"repro/internal/ecc"
)

func TestAllConfigsSortedAndBuildable(t *testing.T) {
	cs := AllConfigs()
	if len(cs) < 15 {
		t.Fatalf("only %d configurations; expected a rich space", len(cs))
	}
	prev := -1.0
	for _, c := range cs {
		if c.Overhead() < prev {
			t.Fatalf("configs not sorted by overhead at %s", c)
		}
		prev = c.Overhead()
		code, err := c.Build(1)
		if err != nil {
			t.Fatalf("%s: build: %v", c, err)
		}
		// Overhead estimate must match the built code's figure.
		if diff := code.Overhead() - c.Overhead(); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: Overhead mismatch: config %f code %f", c, c.Overhead(), code.Overhead())
		}
	}
}

func TestConfigStringRoundTrip(t *testing.T) {
	for _, c := range AllConfigs() {
		got, err := ParseConfig(c.String())
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if got != c {
			t.Fatalf("round trip %s -> %s", c, got)
		}
	}
	if _, err := ParseConfig("nonsense"); err == nil {
		t.Fatal("bad name must fail")
	}
}

func TestConfigCaps(t *testing.T) {
	if !(Config{ecc.MethodParity, 8}).Caps().Has(ecc.DetectSparse) {
		t.Fatal("parity detects")
	}
	if (Config{ecc.MethodParity, 8}).Caps().Has(ecc.CorrectSparse) {
		t.Fatal("parity must not correct")
	}
	if !(Config{ecc.MethodSECDED, 64}).Caps().Has(ecc.CorrectSparse) {
		t.Fatal("secded corrects sparse")
	}
	if (Config{ecc.MethodSECDED, 64}).Caps().Has(ecc.CorrectBurst) {
		t.Fatal("secded must not claim burst")
	}
	if !(Config{ecc.MethodReedSolomon, 15}).Caps().Has(ecc.CorrectBurst) {
		t.Fatal("RS corrects bursts")
	}
}

func TestBuildInvalid(t *testing.T) {
	bad := []Config{
		{ecc.MethodParity, 0},
		{ecc.MethodHamming, 16},
		{ecc.MethodSECDED, 7},
		{ecc.MethodReedSolomon, 0},
		{ecc.MethodReedSolomon, 256},
		{ecc.Method(99), 1},
	}
	for _, c := range bad {
		if _, err := c.Build(1); err == nil {
			t.Fatalf("%v must fail to build", c)
		}
	}
}

func TestOverheadSpansWideRange(t *testing.T) {
	cs := AllConfigs()
	lo := cs[0].Overhead()
	hi := cs[len(cs)-1].Overhead()
	if lo > 0.01 {
		t.Fatalf("cheapest config overhead %.4f; expected sub-1%%", lo)
	}
	if hi < 0.8 {
		t.Fatalf("richest config overhead %.4f; expected ~1.0 (paper's 103-device RS)", hi)
	}
}

func TestMethodsForErrorRate(t *testing.T) {
	has := func(ms []ecc.Method, m ecc.Method) bool {
		for _, x := range ms {
			if x == m {
				return true
			}
		}
		return false
	}
	all := MethodsForErrorRate(0)
	if len(all) != 4 {
		t.Fatal("rate 0 must allow everything")
	}
	low := MethodsForErrorRate(1)
	if has(low, ecc.MethodParity) {
		t.Fatal("correcting 1 err/MB excludes parity (detect-only)")
	}
	if has(low, ecc.MethodHamming) {
		t.Fatal("correction guarantees exclude Hamming (silent double miscorrection)")
	}
	if !has(low, ecc.MethodSECDED) {
		t.Fatal("1 err/MB allows SEC-DED")
	}
	mid := MethodsForErrorRate(100)
	if !has(mid, ecc.MethodSECDED) {
		t.Fatal("moderate rates allow SEC-DED")
	}
	// The paper's "over a sixteenth of each MB" burst regime: RS only.
	high := MethodsForErrorRate(65536)
	if len(high) != 1 || high[0] != ecc.MethodReedSolomon {
		t.Fatalf("dense rates must be RS-only, got %v", high)
	}
}

func TestMinimalAdequateConfig(t *testing.T) {
	// Paper Section 6.3: 1 err/MB => SEC-DED over 8-byte blocks.
	if got := MinimalAdequateConfig(1); got != (Config{ecc.MethodSECDED, 64}) {
		t.Fatalf("1 err/MB -> %s, want secded64", got)
	}
	// Dense regimes escalate to RS with growing code-device counts.
	dense := MinimalAdequateConfig(5000)
	if dense.Method != ecc.MethodReedSolomon {
		t.Fatalf("dense rate -> %s, want RS", dense)
	}
	denser := MinimalAdequateConfig(500000)
	if denser.Method != ecc.MethodReedSolomon || denser.Param < dense.Param {
		t.Fatalf("denser rates need more code devices: %s vs %s", denser, dense)
	}
}

func TestPaperRSConfigsPresent(t *testing.T) {
	// The configurations the paper reports: 15 and 103 code devices.
	found15, found103 := false, false
	for _, c := range AllConfigs() {
		if c.Method == ecc.MethodReedSolomon {
			if c.Param == 15 {
				found15 = true
			}
			if c.Param == 103 {
				found103 = true
			}
		}
	}
	if !found15 || !found103 {
		t.Fatal("paper's RS configurations (m=15, m=103) must be in the space")
	}
}
