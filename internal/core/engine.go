package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/ecc"
)

// AnyThreads requests as many threads as the host offers (the paper's
// ARC_ANY_THREADS).
const AnyThreads = 0

// Engine is the ARC engine: a trained, constraint-driven encoder and
// decoder for protecting byte streams. Construct with NewEngine (which
// runs or loads the training phase, mirroring arc_init) and release
// with Close (arc_close).
type Engine struct {
	mu         sync.Mutex
	trainer    *Trainer
	table      *TrainTable
	maxThreads int
	trained    int // points measured at init
	closed     bool
	dirty      bool // table changed since last save
}

// EngineOptions configures NewEngine.
type EngineOptions struct {
	// MaxThreads caps ARC's parallelism (AnyThreads = all CPUs).
	MaxThreads int
	// CacheDir overrides the training-cache directory ("" = default;
	// "-" disables persistence).
	CacheDir string
	// SampleBytes sizes the training buffer (0 = 4 MiB default).
	SampleBytes int
}

// NewEngine initializes ARC: it loads any cached training data for
// this machine and measures whatever configurations are missing, as
// arc_init does.
func NewEngine(opts EngineOptions) (*Engine, error) {
	maxThreads := opts.MaxThreads
	if maxThreads <= 0 {
		maxThreads = runtime.GOMAXPROCS(0)
	}
	dir := opts.CacheDir
	switch dir {
	case "":
		dir = DefaultCacheDir()
	case "-":
		dir = ""
	}
	tr := &Trainer{CacheDir: dir, SampleBytes: opts.SampleBytes}
	table := tr.LoadCache()
	table, measured, err := tr.Train(table, maxThreads)
	if err != nil {
		return nil, fmt.Errorf("core: training: %w", err)
	}
	e := &Engine{trainer: tr, table: table, maxThreads: maxThreads, trained: measured, dirty: measured > 0}
	if err := tr.SaveCache(table); err == nil {
		e.dirty = false
	}
	return e, nil
}

// MaxThreads returns the engine's thread cap.
func (e *Engine) MaxThreads() int { return e.maxThreads }

// TrainedPoints returns how many (config, threads) points init had to
// measure (0 when the cache was complete).
func (e *Engine) TrainedPoints() int { return e.trained }

// Table exposes the trained throughput table (read-only by convention).
func (e *Engine) Table() *TrainTable { return e.table }

// Optimizer returns a constraint optimizer over the trained table.
func (e *Engine) Optimizer() *Optimizer {
	return &Optimizer{Table: e.table, MaxThreads: e.maxThreads}
}

// ErrClosed reports use after Close.
var ErrClosed = errors.New("core: engine is closed")

// EncodeResult carries an encode's outputs.
type EncodeResult struct {
	Encoded []byte
	Choice  Choice
	// ActualOverhead is the realized size overhead including container
	// and padding costs (can differ from the asymptotic figure on
	// small inputs).
	ActualOverhead float64
}

// Encode protects data under the given constraints (arc_encode): mem
// is the storage-overhead budget as a fraction of len(data) (AnyMem to
// lift), bw the minimum encode throughput in MB/s (AnyBW to lift), and
// res the resiliency constraint (AnyECC to lift).
func (e *Engine) Encode(data []byte, mem, bw float64, res Resiliency) (*EncodeResult, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	opt := e.Optimizer()
	e.mu.Unlock()

	choice, err := opt.Joint(mem, bw, res)
	if err != nil {
		return nil, err
	}
	return e.EncodeWith(data, choice)
}

// EncodeWith protects data with an explicit optimizer choice, for
// callers that want to inspect or override the selection.
func (e *Engine) EncodeWith(data []byte, choice Choice) (*EncodeResult, error) {
	return EncodeContainerWith(data, choice)
}

// EncodeContainerWith encodes without an engine: an explicit choice
// needs no trained state, just as DecodeContainer needs none — the
// pair makes a stateless encode/decode round trip possible for callers
// (like the archive service) that manage configurations themselves.
func EncodeContainerWith(data []byte, choice Choice) (*EncodeResult, error) {
	devSize := choice.Config.DeviceSizeFor(len(data))
	code, err := choice.Config.BuildWithDeviceSize(choice.Threads, devSize)
	if err != nil {
		return nil, err
	}
	payload := code.Encode(data)
	h := header{
		Method:  choice.Config.Method,
		Param:   choice.Config.Param,
		DevSize: devSize,
		OrigLen: len(data),
		EncLen:  len(payload),
	}
	enc := wrap(h, payload)
	var actual float64
	if len(data) > 0 {
		actual = float64(len(enc)-len(data)) / float64(len(data))
	}
	return &EncodeResult{Encoded: enc, Choice: choice, ActualOverhead: actual}, nil
}

// DecodeResult carries a decode's outputs.
type DecodeResult struct {
	Data   []byte
	Config Config
	Report ecc.Report
}

// Decode verifies and repairs an encoded container (arc_decode). A
// non-nil error means damage beyond the code's correction ability was
// detected; Data still carries the best-effort payload in that case.
func (e *Engine) Decode(encoded []byte) (*DecodeResult, error) {
	return decodeContainer(encoded, e.maxThreads)
}

// DecodeContainer decodes without an engine (the container is fully
// self-describing); workers bounds the parallelism.
func DecodeContainer(encoded []byte, workers int) (*DecodeResult, error) {
	return decodeContainer(encoded, workers)
}

func decodeContainer(encoded []byte, workers int) (res *DecodeResult, err error) {
	// A corrupted container can, in principle, drive the ecc
	// constructors or codecs into an internal invariant panic. The
	// decode boundary turns that into a bounded error: callers asked
	// for a verdict on untrusted bytes, not a crash.
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("%w: decoder panic: %v", ErrContainer, p)
		}
	}()
	h, payload, err := unwrap(encoded)
	if err != nil {
		return nil, err
	}
	if extra := len(encoded) - ContainerOverheadBytes - h.EncLen; extra > 0 {
		// Refusing beats silently dropping the tail: trailing bytes
		// mean a multi-chunk stream (use the streaming reader) or a
		// corrupted length field.
		return nil, fmt.Errorf("%w: %d trailing bytes after the container (multi-chunk stream? use the stream reader)", ErrContainer, extra)
	}
	cfg := h.config()
	code, err := cfg.BuildWithDeviceSize(workers, h.DevSize)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrContainer, err)
	}
	data, rep, derr := code.Decode(payload, h.OrigLen)
	res = &DecodeResult{Data: data, Config: cfg, Report: rep}
	if derr != nil {
		return res, derr
	}
	return res, nil
}

// Save persists the training table immediately (arc_save).
func (e *Engine) Save() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if err := e.trainer.SaveCache(e.table); err != nil {
		return err
	}
	e.dirty = false
	return nil
}

// Close saves the cache and releases the engine (arc_close). Further
// use returns ErrClosed. Close is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	var err error
	if e.dirty {
		err = e.trainer.SaveCache(e.table)
	}
	e.closed = true
	return err
}
