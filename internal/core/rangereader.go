package core

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/ecc"
	"repro/internal/parallel"
)

// RangeOptions tunes a RangeReader.
type RangeOptions struct {
	// Workers is the per-chunk codec parallelism (<= 0 means 1).
	Workers int
	// Pipeline bounds how many chunks of a multi-chunk range are
	// loaded and decoded concurrently (<= 0 selects the worker-budget
	// default, as in StreamOptions).
	Pipeline int
	// CacheBytes is the private decoded-chunk cache budget when Cache
	// is nil (<= 0 selects cache.DefaultBudgetBytes).
	CacheBytes int64
	// Cache, when non-nil, is a shared cache (e.g. one per arcd
	// server). The reader then never closes it, and CacheKey must be
	// unique per archive sharing it.
	Cache    *cache.Cache
	CacheKey uint64
}

// RangeReader is random access over an ARC stream: ReadRange decodes
// (and repairs) only the chunks covering a requested byte range,
// serving hot chunks from the decoded-chunk cache. It is built from
// the v2 footer index when present and intact (repairing the index
// with its own ECC if needed); otherwise — v1 streams, or v2 streams
// whose footer was destroyed — it falls back to a sequential header
// scan, which still yields full random access because chunk headers
// are self-describing. A RangeReader is safe for concurrent use.
type RangeReader struct {
	src      io.ReaderAt
	size     int64
	workers  int
	pipeline int

	entries []indexEntry
	total   int64
	indexed bool
	idxRep  ecc.Report

	cache    *cache.Cache
	ownCache bool
	ckey     uint64

	codecs  codecCache
	scratch sync.Pool // *chunkScratch

	repMu  sync.Mutex
	report Report

	closed atomic.Bool
}

// OpenRangeReader opens an ARC stream of the given size for random
// access. It reads the v2 trailer and index (verifying, and if needed
// repairing, the index through its own ECC and CRC); any failure
// degrades to scanning the self-describing chunk headers, so v1
// streams and index-destroyed v2 streams open fine. The caller keeps
// ownership of src; Close releases only the reader's own resources.
func OpenRangeReader(src io.ReaderAt, size int64, opts RangeOptions) (*RangeReader, error) {
	if size < 0 {
		return nil, fmt.Errorf("core: negative stream size %d", size)
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	so := StreamOptions{Pipeline: opts.Pipeline}.normalize(opts.Workers)
	rr := &RangeReader{
		src:      src,
		size:     size,
		workers:  opts.Workers,
		pipeline: so.Pipeline,
		ckey:     opts.CacheKey,
	}
	rr.scratch.New = func() any { return new(chunkScratch) }
	if opts.Cache != nil {
		rr.cache = opts.Cache
	} else {
		rr.cache = cache.New(opts.CacheBytes)
		rr.ownCache = true
	}
	if err := rr.loadIndex(); err != nil {
		// The footer is missing or damaged beyond its ECC: degrade to
		// the sequential scan. Data chunks are unaffected.
		rr.entries = rr.entries[:0]
		rr.indexed = false
		rr.idxRep = ecc.Report{}
		rr.scanEntries()
	}
	if n := len(rr.entries); n > 0 {
		last := rr.entries[n-1]
		rr.total = last.OrigStart + last.OrigLen
	} else {
		rr.total = 0
	}
	return rr, nil
}

// loadIndex locates and decodes the v2 footer. Every length below is
// cross-checked against the stream size before it drives a read or an
// allocation, so a forged trailer costs a bounded read, never memory.
func (rr *RangeReader) loadIndex() error {
	minV2 := int64(TrailerBytes) + int64(ContainerOverheadBytes)
	if rr.size < minV2 {
		return fmt.Errorf("%w: stream too short for a v2 footer", ErrContainer)
	}
	var tbuf [TrailerBytes]byte
	if _, err := rr.src.ReadAt(tbuf[:], rr.size-int64(TrailerBytes)); err != nil {
		return fmt.Errorf("%w: trailer read: %v", ErrContainer, err)
	}
	indexOff, n, err := parseTrailer(tbuf[:])
	if err != nil {
		return err
	}
	payloadLen := rr.size - int64(TrailerBytes) - indexOff - int64(ContainerOverheadBytes)
	if indexOff < 0 || payloadLen < 0 {
		return fmt.Errorf("%w: trailer places the index outside the stream", ErrContainer)
	}
	var hdr [ContainerOverheadBytes]byte
	if _, err := rr.src.ReadAt(hdr[:], indexOff); err != nil {
		return fmt.Errorf("%w: index header read: %v", ErrContainer, err)
	}
	h, err := unmarshalHeader(hdr[:])
	if err != nil {
		return err
	}
	if h.Method != indexMethod {
		return fmt.Errorf("%w: trailer points at a non-index chunk", ErrContainer)
	}
	if int64(h.EncLen) != payloadLen {
		return fmt.Errorf("%w: index payload length %d disagrees with the trailer (%d)", ErrContainer, h.EncLen, payloadLen)
	}
	enc := make([]byte, payloadLen) // bounded: payloadLen < rr.size by the checks above
	if _, err := rr.src.ReadAt(enc, indexOff+int64(ContainerOverheadBytes)); err != nil {
		return fmt.Errorf("%w: index payload read: %v", ErrContainer, err)
	}
	entries, rep, err := decodeIndexPayload(h, enc, n, indexOff, rr.size)
	if err != nil {
		return err
	}
	rr.entries, rr.idxRep, rr.indexed = entries, rep, true
	return nil
}

// scanEntries builds the chunk table by walking the self-describing
// headers front to back — the v1 path, also the fallback when a v2
// footer is destroyed. The walk stops cleanly at the first header that
// does not parse (or at the index pseudo-chunk), so everything before
// the damage stays readable; scanning is best-effort by design and
// never fails the open.
func (rr *RangeReader) scanEntries() {
	var hdr [ContainerOverheadBytes]byte
	var off, orig int64
	for off+int64(ContainerOverheadBytes) <= rr.size {
		if _, err := rr.src.ReadAt(hdr[:], off); err != nil {
			return
		}
		h, err := unmarshalHeader(hdr[:])
		if err != nil || h.Method == indexMethod {
			return
		}
		encLen := int64(h.EncLen)
		if encLen < 0 || encLen > rr.size-off-int64(ContainerOverheadBytes) {
			return // truncated or forged: the chunk does not fit the stream
		}
		if h.OrigLen <= 0 || int64(h.OrigLen) > maxIndexedChunk {
			return
		}
		rr.entries = append(rr.entries, indexEntry{
			Off:       off,
			EncLen:    encLen,
			OrigStart: orig,
			OrigLen:   int64(h.OrigLen),
			HdrCRC:    headerCRC(hdr[:]),
		})
		orig += int64(h.OrigLen)
		off += int64(ContainerOverheadBytes) + encLen
	}
}

// Size returns the total original bytes the stream reproduces.
func (rr *RangeReader) Size() int64 { return rr.total }

// Chunks returns the number of addressable chunks.
func (rr *RangeReader) Chunks() int { return len(rr.entries) }

// Indexed reports whether the v2 footer index was found and verified
// (false means the reader fell back to the sequential header scan).
func (rr *RangeReader) Indexed() bool { return rr.indexed }

// IndexReport returns the repairs applied to the index itself by its
// own ECC while opening (zero when unindexed or undamaged).
func (rr *RangeReader) IndexReport() ecc.Report { return rr.idxRep }

// Report returns repair statistics accumulated across every chunk this
// reader has decoded (cache hits decode nothing and add nothing).
func (rr *RangeReader) Report() Report {
	rr.repMu.Lock()
	defer rr.repMu.Unlock()
	return rr.report
}

// Close releases the reader. A private cache is closed, which also
// unblocks concurrent ReadRange calls parked on in-flight chunk loads
// (they fail with the cache's closed error). Close is idempotent and
// does not touch src.
func (rr *RangeReader) Close() error {
	if rr.closed.Swap(true) {
		return nil
	}
	if rr.ownCache {
		_ = rr.cache.Close() // Close on a cache never fails
	}
	return nil
}

// reportAcc collects the per-call repair accounting contributed by
// chunk loads this call performed (pipeline workers add concurrently).
type reportAcc struct {
	mu  sync.Mutex
	rep Report
}

func (a *reportAcc) add(rep ecc.Report) {
	a.mu.Lock()
	a.rep.Chunks++
	a.rep.DetectedBlocks += rep.DetectedBlocks
	a.rep.CorrectedBlocks += rep.CorrectedBlocks
	a.rep.CorrectedBits += rep.CorrectedBits
	a.mu.Unlock()
}

// ReadRange reads n original bytes starting at byte first into dst,
// decoding only the chunks that cover [first, first+n). It returns the
// bytes written — always the leading contiguous prefix of the range —
// plus the repair accounting for chunk decodes this call performed
// (cache hits contribute nothing: they were repaired when first
// loaded). A range extending past the stream's end returns what exists
// with io.EOF, matching io.ReaderAt conventions.
func (rr *RangeReader) ReadRange(dst []byte, first, n int64) (int, Report, error) {
	var rep Report
	if rr.closed.Load() {
		return 0, rep, fmt.Errorf("core: range reader is closed")
	}
	if first < 0 || n < 0 {
		return 0, rep, fmt.Errorf("core: negative range [%d, +%d)", first, n)
	}
	if int64(len(dst)) < n {
		return 0, rep, fmt.Errorf("core: destination holds %d bytes, range wants %d", len(dst), n)
	}
	if n == 0 {
		if first > rr.total {
			return 0, rep, io.EOF
		}
		return 0, rep, nil
	}
	if first >= rr.total {
		return 0, rep, io.EOF
	}
	end := first + n
	if end > rr.total {
		end = rr.total
	}
	lo := sort.Search(len(rr.entries), func(i int) bool {
		e := rr.entries[i]
		return e.OrigStart+e.OrigLen > first
	})
	hi := sort.Search(len(rr.entries), func(i int) bool {
		return rr.entries[i].OrigStart >= end
	})

	var acc reportAcc
	var written int64
	var err error
	if hi-lo <= 1 || rr.pipeline <= 1 {
		written, err = rr.readSequential(dst, first, end, lo, hi, &acc)
	} else {
		written, err = rr.readPipelined(dst, first, end, lo, hi, &acc)
	}
	acc.mu.Lock()
	rep = acc.rep
	acc.mu.Unlock()
	if err == nil && end < first+n {
		err = io.EOF
	}
	return int(written), rep, err
}

// ReadAt implements io.ReaderAt over the original bytes.
func (rr *RangeReader) ReadAt(p []byte, off int64) (int, error) {
	//arcvet:ignore integrityflow io.ReaderAt has no channel for the repair report; ReadRange callers who need it call it directly
	n, _, err := rr.ReadRange(p, off, int64(len(p)))
	return n, err
}

// readSequential loads the covering chunks one at a time.
func (rr *RangeReader) readSequential(dst []byte, first, end int64, lo, hi int, acc *reportAcc) (int64, error) {
	var written int64
	for ord := lo; ord < hi; ord++ {
		data, err := rr.chunkData(ord, acc)
		if err != nil {
			return written, fmt.Errorf("chunk %d: %w", ord, err)
		}
		written += copyOverlap(dst, data, rr.entries[ord], first, end)
	}
	return written, nil
}

// readPipelined fans the covering chunks across a bounded,
// order-preserving pipe: chunk ord lo+i is the i-th delivery, so the
// copy loop below needs no reordering. The producer goroutine is
// joined through the pipe's own drain/Wait discipline on every path.
func (rr *RangeReader) readPipelined(dst []byte, first, end int64, lo, hi int, acc *reportAcc) (int64, error) {
	workers := rr.pipeline
	if n := hi - lo; workers > n {
		workers = n
	}
	pipe := parallel.NewPipe(workers, workers, func(ord int) ([]byte, error) {
		return rr.chunkData(ord, acc)
	})
	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		defer pipe.Close()
		for ord := lo; ord < hi; ord++ {
			if pipe.Submit(ord) != nil {
				return // aborted below; Submit fails once the pipe dies
			}
		}
	}()

	var written int64
	var firstErr error
	for ord := lo; ord < hi; ord++ {
		data, ok, err := pipe.Next()
		if !ok {
			break
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("chunk %d: %w", ord, err)
				pipe.Abort()
			}
			continue
		}
		if firstErr == nil {
			written += copyOverlap(dst, data, rr.entries[ord], first, end)
		}
	}
	for {
		if _, ok, _ := pipe.Next(); !ok {
			break
		}
	}
	<-prodDone
	pipe.Wait()
	return written, firstErr
}

// copyOverlap copies the intersection of chunk e's bytes with the
// requested [first, end) window into dst (which is addressed relative
// to first).
func copyOverlap(dst, data []byte, e indexEntry, first, end int64) int64 {
	srcLo := int64(0)
	if first > e.OrigStart {
		srcLo = first - e.OrigStart
	}
	srcHi := e.OrigLen
	if end < e.OrigStart+e.OrigLen {
		srcHi = end - e.OrigStart
	}
	if srcHi <= srcLo {
		return 0
	}
	return int64(copy(dst[e.OrigStart+srcLo-first:], data[srcLo:srcHi]))
}

// chunkData returns chunk ord's decoded bytes, serving repeats from
// the cache; concurrent readers of one chunk share a single load. The
// returned slice is shared and read-only.
func (rr *RangeReader) chunkData(ord int, acc *reportAcc) ([]byte, error) {
	return rr.cache.GetOrLoad(cache.Key{Archive: rr.ckey, Chunk: int64(ord)}, func() ([]byte, error) {
		data, rep, err := rr.loadChunk(ord)
		if err == nil {
			acc.add(rep)
			rr.repMu.Lock()
			rr.report.Chunks++
			rr.report.DetectedBlocks += rep.DetectedBlocks
			rr.report.CorrectedBlocks += rep.CorrectedBlocks
			rr.report.CorrectedBits += rep.CorrectedBits
			rr.repMu.Unlock()
		}
		return data, err
	})
}

// loadChunk reads, verifies, and repairs one chunk into a fresh
// (cacheable, never pooled) buffer.
func (rr *RangeReader) loadChunk(ord int) (data []byte, rep ecc.Report, err error) {
	// Same boundary as the stream decoder: corrupt input must surface
	// as an error, never a panic.
	defer func() {
		if p := recover(); p != nil {
			data, rep, err = nil, ecc.Report{}, fmt.Errorf("%w: decoder panic: %v", ErrContainer, p)
		}
	}()
	e := rr.entries[ord]
	buf := getChunkBuf(ContainerOverheadBytes + int(e.EncLen))
	defer putChunkBuf(buf)
	if _, rerr := rr.src.ReadAt(buf.b, e.Off); rerr != nil {
		return nil, rep, fmt.Errorf("%w: chunk read: %v", ErrContainer, rerr)
	}
	h, herr := unmarshalHeader(buf.b)
	if herr != nil {
		return nil, rep, herr
	}
	// The header digest pins index entries to the exact header bytes
	// written at encode time. A mismatch is either header rot (the
	// voted parse may still recover it) or a stale index; the geometry
	// cross-check below rejects the latter before any decode.
	if int64(h.EncLen) != e.EncLen || int64(h.OrigLen) != e.OrigLen {
		return nil, rep, fmt.Errorf("%w: chunk header disagrees with the index", ErrContainer)
	}
	s := rr.scratch.Get().(*chunkScratch)
	defer rr.scratch.Put(s)
	code, cerr := s.memo.get(&rr.codecs, h.config(), rr.workers, h.DevSize)
	if cerr != nil {
		return nil, rep, fmt.Errorf("%w: %v", ErrContainer, cerr)
	}
	payload := buf.b[ContainerOverheadBytes:]
	if code.EncodedSize(h.OrigLen) != len(payload) {
		return nil, rep, fmt.Errorf("%w: chunk payload length %d (want %d)", ErrContainer, len(payload), code.EncodedSize(h.OrigLen))
	}
	out := make([]byte, h.OrigLen) // cached after return: never from the pool
	data, rep, derr := ecc.DecodeTo(code, out, payload, h.OrigLen, &s.ecc)
	if derr != nil {
		return nil, rep, derr
	}
	return data, rep, nil
}
