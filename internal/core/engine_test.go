package core

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ecc"
)

// testEngine builds an engine with a tiny training sample and no
// persistence so tests stay fast.
func testEngine(t *testing.T, maxThreads int) *Engine {
	t.Helper()
	e, err := NewEngine(EngineOptions{MaxThreads: maxThreads, CacheDir: "-", SampleBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	return e
}

func TestEngineEncodeDecodeClean(t *testing.T) {
	e := testEngine(t, 2)
	rng := rand.New(rand.NewSource(50))
	data := make([]byte, 100_000)
	rng.Read(data)
	res, err := e.Encode(data, 0.2, AnyBW, AnyECC)
	if err != nil {
		t.Fatal(err)
	}
	if res.Choice.Overhead > 0.2 {
		t.Fatalf("optimizer exceeded budget: %f", res.Choice.Overhead)
	}
	dec, err := e.Decode(res.Encoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Data, data) {
		t.Fatal("round trip mismatch")
	}
	if dec.Report.DetectedBlocks != 0 {
		t.Fatal("clean decode flagged errors")
	}
	if dec.Config != res.Choice.Config {
		t.Fatal("decoded config mismatch")
	}
}

func TestEngineCorrectsSingleFlip(t *testing.T) {
	e := testEngine(t, 1)
	data := make([]byte, 50_000)
	rand.New(rand.NewSource(51)).Read(data)
	res, err := e.Encode(data, AnyMem, AnyBW, Resiliency{ErrorsPerMB: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The paper: resiliency 1 err/MB => SEC-DED over 8 bytes.
	if res.Choice.Config.Method != ecc.MethodSECDED {
		t.Fatalf("1 err/MB chose %s, want SEC-DED (paper Section 6.3)", res.Choice.Config)
	}
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 50; trial++ {
		mut := append([]byte(nil), res.Encoded...)
		bit := rng.Intn(len(mut) * 8)
		mut[bit/8] ^= 0x80 >> (bit % 8)
		dec, err := e.Decode(mut)
		if err != nil {
			t.Fatalf("trial %d (bit %d): %v", trial, bit, err)
		}
		if !bytes.Equal(dec.Data, data) {
			t.Fatalf("trial %d: data not repaired", trial)
		}
	}
}

func TestEngineDetectsWithParity(t *testing.T) {
	e := testEngine(t, 1)
	data := make([]byte, 10_000)
	res, err := e.Encode(data, AnyMem, AnyBW, Resiliency{Methods: []ecc.Method{ecc.MethodParity}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Choice.Config.Method != ecc.MethodParity {
		t.Fatalf("chose %s", res.Choice.Config)
	}
	mut := append([]byte(nil), res.Encoded...)
	mut[ContainerOverheadBytes+100] ^= 0x01
	_, err = e.Decode(mut)
	if !errors.Is(err, ecc.ErrUncorrectable) {
		t.Fatalf("parity must detect and report, got %v", err)
	}
}

func TestEngineBurstWithRS(t *testing.T) {
	e := testEngine(t, 1)
	rng := rand.New(rand.NewSource(53))
	data := make([]byte, 600_000)
	rng.Read(data)
	res, err := e.Encode(data, 0.2, AnyBW, Resiliency{Caps: ecc.CorrectBurst})
	if err != nil {
		t.Fatal(err)
	}
	if res.Choice.Config.Method != ecc.MethodReedSolomon {
		t.Fatalf("burst constraint chose %s", res.Choice.Config)
	}
	// Burst: wipe 3 KB inside the payload (about three devices).
	mut := append([]byte(nil), res.Encoded...)
	off := ContainerOverheadBytes + 8000
	for i := 0; i < 3000; i++ {
		mut[off+i] ^= 0xA5
	}
	dec, err := e.Decode(mut)
	if err != nil {
		t.Fatalf("burst not corrected: %v", err)
	}
	if !bytes.Equal(dec.Data, data) {
		t.Fatal("burst repair mismatch")
	}
	if dec.Report.CorrectedBlocks == 0 {
		t.Fatal("report shows no corrected devices")
	}
}

func TestEngineHeaderFlipStillDecodes(t *testing.T) {
	e := testEngine(t, 1)
	data := make([]byte, 10_000)
	res, err := e.Encode(data, 0.15, AnyBW, AnyECC)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), res.Encoded...)
	mut[5] ^= 0xFF // inside replica 0 of the header
	dec, err := e.Decode(mut)
	if err != nil {
		t.Fatalf("replicated header must survive: %v", err)
	}
	if !bytes.Equal(dec.Data, data) {
		t.Fatal("data mismatch after header damage")
	}
}

func TestEngineClosedErrors(t *testing.T) {
	e := testEngine(t, 1)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Encode([]byte{1}, AnyMem, AnyBW, AnyECC); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := e.Save(); !errors.Is(err, ErrClosed) {
		t.Fatal("Save after Close must fail")
	}
	if err := e.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
}

func TestEngineCachePersistence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "arc-cache")
	opts := EngineOptions{MaxThreads: 2, CacheDir: dir, SampleBytes: 32 << 10}
	e1, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	first := e1.TrainedPoints()
	if first == 0 {
		t.Fatal("first init must train")
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "train-cache.json")); err != nil {
		t.Fatalf("cache file missing: %v", err)
	}
	// Second init: fully cached.
	e2, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.TrainedPoints() != 0 {
		t.Fatalf("second init trained %d points, want 0 (cache hit)", e2.TrainedPoints())
	}
	// Raising the thread cap trains only the missing thread counts.
	e3, err := NewEngine(EngineOptions{MaxThreads: 4, CacheDir: dir, SampleBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if e3.TrainedPoints() == 0 || e3.TrainedPoints() >= first {
		t.Fatalf("incremental training measured %d points (first %d)", e3.TrainedPoints(), first)
	}
}

func TestEngineEmptyData(t *testing.T) {
	e := testEngine(t, 1)
	res, err := e.Encode(nil, AnyMem, AnyBW, AnyECC)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := e.Decode(res.Encoded)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Data) != 0 {
		t.Fatal("empty data must round trip")
	}
}

func TestDecodeContainerStandalone(t *testing.T) {
	e := testEngine(t, 1)
	data := []byte("standalone decode needs no engine")
	res, err := e.Encode(data, AnyMem, AnyBW, AnyECC)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeContainer(res.Encoded, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Data, data) {
		t.Fatal("standalone decode mismatch")
	}
}

func TestTrainThreadCounts(t *testing.T) {
	got := trainThreadCounts(40)
	want := []int{1, 2, 4, 8, 16, 32, 40}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if g := trainThreadCounts(1); len(g) != 1 || g[0] != 1 {
		t.Fatalf("maxThreads 1: %v", g)
	}
	if g := trainThreadCounts(0); len(g) != 1 || g[0] != 1 {
		t.Fatalf("maxThreads 0 must clamp: %v", g)
	}
}
