package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestVoteBytesMatchesRef pins the word kernel to the scalar reference
// over odd lengths and unaligned offsets.
func TestVoteBytesMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 34, 63, 64, 65, 255, 1024} {
		for off := 0; off < 4; off++ {
			raw := make([]byte, 3*(n+off))
			rng.Read(raw)
			a := raw[off : off+n]
			b := raw[n+2*off : n+2*off+n]
			c := raw[2*n+3*off : 2*n+3*off+n]
			got := make([]byte, n)
			want := make([]byte, n)
			voteBytes(got, a, b, c)
			voteBytesRef(want, a, b, c)
			if !bytes.Equal(got, want) {
				t.Fatalf("voteBytes(n=%d, off=%d) diverges from reference", n, off)
			}
		}
	}
}

// TestVoteBytesMajority verifies the two-of-three property directly:
// any single corrupted replica leaves the vote intact.
func TestVoteBytesMajority(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	orig := make([]byte, 100)
	rng.Read(orig)
	for victim := 0; victim < 3; victim++ {
		replicas := [3][]byte{
			append([]byte(nil), orig...),
			append([]byte(nil), orig...),
			append([]byte(nil), orig...),
		}
		rng.Read(replicas[victim]) // clobber one replica entirely
		got := make([]byte, len(orig))
		voteBytes(got, replicas[0], replicas[1], replicas[2])
		if !bytes.Equal(got, orig) {
			t.Fatalf("vote with corrupted replica %d lost data", victim)
		}
	}
}

func TestVoteBytesAllocs(t *testing.T) {
	a := make([]byte, 256)
	b := make([]byte, 256)
	c := make([]byte, 256)
	dst := make([]byte, 256)
	if allocs := testing.AllocsPerRun(100, func() {
		voteBytes(dst, a, b, c)
	}); allocs != 0 {
		t.Errorf("voteBytes allocates %v times per run, want 0", allocs)
	}
}

func BenchmarkKernelVote3(b *testing.B) {
	const n = 64 << 10
	rng := rand.New(rand.NewSource(23))
	ra := make([]byte, n)
	rb := make([]byte, n)
	rc := make([]byte, n)
	dst := make([]byte, n)
	rng.Read(ra)
	rng.Read(rb)
	rng.Read(rc)
	b.Run("word", func(b *testing.B) {
		b.SetBytes(n)
		for i := 0; i < b.N; i++ {
			voteBytes(dst, ra, rb, rc)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(n)
		for i := 0; i < b.N; i++ {
			voteBytesRef(dst, ra, rb, rc)
		}
	})
}
