package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/ecc"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := header{Method: ecc.MethodSECDED, Param: 64, OrigLen: 12345, EncLen: 14000}
	buf := marshalHeader(h)
	if len(buf) != ContainerOverheadBytes {
		t.Fatalf("header length %d", len(buf))
	}
	got, err := unmarshalHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v want %+v", got, h)
	}
}

func TestHeaderSurvivesSingleReplicaDestruction(t *testing.T) {
	h := header{Method: ecc.MethodReedSolomon, Param: 15, OrigLen: 999, EncLen: 2048}
	buf := marshalHeader(h)
	// Obliterate the entire first replica.
	for i := 0; i < headerLen; i++ {
		buf[i] ^= 0xFF
	}
	got, err := unmarshalHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatal("header not recovered from surviving replicas")
	}
}

func TestHeaderSurvivesScatteredDamageViaVoting(t *testing.T) {
	h := header{Method: ecc.MethodParity, Param: 8, OrigLen: 100, EncLen: 120}
	buf := marshalHeader(h)
	// Damage each replica at a different offset: every replica's CRC
	// fails, but byte-wise majority voting recovers.
	buf[2] ^= 0x55
	buf[headerLen+10] ^= 0x55
	buf[2*headerLen+20] ^= 0x55
	got, err := unmarshalHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatal("voting failed to recover header")
	}
}

func TestHeaderEverySingleBitFlipRecoverable(t *testing.T) {
	h := header{Method: ecc.MethodHamming, Param: 64, OrigLen: 5000, EncLen: 5600}
	clean := marshalHeader(h)
	for bit := 0; bit < len(clean)*8; bit++ {
		buf := append([]byte(nil), clean...)
		buf[bit/8] ^= 0x80 >> (bit % 8)
		got, err := unmarshalHeader(buf)
		if err != nil {
			t.Fatalf("bit %d: %v", bit, err)
		}
		if got != h {
			t.Fatalf("bit %d: wrong header recovered", bit)
		}
	}
}

func TestHeaderAlignedDamageFails(t *testing.T) {
	h := header{Method: ecc.MethodParity, Param: 1, OrigLen: 10, EncLen: 12}
	buf := marshalHeader(h)
	// Same offset in all three replicas defeats voting.
	for r := 0; r < headerReplicas; r++ {
		buf[r*headerLen+6] ^= 0xFF
	}
	_, err := unmarshalHeader(buf)
	// Voting returns the (corrupt) majority value, whose CRC fails.
	if !errors.Is(err, ErrContainer) {
		t.Fatalf("want ErrContainer, got %v", err)
	}
}

func TestVote3(t *testing.T) {
	if vote3(0xFF, 0xFF, 0x00) != 0xFF {
		t.Fatal("majority of two must win")
	}
	if vote3(0b1010, 0b1100, 0b1001) != 0b1000 {
		t.Fatalf("bitwise vote wrong: %04b", vote3(0b1010, 0b1100, 0b1001))
	}
}

func TestUnwrapValidation(t *testing.T) {
	if _, _, err := unwrap(nil); !errors.Is(err, ErrContainer) {
		t.Fatal("nil must fail")
	}
	h := header{Method: ecc.MethodParity, Param: 8, OrigLen: 8, EncLen: 100}
	buf := wrap(h, make([]byte, 50)) // EncLen larger than payload
	if _, _, err := unwrap(buf); !errors.Is(err, ErrContainer) {
		t.Fatal("truncated payload must fail")
	}
}

func TestWrapUnwrapRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 50; trial++ {
		payload := make([]byte, rng.Intn(1000))
		rng.Read(payload)
		h := header{
			Method:  ecc.MethodSECDED,
			Param:   8,
			OrigLen: rng.Intn(1 << 20),
			EncLen:  len(payload),
		}
		gh, gp, err := unwrap(wrap(h, payload))
		if err != nil {
			t.Fatal(err)
		}
		if gh != h || len(gp) != len(payload) {
			t.Fatal("round trip mismatch")
		}
	}
}
