package core

// Tests for the pipelined chunk stream: byte-identity against the
// sequential path, ordering, error-first semantics, and — because the
// pipeline spawns goroutines — leak checks for every way a stream can
// end (clean EOF, mid-stream damage, truncation, Close without drain,
// failing sink). All of these run under `go test -race ./...` in CI.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/ecc"
)

// streamTestEngine returns an engine usable for Choice-based streaming
// without any training state.
func streamTestEngine(threads int) *Engine {
	return &Engine{maxThreads: threads}
}

// encodeStream encodes data with the given choice and options,
// failing the test on any error.
func encodeStream(t *testing.T, choice Choice, opts StreamOptions, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw, err := streamTestEngine(4).NewChunkWriterChoice(&buf, choice, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if cw.BytesWritten() != int64(buf.Len()) {
		t.Fatalf("BytesWritten %d != emitted %d", cw.BytesWritten(), buf.Len())
	}
	return buf.Bytes()
}

// settleDeadline mirrors internal/parallel's leak tests.
const settleDeadline = 2 * time.Second

func goroutinesSettleTo(base int) bool {
	deadline := time.Now().Add(settleDeadline)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return true
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	return false
}

func checkNoLeaks(t *testing.T, base int) {
	t.Helper()
	if !goroutinesSettleTo(base) {
		t.Fatalf("goroutines leaked: %d live after drain, started with %d",
			runtime.NumGoroutine(), base)
	}
}

var pipelineTestChoice = Choice{Config: Config{Method: ecc.MethodSECDED, Param: 64}, Threads: 1}

func TestPipelinedWriterByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, size := range []int{0, 1, 1 << 10, 8<<10 + 333} {
		data := make([]byte, size)
		rng.Read(data)
		opts := StreamOptions{ChunkSize: 1 << 10}
		opts.Pipeline = 1
		sequential := encodeStream(t, pipelineTestChoice, opts, data)
		for _, pl := range []int{2, 4, 7} {
			opts.Pipeline = pl
			if got := encodeStream(t, pipelineTestChoice, opts, data); !bytes.Equal(got, sequential) {
				t.Fatalf("size %d pipeline %d: output differs from sequential", size, pl)
			}
		}
	}
}

func TestPipelinedReaderRoundTripAndReport(t *testing.T) {
	base := runtime.NumGoroutine()
	data := make([]byte, 20<<10+77)
	rand.New(rand.NewSource(102)).Read(data)
	enc := encodeStream(t, pipelineTestChoice, StreamOptions{ChunkSize: 2 << 10, Pipeline: 4}, data)

	for _, pl := range []int{1, 3, 8} {
		cr := NewChunkReaderWith(bytes.NewReader(enc), 1, StreamOptions{Pipeline: pl})
		got, err := io.ReadAll(cr)
		if err != nil {
			t.Fatalf("pipeline %d: %v", pl, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("pipeline %d: round trip mismatch", pl)
		}
		if want := 11; cr.Report().Chunks != want { // ceil((20K+77)/2K)
			t.Fatalf("pipeline %d: %d chunks, want %d", pl, cr.Report().Chunks, want)
		}
	}
	checkNoLeaks(t, base)
}

func TestPipelinedReaderRepairsAndCountsCorrections(t *testing.T) {
	data := make([]byte, 16<<10)
	rand.New(rand.NewSource(103)).Read(data)
	enc := encodeStream(t, pipelineTestChoice, StreamOptions{ChunkSize: 2 << 10, Pipeline: 1}, data)
	// One bit flip per chunk payload, clear of the replicated header.
	chunkLen := len(enc) / 8
	for c := 0; c < 8; c++ {
		enc[c*chunkLen+ContainerOverheadBytes+100] ^= 0x04
	}
	cr := NewChunkReaderWith(bytes.NewReader(enc), 1, StreamOptions{Pipeline: 4})
	got, err := io.ReadAll(cr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("repaired stream mismatch")
	}
	rep := cr.Report()
	if rep.CorrectedBlocks < 8 || rep.CorrectedBits < 8 {
		t.Fatalf("report undercounts pipelined repairs: %+v", rep)
	}
}

func TestPipelinedReaderMidStreamErrorWinsInOrder(t *testing.T) {
	base := runtime.NumGoroutine()
	data := make([]byte, 16<<10)
	rand.New(rand.NewSource(104)).Read(data)
	// Parity detects but cannot correct, so a payload flip is terminal.
	choice := Choice{Config: Config{Method: ecc.MethodParity, Param: 8}, Threads: 1}
	enc := encodeStream(t, choice, StreamOptions{ChunkSize: 2 << 10, Pipeline: 1}, data)
	chunkLen := len(enc) / 8
	// Damage chunks 3 and 6: the error for chunk 3 must win, with
	// chunks 0-2 delivered intact first.
	enc[3*chunkLen+ContainerOverheadBytes+50] ^= 0x01
	enc[6*chunkLen+ContainerOverheadBytes+50] ^= 0x01

	cr := NewChunkReaderWith(bytes.NewReader(enc), 1, StreamOptions{Pipeline: 8})
	got, err := io.ReadAll(cr)
	if !errors.Is(err, ecc.ErrUncorrectable) {
		t.Fatalf("want ErrUncorrectable, got %v", err)
	}
	wantPrefix := 3 * (2 << 10)
	if len(got) != wantPrefix {
		t.Fatalf("delivered %d bytes before failure, want %d", len(got), wantPrefix)
	}
	if !bytes.Equal(got, data[:wantPrefix]) {
		t.Fatal("intact prefix corrupted")
	}
	if want := "chunk 4:"; err == nil || !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not name the failing chunk (%s)", err, want)
	}
	// A failed stream read must not strand producer or workers.
	checkNoLeaks(t, base)
	// And further reads keep returning the same error.
	if _, err2 := cr.Read(make([]byte, 16)); !errors.Is(err2, ecc.ErrUncorrectable) {
		t.Fatalf("repeat read after error = %v", err2)
	}
}

func TestPipelinedReaderTruncatedInput(t *testing.T) {
	base := runtime.NumGoroutine()
	data := make([]byte, 8<<10)
	rand.New(rand.NewSource(105)).Read(data)
	enc := encodeStream(t, pipelineTestChoice, StreamOptions{ChunkSize: 1 << 10, Pipeline: 1}, data)
	for _, cut := range []int{len(enc) - 3, len(enc) - ContainerOverheadBytes/2, 3} {
		cr := NewChunkReaderWith(bytes.NewReader(enc[:cut]), 1, StreamOptions{Pipeline: 4})
		_, err := io.ReadAll(cr)
		if err == nil || err == io.EOF {
			t.Fatalf("cut %d: truncated stream must be an error, got %v", cut, err)
		}
		if !errors.Is(err, ErrContainer) {
			t.Fatalf("cut %d: want ErrContainer, got %v", cut, err)
		}
	}
	checkNoLeaks(t, base)
}

func TestPipelinedReaderCloseWithoutDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(106)).Read(data)
	enc := encodeStream(t, pipelineTestChoice, StreamOptions{ChunkSize: 1 << 10, Pipeline: 1}, data)

	// Close after a partial read: in-flight decodes must be cancelled
	// and joined, not abandoned.
	cr := NewChunkReaderWith(bytes.NewReader(enc), 1, StreamOptions{Pipeline: 8})
	buf := make([]byte, 700)
	if _, err := io.ReadFull(cr, buf); err != nil {
		t.Fatal(err)
	}
	if err := cr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Read(buf); err == nil || err == io.EOF {
		t.Fatalf("read after Close = %v, want a closed error", err)
	}
	// Close before any read: no goroutines were ever started.
	cr2 := NewChunkReaderWith(bytes.NewReader(enc), 1, StreamOptions{Pipeline: 8})
	if err := cr2.Close(); err != nil {
		t.Fatal(err)
	}
	// Double Close is a no-op.
	if err := cr.Close(); err != nil {
		t.Fatal(err)
	}
	checkNoLeaks(t, base)
}

// failingWriter fails every write after the first n bytes.
type failingWriter struct {
	n       int
	written int
}

var errSinkFull = errors.New("sink full")

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		return 0, errSinkFull
	}
	f.written += len(p)
	return len(p), nil
}

func TestPipelinedWriterSinkErrorCancelsAndJoins(t *testing.T) {
	base := runtime.NumGoroutine()
	data := make([]byte, 1<<10)
	rand.New(rand.NewSource(107)).Read(data)
	cw, err := streamTestEngine(4).NewChunkWriterChoice(
		&failingWriter{n: 3 << 10}, pipelineTestChoice, StreamOptions{ChunkSize: 1 << 10, Pipeline: 4})
	if err != nil {
		t.Fatal(err)
	}
	var werr error
	for i := 0; i < 64 && werr == nil; i++ {
		_, werr = cw.Write(data)
	}
	if !errors.Is(werr, errSinkFull) {
		t.Fatalf("Write surfaced %v, want the sink error", werr)
	}
	if cerr := cw.Close(); !errors.Is(cerr, errSinkFull) {
		t.Fatalf("Close = %v, want the sink error", cerr)
	}
	if _, err := cw.Write(data); err == nil {
		t.Fatal("write after failed Close must error")
	}
	checkNoLeaks(t, base)
}

func TestPipelinedWriterCloseIsTheOnlyJoinNeeded(t *testing.T) {
	base := runtime.NumGoroutine()
	var buf bytes.Buffer
	cw, err := streamTestEngine(4).NewChunkWriterChoice(&buf, pipelineTestChoice,
		StreamOptions{ChunkSize: 512, Pipeline: 6})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 16<<10+100)
	rand.New(rand.NewSource(108)).Read(data)
	if _, err := cw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything must be emitted and accounted for by the time Close
	// returns.
	if cw.BytesWritten() != int64(buf.Len()) {
		t.Fatalf("BytesWritten %d != emitted %d after Close", cw.BytesWritten(), buf.Len())
	}
	got, err := io.ReadAll(NewChunkReader(bytes.NewReader(buf.Bytes()), 1))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip after pipelined Close: err=%v", err)
	}
	checkNoLeaks(t, base)
}

func TestChunkReaderCachesCodecsAcrossChunks(t *testing.T) {
	data := make([]byte, 32<<10)
	rand.New(rand.NewSource(109)).Read(data)
	// Reed-Solomon is the expensive build; 8 full chunks share one
	// header, the final partial chunk differs (smaller device size).
	choice := Choice{Config: Config{Method: ecc.MethodReedSolomon, Param: 15}, Threads: 1}
	enc := encodeStream(t, choice, StreamOptions{ChunkSize: 4 << 10, Pipeline: 1}, append(data, 0xFF))
	for _, pl := range []int{1, 4} {
		cr := NewChunkReaderWith(bytes.NewReader(enc), 1, StreamOptions{Pipeline: pl})
		if _, err := io.ReadAll(cr); err != nil {
			t.Fatal(err)
		}
		if cr.Report().Chunks != 9 {
			t.Fatalf("read %d chunks, want 9", cr.Report().Chunks)
		}
		if got := cr.codecs.builds; got != 2 { // full-chunk codec + final-partial codec
			t.Fatalf("pipeline %d: built %d codecs for 9 chunks, want 2", pl, got)
		}
	}
}

func TestChunkWriterCachesCodecsAcrossChunks(t *testing.T) {
	data := make([]byte, 32<<10+1)
	rand.New(rand.NewSource(110)).Read(data)
	var buf bytes.Buffer
	choice := Choice{Config: Config{Method: ecc.MethodReedSolomon, Param: 15}, Threads: 1}
	cw, err := streamTestEngine(1).NewChunkWriterChoice(&buf, choice, StreamOptions{ChunkSize: 4 << 10, Pipeline: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := cw.codecs.builds; got != 2 {
		t.Fatalf("built %d codecs for 9 chunks, want 2 (full + partial)", got)
	}
}

func TestPipelineDefaultsAndSequentialFallback(t *testing.T) {
	// Pipeline <= 0 must resolve to the worker budget; 1 must never
	// allocate pipeline machinery.
	var buf bytes.Buffer
	cw, err := streamTestEngine(3).NewChunkWriterChoice(&buf, pipelineTestChoice, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cw.pipeline != 3 {
		t.Fatalf("writer default pipeline = %d, want engine threads 3", cw.pipeline)
	}
	_ = cw.Close()
	cr := NewChunkReaderWith(bytes.NewReader(nil), 5, StreamOptions{})
	if cr.pipeline != 5 {
		t.Fatalf("reader default pipeline = %d, want workers 5", cr.pipeline)
	}
	seq := NewChunkReaderWith(bytes.NewReader(nil), 1, StreamOptions{Pipeline: 1})
	if _, err := seq.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("sequential empty stream: %v", err)
	}
	if seq.pipe != nil {
		t.Fatal("sequential reader must not build a pipe")
	}
}

func TestPipelinedWriterManyChunksOrdered(t *testing.T) {
	// A chunk count far above the window forces recycling of every
	// pipeline slot; ordering is verified by the round trip.
	data := make([]byte, 100*256+13)
	rand.New(rand.NewSource(111)).Read(data)
	opts := StreamOptions{ChunkSize: 256}
	opts.Pipeline = 1
	want := encodeStream(t, pipelineTestChoice, opts, data)
	opts.Pipeline = 5
	got := encodeStream(t, pipelineTestChoice, opts, data)
	if !bytes.Equal(got, want) {
		t.Fatal("101-chunk pipelined stream differs from sequential")
	}
	rt, err := io.ReadAll(NewChunkReaderWith(bytes.NewReader(got), 1, StreamOptions{Pipeline: 5}))
	if err != nil || !bytes.Equal(rt, data) {
		t.Fatalf("round trip: err=%v", err)
	}
}

func TestStreamOptionsNormalize(t *testing.T) {
	for _, tc := range []struct {
		in     StreamOptions
		budget int
		want   StreamOptions
	}{
		{StreamOptions{}, 4, StreamOptions{ChunkSize: DefaultChunkSize, Pipeline: 4}},
		{StreamOptions{ChunkSize: 99, Pipeline: 2}, 4, StreamOptions{ChunkSize: 99, Pipeline: 2}},
		{StreamOptions{Pipeline: -1}, 2, StreamOptions{ChunkSize: DefaultChunkSize, Pipeline: 2}},
		{StreamOptions{}, 0, StreamOptions{ChunkSize: DefaultChunkSize, Pipeline: runtime.GOMAXPROCS(0)}},
	} {
		if got := tc.in.normalize(tc.budget); got != tc.want {
			t.Fatalf("normalize(%+v, %d) = %+v, want %+v", tc.in, tc.budget, got, tc.want)
		}
	}
}

func TestNewChunkWriterChoiceRejectsInvalidConfig(t *testing.T) {
	var buf bytes.Buffer
	bad := Choice{Config: Config{Method: ecc.MethodHamming, Param: 13}, Threads: 1}
	if _, err := streamTestEngine(1).NewChunkWriterChoice(&buf, bad, StreamOptions{}); err == nil {
		t.Fatal("invalid configuration must be rejected at construction")
	}
}

// Example-style sanity check that the sequential reader and the
// pipelined reader agree on a damaged-then-repaired stream.
func TestSequentialAndPipelinedReadersAgree(t *testing.T) {
	data := make([]byte, 24<<10)
	rand.New(rand.NewSource(112)).Read(data)
	enc := encodeStream(t, pipelineTestChoice, StreamOptions{ChunkSize: 4 << 10, Pipeline: 1}, data)
	enc[2*(len(enc)/6)+ContainerOverheadBytes+9] ^= 0x20 // one repairable flip

	results := map[int]string{}
	for _, pl := range []int{1, 4} {
		cr := NewChunkReaderWith(bytes.NewReader(enc), 1, StreamOptions{Pipeline: pl})
		got, err := io.ReadAll(cr)
		if err != nil {
			t.Fatal(err)
		}
		results[pl] = fmt.Sprintf("%x/%+v", got[:64], cr.Report())
	}
	if results[1] != results[4] {
		t.Fatalf("sequential and pipelined disagree:\n seq: %s\npipe: %s", results[1], results[4])
	}
}
