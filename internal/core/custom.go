package core

import (
	"fmt"
	"sync"

	"repro/internal/ecc"
)

// Custom ECC registration — the paper's stated future work ("an API to
// further simplify the addition of custom ECC algorithms and
// constraints"). A registered method participates fully: the trainer
// measures it, the optimizer selects it under all three constraints,
// and the container records its method id so decode is automatic.
//
// Method ids 1-4 are ARC's built-ins; ids in [CustomMethodBase, 255]
// are reserved for custom codes.

// CustomMethodBase is the first method id available to custom codes.
const CustomMethodBase ecc.Method = 128

// CustomBuilder constructs a code instance for one parameter value.
// devSize is advisory (only striped codes need it).
type CustomBuilder func(param, workers, devSize int) (ecc.Code, error)

// CustomMethod describes a registered ECC family.
type CustomMethod struct {
	ID   ecc.Method
	Name string
	// Params enumerates the family's configuration grid.
	Params []int
	// Overhead returns the storage overhead for a parameter value.
	Overhead func(param int) float64
	// Caps declares the family's error-response capabilities.
	Caps ecc.Capability
	// Build constructs instances.
	Build CustomBuilder
}

var (
	customMu      sync.RWMutex
	customMethods = map[ecc.Method]CustomMethod{}
)

// RegisterCustomMethod adds an ECC family to ARC's configuration
// space. It fails on id collisions, reserved ids, or incomplete
// definitions. Engines built after registration train and select the
// new family like any built-in.
func RegisterCustomMethod(m CustomMethod) error {
	if m.ID < CustomMethodBase {
		return fmt.Errorf("core: custom method id %d is reserved (use >= %d)", m.ID, CustomMethodBase)
	}
	if m.Name == "" || m.Build == nil || m.Overhead == nil || len(m.Params) == 0 {
		return fmt.Errorf("core: custom method %d is incompletely defined", m.ID)
	}
	customMu.Lock()
	defer customMu.Unlock()
	if _, dup := customMethods[m.ID]; dup {
		return fmt.Errorf("core: custom method id %d already registered", m.ID)
	}
	customMethods[m.ID] = m
	return nil
}

// UnregisterCustomMethod removes a family (primarily for tests).
func UnregisterCustomMethod(id ecc.Method) {
	customMu.Lock()
	defer customMu.Unlock()
	delete(customMethods, id)
}

// customConfigs lists configurations of all registered families.
func customConfigs() []Config {
	customMu.RLock()
	defer customMu.RUnlock()
	var cs []Config
	for id, m := range customMethods {
		for _, p := range m.Params {
			cs = append(cs, Config{Method: id, Param: p})
		}
	}
	return cs
}

// lookupCustom returns the family for a method id.
func lookupCustom(id ecc.Method) (CustomMethod, bool) {
	customMu.RLock()
	defer customMu.RUnlock()
	m, ok := customMethods[id]
	return m, ok
}
