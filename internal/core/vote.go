package core

import "encoding/binary"

// voteBytes writes the bitwise majority of three equal-length replica
// slices into dst, eight bytes per iteration over uint64 words with a
// byte tail — the batched form of vote3 used on the stream verify
// path. dst may alias any of the inputs.
func voteBytes(dst, a, b, c []byte) {
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		wa := binary.LittleEndian.Uint64(a[i:])
		wb := binary.LittleEndian.Uint64(b[i:])
		wc := binary.LittleEndian.Uint64(c[i:])
		binary.LittleEndian.PutUint64(dst[i:], (wa&wb)|(wa&wc)|(wb&wc))
	}
	for i := n; i < len(dst); i++ {
		dst[i] = vote3(a[i], b[i], c[i])
	}
}

// voteBytesRef is the scalar reference implementation of voteBytes,
// retained for differential tests and benchmarks.
func voteBytesRef(dst, a, b, c []byte) {
	for i := range dst {
		dst[i] = vote3(a[i], b[i], c[i])
	}
}
