package core

// Container v2 footer tests: round-tripping through the indexed
// writer, trailer replica voting, the index repairing itself through
// its own ECC, and the degrade-to-scan guarantee when the footer is
// destroyed outright.

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"repro/internal/ecc"
)

var indexTestChoice = Choice{Config: Config{Method: ecc.MethodSECDED, Param: 64}, Threads: 1}

// encodeIndexed produces a v2 stream (and the plaintext it encodes).
func encodeIndexed(t *testing.T, chunkSize, size int, pipeline int) (stream, data []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(size)*31 + int64(chunkSize)))
	data = make([]byte, size)
	rng.Read(data)
	stream = encodeStream(t, indexTestChoice,
		StreamOptions{ChunkSize: chunkSize, Pipeline: pipeline, Indexed: true}, data)
	return stream, data
}

// openRange opens a RangeReader over an in-memory stream.
func openRange(t *testing.T, stream []byte, opts RangeOptions) *RangeReader {
	t.Helper()
	rr, err := OpenRangeReader(bytes.NewReader(stream), int64(len(stream)), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := rr.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return rr
}

// readAll drains a RangeReader's full content through ReadRange.
func readAll(t *testing.T, rr *RangeReader) []byte {
	t.Helper()
	out := make([]byte, rr.Size())
	n, _, err := rr.ReadRange(out, 0, rr.Size())
	if err != nil {
		t.Fatalf("full ReadRange: %v", err)
	}
	if int64(n) != rr.Size() {
		t.Fatalf("full ReadRange delivered %d of %d bytes", n, rr.Size())
	}
	return out
}

func TestIndexedStreamRoundTrip(t *testing.T) {
	const chunkSize, size = 4 << 10, 4<<10*5 + 777 // six chunks, short tail
	stream, data := encodeIndexed(t, chunkSize, size, 1)

	// The v2 stream is byte-for-byte the v1 stream plus a footer.
	v1 := encodeStream(t, indexTestChoice,
		StreamOptions{ChunkSize: chunkSize, Pipeline: 1}, data)
	if !bytes.HasPrefix(stream, v1) {
		t.Fatal("v2 stream does not begin with the v1 byte stream")
	}
	if len(stream) <= len(v1)+TrailerBytes {
		t.Fatalf("footer too small: %d extra bytes", len(stream)-len(v1))
	}

	// Sequential readers deliver exactly the original bytes: the
	// footer is skipped, not decoded as data.
	cr := NewChunkReader(bytes.NewReader(stream), 1)
	got, err := io.ReadAll(cr)
	if err != nil {
		t.Fatalf("sequential read of v2 stream: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("sequential read of v2 stream differs from original")
	}

	// InspectStream sees only the data chunks.
	infos, err := InspectStream(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 6 {
		t.Fatalf("InspectStream found %d chunks, want 6", len(infos))
	}

	// The range reader finds and trusts the index.
	rr := openRange(t, stream, RangeOptions{})
	if !rr.Indexed() {
		t.Fatal("pristine v2 stream opened unindexed")
	}
	if rr.Chunks() != 6 {
		t.Fatalf("Chunks() = %d, want 6", rr.Chunks())
	}
	if rr.Size() != int64(size) {
		t.Fatalf("Size() = %d, want %d", rr.Size(), size)
	}
	if rep := rr.IndexReport(); rep.CorrectedBits != 0 || rep.DetectedBlocks != 0 {
		t.Fatalf("pristine index reported repairs: %+v", rep)
	}
	if !bytes.Equal(readAll(t, rr), data) {
		t.Fatal("indexed full read differs from original")
	}
}

func TestIndexedPipelinedWriterMatchesSequential(t *testing.T) {
	const chunkSize, size = 2 << 10, 2<<10*7 + 19
	seq, data := encodeIndexed(t, chunkSize, size, 1)
	rng := rand.New(rand.NewSource(int64(size)*31 + int64(chunkSize)))
	check := make([]byte, size)
	rng.Read(check)
	if !bytes.Equal(check, data) {
		t.Fatal("test rng drift")
	}
	pip := encodeStream(t, indexTestChoice,
		StreamOptions{ChunkSize: chunkSize, Pipeline: 4, Indexed: true}, data)
	if !bytes.Equal(seq, pip) {
		t.Fatal("pipelined indexed stream differs from sequential")
	}
}

func TestTrailerReplicaVoting(t *testing.T) {
	stream, data := encodeIndexed(t, 4<<10, 3*4<<10, 1)
	trailer := len(stream) - TrailerBytes

	// One replica obliterated: another replica's CRC still passes.
	s := append([]byte(nil), stream...)
	for i := 0; i < trailerRecordLen; i++ {
		s[trailer+i] ^= 0xFF
	}
	rr := openRange(t, s, RangeOptions{})
	if !rr.Indexed() {
		t.Fatal("one dead trailer replica broke the index")
	}

	// Every replica damaged at a *different* offset: no CRC passes,
	// but byte-wise majority voting reconstructs the record.
	s = append([]byte(nil), stream...)
	s[trailer+2] ^= 0xA5                     // replica 0
	s[trailer+trailerRecordLen+9] ^= 0x5A    // replica 1
	s[trailer+2*trailerRecordLen+17] ^= 0x3C // replica 2
	rr = openRange(t, s, RangeOptions{})
	if !rr.Indexed() {
		t.Fatal("voting failed to recover a trailer with one bad byte per replica")
	}
	if !bytes.Equal(readAll(t, rr), data) {
		t.Fatal("data mismatch after trailer voting")
	}
}

func TestIndexRepairsItsOwnBitFlips(t *testing.T) {
	stream, data := encodeIndexed(t, 4<<10, 5*4<<10+123, 1)

	// Locate the index payload: it follows the last data chunk's
	// container, whose offset the trailer records.
	indexOff, entries, err := parseTrailer(stream)
	if err != nil {
		t.Fatal(err)
	}
	if entries != 6 {
		t.Fatalf("trailer entries = %d, want 6", entries)
	}
	payloadStart := int(indexOff) + ContainerOverheadBytes
	payloadEnd := len(stream) - TrailerBytes
	if payloadEnd-payloadStart < 64 {
		t.Fatalf("index payload implausibly small: %d bytes", payloadEnd-payloadStart)
	}

	// Flip one bit in each of three well-separated codewords — within
	// the SEC-DED budget of one bit per block.
	s := append([]byte(nil), stream...)
	flips := []int{payloadStart, payloadStart + 24, payloadStart + 48}
	for _, off := range flips {
		s[off] ^= 0x10
	}
	rr := openRange(t, s, RangeOptions{})
	if !rr.Indexed() {
		t.Fatal("bit-flipped index failed to open as indexed")
	}
	rep := rr.IndexReport()
	if rep.CorrectedBits != len(flips) {
		t.Fatalf("IndexReport().CorrectedBits = %d, want %d (%+v)", rep.CorrectedBits, len(flips), rep)
	}
	if rep.CorrectedBlocks != len(flips) || rep.DetectedBlocks != len(flips) {
		t.Fatalf("unexpected index repair accounting: %+v", rep)
	}
	if !bytes.Equal(readAll(t, rr), data) {
		t.Fatal("data mismatch after index self-repair")
	}
}

func TestDestroyedIndexDegradesToScan(t *testing.T) {
	stream, data := encodeIndexed(t, 4<<10, 4*4<<10+55, 1)
	indexOff, _, err := parseTrailer(stream)
	if err != nil {
		t.Fatal(err)
	}

	mutate := map[string]func([]byte) []byte{
		"zeroed footer": func(s []byte) []byte {
			for i := int(indexOff); i < len(s); i++ {
				s[i] = 0
			}
			return s
		},
		"truncated mid-index": func(s []byte) []byte {
			return s[:int(indexOff)+ContainerOverheadBytes+10]
		},
		"random footer": func(s []byte) []byte {
			rng := rand.New(rand.NewSource(99))
			rng.Read(s[int(indexOff):])
			return s
		},
	}
	for name, fn := range mutate {
		s := fn(append([]byte(nil), stream...))
		rr := openRange(t, s, RangeOptions{})
		if rr.Indexed() {
			// A randomized footer can never reassemble a valid CRC'd
			// trailer plus ECC'd index by chance.
			t.Fatalf("%s: still claims an intact index", name)
		}
		if rr.Size() != int64(len(data)) {
			t.Fatalf("%s: scan found %d bytes, want %d", name, rr.Size(), len(data))
		}
		if !bytes.Equal(readAll(t, rr), data) {
			t.Fatalf("%s: scan-path data mismatch", name)
		}
		if err := rr.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
	}
}

func TestV1StreamOpensViaScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 3*4<<10+9)
	rng.Read(data)
	v1 := encodeStream(t, indexTestChoice, StreamOptions{ChunkSize: 4 << 10, Pipeline: 1}, data)

	rr := openRange(t, v1, RangeOptions{})
	if rr.Indexed() {
		t.Fatal("v1 stream claims a v2 index")
	}
	if rr.Chunks() != 4 {
		t.Fatalf("Chunks() = %d, want 4", rr.Chunks())
	}
	if !bytes.Equal(readAll(t, rr), data) {
		t.Fatal("v1 scan-path data mismatch")
	}
	// Partial range off the scan-built table.
	got := make([]byte, 1000)
	n, _, err := rr.ReadRange(got, 5000, 1000)
	if err != nil || n != 1000 {
		t.Fatalf("ReadRange(5000, 1000) = %d, %v", n, err)
	}
	if !bytes.Equal(got, data[5000:6000]) {
		t.Fatal("v1 partial range mismatch")
	}
}

func TestEmptyIndexedStream(t *testing.T) {
	stream, _ := encodeIndexed(t, 4<<10, 0, 1)
	rr := openRange(t, stream, RangeOptions{})
	if !rr.Indexed() {
		t.Fatal("empty v2 stream opened unindexed")
	}
	if rr.Chunks() != 0 || rr.Size() != 0 {
		t.Fatalf("empty stream: Chunks=%d Size=%d", rr.Chunks(), rr.Size())
	}
	if n, _, err := rr.ReadRange(nil, 0, 0); n != 0 || err != nil {
		t.Fatalf("empty ReadRange = %d, %v", n, err)
	}
	if _, _, err := rr.ReadRange(make([]byte, 1), 0, 1); err != io.EOF {
		t.Fatalf("read past empty stream: %v, want io.EOF", err)
	}
}
