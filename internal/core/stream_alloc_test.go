package core

// Allocation-regression tests for the chunk stream hot path: after
// warm-up, steady-state chunk encode and decode must stay within a
// small amortized allocation budget (the tentpole claim recorded in
// BENCH_stream.json and gated by verify.sh). Measured with
// testing.AllocsPerRun, which counts mallocs process-wide — worker
// and emitter goroutine allocations are included, which is the point.

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/ecc"
	"repro/internal/raceflag"
)

// steadyStateAllocBudget is the amortized allocs/op ceiling for one
// full steady-state chunk through encode or decode. The design target
// is ~0; the budget of 2 absorbs scheduler-dependent sync.Pool misses
// (a GC can empty pools mid-measurement).
const steadyStateAllocBudget = 2.0

// allocTestChoice exercises the deepest codec path (Reed-Solomon
// striping + CRC tables), where per-chunk reallocation used to
// dominate.
var allocTestChoice = Choice{Config: Config{Method: ecc.MethodReedSolomon, Param: 15}, Threads: 1}

const allocTestChunkSize = 64 << 10

func skipIfAllocCountingUnreliable(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("allocation accounting is unreliable under the race detector")
	}
}

func measureEncodeAllocs(t *testing.T, pipeline int) float64 {
	t.Helper()
	cw, err := streamTestEngine(4).NewChunkWriterChoice(io.Discard, allocTestChoice,
		StreamOptions{ChunkSize: allocTestChunkSize, Pipeline: pipeline})
	if err != nil {
		t.Fatal(err)
	}
	defer cw.Close()
	chunk := make([]byte, allocTestChunkSize)
	rand.New(rand.NewSource(1)).Read(chunk)
	// Warm-up: fill the buffer pools and every worker's scratch.
	for i := 0; i < 4*pipeline+8; i++ {
		if _, err := cw.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(100, func() {
		if _, err := cw.Write(chunk); err != nil {
			t.Fatal(err)
		}
	})
}

func TestStreamEncodeSteadyStateAllocs(t *testing.T) {
	skipIfAllocCountingUnreliable(t)
	for _, pipeline := range []int{1, 4} {
		if avg := measureEncodeAllocs(t, pipeline); avg > steadyStateAllocBudget {
			t.Errorf("pipeline=%d: steady-state chunk encode = %.2f allocs/op, budget %.0f",
				pipeline, avg, steadyStateAllocBudget)
		}
	}
}

// loopReader replays one encoded container forever, so the decode side
// can be driven to a steady state without an unbounded source buffer.
type loopReader struct {
	stream []byte
	off    int
}

func (l *loopReader) Read(p []byte) (int, error) {
	n := copy(p, l.stream[l.off:])
	l.off = (l.off + n) % len(l.stream)
	return n, nil
}

func measureDecodeAllocs(t *testing.T, pipeline int) float64 {
	t.Helper()
	chunk := make([]byte, allocTestChunkSize)
	rand.New(rand.NewSource(2)).Read(chunk)
	stream := encodeStream(t, allocTestChoice,
		StreamOptions{ChunkSize: allocTestChunkSize, Pipeline: 1}, chunk)
	cr := NewChunkReaderWith(&loopReader{stream: stream}, 1, StreamOptions{Pipeline: pipeline})
	defer cr.Close()
	out := make([]byte, allocTestChunkSize)
	for i := 0; i < 4*pipeline+8; i++ {
		if _, err := io.ReadFull(cr, out); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(100, func() {
		if _, err := io.ReadFull(cr, out); err != nil {
			t.Fatal(err)
		}
	})
}

func TestStreamDecodeSteadyStateAllocs(t *testing.T) {
	skipIfAllocCountingUnreliable(t)
	for _, pipeline := range []int{1, 4} {
		if avg := measureDecodeAllocs(t, pipeline); avg > steadyStateAllocBudget {
			t.Errorf("pipeline=%d: steady-state chunk decode = %.2f allocs/op, budget %.0f",
				pipeline, avg, steadyStateAllocBudget)
		}
	}
}
