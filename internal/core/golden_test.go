package core

// Format-stability tests: ARC containers are a storage format, so
// accidental layout changes must fail loudly. Each test encodes a
// fixed input with a fixed configuration and compares the SHA-256 of
// the result against a golden digest. If an intentional format change
// lands, bump containerVersion and regenerate these digests (the
// failure message prints the new value).

import (
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"testing"

	"repro/internal/ecc"
)

// goldenInput is a deterministic 4 KiB payload.
func goldenInput() []byte {
	rng := rand.New(rand.NewSource(0xA2C))
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(rng.Intn(256))
	}
	return buf
}

func digest(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:8]) // 8 bytes is plenty for drift detection
}

var goldenContainers = map[string]string{
	"parity8":    "9c3922ade4835f79",
	"hamming64":  "8897dd9e6fc32821",
	"secded64":   "cd47972731c1520b",
	"rs-m15":     "d8375cd9c3a474cf",
	"ilsecded64": "9afde1490a430db8",
}

func TestContainerFormatGolden(t *testing.T) {
	data := goldenInput()
	configs := map[string]Config{
		"parity8":    {ecc.MethodParity, 8},
		"hamming64":  {ecc.MethodHamming, 64},
		"secded64":   {ecc.MethodSECDED, 64},
		"rs-m15":     {ecc.MethodReedSolomon, 15},
		"ilsecded64": {ecc.MethodInterleavedSECDED, 64},
	}
	eng := &Engine{maxThreads: 1} // EncodeWith needs no training state
	for name, cfg := range configs {
		res, err := eng.EncodeWith(data, Choice{Config: cfg, Threads: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := digest(res.Encoded)
		want, ok := goldenContainers[name]
		if !ok {
			t.Fatalf("%s: no golden digest; add %q", name, got)
		}
		if got != want {
			t.Errorf("%s: container format drifted: digest %s, golden %s\n"+
				"If this change is intentional, bump containerVersion and update the golden.",
				name, got, want)
		}
		// And regardless of format, the container must still decode.
		dec, err := eng.Decode(res.Encoded)
		if err != nil || len(dec.Data) != len(data) {
			t.Fatalf("%s: decode: %v", name, err)
		}
	}
}

func TestEncodingIsDeterministic(t *testing.T) {
	data := goldenInput()
	eng := &Engine{maxThreads: 4}
	for _, cfg := range AllConfigs() {
		a, err := eng.EncodeWith(data, Choice{Config: cfg, Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := eng.EncodeWith(data, Choice{Config: cfg, Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		if digest(a.Encoded) != digest(b.Encoded) {
			t.Fatalf("%s: encoding depends on worker count", cfg)
		}
	}
}
