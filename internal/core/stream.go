package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ecc"
	"repro/internal/parallel"
)

// Streaming support: an ARC stream is a sequence of independent
// containers ("chunks"). Each chunk is self-describing, so readers
// need no side-band state, corrupted chunks fail independently, and
// chunk boundaries bound the blast radius of unrecoverable damage.
//
// Chunk independence is also what makes the stream pipelinable: the
// writer encodes up to Pipeline chunks concurrently and emits them
// strictly in order, and the reader reads ahead up to Pipeline encoded
// chunks and verifies/repairs them concurrently while Read consumes
// repaired chunks in order. Encoding is deterministic and layout never
// depends on worker count, so pipelined output is byte-identical to
// the sequential (Pipeline = 1) path.

// maxChunkPayload caps the EncLen a stream reader will allocate,
// so a corrupted-but-CRC-colliding header cannot drive an OOM.
const maxChunkPayload = 1 << 31

// DefaultChunkSize is the ChunkWriter's default chunk payload size.
const DefaultChunkSize = 4 << 20

// StreamOptions tunes the chunked stream codec.
type StreamOptions struct {
	// ChunkSize is the plaintext payload bytes per chunk (<= 0 selects
	// DefaultChunkSize).
	ChunkSize int
	// Pipeline bounds how many chunks may be encoded or decoded
	// concurrently. 1 is strictly sequential (no extra goroutines,
	// today's historical behaviour); <= 0 selects a default bounded by
	// the worker budget. Output bytes are identical either way.
	Pipeline int
}

// normalize applies the documented defaults. budget is the relevant
// worker bound (engine threads on the write side, decode workers on
// the read side); <= 0 falls back to GOMAXPROCS.
func (o StreamOptions) normalize(budget int) StreamOptions {
	if o.ChunkSize <= 0 {
		o.ChunkSize = DefaultChunkSize
	}
	if o.Pipeline <= 0 {
		if budget > 0 {
			o.Pipeline = budget
		} else {
			o.Pipeline = runtime.GOMAXPROCS(0)
		}
	}
	return o
}

// codecCache builds-and-caches ecc.Codes keyed by their build inputs.
// Rebuilding a codec per chunk is wasteful (Reed-Solomon builds
// matrices and CRC tables), and every chunk of a homogeneous stream
// shares one header configuration. Codes are stateless and safe for
// concurrent use, so one cache serves all pipeline workers.
type codecCache struct {
	mu     sync.Mutex
	codes  map[codecKey]ecc.Code
	builds int // build count, exposed for tests
}

type codecKey struct {
	cfg     Config
	devSize int
	workers int
}

func (cc *codecCache) get(cfg Config, workers, devSize int) (ecc.Code, error) {
	key := codecKey{cfg: cfg, devSize: devSize, workers: workers}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if code, ok := cc.codes[key]; ok {
		return code, nil
	}
	code, err := cfg.BuildWithDeviceSize(workers, devSize)
	if err != nil {
		return nil, err
	}
	if cc.codes == nil {
		cc.codes = make(map[codecKey]ecc.Code)
	}
	cc.codes[key] = code
	cc.builds++
	return code, nil
}

// ChunkWriter encodes fixed-size chunks of a byte stream with one
// configuration choice and writes the containers to w.
type ChunkWriter struct {
	eng       *Engine
	w         io.Writer
	choice    Choice
	buf       []byte
	chunkSize int
	pipeline  int
	closed    bool
	err       error
	written   atomic.Int64
	codecs    codecCache

	// Pipelined state (nil/unused when pipeline == 1). The producer
	// (Write/Close caller) submits full chunks; encoder workers protect
	// them concurrently; the emitter goroutine writes encoded chunks to
	// w strictly in submission order.
	pipe     *parallel.Pipe[[]byte, []byte]
	emitDone chan struct{}
	emitErr  atomic.Value // error; first writer-side error wins
}

// NewChunkWriter creates a streaming encoder. chunkSize <= 0 selects
// DefaultChunkSize. The configuration choice is made once, up front,
// from the given constraints.
func (e *Engine) NewChunkWriter(w io.Writer, mem, bw float64, res Resiliency, chunkSize int) (*ChunkWriter, error) {
	return e.NewChunkWriterWith(w, mem, bw, res, StreamOptions{ChunkSize: chunkSize})
}

// NewChunkWriterWith is NewChunkWriter with explicit stream options.
func (e *Engine) NewChunkWriterWith(w io.Writer, mem, bw float64, res Resiliency, opts StreamOptions) (*ChunkWriter, error) {
	choice, err := e.Optimizer().Joint(mem, bw, res)
	if err != nil {
		return nil, err
	}
	return e.NewChunkWriterChoice(w, choice, opts)
}

// NewChunkWriterChoice creates a streaming encoder with an explicit
// optimizer choice, bypassing constraint optimization (the streaming
// analog of EncodeWith). It needs no trained engine state.
func (e *Engine) NewChunkWriterChoice(w io.Writer, choice Choice, opts StreamOptions) (*ChunkWriter, error) {
	if _, err := choice.Config.Build(choice.Threads); err != nil {
		return nil, err // reject invalid configurations up front
	}
	opts = opts.normalize(e.maxThreads)
	cw := &ChunkWriter{
		eng:       e,
		w:         w,
		choice:    choice,
		buf:       make([]byte, 0, opts.ChunkSize),
		chunkSize: opts.ChunkSize,
		pipeline:  opts.Pipeline,
	}
	if cw.pipeline > 1 {
		cw.pipe = parallel.NewPipe(cw.pipeline, cw.pipeline, cw.encodeChunk)
		cw.emitDone = make(chan struct{})
		go cw.emit()
	}
	return cw, nil
}

// Choice returns the configuration the writer encodes with.
func (cw *ChunkWriter) Choice() Choice { return cw.choice }

// Write implements io.Writer, buffering until a full chunk is ready.
func (cw *ChunkWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	total := 0
	for len(p) > 0 {
		room := cw.chunkSize - len(cw.buf)
		n := len(p)
		if n > room {
			n = room
		}
		cw.buf = append(cw.buf, p[:n]...)
		p = p[n:]
		total += n
		if len(cw.buf) == cw.chunkSize {
			if err := cw.flush(); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// encodeChunk protects one chunk payload and wraps it in a container.
// It is the pipeline worker body, so it must be safe to call
// concurrently; byte layout matches Engine.EncodeWith exactly.
func (cw *ChunkWriter) encodeChunk(data []byte) ([]byte, error) {
	devSize := cw.choice.Config.DeviceSizeFor(len(data))
	code, err := cw.codecs.get(cw.choice.Config, cw.choice.Threads, devSize)
	if err != nil {
		return nil, err
	}
	payload := code.Encode(data)
	h := header{
		Method:  cw.choice.Config.Method,
		Param:   cw.choice.Config.Param,
		DevSize: devSize,
		OrigLen: len(data),
		EncLen:  len(payload),
	}
	return wrap(h, payload), nil
}

// emit is the pipelined writer's consumer goroutine: it receives
// encoded chunks in submission order and writes them out. On the first
// error it aborts the pipe (cancelling in-flight encodes) and keeps
// draining so the producer is never stuck in Submit.
func (cw *ChunkWriter) emit() {
	defer close(cw.emitDone)
	for {
		enc, ok, err := cw.pipe.Next()
		if !ok {
			return
		}
		if cw.emitErr.Load() != nil {
			continue // draining after failure
		}
		if err == nil {
			_, werr := cw.w.Write(enc)
			err = werr
		}
		if err != nil {
			cw.emitErr.Store(err)
			cw.pipe.Abort()
			continue
		}
		cw.written.Add(int64(len(enc)))
	}
}

// firstErr surfaces the pipeline's first writer-side error, if any.
func (cw *ChunkWriter) firstErr() error {
	if err, _ := cw.emitErr.Load().(error); err != nil {
		return err
	}
	return nil
}

// flush encodes and emits the buffered chunk.
func (cw *ChunkWriter) flush() error {
	if len(cw.buf) == 0 {
		return nil
	}
	if cw.pipe == nil {
		enc, err := cw.encodeChunk(cw.buf)
		if err != nil {
			cw.err = err
			return err
		}
		if _, err := cw.w.Write(enc); err != nil {
			cw.err = err
			return err
		}
		cw.written.Add(int64(len(enc)))
		cw.buf = cw.buf[:0]
		return nil
	}
	if err := cw.firstErr(); err != nil {
		cw.err = err
		return err
	}
	// Hand the buffer to the pipeline (blocking while the window is
	// full) and start a fresh one; the chunk now belongs to a worker.
	if cw.pipe.Submit(cw.buf) != nil {
		if err := cw.firstErr(); err != nil {
			cw.err = err
			return err
		}
		cw.err = parallel.ErrPipeAborted
		return cw.err
	}
	cw.buf = make([]byte, 0, cw.chunkSize)
	return nil
}

// Close flushes the final (possibly short) chunk and, in pipelined
// mode, waits for every in-flight chunk to be encoded and emitted (or
// cancelled, on error). It never leaks goroutines, and it does not
// close the underlying writer. Close is idempotent in effect: second
// and later calls report the writer as closed.
func (cw *ChunkWriter) Close() error {
	if cw.closed {
		return cw.err
	}
	cw.closed = true
	var err error
	if cw.err != nil {
		err = cw.err
	} else {
		err = cw.flush()
	}
	if cw.pipe != nil {
		cw.pipe.Close()
		<-cw.emitDone
		cw.pipe.Wait()
		if err == nil {
			err = cw.firstErr()
		}
	}
	if err != nil {
		cw.err = err
		return err
	}
	cw.err = fmt.Errorf("core: chunk writer is closed")
	return nil
}

// BytesWritten returns the encoded bytes emitted so far. In pipelined
// mode chunks still in flight are not yet counted.
func (cw *ChunkWriter) BytesWritten() int64 { return cw.written.Load() }

// ChunkReader decodes a stream of containers, verifying and repairing
// each chunk as it goes.
type ChunkReader struct {
	r        io.Reader
	workers  int
	pipeline int
	cur      []byte
	err      error
	closed   bool
	report   Report
	codecs   codecCache

	// Pipelined state (nil/unused when pipeline == 1). The producer
	// goroutine reads encoded chunks off r sequentially and submits
	// them; decode workers verify/repair concurrently; Read drains
	// repaired chunks in order.
	pipe     *parallel.Pipe[encChunk, decChunk]
	started  bool
	prodDone chan struct{}
	prodErr  error // read-side terminal error; valid once prodDone is closed
}

// encChunk is one still-encoded chunk handed to a decode worker.
type encChunk struct {
	h       header
	payload []byte
}

// decChunk is one decoded chunk plus its repair statistics.
type decChunk struct {
	data []byte
	rep  ecc.Report
}

// Report aggregates repair statistics over all chunks read.
type Report struct {
	Chunks          int
	DetectedBlocks  int
	CorrectedBlocks int
	CorrectedBits   int
}

// NewChunkReader creates a streaming decoder over r.
func NewChunkReader(r io.Reader, workers int) *ChunkReader {
	return NewChunkReaderWith(r, workers, StreamOptions{})
}

// NewChunkReaderWith is NewChunkReader with explicit stream options
// (ChunkSize is ignored on the read side: chunks are self-describing).
func NewChunkReaderWith(r io.Reader, workers int, opts StreamOptions) *ChunkReader {
	opts = opts.normalize(workers)
	return &ChunkReader{r: r, workers: workers, pipeline: opts.Pipeline}
}

// Report returns the accumulated repair statistics.
func (cr *ChunkReader) Report() Report { return cr.report }

// Read implements io.Reader. The first error in chunk order wins:
// every chunk before it is delivered intact, and the pipeline shuts
// down without leaking goroutines.
func (cr *ChunkReader) Read(p []byte) (int, error) {
	for len(cr.cur) == 0 {
		if cr.err != nil {
			return 0, cr.err
		}
		if err := cr.next(); err != nil {
			cr.err = err
			cr.shutdown()
			return 0, err
		}
	}
	n := copy(p, cr.cur)
	cr.cur = cr.cur[n:]
	return n, nil
}

// Close releases the reader without requiring a full drain: in-flight
// decodes are cancelled and joined. It does not close the underlying
// reader. Reads after Close fail.
func (cr *ChunkReader) Close() error {
	if cr.closed {
		return nil
	}
	cr.closed = true
	cr.cur = nil
	cr.shutdown()
	if cr.err == nil {
		cr.err = fmt.Errorf("core: chunk reader is closed")
	}
	return nil
}

// next produces the next decoded chunk into cr.cur.
func (cr *ChunkReader) next() error {
	if cr.pipeline <= 1 {
		return cr.nextChunk()
	}
	if !cr.started {
		cr.started = true
		cr.pipe = parallel.NewPipe(cr.pipeline, cr.pipeline, cr.decodeChunk)
		cr.prodDone = make(chan struct{})
		go cr.produce()
	}
	out, ok, err := cr.pipe.Next()
	if !ok {
		<-cr.prodDone
		return cr.prodErr
	}
	cr.report.Chunks++
	cr.report.DetectedBlocks += out.rep.DetectedBlocks
	cr.report.CorrectedBlocks += out.rep.CorrectedBlocks
	cr.report.CorrectedBits += out.rep.CorrectedBits
	if err != nil {
		return fmt.Errorf("chunk %d: %w", cr.report.Chunks, err)
	}
	cr.cur = out.data
	return nil
}

// produce reads encoded chunks sequentially and feeds the decode
// pipeline until EOF, a malformed container, or an abort.
func (cr *ChunkReader) produce() {
	defer close(cr.prodDone)
	defer cr.pipe.Close()
	for {
		c, err := cr.readChunk()
		if err != nil {
			cr.prodErr = err
			return
		}
		if cr.pipe.Submit(c) != nil {
			cr.prodErr = parallel.ErrPipeAborted
			return
		}
	}
}

// decodeChunk is the decode-worker body: verify and repair one chunk.
// An ecc error (e.g. uncorrectable damage) is returned alongside the
// best-effort statistics.
func (cr *ChunkReader) decodeChunk(c encChunk) (dec decChunk, err error) {
	// Same boundary as decodeContainer: a corrupted chunk header must
	// surface as an error from the pipeline, never panic a worker.
	defer func() {
		if p := recover(); p != nil {
			dec, err = decChunk{}, fmt.Errorf("%w: decoder panic: %v", ErrContainer, p)
		}
	}()
	code, err := cr.codecs.get(c.h.config(), cr.workers, c.h.DevSize)
	if err != nil {
		return decChunk{}, fmt.Errorf("%w: %v", ErrContainer, err)
	}
	data, rep, derr := code.Decode(c.payload, c.h.OrigLen)
	return decChunk{data: data, rep: rep}, derr
}

// readChunk reads one encoded container (header + payload) off the
// underlying reader. io.EOF at a chunk boundary is the clean end.
func (cr *ChunkReader) readChunk() (encChunk, error) {
	hdr := make([]byte, ContainerOverheadBytes)
	if _, err := io.ReadFull(cr.r, hdr); err != nil {
		if err == io.EOF {
			return encChunk{}, io.EOF // clean end at a chunk boundary
		}
		return encChunk{}, fmt.Errorf("%w: truncated chunk header: %v", ErrContainer, err)
	}
	h, err := unmarshalHeader(hdr)
	if err != nil {
		return encChunk{}, err
	}
	if h.EncLen < 0 || h.EncLen > maxChunkPayload {
		return encChunk{}, fmt.Errorf("%w: implausible chunk payload %d", ErrContainer, h.EncLen)
	}
	payload, err := readCapped(cr.r, h.EncLen)
	if err != nil {
		return encChunk{}, fmt.Errorf("%w: truncated chunk payload: %v", ErrContainer, err)
	}
	return encChunk{h: h, payload: payload}, nil
}

// directReadCap is the largest chunk payload readCapped pre-sizes in a
// single allocation; larger claims grow geometrically as bytes
// actually arrive.
const directReadCap = 1 << 20

// readCapped reads exactly n bytes from r. Pre-sizing the buffer from
// the header would let a forged (CRC-colliding) EncLen allocate up to
// maxChunkPayload from a short stream; growing as data arrives keeps
// the cost proportional to the bytes the reader really delivers.
func readCapped(r io.Reader, n int) ([]byte, error) {
	if n <= directReadCap {
		buf := make([]byte, n)
		_, err := io.ReadFull(r, buf)
		return buf, err
	}
	buf := make([]byte, directReadCap)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	for len(buf) < n {
		grown := make([]byte, min(len(buf)*2, n))
		copy(grown, buf)
		if _, err := io.ReadFull(r, grown[len(buf):]); err != nil {
			return nil, err
		}
		buf = grown
	}
	return buf, nil
}

// shutdown cancels and joins the pipelined machinery; safe to call on
// a sequential or never-started reader.
func (cr *ChunkReader) shutdown() {
	if cr.pipe == nil {
		return
	}
	cr.pipe.Abort()
	// Drain deliveries so a producer blocked in Submit can exit, then
	// join producer and workers.
	for {
		if _, ok, _ := cr.pipe.Next(); !ok {
			break
		}
	}
	<-cr.prodDone
	cr.pipe.Wait()
	cr.pipe = nil
}

// nextChunk reads and decodes one container sequentially.
func (cr *ChunkReader) nextChunk() error {
	c, err := cr.readChunk()
	if err != nil {
		return err
	}
	out, derr := cr.decodeChunk(c)
	cr.report.Chunks++
	cr.report.DetectedBlocks += out.rep.DetectedBlocks
	cr.report.CorrectedBlocks += out.rep.CorrectedBlocks
	cr.report.CorrectedBits += out.rep.CorrectedBits
	if derr != nil {
		return fmt.Errorf("chunk %d: %w", cr.report.Chunks, derr)
	}
	cr.cur = out.data
	return nil
}

// ChunkInfo summarizes one container of a stream without decoding its
// payload.
type ChunkInfo struct {
	Config  Config
	DevSize int
	OrigLen int
	EncLen  int
}

// InspectStream walks a stream (single container or chunked), parsing
// headers and skipping payloads. It returns per-chunk metadata.
func InspectStream(r io.Reader) ([]ChunkInfo, error) {
	var infos []ChunkInfo
	hdr := make([]byte, ContainerOverheadBytes)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				return infos, nil
			}
			return infos, fmt.Errorf("%w: truncated header after %d chunk(s): %v", ErrContainer, len(infos), err)
		}
		h, err := unmarshalHeader(hdr)
		if err != nil {
			return infos, err
		}
		if h.EncLen > maxChunkPayload {
			return infos, fmt.Errorf("%w: implausible chunk payload %d", ErrContainer, h.EncLen)
		}
		if _, err := io.CopyN(io.Discard, r, int64(h.EncLen)); err != nil {
			return infos, fmt.Errorf("%w: truncated payload: %v", ErrContainer, err)
		}
		infos = append(infos, ChunkInfo{
			Config:  h.config(),
			DevSize: h.DevSize,
			OrigLen: h.OrigLen,
			EncLen:  h.EncLen,
		})
	}
}
