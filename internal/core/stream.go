package core

import (
	"fmt"
	"io"
)

// Streaming support: an ARC stream is a sequence of independent
// containers ("chunks"). Each chunk is self-describing, so readers
// need no side-band state, corrupted chunks fail independently, and
// chunk boundaries bound the blast radius of unrecoverable damage.

// maxChunkPayload caps the EncLen a stream reader will allocate,
// so a corrupted-but-CRC-colliding header cannot drive an OOM.
const maxChunkPayload = 1 << 31

// ChunkWriter encodes fixed-size chunks of a byte stream with one
// configuration choice and writes the containers to w.
type ChunkWriter struct {
	eng       *Engine
	w         io.Writer
	choice    Choice
	buf       []byte
	chunkSize int
	err       error
	written   int64
}

// DefaultChunkSize is the ChunkWriter's default chunk payload size.
const DefaultChunkSize = 4 << 20

// NewChunkWriter creates a streaming encoder. chunkSize <= 0 selects
// DefaultChunkSize. The configuration choice is made once, up front,
// from the given constraints.
func (e *Engine) NewChunkWriter(w io.Writer, mem, bw float64, res Resiliency, chunkSize int) (*ChunkWriter, error) {
	choice, err := e.Optimizer().Joint(mem, bw, res)
	if err != nil {
		return nil, err
	}
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &ChunkWriter{
		eng:       e,
		w:         w,
		choice:    choice,
		buf:       make([]byte, 0, chunkSize),
		chunkSize: chunkSize,
	}, nil
}

// Choice returns the configuration the writer encodes with.
func (cw *ChunkWriter) Choice() Choice { return cw.choice }

// Write implements io.Writer, buffering until a full chunk is ready.
func (cw *ChunkWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	total := 0
	for len(p) > 0 {
		room := cw.chunkSize - len(cw.buf)
		n := len(p)
		if n > room {
			n = room
		}
		cw.buf = append(cw.buf, p[:n]...)
		p = p[n:]
		total += n
		if len(cw.buf) == cw.chunkSize {
			if err := cw.flush(); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// flush encodes and writes the buffered chunk.
func (cw *ChunkWriter) flush() error {
	if len(cw.buf) == 0 {
		return nil
	}
	enc, err := cw.eng.EncodeWith(cw.buf, cw.choice)
	if err != nil {
		cw.err = err
		return err
	}
	if _, err := cw.w.Write(enc.Encoded); err != nil {
		cw.err = err
		return err
	}
	cw.written += int64(len(enc.Encoded))
	cw.buf = cw.buf[:0]
	return nil
}

// Close flushes the final (possibly short) chunk. It does not close
// the underlying writer.
func (cw *ChunkWriter) Close() error {
	if cw.err != nil {
		return cw.err
	}
	if err := cw.flush(); err != nil {
		return err
	}
	cw.err = fmt.Errorf("core: chunk writer is closed")
	return nil
}

// BytesWritten returns the encoded bytes emitted so far.
func (cw *ChunkWriter) BytesWritten() int64 { return cw.written }

// ChunkReader decodes a stream of containers, verifying and repairing
// each chunk as it goes.
type ChunkReader struct {
	r       io.Reader
	workers int
	cur     []byte
	err     error
	report  Report
}

// Report aggregates repair statistics over all chunks read.
type Report struct {
	Chunks          int
	DetectedBlocks  int
	CorrectedBlocks int
	CorrectedBits   int
}

// NewChunkReader creates a streaming decoder over r.
func NewChunkReader(r io.Reader, workers int) *ChunkReader {
	return &ChunkReader{r: r, workers: workers}
}

// Report returns the accumulated repair statistics.
func (cr *ChunkReader) Report() Report { return cr.report }

// Read implements io.Reader.
func (cr *ChunkReader) Read(p []byte) (int, error) {
	for len(cr.cur) == 0 {
		if cr.err != nil {
			return 0, cr.err
		}
		if err := cr.nextChunk(); err != nil {
			cr.err = err
			return 0, err
		}
	}
	n := copy(p, cr.cur)
	cr.cur = cr.cur[n:]
	return n, nil
}

// nextChunk reads and decodes one container.
func (cr *ChunkReader) nextChunk() error {
	hdr := make([]byte, ContainerOverheadBytes)
	if _, err := io.ReadFull(cr.r, hdr); err != nil {
		if err == io.EOF {
			return io.EOF // clean end at a chunk boundary
		}
		return fmt.Errorf("%w: truncated chunk header: %v", ErrContainer, err)
	}
	h, err := unmarshalHeader(hdr)
	if err != nil {
		return err
	}
	if h.EncLen > maxChunkPayload {
		return fmt.Errorf("%w: implausible chunk payload %d", ErrContainer, h.EncLen)
	}
	payload := make([]byte, h.EncLen)
	if _, err := io.ReadFull(cr.r, payload); err != nil {
		return fmt.Errorf("%w: truncated chunk payload: %v", ErrContainer, err)
	}
	code, err := h.config().BuildWithDeviceSize(cr.workers, h.DevSize)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrContainer, err)
	}
	data, rep, derr := code.Decode(payload, h.OrigLen)
	cr.report.Chunks++
	cr.report.DetectedBlocks += rep.DetectedBlocks
	cr.report.CorrectedBlocks += rep.CorrectedBlocks
	cr.report.CorrectedBits += rep.CorrectedBits
	if derr != nil {
		return fmt.Errorf("chunk %d: %w", cr.report.Chunks, derr)
	}
	cr.cur = data
	return nil
}

// ChunkInfo summarizes one container of a stream without decoding its
// payload.
type ChunkInfo struct {
	Config  Config
	DevSize int
	OrigLen int
	EncLen  int
}

// InspectStream walks a stream (single container or chunked), parsing
// headers and skipping payloads. It returns per-chunk metadata.
func InspectStream(r io.Reader) ([]ChunkInfo, error) {
	var infos []ChunkInfo
	hdr := make([]byte, ContainerOverheadBytes)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				return infos, nil
			}
			return infos, fmt.Errorf("%w: truncated header after %d chunk(s): %v", ErrContainer, len(infos), err)
		}
		h, err := unmarshalHeader(hdr)
		if err != nil {
			return infos, err
		}
		if h.EncLen > maxChunkPayload {
			return infos, fmt.Errorf("%w: implausible chunk payload %d", ErrContainer, h.EncLen)
		}
		if _, err := io.CopyN(io.Discard, r, int64(h.EncLen)); err != nil {
			return infos, fmt.Errorf("%w: truncated payload: %v", ErrContainer, err)
		}
		infos = append(infos, ChunkInfo{
			Config:  h.config(),
			DevSize: h.DevSize,
			OrigLen: h.OrigLen,
			EncLen:  h.EncLen,
		})
	}
}
