package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ecc"
	"repro/internal/parallel"
)

// Streaming support: an ARC stream is a sequence of independent
// containers ("chunks"). Each chunk is self-describing, so readers
// need no side-band state, corrupted chunks fail independently, and
// chunk boundaries bound the blast radius of unrecoverable damage.
//
// Chunk independence is also what makes the stream pipelinable: the
// writer encodes up to Pipeline chunks concurrently and emits them
// strictly in order, and the reader reads ahead up to Pipeline encoded
// chunks and verifies/repairs them concurrently while Read consumes
// repaired chunks in order. Encoding is deterministic and layout never
// depends on worker count, so pipelined output is byte-identical to
// the sequential (Pipeline = 1) path.

// maxChunkPayload caps the EncLen a stream reader will allocate,
// so a corrupted-but-CRC-colliding header cannot drive an OOM.
const maxChunkPayload = 1 << 31

// DefaultChunkSize is the ChunkWriter's default chunk payload size.
const DefaultChunkSize = 4 << 20

// StreamOptions tunes the chunked stream codec.
type StreamOptions struct {
	// ChunkSize is the plaintext payload bytes per chunk (<= 0 selects
	// DefaultChunkSize).
	ChunkSize int
	// Pipeline bounds how many chunks may be encoded or decoded
	// concurrently. 1 is strictly sequential (no extra goroutines,
	// today's historical behaviour); <= 0 selects a default bounded by
	// the worker budget. Output bytes are identical either way.
	Pipeline int
	// Indexed appends the container v2 footer — an ECC+CRC-protected
	// chunk index and a replicated trailer — after the chunk stream,
	// enabling random access through RangeReader (see index.go and
	// docs/CONTAINER.md). Readers that stream sequentially skip the
	// footer, so v2 output decodes to the same bytes as v1. Ignored on
	// the read side: streams are self-describing.
	Indexed bool
}

// normalize applies the documented defaults. budget is the relevant
// worker bound (engine threads on the write side, decode workers on
// the read side); <= 0 falls back to GOMAXPROCS.
func (o StreamOptions) normalize(budget int) StreamOptions {
	if o.ChunkSize <= 0 {
		o.ChunkSize = DefaultChunkSize
	}
	if o.Pipeline <= 0 {
		if budget > 0 {
			o.Pipeline = budget
		} else {
			o.Pipeline = runtime.GOMAXPROCS(0)
		}
	}
	return o
}

// codecCache builds-and-caches ecc.Codes keyed by their build inputs.
// Rebuilding a codec per chunk is wasteful (Reed-Solomon builds
// matrices and CRC tables), and every chunk of a homogeneous stream
// shares one header configuration. Codes are stateless and safe for
// concurrent use, so one cache serves all pipeline workers.
type codecCache struct {
	mu     sync.Mutex
	codes  map[codecKey]ecc.Code
	builds int // build count, exposed for tests
}

type codecKey struct {
	cfg     Config
	devSize int
	workers int
}

func (cc *codecCache) get(cfg Config, workers, devSize int) (ecc.Code, error) {
	key := codecKey{cfg: cfg, devSize: devSize, workers: workers}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if code, ok := cc.codes[key]; ok {
		return code, nil
	}
	code, err := cfg.BuildWithDeviceSize(workers, devSize)
	if err != nil {
		return nil, err
	}
	if cc.codes == nil {
		cc.codes = make(map[codecKey]ecc.Code)
	}
	cc.codes[key] = code
	cc.builds++
	return code, nil
}

// chunkScratch is the per-worker (or per-sequential-codec) scratch a
// chunk encode/decode reuses across chunks: the codec memo skips the
// shared cache's mutex in steady state, and the ecc.Scratch arena
// holds grow-only codec workspaces (RS stripes, interleave
// transposes). A chunkScratch is owned by exactly one goroutine.
type chunkScratch struct {
	memo codecMemo
	ecc  ecc.Scratch
}

// codecMemo caches the last codec a worker resolved. Chunks of a
// homogeneous stream share one header configuration, so after the
// first chunk every lookup is a key compare instead of a mutex-guarded
// map access.
type codecMemo struct {
	key  codecKey
	code ecc.Code
}

func (m *codecMemo) get(cc *codecCache, cfg Config, workers, devSize int) (ecc.Code, error) {
	key := codecKey{cfg: cfg, devSize: devSize, workers: workers}
	if m.code != nil && m.key == key {
		return m.code, nil
	}
	code, err := cc.get(cfg, workers, devSize)
	if err != nil {
		return nil, err
	}
	m.key, m.code = key, code
	return code, nil
}

// ChunkWriter encodes fixed-size chunks of a byte stream with one
// configuration choice and writes the containers to w.
type ChunkWriter struct {
	eng       *Engine
	w         io.Writer
	choice    Choice
	payload   *chunkBuf // accumulating plaintext chunk
	chunkSize int
	pipeline  int
	closed    bool
	err       error
	written   atomic.Int64
	codecs    codecCache
	seq       *chunkScratch // sequential-path scratch (pipeline == 1)

	// v2 index accumulation (nil/inactive unless Indexed). Entries are
	// appended by whichever goroutine emits chunks — the caller in
	// sequential mode, the emit goroutine when pipelined — and read by
	// Close only after that goroutine is joined, so no lock is needed.
	indexed  bool
	index    []indexEntry
	nextOff  int64
	origOff  int64
	indexErr error

	// Pipelined state (nil/unused when pipeline == 1). The producer
	// (Write/Close caller) submits full chunks; encoder workers protect
	// them concurrently; the emitter goroutine writes encoded chunks to
	// w strictly in submission order. Payload and container buffers
	// circulate through chunkBufPool, so the steady state allocates
	// nothing per chunk.
	pipe     *parallel.Pipe[*chunkBuf, *chunkBuf]
	emitDone chan struct{}
	emitErr  atomic.Value // error; first writer-side error wins
}

// NewChunkWriter creates a streaming encoder. chunkSize <= 0 selects
// DefaultChunkSize. The configuration choice is made once, up front,
// from the given constraints.
func (e *Engine) NewChunkWriter(w io.Writer, mem, bw float64, res Resiliency, chunkSize int) (*ChunkWriter, error) {
	return e.NewChunkWriterWith(w, mem, bw, res, StreamOptions{ChunkSize: chunkSize})
}

// NewChunkWriterWith is NewChunkWriter with explicit stream options.
func (e *Engine) NewChunkWriterWith(w io.Writer, mem, bw float64, res Resiliency, opts StreamOptions) (*ChunkWriter, error) {
	choice, err := e.Optimizer().Joint(mem, bw, res)
	if err != nil {
		return nil, err
	}
	return e.NewChunkWriterChoice(w, choice, opts)
}

// NewChunkWriterChoice creates a streaming encoder with an explicit
// optimizer choice, bypassing constraint optimization (the streaming
// analog of EncodeWith). It needs no trained engine state.
func (e *Engine) NewChunkWriterChoice(w io.Writer, choice Choice, opts StreamOptions) (*ChunkWriter, error) {
	if _, err := choice.Config.Build(choice.Threads); err != nil {
		return nil, err // reject invalid configurations up front
	}
	opts = opts.normalize(e.maxThreads)
	cw := &ChunkWriter{
		eng:       e,
		w:         w,
		choice:    choice,
		payload:   getChunkBuf(opts.ChunkSize),
		chunkSize: opts.ChunkSize,
		pipeline:  opts.Pipeline,
		indexed:   opts.Indexed,
	}
	cw.payload.b = cw.payload.b[:0]
	if cw.pipeline > 1 {
		cw.pipe = parallel.NewPipeWith(cw.pipeline, cw.pipeline,
			func() *chunkScratch { return new(chunkScratch) },
			func(in *chunkBuf, s *chunkScratch) (*chunkBuf, error) {
				out, err := cw.encodeChunk(in.b, s)
				putChunkBuf(in) // payload consumed; recycle for the producer
				return out, err
			})
		cw.emitDone = make(chan struct{})
		go cw.emit()
	} else {
		cw.seq = new(chunkScratch)
	}
	return cw, nil
}

// Choice returns the configuration the writer encodes with.
func (cw *ChunkWriter) Choice() Choice { return cw.choice }

// Write implements io.Writer, buffering until a full chunk is ready.
func (cw *ChunkWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	total := 0
	for len(p) > 0 {
		room := cw.chunkSize - len(cw.payload.b)
		n := len(p)
		if n > room {
			n = room
		}
		cw.payload.b = append(cw.payload.b, p[:n]...)
		p = p[n:]
		total += n
		if len(cw.payload.b) == cw.chunkSize {
			if err := cw.flush(); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// encodeChunk protects one chunk payload and wraps it in a container
// drawn from the buffer pool. It is the pipeline worker body, so it
// must be safe to call concurrently (s is the calling worker's private
// scratch); byte layout matches Engine.EncodeWith exactly.
func (cw *ChunkWriter) encodeChunk(data []byte, s *chunkScratch) (*chunkBuf, error) {
	devSize := cw.choice.Config.DeviceSizeFor(len(data))
	code, err := s.memo.get(&cw.codecs, cw.choice.Config, cw.choice.Threads, devSize)
	if err != nil {
		return nil, err
	}
	out := getChunkBuf(ContainerOverheadBytes + code.EncodedSize(len(data)))
	enc := ecc.EncodeTo(code, out.b[ContainerOverheadBytes:], data, &s.ecc)
	if len(enc) > 0 && &enc[0] != &out.b[ContainerOverheadBytes] {
		// A custom Code that ignored dst (or sized its output off
		// EncodedSize): land its output in the container.
		out.b = append(out.b[:ContainerOverheadBytes], enc...)
	}
	h := header{
		Method:  cw.choice.Config.Method,
		Param:   cw.choice.Config.Param,
		DevSize: devSize,
		OrigLen: len(data),
		EncLen:  len(enc),
	}
	marshalHeaderInto(out.b[:ContainerOverheadBytes], h)
	return out, nil
}

// emit is the pipelined writer's consumer goroutine: it receives
// encoded chunks in submission order and writes them out. On the first
// error it aborts the pipe (cancelling in-flight encodes) and keeps
// draining so the producer is never stuck in Submit.
func (cw *ChunkWriter) emit() {
	defer close(cw.emitDone)
	for {
		enc, ok, err := cw.pipe.Next()
		if !ok {
			return
		}
		if cw.emitErr.Load() != nil {
			putChunkBuf(enc)
			continue // draining after failure
		}
		if err == nil {
			_, werr := cw.w.Write(enc.b)
			err = werr
		}
		if err != nil {
			putChunkBuf(enc)
			cw.emitErr.Store(err)
			cw.pipe.Abort()
			continue
		}
		cw.noteChunk(enc.b)
		cw.written.Add(int64(len(enc.b)))
		putChunkBuf(enc)
	}
}

// noteChunk records one just-emitted container in the v2 index. It is
// called only by the goroutine that writes chunks (flush when
// sequential, emit when pipelined), so the index fields need no lock;
// Close reads them only after that goroutine is joined.
func (cw *ChunkWriter) noteChunk(container []byte) {
	if !cw.indexed || cw.indexErr != nil {
		return
	}
	origLen := int64(binary.LittleEndian.Uint64(container[14:22]))
	if origLen > maxIndexedChunk {
		// An index entry stores OrigLen in 32 bits; a chunk beyond that
		// cannot be indexed. Surface the failure at Close rather than
		// writing an index that lies.
		cw.indexErr = fmt.Errorf("core: chunk of %d bytes exceeds the indexable maximum (%d)", origLen, maxIndexedChunk)
		return
	}
	cw.index = append(cw.index, indexEntry{
		Off:       cw.nextOff,
		EncLen:    int64(len(container) - ContainerOverheadBytes),
		OrigStart: cw.origOff,
		OrigLen:   origLen,
		HdrCRC:    headerCRC(container),
	})
	cw.nextOff += int64(len(container))
	cw.origOff += origLen
}

// maxIndexedChunk is the largest OrigLen an index entry can record.
const maxIndexedChunk = 1<<32 - 1

// firstErr surfaces the pipeline's first writer-side error, if any.
func (cw *ChunkWriter) firstErr() error {
	if err, _ := cw.emitErr.Load().(error); err != nil {
		return err
	}
	return nil
}

// flush encodes and emits the buffered chunk.
func (cw *ChunkWriter) flush() error {
	if cw.payload == nil || len(cw.payload.b) == 0 {
		return nil
	}
	if cw.pipe == nil {
		enc, err := cw.encodeChunk(cw.payload.b, cw.seq)
		if err != nil {
			cw.err = err
			return err
		}
		if _, err := cw.w.Write(enc.b); err != nil {
			putChunkBuf(enc)
			cw.err = err
			return err
		}
		cw.noteChunk(enc.b)
		cw.written.Add(int64(len(enc.b)))
		putChunkBuf(enc)
		cw.payload.b = cw.payload.b[:0]
		return nil
	}
	if err := cw.firstErr(); err != nil {
		cw.err = err
		return err
	}
	// Hand the buffer to the pipeline (blocking while the window is
	// full) and start a fresh one from the pool; the chunk now belongs
	// to a worker, which recycles it after encoding.
	if cw.pipe.Submit(cw.payload) != nil {
		if err := cw.firstErr(); err != nil {
			cw.err = err
			return err
		}
		cw.err = parallel.ErrPipeAborted
		return cw.err
	}
	cw.payload = getChunkBuf(cw.chunkSize)
	cw.payload.b = cw.payload.b[:0]
	return nil
}

// Close flushes the final (possibly short) chunk and, in pipelined
// mode, waits for every in-flight chunk to be encoded and emitted (or
// cancelled, on error). It never leaks goroutines, and it does not
// close the underlying writer. Close is idempotent in effect: second
// and later calls report the writer as closed.
func (cw *ChunkWriter) Close() error {
	if cw.closed {
		return cw.err
	}
	cw.closed = true
	var err error
	if cw.err != nil {
		err = cw.err
	} else {
		err = cw.flush()
	}
	if cw.pipe != nil {
		cw.pipe.Close()
		<-cw.emitDone
		cw.pipe.Wait()
		if err == nil {
			err = cw.firstErr()
		}
	}
	putChunkBuf(cw.payload)
	cw.payload = nil
	if err == nil && cw.indexed {
		err = cw.writeFooter()
	}
	if err != nil {
		cw.err = err
		return err
	}
	cw.err = fmt.Errorf("core: chunk writer is closed")
	return nil
}

// writeFooter appends the v2 index chunk and trailer after every data
// chunk has been emitted (the emit goroutine, when any, is already
// joined, so the index slice is complete and stable).
func (cw *ChunkWriter) writeFooter() error {
	if cw.indexErr != nil {
		return cw.indexErr
	}
	foot := appendIndexFooter(nil, cw.index, cw.nextOff)
	if _, err := cw.w.Write(foot); err != nil {
		return err
	}
	cw.written.Add(int64(len(foot)))
	return nil
}

// BytesWritten returns the encoded bytes emitted so far. In pipelined
// mode chunks still in flight are not yet counted.
func (cw *ChunkWriter) BytesWritten() int64 { return cw.written.Load() }

// ChunkReader decodes a stream of containers, verifying and repairing
// each chunk as it goes.
type ChunkReader struct {
	r        io.Reader
	workers  int
	pipeline int
	cur      []byte
	curBuf   *chunkBuf // owner of cur's storage; recycled once drained
	hdr      [ContainerOverheadBytes]byte
	err      error
	closed   bool
	report   Report
	codecs   codecCache
	seq      *chunkScratch // sequential-path scratch (pipeline == 1)

	// Pipelined state (nil/unused when pipeline == 1). The producer
	// goroutine reads encoded chunks off r sequentially and submits
	// them; decode workers verify/repair concurrently; Read drains
	// repaired chunks in order. Payload and output buffers circulate
	// through chunkBufPool.
	pipe     *parallel.Pipe[encChunk, decChunk]
	started  bool
	prodDone chan struct{}
	prodErr  error // read-side terminal error; valid once prodDone is closed
}

// encChunk is one still-encoded chunk handed to a decode worker, which
// takes ownership of payload.
type encChunk struct {
	h       header
	payload *chunkBuf
}

// decChunk is one decoded chunk plus its repair statistics. data is
// nil when decoding failed before producing output.
type decChunk struct {
	data *chunkBuf
	rep  ecc.Report
}

// Report aggregates repair statistics over all chunks read.
type Report struct {
	Chunks          int
	DetectedBlocks  int
	CorrectedBlocks int
	CorrectedBits   int
}

// NewChunkReader creates a streaming decoder over r.
func NewChunkReader(r io.Reader, workers int) *ChunkReader {
	return NewChunkReaderWith(r, workers, StreamOptions{})
}

// NewChunkReaderWith is NewChunkReader with explicit stream options
// (ChunkSize is ignored on the read side: chunks are self-describing).
func NewChunkReaderWith(r io.Reader, workers int, opts StreamOptions) *ChunkReader {
	opts = opts.normalize(workers)
	return &ChunkReader{r: r, workers: workers, pipeline: opts.Pipeline}
}

// Report returns the accumulated repair statistics.
func (cr *ChunkReader) Report() Report { return cr.report }

// Read implements io.Reader. The first error in chunk order wins:
// every chunk before it is delivered intact, and the pipeline shuts
// down without leaking goroutines.
func (cr *ChunkReader) Read(p []byte) (int, error) {
	for len(cr.cur) == 0 {
		if cr.curBuf != nil {
			// The previous chunk is fully delivered; recycle its buffer
			// before producing the next one.
			putChunkBuf(cr.curBuf)
			cr.curBuf = nil
		}
		if cr.err != nil {
			return 0, cr.err
		}
		if err := cr.next(); err != nil {
			cr.err = err
			cr.shutdown()
			return 0, err
		}
	}
	n := copy(p, cr.cur)
	cr.cur = cr.cur[n:]
	return n, nil
}

// Close releases the reader without requiring a full drain: in-flight
// decodes are cancelled and joined. It does not close the underlying
// reader. Reads after Close fail.
func (cr *ChunkReader) Close() error {
	if cr.closed {
		return nil
	}
	cr.closed = true
	cr.cur = nil
	putChunkBuf(cr.curBuf)
	cr.curBuf = nil
	cr.shutdown()
	if cr.err == nil {
		cr.err = fmt.Errorf("core: chunk reader is closed")
	}
	return nil
}

// next produces the next decoded chunk into cr.cur.
func (cr *ChunkReader) next() error {
	if cr.pipeline <= 1 {
		return cr.nextChunk()
	}
	if !cr.started {
		cr.started = true
		cr.pipe = parallel.NewPipeWith(cr.pipeline, cr.pipeline,
			func() *chunkScratch { return new(chunkScratch) },
			cr.decodeChunk)
		cr.prodDone = make(chan struct{})
		go cr.produce()
	}
	out, ok, err := cr.pipe.Next()
	if !ok {
		<-cr.prodDone
		return cr.prodErr
	}
	cr.report.Chunks++
	cr.report.DetectedBlocks += out.rep.DetectedBlocks
	cr.report.CorrectedBlocks += out.rep.CorrectedBlocks
	cr.report.CorrectedBits += out.rep.CorrectedBits
	if err != nil {
		putChunkBuf(out.data)
		return fmt.Errorf("chunk %d: %w", cr.report.Chunks, err)
	}
	cr.cur = out.data.b
	cr.curBuf = out.data
	return nil
}

// produce reads encoded chunks sequentially and feeds the decode
// pipeline until EOF, a malformed container, or an abort.
func (cr *ChunkReader) produce() {
	defer close(cr.prodDone)
	defer cr.pipe.Close()
	for {
		c, err := cr.readChunk()
		if err != nil {
			cr.prodErr = err
			return
		}
		if cr.pipe.Submit(c) != nil {
			cr.prodErr = parallel.ErrPipeAborted
			return
		}
	}
}

// decodeChunk is the decode-worker body: verify and repair one chunk
// into a pooled output buffer, consuming (and recycling) the encoded
// payload. An ecc error (e.g. uncorrectable damage) is returned
// alongside the best-effort statistics.
func (cr *ChunkReader) decodeChunk(c encChunk, s *chunkScratch) (dec decChunk, err error) {
	// Same boundary as decodeContainer: a corrupted chunk header must
	// surface as an error from the pipeline, never panic a worker.
	defer func() {
		if p := recover(); p != nil {
			dec, err = decChunk{}, fmt.Errorf("%w: decoder panic: %v", ErrContainer, p)
		}
	}()
	code, err := s.memo.get(&cr.codecs, c.h.config(), cr.workers, c.h.DevSize)
	if err != nil {
		putChunkBuf(c.payload)
		return decChunk{}, fmt.Errorf("%w: %v", ErrContainer, err)
	}
	out := getChunkBuf(c.h.OrigLen)
	data, rep, derr := ecc.DecodeTo(code, out.b, c.payload.b, c.h.OrigLen, &s.ecc)
	putChunkBuf(c.payload)
	if data == nil {
		putChunkBuf(out)
		return decChunk{rep: rep}, derr
	}
	// data aliases out.b whenever the code honored dst (all built-ins
	// do); adopting it keeps the right storage circulating either way.
	out.b = data
	return decChunk{data: out, rep: rep}, derr
}

// readChunk reads one encoded container (header + payload) off the
// underlying reader into a pooled payload buffer. io.EOF at a chunk
// boundary is the clean end.
func (cr *ChunkReader) readChunk() (encChunk, error) {
	if _, err := io.ReadFull(cr.r, cr.hdr[:]); err != nil {
		if err == io.EOF {
			return encChunk{}, io.EOF // clean end at a chunk boundary
		}
		return encChunk{}, fmt.Errorf("%w: truncated chunk header: %v", ErrContainer, err)
	}
	h, err := unmarshalHeader(cr.hdr[:])
	if err != nil {
		return encChunk{}, err
	}
	if h.Method == indexMethod {
		// The v2 footer: data is over. Consume the index payload and
		// trailer so a caller layering more reads on the same stream
		// lands past the footer, then report the clean end.
		if _, err := io.CopyN(io.Discard, cr.r, int64(h.EncLen)); err == nil {
			_, _ = io.CopyN(io.Discard, cr.r, TrailerBytes) // best-effort: a short trailer changes nothing already delivered
		}
		return encChunk{}, io.EOF
	}
	if h.EncLen < 0 || h.EncLen > maxChunkPayload {
		return encChunk{}, fmt.Errorf("%w: implausible chunk payload %d", ErrContainer, h.EncLen)
	}
	pb := getChunkBuf(0)
	pb.b, err = readCappedInto(cr.r, pb.b, h.EncLen)
	if err != nil {
		putChunkBuf(pb)
		return encChunk{}, fmt.Errorf("%w: truncated chunk payload: %v", ErrContainer, err)
	}
	return encChunk{h: h, payload: pb}, nil
}

// directReadCap is the largest chunk payload readCappedInto pre-sizes
// in a single allocation; larger claims grow geometrically as bytes
// actually arrive.
const directReadCap = 1 << 20

// readCappedInto reads exactly n bytes from r, reusing dst's storage
// when possible. Pre-sizing a fresh buffer from the header would let a
// forged (CRC-colliding) EncLen allocate up to maxChunkPayload from a
// short stream; growing as data arrives keeps the cost proportional to
// the bytes the reader really delivers. A pooled dst that already paid
// for n bytes in an earlier chunk is reused directly — that grants a
// forged length nothing new.
func readCappedInto(r io.Reader, dst []byte, n int) ([]byte, error) {
	if n <= directReadCap || cap(dst) >= n {
		buf := growTo(dst, n)
		_, err := io.ReadFull(r, buf)
		return buf, err
	}
	buf := growTo(dst, directReadCap)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	for len(buf) < n {
		grown := make([]byte, min(len(buf)*2, n))
		copy(grown, buf)
		if _, err := io.ReadFull(r, grown[len(buf):]); err != nil {
			return nil, err
		}
		buf = grown
	}
	return buf, nil
}

// shutdown cancels and joins the pipelined machinery; safe to call on
// a sequential or never-started reader.
func (cr *ChunkReader) shutdown() {
	if cr.pipe == nil {
		return
	}
	cr.pipe.Abort()
	// Drain deliveries so a producer blocked in Submit can exit, then
	// join producer and workers. Decoded-but-undelivered chunks go back
	// to the pool.
	for {
		out, ok, _ := cr.pipe.Next()
		if !ok {
			break
		}
		putChunkBuf(out.data)
	}
	<-cr.prodDone
	cr.pipe.Wait()
	cr.pipe = nil
}

// nextChunk reads and decodes one container sequentially.
func (cr *ChunkReader) nextChunk() error {
	c, err := cr.readChunk()
	if err != nil {
		return err
	}
	if cr.seq == nil {
		cr.seq = new(chunkScratch)
	}
	out, derr := cr.decodeChunk(c, cr.seq)
	cr.report.Chunks++
	cr.report.DetectedBlocks += out.rep.DetectedBlocks
	cr.report.CorrectedBlocks += out.rep.CorrectedBlocks
	cr.report.CorrectedBits += out.rep.CorrectedBits
	if derr != nil {
		putChunkBuf(out.data)
		return fmt.Errorf("chunk %d: %w", cr.report.Chunks, derr)
	}
	cr.cur = out.data.b
	cr.curBuf = out.data
	return nil
}

// ChunkInfo summarizes one container of a stream without decoding its
// payload.
type ChunkInfo struct {
	Config  Config
	DevSize int
	OrigLen int
	EncLen  int
}

// InspectStream walks a stream (single container or chunked), parsing
// headers and skipping payloads. It returns per-chunk metadata.
func InspectStream(r io.Reader) ([]ChunkInfo, error) {
	var infos []ChunkInfo
	hdr := make([]byte, ContainerOverheadBytes)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				return infos, nil
			}
			return infos, fmt.Errorf("%w: truncated header after %d chunk(s): %v", ErrContainer, len(infos), err)
		}
		h, err := unmarshalHeader(hdr)
		if err != nil {
			return infos, err
		}
		if h.Method == indexMethod {
			// v2 footer: skip the index payload and trailer; the chunk
			// walk is complete.
			if _, err := io.CopyN(io.Discard, r, int64(h.EncLen)); err == nil {
				_, _ = io.CopyN(io.Discard, r, TrailerBytes) // best-effort, as in readChunk
			}
			return infos, nil
		}
		if h.EncLen > maxChunkPayload {
			return infos, fmt.Errorf("%w: implausible chunk payload %d", ErrContainer, h.EncLen)
		}
		if _, err := io.CopyN(io.Discard, r, int64(h.EncLen)); err != nil {
			return infos, fmt.Errorf("%w: truncated payload: %v", ErrContainer, err)
		}
		infos = append(infos, ChunkInfo{
			Config:  h.config(),
			DevSize: h.DevSize,
			OrigLen: h.OrigLen,
			EncLen:  h.EncLen,
		})
	}
}
