// Package core implements the paper's primary contribution: the ARC
// engine. It enumerates the ECC configuration space, trains per-thread
// throughput models (with a persistent cache), optimizes configuration
// choice under user constraints on storage, throughput, and resiliency,
// and wraps encoded data in a self-describing container.
package core

import (
	"fmt"
	"sort"

	"repro/internal/ecc"
	"repro/internal/ecc/hamming"
	"repro/internal/ecc/interleave"
	"repro/internal/ecc/parity"
	"repro/internal/ecc/reedsolomon"
	"repro/internal/ecc/secded"
)

// Config identifies one ECC configuration in ARC's search space.
type Config struct {
	Method ecc.Method
	// Param is method-specific: parity block bytes, Hamming/SEC-DED
	// data width in bits (8 or 64), or Reed-Solomon code devices m
	// (with k = 256 - m data devices).
	Param int
}

// String returns a stable identifier, e.g. "parity8" or "rs-m15".
func (c Config) String() string {
	switch c.Method {
	case ecc.MethodParity:
		return fmt.Sprintf("parity%d", c.Param)
	case ecc.MethodHamming:
		return fmt.Sprintf("hamming%d", c.Param)
	case ecc.MethodSECDED:
		return fmt.Sprintf("secded%d", c.Param)
	case ecc.MethodReedSolomon:
		return fmt.Sprintf("rs-m%d", c.Param)
	case ecc.MethodInterleavedSECDED:
		return fmt.Sprintf("ilsecded%d", c.Param)
	default:
		if m, ok := lookupCustom(c.Method); ok {
			return fmt.Sprintf("%s%d", m.Name, c.Param)
		}
		return fmt.Sprintf("unknown-%d-%d", c.Method, c.Param)
	}
}

// rsTotalDevices fixes k+m for the Reed-Solomon family at the field
// order, matching the paper's observed configurations (241+15 under a
// 0.2 budget, 153+103 under 0.9).
const rsTotalDevices = 256

// rsDeviceSize is the bytes per Reed-Solomon device.
const rsDeviceSize = 1024

// Build constructs the ecc.Code for this configuration with the given
// worker count and the default Reed-Solomon device size.
func (c Config) Build(workers int) (ecc.Code, error) {
	return c.BuildWithDeviceSize(workers, rsDeviceSize)
}

// BuildWithDeviceSize is Build with an explicit Reed-Solomon device
// size (ignored by the other methods). The engine shrinks devices on
// inputs smaller than a full default stripe so padding stays marginal.
func (c Config) BuildWithDeviceSize(workers, devSize int) (ecc.Code, error) {
	if devSize <= 0 {
		devSize = rsDeviceSize
	}
	switch c.Method {
	case ecc.MethodParity:
		if c.Param <= 0 {
			return nil, fmt.Errorf("core: invalid parity block %d", c.Param)
		}
		return parity.New(c.Param, workers), nil
	case ecc.MethodHamming:
		if c.Param != 8 && c.Param != 64 {
			return nil, fmt.Errorf("core: invalid hamming width %d", c.Param)
		}
		return hamming.New(c.Param, workers), nil
	case ecc.MethodSECDED:
		if c.Param != 8 && c.Param != 64 {
			return nil, fmt.Errorf("core: invalid secded width %d", c.Param)
		}
		return secded.New(c.Param, workers), nil
	case ecc.MethodReedSolomon:
		if c.Param <= 0 || c.Param >= rsTotalDevices {
			return nil, fmt.Errorf("core: invalid RS code devices %d", c.Param)
		}
		return reedsolomon.New(rsTotalDevices-c.Param, c.Param, devSize, workers)
	case ecc.MethodInterleavedSECDED:
		return interleave.NewSECDED(c.Param, workers)
	default:
		if m, ok := lookupCustom(c.Method); ok {
			return m.Build(c.Param, workers, devSize)
		}
		return nil, fmt.Errorf("core: unknown method %d", c.Method)
	}
}

// DeviceSizeFor picks the Reed-Solomon device size for an input of n
// bytes: devices default to rsDeviceSize, shrinking uniformly so the
// final stripe is full and padding never exceeds one device row
// (k bytes). Non-RS configurations always return 0.
func (c Config) DeviceSizeFor(n int) int {
	if c.Method != ecc.MethodReedSolomon {
		return 0
	}
	k := rsTotalDevices - c.Param
	if n <= 0 {
		return 1
	}
	stripes := (n + k*rsDeviceSize - 1) / (k * rsDeviceSize)
	devSize := (n + k*stripes - 1) / (k * stripes)
	if devSize < 1 {
		devSize = 1
	}
	return devSize
}

// Overhead returns the configuration's asymptotic storage overhead
// without building the full code.
func (c Config) Overhead() float64 {
	switch c.Method {
	case ecc.MethodParity:
		return 1.0 / (8.0 * float64(c.Param))
	case ecc.MethodHamming:
		if c.Param == 8 {
			return 4.0 / 8.0
		}
		return 7.0 / 64.0
	case ecc.MethodSECDED:
		if c.Param == 8 {
			return 5.0 / 8.0
		}
		return 8.0 / 64.0
	case ecc.MethodReedSolomon:
		k := rsTotalDevices - c.Param
		return (float64(c.Param)*rsDeviceSize + float64(rsTotalDevices)*4) / (float64(k) * rsDeviceSize)
	case ecc.MethodInterleavedSECDED:
		return 9.0/8.0 - 1.0 // SEC-DED(72,64) grouping: 9 bytes per 8
	default:
		if m, ok := lookupCustom(c.Method); ok {
			return m.Overhead(c.Param)
		}
		return 0
	}
}

// Caps returns the configuration's error-response capabilities.
func (c Config) Caps() ecc.Capability {
	switch c.Method {
	case ecc.MethodParity:
		return ecc.DetectSparse
	case ecc.MethodHamming, ecc.MethodSECDED:
		return ecc.DetectSparse | ecc.CorrectSparse
	case ecc.MethodReedSolomon, ecc.MethodInterleavedSECDED:
		return ecc.DetectSparse | ecc.CorrectSparse | ecc.CorrectBurst
	default:
		if m, ok := lookupCustom(c.Method); ok {
			return m.Caps
		}
		return 0
	}
}

// parityBlocks and rsCodeDevices enumerate the per-method parameter
// grids in ARC's configuration space.
var (
	parityBlocks     = []int{1, 2, 4, 8, 16, 32, 64}
	hammingWidths    = []int{8, 64}
	rsCodeDevices    = []int{1, 2, 4, 8, 15, 24, 32, 51, 64, 80, 103, 128}
	interleaveDepths = []int{64, 256, 1024}
)

// AllConfigs enumerates ARC's full configuration space, sorted by
// ascending storage overhead.
func AllConfigs() []Config {
	var cs []Config
	for _, b := range parityBlocks {
		cs = append(cs, Config{ecc.MethodParity, b})
	}
	for _, w := range hammingWidths {
		cs = append(cs, Config{ecc.MethodHamming, w})
		cs = append(cs, Config{ecc.MethodSECDED, w})
	}
	for _, m := range rsCodeDevices {
		cs = append(cs, Config{ecc.MethodReedSolomon, m})
	}
	for _, d := range interleaveDepths {
		cs = append(cs, Config{ecc.MethodInterleavedSECDED, d})
	}
	cs = append(cs, customConfigs()...)
	sort.Slice(cs, func(i, j int) bool {
		oi, oj := cs[i].Overhead(), cs[j].Overhead()
		if oi != oj {
			return oi < oj
		}
		return cs[i].String() < cs[j].String()
	})
	return cs
}

// ParseConfig inverts Config.String.
func ParseConfig(s string) (Config, error) {
	for _, c := range AllConfigs() {
		if c.String() == s {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("core: unknown configuration %q", s)
}

// secdedCollisionLimit is the errors-per-MB rate up to which SEC-DED's
// one-correction-per-codeword budget is statistically safe: with r
// uniform errors per MB and 2^17 8-byte codewords per MB, the expected
// number of double-hit codewords is ~r^2/2^18, which passes 1 near
// r = 512.
const secdedCollisionLimit = 512

// MethodsForErrorRate maps an expected uniformly distributed soft
// error rate (errors per MB) to the ECC methods able to correct it,
// implementing the paper's resiliency-constraint rate mode: parity
// never corrects; SEC-DED (and Hamming at very low rates) handle
// sparse errors; only Reed-Solomon survives dense/burst regimes (the
// paper's "over a sixteenth of each MB" example).
func MethodsForErrorRate(perMB float64) []ecc.Method {
	switch {
	case perMB <= 0:
		return []ecc.Method{ecc.MethodParity, ecc.MethodHamming, ecc.MethodSECDED, ecc.MethodReedSolomon}
	case perMB <= secdedCollisionLimit:
		// Sparse errors: SEC-DED guarantees correction of a single hit
		// per codeword *and* detection of doubles; plain Hamming would
		// silently miscorrect a double hit, so it never qualifies for a
		// correction guarantee (the paper picks SEC-DED at 1 err/MB).
		return []ecc.Method{ecc.MethodSECDED, ecc.MethodReedSolomon}
	default:
		return []ecc.Method{ecc.MethodReedSolomon}
	}
}

// MinimalAdequateConfig returns the cheapest configuration that
// corrects the expected error rate — ARC's choice when the user gives
// a rate and no storage budget (guarantee mode). For SEC-DED-eligible
// rates that is SEC-DED over 8-byte blocks; denser regimes get the
// smallest Reed-Solomon configuration whose code devices cover several
// times the expected per-stripe hit count.
func MinimalAdequateConfig(perMB float64) Config {
	methods := MethodsForErrorRate(perMB)
	for _, m := range methods {
		if m == ecc.MethodSECDED {
			return Config{ecc.MethodSECDED, 64}
		}
	}
	// RS-only regime: expected devices hit per stripe, assuming each
	// error lands in a distinct device (worst case for the budget).
	stripeMB := float64((rsTotalDevices)*rsDeviceSize) / (1 << 20)
	expected := perMB * stripeMB
	need := int(4*expected) + 1 // 4x safety factor
	for _, m := range rsCodeDevices {
		if m >= need {
			return Config{ecc.MethodReedSolomon, m}
		}
	}
	return Config{ecc.MethodReedSolomon, rsCodeDevices[len(rsCodeDevices)-1]}
}
