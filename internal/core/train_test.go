package core

import (
	"os"
	"path/filepath"
	"testing"
)

func TestTrainerCacheCorruptionTolerated(t *testing.T) {
	dir := t.TempDir()
	tr := &Trainer{CacheDir: dir, SampleBytes: 16 << 10}
	table, n, err := tr.Train(tr.LoadCache(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("fresh trainer must measure")
	}
	if err := tr.SaveCache(table); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "train-cache.json")
	// Corrupt the cache: load must fall back to empty, not crash.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := tr.LoadCache(); len(got.Entries) != 0 {
		t.Fatal("corrupt cache must load as empty")
	}
	// A cache with mismatched sample size is also ignored.
	other := &Trainer{CacheDir: dir, SampleBytes: 32 << 10}
	if err := other.SaveCache(table); err == nil {
		// table says 16 KiB; saving under 32 KiB trainer is caller
		// misuse, but LoadCache's guard is what we verify:
		if got := other.LoadCache(); len(got.Entries) != 0 {
			t.Fatal("sample-size mismatch must invalidate the cache")
		}
	}
}

func TestTrainerNoPersistence(t *testing.T) {
	tr := &Trainer{SampleBytes: 8 << 10} // no cache dir
	table, _, err := tr.Train(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SaveCache(table); err != nil {
		t.Fatal("SaveCache without a dir must be a no-op")
	}
	if got := tr.LoadCache(); len(got.Entries) != 0 {
		t.Fatal("no-dir LoadCache must be empty")
	}
}

func TestTrainTableLookupAndThreadCounts(t *testing.T) {
	table := &TrainTable{Entries: []TrainEntry{
		{Config: "parity8", Threads: 1, EncMBs: 10},
		{Config: "parity8", Threads: 4, EncMBs: 40},
		{Config: "secded64", Threads: 1, EncMBs: 5},
	}}
	if e, ok := table.Lookup("parity8", 4); !ok || e.EncMBs != 40 {
		t.Fatalf("lookup: %+v %v", e, ok)
	}
	if _, ok := table.Lookup("parity8", 2); ok {
		t.Fatal("missing point must not resolve")
	}
	ts := table.ThreadCounts()
	if len(ts) != 2 || ts[0] != 1 || ts[1] != 4 {
		t.Fatalf("thread counts %v", ts)
	}
}

func TestTrainIsIncremental(t *testing.T) {
	tr := &Trainer{SampleBytes: 8 << 10}
	table, n1, err := tr.Train(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Re-train at the same cap: nothing to measure.
	table, n2, err := tr.Train(table, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Fatalf("second train measured %d points", n2)
	}
	// Raising the cap adds exactly one tier.
	_, n3, err := tr.Train(table, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n3 != n1 {
		t.Fatalf("tier 2 measured %d points, want %d (one tier)", n3, n1)
	}
}

func TestTrainingSampleDeterministic(t *testing.T) {
	a := trainingSample(1024)
	b := trainingSample(1024)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training sample must be deterministic")
		}
	}
}
