package core

import (
	"testing"
	"testing/quick"

	"repro/internal/ecc"
)

// fakeTable builds a deterministic training table so optimizer tests
// don't depend on real timings: encode throughput scales linearly with
// threads from a per-method base.
func fakeTable(maxThreads int) *TrainTable {
	base := map[ecc.Method]float64{
		ecc.MethodParity:            1000,
		ecc.MethodHamming:           120,
		ecc.MethodSECDED:            100,
		ecc.MethodInterleavedSECDED: 90,
		ecc.MethodReedSolomon:       0, // per-config below
	}
	t := &TrainTable{SampleBytes: 1 << 20}
	for _, cfg := range AllConfigs() {
		b := base[cfg.Method]
		if cfg.Method == ecc.MethodReedSolomon {
			// Encoding cost grows with the number of code devices.
			b = 40.0 / float64(cfg.Param)
		}
		for _, th := range trainThreadCounts(maxThreads) {
			t.Entries = append(t.Entries, TrainEntry{
				Config:  cfg.String(),
				Threads: th,
				EncMBs:  b * float64(th),
				DecMBs:  b * float64(th) * 0.95,
			})
		}
	}
	return t
}

func opt(maxThreads int) *Optimizer {
	return &Optimizer{Table: fakeTable(maxThreads), MaxThreads: maxThreads}
}

func TestMemoryOptimizerUsesBudget(t *testing.T) {
	o := opt(40)
	// Paper Figure 11a: a 0.2 budget yields RS with 15 code devices
	// (overhead 19.5%); 0.9 yields the 103-device configuration.
	c, err := o.Memory(0.2, AnyECC)
	if err != nil {
		t.Fatal(err)
	}
	if c.Config.Method != ecc.MethodReedSolomon {
		t.Fatalf("0.2 budget chose %s, want Reed-Solomon", c.Config)
	}
	if c.Overhead > 0.2 || c.Overhead < 0.1 {
		t.Fatalf("0.2 budget realized %.3f overhead; want close under 0.2", c.Overhead)
	}
	c9, err := o.Memory(0.9, AnyECC)
	if err != nil {
		t.Fatal(err)
	}
	if c9.Overhead <= c.Overhead {
		t.Fatal("larger budget must buy more protection")
	}
	if c9.Config.Param <= c.Config.Param {
		t.Fatalf("0.9 budget chose m=%d, want more code devices than %d", c9.Config.Param, c.Config.Param)
	}
}

func TestMemoryOptimizerNeverOverBudgetWhenAvoidable(t *testing.T) {
	o := opt(8)
	for _, mem := range []float64{0.01, 0.05, 0.1, 0.3, 0.5, 0.7, 1.0} {
		c, err := o.Memory(mem, AnyECC)
		if err != nil {
			t.Fatal(err)
		}
		if c.Overhead > mem {
			t.Fatalf("budget %.2f exceeded: %.3f (%s)", mem, c.Overhead, c.Config)
		}
		if c.OverBudget {
			t.Fatalf("budget %.2f flagged OverBudget", mem)
		}
	}
}

func TestMemoryOptimizerOverBudgetWarns(t *testing.T) {
	o := opt(8)
	// The paper's example uses mem 0.05 with an RS overhead floor near
	// 6%; our RS space reaches lower (m=1 costs ~0.8%), so drive the
	// same over-budget path with a budget below that floor.
	c, err := o.Memory(0.001, Resiliency{Methods: []ecc.Method{ecc.MethodReedSolomon}})
	if err != nil {
		t.Fatal(err)
	}
	if !c.OverBudget {
		t.Fatal("must flag OverBudget")
	}
	if c.Config.Method != ecc.MethodReedSolomon {
		t.Fatalf("chose %s", c.Config)
	}
	if c.Config.Param != 1 {
		t.Fatalf("must pick the smallest RS config, got m=%d", c.Config.Param)
	}
}

func TestThroughputOptimizerPicksThreads(t *testing.T) {
	o := opt(40)
	// Low bound: RS feasible on some thread count.
	c, err := o.Throughput(0.5, AnyECC)
	if err != nil {
		t.Fatal(err)
	}
	if c.PredictedEncMBs < 0.5 {
		t.Fatalf("bound missed: %.2f", c.PredictedEncMBs)
	}
	// The optimizer prefers the fewest threads that meet the bound.
	if c.Threads == 40 && c.PredictedEncMBs > 10 {
		t.Fatal("should not burn max threads for a tiny bound")
	}
	// High bound excludes slow RS entirely (paper: 300 MB/s -> SEC-DED).
	hc, err := o.Joint(0.15, 300, AnyECC)
	if err != nil {
		t.Fatal(err)
	}
	if hc.Config.Method == ecc.MethodReedSolomon {
		t.Fatalf("300 MB/s bound cannot hold RS, got %s", hc.Config)
	}
	if hc.PredictedEncMBs < 300 {
		t.Fatalf("predicted %.1f < 300", hc.PredictedEncMBs)
	}
}

func TestJointConflictingConstraints(t *testing.T) {
	o := opt(40)
	// Paper Section 6.2: mem 1.0 + 100 MB/s: RS would fit the budget
	// but cannot reach the throughput; ARC uses SEC-DED instead.
	c, err := o.Joint(1.0, 100, AnyECC)
	if err != nil {
		t.Fatal(err)
	}
	if c.Config.Method == ecc.MethodReedSolomon {
		t.Fatal("RS cannot meet 100 MB/s in the model")
	}
	if c.PredictedEncMBs < 100 || c.Overhead > 1.0 {
		t.Fatalf("constraints violated: %.1f MB/s, %.2f overhead", c.PredictedEncMBs, c.Overhead)
	}
	// mem 0.2 + 0.6 MB/s: RS feasible and closest to budget (paper).
	c2, err := o.Joint(0.2, 0.6, AnyECC)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Config.Method != ecc.MethodReedSolomon {
		t.Fatalf("got %s, want RS (paper example)", c2.Config)
	}
}

func TestResiliencyFilters(t *testing.T) {
	o := opt(8)
	// Method filter.
	c, err := o.Memory(1.0, Resiliency{Methods: []ecc.Method{ecc.MethodHamming}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Config.Method != ecc.MethodHamming {
		t.Fatalf("method filter violated: %s", c.Config)
	}
	// Capability filter.
	c, err = o.Memory(1.0, Resiliency{Caps: ecc.CorrectBurst})
	if err != nil {
		t.Fatal(err)
	}
	if c.Config.Method != ecc.MethodReedSolomon {
		t.Fatalf("burst capability filter violated: %s", c.Config)
	}
	// Error-rate filter: dense errors force RS.
	c, err = o.Memory(0.3, Resiliency{ErrorsPerMB: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	if c.Config.Method != ecc.MethodReedSolomon {
		t.Fatalf("dense error rate must force RS: %s", c.Config)
	}
}

func TestNoConfiguration(t *testing.T) {
	o := opt(8)
	// Parity cannot correct, so demanding correction from parity-only
	// is unsatisfiable.
	_, err := o.Memory(1.0, Resiliency{
		Methods: []ecc.Method{ecc.MethodParity},
		Caps:    ecc.CorrectSparse,
	})
	if err != ErrNoConfiguration {
		t.Fatalf("want ErrNoConfiguration, got %v", err)
	}
}

func TestMaxThreadsRespected(t *testing.T) {
	o := &Optimizer{Table: fakeTable(40), MaxThreads: 4}
	c, err := o.Throughput(1e6, AnyECC) // unreachable bound
	if err != nil {
		t.Fatal(err)
	}
	if c.Threads > 4 {
		t.Fatalf("thread cap violated: %d", c.Threads)
	}
	if !c.UnderThroughput {
		t.Fatal("unreachable bound must flag UnderThroughput")
	}
}

func TestQuickOptimizerInvariants(t *testing.T) {
	o := opt(8)
	prop := func(memSeed uint16, bwSeed uint16) bool {
		mem := 0.001 + float64(memSeed)/65535.0*1.2 // 0.001 .. 1.2
		bw := float64(bwSeed) / 65535.0 * 2000      // 0 .. 2000 MB/s
		c, err := o.Joint(mem, bw, AnyECC)
		if err != nil {
			return false
		}
		// Invariant 1: the cheapest configuration always fits any
		// budget above its overhead, so OverBudget implies the budget
		// is below the global minimum overhead.
		if c.OverBudget {
			cheapest := AllConfigs()[0].Overhead()
			if mem >= cheapest {
				t.Logf("OverBudget at mem=%.4f despite min=%.4f", mem, cheapest)
				return false
			}
		} else if c.Overhead > mem {
			t.Logf("not flagged but over: %.4f > %.4f", c.Overhead, mem)
			return false
		}
		// Invariant 2: UnderThroughput is consistent with the chosen
		// prediction.
		if !c.UnderThroughput && bw > 0 && c.PredictedEncMBs < bw {
			t.Logf("missed bound unflagged: %.1f < %.1f", c.PredictedEncMBs, bw)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBudgetMonotonicity(t *testing.T) {
	o := opt(8)
	prop := func(aSeed, bSeed uint16) bool {
		a := 0.001 + float64(aSeed)/65535.0
		b := 0.001 + float64(bSeed)/65535.0
		if a > b {
			a, b = b, a
		}
		ca, err := o.Memory(a, AnyECC)
		if err != nil {
			return false
		}
		cb, err := o.Memory(b, AnyECC)
		if err != nil {
			return false
		}
		// A larger budget never buys less protection.
		return cb.Overhead >= ca.Overhead || ca.OverBudget
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
