package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// TrainEntry records measured throughput for one (configuration,
// thread-count) point — the model the optimizer's throughput
// constraint consults.
type TrainEntry struct {
	Config  string  `json:"config"`
	Threads int     `json:"threads"`
	EncMBs  float64 `json:"enc_mbs"`
	DecMBs  float64 `json:"dec_mbs"`
}

// TrainTable is the full trained model.
type TrainTable struct {
	// SampleBytes is the training buffer size the measurements used.
	SampleBytes int          `json:"sample_bytes"`
	Entries     []TrainEntry `json:"entries"`
}

// key returns the map key for one point.
func tkey(config string, threads int) string { return fmt.Sprintf("%s@%d", config, threads) }

// index builds a lookup map over entries.
func (t *TrainTable) index() map[string]TrainEntry {
	m := make(map[string]TrainEntry, len(t.Entries))
	for _, e := range t.Entries {
		m[tkey(e.Config, e.Threads)] = e
	}
	return m
}

// Lookup returns the entry for a configuration at a thread count.
func (t *TrainTable) Lookup(config string, threads int) (TrainEntry, bool) {
	for _, e := range t.Entries {
		if e.Config == config && e.Threads == threads {
			return e, true
		}
	}
	return TrainEntry{}, false
}

// ThreadCounts returns the distinct trained thread counts, ascending.
func (t *TrainTable) ThreadCounts() []int {
	seen := map[int]bool{}
	for _, e := range t.Entries {
		seen[e.Threads] = true
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// trainThreadCounts returns the thread counts to train for a maximum:
// powers of two up to max, plus max itself (the paper trains "an
// increasing number of threads up to the maximum available").
func trainThreadCounts(maxThreads int) []int {
	if maxThreads < 1 {
		maxThreads = 1
	}
	var ts []int
	for t := 1; t < maxThreads; t *= 2 {
		ts = append(ts, t)
	}
	ts = append(ts, maxThreads)
	return ts
}

// Trainer measures configuration throughput and maintains the cache.
type Trainer struct {
	// CacheDir holds train-cache.json; empty disables persistence.
	CacheDir string
	// SampleBytes sizes the measurement buffer (default 4 MiB; tests
	// use much less).
	SampleBytes int
	// Repetitions per measurement point (default 1; higher smooths).
	Repetitions int
}

const defaultSampleBytes = 4 << 20

func (tr *Trainer) sampleBytes() int {
	if tr.SampleBytes > 0 {
		return tr.SampleBytes
	}
	return defaultSampleBytes
}

func (tr *Trainer) cachePath() string {
	if tr.CacheDir == "" {
		return ""
	}
	return filepath.Join(tr.CacheDir, "train-cache.json")
}

// LoadCache reads the cached table, returning an empty table when no
// usable cache exists (including when the cached sample size differs,
// which would make throughputs incomparable).
func (tr *Trainer) LoadCache() *TrainTable {
	empty := &TrainTable{SampleBytes: tr.sampleBytes()}
	p := tr.cachePath()
	if p == "" {
		return empty
	}
	raw, err := os.ReadFile(p)
	if err != nil {
		return empty
	}
	var t TrainTable
	if err := json.Unmarshal(raw, &t); err != nil || t.SampleBytes != tr.sampleBytes() {
		return empty
	}
	return &t
}

// SaveCache persists the table (no-op without a cache dir).
func (tr *Trainer) SaveCache(t *TrainTable) error {
	p := tr.cachePath()
	if p == "" {
		return nil
	}
	if err := os.MkdirAll(tr.CacheDir, 0o755); err != nil {
		return fmt.Errorf("core: create cache dir: %w", err)
	}
	raw, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("core: write cache: %w", err)
	}
	return os.Rename(tmp, p)
}

// Train ensures the table covers every configuration at every thread
// count up to maxThreads, measuring only missing points (the paper's
// incremental training). It returns the updated table and the number
// of points measured.
func (tr *Trainer) Train(table *TrainTable, maxThreads int) (*TrainTable, int, error) {
	if table == nil {
		table = &TrainTable{SampleBytes: tr.sampleBytes()}
	}
	idx := table.index()
	sample := trainingSample(tr.sampleBytes())
	reps := tr.Repetitions
	if reps < 1 {
		reps = 1
	}
	measured := 0
	for _, cfg := range AllConfigs() {
		for _, threads := range trainThreadCounts(maxThreads) {
			key := tkey(cfg.String(), threads)
			if _, ok := idx[key]; ok {
				continue
			}
			enc, dec, err := measure(cfg, threads, sample, reps)
			if err != nil {
				return nil, measured, err
			}
			e := TrainEntry{Config: cfg.String(), Threads: threads, EncMBs: enc, DecMBs: dec}
			table.Entries = append(table.Entries, e)
			idx[key] = e
			measured++
		}
	}
	sort.Slice(table.Entries, func(i, j int) bool {
		a, b := table.Entries[i], table.Entries[j]
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		return a.Threads < b.Threads
	})
	return table, measured, nil
}

// trainingSample builds a reproducible pseudo-random buffer; content
// barely affects ECC throughput but determinism keeps runs comparable.
func trainingSample(n int) []byte {
	rng := rand.New(rand.NewSource(0x41524331)) // "ARC1"
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(rng.Intn(256))
	}
	return buf
}

// measure times one configuration at one thread count.
func measure(cfg Config, threads int, sample []byte, reps int) (encMBs, decMBs float64, err error) {
	code, err := cfg.Build(threads)
	if err != nil {
		return 0, 0, err
	}
	mb := float64(len(sample)) / (1 << 20)
	var encT, decT time.Duration
	var enc []byte
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		enc = code.Encode(sample)
		encT += time.Since(t0)
		t1 := time.Now()
		//arcvet:ignore integrityflow timing probe decodes uncorrupted bytes; the report is zero by construction
		if _, _, derr := code.Decode(enc, len(sample)); derr != nil {
			return 0, 0, fmt.Errorf("core: training decode failed for %s: %w", cfg, derr)
		}
		decT += time.Since(t1)
	}
	encSec := encT.Seconds() / float64(reps)
	decSec := decT.Seconds() / float64(reps)
	if encSec <= 0 {
		encSec = 1e-9
	}
	if decSec <= 0 {
		decSec = 1e-9
	}
	return mb / encSec, mb / decSec, nil
}

// DefaultCacheDir returns the ARC cache directory: $ARC_CACHE_DIR if
// set, else <user cache dir>/arc.
func DefaultCacheDir() string {
	if d := os.Getenv("ARC_CACHE_DIR"); d != "" {
		return d
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return ".arc-cache"
	}
	return filepath.Join(base, "arc")
}
