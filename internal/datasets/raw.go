package datasets

// Raw dataset loading: users with the actual SDRBench files (CESM
// CLDLOW, Hurricane Isabel Pf48, NYX temperature) can reproduce the
// study on the paper's exact inputs. SDRBench distributes flat binary
// arrays of little-endian float32 or float64 with the dimensions
// published out of band.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// DType enumerates raw element types.
type DType int

const (
	// Float32 is SDRBench's usual element type.
	Float32 DType = iota + 1
	// Float64 for double-precision dumps.
	Float64
)

func (d DType) size() int {
	switch d {
	case Float32:
		return 4
	case Float64:
		return 8
	default:
		return 0
	}
}

// maxRawElements caps loads so a typo'd dimension cannot OOM the host.
const maxRawElements = 1 << 30

// ReadRaw decodes a flat little-endian array of the given type and
// dimensions from r.
func ReadRaw(r io.Reader, name string, dims []int, dtype DType) (*Field, error) {
	if len(dims) < 1 || len(dims) > 3 {
		return nil, fmt.Errorf("datasets: want 1-3 dims, got %d", len(dims))
	}
	esize := dtype.size()
	if esize == 0 {
		return nil, fmt.Errorf("datasets: unknown dtype %d", dtype)
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("datasets: non-positive dimension %d", d)
		}
		n *= d
		if n > maxRawElements {
			return nil, fmt.Errorf("datasets: %v exceeds the element cap", dims)
		}
	}
	raw := make([]byte, n*esize)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("datasets: reading %d elements: %w", n, err)
	}
	data := make([]float64, n)
	switch dtype {
	case Float32:
		for i := range data {
			data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
		}
	case Float64:
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	}
	return &Field{Name: name, Data: data, Dims: append([]int(nil), dims...)}, nil
}

// LoadRaw reads a raw dataset file, verifying its size matches the
// dimensions exactly (a mismatch almost always means wrong dims or
// dtype, the classic SDRBench footgun).
func LoadRaw(path string, dims []int, dtype DType) (*Field, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	n := 1
	for _, d := range dims {
		n *= d
	}
	want := int64(n * dtype.size())
	if fi.Size() != want {
		return nil, fmt.Errorf("datasets: %s is %d bytes but dims %v x %d-byte elements need %d",
			path, fi.Size(), dims, dtype.size(), want)
	}
	return ReadRaw(f, path, dims, dtype)
}

// WriteRaw writes a field as flat little-endian data of the given
// type (float32 values are rounded), the inverse of ReadRaw — useful
// for exporting synthetic fields to tools expecting SDRBench layout.
func WriteRaw(w io.Writer, f *Field, dtype DType) error {
	esize := dtype.size()
	if esize == 0 {
		return fmt.Errorf("datasets: unknown dtype %d", dtype)
	}
	buf := make([]byte, len(f.Data)*esize)
	switch dtype {
	case Float32:
		for i, v := range f.Data {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(float32(v)))
		}
	case Float64:
		for i, v := range f.Data {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
	}
	_, err := w.Write(buf)
	return err
}
