// Package datasets generates the synthetic scientific fields that stand
// in for the paper's three SDRBench datasets (Section 4.1.2):
//
//   - CESM: a 2D cloud-fraction-like climate field in [0, 1] with
//     banded large-scale structure and weather-front detail.
//   - Hurricane Isabel: a 3D pressure field with an off-center vortex
//     and a vertical gradient.
//   - NYX: a 3D cosmology temperature field with multiplicative
//     (log-normal-like) structure over many orders of magnitude.
//
// Real SDRBench data is not redistributable inside this offline
// repository; the generators reproduce what the study needs from the
// data — smooth spatial correlation with fine-scale variation at
// dataset-specific magnitudes — and are fully deterministic given a
// seed, so every trial is reproducible.
package datasets

import (
	"fmt"
	"math"
	"math/rand"
)

// Field is an n-dimensional scalar field in row-major layout.
type Field struct {
	Name string
	Data []float64
	Dims []int // row-major; Dims[0] is the slowest axis
}

// N returns the number of elements.
func (f *Field) N() int { return len(f.Data) }

// SizeBytes returns the in-memory payload size (8 bytes per value).
func (f *Field) SizeBytes() int { return len(f.Data) * 8 }

// String implements fmt.Stringer.
func (f *Field) String() string {
	return fmt.Sprintf("%s%v (%.2f MB)", f.Name, f.Dims, float64(f.SizeBytes())/(1<<20))
}

// CESM generates a 2D cloud-fraction-like field of ny x nx values in
// [0, 1]: latitude bands, a few synoptic "fronts", and grid-scale
// noise. The paper's CLDLOW slice is 1800 x 3600; tests use smaller
// grids.
func CESM(ny, nx int, seed int64) *Field {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, ny*nx)
	// Random synoptic systems: smooth bumps at random centers.
	type bump struct{ cy, cx, r, amp float64 }
	bumps := make([]bump, 12)
	for i := range bumps {
		bumps[i] = bump{
			cy:  rng.Float64(),
			cx:  rng.Float64(),
			r:   0.05 + 0.15*rng.Float64(),
			amp: 0.6 * (rng.Float64() - 0.3),
		}
	}
	for y := 0; y < ny; y++ {
		fy := float64(y) / float64(ny)
		band := 0.45 + 0.3*math.Cos(3*math.Pi*(fy-0.5)) // cloudy mid-latitudes
		for x := 0; x < nx; x++ {
			fx := float64(x) / float64(nx)
			v := band + 0.1*math.Sin(2*math.Pi*(4*fx+2*fy))
			for _, b := range bumps {
				dy, dx := fy-b.cy, wrapDist(fx, b.cx)
				d2 := (dy*dy + dx*dx) / (b.r * b.r)
				if d2 < 9 {
					v += b.amp * math.Exp(-d2)
				}
			}
			v += 0.02 * rng.NormFloat64()
			data[y*nx+x] = clamp01(v)
		}
	}
	return &Field{Name: "CESM-CLDLOW", Data: data, Dims: []int{ny, nx}}
}

// Isabel generates a 3D hurricane-pressure-like field of nz x ny x nx
// values around sea-level pressure (hPa): a strong low-pressure vortex
// with radial structure, plus altitude decay. The paper's slice is
// 100 x 500 x 500.
func Isabel(nz, ny, nx int, seed int64) *Field {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, nz*ny*nx)
	cy, cx := 0.45+0.1*rng.Float64(), 0.55+0.1*rng.Float64()
	i := 0
	for z := 0; z < nz; z++ {
		fz := float64(z) / float64(max(nz, 1))
		base := 1013.0 * math.Exp(-1.2*fz) // hydrostatic-ish decay
		for y := 0; y < ny; y++ {
			fy := float64(y) / float64(ny)
			for x := 0; x < nx; x++ {
				fx := float64(x) / float64(nx)
				dy, dx := fy-cy, fx-cx
				r := math.Sqrt(dy*dy + dx*dx)
				// Vortex: deep central depression with spiral bands.
				depress := -90 * math.Exp(-r*r/0.02) * (1 - 0.6*fz)
				spiral := 4 * math.Sin(10*r-6*math.Atan2(dy, dx)) * math.Exp(-r*r/0.08)
				data[i] = base + depress + spiral + 0.3*rng.NormFloat64()
				i++
			}
		}
	}
	return &Field{Name: "Isabel-P", Data: data, Dims: []int{nz, ny, nx}}
}

// NYX generates a 3D cosmology-temperature-like field of nz x ny x nx
// values spanning several orders of magnitude (10^3 - 10^7 K),
// log-normally distributed around large-scale filaments. The paper's
// slice is 512^3.
func NYX(nz, ny, nx int, seed int64) *Field {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, nz*ny*nx)
	// Filaments: sum of a few long-wavelength modes in log space.
	type mode struct{ kz, ky, kx, ph, amp float64 }
	modes := make([]mode, 8)
	for m := range modes {
		modes[m] = mode{
			kz:  float64(1 + rng.Intn(3)),
			ky:  float64(1 + rng.Intn(3)),
			kx:  float64(1 + rng.Intn(3)),
			ph:  2 * math.Pi * rng.Float64(),
			amp: 0.5 + 0.5*rng.Float64(),
		}
	}
	i := 0
	for z := 0; z < nz; z++ {
		fz := float64(z) / float64(nz)
		for y := 0; y < ny; y++ {
			fy := float64(y) / float64(ny)
			for x := 0; x < nx; x++ {
				fx := float64(x) / float64(nx)
				logT := 4.5 // ~3*10^4 K
				for _, m := range modes {
					logT += 0.35 * m.amp * math.Sin(2*math.Pi*(m.kz*fz+m.ky*fy+m.kx*fx)+m.ph)
				}
				logT += 0.05 * rng.NormFloat64()
				data[i] = math.Pow(10, logT)
				i++
			}
		}
	}
	return &Field{Name: "NYX-T", Data: data, Dims: []int{nz, ny, nx}}
}

// StudyFields returns small-scale versions of the three study datasets
// (suitable for tests and CI); pass scale > 1 for larger grids.
func StudyFields(scale int, seed int64) []*Field {
	if scale < 1 {
		scale = 1
	}
	return []*Field{
		CESM(32*scale, 64*scale, seed),
		Isabel(8*scale, 24*scale, 24*scale, seed+1),
		NYX(16*scale, 16*scale, 16*scale, seed+2),
	}
}

// ByName generates one of the three study datasets at the given scale.
func ByName(name string, scale int, seed int64) (*Field, error) {
	if scale < 1 {
		scale = 1
	}
	switch name {
	case "CESM", "cesm":
		return CESM(32*scale, 64*scale, seed), nil
	case "Isabel", "isabel":
		return Isabel(8*scale, 24*scale, 24*scale, seed), nil
	case "NYX", "nyx":
		return NYX(16*scale, 16*scale, 16*scale, seed), nil
	default:
		return nil, fmt.Errorf("datasets: unknown dataset %q (want CESM, Isabel, or NYX)", name)
	}
}

func wrapDist(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
