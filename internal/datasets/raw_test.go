package datasets

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRawRoundTripFloat32(t *testing.T) {
	f := CESM(8, 16, 1)
	var buf bytes.Buffer
	if err := WriteRaw(&buf, f, Float32); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != f.N()*4 {
		t.Fatalf("wrote %d bytes", buf.Len())
	}
	got, err := ReadRaw(&buf, "rt", f.Dims, Float32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if math.Abs(got.Data[i]-f.Data[i]) > 1e-6 {
			t.Fatalf("float32 round trip off at %d: %g vs %g", i, got.Data[i], f.Data[i])
		}
	}
}

func TestRawRoundTripFloat64(t *testing.T) {
	f := NYX(4, 4, 4, 2)
	var buf bytes.Buffer
	if err := WriteRaw(&buf, f, Float64); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRaw(&buf, "rt", f.Dims, Float64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if got.Data[i] != f.Data[i] {
			t.Fatalf("float64 round trip must be exact at %d", i)
		}
	}
}

func TestLoadRawFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "field.f32")
	f := Isabel(2, 8, 8, 3)
	var buf bytes.Buffer
	if err := WriteRaw(&buf, f, Float32); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRaw(path, f.Dims, Float32)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != f.N() {
		t.Fatalf("loaded %d elements", got.N())
	}
	// Size mismatch (wrong dims) must fail with a helpful message.
	_, err = LoadRaw(path, []int{2, 8, 9}, Float32)
	if err == nil || !strings.Contains(err.Error(), "need") {
		t.Fatalf("dims mismatch should explain itself, got %v", err)
	}
	// Wrong dtype: size check also catches it.
	if _, err := LoadRaw(path, f.Dims, Float64); err == nil {
		t.Fatal("wrong dtype must fail")
	}
}

func TestRawValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := ReadRaw(&buf, "x", []int{0}, Float32); err == nil {
		t.Fatal("zero dim must fail")
	}
	if _, err := ReadRaw(&buf, "x", []int{1, 1, 1, 1}, Float32); err == nil {
		t.Fatal("4D must fail")
	}
	if _, err := ReadRaw(&buf, "x", []int{4}, DType(9)); err == nil {
		t.Fatal("bad dtype must fail")
	}
	if _, err := ReadRaw(&buf, "x", []int{1 << 11, 1 << 11, 1 << 11}, Float32); err == nil {
		t.Fatal("element cap must trip")
	}
	// Truncated stream.
	buf.Write([]byte{1, 2, 3})
	if _, err := ReadRaw(&buf, "x", []int{4}, Float32); err == nil {
		t.Fatal("truncated stream must fail")
	}
	if _, err := LoadRaw("/nonexistent/file", []int{1}, Float32); err == nil {
		t.Fatal("missing file must fail")
	}
}
