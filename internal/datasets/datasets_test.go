package datasets

import (
	"math"
	"testing"
)

func TestCESMProperties(t *testing.T) {
	f := CESM(32, 64, 1)
	if f.N() != 32*64 {
		t.Fatalf("N = %d", f.N())
	}
	if f.Dims[0] != 32 || f.Dims[1] != 64 {
		t.Fatalf("dims %v", f.Dims)
	}
	for i, v := range f.Data {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("CESM value %g at %d outside [0,1]", v, i)
		}
	}
}

func TestCESMDeterministic(t *testing.T) {
	a := CESM(16, 16, 42)
	b := CESM(16, 16, 42)
	c := CESM(16, 16, 43)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed must reproduce identical data")
		}
	}
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestIsabelProperties(t *testing.T) {
	f := Isabel(4, 32, 32, 2)
	if f.N() != 4*32*32 {
		t.Fatalf("N = %d", f.N())
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range f.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite pressure value")
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	// Pressure-like scale: vortex depression below ambient.
	if hi < 900 || hi > 1100 {
		t.Fatalf("surface pressure %g implausible", hi)
	}
	if hi-lo < 50 {
		t.Fatalf("field too flat (range %g); vortex missing?", hi-lo)
	}
}

func TestNYXProperties(t *testing.T) {
	f := NYX(8, 8, 8, 3)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range f.Data {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("temperature must be positive and finite")
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi/lo < 10 {
		t.Fatalf("NYX should span orders of magnitude, got ratio %g", hi/lo)
	}
}

func TestStudyFields(t *testing.T) {
	fs := StudyFields(1, 7)
	if len(fs) != 3 {
		t.Fatalf("want 3 fields, got %d", len(fs))
	}
	names := map[string]bool{}
	for _, f := range fs {
		names[f.Name] = true
		if f.N() == 0 {
			t.Fatalf("%s is empty", f.Name)
		}
	}
	if !names["CESM-CLDLOW"] || !names["Isabel-P"] || !names["NYX-T"] {
		t.Fatalf("unexpected names %v", names)
	}
	// Sizes must differ (the paper picks datasets of different sizes).
	if fs[0].N() == fs[1].N() && fs[1].N() == fs[2].N() {
		t.Fatal("fields should differ in size")
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"CESM", "Isabel", "NYX", "cesm", "isabel", "nyx"} {
		if _, err := ByName(n, 1, 1); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
	if _, err := ByName("bogus", 1, 1); err == nil {
		t.Fatal("unknown name must fail")
	}
}

func TestScale(t *testing.T) {
	small := CESM(32, 64, 1)
	big := StudyFields(2, 1)[0]
	if big.N() <= small.N() {
		t.Fatal("scale 2 must be larger than scale 1")
	}
	if f := StudyFields(0, 1); f[0].N() != StudyFields(1, 1)[0].N() {
		t.Fatal("scale < 1 must clamp to 1")
	}
}

func TestFieldString(t *testing.T) {
	f := CESM(32, 64, 1)
	s := f.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
