//go:build !race

// Package raceflag exposes whether the binary was built with the race
// detector. Allocation-regression tests use it to skip themselves:
// -race instruments every memory access and perturbs both allocation
// counts and sync.Pool behavior, so allocs/op assertions are
// meaningless under it.
package raceflag

// Enabled reports whether the race detector is active in this build.
const Enabled = false
