//go:build race

package raceflag

// Enabled reports whether the race detector is active in this build.
const Enabled = true
