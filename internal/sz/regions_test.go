package sz

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

func TestRegionsRoundTrip(t *testing.T) {
	data, dims := smoothField2D(64, 48, 200)
	for _, regions := range []int{1, 2, 3, 7, 64, 100} {
		buf, err := CompressRegions(data, dims, Options{Mode: ModeABS, ErrorBound: 0.01}, regions, 2)
		if err != nil {
			t.Fatalf("regions=%d: %v", regions, err)
		}
		got, gotDims, err := DecompressRegions(buf, 2)
		if err != nil {
			t.Fatalf("regions=%d: %v", regions, err)
		}
		if gotDims[0] != dims[0] || gotDims[1] != dims[1] {
			t.Fatalf("regions=%d: dims %v", regions, gotDims)
		}
		if i := metrics.VerifyBound(data, got, metrics.BoundAbs, 0.01); i != -1 {
			t.Fatalf("regions=%d: bound violated at %d", regions, i)
		}
	}
}

func TestRegionsParallelMatchesSerial(t *testing.T) {
	data, dims := smoothField2D(48, 32, 201)
	serial, err := CompressRegions(data, dims, Options{Mode: ModeABS, ErrorBound: 0.01}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CompressRegions(data, dims, Options{Mode: ModeABS, ErrorBound: 0.01}, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatal("parallel output differs")
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatal("parallel output differs")
		}
	}
}

func TestRegionsDecompressPlainStream(t *testing.T) {
	data, dims := smoothField2D(16, 16, 202)
	buf, err := Compress(data, dims, Options{Mode: ModeABS, ErrorBound: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecompressRegions(buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if i := metrics.VerifyBound(data, got, metrics.BoundAbs, 0.1); i != -1 {
		t.Fatal("plain stream via region decoder violated bound")
	}
}

func TestRegionsLimitErrorPropagation(t *testing.T) {
	// The resiliency angle: a flip in one region cannot corrupt rows
	// belonging to other regions.
	data, dims := smoothField2D(64, 64, 203)
	buf, err := CompressRegions(data, dims, Options{Mode: ModeABS, ErrorBound: 0.001}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	clean, _, err := DecompressRegions(buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(204))
	rowsPerRegion := 64 / 8
	sawContained := 0
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), buf...)
		bit := rng.Intn(len(mut) * 8)
		mut[bit/8] ^= 0x80 >> (bit % 8)
		got, gotDims, err := DecompressRegions(mut, 1)
		if err != nil || len(got) != len(clean) || gotDims[0] != 64 {
			continue // exception or reshape: not silent corruption
		}
		// Find which rows changed.
		minRow, maxRow := 65, -1
		for i := range got {
			if got[i] != clean[i] {
				row := i / 64
				if row < minRow {
					minRow = row
				}
				if row > maxRow {
					maxRow = row
				}
			}
		}
		if maxRow == -1 {
			continue // masked flip
		}
		if maxRow-minRow < rowsPerRegion {
			sawContained++
		}
		// Corruption must never span more than one region's rows.
		if minRow/rowsPerRegion != maxRow/rowsPerRegion {
			t.Fatalf("trial %d: corruption spans regions (rows %d-%d)", trial, minRow, maxRow)
		}
	}
	if sawContained == 0 {
		t.Fatal("no trial demonstrated contained corruption")
	}
}

func TestRegionsGarbage(t *testing.T) {
	if _, _, err := DecompressRegions([]byte("SZR1xxxx"), 1); err == nil {
		t.Fatal("garbage region stream must fail")
	}
	if _, _, err := DecompressRegions([]byte("SZR1"), 1); err == nil {
		t.Fatal("truncated region count must fail")
	}
	// Implausible region count.
	bad := append([]byte("SZR1"), 0xFF, 0xFF, 0xFF, 0xFF)
	if _, _, err := DecompressRegions(bad, 1); err == nil {
		t.Fatal("huge region count must fail")
	}
}

func TestRegionsWithRegression(t *testing.T) {
	data, dims := smoothField2D(48, 48, 205)
	buf, err := CompressRegions(data, dims, Options{Mode: ModeABS, ErrorBound: 0.01, Regression: true}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecompressRegions(buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range data {
		if d := math.Abs(got[i] - data[i]); d > worst {
			worst = d
		}
	}
	if worst > 0.01+1e-12 {
		t.Fatalf("regression+regions bound violated: %g", worst)
	}
}
