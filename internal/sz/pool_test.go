package sz

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

// TestPooledPathsAreDeterministic compresses and decompresses the same
// field repeatedly so the second and later iterations run entirely on
// pooled state (histogram, Huffman codecs, flate writer/reader). Any
// stale state leaking across reuses would break byte-identity or the
// round trip.
func TestPooledPathsAreDeterministic(t *testing.T) {
	dims := []int{32, 48}
	data := make([]float64, dims[0]*dims[1])
	for i := range data {
		data[i] = math.Sin(float64(i)*0.05) + 0.3*math.Cos(float64(i)*0.17)
	}
	for _, opts := range []Options{
		{Mode: ModeABS, ErrorBound: 1e-3},
		{Mode: ModePWREL, ErrorBound: 1e-3},
		{Mode: ModeABS, ErrorBound: 1e-3, Regression: true},
	} {
		var first []byte
		for iter := 0; iter < 4; iter++ {
			buf, err := Compress(data, dims, opts)
			if err != nil {
				t.Fatalf("%s iter %d: %v", opts.Mode, iter, err)
			}
			if iter == 0 {
				first = buf
			} else if !bytes.Equal(buf, first) {
				t.Fatalf("%s iter %d: compressed bytes differ from first run", opts.Mode, iter)
			}
			out, gotDims, err := Decompress(buf)
			if err != nil {
				t.Fatalf("%s iter %d: decompress: %v", opts.Mode, iter, err)
			}
			if len(gotDims) != 2 || gotDims[0] != dims[0] || gotDims[1] != dims[1] {
				t.Fatalf("%s iter %d: dims %v", opts.Mode, iter, gotDims)
			}
			for i, v := range out {
				if math.Abs(v-data[i]) > 2e-3 {
					t.Fatalf("%s iter %d: value %d off by %g", opts.Mode, iter, i, math.Abs(v-data[i]))
				}
			}
		}
	}
}

// TestPooledPathsConcurrent hammers the pools from many goroutines:
// sync.Pool must hand each caller private scratch, so results stay
// deterministic under concurrency (the fault-injection harness runs
// trials in parallel).
func TestPooledPathsConcurrent(t *testing.T) {
	dims := []int{16, 16}
	data := make([]float64, dims[0]*dims[1])
	for i := range data {
		data[i] = float64(i%37) * 0.25
	}
	opts := Options{Mode: ModeABS, ErrorBound: 1e-4}
	want, err := Compress(data, dims, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				buf, err := Compress(data, dims, opts)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf, want) {
					errs <- errStreamMismatch
					return
				}
				if _, _, err := Decompress(buf); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errStreamMismatch = wrapCorrupt("concurrent compression produced a different stream")
