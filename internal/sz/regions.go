package sz

// Region-parallel compression: the field is split into independent
// slabs along the slowest dimension, each compressed as a complete SZ
// stream, concatenated behind a small index. This mirrors the
// OpenMP-parallel operation mode of SZ in production deployments, and
// has a resiliency side effect the fault study cares about: a bit flip
// desynchronizes at most one region instead of the whole stream.

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/parallel"
	"repro/internal/safecast"
)

const regionMagic = "SZR1"

// maxRegions bounds the region index a corrupted header can claim.
const maxRegions = 1 << 20

// CompressRegions compresses data in `regions` independent slabs along
// dims[0], optionally in parallel (workers as in internal/parallel).
// regions <= 1 falls back to plain Compress.
func CompressRegions(data []float64, dims []int, opts Options, regions, workers int) ([]byte, error) {
	if err := checkDims(data, dims); err != nil {
		return nil, err
	}
	if regions <= 1 {
		return Compress(data, dims, opts)
	}
	if regions > dims[0] {
		regions = dims[0] // at least one row of the slowest dim each
	}
	rowSize := len(data) / dims[0]
	bounds := make([]int, regions+1) // row boundaries
	for r := 0; r <= regions; r++ {
		bounds[r] = r * dims[0] / regions
	}
	streams := make([][]byte, regions)
	err := parallel.ForErr(regions, workers, func(lo, hi int) error {
		for r := lo; r < hi; r++ {
			rows := bounds[r+1] - bounds[r]
			slabDims := append([]int{rows}, dims[1:]...)
			slab := data[bounds[r]*rowSize : bounds[r+1]*rowSize]
			s, err := Compress(slab, slabDims, opts)
			if err != nil {
				return fmt.Errorf("sz: region %d: %w", r, err)
			}
			streams[r] = s
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	out.WriteString(regionMagic)
	binWrite(&out, safecast.U32(regions))
	for _, s := range streams {
		binWrite(&out, safecast.U32(len(s)))
	}
	for _, s := range streams {
		out.Write(s)
	}
	return out.Bytes(), nil
}

// DecompressRegions reverses CompressRegions (and transparently
// handles plain streams). workers parallelizes region decompression.
func DecompressRegions(buf []byte, workers int) ([]float64, []int, error) {
	if len(buf) < len(regionMagic) || string(buf[:len(regionMagic)]) != regionMagic {
		return Decompress(buf)
	}
	rd := buf[len(regionMagic):]
	if len(rd) < 4 {
		return nil, nil, fmt.Errorf("%w: truncated region count", ErrCorrupt)
	}
	regions := int(binary.LittleEndian.Uint32(rd))
	rd = rd[4:]
	if regions < 1 || regions > maxRegions {
		return nil, nil, fmt.Errorf("%w: implausible region count %d", ErrCorrupt, regions)
	}
	if len(rd) < 4*regions {
		return nil, nil, fmt.Errorf("%w: truncated region index", ErrCorrupt)
	}
	lengths := make([]int, regions)
	total := 0
	for r := range lengths {
		lengths[r] = int(binary.LittleEndian.Uint32(rd[4*r:]))
		if lengths[r] < 0 || lengths[r] > len(buf) {
			return nil, nil, fmt.Errorf("%w: implausible region length", ErrCorrupt)
		}
		total += lengths[r]
	}
	rd = rd[4*regions:]
	if total > len(rd) {
		return nil, nil, fmt.Errorf("%w: region index exceeds payload", ErrCorrupt)
	}
	offs := make([]int, regions+1)
	for r := 0; r < regions; r++ {
		offs[r+1] = offs[r] + lengths[r]
	}
	type slab struct {
		data []float64
		dims []int
	}
	slabs := make([]slab, regions)
	err := parallel.ForErr(regions, workers, func(lo, hi int) error {
		for r := lo; r < hi; r++ {
			d, dims, err := Decompress(rd[offs[r]:offs[r+1]])
			if err != nil {
				return fmt.Errorf("region %d: %w", r, err)
			}
			slabs[r] = slab{d, dims}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	// Stitch along dim 0; trailing dims must agree across slabs.
	base := slabs[0].dims
	rows := 0
	n := 0
	for r, s := range slabs {
		if len(s.dims) != len(base) {
			return nil, nil, fmt.Errorf("%w: region %d dimensionality differs", ErrCorrupt, r)
		}
		for i := 1; i < len(base); i++ {
			if s.dims[i] != base[i] {
				return nil, nil, fmt.Errorf("%w: region %d shape differs", ErrCorrupt, r)
			}
		}
		rows += s.dims[0]
		n += len(s.data)
	}
	out := make([]float64, 0, n)
	for _, s := range slabs {
		out = append(out, s.data...)
	}
	dims := append([]int{rows}, base[1:]...)
	return out, dims, nil
}
