package sz

import (
	"math"
	"math/rand"
	"testing"
)

// linearField2D is exactly what regression predicts perfectly.
func linearField2D(ny, nx int) ([]float64, []int) {
	data := make([]float64, ny*nx)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			data[y*nx+x] = 3.5 + 0.25*float64(x) - 0.75*float64(y)
		}
	}
	return data, []int{ny, nx}
}

func TestRegGrid(t *testing.T) {
	g := newRegGrid([]int{13, 7})
	if g.nb[0] != 3 || g.nb[1] != 2 || g.blocks != 6 {
		t.Fatalf("grid %+v", g)
	}
	lo, hi := g.blockBounds(5) // last block: rows 12, cols 6
	if lo[0] != 12 || hi[0] != 13 || lo[1] != 6 || hi[1] != 7 {
		t.Fatalf("bounds %v %v", lo, hi)
	}
	if g.coeffCount() != 3 {
		t.Fatal("2D blocks need 3 coefficients")
	}
}

func TestFitRegressionExactOnLinear(t *testing.T) {
	data, dims := linearField2D(12, 12)
	g := newRegGrid(dims)
	for b := 0; b < g.blocks; b++ {
		lo, hi := g.blockBounds(b)
		coeffs, ok := fitRegression(data, dims, lo, hi)
		if !ok {
			t.Fatalf("block %d: fit failed", b)
		}
		// Slopes must match the generating plane.
		if math.Abs(coeffs[1]+0.75) > 1e-9 || math.Abs(coeffs[2]-0.25) > 1e-9 {
			t.Fatalf("block %d: coeffs %v", b, coeffs)
		}
		// Prediction must be exact everywhere in the block.
		forEachCell(dims, lo, hi, func(idx int, c [3]int) {
			p := regPredict(coeffs, lo, c, 2)
			if math.Abs(p-data[idx]) > 1e-9 {
				t.Fatalf("block %d cell %v: predict %g want %g", b, c, p, data[idx])
			}
		})
	}
}

func TestCoeffQuantRoundTrip(t *testing.T) {
	coeffs := []float64{3.14159, -2.71828, 0.00001}
	eb := 0.01
	q, ok := quantizeCoeffs(coeffs, eb)
	if !ok {
		t.Fatal("quantize failed")
	}
	deq := dequantizeCoeffs(q, eb)
	step := eb / coeffQuantScale
	for i := range coeffs {
		if math.Abs(deq[i]-coeffs[i]) > step/2+1e-15 {
			t.Fatalf("coeff %d error %g > step/2", i, math.Abs(deq[i]-coeffs[i]))
		}
	}
	// Saturation disqualifies.
	if _, ok := quantizeCoeffs([]float64{1e300}, 0.01); ok {
		t.Fatal("huge coefficient must disqualify")
	}
}

func TestMixedRoundTripBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	ny, nx := 67, 53 // partial edge blocks
	data := make([]float64, ny*nx)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			// Piecewise-sloped field plus noise: some blocks favour
			// regression, others Lorenzo.
			data[y*nx+x] = 2*float64(x) - float64(y) +
				5*math.Sin(float64(x)/9) + 0.02*rng.NormFloat64()
		}
	}
	dims := []int{ny, nx}
	for _, eb := range []float64{0.1, 0.001} {
		buf, err := Compress(data, dims, Options{Mode: ModeABS, ErrorBound: eb, Regression: true})
		if err != nil {
			t.Fatal(err)
		}
		got, gotDims, err := Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotDims[0] != ny || gotDims[1] != nx {
			t.Fatalf("dims %v", gotDims)
		}
		for i := range data {
			if d := math.Abs(got[i] - data[i]); d > eb+1e-12 {
				t.Fatalf("eb=%g: bound violated at %d: %g", eb, i, d)
			}
		}
	}
}

func TestMixed3DRoundTrip(t *testing.T) {
	dims := []int{9, 14, 11}
	n := 9 * 14 * 11
	data := make([]float64, n)
	i := 0
	for z := 0; z < 9; z++ {
		for y := 0; y < 14; y++ {
			for x := 0; x < 11; x++ {
				data[i] = float64(x) + 2*float64(y) - 3*float64(z)
				i++
			}
		}
	}
	buf, err := Compress(data, dims, Options{Mode: ModeABS, ErrorBound: 1e-4, Regression: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(got[i]-data[i]) > 1e-4 {
			t.Fatalf("3D bound violated at %d", i)
		}
	}
}

func TestRegressionImprovesLinearFieldCR(t *testing.T) {
	// A sloped field with noise: Lorenzo residuals carry the slope's
	// second difference noise, regression's are near zero.
	rng := rand.New(rand.NewSource(101))
	ny, nx := 96, 96
	data := make([]float64, ny*nx)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			data[y*nx+x] = 100*float64(x) - 55*float64(y) + rng.Float64()
		}
	}
	dims := []int{ny, nx}
	without, err := Compress(data, dims, Options{Mode: ModeABS, ErrorBound: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	with, err := Compress(data, dims, Options{Mode: ModeABS, ErrorBound: 0.5, Regression: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(with) >= len(without) {
		t.Fatalf("regression should shrink sloped fields: %d vs %d bytes", len(with), len(without))
	}
	t.Logf("CR without regression %.1fx, with %.1fx",
		float64(len(data)*8)/float64(len(without)), float64(len(data)*8)/float64(len(with)))
}

func TestRegression1DFallsBackToLorenzo(t *testing.T) {
	data := make([]float64, 100)
	for i := range data {
		data[i] = float64(i)
	}
	buf, err := Compress(data, []int{100}, Options{Mode: ModeABS, ErrorBound: 0.1, Regression: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(got[i]-data[i]) > 0.1 {
			t.Fatal("1D regression fallback broken")
		}
	}
}

func TestMixedPWREL(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	ny, nx := 24, 24
	data := make([]float64, ny*nx)
	for i := range data {
		data[i] = math.Exp(rng.Float64()*8) * sign(i)
	}
	rel := 0.01
	buf, err := Compress(data, []int{ny, nx}, Options{Mode: ModePWREL, ErrorBound: rel, Regression: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		relErr := math.Abs(got[i]-data[i]) / math.Abs(data[i])
		if relErr > rel+1e-9 {
			t.Fatalf("pwrel+regression violated at %d: %g", i, relErr)
		}
	}
}

func sign(i int) float64 {
	if i%3 == 0 {
		return -1
	}
	return 1
}

func TestMixedFlipRobustness(t *testing.T) {
	data, dims := linearField2D(48, 48)
	buf, err := Compress(data, dims, Options{Mode: ModeABS, ErrorBound: 0.01, Regression: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), buf...)
		bit := rng.Intn(len(mut) * 8)
		mut[bit/8] ^= 0x80 >> (bit % 8)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("bit %d: panic: %v", bit, r)
				}
			}()
			_, _, _ = Decompress(mut)
		}()
	}
}
