package sz

// Kernel benchmarks consumed by `benchmeta kernels`: the word/scalar
// sub-benchmark pairs feed the speedup gates in BENCH_kernels.json.

import (
	"math"
	"math/rand"
	"testing"
)

// benchQuantDims is a 3D field, the shape where per-element predictor
// dispatch is most expensive and production fields live. 32^3 float64s
// is a 256 KiB working set — the same leave-L1-stay-in-L2 discipline
// as the root package's kernelBuf, so the measured ratio reflects the
// kernels rather than memory-bandwidth effects that shift with CPU
// frequency scaling.
var benchQuantDims = []int{32, 32, 32}

func benchQuantField() []float64 {
	n := benchQuantDims[0] * benchQuantDims[1] * benchQuantDims[2]
	rng := rand.New(rand.NewSource(7))
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i)/17.0) + 0.01*rng.Float64()
	}
	return data
}

func BenchmarkKernelSZQuantize(b *testing.B) {
	data := benchQuantField()
	eb := 1e-4
	nbytes := int64(len(data) * 8)
	b.Run("word", func(b *testing.B) {
		b.SetBytes(nbytes)
		for i := 0; i < b.N; i++ {
			quantize(data, benchQuantDims, eb)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(nbytes)
		for i := 0; i < b.N; i++ {
			quantizeRef(data, benchQuantDims, eb)
		}
	})
}

func BenchmarkKernelSZDequantize(b *testing.B) {
	data := benchQuantField()
	eb := 1e-4
	syms, unpred := quantize(data, benchQuantDims, eb)
	nbytes := int64(len(data) * 8)
	b.Run("word", func(b *testing.B) {
		b.SetBytes(nbytes)
		for i := 0; i < b.N; i++ {
			if _, err := dequantize(syms, benchQuantDims, eb, unpred); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(nbytes)
		for i := 0; i < b.N; i++ {
			if _, err := dequantizeRef(syms, benchQuantDims, eb, unpred); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkKernelSZQuantizeMixed(b *testing.B) {
	data := benchQuantField()
	eb := 1e-4
	nbytes := int64(len(data) * 8)
	b.Run("word", func(b *testing.B) {
		b.SetBytes(nbytes)
		for i := 0; i < b.N; i++ {
			quantizeMixed(data, benchQuantDims, eb)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(nbytes)
		for i := 0; i < b.N; i++ {
			quantizeMixedRef(data, benchQuantDims, eb)
		}
	})
}
