package sz

import (
	"math"
	"math/rand"
	"testing"
)

// quantTestDims exercises 1D/2D/3D, odd extents, single-row/column
// degenerate shapes, and fields smaller and larger than a regression
// block.
var quantTestDims = [][]int{
	{1}, {7}, {64}, {1000},
	{1, 1}, {1, 17}, {17, 1}, {5, 7}, {6, 6}, {13, 29}, {40, 33},
	{1, 1, 1}, {1, 5, 9}, {9, 1, 5}, {5, 9, 1}, {3, 4, 5}, {6, 6, 6}, {7, 11, 13},
}

// quantTestField fills a field with smooth structure plus noise, and
// sprinkles in the IEEE-754 special cases the quantizer must route to
// the unpredictable pool (or reconstruct exactly): NaN, ±Inf, ±0,
// huge magnitudes, and denormals.
func quantTestField(dims []int, seed int64) []float64 {
	n := 1
	for _, d := range dims {
		n *= d
	}
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i)/9.0) + 0.05*rng.Float64()
	}
	specials := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1),
		math.Copysign(0, -1), 0,
		1e300, -1e300, 5e-324, math.MaxFloat64,
	}
	for _, v := range specials {
		if n > 0 {
			data[rng.Intn(n)] = v
		}
	}
	return data
}

// sameFloats compares float slices bit for bit (so NaN payloads and
// signed zeros must survive identically).
func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestQuantizeMatchesRef(t *testing.T) {
	for di, dims := range quantTestDims {
		for _, eb := range []float64{1e-3, 1e-6, 1e-12} {
			data := quantTestField(dims, int64(di))
			syms, unpred := quantize(data, dims, eb)
			wantSyms, wantUnpred := quantizeRef(data, dims, eb)
			if len(syms) != len(wantSyms) {
				t.Fatalf("dims=%v eb=%g: %d syms, want %d", dims, eb, len(syms), len(wantSyms))
			}
			for i := range syms {
				if syms[i] != wantSyms[i] {
					t.Fatalf("dims=%v eb=%g: syms[%d]=%d, want %d", dims, eb, i, syms[i], wantSyms[i])
				}
			}
			if !sameFloats(unpred, wantUnpred) {
				t.Fatalf("dims=%v eb=%g: unpredictable pool diverges from reference", dims, eb)
			}
		}
	}
}

func TestDequantizeMatchesRef(t *testing.T) {
	for di, dims := range quantTestDims {
		eb := 1e-4
		data := quantTestField(dims, int64(100+di))
		syms, unpred := quantizeRef(data, dims, eb)
		got, err := dequantize(syms, dims, eb, unpred)
		if err != nil {
			t.Fatalf("dims=%v: dequantize: %v", dims, err)
		}
		want, err := dequantizeRef(syms, dims, eb, unpred)
		if err != nil {
			t.Fatalf("dims=%v: dequantizeRef: %v", dims, err)
		}
		if !sameFloats(got, want) {
			t.Fatalf("dims=%v: dequantize diverges from reference", dims)
		}
	}
}

func TestDequantizeExhaustedPool(t *testing.T) {
	for _, dims := range [][]int{{8}, {4, 4}, {2, 3, 4}} {
		n := 1
		for _, d := range dims {
			n *= d
		}
		syms := make([]int32, n) // all unpredictable, empty pool
		if _, err := dequantize(syms, dims, 1e-3, nil); err == nil {
			t.Fatalf("dims=%v: no error on exhausted unpredictable pool", dims)
		}
	}
}

func TestQuantizeMixedMatchesRef(t *testing.T) {
	for di, dims := range quantTestDims {
		if len(dims) < 2 {
			continue // mixed prediction requires 2D/3D
		}
		for _, eb := range []float64{1e-3, 1e-8} {
			data := quantTestField(dims, int64(200+di))
			got := quantizeMixed(data, dims, eb)
			want := quantizeMixedRef(data, dims, eb)
			if len(got.syms) != len(want.syms) {
				t.Fatalf("dims=%v eb=%g: %d syms, want %d", dims, eb, len(got.syms), len(want.syms))
			}
			for i := range got.syms {
				if got.syms[i] != want.syms[i] {
					t.Fatalf("dims=%v eb=%g: syms[%d]=%d, want %d", dims, eb, i, got.syms[i], want.syms[i])
				}
			}
			if !sameFloats(got.unpred, want.unpred) {
				t.Fatalf("dims=%v eb=%g: unpredictable pool diverges", dims, eb)
			}
			if len(got.modes) != len(want.modes) {
				t.Fatalf("dims=%v eb=%g: %d modes, want %d", dims, eb, len(got.modes), len(want.modes))
			}
			for i := range got.modes {
				if got.modes[i] != want.modes[i] {
					t.Fatalf("dims=%v eb=%g: modes[%d]=%v, want %v", dims, eb, i, got.modes[i], want.modes[i])
				}
			}
			if len(got.qcoeffs) != len(want.qcoeffs) {
				t.Fatalf("dims=%v eb=%g: %d qcoeffs, want %d", dims, eb, len(got.qcoeffs), len(want.qcoeffs))
			}
			for i := range got.qcoeffs {
				if got.qcoeffs[i] != want.qcoeffs[i] {
					t.Fatalf("dims=%v eb=%g: qcoeffs[%d]=%d, want %d", dims, eb, i, got.qcoeffs[i], want.qcoeffs[i])
				}
			}
		}
	}
}

// TestQuantizeRoundTripFast pins the batched encoder to the batched
// decoder directly (the pipeline tests cover them through Compress).
func TestQuantizeRoundTripFast(t *testing.T) {
	for di, dims := range quantTestDims {
		eb := 1e-5
		data := quantTestField(dims, int64(300+di))
		syms, unpred := quantize(data, dims, eb)
		recon, err := dequantize(syms, dims, eb, unpred)
		if err != nil {
			t.Fatalf("dims=%v: %v", dims, err)
		}
		for i, v := range data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				if math.Float64bits(recon[i]) != math.Float64bits(v) {
					t.Fatalf("dims=%v: special value at %d not exact", dims, i)
				}
				continue
			}
			if math.Abs(recon[i]-v) > eb {
				t.Fatalf("dims=%v: |recon-orig|=%g > eb at %d", dims, math.Abs(recon[i]-v), i)
			}
		}
	}
}

// TestQuantizeAllocs bounds the allocations of the batched kernels:
// symbol buffer, reconstruction buffer, zero row, and the unpred pool
// growth on a predictable field.
func TestQuantizeAllocs(t *testing.T) {
	dims := []int{32, 32}
	data := make([]float64, 32*32) // constant field: fully predictable
	syms, unpred := quantize(data, dims, 1e-3)
	if allocs := testing.AllocsPerRun(10, func() {
		quantize(data, dims, 1e-3)
	}); allocs > 3 {
		t.Errorf("quantize allocates %v times per run, want <= 3", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := dequantize(syms, dims, 1e-3, unpred); err != nil {
			t.Fatal(err)
		}
	}); allocs > 2 {
		t.Errorf("dequantize allocates %v times per run, want <= 2", allocs)
	}
}
