// Package sz implements a prediction-based, error-bounded lossy
// compressor modeled on SZ (Di & Cappello, IPDPS'16; Liang et al., Big
// Data'18), the first of the paper's two compressors under study.
//
// The pipeline mirrors SZ's three stages:
//
//  1. Lorenzo prediction of each value from previously *reconstructed*
//     neighbors (1D/2D/3D stencils), so the bound holds end to end.
//  2. Linear-scale quantization of the prediction residual into integer
//     codes; residuals outside the quantizer range are stored verbatim
//     ("unpredictable" values).
//  3. Entropy coding of the integer codes with a canonical Huffman
//     coder, followed by a DEFLATE pass standing in for SZ's ZStd
//     stage. DEFLATE is used raw (no checksum wrapper) because SZ's
//     ZStd usage does not checksum content either — bit flips must be
//     able to slip through to reproduce the paper's silent-corruption
//     behaviour.
//
// Three error-bounding modes are provided, matching the study: ABS
// (uniform absolute bound), PWREL (point-wise relative bound via a
// log-domain transform), and PSNR (a target peak signal-to-noise
// ratio converted to an absolute bound from the data range).
package sz

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/bitio"
	"repro/internal/huffman"
	"repro/internal/safecast"
)

// Mode selects the error-bounding mode.
type Mode uint8

const (
	// ModeABS bounds the absolute error of every value by ErrorBound.
	ModeABS Mode = iota + 1
	// ModePWREL bounds each value's relative error by ErrorBound.
	ModePWREL
	// ModePSNR compresses so the decompressed data retains at least a
	// target PSNR (ErrorBound is the PSNR in dB).
	ModePSNR
)

func (m Mode) String() string {
	switch m {
	case ModeABS:
		return "SZ-ABS"
	case ModePWREL:
		return "SZ-PWREL"
	case ModePSNR:
		return "SZ-PSNR"
	default:
		return fmt.Sprintf("SZ-mode%d", uint8(m))
	}
}

// Options configures compression.
type Options struct {
	Mode Mode
	// ErrorBound is interpreted per Mode: absolute bound (ABS),
	// relative bound (PWREL), or target PSNR in dB (PSNR).
	ErrorBound float64
	// Regression enables SZ 2.x's block-wise linear-regression
	// predictor, selected per 6^d block against Lorenzo (2D/3D only;
	// 1D always uses Lorenzo).
	Regression bool
}

// quantRadius is the half-width of the quantization code alphabet:
// codes lie in (-quantRadius, +quantRadius), symbol 0 marks an
// unpredictable value (SZ's default 65536-interval quantizer).
const quantRadius = 32768

// flagRegression marks streams produced with the mixed
// regression/Lorenzo predictor.
const flagRegression = 0x01

const (
	magic   = "SZG1"
	version = 2
	// maxElements caps metadata-driven allocations during decompression
	// so corrupted headers lead to errors (or slow trials the fault
	// harness times out) instead of machine-wide OOM.
	maxElements = 1 << 27
	maxDim      = 1 << 28
)

// ErrCorrupt reports an undecodable stream — the "Compressor
// Exception" outcome of the paper's fault study.
var ErrCorrupt = errors.New("sz: corrupt stream")

// zeroFloor is the magnitude below which PWREL mode treats a value as
// exactly zero (log-domain transform cannot represent zero).
const zeroFloor = 1e-300

// wrapCorrupt formats an ErrCorrupt-wrapped error.
func wrapCorrupt(format string, args ...interface{}) error {
	return fmt.Errorf("%w: "+format, append([]interface{}{ErrCorrupt}, args...)...)
}

// Compress compresses data laid out in row-major order with the given
// dimensions (1 to 3 dims; product must equal len(data)).
func Compress(data []float64, dims []int, opts Options) ([]byte, error) {
	if err := checkDims(data, dims); err != nil {
		return nil, err
	}
	if opts.ErrorBound <= 0 {
		return nil, fmt.Errorf("sz: error bound must be positive, got %g", opts.ErrorBound)
	}
	useReg := opts.Regression && len(dims) >= 2
	switch opts.Mode {
	case ModeABS:
		return compressABS(data, dims, opts.ErrorBound, ModeABS, opts.ErrorBound, useReg)
	case ModePSNR:
		lo, hi := valueRange(data)
		rng := hi - lo
		if rng == 0 {
			rng = 1 // constant field: any bound retains infinite PSNR
		}
		// PSNR = 20*log10(range/RMSE); uniform quantization error in
		// [-eb, eb] has RMSE eb/sqrt(3), so target eb accordingly.
		eb := rng * math.Pow(10, -opts.ErrorBound/20) * math.Sqrt(3)
		return compressABS(data, dims, eb, ModePSNR, opts.ErrorBound, useReg)
	case ModePWREL:
		return compressPWREL(data, dims, opts.ErrorBound, useReg)
	default:
		return nil, fmt.Errorf("sz: unknown mode %d", opts.Mode)
	}
}

func checkDims(data []float64, dims []int) error {
	if len(dims) < 1 || len(dims) > 3 {
		return fmt.Errorf("sz: want 1-3 dims, got %d", len(dims))
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return fmt.Errorf("sz: non-positive dimension %d", d)
		}
		n *= d
	}
	if n != len(data) {
		return fmt.Errorf("sz: dims product %d != len(data) %d", n, len(data))
	}
	return nil
}

func valueRange(data []float64) (lo, hi float64) {
	if len(data) == 0 {
		return 0, 0
	}
	lo, hi = data[0], data[0]
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// quantizeRef is the scalar reference implementation of the
// prediction + quantization stage: one predictor method call (with its
// per-element index division) per value. Retained for differential
// tests and as the benchmark baseline of the batched kernels in
// quant_fast.go, which must reproduce it bit for bit.
func quantizeRef(data []float64, dims []int, eb float64) (syms []int32, unpred []float64) {
	n := len(data)
	syms = make([]int32, n)
	recon := make([]float64, n)
	pred := newPredictor(dims, recon)
	twoEB := 2 * eb
	for i := 0; i < n; i++ {
		p := pred.predict(i)
		diff := data[i] - p
		code := math.Round(diff / twoEB)
		if math.Abs(code) < quantRadius-1 && !math.IsNaN(code) {
			r := p + code*twoEB
			// Guard against floating-point rounding pushing the
			// reconstruction out of bounds.
			if math.Abs(r-data[i]) <= eb {
				syms[i] = int32(code) + quantRadius
				recon[i] = r
				continue
			}
		}
		syms[i] = 0
		unpred = append(unpred, data[i])
		recon[i] = data[i]
	}
	return syms, unpred
}

// dequantizeRef is the scalar reference implementation of dequantize,
// retained for differential tests and benchmarks.
func dequantizeRef(syms []int32, dims []int, eb float64, unpred []float64) ([]float64, error) {
	n := len(syms)
	recon := make([]float64, n)
	pred := newPredictor(dims, recon)
	twoEB := 2 * eb
	ui := 0
	for i := 0; i < n; i++ {
		if syms[i] == 0 {
			if ui >= len(unpred) {
				return nil, fmt.Errorf("%w: unpredictable pool exhausted", ErrCorrupt)
			}
			recon[i] = unpred[ui]
			ui++
			continue
		}
		code := float64(syms[i] - quantRadius)
		recon[i] = pred.predict(i) + code*twoEB
	}
	return recon, nil
}

// predictor evaluates the Lorenzo stencil over the reconstruction
// buffer for 1, 2, or 3 dimensions.
type predictor struct {
	dims  []int
	recon []float64
	// strides for index arithmetic
	sy, sz int
}

func newPredictor(dims []int, recon []float64) *predictor {
	p := &predictor{dims: dims, recon: recon}
	switch len(dims) {
	case 2:
		p.sy = dims[1] // row-major [d0][d1]: stride of dim0 steps
	case 3:
		p.sy = dims[2]
		p.sz = dims[1] * dims[2]
	}
	return p
}

func (p *predictor) predict(i int) float64 {
	r := p.recon
	switch len(p.dims) {
	case 1:
		if i == 0 {
			return 0
		}
		return r[i-1]
	case 2:
		d1 := p.dims[1]
		x := i / d1
		y := i % d1
		var a, b, c float64 // left, up, up-left
		if y > 0 {
			a = r[i-1]
		}
		if x > 0 {
			b = r[i-d1]
		}
		if x > 0 && y > 0 {
			c = r[i-d1-1]
		}
		return a + b - c
	default: // 3D
		d1, d2 := p.dims[1], p.dims[2]
		z := i / (d1 * d2)
		rem := i % (d1 * d2)
		y := rem / d2
		x := rem % d2
		get := func(dz, dy, dx int) float64 {
			if z-dz < 0 || y-dy < 0 || x-dx < 0 {
				return 0
			}
			return r[i-dz*d1*d2-dy*d2-dx]
		}
		return get(0, 0, 1) + get(0, 1, 0) + get(1, 0, 0) -
			get(0, 1, 1) - get(1, 0, 1) - get(1, 1, 0) +
			get(1, 1, 1)
	}
}

// compressABS implements the core pipeline for an absolute bound; the
// PSNR mode reuses it with a derived bound.
func compressABS(data []float64, dims []int, eb float64, mode Mode, param float64, useReg bool) ([]byte, error) {
	if useReg {
		mr := quantizeMixed(data, dims, eb)
		return assemble(mode, param, eb, dims, mr.syms, mr.unpred, nil, 0, mr)
	}
	syms, unpred := quantize(data, dims, eb)
	return assemble(mode, param, eb, dims, syms, unpred, nil, 0, nil)
}

// compressPWREL implements the point-wise relative mode via SZ's
// log-domain transform: bounding log2|v| absolutely by log2(1+rel)
// bounds the relative error of v by rel. Signs and exact zeros travel
// in a side stream of 2-bit flags.
func compressPWREL(data []float64, dims []int, rel float64, useReg bool) ([]byte, error) {
	n := len(data)
	logs := make([]float64, n)
	flags := make([]byte, n) // 0: positive, 1: negative, 2: zero
	minLog := math.Inf(1)
	for _, v := range data {
		if a := math.Abs(v); a > zeroFloor {
			if l := math.Log2(a); l < minLog {
				minLog = l
			}
		}
	}
	if math.IsInf(minLog, 1) {
		minLog = 0 // all zeros
	}
	for i, v := range data {
		a := math.Abs(v)
		switch {
		case a <= zeroFloor:
			flags[i] = 2
			logs[i] = minLog // benign filler keeps the predictor smooth
		case v < 0:
			flags[i] = 1
			logs[i] = math.Log2(a)
		default:
			logs[i] = math.Log2(a)
		}
	}
	eb := math.Log2(1 + rel)
	if useReg {
		mr := quantizeMixed(logs, dims, eb)
		return assemble(ModePWREL, rel, eb, dims, mr.syms, mr.unpred, flags, minLog, mr)
	}
	syms, unpred := quantize(logs, dims, eb)
	return assemble(ModePWREL, rel, eb, dims, syms, unpred, flags, minLog, nil)
}

// encScratch holds assemble's large reusable state: the 512 KiB symbol
// histogram (cleared on reuse) and the Huffman codec whose tables are
// rebuilt in place via huffman.BuildInto. It circulates through
// encScratchPool; holders must not retain any view of it past Put.
type encScratch struct {
	freqs []int64
	codec huffman.Codec
}

var encScratchPool = sync.Pool{New: func() any { return new(encScratch) }}

// flateWriterPool recycles DEFLATE compressors across assemble calls;
// each use rebinds the writer to its destination with Reset. Writers
// are detached from the caller's buffer (Reset to io.Discard) before
// going back so the pool never pins output buffers.
var flateWriterPool = sync.Pool{New: func() any {
	w, err := flate.NewWriter(io.Discard, flate.BestSpeed)
	if err != nil {
		// flate.NewWriter fails only for invalid levels; BestSpeed is valid.
		panic(err)
	}
	return w
}}

// assemble serializes all streams into the final compressed buffer:
// header, optional regression sections, Huffman table + codes,
// unpredictable values, optional PWREL flag stream — then the DEFLATE
// lossless pass over the whole payload. mr is non-nil when the mixed
// regression/Lorenzo predictor produced the streams.
func assemble(mode Mode, param, eb float64, dims []int, syms []int32, unpred []float64, flags []byte, minLog float64, mr *mixedResult) ([]byte, error) {
	var payload bytes.Buffer
	payload.WriteString(magic)
	payload.WriteByte(version)
	payload.WriteByte(byte(mode))
	var streamFlags byte
	if mr != nil {
		streamFlags |= flagRegression
	}
	payload.WriteByte(streamFlags)
	payload.WriteByte(safecast.U8(len(dims)))
	for _, d := range dims {
		binWrite(&payload, safecast.U32(d))
	}
	binWrite(&payload, math.Float64bits(eb))
	binWrite(&payload, math.Float64bits(param))
	binWrite(&payload, math.Float64bits(minLog))
	binWrite(&payload, safecast.U32(len(unpred)))
	if mr != nil {
		binWrite(&payload, safecast.U32(len(mr.modes)))
		// Pack the per-block mode flags 64 at a time through the bit
		// writer's word path; the layout matches one WriteBit per flag.
		var mw bitio.Writer
		var acc uint64
		nAcc := 0
		for _, m := range mr.modes {
			acc <<= 1
			if m {
				acc |= 1
			}
			if nAcc++; nAcc == 64 {
				mw.WriteBits(acc, 64)
				acc, nAcc = 0, 0
			}
		}
		mw.WriteBits(acc, nAcc)
		payload.Write(mw.Bytes())
		binWrite(&payload, safecast.U32(len(mr.qcoeffs)))
		for _, q := range mr.qcoeffs {
			binWrite(&payload, safecast.Bits32(safecast.I32From64(q)))
		}
	}

	// Huffman stage over the symbol alphabet actually used. The
	// histogram and codec tables come from the scratch pool so repeated
	// compressions reuse their half-megabyte of state.
	es := encScratchPool.Get().(*encScratch)
	defer encScratchPool.Put(es)
	if cap(es.freqs) < 2*quantRadius {
		es.freqs = make([]int64, 2*quantRadius)
	} else {
		es.freqs = es.freqs[:2*quantRadius]
		clear(es.freqs)
	}
	freqs := es.freqs
	for _, s := range syms {
		freqs[s]++
	}
	var hw bitio.Writer
	if len(syms) > 0 {
		codec, err := huffman.BuildInto(&es.codec, freqs)
		if err != nil {
			return nil, err
		}
		codec.WriteTable(&hw)
		for _, s := range syms {
			codec.Encode(&hw, int(s))
		}
	}
	hb := hw.Bytes()
	binWrite(&payload, safecast.U32(len(hb)))
	payload.Write(hb)
	for _, u := range unpred {
		binWrite(&payload, math.Float64bits(u))
	}
	if mode == ModePWREL {
		var fw bitio.Writer
		for _, f := range flags {
			fw.WriteBits(uint64(f), 2)
		}
		payload.Write(fw.Bytes())
	}

	// Final lossless pass (ZStd stand-in). On write/close errors the
	// writer is abandoned to the GC rather than pooled in an unknown
	// state (bytes.Buffer writes cannot fail, so this never happens in
	// practice).
	var out bytes.Buffer
	out.WriteString(magic)
	binWrite(&out, safecast.U64(payload.Len()))
	fw := flateWriterPool.Get().(*flate.Writer)
	fw.Reset(&out)
	if _, err := fw.Write(payload.Bytes()); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	fw.Reset(io.Discard)
	flateWriterPool.Put(fw)
	return out.Bytes(), nil
}

func binWrite(w io.Writer, v interface{}) {
	// bytes.Buffer writes cannot fail; ignore the error by contract.
	_ = binary.Write(w, binary.LittleEndian, v)
}

// Decompress reverses Compress, returning the reconstructed values and
// dimensions. Any inconsistency in the stream yields an error wrapping
// ErrCorrupt; wildly corrupted metadata can instead make the call slow
// (bounded by maxElements), which the fault-injection harness
// classifies as a timeout, as the paper observed with real SZ.
func Decompress(buf []byte) ([]float64, []int, error) {
	if len(buf) < len(magic)+8 {
		return nil, nil, fmt.Errorf("%w: short buffer", ErrCorrupt)
	}
	if string(buf[:len(magic)]) != magic {
		return nil, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	payloadLen := binary.LittleEndian.Uint64(buf[len(magic):])
	comp := buf[len(magic)+8:]
	if payloadLen > uint64(maxElements)*10+(1<<20) {
		return nil, nil, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, payloadLen)
	}
	if payloadLen > uint64(len(comp))*maxDeflateRatio+64 {
		return nil, nil, fmt.Errorf("%w: payload length %d exceeds what %d compressed bytes can inflate to", ErrCorrupt, payloadLen, len(comp))
	}
	payload, err := inflate(comp, int(payloadLen)) //arcvet:ignore mathbits payloadLen <= maxElements*10+1MiB < 2^31, checked above
	if err != nil {
		return nil, nil, fmt.Errorf("%w: lossless stage: %v", ErrCorrupt, err)
	}
	return parsePayload(payload)
}

// maxDeflateRatio bounds DEFLATE's expansion: no deflate stream
// inflates to more than ~1032x its compressed size, so a header
// claiming more is corrupt. Rejecting it up front keeps decoder
// allocations proportional to the input actually supplied.
const maxDeflateRatio = 1032

// inflater bundles a reusable DEFLATE reader with its source adapter.
// flate.NewReader allocates roughly 45 KiB of window and Huffman state
// per call; resetting one instance via flate.Resetter amortizes that
// across decompressions.
type inflater struct {
	src bytes.Reader
	fr  io.ReadCloser // satisfies flate.Resetter by construction
}

var inflaterPool = sync.Pool{New: func() any {
	inf := new(inflater)
	inf.fr = flate.NewReader(&inf.src)
	return inf
}}

// inflate decompresses src, expecting exactly want bytes. The output
// buffer grows geometrically as bytes actually arrive instead of being
// pre-sized from the header, so a corrupted length field costs memory
// proportional to what the DEFLATE stream really yields.
func inflate(src []byte, want int) ([]byte, error) {
	inf, ok := inflaterPool.Get().(*inflater)
	if !ok {
		// Unreachable (the pool's New returns *inflater); a zero value
		// is still fine — the Resetter check below sees a nil fr and
		// builds the reader.
		inf = new(inflater)
	}
	defer func() {
		// Detach the caller's buffer before pooling so the pool never
		// pins input streams.
		inf.src.Reset(nil)
		inflaterPool.Put(inf)
	}()
	inf.src.Reset(src)
	if rr, ok := inf.fr.(flate.Resetter); ok {
		if err := rr.Reset(&inf.src, nil); err != nil {
			return nil, err
		}
	} else {
		// Unreachable with the standard library (flate readers implement
		// Resetter), but a fresh reader keeps this path correct anyway.
		inf.fr = flate.NewReader(&inf.src)
	}
	fr := inf.fr
	buf := make([]byte, min(want, 64<<10))
	read := 0
	for {
		if _, err := io.ReadFull(fr, buf[read:]); err != nil {
			return nil, err
		}
		read = len(buf)
		if read == want {
			return buf, nil
		}
		grown := make([]byte, min(read*2, want))
		copy(grown, buf)
		buf = grown
	}
}

// decCodecPool recycles decode-side Huffman codecs across parsePayload
// calls (ReadTableMaxInto reuses the tables in place).
var decCodecPool = sync.Pool{New: func() any { return new(huffman.Codec) }}

func parsePayload(p []byte) ([]float64, []int, error) {
	rd := &byteReader{buf: p}
	if string(rd.take(len(magic))) != magic {
		return nil, nil, fmt.Errorf("%w: bad inner magic", ErrCorrupt)
	}
	if v := rd.u8(); v != version {
		return nil, nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	mode := Mode(rd.u8())
	streamFlags := rd.u8()
	if streamFlags&^flagRegression != 0 {
		return nil, nil, fmt.Errorf("%w: unknown stream flags %#x", ErrCorrupt, streamFlags)
	}
	ndims := int(rd.u8())
	if rd.err != nil || ndims < 1 || ndims > 3 {
		return nil, nil, fmt.Errorf("%w: bad ndims", ErrCorrupt)
	}
	dims := make([]int, ndims)
	n := 1
	for i := range dims {
		d := int(rd.u32())
		if d <= 0 || d > maxDim {
			return nil, nil, fmt.Errorf("%w: bad dimension %d", ErrCorrupt, d)
		}
		dims[i] = d
		n *= d
		if n > maxElements {
			return nil, nil, fmt.Errorf("%w: element count overflows cap", ErrCorrupt)
		}
	}
	eb := math.Float64frombits(rd.u64())
	_ = math.Float64frombits(rd.u64()) // original user parameter, informational
	minLog := math.Float64frombits(rd.u64())
	nUnpred := int(rd.u32())
	var modes []bool
	var qcoeffs []int64
	if streamFlags&flagRegression != 0 {
		nBlocks := int(rd.u32())
		wantBlocks := newRegGrid(dims).blocks
		if rd.err != nil || nBlocks != wantBlocks {
			return nil, nil, fmt.Errorf("%w: block count %d != %d", ErrCorrupt, nBlocks, wantBlocks)
		}
		mb := rd.take((nBlocks + 7) / 8)
		if rd.err != nil {
			return nil, nil, fmt.Errorf("%w: truncated mode bits", ErrCorrupt)
		}
		br := bitio.NewReader(mb)
		modes = make([]bool, nBlocks)
		nReg := 0
		for i := range modes {
			b, err := br.ReadBit()
			if err != nil {
				return nil, nil, fmt.Errorf("%w: mode bits", ErrCorrupt)
			}
			modes[i] = b == 1
			if modes[i] {
				nReg++
			}
		}
		nc := int(rd.u32())
		if rd.err != nil || nc != nReg*(ndims+1) {
			return nil, nil, fmt.Errorf("%w: coefficient count %d", ErrCorrupt, nc)
		}
		qcoeffs = make([]int64, nc)
		for i := range qcoeffs {
			qcoeffs[i] = int64(safecast.SignBits32(rd.u32()))
		}
	}
	huffLen := int(rd.u32())
	if rd.err != nil {
		return nil, nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if nUnpred < 0 || nUnpred > n {
		return nil, nil, fmt.Errorf("%w: unpredictable count %d out of range", ErrCorrupt, nUnpred)
	}
	if eb <= 0 || math.IsNaN(eb) || math.IsInf(eb, 0) {
		return nil, nil, fmt.Errorf("%w: invalid error bound", ErrCorrupt)
	}
	hb := rd.take(huffLen)
	if rd.err != nil {
		return nil, nil, fmt.Errorf("%w: truncated huffman section", ErrCorrupt)
	}
	// Every decoded symbol costs at least one bit, so the Huffman
	// section must hold at least n bits; a shorter section means the
	// count metadata is corrupt. Checking before sizing the symbol and
	// reconstruction buffers keeps allocations proportional to the
	// stream instead of to header-claimed dimensions.
	if n > 8*huffLen {
		return nil, nil, wrapCorrupt("element count %d exceeds huffman section capacity (%d bytes)", n, huffLen)
	}
	syms := make([]int32, n)
	if n > 0 {
		br := bitio.NewReader(hb)
		// The decode codec's tables (including the 24 KiB LUT) are
		// pooled; ReadTableMaxInto rebuilds them in place. The codec is
		// self-contained (no views of hb survive in it), so pooling it
		// after an error is safe.
		cd, ok := decCodecPool.Get().(*huffman.Codec)
		if !ok {
			cd = new(huffman.Codec) // unreachable: the pool's New returns *huffman.Codec
		}
		defer decCodecPool.Put(cd)
		codec, err := huffman.ReadTableMaxInto(cd, br, 2*quantRadius)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if codec.NumSymbols != 2*quantRadius {
			return nil, nil, fmt.Errorf("%w: alphabet size %d", ErrCorrupt, codec.NumSymbols)
		}
		for i := 0; i < n; i++ {
			s, err := codec.Decode(br)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: symbol %d: %v", ErrCorrupt, i, err)
			}
			syms[i] = int32(s) //arcvet:ignore mathbits s < NumSymbols == 2*quantRadius, checked above
		}
	}
	unpred := make([]float64, nUnpred)
	for i := range unpred {
		unpred[i] = math.Float64frombits(rd.u64())
	}
	if rd.err != nil {
		return nil, nil, fmt.Errorf("%w: truncated unpredictables", ErrCorrupt)
	}
	var recon []float64
	var err error
	if streamFlags&flagRegression != 0 {
		recon, err = dequantizeMixed(syms, dims, eb, unpred, modes, qcoeffs)
	} else {
		recon, err = dequantize(syms, dims, eb, unpred)
	}
	if err != nil {
		return nil, nil, err
	}
	if mode == ModePWREL {
		flagBytes := rd.take((2*n + 7) / 8)
		if rd.err != nil {
			return nil, nil, fmt.Errorf("%w: truncated flag stream", ErrCorrupt)
		}
		fr := bitio.NewReader(flagBytes)
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			f, err := fr.ReadBits(2)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: flag stream: %v", ErrCorrupt, err)
			}
			switch f {
			case 2:
				out[i] = 0
			case 1:
				out[i] = -math.Exp2(recon[i])
			default:
				out[i] = math.Exp2(recon[i])
			}
		}
		_ = minLog
		return out, dims, nil
	}
	return recon, dims, nil
}

// byteReader is a bounds-checked little-endian reader that records the
// first failure rather than panicking, so corrupted streams surface as
// errors.
type byteReader struct {
	buf []byte
	pos int
	err error
}

func (r *byteReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *byteReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *byteReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *byteReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
