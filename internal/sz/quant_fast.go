package sz

// Batched residual quantization — the hot loops of the SZ pipeline,
// restructured from the per-element predictor dispatch in quantizeRef
// into branch-light passes over contiguous rows.
//
// The loop is latency-bound, not throughput-bound: every prediction
// consumes the previous element's reconstruction, so the out-of-order
// engine hides most per-element bookkeeping under that serial chain.
// Two distinct correctness regimes make the fast paths possible:
//
//   - Prediction and reconstruction arithmetic must match the decoder
//     bit for bit — the encoder's bound guard is only meaningful if the
//     decoder reproduces the same reconstruction chain. These
//     expressions are kept *structurally identical* to the reference,
//     including the explicit zero terms at domain boundaries (IEEE-754
//     addition is not associative, and Go correctly never folds x+0 for
//     floats: 0.0 + -0.0 is +0.0). Missing neighbor rows are
//     substituted with a preallocated zero row, collapsing every
//     boundary variant into the one interior expression.
//
//   - Code *selection* is the encoder's private choice: the decoder
//     only evaluates p + code*twoEB, and the guard below re-checks the
//     exact reconstruction against the bound for whatever code was
//     picked. The fast path therefore selects codes with the
//     RoundToEven intrinsic over a precomputed reciprocal — one ROUNDSD
//     and a multiply on the critical path instead of a non-inlinable
//     math.Round call and a divide — which may (at exact half-way
//     quotients, probability ~ULP) pick a neighboring code; both codes
//     satisfy the bound.
//
// The remaining latency is attacked by software pipelining: row x+1
// depends on row x only at columns <= k-1, so interleaving element
// (x, k) with (x+1, k-2) runs two reconstruction chains concurrently.
// The per-element expressions and their evaluation order are untouched
// — only the schedule across independent elements changes — so the
// interleaved kernels stay bit-identical. Unpredictable values from
// the second row of a pair are staged in a scratch buffer and flushed
// after the pair, keeping the pool in raster order.
//
// Differential tests in quant_fast_test.go pin every path to its
// reference.

import "math"

// quantOne quantizes one value against its prediction. It returns the
// reconstructed value, the symbol, and whether the value was
// predictable; unpredictable values reconstruct exactly. Small enough
// to inline (RoundToEven and Abs are compiler intrinsics).
func quantOne(v, p, eb, invTwoEB, twoEB float64) (float64, int32, bool) {
	code := math.RoundToEven((v - p) * invTwoEB)
	// A NaN code needs no explicit check: NaN fails the < comparison.
	if math.Abs(code) < quantRadius-1 {
		r := p + code*twoEB
		// Guard against floating-point rounding pushing the
		// reconstruction out of bounds. This also catches any code the
		// reciprocal selection placed one step off the reference choice.
		if math.Abs(r-v) <= eb {
			return r, int32(code) + quantRadius, true
		}
	}
	return v, 0, false
}

// quantize runs the prediction + quantization stage, producing the
// symbol stream (0 = unpredictable, otherwise code+quantRadius) and
// the unpredictable values in order of appearance. It dispatches to a
// dimension-specialized batched kernel; quantizeRef is the retained
// scalar reference.
func quantize(data []float64, dims []int, eb float64) (syms []int32, unpred []float64) {
	n := len(data)
	syms = make([]int32, n)
	recon := make([]float64, n)
	switch len(dims) {
	case 2:
		unpred = quantize2D(data, dims[0], dims[1], eb, syms, recon)
	case 3:
		unpred = quantize3D(data, dims[0], dims[1], dims[2], eb, syms, recon)
	default:
		unpred = quantize1D(data, eb, syms, recon)
	}
	return syms, unpred
}

func quantize1D(data []float64, eb float64, syms []int32, recon []float64) (unpred []float64) {
	twoEB := 2 * eb
	invTwoEB := 1 / twoEB
	left := 0.0
	for i, v := range data {
		r, s, ok := quantOne(v, left, eb, invTwoEB, twoEB)
		syms[i] = s
		recon[i] = r
		if !ok {
			unpred = append(unpred, v)
		}
		left = r
	}
	return unpred
}

// rowSkew is the column offset between the two interleaved rows of a
// software-pipelined pair: element (x+1, k-rowSkew) only reads row x at
// columns k-rowSkew and k-rowSkew-1, both already written.
const rowSkew = 2

func quantize2D(data []float64, d0, d1 int, eb float64, syms []int32, recon []float64) (unpred []float64) {
	twoEB := 2 * eb
	invTwoEB := 1 / twoEB
	zeroRow := make([]float64, d1)
	var pending []float64
	x := 0
	for ; x+1 < d0; x += 2 {
		base0 := x * d1
		base1 := base0 + d1
		up0 := zeroRow
		if x > 0 {
			up0 = recon[base0-d1 : base0 : base0]
		}
		row0 := recon[base0 : base0+d1 : base0+d1]
		row1 := recon[base1 : base1+d1 : base1+d1]
		src0 := data[base0 : base0+d1 : base0+d1]
		src1 := data[base1 : base1+d1 : base1+d1]
		ss0 := syms[base0 : base0+d1 : base0+d1]
		ss1 := syms[base1 : base1+d1 : base1+d1]
		pending = pending[:0]
		var left0, left1 float64
		for k := 0; k < d1+rowSkew; k++ {
			if k < d1 {
				var p float64
				if k == 0 {
					// y == 0: left and up-left are zero (explicit zero
					// terms keep the expression identical to the
					// reference stencil).
					p = 0 + up0[0] - 0
				} else {
					p = left0 + up0[k] - up0[k-1]
				}
				r, s, ok := quantOne(src0[k], p, eb, invTwoEB, twoEB)
				ss0[k] = s
				row0[k] = r
				if !ok {
					unpred = append(unpred, src0[k])
				}
				left0 = r
			}
			if j := k - rowSkew; j >= 0 {
				var p float64
				if j == 0 {
					p = 0 + row0[0] - 0
				} else {
					p = left1 + row0[j] - row0[j-1]
				}
				r, s, ok := quantOne(src1[j], p, eb, invTwoEB, twoEB)
				ss1[j] = s
				row1[j] = r
				if !ok {
					pending = append(pending, src1[j])
				}
				left1 = r
			}
		}
		unpred = append(unpred, pending...)
	}
	for ; x < d0; x++ { // odd trailing row
		base := x * d1
		up := zeroRow
		if x > 0 {
			up = recon[base-d1 : base : base]
		}
		row := recon[base : base+d1 : base+d1]
		src := data[base : base+d1 : base+d1]
		ss := syms[base : base+d1 : base+d1]
		p := 0 + up[0] - 0
		left, s, ok := quantOne(src[0], p, eb, invTwoEB, twoEB)
		ss[0] = s
		row[0] = left
		if !ok {
			unpred = append(unpred, src[0])
		}
		for y := 1; y < d1; y++ {
			p := left + up[y] - up[y-1]
			r, s, ok := quantOne(src[y], p, eb, invTwoEB, twoEB)
			ss[y] = s
			row[y] = r
			if !ok {
				unpred = append(unpred, src[y])
			}
			left = r
		}
	}
	return unpred
}

func quantize3D(data []float64, d0, d1, d2 int, eb float64, syms []int32, recon []float64) (unpred []float64) {
	twoEB := 2 * eb
	invTwoEB := 1 / twoEB
	zeroRow := make([]float64, d2)
	planeStride := d1 * d2
	var pending []float64
	for z := 0; z < d0; z++ {
		y := 0
		for ; y+1 < d1; y += 2 { // software-pipelined row pairs
			base0 := z*planeStride + y*d2
			base1 := base0 + d2
			row0 := recon[base0 : base0+d2 : base0+d2]
			row1 := recon[base1 : base1+d2 : base1+d2]
			src0 := data[base0 : base0+d2 : base0+d2]
			src1 := data[base1 : base1+d2 : base1+d2]
			ss0 := syms[base0 : base0+d2 : base0+d2]
			ss1 := syms[base1 : base1+d2 : base1+d2]
			up0, back0, backup0 := zeroRow, zeroRow, zeroRow
			back1, backup1 := zeroRow, zeroRow
			if y > 0 {
				up0 = recon[base0-d2 : base0 : base0]
			}
			if z > 0 {
				back0 = recon[base0-planeStride : base0-planeStride+d2 : base0-planeStride+d2]
				back1 = recon[base1-planeStride : base1-planeStride+d2 : base1-planeStride+d2]
				backup1 = back0
				if y > 0 {
					backup0 = recon[base0-planeStride-d2 : base0-planeStride : base0-planeStride]
				}
			}
			pending = pending[:0]
			var left0, left1 float64
			for k := 0; k < d2+rowSkew; k++ {
				if k < d2 {
					var p float64
					if k == 0 {
						// x == 0: every left-shifted term is zero; term
						// order matches the reference Lorenzo expression
						// exactly.
						p = 0 + up0[0] + back0[0] - 0 - 0 - backup0[0] + 0
					} else {
						p = left0 + up0[k] + back0[k] - up0[k-1] - back0[k-1] - backup0[k] + backup0[k-1]
					}
					r, s, ok := quantOne(src0[k], p, eb, invTwoEB, twoEB)
					ss0[k] = s
					row0[k] = r
					if !ok {
						unpred = append(unpred, src0[k])
					}
					left0 = r
				}
				if j := k - rowSkew; j >= 0 {
					var p float64
					if j == 0 {
						p = 0 + row0[0] + back1[0] - 0 - 0 - backup1[0] + 0
					} else {
						p = left1 + row0[j] + back1[j] - row0[j-1] - back1[j-1] - backup1[j] + backup1[j-1]
					}
					r, s, ok := quantOne(src1[j], p, eb, invTwoEB, twoEB)
					ss1[j] = s
					row1[j] = r
					if !ok {
						pending = append(pending, src1[j])
					}
					left1 = r
				}
			}
			unpred = append(unpred, pending...)
		}
		for ; y < d1; y++ { // odd trailing row of the plane
			base := z*planeStride + y*d2
			row := recon[base : base+d2 : base+d2]
			src := data[base : base+d2 : base+d2]
			ss := syms[base : base+d2 : base+d2]
			up, back, backup := zeroRow, zeroRow, zeroRow
			if y > 0 {
				up = recon[base-d2 : base : base]
			}
			if z > 0 {
				back = recon[base-planeStride : base-planeStride+d2 : base-planeStride+d2]
				if y > 0 {
					backup = recon[base-planeStride-d2 : base-planeStride : base-planeStride]
				}
			}
			p := 0 + up[0] + back[0] - 0 - 0 - backup[0] + 0
			left, s, ok := quantOne(src[0], p, eb, invTwoEB, twoEB)
			ss[0] = s
			row[0] = left
			if !ok {
				unpred = append(unpred, src[0])
			}
			for x := 1; x < d2; x++ {
				p := left + up[x] + back[x] - up[x-1] - back[x-1] - backup[x] + backup[x-1]
				r, s, ok := quantOne(src[x], p, eb, invTwoEB, twoEB)
				ss[x] = s
				row[x] = r
				if !ok {
					unpred = append(unpred, src[x])
				}
				left = r
			}
		}
	}
	return unpred
}

// dequantize reverses quantize given the symbol stream and the
// unpredictable values, through the same dimension-specialized batched
// kernels; dequantizeRef is the retained scalar reference.
func dequantize(syms []int32, dims []int, eb float64, unpred []float64) ([]float64, error) {
	n := len(syms)
	recon := make([]float64, n)
	var ok bool
	switch len(dims) {
	case 2:
		ok = dequantize2D(syms, dims[0], dims[1], eb, unpred, recon)
	case 3:
		ok = dequantize3D(syms, dims[0], dims[1], dims[2], eb, unpred, recon)
	default:
		ok = dequantize1D(syms, eb, unpred, recon)
	}
	if !ok {
		return nil, wrapCorrupt("unpredictable pool exhausted")
	}
	return recon, nil
}

func dequantize1D(syms []int32, eb float64, unpred []float64, recon []float64) bool {
	twoEB := 2 * eb
	left := 0.0
	ui := 0
	for i, s := range syms {
		if s == 0 {
			if ui >= len(unpred) {
				return false
			}
			left = unpred[ui]
			ui++
		} else {
			left += float64(s-quantRadius) * twoEB
		}
		recon[i] = left
	}
	return true
}

func dequantize2D(syms []int32, d0, d1 int, eb float64, unpred []float64, recon []float64) bool {
	twoEB := 2 * eb
	up := make([]float64, d1)
	ui := 0
	for x := 0; x < d0; x++ {
		base := x * d1
		row := recon[base : base+d1 : base+d1]
		ss := syms[base : base+d1 : base+d1]
		var left float64
		if s := ss[0]; s == 0 {
			if ui >= len(unpred) {
				return false
			}
			left = unpred[ui]
			ui++
		} else {
			p := 0 + up[0] - 0
			left = p + float64(s-quantRadius)*twoEB
		}
		row[0] = left
		for y := 1; y < d1; y++ {
			if s := ss[y]; s == 0 {
				if ui >= len(unpred) {
					return false
				}
				left = unpred[ui]
				ui++
			} else {
				p := left + up[y] - up[y-1]
				left = p + float64(s-quantRadius)*twoEB
			}
			row[y] = left
		}
		up = row
	}
	return true
}

func dequantize3D(syms []int32, d0, d1, d2 int, eb float64, unpred []float64, recon []float64) bool {
	twoEB := 2 * eb
	zeroRow := make([]float64, d2)
	planeStride := d1 * d2
	ui := 0
	for z := 0; z < d0; z++ {
		for y := 0; y < d1; y++ {
			base := z*planeStride + y*d2
			row := recon[base : base+d2 : base+d2]
			ss := syms[base : base+d2 : base+d2]
			up, back, backup := zeroRow, zeroRow, zeroRow
			if y > 0 {
				up = recon[base-d2 : base : base]
			}
			if z > 0 {
				back = recon[base-planeStride : base-planeStride+d2 : base-planeStride+d2]
				if y > 0 {
					backup = recon[base-planeStride-d2 : base-planeStride : base-planeStride]
				}
			}
			var left float64
			if s := ss[0]; s == 0 {
				if ui >= len(unpred) {
					return false
				}
				left = unpred[ui]
				ui++
			} else {
				p := 0 + up[0] + back[0] - 0 - 0 - backup[0] + 0
				left = p + float64(s-quantRadius)*twoEB
			}
			row[0] = left
			for x := 1; x < d2; x++ {
				if s := ss[x]; s == 0 {
					if ui >= len(unpred) {
						return false
					}
					left = unpred[ui]
					ui++
				} else {
					p := left + up[x] + back[x] - up[x-1] - back[x-1] - backup[x] + backup[x-1]
					left = p + float64(s-quantRadius)*twoEB
				}
				row[x] = left
			}
		}
	}
	return true
}

// mixedQuantizer carries the state shared by the batched block kernels
// of quantizeMixed.
type mixedQuantizer struct {
	data     []float64
	recon    []float64
	res      *mixedResult
	eb       float64
	twoEB    float64
	invTwoEB float64
	dims     []int
	zeroRow  []float64
}

// cell quantizes one value and appends its symbol (and, when
// unpredictable, its value) to the result streams.
func (q *mixedQuantizer) cell(idx int, p float64) {
	v := q.data[idx]
	r, s, ok := quantOne(v, p, q.eb, q.invTwoEB, q.twoEB)
	q.res.syms = append(q.res.syms, s)
	q.recon[idx] = r
	if !ok {
		q.res.unpred = append(q.res.unpred, v)
	}
}

// lorenzoBlock2D quantizes one block with the Lorenzo predictor.
// Neighbors outside the block but inside the domain are already
// reconstructed (blocks are visited in raster order), so only the
// domain boundary substitutes the zero row.
func (q *mixedQuantizer) lorenzoBlock2D(lo, hi [3]int) {
	d1 := q.dims[1]
	for x := lo[0]; x < hi[0]; x++ {
		base := x * d1
		row := q.recon[base : base+d1 : base+d1]
		up := q.zeroRow
		if x > 0 {
			up = q.recon[base-d1 : base : base]
		}
		y := lo[1]
		if y == 0 {
			p := 0 + up[0] - 0
			q.cell(base, p)
			y = 1
		}
		for ; y < hi[1]; y++ {
			p := row[y-1] + up[y] - up[y-1]
			q.cell(base+y, p)
		}
	}
}

func (q *mixedQuantizer) lorenzoBlock3D(lo, hi [3]int) {
	d1, d2 := q.dims[1], q.dims[2]
	planeStride := d1 * d2
	for z := lo[0]; z < hi[0]; z++ {
		for y := lo[1]; y < hi[1]; y++ {
			base := z*planeStride + y*d2
			row := q.recon[base : base+d2 : base+d2]
			up, back, backup := q.zeroRow, q.zeroRow, q.zeroRow
			if y > 0 {
				up = q.recon[base-d2 : base : base]
			}
			if z > 0 {
				back = q.recon[base-planeStride : base-planeStride+d2 : base-planeStride+d2]
				if y > 0 {
					backup = q.recon[base-planeStride-d2 : base-planeStride : base-planeStride]
				}
			}
			x := lo[2]
			if x == 0 {
				p := 0 + up[0] + back[0] - 0 - 0 - backup[0] + 0
				q.cell(base, p)
				x = 1
			}
			for ; x < hi[2]; x++ {
				p := row[x-1] + up[x] + back[x] - up[x-1] - back[x-1] - backup[x] + backup[x-1]
				q.cell(base+x, p)
			}
		}
	}
}

// regBlock2D quantizes one block against its regression model. The
// row-constant part of the model is hoisted out of the inner loop;
// regPredict accumulates strictly left-to-right, so the hoisting is
// exactly associative and bit-identical to the reference.
func (q *mixedQuantizer) regBlock2D(lo, hi [3]int, coeffs []float64) {
	d1 := q.dims[1]
	for x := lo[0]; x < hi[0]; x++ {
		base := x * d1
		rowBase := coeffs[0] + coeffs[1]*float64(x-lo[0])
		for y := lo[1]; y < hi[1]; y++ {
			p := rowBase + coeffs[2]*float64(y-lo[1])
			q.cell(base+y, p)
		}
	}
}

func (q *mixedQuantizer) regBlock3D(lo, hi [3]int, coeffs []float64) {
	d1, d2 := q.dims[1], q.dims[2]
	planeStride := d1 * d2
	for z := lo[0]; z < hi[0]; z++ {
		zBase := coeffs[0] + coeffs[1]*float64(z-lo[0])
		for y := lo[1]; y < hi[1]; y++ {
			base := z*planeStride + y*d2
			rowBase := zBase + coeffs[2]*float64(y-lo[1])
			for x := lo[2]; x < hi[2]; x++ {
				p := rowBase + coeffs[3]*float64(x-lo[2])
				q.cell(base+x, p)
			}
		}
	}
}

// quantizeMixed runs prediction + quantization with per-block predictor
// selection. Blocks are visited in raster order and cells within a
// block in row-major order, which guarantees every Lorenzo neighbor is
// already reconstructed. Model fitting and selection are unchanged from
// the reference; the per-cell quantization runs through the batched
// block kernels above.
func quantizeMixed(data []float64, dims []int, eb float64) *mixedResult {
	g := newRegGrid(dims)
	nd := len(dims)
	res := &mixedResult{
		syms:  make([]int32, 0, len(data)),
		modes: make([]bool, g.blocks),
	}
	rowLen := dims[nd-1]
	q := &mixedQuantizer{
		data:     data,
		recon:    make([]float64, len(data)),
		res:      res,
		eb:       eb,
		twoEB:    2 * eb,
		invTwoEB: 1 / (2 * eb),
		dims:     dims,
		zeroRow:  make([]float64, rowLen),
	}
	for b := 0; b < g.blocks; b++ {
		lo, hi := g.blockBounds(b)
		var coeffs []float64
		var qc []int64
		useReg := false
		if fit, ok := fitRegression(data, dims, lo, hi); ok {
			if qq, ok2 := quantizeCoeffs(fit, eb); ok2 {
				deq := dequantizeCoeffs(qq, eb)
				if regressionWins(data, dims, lo, hi, deq, nd) {
					coeffs, qc, useReg = deq, qq, true
				}
			}
		}
		res.modes[b] = useReg
		switch {
		case useReg && nd == 2:
			res.qcoeffs = append(res.qcoeffs, qc...)
			q.regBlock2D(lo, hi, coeffs)
		case useReg:
			res.qcoeffs = append(res.qcoeffs, qc...)
			q.regBlock3D(lo, hi, coeffs)
		case nd == 2:
			q.lorenzoBlock2D(lo, hi)
		default:
			q.lorenzoBlock3D(lo, hi)
		}
	}
	return res
}
