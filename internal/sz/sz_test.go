package sz

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// smoothField2D builds a correlated 2D field compressors do well on.
func smoothField2D(nx, ny int, seed int64) ([]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, nx*ny)
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			fx, fy := float64(x)/float64(nx), float64(y)/float64(ny)
			data[x*ny+y] = 10*math.Sin(3*fx*math.Pi)*math.Cos(2*fy*math.Pi) +
				0.05*rng.NormFloat64()
		}
	}
	return data, []int{nx, ny}
}

func smoothField3D(nx, ny, nz int, seed int64) ([]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, nx*ny*nz)
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				fx, fy, fz := float64(x)/float64(nx), float64(y)/float64(ny), float64(z)/float64(nz)
				data[i] = 100*math.Sin(2*fx*math.Pi)*math.Sin(2*fy*math.Pi)*math.Cos(fz*math.Pi) + 0.01*rng.NormFloat64()
				i++
			}
		}
	}
	return data, []int{nz, ny, nx}
}

func TestABSRoundTripBoundHolds(t *testing.T) {
	for _, eb := range []float64{0.1, 0.01, 1.0} {
		data, dims := smoothField2D(64, 64, 1)
		buf, err := Compress(data, dims, Options{Mode: ModeABS, ErrorBound: eb})
		if err != nil {
			t.Fatal(err)
		}
		got, gotDims, err := Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotDims) != 2 || gotDims[0] != 64 || gotDims[1] != 64 {
			t.Fatalf("dims %v", gotDims)
		}
		for i := range data {
			if d := math.Abs(got[i] - data[i]); d > eb+1e-12 {
				t.Fatalf("eb=%g: element %d violates bound: |%g - %g| = %g", eb, i, got[i], data[i], d)
			}
		}
	}
}

func TestABS1DAnd3D(t *testing.T) {
	// 1D
	n := 5000
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i) / 50)
	}
	buf, err := Compress(data, []int{n}, Options{Mode: ModeABS, ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(got[i]-data[i]) > 1e-3+1e-12 {
			t.Fatalf("1D bound violated at %d", i)
		}
	}
	// 3D
	d3, dims3 := smoothField3D(16, 16, 16, 2)
	buf3, err := Compress(d3, dims3, Options{Mode: ModeABS, ErrorBound: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	got3, _, err := Decompress(buf3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d3 {
		if math.Abs(got3[i]-d3[i]) > 0.05+1e-12 {
			t.Fatalf("3D bound violated at %d", i)
		}
	}
}

func TestCompressionRatioIsLossy(t *testing.T) {
	data, dims := smoothField2D(128, 128, 3)
	buf, err := Compress(data, dims, Options{Mode: ModeABS, ErrorBound: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	raw := len(data) * 8
	cr := float64(raw) / float64(len(buf))
	if cr < 4 {
		t.Fatalf("compression ratio %.1f too low for a smooth field", cr)
	}
	t.Logf("CR = %.1fx (%d -> %d bytes)", cr, raw, len(buf))
}

func TestPWRELBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 4096
	data := make([]float64, n)
	for i := range data {
		// Mix of magnitudes, signs, and exact zeros.
		switch i % 7 {
		case 0:
			data[i] = 0
		case 1:
			data[i] = -math.Exp(rng.Float64() * 10)
		default:
			data[i] = math.Exp(rng.Float64()*10 - 5)
		}
	}
	rel := 0.01
	buf, err := Compress(data, []int{n}, Options{Mode: ModePWREL, ErrorBound: rel})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] == 0 {
			if got[i] != 0 {
				t.Fatalf("zero not preserved at %d: %g", i, got[i])
			}
			continue
		}
		relErr := math.Abs(got[i]-data[i]) / math.Abs(data[i])
		if relErr > rel+1e-9 {
			t.Fatalf("pwrel violated at %d: rel err %g > %g", i, relErr, rel)
		}
		if (got[i] < 0) != (data[i] < 0) {
			t.Fatalf("sign flipped at %d", i)
		}
	}
}

func TestPSNRTargetMet(t *testing.T) {
	data, dims := smoothField2D(64, 64, 5)
	target := 90.0
	buf, err := Compress(data, dims, Options{Mode: ModePSNR, ErrorBound: target})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := valueRange(data)
	var sq float64
	for i := range data {
		d := got[i] - data[i]
		sq += d * d
	}
	rmse := math.Sqrt(sq / float64(len(data)))
	psnr := 20 * math.Log10((hi-lo)/rmse)
	if psnr < target {
		t.Fatalf("PSNR %.2f below target %.2f", psnr, target)
	}
	t.Logf("achieved PSNR %.2f dB (target %.2f)", psnr, target)
}

func TestUnpredictableValues(t *testing.T) {
	// Wild data defeats the predictor; values must still round-trip
	// within bound via the unpredictable pool.
	rng := rand.New(rand.NewSource(6))
	n := 2000
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64() * 1e30 * math.Pow(-1, float64(i%2))
	}
	buf, err := Compress(data, []int{n}, Options{Mode: ModeABS, ErrorBound: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(got[i]-data[i]) > 1e-6 {
			t.Fatalf("unpredictable path violated bound at %d", i)
		}
	}
}

func TestNaNAndInfSurvive(t *testing.T) {
	data := []float64{1, math.NaN(), math.Inf(1), math.Inf(-1), 2}
	buf, err := Compress(data, []int{5}, Options{Mode: ModeABS, ErrorBound: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got[1]) || !math.IsInf(got[2], 1) || !math.IsInf(got[3], -1) {
		t.Fatalf("special values mangled: %v", got)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Compress([]float64{1}, []int{2}, Options{Mode: ModeABS, ErrorBound: 0.1}); err == nil {
		t.Fatal("dims mismatch must fail")
	}
	if _, err := Compress([]float64{1}, []int{1}, Options{Mode: ModeABS, ErrorBound: 0}); err == nil {
		t.Fatal("zero bound must fail")
	}
	if _, err := Compress([]float64{1}, []int{1}, Options{Mode: 99, ErrorBound: 0.1}); err == nil {
		t.Fatal("bad mode must fail")
	}
	if _, err := Compress([]float64{1}, []int{1, 1, 1, 1}, Options{Mode: ModeABS, ErrorBound: 0.1}); err == nil {
		t.Fatal("4D must fail")
	}
	if _, err := Compress(nil, []int{0}, Options{Mode: ModeABS, ErrorBound: 0.1}); err == nil {
		t.Fatal("zero dim must fail")
	}
}

func TestDecompressGarbage(t *testing.T) {
	if _, _, err := Decompress(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatal("nil buffer must be corrupt")
	}
	if _, _, err := Decompress([]byte("not a stream at all")); !errors.Is(err, ErrCorrupt) {
		t.Fatal("garbage must be corrupt")
	}
}

func TestBitFlipsProduceErrorOrGarbageNeverPanic(t *testing.T) {
	data, dims := smoothField2D(32, 32, 7)
	buf, err := Compress(data, dims, Options{Mode: ModeABS, ErrorBound: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	completed, failed := 0, 0
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 400; trial++ {
		mut := append([]byte(nil), buf...)
		bit := rng.Intn(len(mut) * 8)
		mut[bit/8] ^= 0x80 >> (bit % 8)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("bit %d: decompression panicked: %v", bit, r)
				}
			}()
			if _, _, err := Decompress(mut); err != nil {
				failed++
			} else {
				completed++
			}
		}()
	}
	t.Logf("flip outcomes: %d completed, %d exception", completed, failed)
	if completed == 0 {
		t.Fatal("expected some flips to decode silently (the paper's SDC risk)")
	}
}

func TestModeString(t *testing.T) {
	if ModeABS.String() != "SZ-ABS" || ModePWREL.String() != "SZ-PWREL" || ModePSNR.String() != "SZ-PSNR" {
		t.Fatal("mode names wrong")
	}
}

func TestConstantField(t *testing.T) {
	data := make([]float64, 1000)
	for i := range data {
		data[i] = 42.5
	}
	for _, mode := range []Mode{ModeABS, ModePSNR} {
		buf, err := Compress(data, []int{1000}, Options{Mode: mode, ErrorBound: 30})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		got, _, err := Decompress(buf)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for i := range got {
			if math.Abs(got[i]-42.5) > 30*2 {
				t.Fatalf("%v: constant field mangled", mode)
			}
		}
	}
}

func TestLorenzoPredictorStencils(t *testing.T) {
	// 1D: previous value.
	r1 := []float64{5, 0, 0}
	p1 := newPredictor([]int{3}, r1)
	if p1.predict(0) != 0 || p1.predict(1) != 5 {
		t.Fatal("1D stencil wrong")
	}
	// 2D on a plane v = 2x + 3y: the Lorenzo prediction is exact for
	// interior points (a + b - c reproduces any bilinear form).
	ny, nx := 4, 4
	r2 := make([]float64, ny*nx)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			r2[y*nx+x] = 2*float64(x) + 3*float64(y)
		}
	}
	p2 := newPredictor([]int{ny, nx}, r2)
	for y := 1; y < ny; y++ {
		for x := 1; x < nx; x++ {
			i := y*nx + x
			if got := p2.predict(i); got != r2[i] {
				t.Fatalf("2D Lorenzo not exact on a plane at (%d,%d): %g vs %g", y, x, got, r2[i])
			}
		}
	}
	// 3D on a trilinear form v = x + 2y + 4z: exact for interior.
	d := []int{3, 3, 3}
	r3 := make([]float64, 27)
	idx := 0
	for z := 0; z < 3; z++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				r3[idx] = float64(x) + 2*float64(y) + 4*float64(z)
				idx++
			}
		}
	}
	p3 := newPredictor(d, r3)
	i := (1*3+1)*3 + 1 // (1,1,1)
	if got := p3.predict(i); got != r3[i] {
		t.Fatalf("3D Lorenzo not exact: %g vs %g", got, r3[i])
	}
	// Border cells treat missing neighbors as zero.
	if got := p2.predict(0); got != 0 {
		t.Fatalf("2D origin prediction %g, want 0", got)
	}
}

func TestQuantizeDequantizeInverse(t *testing.T) {
	data, dims := smoothField2D(24, 24, 300)
	eb := 0.01
	syms, unpred := quantize(data, dims, eb)
	recon, err := dequantize(syms, dims, eb, unpred)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(recon[i]-data[i]) > eb {
			t.Fatalf("quantize/dequantize bound violated at %d", i)
		}
	}
	// Symbol 0 count must equal the unpredictable pool size.
	zeros := 0
	for _, s := range syms {
		if s == 0 {
			zeros++
		}
	}
	if zeros != len(unpred) {
		t.Fatalf("%d zero symbols vs %d unpredictables", zeros, len(unpred))
	}
}
