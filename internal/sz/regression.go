package sz

// Block-wise linear-regression prediction — the headline optimization
// of SZ 2.x (Liang et al., IEEE Big Data 2018), which the paper's SZ
// 2.1.8.1 includes. The field is split into 6^d blocks; each block
// either keeps the Lorenzo predictor or switches to a fitted linear
// model v ~ a0 + a1*x + a2*y (+ a3*z), whichever predicts better. The
// decoder needs the per-block mode bit and the (quantized) regression
// coefficients.
//
// The error bound is preserved unconditionally: residuals are
// quantized against predictions computed from the *dequantized*
// coefficients, exactly as the decoder will compute them, so
// coefficient quantization error can never leak into the data.

import "math"

// regBlockSide is the block edge length (SZ 2.x uses 6).
const regBlockSide = 6

// coeffQuantScale converts regression coefficients to integers:
// step = eb / coeffQuantScale keeps coefficient representation error
// far below the bound (it cannot violate it either way; finer steps
// only improve prediction quality).
const coeffQuantScale = 128

// regGrid describes the block decomposition of a 2D/3D field.
type regGrid struct {
	dims   []int
	nb     []int // blocks per dim
	blocks int
}

func newRegGrid(dims []int) *regGrid {
	g := &regGrid{dims: dims, nb: make([]int, len(dims))}
	g.blocks = 1
	for i, d := range dims {
		g.nb[i] = (d + regBlockSide - 1) / regBlockSide
		g.blocks *= g.nb[i]
	}
	return g
}

// coeffCount is the number of regression coefficients per block.
func (g *regGrid) coeffCount() int { return len(g.dims) + 1 }

// blockBounds returns the half-open index ranges of block b per dim.
func (g *regGrid) blockBounds(b int) (lo, hi [3]int) {
	var bc [3]int
	for i := len(g.dims) - 1; i >= 0; i-- {
		bc[i] = b % g.nb[i]
		b /= g.nb[i]
	}
	for i, d := range g.dims {
		lo[i] = bc[i] * regBlockSide
		hi[i] = lo[i] + regBlockSide
		if hi[i] > d {
			hi[i] = d
		}
	}
	return lo, hi
}

// fitRegression fits v ~ a0 + sum_i a_i * x_i by least squares over a
// block, using the closed form for a regular grid. Returns false when
// the block is degenerate (single cell per axis everywhere).
func fitRegression(data []float64, dims []int, lo, hi [3]int) ([]float64, bool) {
	nd := len(dims)
	n := 0.0
	mean := make([]float64, nd) // mean of local coordinate per axis
	var vMean float64
	forEachCell(dims, lo, hi, func(idx int, c [3]int) {
		n++
		vMean += data[idx]
		for i := 0; i < nd; i++ {
			mean[i] += float64(c[i] - lo[i])
		}
	})
	if n == 0 {
		return nil, false
	}
	vMean /= n
	for i := range mean {
		mean[i] /= n
	}
	// On a regular grid the coordinate axes are uncorrelated, so each
	// slope is cov(x_i, v)/var(x_i) independently.
	cov := make([]float64, nd)
	vr := make([]float64, nd)
	forEachCell(dims, lo, hi, func(idx int, c [3]int) {
		dv := data[idx] - vMean
		for i := 0; i < nd; i++ {
			dx := float64(c[i]-lo[i]) - mean[i]
			cov[i] += dx * dv
			vr[i] += dx * dx
		}
	})
	coeffs := make([]float64, nd+1)
	for i := 0; i < nd; i++ {
		if vr[i] > 0 {
			coeffs[i+1] = cov[i] / vr[i]
		}
	}
	a0 := vMean
	for i := 0; i < nd; i++ {
		a0 -= coeffs[i+1] * mean[i]
	}
	coeffs[0] = a0
	for _, c := range coeffs {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, false
		}
	}
	return coeffs, true
}

// forEachCell visits the cells of a block in row-major order, passing
// the flat index and the absolute coordinates.
func forEachCell(dims []int, lo, hi [3]int, f func(idx int, c [3]int)) {
	switch len(dims) {
	case 2:
		d1 := dims[1]
		for x0 := lo[0]; x0 < hi[0]; x0++ {
			for x1 := lo[1]; x1 < hi[1]; x1++ {
				f(x0*d1+x1, [3]int{x0, x1, 0})
			}
		}
	case 3:
		d1, d2 := dims[1], dims[2]
		for x0 := lo[0]; x0 < hi[0]; x0++ {
			for x1 := lo[1]; x1 < hi[1]; x1++ {
				for x2 := lo[2]; x2 < hi[2]; x2++ {
					f((x0*d1+x1)*d2+x2, [3]int{x0, x1, x2})
				}
			}
		}
	}
}

// quantizeCoeffs converts coefficients to integers with step
// eb/coeffQuantScale; saturating coefficients disqualify regression
// for the block.
func quantizeCoeffs(coeffs []float64, eb float64) ([]int64, bool) {
	step := eb / coeffQuantScale
	out := make([]int64, len(coeffs))
	for i, c := range coeffs {
		q := math.Round(c / step)
		if math.Abs(q) > math.MaxInt32 || math.IsNaN(q) {
			return nil, false
		}
		out[i] = int64(q)
	}
	return out, true
}

// dequantizeCoeffs inverts quantizeCoeffs.
func dequantizeCoeffs(q []int64, eb float64) []float64 {
	step := eb / coeffQuantScale
	out := make([]float64, len(q))
	for i, v := range q {
		out[i] = float64(v) * step
	}
	return out
}

// regPredict evaluates a regression model at local coordinates.
func regPredict(coeffs []float64, lo, c [3]int, nd int) float64 {
	p := coeffs[0]
	for i := 0; i < nd; i++ {
		p += coeffs[i+1] * float64(c[i]-lo[i])
	}
	return p
}

// mixedResult carries the streams produced by mixed prediction.
type mixedResult struct {
	syms    []int32
	unpred  []float64
	modes   []bool  // per block: true = regression
	qcoeffs []int64 // concatenated coefficients of regression blocks
}

// quantizeMixedRef is the scalar reference implementation of
// quantizeMixed: a closure visit per cell with a predictor method call
// inside. Retained for differential tests and as the benchmark
// baseline of the batched block kernels in quant_fast.go.
func quantizeMixedRef(data []float64, dims []int, eb float64) *mixedResult {
	g := newRegGrid(dims)
	nd := len(dims)
	res := &mixedResult{
		syms:  make([]int32, 0, len(data)),
		modes: make([]bool, g.blocks),
	}
	recon := make([]float64, len(data))
	pred := newPredictor(dims, recon)
	twoEB := 2 * eb
	for b := 0; b < g.blocks; b++ {
		lo, hi := g.blockBounds(b)
		var coeffs []float64
		var qc []int64
		useReg := false
		if fit, ok := fitRegression(data, dims, lo, hi); ok {
			if q, ok2 := quantizeCoeffs(fit, eb); ok2 {
				deq := dequantizeCoeffs(q, eb)
				if regressionWins(data, dims, lo, hi, deq, nd) {
					coeffs, qc, useReg = deq, q, true
				}
			}
		}
		res.modes[b] = useReg
		if useReg {
			res.qcoeffs = append(res.qcoeffs, qc...)
		}
		forEachCell(dims, lo, hi, func(idx int, c [3]int) {
			var p float64
			if useReg {
				p = regPredict(coeffs, lo, c, nd)
			} else {
				p = pred.predict(idx)
			}
			diff := data[idx] - p
			code := math.Round(diff / twoEB)
			if math.Abs(code) < quantRadius-1 && !math.IsNaN(code) {
				r := p + code*twoEB
				if math.Abs(r-data[idx]) <= eb {
					res.syms = append(res.syms, int32(code)+quantRadius)
					recon[idx] = r
					return
				}
			}
			res.syms = append(res.syms, 0)
			res.unpred = append(res.unpred, data[idx])
			recon[idx] = data[idx]
		})
	}
	return res
}

// regressionWins estimates whether the regression model beats Lorenzo
// for a block, comparing absolute residuals (Lorenzo estimated on
// original values, the standard SZ 2.x sampling shortcut).
func regressionWins(data []float64, dims []int, lo, hi [3]int, coeffs []float64, nd int) bool {
	var regErr, lorErr float64
	origPred := newPredictor(dims, data) // Lorenzo proxy on originals
	forEachCell(dims, lo, hi, func(idx int, c [3]int) {
		regErr += math.Abs(data[idx] - regPredict(coeffs, lo, c, nd))
		lorErr += math.Abs(data[idx] - origPred.predict(idx))
	})
	return regErr < lorErr
}

// dequantizeMixed reverses quantizeMixed.
func dequantizeMixed(syms []int32, dims []int, eb float64, unpred []float64, modes []bool, qcoeffs []int64) ([]float64, error) {
	g := newRegGrid(dims)
	nd := len(dims)
	if len(modes) != g.blocks {
		return nil, errCorruptf("block mode count %d != %d", len(modes), g.blocks)
	}
	n := 1
	for _, d := range dims {
		n *= d
	}
	if len(syms) != n {
		return nil, errCorruptf("symbol count %d != %d", len(syms), n)
	}
	recon := make([]float64, n)
	pred := newPredictor(dims, recon)
	twoEB := 2 * eb
	si, ui, ci := 0, 0, 0
	for b := 0; b < g.blocks; b++ {
		lo, hi := g.blockBounds(b)
		var coeffs []float64
		if modes[b] {
			cc := g.coeffCount()
			if ci+cc > len(qcoeffs) {
				return nil, errCorruptf("coefficient pool exhausted")
			}
			coeffs = dequantizeCoeffs(qcoeffs[ci:ci+cc], eb)
			ci += cc
		}
		var derr error
		forEachCell(dims, lo, hi, func(idx int, c [3]int) {
			if derr != nil {
				return
			}
			s := syms[si]
			si++
			if s == 0 {
				if ui >= len(unpred) {
					derr = errCorruptf("unpredictable pool exhausted")
					return
				}
				recon[idx] = unpred[ui]
				ui++
				return
			}
			var p float64
			if modes[b] {
				p = regPredict(coeffs, lo, c, nd)
			} else {
				p = pred.predict(idx)
			}
			recon[idx] = p + float64(s-quantRadius)*twoEB
		})
		if derr != nil {
			return nil, derr
		}
	}
	return recon, nil
}

func errCorruptf(format string, args ...interface{}) error {
	return wrapCorrupt(format, args...)
}
