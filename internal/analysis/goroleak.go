package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	Register(&Analyzer{
		Name: "goroleak",
		Doc: "reports `go` statements with no visible join: the spawned function " +
			"neither touches a sync.WaitGroup nor communicates on a channel, so " +
			"nothing can wait for it and it can leak past function return",
		Run: runGoroLeak,
	})
}

func runGoroLeak(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				if !hasJoinSignal(pass.Info, lit.Body) {
					pass.Reportf(g.Pos(), "goroutine has no WaitGroup or channel join; nothing can wait for it")
				}
				return true
			}
			// go foo(...): a join is possible when the callee receives a
			// channel or *sync.WaitGroup, or is a method on a value that
			// could hold one — require at least a channel/WaitGroup arg
			// or receiver.
			if !callCanJoin(pass.Info, g.Call) {
				pass.Reportf(g.Pos(), "goroutine call passes no channel or *sync.WaitGroup; nothing can wait for it")
			}
			return true
		})
	}
	return nil
}

// hasJoinSignal reports whether a goroutine body contains an
// operation another goroutine can synchronize with: a channel send,
// receive, close, or select; or any sync.WaitGroup method call.
func hasJoinSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
			if f := calleeFunc(info, x); f != nil && isWaitGroupMethod(f) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isWaitGroupMethod reports whether f is a method on *sync.WaitGroup.
func isWaitGroupMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// callCanJoin reports whether any argument (or the method receiver)
// of a spawned call carries a channel or *sync.WaitGroup, which a
// caller could later join on.
func callCanJoin(info *types.Info, call *ast.CallExpr) bool {
	exprs := append([]ast.Expr(nil), call.Args...)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		exprs = append(exprs, sel.X)
	}
	for _, e := range exprs {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			continue
		}
		if canCarryJoin(tv.Type, 0) {
			return true
		}
	}
	return false
}

// canCarryJoin walks a type for channels or WaitGroups (directly, via
// pointer, or as a struct field).
func canCarryJoin(t types.Type, depth int) bool {
	if depth > 6 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		return canCarryJoin(u.Elem(), depth+1)
	case *types.Struct:
		if named, ok := t.(*types.Named); ok {
			if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" && named.Obj().Name() == "WaitGroup" {
				return true
			}
		}
		for i := 0; i < u.NumFields(); i++ {
			if canCarryJoin(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}
