package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// calleeFunc resolves the *types.Func a call invokes, or nil for
// calls through function values, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// resultsWithError reports whether the call yields an error (alone or
// as any member of its result tuple).
func resultsWithError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// syncLockNames are the sync types that must never be copied after
// first use.
var syncLockNames = map[string]bool{
	"sync.Mutex":     true,
	"sync.RWMutex":   true,
	"sync.WaitGroup": true,
	"sync.Once":      true,
	"sync.Cond":      true,
	"sync.Pool":      true,
	"sync.Map":       true,
}

// lockPath returns a human-readable path to the first sync primitive
// held by value inside t ("" when none). Pointers and interfaces stop
// the search: copying a pointer to a mutex is fine.
func lockPath(t types.Type) string {
	return lockPathDepth(t, 0)
}

func lockPathDepth(t types.Type, depth int) string {
	if depth > 10 {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && syncLockNames[pkg.Path()+"."+named.Obj().Name()] {
			return pkg.Name() + "." + named.Obj().Name()
		}
		return lockPathDepth(named.Underlying(), depth+1)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if p := lockPathDepth(u.Field(i).Type(), depth+1); p != "" {
				return u.Field(i).Name() + "." + p
			}
		}
	case *types.Array:
		if p := lockPathDepth(u.Elem(), depth+1); p != "" {
			return "[...]" + p
		}
	}
	return ""
}

// constInt extracts an integer constant value from an expression when
// the type checker proved one.
func constInt(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// basicInt returns the *types.Basic for t when it is (or is named
// with underlying) a fixed or platform integer type.
func basicInt(t types.Type) (*types.Basic, bool) {
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 || b.Info()&types.IsUntyped != 0 {
		return nil, false
	}
	return b, true
}

// intBits returns the width in bits of a basic integer type on the
// gc/amd64 layout the repository targets.
func intBits(b *types.Basic) int {
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	default: // int, uint, int64, uint64, uintptr
		return 64
	}
}

// isSigned reports signedness of a basic integer type.
func isSigned(b *types.Basic) bool { return b.Info()&types.IsUnsigned == 0 }

// enclosingFuncs yields every function declaration and literal in the
// file set of a pass, invoking fn with the node and its body.
func enclosingFuncs(files []*ast.File, fn func(node ast.Node, body *ast.BlockStmt)) {
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d, d.Body)
				}
			case *ast.FuncLit:
				fn(d, d.Body)
			}
			return true
		})
	}
}
