package analysis_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/analysis"
)

// runCached analyzes the fixture with the incremental cache enabled.
func runCached(t *testing.T, root, cacheDir string, opts analysis.Options) *analysis.Result {
	t.Helper()
	opts.CacheDir = cacheDir
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := analysis.ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.RunWith(loader, dirs, analysis.All(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func diagKeys(t *testing.T, root string, diags []analysis.Diagnostic) []string {
	t.Helper()
	var out []string
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.File)
		if err != nil {
			t.Fatalf("diagnostic outside fixture: %v", d)
		}
		out = append(out, filepath.ToSlash(rel)+":"+d.Analyzer+":"+d.Message)
	}
	return out
}

// TestCacheWarmRunAnalyzesNothing pins the cache's core contract: a
// second run over unchanged sources replays every unit and reproduces
// the cold run's findings exactly.
func TestCacheWarmRunAnalyzesNothing(t *testing.T) {
	files := map[string]string{
		"a/a.go": `package a

func Mayfail() error { return nil }
`,
		"b/b.go": `package b

import "fixture/a"

func Use() {
	a.Mayfail() // want uncheckederr
}
`,
	}
	root := writeFixture(t, files)
	cacheDir := filepath.Join(t.TempDir(), "cache")

	cold := runCached(t, root, cacheDir, analysis.Options{})
	if cold.Stats.LiveUnits == 0 || cold.Stats.CachedUnits != 0 {
		t.Fatalf("cold run: live=%d cached=%d, want all live", cold.Stats.LiveUnits, cold.Stats.CachedUnits)
	}

	warm := runCached(t, root, cacheDir, analysis.Options{})
	if warm.Stats.LiveUnits != 0 {
		t.Fatalf("warm run re-analyzed %d units (dirs %v), want 0", warm.Stats.LiveUnits, warm.Stats.LiveDirs)
	}
	if warm.Stats.CachedUnits != cold.Stats.Units {
		t.Fatalf("warm run replayed %d units, want %d", warm.Stats.CachedUnits, cold.Stats.Units)
	}
	got, want := diagKeys(t, root, warm.Diagnostics), diagKeys(t, root, cold.Diagnostics)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warm findings diverge from cold:\nwarm: %v\ncold: %v", got, want)
	}
	if len(want) != 1 {
		t.Fatalf("fixture should produce exactly the seeded finding, got %v", want)
	}
}

// TestCacheInvalidatesDependentsOnly edits one package in an a<-b, c
// fixture and checks the re-analyzed set is exactly the edited
// package plus its importers.
func TestCacheInvalidatesDependentsOnly(t *testing.T) {
	files := map[string]string{
		"a/a.go": `package a

func Answer() int { return 42 }
`,
		"b/b.go": `package b

import "fixture/a"

func Double() int { return 2 * a.Answer() }
`,
		"c/c.go": `package c

func Lonely() int { return 7 }
`,
	}
	root := writeFixture(t, files)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	runCached(t, root, cacheDir, analysis.Options{})

	// Edit a: a and its dependent b go live, c stays cached.
	err := os.WriteFile(filepath.Join(root, "a/a.go"), []byte(`package a

func Answer() int { return 43 }
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	res := runCached(t, root, cacheDir, analysis.Options{})
	if want := []string{"a", "b"}; !reflect.DeepEqual(res.Stats.LiveDirs, want) {
		t.Fatalf("after editing a: live dirs %v, want %v", res.Stats.LiveDirs, want)
	}

	// Edit c: only c goes live.
	err = os.WriteFile(filepath.Join(root, "c/c.go"), []byte(`package c

func Lonely() int { return 8 }
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	res = runCached(t, root, cacheDir, analysis.Options{})
	if want := []string{"c"}; !reflect.DeepEqual(res.Stats.LiveDirs, want) {
		t.Fatalf("after editing c: live dirs %v, want %v", res.Stats.LiveDirs, want)
	}

	// No further edits: nothing goes live.
	res = runCached(t, root, cacheDir, analysis.Options{})
	if res.Stats.LiveUnits != 0 {
		t.Fatalf("no-change rerun analyzed %v, want nothing", res.Stats.LiveDirs)
	}
}

// TestCacheCrossPackageFactsReplay seeds an interprocedural
// panicfact finding whose panic source and decoder entry live in
// different packages, then checks a fully-warm run still reports it —
// i.e. facts and call-graph edges survive the journal round-trip.
func TestCacheCrossPackageFactsReplay(t *testing.T) {
	files := map[string]string{
		"inner/inner.go": `package inner

func Explode(b []byte) byte {
	if len(b) == 0 {
		panic("empty") // want panicfact
	}
	return b[0]
}
`,
		"outer/outer.go": `package outer

import "fixture/inner"

func DecodeFirst(b []byte) byte {
	return inner.Explode(b)
}
`,
	}
	root := writeFixture(t, files)
	cacheDir := filepath.Join(t.TempDir(), "cache")

	cold := runCached(t, root, cacheDir, analysis.Options{})
	warm := runCached(t, root, cacheDir, analysis.Options{})
	if warm.Stats.LiveUnits != 0 {
		t.Fatalf("warm run re-analyzed %v", warm.Stats.LiveDirs)
	}
	got, want := diagKeys(t, root, warm.Diagnostics), diagKeys(t, root, cold.Diagnostics)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warm findings diverge from cold:\nwarm: %v\ncold: %v", got, want)
	}
	if len(want) != 1 {
		t.Fatalf("expected exactly the cross-package panicfact finding, got %v", want)
	}
}

// TestWaiverCheck seeds one waiver that suppresses a real finding and
// one that suppresses nothing; only the stale one must be reported,
// both cold and from a warm cache replay.
func TestWaiverCheck(t *testing.T) {
	files := map[string]string{
		"p/p.go": `package p

func mayFail() error { return nil }

func uses() int {
	//arcvet:ignore uncheckederr fixture exercises the waiver path
	mayFail()
	x := 1
	//arcvet:ignore uncheckederr nothing to suppress here
	return x
}
`,
	}
	root := writeFixture(t, files)
	cacheDir := filepath.Join(t.TempDir(), "cache")

	check := func(res *analysis.Result, label string) {
		t.Helper()
		var stale []string
		for _, d := range res.Diagnostics {
			if d.Analyzer == "waivercheck" {
				stale = append(stale, filepath.Base(d.File)+":"+itoa(d.Line))
			} else {
				t.Errorf("%s: unexpected finding %v", label, d)
			}
		}
		if want := []string{"p.go:9"}; !reflect.DeepEqual(stale, want) {
			t.Errorf("%s: stale waivers %v, want %v", label, stale, want)
		}
	}
	check(runCached(t, root, cacheDir, analysis.Options{WaiverCheck: true}), "cold")
	warm := runCached(t, root, cacheDir, analysis.Options{WaiverCheck: true})
	if warm.Stats.LiveUnits != 0 {
		t.Fatalf("warm run re-analyzed %v", warm.Stats.LiveDirs)
	}
	check(warm, "warm")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
