package analysis_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// analyzeResult is analyze returning the full Result (facts, graph).
func analyzeResult(t *testing.T, root string) *analysis.Result {
	t.Helper()
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := analysis.ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Run(loader, dirs, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// allocGuardFixture exercises every allocguard sink, including the
// two interprocedural ones: a tainted result crossing a package
// boundary (taint.result fact) and a tainted argument reaching an
// unguarded allocation inside a callee (taint.paramalloc fact).
// Package p sorts before its dependency q in directory walk order, so
// the cross-package cases also prove the driver's topological
// ordering: q's facts must exist before p is analyzed.
var allocGuardFixture = map[string]string{
	"q/q.go": `package q

import "encoding/binary"

// WireLen decodes a length field; callers own the bound check.
func WireLen(b []byte) int { return int(binary.LittleEndian.Uint32(b)) }

// Table allocates from its argument without a bound of its own.
func Table(n int) []int { return make([]int, n) }
`,
	"p/p.go": `package p

import (
	"encoding/binary"
	"io"

	"fixture/q"
)

const maxLen = 1 << 20

func Alloc(buf []byte) []byte {
	n := binary.LittleEndian.Uint32(buf)
	return make([]byte, n) // want allocguard
}

func AllocGuarded(buf []byte) []byte {
	n := binary.LittleEndian.Uint32(buf)
	if n > maxLen {
		return nil
	}
	return make([]byte, n)
}

func CopyBound(dst io.Writer, src io.Reader, hdr []byte) {
	n := binary.LittleEndian.Uint64(hdr)
	_, _ = io.CopyN(dst, src, int64(n)) // want allocguard
}

func ReadBound(r io.Reader, buf, hdr []byte) {
	n := int(binary.LittleEndian.Uint32(hdr))
	_, _ = io.ReadFull(r, buf[:n]) // want allocguard
}

func ReadBoundGuarded(r io.Reader, buf, hdr []byte) {
	n := int(binary.LittleEndian.Uint32(hdr))
	if n > len(buf) {
		return
	}
	_, _ = io.ReadFull(r, buf[:n])
}

func LoopAppend(hdr []byte) []int {
	n := int(binary.LittleEndian.Uint32(hdr))
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want allocguard
	}
	return out
}

func AllocViaHelper(b []byte) []byte {
	return make([]byte, q.WireLen(b)) // want allocguard
}

func AllocViaHelperGuarded(b []byte) []byte {
	n := q.WireLen(b)
	if n > maxLen {
		return nil
	}
	return make([]byte, n)
}

func AllocViaParam(b []byte) []int {
	return q.Table(q.WireLen(b)) // want allocguard
}
`,
}

func TestAllocGuard(t *testing.T) {
	root := writeFixture(t, allocGuardFixture)
	checkMarkers(t, root, allocGuardFixture, analyze(t, root))
}

func TestDeadWait(t *testing.T) {
	// The fixture path must fall under deadwait's package restriction.
	files := map[string]string{"internal/parallel/wg.go": `package parallel

import "sync"

func addInsideGoroutine(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want deadwait
		wg.Done()
	}()
	wg.Wait()
}

func addWithoutDone(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1) // want deadwait
	go func() {
		ch <- 1
	}()
	wg.Wait()
}

func loopSpawnMismatch(wg *sync.WaitGroup, items []int) {
	wg.Add(1) // want deadwait
	for range items {
		go func() { //arcvet:ignore chansafety fixture exercises join accounting, not spawn bounds
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func skippableDone(wg *sync.WaitGroup, fail bool) {
	wg.Add(1)
	go func() {
		if fail {
			return
		}
		wg.Done() // want deadwait
	}()
	wg.Wait()
}

func balanced(wg *sync.WaitGroup, items []int) {
	for range items {
		wg.Add(1)
		go func() { //arcvet:ignore chansafety fixture exercises join accounting, not spawn bounds
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func addCounted(wg *sync.WaitGroup, items []int) {
	wg.Add(len(items))
	for range items {
		go func() { //arcvet:ignore chansafety fixture exercises join accounting, not spawn bounds
			defer wg.Done()
		}()
	}
	wg.Wait()
}

type pool struct {
	workers sync.WaitGroup
}

// worker's deferred Done on a receiver field becomes a
// deadwait.effects fact, so start's spawn loop below accounts as
// balanced even though no Done is syntactically visible there.
func (p *pool) worker(jobs chan int) {
	defer p.workers.Done()
	for range jobs {
	}
}

func (p *pool) start(jobs chan int, n int) {
	for i := 0; i < n; i++ {
		p.workers.Add(1)
		go p.worker(jobs)
	}
	go func() {
		p.workers.Wait()
		close(jobs)
	}()
}
`}
	root := writeFixture(t, files)
	checkMarkers(t, root, files, analyze(t, root))
}

var panicFactFixture = map[string]string{
	"inner/inner.go": `package inner

// MustPositive panics on negative input.
func MustPositive(n int) int {
	if n < 0 {
		panic("negative") // want panicfact
	}
	return n
}
`,
	"codec/codec.go": `package codec

import (
	"encoding/binary"
	"errors"

	"fixture/inner"
)

var errBad = errors.New("bad input")

// Decode reaches inner.MustPositive's panic with no recover: the
// finding lands at the panic site in the other package.
func Decode(buf []byte) int {
	return inner.MustPositive(int(binary.LittleEndian.Uint32(buf)))
}

// DecodeSafe absorbs the same panic, so it contributes no finding.
func DecodeSafe(buf []byte) (n int, err error) {
	defer func() {
		if recover() != nil {
			n, err = 0, errBad
		}
	}()
	return inner.MustPositive(int(binary.LittleEndian.Uint32(buf))), nil
}

func DecodeIndex(table []int, buf []byte) int {
	n := int(binary.LittleEndian.Uint32(buf))
	return table[n] // want panicfact
}

func DecodeIndexGuarded(table []int, buf []byte) int {
	n := int(binary.LittleEndian.Uint32(buf))
	if n < 0 || n >= len(table) {
		return 0
	}
	return table[n]
}

func DecodeAny(v any) int {
	return v.(int) // want panicfact
}

// helperPanics is not reachable from any decoder entry point, so its
// panic stays a fact, not a finding.
func helperPanics() {
	panic("internal invariant")
}
`,
}

func TestPanicFact(t *testing.T) {
	root := writeFixture(t, panicFactFixture)
	checkMarkers(t, root, panicFactFixture, analyze(t, root))
}

// TestWaiverStatementSpan proves the satellite fix: a directive on
// the first line of a multi-line statement (or the line above it)
// waives findings reported on the statement's continuation lines,
// while an identical unwaived statement still fires.
func TestWaiverStatementSpan(t *testing.T) {
	files := map[string]string{"sp/sp.go": `package sp

import "encoding/binary"

func waivedAbove(buf []byte) []byte {
	n := binary.LittleEndian.Uint32(buf)
	//arcvet:ignore allocguard fixture: bound enforced by the caller
	return append([]byte{},
		make([]byte, n)...)
}

func waivedOnFirstLine(buf []byte) []byte {
	n := binary.LittleEndian.Uint32(buf)
	return append([]byte{}, //arcvet:ignore allocguard fixture: bound enforced by the caller
		make([]byte, n)...)
}

func unwaived(buf []byte) []byte {
	n := binary.LittleEndian.Uint32(buf)
	return append([]byte{},
		make([]byte, n)...) // want allocguard
}
`}
	root := writeFixture(t, files)
	checkMarkers(t, root, files, analyze(t, root))
}

// TestTopoOrderAndGraph checks the call graph over the allocguard
// fixture: cross-package edges exist and reachability follows them.
func TestTopoOrderAndGraph(t *testing.T) {
	root := writeFixture(t, allocGuardFixture)
	res := analyzeResult(t, root)
	if res.Graph == nil || res.Facts == nil {
		t.Fatal("Result must expose the call graph and fact store")
	}
	node := res.Graph.Node("fixture/p.AllocViaHelper")
	if node == nil {
		t.Fatal("missing call-graph node for fixture/p.AllocViaHelper")
	}
	foundEdge := false
	for _, callee := range node.Callees {
		if callee == "fixture/q.WireLen" {
			foundEdge = true
		}
	}
	if !foundEdge {
		t.Fatalf("AllocViaHelper callees = %v, want fixture/q.WireLen", node.Callees)
	}
	reach := res.Graph.ReachableFrom("fixture/p.AllocViaParam")
	if !reach["fixture/q.Table"] {
		t.Fatal("fixture/q.Table must be reachable from fixture/p.AllocViaParam")
	}
	if reach["fixture/p.Alloc"] {
		t.Fatal("fixture/p.Alloc must not be reachable from fixture/p.AllocViaParam")
	}

	// The facts the cross-package findings relied on must be present.
	if _, ok := res.Facts.ImportKey("fixture/q.WireLen", "taint.result"); !ok {
		t.Fatal("missing taint.result fact on fixture/q.WireLen")
	}
	if _, ok := res.Facts.ImportKey("fixture/q.Table", "taint.paramalloc"); !ok {
		t.Fatal("missing taint.paramalloc fact on fixture/q.Table")
	}
}

// TestFactStoreRoundTrip pins the serialization contract: a store
// survives JSON marshal/unmarshal byte-identically.
func TestFactStoreRoundTrip(t *testing.T) {
	root := writeFixture(t, panicFactFixture)
	res := analyzeResult(t, root)
	if res.Facts.Len() == 0 {
		t.Fatal("expected exported facts")
	}
	first, err := json.Marshal(res.Facts)
	if err != nil {
		t.Fatal(err)
	}
	var back analysis.FactStore
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("fact store does not round-trip:\nfirst:  %s\nsecond: %s", first, second)
	}
	if f, ok := back.ImportKey("fixture/inner.MustPositive", "panicfact.maypanic"); !ok {
		t.Fatal("round-tripped store lost panicfact.maypanic on MustPositive")
	} else if mp := f.(*analysis.MayPanicFact); len(mp.Sources) == 0 || mp.Sources[0].What != "explicit panic" {
		t.Fatalf("unexpected fact content after round trip: %+v", f)
	}
}

// TestDeterministicOutput runs the same analysis twice and requires
// identical, (file, line, col, analyzer)-sorted diagnostics.
func TestDeterministicOutput(t *testing.T) {
	root := writeFixture(t, allocGuardFixture)
	a := analyze(t, root)
	b := analyze(t, root)
	render := func(ds []analysis.Diagnostic) string {
		var sb strings.Builder
		for _, d := range ds {
			sb.WriteString(d.String())
			sb.WriteString("\n")
		}
		return sb.String()
	}
	if render(a) != render(b) {
		t.Fatalf("two runs disagree:\n%s\nvs\n%s", render(a), render(b))
	}
	for i := 1; i < len(a); i++ {
		p, q := a[i-1], a[i]
		if p.File > q.File || (p.File == q.File && (p.Line > q.Line ||
			(p.Line == q.Line && (p.Col > q.Col ||
				(p.Col == q.Col && p.Analyzer > q.Analyzer))))) {
			t.Fatalf("diagnostics not sorted at %d: %v before %v", i, p, q)
		}
	}
}
