package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// chansafety checks channel ownership contracts through def-use
// tracking and per-function facts:
//
//  1. send (or close) on a channel that a reachable earlier path
//     closes — including sends hidden behind method calls, via
//     exported closes/sends facts (the Pipe "Submit after Close"
//     misuse);
//  2. close on the consumer side: a function that only ever receives
//     from a channel it did not create has no business closing it —
//     close belongs to the sender;
//  3. goroutines spawned in an unbounded loop (range, or for without
//     a condition) with no channel-based token or worker budget in
//     the loop;
//  4. select statements that can never proceed because every case
//     waits on a local channel with no live producer (nothing was
//     started or shared before the select that could ever fire it).

// ChanUseFact summarizes which channel parameters (by index) and
// receiver fields (by dotted path) a function closes or sends on,
// transitively through its callees.
type ChanUseFact struct {
	ClosesParams []int    `json:"closesParams,omitempty"`
	ClosesFields []string `json:"closesFields,omitempty"`
	SendsParams  []int    `json:"sendsParams,omitempty"`
	SendsFields  []string `json:"sendsFields,omitempty"`
}

func (*ChanUseFact) FactName() string { return "chansafety.chanuse" }

func init() {
	RegisterFactType(func() Fact { return new(ChanUseFact) })
	Register(&Analyzer{
		Name: "chansafety",
		Doc: "channel contract violation: send or close after a reachable close (panics at runtime), " +
			"close on the consumer side of a channel, unbounded goroutine spawn in a loop, or a select " +
			"that can never proceed because no producer for its channels was started",
		Run: runChanSafety,
	})
}

// chainRef identifies a channel expression within one function walk:
// the root object plus the dotted field path from it.
type chainRef struct {
	root types.Object
	path string
}

func chanChain(info *types.Info, e ast.Expr) (chainRef, bool) {
	root, path, ok := chainOf(info, e)
	if !ok || root == nil {
		return chainRef{}, false
	}
	return chainRef{root, path}, true
}

func runChanSafety(pass *Pass) error {
	targets := nonTestDecls(pass)

	// Fixpoint over closes/sends facts so helper indirection (A closes
	// the channel B passed it) converges before the check pass.
	for round := 0; round < 5; round++ {
		changed := false
		for _, t := range targets {
			fact, present := chanUseSummary(pass, t)
			if exportOrWithdraw(pass.Facts, FuncKey(t.fn), present, fact) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	for _, t := range targets {
		checkChanSafety(pass, t)
	}
	return nil
}

// paramIndexOf maps a chain to the index of the channel parameter it
// names, or -1.
func paramIndexOf(sig *types.Signature, ref chainRef) int {
	if ref.path != "" {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if p == ref.root && isChanType(p.Type()) {
			return i
		}
	}
	return -1
}

func recvObjOf(sig *types.Signature) types.Object {
	if sig.Recv() == nil {
		return nil
	}
	return sig.Recv()
}

// chanUseSummary computes one function's ChanUseFact: direct closes
// and sends on parameters/receiver fields, plus those of callees the
// function forwards them to.
func chanUseSummary(pass *Pass, t declTarget) (*ChanUseFact, bool) {
	sig := t.fn.Type().(*types.Signature)
	recv := recvObjOf(sig)
	closesP, sendsP := map[int]bool{}, map[int]bool{}
	closesF, sendsF := map[string]bool{}, map[string]bool{}

	note := func(ref chainRef, closes bool) {
		if i := paramIndexOf(sig, ref); i >= 0 {
			if closes {
				closesP[i] = true
			} else {
				sendsP[i] = true
			}
			return
		}
		if recv != nil && ref.root == recv && ref.path != "" {
			if closes {
				closesF[ref.path] = true
			} else {
				sendsF[ref.path] = true
			}
		}
	}

	ast.Inspect(t.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if ref, ok := chanChain(pass.Info, n.Chan); ok {
				note(ref, false)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && isBuiltin(pass.Info, id) {
				if len(n.Args) == 1 {
					if ref, ok := chanChain(pass.Info, n.Args[0]); ok {
						note(ref, true)
					}
				}
				return true
			}
			// Forwarded uses through callees with facts.
			fn := calleeFunc(pass.Info, n)
			if fn == nil {
				return true
			}
			f, ok := pass.Facts.Import(fn, "chansafety.chanuse")
			if !ok {
				return true
			}
			use := f.(*ChanUseFact)
			for _, idx := range use.ClosesParams {
				if idx < len(n.Args) {
					if ref, ok := chanChain(pass.Info, n.Args[idx]); ok {
						note(ref, true)
					}
				}
			}
			for _, idx := range use.SendsParams {
				if idx < len(n.Args) {
					if ref, ok := chanChain(pass.Info, n.Args[idx]); ok {
						note(ref, false)
					}
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if ref, ok := chanChain(pass.Info, sel.X); ok {
					for _, fld := range use.ClosesFields {
						note(chainRef{ref.root, joinField(ref.path, fld)}, true)
					}
					for _, fld := range use.SendsFields {
						note(chainRef{ref.root, joinField(ref.path, fld)}, false)
					}
				}
			}
		}
		return true
	})

	if len(closesP) == 0 && len(sendsP) == 0 && len(closesF) == 0 && len(sendsF) == 0 {
		return &ChanUseFact{}, false
	}
	return &ChanUseFact{
		ClosesParams: sortedInts(closesP),
		ClosesFields: sortedStrings(closesF),
		SendsParams:  sortedInts(sendsP),
		SendsFields:  sortedStrings(sendsF),
	}, true
}

func joinField(prefix, field string) string {
	if prefix == "" {
		return field
	}
	return prefix + "." + field
}

func sortedInts(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedStrings(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// chanProfile is the whole-body usage profile of one function,
// feeding the consumer-close and dead-select rules.
type chanProfile struct {
	sends    map[chainRef]int
	receives map[chainRef]int
	made     map[chainRef]bool // assigned from make(chan ...) here
	buffered map[chainRef]bool // made with a nonzero constant capacity
	escaped  map[chainRef]bool // shared: call arg, go body, return, alias
}

func profileChans(pass *Pass, body *ast.BlockStmt) *chanProfile {
	p := &chanProfile{
		sends:    map[chainRef]int{},
		receives: map[chainRef]int{},
		made:     map[chainRef]bool{},
		buffered: map[chainRef]bool{},
		escaped:  map[chainRef]bool{},
	}
	markEscape := func(e ast.Expr) {
		if ref, ok := chanChain(pass.Info, e); ok {
			if tv, ok := pass.Info.Types[e]; ok && isChanType(tv.Type) {
				p.escaped[ref] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if ref, ok := chanChain(pass.Info, n.Chan); ok {
				p.sends[ref]++
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if ref, ok := chanChain(pass.Info, n.X); ok {
					p.receives[ref]++
				}
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok && isChanType(tv.Type) {
				if ref, ok := chanChain(pass.Info, n.X); ok {
					p.receives[ref]++
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if ok {
					if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID && id.Name == "make" && isBuiltin(pass.Info, id) {
						if ref, refOK := chanChain(pass.Info, n.Lhs[i]); refOK {
							if tv, tvOK := pass.Info.Types[call]; tvOK && isChanType(tv.Type) {
								p.made[ref] = true
								if len(call.Args) >= 2 {
									if v, isConst := constInt(pass.Info, call.Args[1]); isConst && v > 0 {
										p.buffered[ref] = true
									}
								}
								continue
							}
						}
					}
				}
				// Aliasing a channel into another variable shares it.
				markEscape(rhs)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && isBuiltin(pass.Info, id) {
				return true // close/make/len/cap do not share the value
			}
			for _, arg := range n.Args {
				markEscape(arg)
			}
		case *ast.GoStmt:
			// Anything a spawned goroutine touches has a live peer.
			ast.Inspect(n.Call, func(m ast.Node) bool {
				if e, ok := m.(ast.Expr); ok {
					markEscape(e)
				}
				return true
			})
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				markEscape(r)
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					markEscape(kv.Value)
				} else {
					markEscape(elt)
				}
			}
		case *ast.DeferStmt:
			ast.Inspect(n.Call, func(m ast.Node) bool {
				if e, ok := m.(ast.Expr); ok {
					markEscape(e)
				}
				return true
			})
			return false
		}
		return true
	})
	return p
}

// closeRec remembers where a chain was closed for diagnostics.
type closeRec struct {
	pos token.Position
	via string
}

// csWalker performs the order-sensitive walk for the send-after-close
// rule, with lockorder's snapshot discipline for branches, plus the
// loop-spawn rule (it needs loop nesting).
type csWalker struct {
	pass    *Pass
	profile *chanProfile
	closed  map[chainRef]closeRec
	// loops is the stack of enclosing unbounded-loop bodies.
	loops []*ast.BlockStmt
}

func checkChanSafety(pass *Pass, t declTarget) {
	w := &csWalker{pass: pass, profile: profileChans(pass, t.decl.Body), closed: map[chainRef]closeRec{}}
	w.walkBody(t.decl.Body)
}

func (w *csWalker) snapshot(walk func()) {
	saved := make(map[chainRef]closeRec, len(w.closed))
	for k, v := range w.closed {
		saved[k] = v
	}
	walk()
	w.closed = saved
}

func (w *csWalker) walkBody(body *ast.BlockStmt) {
	for _, s := range body.List {
		w.walkStmt(s)
	}
}

func (w *csWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkBody(s)
	case *ast.ExprStmt:
		w.walkExpr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.walkExpr(e)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.walkExpr(s.Value)
		if ref, ok := chanChain(w.pass.Info, s.Chan); ok {
			if rec, isClosed := w.closed[ref]; isClosed {
				w.pass.Reportf(s.Pos(), "send on %s, which a reachable path closes at %s%s: send on a closed channel panics",
					chainDisplay(s.Chan), posDisplay(rec.pos), viaSuffix(rec.via))
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkExpr(s.Cond)
		w.snapshot(func() { w.walkBody(s.Body) })
		if s.Else != nil {
			w.snapshot(func() { w.walkStmt(s.Else) })
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		unbounded := s.Cond == nil
		w.snapshot(func() {
			if unbounded {
				w.loops = append(w.loops, s.Body)
			}
			w.walkBody(s.Body)
			if s.Post != nil {
				w.walkStmt(s.Post)
			}
			if unbounded {
				w.loops = w.loops[:len(w.loops)-1]
			}
		})
	case *ast.RangeStmt:
		w.walkExpr(s.X)
		w.snapshot(func() {
			w.loops = append(w.loops, s.Body)
			w.walkBody(s.Body)
			w.loops = w.loops[:len(w.loops)-1]
		})
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var caseBodies [][]ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				w.walkStmt(sw.Init)
			}
			if sw.Tag != nil {
				w.walkExpr(sw.Tag)
			}
			for _, c := range sw.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					caseBodies = append(caseBodies, cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			if sw.Init != nil {
				w.walkStmt(sw.Init)
			}
			for _, c := range sw.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					caseBodies = append(caseBodies, cc.Body)
				}
			}
		}
		for _, body := range caseBodies {
			body := body
			w.snapshot(func() {
				for _, st := range body {
					w.walkStmt(st)
				}
			})
		}
	case *ast.SelectStmt:
		w.checkDeadSelect(s)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.snapshot(func() {
					for _, st := range cc.Body {
						w.walkStmt(st)
					}
				})
			}
		}
	case *ast.GoStmt:
		w.checkLoopSpawn(s)
		// The goroutine body runs in its own order domain: walk it
		// with a fresh closed set (its view of closes is racy), but
		// keep loop context empty.
		for _, arg := range s.Call.Args {
			w.walkExpr(arg)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			inner := &csWalker{pass: w.pass, profile: w.profile, closed: map[chainRef]closeRec{}}
			inner.walkBody(lit.Body)
		}
	case *ast.DeferStmt:
		for _, arg := range s.Call.Args {
			w.walkExpr(arg)
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.IncDecStmt:
		w.walkExpr(s.X)
	}
}

func (w *csWalker) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Literals may run on other goroutines: own order domain.
			inner := &csWalker{pass: w.pass, profile: w.profile, closed: map[chainRef]closeRec{}}
			inner.walkBody(n.Body)
			return false
		case *ast.CallExpr:
			w.handleCall(n)
		}
		return true
	})
}

func (w *csWalker) handleCall(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && isBuiltin(w.pass.Info, id) {
		if len(call.Args) != 1 {
			return
		}
		ref, ok := chanChain(w.pass.Info, call.Args[0])
		if !ok {
			return
		}
		if rec, isClosed := w.closed[ref]; isClosed {
			w.pass.Reportf(call.Pos(), "close of %s, which a reachable path already closes at %s%s: closing a closed channel panics",
				chainDisplay(call.Args[0]), posDisplay(rec.pos), viaSuffix(rec.via))
		}
		if w.profile.receives[ref] > 0 && w.profile.sends[ref] == 0 && !w.profile.made[ref] {
			w.pass.Reportf(call.Pos(), "close of %s on the consumer side: this function only receives from the channel and did not create it; close belongs to the sender",
				chainDisplay(call.Args[0]))
		}
		w.closed[ref] = closeRec{pos: w.pass.Fset.Position(call.Pos())}
		return
	}

	fn := calleeFunc(w.pass.Info, call)
	if fn == nil {
		return
	}
	f, ok := w.pass.Facts.Import(fn, "chansafety.chanuse")
	if !ok {
		return
	}
	use := f.(*ChanUseFact)
	short := calleeShortName(FuncKey(fn))
	pos := w.pass.Fset.Position(call.Pos())

	check := func(ref chainRef, what string) {
		if rec, isClosed := w.closed[ref]; isClosed {
			w.pass.Reportf(call.Pos(), "%s sends on %s, which a reachable path closes at %s%s: send on a closed channel panics",
				short, what, posDisplay(rec.pos), viaSuffix(rec.via))
		}
	}
	mark := func(ref chainRef) {
		if _, dup := w.closed[ref]; !dup {
			w.closed[ref] = closeRec{pos: pos, via: short}
		}
	}

	for _, idx := range use.SendsParams {
		if idx < len(call.Args) {
			if ref, ok := chanChain(w.pass.Info, call.Args[idx]); ok {
				check(ref, "its argument")
			}
		}
	}
	var recvRef chainRef
	recvKnown := false
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvRef, recvKnown = chanChain(w.pass.Info, sel.X)
	}
	if recvKnown {
		for _, fld := range use.SendsFields {
			check(chainRef{recvRef.root, joinField(recvRef.path, fld)}, "its "+fld+" channel")
		}
	}
	for _, idx := range use.ClosesParams {
		if idx < len(call.Args) {
			if ref, ok := chanChain(w.pass.Info, call.Args[idx]); ok {
				mark(ref)
			}
		}
	}
	if recvKnown {
		for _, fld := range use.ClosesFields {
			mark(chainRef{recvRef.root, joinField(recvRef.path, fld)})
		}
	}
}

// checkLoopSpawn flags a goroutine spawned inside an unbounded loop
// with nothing in the loop tying the spawn rate to a budget: no
// channel operation (token semaphore) and no submit/acquire call
// outside the spawned body itself.
func (w *csWalker) checkLoopSpawn(g *ast.GoStmt) {
	if len(w.loops) == 0 {
		return
	}
	loop := w.loops[len(w.loops)-1]
	if loopHasBudget(w.pass, loop) {
		return
	}
	w.pass.Reportf(g.Pos(), "goroutine spawned in an unbounded loop with no worker budget: each iteration adds a goroutine; bound it with a token channel, errgroup-style semaphore, or parallel.Pipe")
}

func loopHasBudget(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // the spawned work itself is not a budget
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Submit", "Acquire", "Go":
					found = true
				}
			}
		}
		return true
	})
	return found
}

// checkDeadSelect reports a select in which every case waits on a
// function-local channel that nothing else can ever fire: no escape
// to a call, goroutine, or alias, no buffered capacity for send
// cases, and no prior send for receive cases.
func (w *csWalker) checkDeadSelect(s *ast.SelectStmt) {
	if selectHasDefault(s) || len(s.Body.List) == 0 {
		return
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			return
		}
		var chExpr ast.Expr
		isSend := false
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			chExpr, isSend = comm.Chan, true
		case *ast.ExprStmt:
			u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr)
			if !ok || u.Op != token.ARROW {
				return
			}
			chExpr = u.X
		case *ast.AssignStmt:
			if len(comm.Rhs) != 1 {
				return
			}
			u, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr)
			if !ok || u.Op != token.ARROW {
				return
			}
			chExpr = u.X
		default:
			return
		}
		ref, ok := chanChain(w.pass.Info, chExpr)
		if !ok || !w.profile.made[ref] || w.profile.escaped[ref] {
			return
		}
		if isSend && w.profile.buffered[ref] {
			return // a buffered send case may proceed on its own
		}
		if !isSend && w.profile.sends[ref] > 0 {
			return // an earlier same-goroutine send may be buffered
		}
	}
	w.pass.Reportf(s.Pos(), "select can never proceed: every case waits on a channel made here that no goroutine, callee, or alias can fire — the producer was never started")
}

func chainDisplay(e ast.Expr) string {
	var b strings.Builder
	writeChain(&b, e)
	if b.Len() == 0 {
		return "channel"
	}
	return b.String()
}

func writeChain(b *strings.Builder, e ast.Expr) {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		b.WriteString(v.Name)
	case *ast.SelectorExpr:
		writeChain(b, v.X)
		if b.Len() > 0 {
			b.WriteString(".")
		}
		b.WriteString(v.Sel.Name)
	case *ast.UnaryExpr:
		writeChain(b, v.X)
	case *ast.StarExpr:
		writeChain(b, v.X)
	}
}

func posDisplay(p token.Position) string {
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + itoa(p.Line)
}

func viaSuffix(via string) string {
	if via == "" {
		return ""
	}
	return " (via " + via + ")"
}
