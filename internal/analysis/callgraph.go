package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CGNode is one function in the whole-repo call graph. Calls made
// inside function literals are attributed to the enclosing declared
// function — the graph tracks "what can run when X is invoked", and a
// literal's body only runs via its host (directly or as a goroutine
// it spawns).
type CGNode struct {
	Key  string      // FuncKey of the function
	Fn   *types.Func // nil for nodes only ever seen as callees
	Decl *ast.FuncDecl
	Pos  token.Pos
	// The fields below duplicate what Finish phases need from Fn/Decl
	// in a serializable form, so nodes replayed from the incremental
	// cache (where no live type info exists) behave identically.
	// HasDecl marks a node whose declaration was seen in a loaded
	// unit; Name/Exported/IsMethod/TestFile are only meaningful then.
	HasDecl  bool
	Name     string
	Exported bool
	IsMethod bool
	TestFile bool
	// Position is the resolved declaration position (zero for
	// callee-only nodes).
	Position token.Position
	// HasRecover marks a function with a top-level deferred recover:
	// panics raised anywhere below it are absorbed, so panic facts
	// must not propagate through it.
	HasRecover bool
	// Callees and Callers are sorted FuncKeys. Abstract interface
	// methods appear as their own nodes with CHA edges to every
	// module-local concrete implementation.
	Callees []string
	Callers []string

	callees map[string]bool
}

// CallGraph indexes CGNodes by FuncKey.
type CallGraph struct {
	nodes map[string]*CGNode
}

// Node returns the graph node for key, or nil.
func (g *CallGraph) Node(key string) *CGNode { return g.nodes[key] }

// Keys returns every node key, sorted.
func (g *CallGraph) Keys() []string {
	out := make([]string, 0, len(g.nodes))
	for k := range g.nodes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ReachableFrom returns the set of keys reachable from the given
// roots (inclusive) by following call edges.
func (g *CallGraph) ReachableFrom(roots ...string) map[string]bool {
	seen := map[string]bool{}
	queue := append([]string(nil), roots...)
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		if seen[key] {
			continue
		}
		seen[key] = true
		if n := g.nodes[key]; n != nil {
			queue = append(queue, n.Callees...)
		}
	}
	return seen
}

func (g *CallGraph) node(key string) *CGNode {
	n := g.nodes[key]
	if n == nil {
		n = &CGNode{Key: key, callees: map[string]bool{}}
		g.nodes[key] = n
	}
	return n
}

func (g *CallGraph) edge(from, to string) {
	n := g.node(from)
	if !n.callees[to] {
		n.callees[to] = true
	}
	g.node(to)
}

// BuildCallGraph constructs the call graph over every loaded unit.
// Interface method calls get class-hierarchy edges: an abstract
// method node links to the matching method of every module-local
// named type that implements the interface, so panic and taint facts
// flow through dynamic dispatch instead of vanishing at it.
func BuildCallGraph(fset *token.FileSet, units []*Unit) *CallGraph {
	g := &CallGraph{nodes: map[string]*CGNode{}}
	g.addUnits(fset, units, nil)
	g.finalize()
	return g
}

// addUnits collects declarations and call edges from units into g.
// extraTypes widens the CHA concrete-type pool beyond the units' own
// package scopes — the incremental driver passes the scopes of
// type-checked dependency packages so interface calls in re-analyzed
// units still resolve to implementations declared elsewhere.
func (g *CallGraph) addUnits(fset *token.FileSet, units []*Unit, extraTypes []types.Type) {
	type ifaceCall struct {
		iface  *types.Interface
		method *types.Func
	}
	var abstract []ifaceCall
	seenAbstract := map[string]bool{}
	concrete := append([]types.Type(nil), extraTypes...)

	for _, unit := range units {
		// Every exported named type is an implementation candidate
		// for CHA resolution of interface calls.
		scope := unit.Pkg.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				concrete = append(concrete, tn.Type())
			}
		}
		for _, file := range unit.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := unit.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				caller := FuncKey(fn)
				node := g.node(caller)
				node.Fn, node.Decl, node.Pos = fn, fd, fd.Pos()
				node.HasDecl = true
				node.Name = fn.Name()
				node.Exported = fn.Exported()
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					node.IsMethod = true
				}
				node.Position = fset.Position(fd.Pos())
				node.TestFile = strings.HasSuffix(node.Position.Filename, "_test.go")
				node.HasRecover = hasRecoverGuard(unit.Info, fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeFunc(unit.Info, call)
					if callee == nil {
						return true
					}
					key := FuncKey(callee)
					g.edge(caller, key)
					if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
						if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok && !seenAbstract[key] {
							seenAbstract[key] = true
							abstract = append(abstract, ifaceCall{iface, callee})
							g.node(key).Fn = callee
						}
					}
					return true
				})
			}
		}
	}

	// CHA: resolve each abstract method against the collected types.
	for _, ac := range abstract {
		for _, t := range concrete {
			for _, recv := range []types.Type{t, types.NewPointer(t)} {
				if types.IsInterface(recv.Underlying()) || !types.Implements(recv, ac.iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(recv, true, ac.method.Pkg(), ac.method.Name())
				if m, ok := obj.(*types.Func); ok {
					g.edge(FuncKey(ac.method), FuncKey(m))
				}
				break
			}
		}
	}
}

// finalize freezes the edge maps into sorted Callees lists and
// computes the Callers back-edges. Call once, after every unit (live
// or replayed from cache) has contributed its edges.
func (g *CallGraph) finalize() {
	for _, n := range g.nodes {
		n.Callees = make([]string, 0, len(n.callees))
		for k := range n.callees {
			n.Callees = append(n.Callees, k)
		}
		sort.Strings(n.Callees)
		n.Callers = nil
	}
	for _, key := range g.Keys() {
		for _, callee := range g.nodes[key].Callees {
			g.nodes[callee].Callers = append(g.nodes[callee].Callers, key)
		}
	}
	for _, n := range g.nodes {
		sort.Strings(n.Callers)
	}
}

// hasRecoverGuard reports whether body defers a call that invokes
// recover, i.e. the function absorbs panics from everything below it.
func hasRecoverGuard(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(def.Call.Fun).(*ast.FuncLit); ok {
			if callsRecover(info, lit.Body) {
				found = true
			}
		}
		if id, ok := ast.Unparen(def.Call.Fun).(*ast.Ident); ok && id.Name == "recover" && isBuiltin(info, id) {
			found = true
		}
		return true
	})
	return found
}

// callsRecover reports a direct recover() call inside body (not
// nested in a further function literal).
func callsRecover(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" && isBuiltin(info, id) {
				found = true
			}
		}
		return true
	})
	return found
}

// isBuiltin reports whether the identifier resolves to a universe
// builtin (and not a shadowing declaration).
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}
