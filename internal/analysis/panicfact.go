package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// panicfact computes, for every function, whether invoking it may
// panic — an explicit panic call, a single-form type assertion, or an
// index/slice whose bound derives from untrusted input — and exports
// the result as a fact so callers in later-analyzed packages inherit
// it through the call graph. The Finish phase then reports every
// panic source reachable from an exported Decompress*/Decode* entry
// point that has no intervening recover: corrupted streams must fail
// with an error, never a crash.

// PanicSite is one potential panic source, positioned at the
// operation that would raise it.
type PanicSite struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	What string `json:"what"`
	// Via names the call chain from the fact's function down to the
	// site, empty for a site local to the function.
	Via string `json:"via,omitempty"`
}

func (s PanicSite) key() string { return fmt.Sprintf("%s:%d:%d:%s", s.File, s.Line, s.Col, s.What) }

// MayPanicFact marks a function that can panic, carrying a bounded
// sample of the reachable panic sources.
type MayPanicFact struct {
	Sources []PanicSite `json:"sources"`
}

func (*MayPanicFact) FactName() string { return "panicfact.maypanic" }

// maxPanicSites bounds the per-function source sample so deep call
// graphs stay cheap; a function over the cap still carries the fact,
// just not every site.
const maxPanicSites = 6

func init() {
	RegisterFactType(func() Fact { return new(MayPanicFact) })
	Register(&Analyzer{
		Name: "panicfact",
		Doc: "a potential panic (explicit panic call, single-form type assertion, or index/slice bound " +
			"derived from untrusted input) is reachable from an exported Decompress*/Decode* entry point " +
			"with no recover on the path; decoders of untrusted streams must fail with an error instead",
		Run:    runPanicFact,
		Finish: finishPanicFact,
	})
}

func runPanicFact(pass *Pass) error {
	type target struct {
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var targets []target
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				targets = append(targets, target{fn, fd})
			}
		}
	}

	// Local panic sources per function.
	local := map[string][]PanicSite{}
	for _, t := range targets {
		key := FuncKey(t.fn)
		if node := pass.Graph.Node(key); node != nil && node.HasRecover {
			continue
		}
		local[key] = localPanicSites(pass, t.decl)
	}

	// Fixpoint: merge callee facts (cross-package facts are already
	// final thanks to topological unit order; the iteration handles
	// intra-package call chains and recursion).
	for round := 0; round < 6; round++ {
		changed := false
		for _, t := range targets {
			key := FuncKey(t.fn)
			node := pass.Graph.Node(key)
			if node == nil || node.HasRecover {
				continue
			}
			merged := map[string]PanicSite{}
			for _, s := range local[key] {
				merged[s.key()] = s
			}
			for _, callee := range node.Callees {
				f, ok := pass.Facts.ImportKey(callee, "panicfact.maypanic")
				if !ok {
					continue
				}
				for _, s := range f.(*MayPanicFact).Sources {
					via := calleeShortName(callee)
					if s.Via != "" {
						via += " → " + s.Via
					}
					if len(via) > 120 {
						via = via[:120]
					}
					ns := s
					ns.Via = via
					if _, dup := merged[ns.key()]; !dup {
						merged[ns.key()] = ns
					}
				}
			}
			if len(merged) == 0 {
				continue
			}
			sites := make([]PanicSite, 0, len(merged))
			for _, s := range merged {
				sites = append(sites, s)
			}
			sortPanicSites(sites)
			if len(sites) > maxPanicSites {
				sites = sites[:maxPanicSites]
			}
			fact := &MayPanicFact{Sources: sites}
			if exportOrWithdraw(pass.Facts, key, true, fact) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return nil
}

// localPanicSites collects the panic sources inside one declaration.
func localPanicSites(pass *Pass, decl *ast.FuncDecl) []PanicSite {
	var sites []PanicSite
	addSite := func(pos token.Pos, what string) {
		p := pass.Fset.Position(pos)
		sites = append(sites, PanicSite{File: p.Filename, Line: p.Line, Col: p.Column, What: what})
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" && isBuiltin(pass.Info, id) {
				addSite(n.Pos(), "explicit panic")
			}
		case *ast.TypeAssertExpr:
			if n.Type == nil {
				return true // type switch
			}
			if tv, ok := pass.Info.Types[n]; ok {
				if _, isTuple := tv.Type.(*types.Tuple); isTuple {
					return true // comma-ok form cannot panic
				}
			}
			addSite(n.Pos(), "single-form type assertion")
		}
		return true
	})
	// Tainted index/slice bounds via the shared taint walk.
	scanTaint(pass.Info, pass.Facts, decl, &taintHooks{
		index: func(pos token.Pos, origin string) {
			addSite(pos, "index/slice bound from untrusted input ("+origin+")")
		},
	})
	sortPanicSites(sites)
	return sites
}

func sortPanicSites(sites []PanicSite) {
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.What != b.What {
			return a.What < b.What
		}
		return a.Via < b.Via
	})
}

// calleeShortName trims "(*pkg/path.Type).Method" or "pkg/path.Func"
// to "Type.Method" / "Func" for readable via-chains.
func calleeShortName(key string) string {
	s := strings.TrimPrefix(key, "(*")
	s = strings.TrimSuffix(strings.Replace(s, ").", ".", 1), ")")
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	if i := strings.Index(s, "."); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// finishPanicFact reports, after all units are analyzed, every panic
// source whose fact reached an exported decoder entry point. The
// diagnostic lands at the panic source so the fix (or waiver with its
// justification) sits next to the offending operation.
func finishPanicFact(pass *Pass) error {
	reported := map[string]bool{}
	for _, key := range pass.Graph.Keys() {
		node := pass.Graph.Node(key)
		if !isDecodeEntry(pass, node) {
			continue
		}
		f, ok := pass.Facts.ImportKey(key, "panicfact.maypanic")
		if !ok {
			continue
		}
		for _, s := range f.(*MayPanicFact).Sources {
			if reported[s.key()] {
				continue
			}
			reported[s.key()] = true
			via := ""
			if s.Via != "" {
				via = " (via " + s.Via + ")"
			}
			pass.ReportAt(token.Position{Filename: s.File, Line: s.Line, Column: s.Col},
				"possible panic (%s) is reachable from exported decoder %s%s without an intervening recover",
				s.What, node.Name, via)
		}
	}
	return nil
}

// isDecodeEntry recognizes the exported decoder entry points: a
// module-local top-level function (not a method) whose name starts
// with Decompress or Decode, declared outside test files. It reads
// only the node's serializable metadata, so entries replayed from the
// incremental cache are recognized identically.
func isDecodeEntry(pass *Pass, node *CGNode) bool {
	if node == nil || !node.HasDecl || node.HasRecover {
		return false
	}
	if !node.Exported || node.IsMethod || node.TestFile {
		return false
	}
	return strings.HasPrefix(node.Name, "Decompress") || strings.HasPrefix(node.Name, "Decode")
}
