package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// This file is the def-use/taint core shared by the interprocedural
// analyzers. Within one function it walks statements in order,
// tracking which objects carry values decoded from untrusted bytes
// (wire sources: encoding/binary reads, bitio bit reads, huffman
// symbol decodes). A comparison in an if or switch condition
// sanitizes the compared objects — the analyzers flag *unguarded*
// flows, and any explicit bound check is taken as the guard. Calls
// are summarized through three fact kinds so taint crosses function
// and package boundaries without a global data-flow pass:
//
//   - taint.result: the callee's results derive from wire bytes
//   - taint.ptrargs: the callee writes wire bytes through these
//     pointer parameters (e.g. a binary.Read wrapper)
//   - taint.paramalloc: the callee passes these parameters to an
//     allocation size without its own bound check
//
// Summaries are computed per unit to a fixpoint (so helpers may be
// declared after their callers, or recurse) before analyzers run;
// topological unit ordering makes dependency summaries available to
// dependents.

// UntrustedResultFact marks a function whose results derive from
// untrusted wire bytes.
type UntrustedResultFact struct {
	Origin string `json:"origin"`
}

func (*UntrustedResultFact) FactName() string { return "taint.result" }

// TaintsPtrArgsFact marks a function that stores wire-derived bytes
// through the pointees of the listed parameter indices.
type TaintsPtrArgsFact struct {
	Params []int  `json:"params"`
	Origin string `json:"origin"`
}

func (*TaintsPtrArgsFact) FactName() string { return "taint.ptrargs" }

// ParamAllocFact marks a function that lets the listed parameters
// reach an allocation size (make/append growth) without comparing
// them against a bound first. A caller passing a tainted value into
// such a parameter inherits the allocation sink.
type ParamAllocFact struct {
	Params []int `json:"params"`
}

func (*ParamAllocFact) FactName() string { return "taint.paramalloc" }

func init() {
	RegisterFactType(func() Fact { return new(UntrustedResultFact) })
	RegisterFactType(func() Fact { return new(TaintsPtrArgsFact) })
	RegisterFactType(func() Fact { return new(ParamAllocFact) })
}

// taintHooks receive sink events during a scan. Nil fields are
// skipped, so each analyzer subscribes only to the sinks it reports.
type taintHooks struct {
	// makeSize fires when a tainted value reaches a make length or
	// capacity argument.
	makeSize func(pos token.Pos, origin string)
	// readBound fires when a tainted value bounds an io read
	// (io.ReadFull / io.ReadAtLeast slice bounds, io.CopyN count).
	readBound func(pos token.Pos, what, origin string)
	// loopAppend fires for an append whose enclosing loop runs a
	// tainted number of iterations.
	loopAppend func(pos token.Pos, origin string)
	// index fires when a tainted value is used as an index or slice
	// bound (a potential out-of-range panic).
	index func(pos token.Pos, origin string)
	// paramAlloc fires when a tainted argument flows into a callee
	// parameter that the callee's ParamAllocFact marks as reaching an
	// allocation unguarded.
	paramAlloc func(pos token.Pos, callee *types.Func, origin string)
}

const paramOriginPrefix = "\x00param#"

func paramOrigin(i int) string { return fmt.Sprintf("%s%d", paramOriginPrefix, i) }

func isParamOrigin(o string) (int, bool) {
	if !strings.HasPrefix(o, paramOriginPrefix) {
		return 0, false
	}
	i, err := strconv.Atoi(strings.TrimPrefix(o, paramOriginPrefix))
	if err != nil {
		return 0, false
	}
	return i, true
}

// combineOrigin joins two taint origins, preferring a concrete wire
// origin over a parameter-derived one so reports name the source.
func combineOrigin(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	if _, ap := isParamOrigin(a); ap {
		if _, bp := isParamOrigin(b); !bp {
			return b
		}
	}
	return a
}

// viaOrigin extends a summarized origin with the callee it crossed.
func viaOrigin(base, callee string) string {
	o := base + " via " + callee
	if len(o) > 160 {
		o = o[:160]
	}
	return o
}

// taintEngine walks one function.
type taintEngine struct {
	info  *types.Info
	facts *FactStore
	hooks *taintHooks

	tainted map[types.Object]string
	// loopOrigins is the stack of tainted loop-trip origins enclosing
	// the current statement.
	loopOrigins []string

	// Summary-mode state (hooks == nil): params are pre-tainted with
	// param origins and the walk records what escapes where.
	paramObjs   map[types.Object]int
	resultObjs  []types.Object
	retOrigin   string
	ptrParams   map[int]string
	allocParams map[int]bool
}

func newTaintEngine(info *types.Info, facts *FactStore, hooks *taintHooks) *taintEngine {
	return &taintEngine{
		info:        info,
		facts:       facts,
		hooks:       hooks,
		tainted:     map[types.Object]string{},
		paramObjs:   map[types.Object]int{},
		ptrParams:   map[int]string{},
		allocParams: map[int]bool{},
	}
}

// scanTaint runs the reporting walk over one declared function,
// firing hooks at unguarded sinks.
func scanTaint(info *types.Info, facts *FactStore, decl *ast.FuncDecl, hooks *taintHooks) {
	e := newTaintEngine(info, facts, hooks)
	e.stmts(decl.Body.List)
}

// summarizeUnitTaint computes and exports the three summary fact
// kinds for every non-test function of the unit, iterating to a
// fixpoint so intra-package call chains summarize regardless of
// declaration order.
func summarizeUnitTaint(fset *token.FileSet, unit *Unit, facts *FactStore) {
	type target struct {
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var targets []target
	for _, file := range unit.Files {
		if strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := unit.Info.Defs[fd.Name].(*types.Func); ok {
				targets = append(targets, target{fn, fd})
			}
		}
	}
	for round := 0; round < 4; round++ {
		changed := false
		for _, t := range targets {
			if summarizeFunc(unit.Info, facts, t.fn, t.decl) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// summarizeFunc runs one summary walk and (re-)exports the resulting
// facts, reporting whether anything changed.
func summarizeFunc(info *types.Info, facts *FactStore, fn *types.Func, decl *ast.FuncDecl) bool {
	e := newTaintEngine(info, facts, nil)

	// Pre-taint parameters with their indices so the walk discovers
	// param-to-sink and param-to-result flows.
	idx := 0
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				e.paramObjs[obj] = idx
				e.tainted[obj] = paramOrigin(idx)
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	if decl.Type.Results != nil {
		for _, field := range decl.Type.Results.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					e.resultObjs = append(e.resultObjs, obj)
				}
			}
		}
	}
	e.stmts(decl.Body.List)

	key := FuncKey(fn)
	changed := false
	changed = exportOrWithdraw(facts, key, e.retOrigin != "", &UntrustedResultFact{Origin: e.retOrigin}) || changed
	if len(e.ptrParams) > 0 {
		var params []int
		origin := ""
		for i, o := range e.ptrParams {
			params = append(params, i)
			origin = combineOrigin(origin, o)
		}
		sortInts(params)
		changed = exportOrWithdraw(facts, key, true, &TaintsPtrArgsFact{Params: params, Origin: origin}) || changed
	} else {
		changed = exportOrWithdraw(facts, key, false, &TaintsPtrArgsFact{}) || changed
	}
	if len(e.allocParams) > 0 {
		var params []int
		for i := range e.allocParams {
			params = append(params, i)
		}
		sortInts(params)
		changed = exportOrWithdraw(facts, key, true, &ParamAllocFact{Params: params}) || changed
	} else {
		changed = exportOrWithdraw(facts, key, false, &ParamAllocFact{}) || changed
	}
	return changed
}

// exportOrWithdraw reconciles one fact slot against the store and
// reports whether the stored state changed.
func exportOrWithdraw(facts *FactStore, key string, present bool, fact Fact) bool {
	prev, had := facts.ImportKey(key, fact.FactName())
	if !present {
		if had {
			facts.DeleteKey(key, fact.FactName())
			return true
		}
		return false
	}
	if had && fmt.Sprintf("%+v", prev) == fmt.Sprintf("%+v", fact) {
		return false
	}
	facts.ExportKey(key, fact)
	return true
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ---- statement walk ----

func (e *taintEngine) stmts(list []ast.Stmt) {
	for _, s := range list {
		e.stmt(s)
	}
}

func (e *taintEngine) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		e.expr(s.X)
	case *ast.AssignStmt:
		e.assignStmt(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					o := ""
					if i < len(vs.Values) {
						o = e.expr(vs.Values[i])
					} else if len(vs.Values) == 1 {
						o = e.expr(vs.Values[0])
					}
					e.taintIdent(name, o)
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			e.stmt(s.Init)
		}
		e.expr(s.Cond)
		e.sanitizeCond(s.Cond)
		e.stmts(s.Body.List)
		if s.Else != nil {
			e.stmt(s.Else)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			e.stmt(s.Init)
		}
		if s.Tag != nil {
			e.expr(s.Tag)
			e.sanitizeCond(s.Tag)
		}
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CaseClause)
			for _, c := range cc.List {
				e.expr(c)
				if s.Tag == nil {
					e.sanitizeCond(c)
				}
			}
			e.stmts(cc.Body)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			e.stmt(s.Init)
		}
		e.stmt(s.Assign)
		for _, clause := range s.Body.List {
			e.stmts(clause.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			if cc.Comm != nil {
				e.stmt(cc.Comm)
			}
			e.stmts(cc.Body)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			e.stmt(s.Init)
		}
		loopOrigin := ""
		if s.Cond != nil {
			loopOrigin = e.taintedCondOrigin(s.Cond)
			e.expr(s.Cond)
		}
		if loopOrigin != "" {
			e.loopOrigins = append(e.loopOrigins, loopOrigin)
		}
		e.stmts(s.Body.List)
		if s.Post != nil {
			e.stmt(s.Post)
		}
		if loopOrigin != "" {
			e.loopOrigins = e.loopOrigins[:len(e.loopOrigins)-1]
		}
	case *ast.RangeStmt:
		o := e.expr(s.X)
		overInt := false
		if tv, ok := e.info.Types[s.X]; ok && tv.Type != nil {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				overInt = true
			}
		}
		if s.Key != nil {
			ko := ""
			if overInt {
				ko = o
			}
			e.assignTo(s.Key, ko)
		}
		if s.Value != nil {
			e.assignTo(s.Value, o)
		}
		if overInt && o != "" {
			e.loopOrigins = append(e.loopOrigins, o)
			e.stmts(s.Body.List)
			e.loopOrigins = e.loopOrigins[:len(e.loopOrigins)-1]
		} else {
			e.stmts(s.Body.List)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			e.noteReturn(e.expr(r))
		}
		if len(s.Results) == 0 {
			for _, obj := range e.resultObjs {
				e.noteReturn(e.tainted[obj])
			}
		}
	case *ast.GoStmt:
		e.expr(s.Call)
	case *ast.DeferStmt:
		e.expr(s.Call)
	case *ast.SendStmt:
		e.expr(s.Chan)
		e.expr(s.Value)
	case *ast.IncDecStmt:
		e.expr(s.X)
	case *ast.BlockStmt:
		e.stmts(s.List)
	case *ast.LabeledStmt:
		e.stmt(s.Stmt)
	}
}

func (e *taintEngine) noteReturn(origin string) {
	if origin == "" {
		return
	}
	if _, isParam := isParamOrigin(origin); isParam {
		return // returning a parameter is not untrusted by itself
	}
	e.retOrigin = combineOrigin(e.retOrigin, origin)
}

func (e *taintEngine) assignStmt(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		o := e.expr(s.Rhs[0])
		for _, l := range s.Lhs {
			e.assignTo(l, o)
		}
		return
	}
	for i, r := range s.Rhs {
		o := e.expr(r)
		if i >= len(s.Lhs) {
			continue
		}
		if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
			e.assignTo(s.Lhs[i], o)
		} else if o != "" {
			// Compound assignment only ever adds taint.
			e.assignTo(s.Lhs[i], o)
		}
	}
}

// assignTo propagates taint into an assignment target. Storing into
// an element or field of a container taints the whole container
// (coarse, but sound for the bound-check policy); a plain identifier
// assignment replaces its taint, so reassigning from a clean value
// launders.
func (e *taintEngine) assignTo(l ast.Expr, origin string) {
	switch l := ast.Unparen(l).(type) {
	case *ast.Ident:
		e.taintIdent(l, origin)
	case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
		if origin == "" {
			return
		}
		if root := e.rootObj(l); root != nil {
			e.tainted[root] = combineOrigin(e.tainted[root], origin)
		}
	}
}

func (e *taintEngine) taintIdent(id *ast.Ident, origin string) {
	if id.Name == "_" {
		return
	}
	obj := e.info.Defs[id]
	if obj == nil {
		obj = e.info.Uses[id]
	}
	if obj == nil {
		return
	}
	if origin == "" {
		delete(e.tainted, obj)
		return
	}
	e.tainted[obj] = origin
}

// rootObj resolves the base identifier of a selector/index/deref
// chain (h.EncLen -> h, buf[i] -> buf).
func (e *taintEngine) rootObj(x ast.Expr) types.Object {
	return rootObjOf(e.info, x)
}

// rootObjOf is the shared walk behind taintEngine.rootObj, also used
// by integrityflow's verification-state engine.
func rootObjOf(info *types.Info, x ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(x).(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				if _, isPkg := obj.(*types.PkgName); isPkg {
					return nil
				}
				return obj
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			x = v.X
		case *ast.IndexExpr:
			x = v.X
		case *ast.StarExpr:
			x = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return nil
			}
			x = v.X
		case *ast.SliceExpr:
			x = v.X
		default:
			return nil
		}
	}
}

// sanitizeCond clears taint from every object that participates in a
// comparison inside cond: an explicit check against anything is taken
// as the bound the analyzers ask for.
func (e *taintEngine) sanitizeCond(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
			e.clearTaintIn(be.X)
			e.clearTaintIn(be.Y)
		}
		return true
	})
	// A switch tag is an implicit equality comparison.
	if _, ok := cond.(*ast.BinaryExpr); !ok {
		e.clearTaintIn(cond)
	}
}

func (e *taintEngine) clearTaintIn(x ast.Expr) {
	ast.Inspect(x, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			obj := e.info.Uses[id]
			if obj == nil {
				obj = e.info.Defs[id]
			}
			if obj != nil {
				delete(e.tainted, obj)
			}
		}
		return true
	})
}

// taintedCondOrigin reports the origin of a tainted operand used in a
// comparison inside a loop condition (`i < n` with tainted n), which
// marks the loop as running a wire-controlled number of iterations.
func (e *taintEngine) taintedCondOrigin(cond ast.Expr) string {
	origin := ""
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			obj := e.info.Uses[id]
			if obj == nil {
				obj = e.info.Defs[id]
			}
			if obj != nil {
				if o, ok := e.tainted[obj]; ok {
					if _, isParam := isParamOrigin(o); !isParam {
						origin = combineOrigin(origin, o)
					}
				}
			}
		}
		return true
	})
	return origin
}

// ---- expression walk ----

// expr walks x, firing sink hooks, and returns its taint origin ("" =
// clean).
func (e *taintEngine) expr(x ast.Expr) string {
	switch x := x.(type) {
	case nil:
		return ""
	case *ast.Ident:
		obj := e.info.Uses[x]
		if obj == nil {
			obj = e.info.Defs[x]
		}
		if obj != nil {
			return e.tainted[obj]
		}
		return ""
	case *ast.ParenExpr:
		return e.expr(x.X)
	case *ast.CallExpr:
		return e.call(x)
	case *ast.BinaryExpr:
		lo := e.expr(x.X)
		ro := e.expr(x.Y)
		switch x.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ,
			token.LAND, token.LOR:
			return "" // booleans carry no size
		case token.AND, token.REM:
			// x & mask and x % modulus with a constant operand are
			// bounding idioms.
			if _, isConst := constInt(e.info, x.X); isConst {
				return ""
			}
			if _, isConst := constInt(e.info, x.Y); isConst {
				return ""
			}
		}
		return combineOrigin(lo, ro)
	case *ast.UnaryExpr:
		return e.expr(x.X)
	case *ast.StarExpr:
		return e.expr(x.X)
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if _, isPkg := e.info.Uses[id].(*types.PkgName); isPkg {
				return ""
			}
		}
		return e.expr(x.X)
	case *ast.IndexExpr:
		xo := e.expr(x.X)
		io := e.expr(x.Index)
		if io != "" {
			e.fireIndex(x.Index.Pos(), x.X, io)
		}
		return combineOrigin(xo, io)
	case *ast.IndexListExpr:
		return e.expr(x.X)
	case *ast.SliceExpr:
		xo := e.expr(x.X)
		for _, b := range []ast.Expr{x.Low, x.High, x.Max} {
			if b == nil {
				continue
			}
			if bo := e.expr(b); bo != "" {
				e.fireIndex(b.Pos(), x.X, bo)
			}
		}
		return xo
	case *ast.CompositeLit:
		origin := ""
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			origin = combineOrigin(origin, e.expr(elt))
		}
		return origin
	case *ast.TypeAssertExpr:
		return e.expr(x.X)
	case *ast.FuncLit:
		e.stmts(x.Body.List)
		return ""
	}
	return ""
}

// fireIndex reports a tainted index/slice bound unless the indexed
// container is a map (map reads cannot panic or allocate).
func (e *taintEngine) fireIndex(pos token.Pos, container ast.Expr, origin string) {
	if e.hooks == nil || e.hooks.index == nil {
		return
	}
	if _, isParam := isParamOrigin(origin); isParam {
		return
	}
	if tv, ok := e.info.Types[container]; ok && tv.Type != nil {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return
		}
	}
	e.hooks.index(pos, origin)
}

func (e *taintEngine) call(call *ast.CallExpr) string {
	// Conversions propagate their operand's taint: int(rd.u32()) is
	// just as untrusted as the u32.
	if tv, ok := e.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return e.expr(call.Args[0])
		}
		return ""
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := e.info.Uses[id].(*types.Builtin); ok {
			return e.builtinCall(b.Name(), call)
		}
	}
	callee := calleeFunc(e.info, call)

	// io read bounds get a custom walk so slice-bound taint is seen
	// in context.
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "io" {
		switch callee.Name() {
		case "ReadFull", "ReadAtLeast":
			if o := e.handleIOReadBuf(call); o != "" {
				return ""
			}
			return ""
		case "CopyN":
			for i, a := range call.Args {
				o := e.expr(a)
				if i == 2 && o != "" {
					e.fireReadBound(a.Pos(), "io.CopyN byte count", o)
				}
			}
			return ""
		}
	}

	// Generic argument walk with per-argument origins.
	origins := make([]string, len(call.Args))
	for i, a := range call.Args {
		origins[i] = e.expr(a)
	}

	if callee == nil {
		return ""
	}

	// binary.Read writes wire bytes through its data pointer.
	if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "encoding/binary" && callee.Name() == "Read" && len(call.Args) == 3 {
		e.taintPointee(call.Args[2], "encoding/binary.Read")
		return ""
	}

	if origin, ok := wireSource(callee); ok {
		return origin
	}

	// Summarized callees.
	if f, ok := e.facts.Import(callee, "taint.ptrargs"); ok {
		fact := f.(*TaintsPtrArgsFact)
		for _, idx := range fact.Params {
			for _, a := range e.argsForParam(callee, call, idx) {
				e.taintPointee(a, viaOrigin(fact.Origin, callee.Name()))
			}
		}
	}
	if f, ok := e.facts.Import(callee, "taint.paramalloc"); ok {
		fact := f.(*ParamAllocFact)
		for _, idx := range fact.Params {
			for _, a := range e.argsForParam(callee, call, idx) {
				if i := argIndex(call, a); i >= 0 && origins[i] != "" {
					if pi, isParam := isParamOrigin(origins[i]); isParam {
						e.allocParams[pi] = true
					} else if e.hooks != nil && e.hooks.paramAlloc != nil {
						e.hooks.paramAlloc(a.Pos(), callee, origins[i])
					}
				}
			}
		}
	}
	if f, ok := e.facts.Import(callee, "taint.result"); ok {
		fact := f.(*UntrustedResultFact)
		return viaOrigin(fact.Origin, callee.Name())
	}
	return ""
}

func argIndex(call *ast.CallExpr, a ast.Expr) int {
	for i, arg := range call.Args {
		if arg == a {
			return i
		}
	}
	return -1
}

// argsForParam maps a callee parameter index to the call arguments
// that feed it, folding the variadic tail.
func (e *taintEngine) argsForParam(callee *types.Func, call *ast.CallExpr, idx int) []ast.Expr {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	n := sig.Params().Len()
	if sig.Variadic() && idx == n-1 {
		if len(call.Args) < n {
			return nil
		}
		return call.Args[n-1:]
	}
	if idx < len(call.Args) {
		return call.Args[idx : idx+1]
	}
	return nil
}

// taintPointee taints the object behind a pointer argument (&x or a
// pointer-typed variable), recording a ptr-param summary when the
// pointer itself derives from a parameter.
func (e *taintEngine) taintPointee(a ast.Expr, origin string) {
	root := e.rootObj(a)
	if root == nil {
		return
	}
	if prev, ok := e.tainted[root]; ok {
		if idx, isParam := isParamOrigin(prev); isParam {
			e.ptrParams[idx] = combineOrigin(e.ptrParams[idx], origin)
			return
		}
	}
	if idx, isParam := e.paramObjs[root]; isParam {
		e.ptrParams[idx] = combineOrigin(e.ptrParams[idx], origin)
		return
	}
	e.tainted[root] = combineOrigin(e.tainted[root], origin)
}

func (e *taintEngine) builtinCall(name string, call *ast.CallExpr) string {
	switch name {
	case "make":
		for _, a := range call.Args[1:] {
			if o := e.expr(a); o != "" {
				if pi, isParam := isParamOrigin(o); isParam {
					e.allocParams[pi] = true
				} else if e.hooks != nil && e.hooks.makeSize != nil {
					e.hooks.makeSize(a.Pos(), o)
				}
			}
		}
		return ""
	case "append":
		origin := ""
		for _, a := range call.Args {
			origin = combineOrigin(origin, e.expr(a))
		}
		if len(e.loopOrigins) > 0 && e.hooks != nil && e.hooks.loopAppend != nil {
			e.hooks.loopAppend(call.Pos(), e.loopOrigins[len(e.loopOrigins)-1])
		}
		return origin
	case "len", "cap":
		// The length of an existing object is bounded by the memory
		// already backing it — reading it launders taint.
		e.expr(call.Args[0])
		return ""
	case "min":
		// min(tainted, cap) is the bounding idiom.
		for _, a := range call.Args {
			e.expr(a)
		}
		return ""
	default:
		origin := ""
		for _, a := range call.Args {
			origin = combineOrigin(origin, e.expr(a))
		}
		if name == "panic" || name == "copy" || name == "clear" || name == "delete" || name == "print" || name == "println" {
			return ""
		}
		return origin
	}
}

func (e *taintEngine) handleIOReadBuf(call *ast.CallExpr) string {
	for i, a := range call.Args {
		if i == 1 {
			if s, ok := ast.Unparen(a).(*ast.SliceExpr); ok {
				e.expr(s.X)
				for _, b := range []ast.Expr{s.Low, s.High, s.Max} {
					if b == nil {
						continue
					}
					if o := e.expr(b); o != "" {
						e.fireReadBound(b.Pos(), "io read buffer bound", o)
					}
				}
				continue
			}
		}
		e.expr(a)
	}
	return ""
}

func (e *taintEngine) fireReadBound(pos token.Pos, what, origin string) {
	if e.hooks == nil || e.hooks.readBound == nil {
		return
	}
	if _, isParam := isParamOrigin(origin); isParam {
		return
	}
	e.hooks.readBound(pos, what, origin)
}

// wireSource designates the calls whose results are untrusted wire
// bytes: encoding/binary integer reads, bitio bit reads, and huffman
// symbol decodes.
func wireSource(f *types.Func) (string, bool) {
	pkg := f.Pkg()
	if pkg == nil {
		return "", false
	}
	path, name := pkg.Path(), f.Name()
	switch {
	case path == "encoding/binary":
		if strings.HasPrefix(name, "Uint") || strings.HasPrefix(name, "ReadUvarint") || strings.HasPrefix(name, "ReadVarint") || strings.HasPrefix(name, "Varint") || strings.HasPrefix(name, "Uvarint") {
			return "encoding/binary." + name, true
		}
	case path == "bitio" || strings.HasSuffix(path, "/bitio"):
		switch name {
		case "ReadBits", "ReadBit", "Peek":
			return "bitio." + name, true
		}
	case path == "huffman" || strings.HasSuffix(path, "/huffman"):
		if strings.HasPrefix(name, "Decode") {
			return "huffman-decoded symbol (" + name + ")", true
		}
	}
	return "", false
}
