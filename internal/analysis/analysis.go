// Package analysis is a self-contained static-analysis framework for
// this repository, modeled on the x/tools go/analysis pass shape but
// built only on the standard library (go/ast, go/parser, go/types,
// go/token). It powers cmd/arcvet.
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics. The driver (Run) loads packages, executes every
// registered analyzer, and filters findings through the inline
// suppression syntax:
//
//	//arcvet:ignore <analyzer> [justification]
//
// placed either on the offending line or on the line directly above
// it. Suppressions must name the analyzer they silence; a bare
// "//arcvet:ignore" is deliberately rejected so blanket waivers do
// not accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Pass carries everything one analyzer run on one package may use.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the import path of the package under analysis; test
	// packages keep their ".test" suffix-free path with test files
	// merged in.
	PkgPath string
	// Facts is the run-wide fact store. Units are analyzed in
	// topological import order, so facts exported while analyzing a
	// dependency are visible here when its dependents run.
	Facts *FactStore
	// Graph is the whole-repo call graph over every loaded unit.
	Graph *CallGraph

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportAt records a diagnostic at an already-resolved position. The
// Finish phase reports from serialized facts, which carry positions
// as file/line/column rather than token.Pos.
func (p *Pass) ReportAt(position token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	// Packages, when non-empty, restricts the analyzer to packages
	// whose import path contains any of the listed substrings. An
	// empty list means "run everywhere".
	Packages []string
	Run      func(*Pass) error
	// Finish, when set, runs once after every unit has been analyzed,
	// with the complete fact store and call graph. The Pass carries
	// no files or type info — Finish is for whole-repo conclusions
	// (e.g. reachability over exported facts).
	Finish func(*Pass) error
}

// AppliesTo reports whether the analyzer examines the given package.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, sub := range a.Packages {
		if strings.Contains(pkgPath, sub) {
			return true
		}
	}
	return false
}

// Diagnostic is one finding, locatable and attributable.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`

	// Flattened position fields for -json output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// String renders the conventional file:line:col: [analyzer] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// registry holds the built-in analyzers in registration order.
var registry []*Analyzer

// Register adds an analyzer to the default set. It panics on a
// duplicate name — names are the suppression keys, so they must be
// unambiguous.
func Register(a *Analyzer) {
	for _, ex := range registry {
		if ex.Name == a.Name {
			panic("analysis: duplicate analyzer " + a.Name)
		}
	}
	registry = append(registry, a)
}

// All returns the registered analyzers sorted by name.
func All() []*Analyzer {
	out := append([]*Analyzer(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName resolves a comma-separated analyzer list; unknown names are
// an error so typos in -only do not silently skip checks.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			var valid []string
			for _, a := range All() {
				valid = append(valid, a.Name)
			}
			return nil, fmt.Errorf("unknown analyzer %q (valid analyzers: %s)", name, strings.Join(valid, ", "))
		}
	}
	return out, nil
}
