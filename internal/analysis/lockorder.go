package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorder derives a repo-wide lock-acquisition-order graph from
// mutex Lock/Unlock pairs. Each function exports a summary fact: the
// lock classes it (transitively) acquires, the classes still held
// when it returns (lock/unlock helpers split across functions), the
// blocking operations it performs on its caller's goroutine, and the
// order edges it witnesses (acquiring B while holding A). The Run
// phase reports recursive acquisitions and blocking operations —
// channel sends/receives, selects without default, Wait, interface
// I/O — performed while a mutex is held; the Finish phase unions the
// edges and reports every cycle as a potential deadlock.
//
// Lock identity is class-based: "pkg/path.Type.field" for a mutex
// field of a named type, "pkg/path.var" for a package-level mutex.
// Distinct instances of one class are conflated — that is what makes
// the order graph finite — so a cycle means "there exists an
// instance pairing that deadlocks", the standard lockdep reading.

// LockAcquire is one lock class acquisition; Read marks RLock.
type LockAcquire struct {
	Class string `json:"class"`
	Read  bool   `json:"read,omitempty"`
}

// LockEdge records that To was acquired while From was held, at the
// given position (the acquire or call site that witnessed it).
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Via  string `json:"via,omitempty"`
}

// LockOrderFact is the per-function lock summary.
type LockOrderFact struct {
	Acquires   []LockAcquire `json:"acquires,omitempty"`
	HeldAtExit []LockAcquire `json:"heldAtExit,omitempty"`
	Blocks     []BlockSite   `json:"blocks,omitempty"`
	Edges      []LockEdge    `json:"edges,omitempty"`
}

func (*LockOrderFact) FactName() string { return "lockorder.summary" }

// maxLockBlocks bounds the per-function blocking-site sample, and
// maxLockEdges the per-function edge sample, mirroring panicfact's
// cap so deep graphs stay cheap.
const (
	maxLockBlocks = 6
	maxLockEdges  = 16
)

func init() {
	RegisterFactType(func() Fact { return new(LockOrderFact) })
	Register(&Analyzer{
		Name: "lockorder",
		Doc: "lock-order hazard: a cycle in the repo-wide lock-acquisition-order graph (potential deadlock), " +
			"a recursive acquisition of the same mutex, or a blocking operation (channel send/receive, " +
			"select without default, Wait, interface I/O) performed while a mutex is held",
		Run:    runLockOrder,
		Finish: finishLockOrder,
	})
}

// heldLock is one entry of the walker's held-lock stack. Locks pushed
// from a callee's HeldAtExit fact have a nil root and match unlocks
// by class; locally acquired locks match by (root, path) identity.
type heldLock struct {
	class        string
	read         bool
	root         types.Object
	path         string
	deferRelease bool
}

// loSummary accumulates one function's fact content during a walk.
type loSummary struct {
	acquires map[string]LockAcquire
	exit     map[string]LockAcquire
	blocks   map[string]BlockSite
	edges    map[string]LockEdge
}

func newLoSummary() *loSummary {
	return &loSummary{
		acquires: map[string]LockAcquire{},
		exit:     map[string]LockAcquire{},
		blocks:   map[string]BlockSite{},
		edges:    map[string]LockEdge{},
	}
}

func (s *loSummary) fact() (*LockOrderFact, bool) {
	if len(s.acquires) == 0 && len(s.exit) == 0 && len(s.blocks) == 0 && len(s.edges) == 0 {
		return nil, false
	}
	f := &LockOrderFact{}
	for _, a := range s.acquires {
		f.Acquires = append(f.Acquires, a)
	}
	for _, a := range s.exit {
		f.HeldAtExit = append(f.HeldAtExit, a)
	}
	for _, b := range s.blocks {
		f.Blocks = append(f.Blocks, b)
	}
	for _, e := range s.edges {
		f.Edges = append(f.Edges, e)
	}
	sortAcquires(f.Acquires)
	sortAcquires(f.HeldAtExit)
	sortBlockSites(f.Blocks)
	if len(f.Blocks) > maxLockBlocks {
		f.Blocks = f.Blocks[:maxLockBlocks]
	}
	sortLockEdges(f.Edges)
	if len(f.Edges) > maxLockEdges {
		f.Edges = f.Edges[:maxLockEdges]
	}
	return f, true
}

func sortAcquires(s []LockAcquire) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Class != s[j].Class {
			return s[i].Class < s[j].Class
		}
		return !s[i].Read && s[j].Read
	})
}

func sortLockEdges(s []LockEdge) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].From != s[j].From {
			return s[i].From < s[j].From
		}
		if s[i].To != s[j].To {
			return s[i].To < s[j].To
		}
		return s[i].Line < s[j].Line
	})
}

// loWalker walks one function body in statement order, maintaining
// the held-lock stack. In the report pass it emits diagnostics; in
// fact passes it only fills the summary.
type loWalker struct {
	pass   *Pass
	sum    *loSummary
	held   []heldLock
	report bool
	// sync is true while walking code that runs on the caller's
	// goroutine; function literals that may run elsewhere (goroutines,
	// worker pools) contribute acquires and edges but not Blocks.
	sync bool
	// body is the block being walked at top level, consulted by the
	// local fork-join and local join-receive exemptions.
	body *ast.BlockStmt
}

func runLockOrder(pass *Pass) error {
	targets := nonTestDecls(pass)

	// Fixpoint: each round recomputes every function's summary with
	// the facts of the previous round visible, so intra-package call
	// chains (helper locks → caller blocks) converge. Cross-package
	// facts are final already thanks to topological unit order. The
	// deepest repo chain (custom codec build under the cache lock) is
	// four calls; eight rounds leaves headroom.
	for round := 0; round < 8; round++ {
		changed := false
		for _, t := range targets {
			w := &loWalker{pass: pass, sum: newLoSummary(), sync: true, body: t.decl.Body}
			w.walkBody(t.decl.Body)
			w.finishBody()
			key := FuncKey(t.fn)
			fact, present := w.sum.fact()
			if present {
				if exportOrWithdraw(pass.Facts, key, true, fact) {
					changed = true
				}
			} else if exportOrWithdraw(pass.Facts, key, false, &LockOrderFact{}) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Report pass: walk once more with diagnostics enabled.
	for _, t := range targets {
		w := &loWalker{pass: pass, sum: newLoSummary(), sync: true, report: true, body: t.decl.Body}
		w.walkBody(t.decl.Body)
	}
	return nil
}

// finishBody folds the locks still held at the end of the linear walk
// into the HeldAtExit summary (deferred releases excluded: they fire
// on return).
func (w *loWalker) finishBody() {
	for _, h := range w.held {
		if h.class != "" && !h.deferRelease {
			w.sum.exit[h.class] = LockAcquire{Class: h.class, Read: h.read}
		}
	}
}

func (w *loWalker) walkBody(body *ast.BlockStmt) {
	for _, s := range body.List {
		w.walkStmt(s)
	}
}

// snapshot walks a branch with a copy of the held stack, so lock
// operations inside one branch do not leak into siblings or the code
// after the construct. An early-return branch that unlocks before
// returning therefore leaves the fall-through path's held set intact.
func (w *loWalker) snapshot(walk func()) {
	saved := make([]heldLock, len(w.held))
	copy(saved, w.held)
	walk()
	w.held = saved
}

func (w *loWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkBody(s)
	case *ast.ExprStmt:
		w.walkExpr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.walkExpr(e)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.walkExpr(s.Value)
		w.block(s.Pos(), "channel send")
	case *ast.IncDecStmt:
		w.walkExpr(s.X)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e)
		}
		w.finishBody()
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkExpr(s.Cond)
		w.snapshot(func() { w.walkBody(s.Body) })
		if s.Else != nil {
			w.snapshot(func() { w.walkStmt(s.Else) })
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond)
		}
		w.snapshot(func() {
			w.walkBody(s.Body)
			if s.Post != nil {
				w.walkStmt(s.Post)
			}
		})
	case *ast.RangeStmt:
		w.walkExpr(s.X)
		if tv, ok := w.pass.Info.Types[s.X]; ok && isChanType(tv.Type) {
			w.block(s.Pos(), "range over channel")
		}
		w.snapshot(func() { w.walkBody(s.Body) })
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.snapshot(func() {
					for _, st := range cc.Body {
						w.walkStmt(st)
					}
				})
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.snapshot(func() {
					for _, st := range cc.Body {
						w.walkStmt(st)
					}
				})
			}
		}
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			w.block(s.Pos(), "select without default")
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.snapshot(func() {
					for _, st := range cc.Body {
						w.walkStmt(st)
					}
				})
			}
		}
	case *ast.GoStmt:
		// The spawned body runs with its own (empty) held set; locks
		// the spawner holds are not held inside the goroutine. Walk it
		// for acquires/edges and for lock misuse local to the
		// goroutine, but its blocking ops do not block the caller.
		w.walkAsync(s.Call)
	case *ast.DeferStmt:
		w.walkDefer(s.Call)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	}
}

// walkAsync walks a call whose function may run on another goroutine
// (go statements, literals handed to worker pools): a fresh held
// stack, and no Blocks contribution to the enclosing function.
func (w *loWalker) walkAsync(call *ast.CallExpr) {
	for _, arg := range call.Args {
		w.walkExpr(arg)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		inner := &loWalker{pass: w.pass, sum: w.sum, report: w.report, sync: false, body: lit.Body}
		inner.walkBody(lit.Body)
	} else {
		w.walkExpr(call.Fun)
	}
}

// walkDefer registers deferred unlocks against the held stack (the
// lock stays held for the rest of the body but is released on every
// return path) and otherwise treats the deferred call as async.
func (w *loWalker) walkDefer(call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isUnlockName(sel.Sel.Name) {
		if w.markDeferRelease(sel) {
			return
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// defer func() { ... mu.Unlock() ... }(): scan for unlocks of
		// held locks and mark them released-at-exit.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if s, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok && isUnlockName(s.Sel.Name) {
				w.markDeferRelease(s)
			}
			return true
		})
	}
	w.walkAsync(call)
}

func isUnlockName(name string) bool { return name == "Unlock" || name == "RUnlock" }

// markDeferRelease flags the newest matching held lock as released on
// return. Returns true when the selector named a mutex unlock.
func (w *loWalker) markDeferRelease(sel *ast.SelectorExpr) bool {
	if fn, ok := w.pass.Info.Uses[sel.Sel].(*types.Func); !ok || !isMutexMethod(fn) {
		return false
	}
	root, path, ok := chainOf(w.pass.Info, sel.X)
	if !ok {
		return true
	}
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].root == root && w.held[i].path == path {
			w.held[i].deferRelease = true
			return true
		}
	}
	return true
}

func isMutexMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && isMutexType(sig.Recv().Type())
}

// walkExpr scans an expression in evaluation order for lock calls,
// function calls, receives, and nested literals.
func (w *loWalker) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		for _, arg := range e.Args {
			w.walkExpr(arg)
		}
		w.handleCall(e)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			w.walkExpr(e.X)
			w.receive(e)
			return
		}
		w.walkExpr(e.X)
	case *ast.BinaryExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Y)
	case *ast.ParenExpr:
		w.walkExpr(e.X)
	case *ast.StarExpr:
		w.walkExpr(e.X)
	case *ast.SelectorExpr:
		w.walkExpr(e.X)
	case *ast.IndexExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Index)
	case *ast.SliceExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Low)
		w.walkExpr(e.High)
		w.walkExpr(e.Max)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			w.walkExpr(elt)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(e.Value)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X)
	case *ast.FuncLit:
		// A literal not directly invoked may run on any goroutine
		// (worker pools, callbacks): fresh held set, no caller blocks.
		inner := &loWalker{pass: w.pass, sum: w.sum, report: w.report, sync: false, body: e.Body}
		inner.walkBody(e.Body)
	}
}

// receive handles a blocking channel receive expression.
func (w *loWalker) receive(e *ast.UnaryExpr) {
	if root, path, ok := chainOf(w.pass.Info, e.X); ok && w.body != nil &&
		localJoinReceive(w.pass.Info, w.body, root, path) {
		return
	}
	w.block(e.Pos(), "channel receive")
}

// handleCall processes one call: mutex Lock/Unlock, blocking
// classification, and callee summary merging.
func (w *loWalker) handleCall(call *ast.CallExpr) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately-invoked literal runs synchronously: walk with
		// the current held set.
		w.walkBody(lit.Body)
		return
	}
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	fn := calleeFunc(w.pass.Info, call)
	if selOK && fn != nil && isMutexMethod(fn) {
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
			w.acquire(sel, sel.Sel.Name == "RLock" || sel.Sel.Name == "TryRLock", call.Pos())
		case "Unlock", "RUnlock":
			w.release(sel)
		}
		return
	}

	// Blocking classification for non-mutex calls.
	if what, ok := blockingCall(w.pass.Info, call); ok {
		exempt := false
		if what == "sync.WaitGroup.Wait" && selOK {
			if root, path, ok := chainOf(w.pass.Info, sel.X); ok && w.body != nil &&
				localForkJoinWait(w.pass.Info, w.body, root, path) {
				exempt = true
			}
		}
		if !exempt {
			w.block(call.Pos(), what)
		}
	}

	// Merge the callee's summary.
	if fn == nil {
		return
	}
	f, ok := w.pass.Facts.Import(fn, "lockorder.summary")
	if !ok {
		return
	}
	sum := f.(*LockOrderFact)
	callee := FuncKey(fn)
	pos := w.pass.Fset.Position(call.Pos())

	// Order edges: every class the callee acquires is acquired after
	// every classed lock currently held here.
	for _, h := range w.held {
		if h.class == "" {
			continue
		}
		for _, a := range sum.Acquires {
			if a.Class == h.class {
				continue // cross-instance self-edges are pure noise
			}
			w.edge(h.class, a.Class, pos, calleeShortName(callee))
		}
	}
	// The callee's acquires and edges become ours (transitively).
	for _, a := range sum.Acquires {
		w.sum.acquires[acquireKey(a)] = a
	}
	for _, e := range sum.Edges {
		if _, dup := w.sum.edges[e.From+"|"+e.To]; !dup {
			w.sum.edges[e.From+"|"+e.To] = e
		}
	}
	// Blocking ops inside the callee block this goroutine too.
	if w.sync {
		mergeBlockSites(w.sum.blocks, callee, sum.Blocks)
	}
	if w.report && len(w.held) > 0 {
		for _, b := range sum.Blocks {
			w.reportBlocked(token.Position{Filename: b.File, Line: b.Line, Column: b.Col}, b.What, calleeChain(callee, b.Via))
		}
	}
	// Locks the callee leaves held join our held set (lock helpers).
	for _, a := range sum.HeldAtExit {
		w.held = append(w.held, heldLock{class: a.Class, read: a.Read})
	}
}

func calleeChain(callee, via string) string {
	chain := calleeShortName(callee)
	if via != "" {
		chain += " → " + via
	}
	return chain
}

func acquireKey(a LockAcquire) string {
	if a.Read {
		return a.Class + "|r"
	}
	return a.Class
}

// acquire pushes a lock onto the held stack, recording order edges
// from every already-held classed lock and checking for recursive
// acquisition of the same instance.
func (w *loWalker) acquire(sel *ast.SelectorExpr, read bool, pos token.Pos) {
	class := lockClass(w.pass.Info, w.pass.Pkg, sel.X)
	root, path, chainKnown := chainOf(w.pass.Info, sel.X)
	p := w.pass.Fset.Position(pos)

	if w.report && chainKnown {
		for _, h := range w.held {
			if h.root == root && h.path == path && !(h.read && read) {
				w.pass.Reportf(pos, "recursive acquisition of %s: the mutex is already held here, so this %s blocks forever",
					lockDisplay(class, sel), lockVerb(read))
			}
		}
	}
	if class != "" {
		a := LockAcquire{Class: class, Read: read}
		w.sum.acquires[acquireKey(a)] = a
		for _, h := range w.held {
			if h.class != "" && h.class != class {
				w.edge(h.class, class, p, "")
			}
		}
	}
	w.held = append(w.held, heldLock{class: class, read: read, root: root, path: path})
}

func lockVerb(read bool) string {
	if read {
		return "RLock"
	}
	return "Lock"
}

func lockDisplay(class string, sel *ast.SelectorExpr) string {
	if class != "" {
		return class
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name
	}
	return "mutex"
}

// release pops the newest matching held lock: by instance identity
// when the chain resolves, else by class.
func (w *loWalker) release(sel *ast.SelectorExpr) {
	root, path, chainKnown := chainOf(w.pass.Info, sel.X)
	class := lockClass(w.pass.Info, w.pass.Pkg, sel.X)
	for i := len(w.held) - 1; i >= 0; i-- {
		h := w.held[i]
		match := (chainKnown && h.root == root && h.path == path) ||
			(h.root == nil && h.class != "" && h.class == class)
		if match {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

// edge records an order edge once per (from, to) pair.
func (w *loWalker) edge(from, to string, pos token.Position, via string) {
	key := from + "|" + to
	if _, dup := w.sum.edges[key]; dup {
		return
	}
	w.sum.edges[key] = LockEdge{From: from, To: to, File: pos.Filename, Line: pos.Line, Col: pos.Column, Via: via}
}

// block handles one local blocking operation: recorded in the summary
// when synchronous, reported when a mutex is held.
func (w *loWalker) block(pos token.Pos, what string) {
	p := w.pass.Fset.Position(pos)
	if w.sync {
		site := BlockSite{File: p.Filename, Line: p.Line, Col: p.Column, What: what}
		w.sum.blocks[site.key()] = site
	}
	if w.report && len(w.held) > 0 {
		w.reportBlocked(token.Position{Filename: p.Filename, Line: p.Line, Column: p.Column}, what, "")
	}
}

// reportBlocked emits the held-while-blocking diagnostic at the
// blocking site, naming the innermost held lock.
func (w *loWalker) reportBlocked(pos token.Position, what, via string) {
	h := w.held[len(w.held)-1]
	lock := h.class
	if lock == "" {
		lock = "a mutex"
	}
	suffix := ""
	if via != "" {
		suffix = " (via " + via + ")"
	}
	w.pass.ReportAt(pos, "%s while %s is held%s: the lock is pinned for the full wait, and any peer needing it deadlocks the pipeline",
		what, lock, suffix)
}

// finishLockOrder unions every function's order edges and reports
// each cycle in the class graph once, at the lexically first edge of
// the cycle.
func finishLockOrder(pass *Pass) error {
	type adj map[string][]LockEdge
	graph := adj{}
	seenEdge := map[string]bool{}
	for _, key := range pass.Graph.Keys() {
		f, ok := pass.Facts.ImportKey(key, "lockorder.summary")
		if !ok {
			continue
		}
		for _, e := range f.(*LockOrderFact).Edges {
			ek := e.From + "|" + e.To
			if seenEdge[ek] {
				continue
			}
			seenEdge[ek] = true
			graph[e.From] = append(graph[e.From], e)
		}
	}
	for from := range graph {
		sortLockEdges(graph[from])
	}

	// DFS cycle detection over lock classes; each cycle reported once
	// under its canonical (smallest-first) rotation.
	classes := make([]string, 0, len(graph))
	for c := range graph {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	reported := map[string]bool{}
	var stack []LockEdge
	onStack := map[string]bool{}
	var visit func(string)
	visit = func(c string) {
		onStack[c] = true
		for _, e := range graph[c] {
			if onStack[e.To] {
				cyc := extractCycle(stack, e)
				ck := cycleKey(cyc)
				if !reported[ck] {
					reported[ck] = true
					first := cyc[0]
					pass.ReportAt(token.Position{Filename: first.File, Line: first.Line, Column: first.Col},
						"lock-order cycle %s: these mutexes are acquired in conflicting orders, a potential deadlock",
						cycleString(cyc))
				}
				continue
			}
			stack = append(stack, e)
			visit(e.To)
			stack = stack[:len(stack)-1]
		}
		onStack[c] = false
	}
	for _, c := range classes {
		visit(c)
	}
	return nil
}

// extractCycle returns the edges of the cycle that closing edge e
// completes, from e.To (the repeated class) around to e.
func extractCycle(stack []LockEdge, e LockEdge) []LockEdge {
	start := 0
	for i, s := range stack {
		if s.From == e.To {
			start = i
			break
		}
	}
	cyc := append([]LockEdge(nil), stack[start:]...)
	return append(cyc, e)
}

// cycleKey canonicalizes a cycle to its rotation starting at the
// smallest class name, so one cycle found from different DFS roots
// reports once.
func cycleKey(cyc []LockEdge) string {
	lowest := 0
	for i := range cyc {
		if cyc[i].From < cyc[lowest].From {
			lowest = i
		}
	}
	var b strings.Builder
	for i := range cyc {
		b.WriteString(cyc[(lowest+i)%len(cyc)].From)
		b.WriteString("→")
	}
	return b.String()
}

func cycleString(cyc []LockEdge) string {
	var b strings.Builder
	for _, e := range cyc {
		b.WriteString(shortClass(e.From))
		b.WriteString(" → ")
	}
	b.WriteString(shortClass(cyc[0].From))
	return b.String()
}

// shortClass trims the package path off a lock class for display.
func shortClass(c string) string {
	if i := strings.LastIndex(c, "/"); i >= 0 {
		return c[i+1:]
	}
	return c
}
