package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

func init() {
	Register(&Analyzer{
		Name: "tparallel",
		Doc: "reports tests that call t.Parallel() while assigning to package-level " +
			"variables — parallel siblings then race on the shared state",
		Run: runTParallel,
	})
}

func runTParallel(pass *Pass) error {
	for _, file := range pass.Files {
		if !strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !strings.HasPrefix(fn.Name.Name, "Test") {
				continue
			}
			if !callsTParallel(pass.Info, fn.Body) {
				continue
			}
			reportGlobalWrites(pass, fn)
		}
	}
	return nil
}

// callsTParallel reports whether the body (including subtest
// closures) calls Parallel on a *testing.T.
func callsTParallel(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(info, call)
		if f == nil || f.Name() != "Parallel" {
			return true
		}
		sig, ok := f.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		if named := namedOf(sig.Recv().Type()); named != nil {
			if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "testing" && named.Obj().Name() == "T" {
				found = true
			}
		}
		return !found
	})
	return found
}

// reportGlobalWrites flags assignments and inc/dec statements whose
// target resolves to a package-level variable.
func reportGlobalWrites(pass *Pass, fn *ast.FuncDecl) {
	pkgScope := pass.Pkg.Scope()
	checkTarget := func(e ast.Expr) {
		id := rootIdent(e)
		if id == nil {
			return
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Parent() != pkgScope {
			return
		}
		pass.Reportf(e.Pos(), "parallel test %s mutates package variable %s", fn.Name.Name, v.Name())
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				checkTarget(lhs)
			}
		case *ast.IncDecStmt:
			checkTarget(x.X)
		}
		return true
	})
}

// rootIdent walks selector/index expressions down to their base
// identifier (s.f[i] -> s), which is the storage being mutated.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// namedOf unwraps one pointer level to the named type beneath.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
