package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	Register(&Analyzer{
		Name: "poolaudit",
		Doc: "audits sync.Pool usage: flags Put calls whose argument aliases a " +
			"value the function returns (the caller's buffer can be recycled " +
			"and overwritten under it), Put of a bare slice value (boxes the " +
			"header on every Put and invites aliasing bugs; pool a pointer " +
			"wrapper instead), and Get results used without an immediate type " +
			"assertion",
		Run: runPoolAudit,
	})
}

func runPoolAudit(pass *Pass) error {
	// Get calls that appear directly under a type assertion are the
	// sanctioned form; collect them first so the flat scan below can
	// flag the rest.
	asserted := map[*ast.CallExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ta, ok := n.(*ast.TypeAssertExpr)
			if !ok {
				return true
			}
			if call, ok := ast.Unparen(ta.X).(*ast.CallExpr); ok && isPoolCall(pass.Info, call, "Get") {
				asserted[call] = true
			}
			return true
		})
	}

	enclosingFuncs(pass.Files, func(node ast.Node, body *ast.BlockStmt) {
		// Objects whose storage may escape through this function's
		// return values. Data flow through intermediate assignments is
		// not tracked; the check catches the direct forms (return x,
		// return x.f, return x[:n], return &T{x}).
		returned := map[types.Object]bool{}
		walkOwn(node, body, func(n ast.Node) {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return
			}
			for _, res := range ret.Results {
				collectAliasRoots(pass.Info, res, returned)
			}
		})
		walkOwn(node, body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			switch {
			case isPoolCall(pass.Info, call, "Get"):
				if !asserted[call] {
					pass.Reportf(call.Pos(), "result of sync.Pool.Get used without a type assertion; assert to the pooled type (and reset its contents) before use")
				}
			case isPoolCall(pass.Info, call, "Put") && len(call.Args) == 1:
				arg := call.Args[0]
				if t := pass.Info.TypeOf(arg); t != nil {
					if _, isSlice := t.Underlying().(*types.Slice); isSlice {
						pass.Reportf(call.Pos(), "sync.Pool.Put of a slice value boxes the header on every Put; pool a pointer to a wrapper struct instead")
					}
				}
				if root := aliasRoot(pass.Info, arg); root != nil && returned[root] {
					pass.Reportf(call.Pos(), "sync.Pool.Put of %q, which aliases a value this function returns; the caller's data can be recycled and overwritten under it", root.Name())
				}
			}
		})
	})
	return nil
}

// walkOwn walks the statements belonging to one function, stopping at
// nested function literals (their returns and pool calls are audited
// in their own scope by enclosingFuncs).
func walkOwn(self ast.Node, body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != self {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// isPoolCall reports whether call invokes the named method on a
// sync.Pool (or *sync.Pool, or a type embedding one directly).
func isPoolCall(info *types.Info, call *ast.CallExpr, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := f.Type().(*types.Signature).Recv()
	return recv != nil && isSyncPool(recv.Type())
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// aliasRoot resolves the base variable an expression's storage belongs
// to: x, x.f, x[i], x[:n], *x, &x all root at x. Calls and literals
// have no root (their results are fresh values as far as this audit
// can tell).
func aliasRoot(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := info.ObjectOf(x).(*types.Var); ok {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			if _, isFunc := info.Uses[x.Sel].(*types.Func); isFunc {
				return nil
			}
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// collectAliasRoots records every variable whose storage a returned
// expression may alias. It descends through composite literals and
// operators but not through calls (a call's result is assumed fresh)
// or function literals, and only variables of reference-carrying
// types (slices, pointers, maps, and aggregates holding them) are
// recorded — returning an int copied out of a pooled buffer aliases
// nothing.
func collectAliasRoots(info *types.Info, e ast.Expr, out map[types.Object]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr, *ast.FuncLit:
			return false
		case *ast.Ident:
			v, ok := info.ObjectOf(x).(*types.Var)
			if ok && carriesReference(v.Type(), 0) {
				out[v] = true
			}
		}
		return true
	})
}

// carriesReference reports whether values of t share underlying
// storage when copied.
func carriesReference(t types.Type, depth int) bool {
	if depth > 10 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesReference(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return carriesReference(u.Elem(), depth+1)
	}
	return false
}
