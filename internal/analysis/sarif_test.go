package analysis_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestWriteSARIF renders real findings and checks the invariants the
// code-scanning upload depends on: repo-relative forward-slash URIs,
// one rule per distinct analyzer with ruleIndex pointing into the
// rules array, and 1-based line/column regions matching the
// diagnostic positions.
func TestWriteSARIF(t *testing.T) {
	files := map[string]string{"sp/sp.go": `package sp

var events = make(chan int)

func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch)
}

func Drain() int {
	return <-events
}
`}
	root := writeFixture(t, files)
	diags := analyze(t, root)
	if len(diags) < 2 {
		t.Fatalf("fixture produced %d findings, want >= 2", len(diags))
	}

	var out bytes.Buffer
	if err := analysis.WriteSARIF(&out, root, diags); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q runs %d, want 2.1.0 and 1", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "arcvet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("results %d, want %d", len(run.Results), len(diags))
	}
	for i, r := range run.Results {
		d := diags[i]
		if r.RuleID != d.Analyzer || r.Message.Text != d.Message {
			t.Errorf("result %d: rule %q message %q, want %q %q", i, r.RuleID, r.Message.Text, d.Analyzer, d.Message)
		}
		if r.Level != "warning" {
			t.Errorf("result %d: level %q, want warning", i, r.Level)
		}
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) ||
			run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("result %d: ruleIndex %d does not resolve to %q", i, r.RuleIndex, r.RuleID)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d: %d locations", i, len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != "sp/sp.go" {
			t.Errorf("result %d: uri %q, want repo-relative sp/sp.go", i, loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine != d.Pos.Line || loc.Region.StartColumn != d.Pos.Column {
			t.Errorf("result %d: region %d:%d, want %d:%d",
				i, loc.Region.StartLine, loc.Region.StartColumn, d.Pos.Line, d.Pos.Column)
		}
	}
	for _, rule := range run.Tool.Driver.Rules {
		if strings.TrimSpace(rule.ShortDescription.Text) == "" {
			t.Errorf("rule %q has empty description", rule.ID)
		}
	}
}
