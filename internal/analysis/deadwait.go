package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// deadwait checks sync.WaitGroup Add/Done balance along the paths
// through goroutine bodies of the parallel helpers and the stream
// pipeline: an Add inside the spawned goroutine races the Wait, an
// Add with no reachable Done (direct or through a summarized callee)
// deadlocks it, a single Add(1) feeding a loop of Done-ing goroutines
// underflows, and a non-deferred Done after an early return path
// leaks the counter.

// WGRef names a WaitGroup reachable from a function's parameters:
// Param is the parameter index (-1 for the receiver) and Path the
// field selector chain from it ("" when the parameter is the
// WaitGroup itself).
type WGRef struct {
	Param int    `json:"param"`
	Path  string `json:"path,omitempty"`
}

// WaitGroupEffectFact summarizes which parameter-reachable WaitGroups
// a function calls Add or Done on, so callers can account for
// delegated bookkeeping (e.g. a worker method that defers Done on a
// field of its receiver).
type WaitGroupEffectFact struct {
	Adds  []WGRef `json:"adds,omitempty"`
	Dones []WGRef `json:"dones,omitempty"`
}

func (*WaitGroupEffectFact) FactName() string { return "deadwait.effects" }

func init() {
	RegisterFactType(func() Fact { return new(WaitGroupEffectFact) })
	Register(&Analyzer{
		Name: "deadwait",
		Doc: "sync.WaitGroup Add/Done imbalance on a path through a goroutine body: Add inside the " +
			"spawned goroutine, Add with no reachable Done, a loop-spawn mismatch against a single " +
			"Add(1), or a Done that an early return can skip",
		Packages: []string{"internal/parallel", "internal/core"},
		Run:      runDeadWait,
	})
}

// wgKey identifies one WaitGroup value inside a function: the root
// object plus the field path from it.
type wgKey struct {
	root types.Object
	path string
}

type wgRecord struct {
	kind      string // "add" or "done"
	key       wgKey
	pos       token.Pos
	loop      int
	inGo      bool
	goLit     *ast.FuncLit
	deferred  bool
	addOne    bool
	delegated bool
}

type dwCtx struct {
	loop     int
	goLit    *ast.FuncLit
	deferred bool
}

type dwWalker struct {
	pass    *Pass
	recv    types.Object
	params  map[types.Object]int
	records []wgRecord
	escaped map[wgKey]bool
}

func runDeadWait(pass *Pass) error {
	type target struct {
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var targets []target
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				targets = append(targets, target{fn, fd})
			}
		}
	}

	// Fact rounds first so delegation chains inside the unit resolve
	// regardless of declaration order; then one reporting pass.
	walkers := map[string]*dwWalker{}
	for round := 0; round < 3; round++ {
		changed := false
		for _, t := range targets {
			w := newDWWalker(pass, t.decl)
			w.walkStmts(t.decl.Body.List, dwCtx{})
			walkers[FuncKey(t.fn)] = w
			if w.exportFact(t.fn) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, t := range targets {
		walkers[FuncKey(t.fn)].check()
	}
	return nil
}

func newDWWalker(pass *Pass, decl *ast.FuncDecl) *dwWalker {
	w := &dwWalker{pass: pass, params: map[types.Object]int{}, escaped: map[wgKey]bool{}}
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			for _, name := range f.Names {
				w.recv = pass.Info.Defs[name]
			}
		}
	}
	idx := 0
	for _, f := range decl.Type.Params.List {
		for _, name := range f.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				w.params[obj] = idx
			}
			idx++
		}
		if len(f.Names) == 0 {
			idx++
		}
	}
	return w
}

func (w *dwWalker) walkStmts(list []ast.Stmt, ctx dwCtx) {
	for _, s := range list {
		w.walkStmt(s, ctx)
	}
}

func (w *dwWalker) walkStmt(s ast.Stmt, ctx dwCtx) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(s.List, ctx)
	case *ast.ExprStmt:
		w.walkExpr(s.X, ctx)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e, ctx)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e, ctx)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, ctx)
					}
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, ctx)
		}
		w.walkExpr(s.Cond, ctx)
		w.walkStmts(s.Body.List, ctx)
		if s.Else != nil {
			w.walkStmt(s.Else, ctx)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, ctx)
		}
		inner := ctx
		inner.loop++
		if s.Cond != nil {
			w.walkExpr(s.Cond, ctx)
		}
		w.walkStmts(s.Body.List, inner)
		if s.Post != nil {
			w.walkStmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.walkExpr(s.X, ctx)
		inner := ctx
		inner.loop++
		w.walkStmts(s.Body.List, inner)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, ctx)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag, ctx)
		}
		for _, c := range s.Body.List {
			w.walkStmts(c.(*ast.CaseClause).Body, ctx)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, ctx)
		}
		w.walkStmt(s.Assign, ctx)
		for _, c := range s.Body.List {
			w.walkStmts(c.(*ast.CaseClause).Body, ctx)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.walkStmt(cc.Comm, ctx)
			}
			w.walkStmts(cc.Body, ctx)
		}
	case *ast.GoStmt:
		w.handleSpawnedCall(s.Call, ctx)
	case *ast.DeferStmt:
		inner := ctx
		inner.deferred = true
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, inner)
		} else {
			w.walkExpr(s.Call, inner)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e, ctx)
		}
	case *ast.SendStmt:
		w.walkExpr(s.Chan, ctx)
		w.walkExpr(s.Value, ctx)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, ctx)
	case *ast.IncDecStmt:
		w.walkExpr(s.X, ctx)
	}
}

// handleSpawnedCall processes `go f(...)`: a function literal's body
// is walked in goroutine context; a named callee contributes its
// summarized WaitGroup effects at the spawn site.
func (w *dwWalker) handleSpawnedCall(call *ast.CallExpr, ctx dwCtx) {
	for _, a := range call.Args {
		w.walkExpr(a, ctx)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.walkStmts(lit.Body.List, dwCtx{loop: ctx.loop, goLit: lit})
		return
	}
	w.handleCall(call, ctx, true)
}

func (w *dwWalker) walkExpr(e ast.Expr, ctx dwCtx) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.handleCall(e, ctx, false)
	case *ast.FuncLit:
		w.walkStmts(e.Body.List, ctx)
	case *ast.ParenExpr:
		w.walkExpr(e.X, ctx)
	case *ast.BinaryExpr:
		w.walkExpr(e.X, ctx)
		w.walkExpr(e.Y, ctx)
	case *ast.UnaryExpr:
		w.walkExpr(e.X, ctx)
	case *ast.StarExpr:
		w.walkExpr(e.X, ctx)
	case *ast.IndexExpr:
		w.walkExpr(e.X, ctx)
		w.walkExpr(e.Index, ctx)
	case *ast.SliceExpr:
		w.walkExpr(e.X, ctx)
		w.walkExpr(e.Low, ctx)
		w.walkExpr(e.High, ctx)
		w.walkExpr(e.Max, ctx)
	case *ast.SelectorExpr:
		w.walkExpr(e.X, ctx)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			w.walkExpr(elt, ctx)
			w.noteEscape(elt)
		}
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X, ctx)
	}
}

// handleCall classifies one call: a WaitGroup method, a summarized
// delegate, or an escape point for any WaitGroup argument.
func (w *dwWalker) handleCall(call *ast.CallExpr, ctx dwCtx, spawned bool) {
	if key, method, ok := w.wgMethodCall(call); ok {
		switch method {
		case "Add", "Done":
			one := false
			if method == "Add" && len(call.Args) == 1 {
				if v, isConst := constInt(w.pass.Info, call.Args[0]); isConst && v == 1 {
					one = true
				}
			}
			w.records = append(w.records, wgRecord{
				kind: strings.ToLower(method), key: key, pos: call.Pos(),
				loop: ctx.loop, inGo: ctx.goLit != nil, goLit: ctx.goLit,
				deferred: ctx.deferred, addOne: one,
			})
		}
		for _, a := range call.Args {
			w.walkExpr(a, ctx)
		}
		return
	}
	callee := calleeFunc(w.pass.Info, call)
	var fact *WaitGroupEffectFact
	if callee != nil {
		if f, ok := w.pass.Facts.Import(callee, "deadwait.effects"); ok {
			fact = f.(*WaitGroupEffectFact)
		}
	}
	if fact != nil {
		w.applyFact(call, fact, ctx, spawned)
	} else {
		for _, a := range call.Args {
			w.noteEscape(a)
		}
	}
	for _, a := range call.Args {
		w.walkExpr(a, ctx)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.walkExpr(sel.X, ctx)
	}
}

// applyFact synthesizes Add/Done records at a call site from the
// callee's summarized effects.
func (w *dwWalker) applyFact(call *ast.CallExpr, fact *WaitGroupEffectFact, ctx dwCtx, spawned bool) {
	resolve := func(ref WGRef) (wgKey, bool) {
		var base ast.Expr
		if ref.Param < 0 {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return wgKey{}, false
			}
			base = sel.X
		} else {
			if ref.Param >= len(call.Args) {
				return wgKey{}, false
			}
			base = call.Args[ref.Param]
		}
		root, path, ok := w.objChain(base)
		if !ok {
			return wgKey{}, false
		}
		full := path
		if ref.Path != "" {
			if full != "" {
				full += "."
			}
			full += ref.Path
		}
		return wgKey{root: root, path: full}, true
	}
	emit := func(refs []WGRef, kind string) {
		for _, ref := range refs {
			if key, ok := resolve(ref); ok {
				w.records = append(w.records, wgRecord{
					kind: kind, key: key, pos: call.Pos(), loop: ctx.loop,
					inGo: spawned || ctx.goLit != nil, goLit: ctx.goLit,
					deferred: true, delegated: true,
				})
			}
		}
	}
	emit(fact.Adds, "add")
	emit(fact.Dones, "done")
}

// wgMethodCall matches a call to Add/Done/Wait on a sync.WaitGroup
// value and resolves which WaitGroup it targets.
func (w *dwWalker) wgMethodCall(call *ast.CallExpr) (wgKey, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return wgKey{}, "", false
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return wgKey{}, "", false
	}
	tv, ok := w.pass.Info.Types[sel.X]
	if !ok || tv.Type == nil || !isWaitGroup(tv.Type) {
		return wgKey{}, "", false
	}
	root, path, ok := w.objChain(sel.X)
	if !ok {
		return wgKey{}, "", false
	}
	return wgKey{root: root, path: path}, sel.Sel.Name, true
}

func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// objChain resolves an expression like p.pipe.workers to its root
// object and dotted field path.
func (w *dwWalker) objChain(e ast.Expr) (types.Object, string, bool) {
	var parts []string
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := w.pass.Info.Uses[v]
			if obj == nil {
				obj = w.pass.Info.Defs[v]
			}
			if obj == nil {
				return nil, "", false
			}
			if _, isPkg := obj.(*types.PkgName); isPkg {
				return nil, "", false
			}
			return obj, strings.Join(parts, "."), true
		case *ast.SelectorExpr:
			parts = append([]string{v.Sel.Name}, parts...)
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return nil, "", false
			}
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil, "", false
		}
	}
}

// noteEscape marks a WaitGroup whose address leaves through an
// unsummarized call or a composite value — its bookkeeping can no
// longer be accounted locally, so checks for it are skipped.
func (w *dwWalker) noteEscape(a ast.Expr) {
	root, path, ok := w.objChain(a)
	if !ok || root == nil {
		return
	}
	t := root.Type()
	if tv, ok := w.pass.Info.Types[ast.Unparen(a)]; ok && tv.Type != nil {
		t = tv.Type
	}
	if !isWaitGroup(t) {
		return
	}
	w.escaped[wgKey{root: root, path: path}] = true
}

// exportFact publishes the parameter-reachable effects, reporting
// whether the stored fact changed.
func (w *dwWalker) exportFact(fn *types.Func) bool {
	var fact WaitGroupEffectFact
	seen := map[string]bool{}
	for _, r := range w.records {
		param, ok := -1, false
		if w.recv != nil && r.key.root == w.recv {
			ok = true
		} else if i, isParam := w.params[r.key.root]; isParam {
			param, ok = i, true
		}
		if !ok {
			continue
		}
		ref := WGRef{Param: param, Path: r.key.path}
		k := r.kind + "|" + ref.Path + "|" + string(rune(ref.Param+2))
		if seen[k] {
			continue
		}
		seen[k] = true
		if r.kind == "add" {
			fact.Adds = append(fact.Adds, ref)
		} else {
			fact.Dones = append(fact.Dones, ref)
		}
	}
	sortRefs := func(refs []WGRef) {
		sort.Slice(refs, func(i, j int) bool {
			if refs[i].Param != refs[j].Param {
				return refs[i].Param < refs[j].Param
			}
			return refs[i].Path < refs[j].Path
		})
	}
	sortRefs(fact.Adds)
	sortRefs(fact.Dones)
	present := len(fact.Adds) > 0 || len(fact.Dones) > 0
	return exportOrWithdraw(w.pass.Facts, FuncKey(fn), present, &fact)
}

// check applies the four imbalance rules to the collected records.
func (w *dwWalker) check() {
	byKey := map[wgKey][]wgRecord{}
	var keys []wgKey
	for _, r := range w.records {
		if _, ok := byKey[r.key]; !ok {
			keys = append(keys, r.key)
		}
		byKey[r.key] = append(byKey[r.key], r)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].root.Pos() != keys[j].root.Pos() {
			return keys[i].root.Pos() < keys[j].root.Pos()
		}
		return keys[i].path < keys[j].path
	})
	for _, key := range keys {
		if w.escaped[key] {
			continue
		}
		recs := byKey[key]
		var adds, dones []wgRecord
		for _, r := range recs {
			switch r.kind {
			case "add":
				adds = append(adds, r)
			case "done":
				dones = append(dones, r)
			}
		}
		for _, a := range adds {
			if a.inGo && !a.delegated {
				w.pass.Reportf(a.pos, "WaitGroup.Add inside the spawned goroutine races the Wait; Add before the go statement")
			}
		}
		if len(adds) > 0 && len(dones) == 0 {
			w.pass.Reportf(adds[0].pos, "WaitGroup.Add with no reachable Done (direct or through a summarized callee); Wait will block forever")
		}
		if len(adds) == 1 && adds[0].addOne && !adds[0].inGo && len(dones) > 0 {
			allDeeper := true
			for _, d := range dones {
				if !d.inGo || d.loop <= adds[0].loop {
					allDeeper = false
					break
				}
			}
			if allDeeper {
				w.pass.Reportf(adds[0].pos, "WaitGroup.Add(1) runs once but every Done-ing goroutine is spawned inside a loop; move Add into the loop or Add the count")
			}
		}
		for _, d := range dones {
			if d.inGo && !d.deferred && d.goLit != nil && returnBefore(d.goLit, d.pos) {
				w.pass.Reportf(d.pos, "WaitGroup.Done can be skipped by an earlier return in this goroutine; defer it")
			}
		}
	}
}

// returnBefore reports a return statement inside lit's body (not in a
// nested literal) positioned before pos.
func returnBefore(lit *ast.FuncLit, pos token.Pos) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok && n != lit {
			return false
		}
		if r, ok := n.(*ast.ReturnStmt); ok && r.Pos() < pos {
			found = true
		}
		return true
	})
	return found
}
