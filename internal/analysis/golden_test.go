package analysis_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestJSONGolden pins the -json output contract end to end: field
// names, field order, indentation, and the (file, line, col,
// analyzer) sort across packages. cmd/arcvet encodes Result.
// Diagnostics with exactly this encoder configuration, so a change
// that shifts the machine-readable schema must update the golden
// file deliberately (go test ./internal/analysis -run JSONGolden
// -update).
func TestJSONGolden(t *testing.T) {
	root := writeFixture(t, allocGuardFixture)
	res := analyzeResult(t, root)

	// Fixture roots are temp directories; rewrite them to a stable
	// placeholder so the golden file is machine-independent.
	for i := range res.Diagnostics {
		rel, err := filepath.Rel(root, res.Diagnostics[i].File)
		if err != nil {
			t.Fatal(err)
		}
		res.Diagnostics[i].File = "$FIXTURE/" + filepath.ToSlash(rel)
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res.Diagnostics); err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "json_golden.json")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got := buf.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("-json output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s\nRe-run with -update if the change is intentional.", got, want)
	}

	// The golden file itself must honor the documented field set.
	var decoded []map[string]any
	if err := json.Unmarshal(want, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) == 0 {
		t.Fatal("golden file has no findings; the fixture should produce some")
	}
	for _, d := range decoded {
		for _, key := range []string{"analyzer", "message", "file", "line", "col"} {
			if _, ok := d[key]; !ok {
				t.Fatalf("finding %v lacks required field %q", d, key)
			}
		}
		if msg, _ := d["message"].(string); strings.TrimSpace(msg) == "" {
			t.Fatalf("finding %v has an empty message", d)
		}
	}
}
