package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Result is the outcome of analyzing a set of directories.
type Result struct {
	Diagnostics []Diagnostic
	// Packages counts the units (including external test packages)
	// that were loaded and checked.
	Packages int
	// Facts is the run's fact store, exposed for tests and debugging.
	Facts *FactStore
	// Graph is the whole-repo call graph.
	Graph *CallGraph
}

// Run loads every directory, orders the resulting units
// topologically by import dependency, builds the call graph and
// taint summaries, applies the given analyzers unit by unit, then
// runs each analyzer's Finish phase over the accumulated facts. It
// returns position-sorted, suppression-filtered diagnostics.
func Run(loader *Loader, dirs []string, analyzers []*Analyzer) (*Result, error) {
	res := &Result{}
	var units []*Unit
	for _, dir := range dirs {
		us, err := loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}
	res.Packages = len(units)
	units = topoSortUnits(units)

	res.Graph = BuildCallGraph(units)
	res.Facts = NewFactStore()

	// Suppression directives and statement spans come from every
	// unit up front: Finish-phase diagnostics may land in any file.
	sup := suppressions{}
	spans := newStmtSpans(loader.Fset)
	var bad []Diagnostic
	for _, unit := range units {
		b := collectSuppressions(loader, unit.Files, sup)
		bad = append(bad, b...)
		spans.add(unit.Files)
	}
	res.Diagnostics = append(res.Diagnostics, bad...)

	var diags []Diagnostic
	for _, unit := range units {
		summarizeUnitTaint(loader.Fset, unit, res.Facts)
		for _, a := range analyzers {
			if !a.AppliesTo(unit.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     loader.Fset,
				Files:    unit.Files,
				Pkg:      unit.Pkg,
				Info:     unit.Info,
				PkgPath:  unit.Path,
				Facts:    res.Facts,
				Graph:    res.Graph,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, unit.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     loader.Fset,
			Facts:    res.Facts,
			Graph:    res.Graph,
			diags:    &diags,
		}
		if err := a.Finish(pass); err != nil {
			return nil, fmt.Errorf("%s finish: %w", a.Name, err)
		}
	}

	for _, d := range diags {
		if !sup.matches(d, spans) {
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	for i := range res.Diagnostics {
		d := &res.Diagnostics[i]
		d.File, d.Line, d.Col = d.Pos.Filename, d.Pos.Line, d.Pos.Column
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

// topoSortUnits orders units so every unit follows the units it
// imports (Kahn's algorithm; ties break on import path so the order
// is deterministic). External test units depend on their base unit.
func topoSortUnits(units []*Unit) []*Unit {
	index := map[string]int{}
	for i, u := range units {
		index[u.Path] = i
	}
	indeg := make([]int, len(units))
	dependents := make([][]int, len(units))
	addEdge := func(from, to int) { // from depends on to
		dependents[to] = append(dependents[to], from)
		indeg[from]++
	}
	for i, u := range units {
		for _, imp := range u.Pkg.Imports() {
			if j, ok := index[imp.Path()]; ok && j != i {
				addEdge(i, j)
			}
		}
		if base, ok := strings.CutSuffix(u.Path, "_test"); ok {
			if j, ok := index[base]; ok && j != i {
				addEdge(i, j)
			}
		}
	}
	var ready []int
	for i := range units {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	byPath := func(a, b int) bool { return units[a].Path < units[b].Path }
	sort.Slice(ready, func(i, j int) bool { return byPath(ready[i], ready[j]) })
	var order []*Unit
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		order = append(order, units[i])
		released := false
		for _, dep := range dependents[i] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
				released = true
			}
		}
		if released {
			sort.Slice(ready, func(a, b int) bool { return byPath(ready[a], ready[b]) })
		}
	}
	// Import cycles cannot occur in compiled Go; if something slipped
	// through, keep the leftovers rather than dropping units.
	if len(order) < len(units) {
		seen := map[*Unit]bool{}
		for _, u := range order {
			seen[u] = true
		}
		for _, u := range units {
			if !seen[u] {
				order = append(order, u)
			}
		}
	}
	return order
}

// stmtSpans indexes the line spans of every statement (and top-level
// declaration) so a waiver directive anchored to the first line of a
// multi-line statement covers findings on its continuation lines.
type stmtSpans struct {
	fset  *token.FileSet
	files map[string][]lineSpan
}

type lineSpan struct{ start, end int }

func newStmtSpans(fset *token.FileSet) *stmtSpans {
	return &stmtSpans{fset: fset, files: map[string][]lineSpan{}}
}

func (ss *stmtSpans) add(files []*ast.File) {
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n.(type) {
			case ast.Stmt, *ast.GenDecl, *ast.ValueSpec:
				start := ss.fset.Position(n.Pos())
				end := ss.fset.Position(n.End())
				if end.Line > start.Line {
					ss.files[start.Filename] = append(ss.files[start.Filename], lineSpan{start.Line, end.Line})
				}
			}
			return true
		})
	}
}

// stmtStart returns the first line of the innermost multi-line
// statement covering (file, line), or 0 when the line is not inside
// one. "Innermost" keeps a directive on an assignment from waiving an
// entire enclosing block.
func (ss *stmtSpans) stmtStart(file string, line int) int {
	best := lineSpan{}
	found := false
	for _, sp := range ss.files[file] {
		if line < sp.start || line > sp.end {
			continue
		}
		if !found || sp.end-sp.start < best.end-best.start ||
			(sp.end-sp.start == best.end-best.start && sp.start > best.start) {
			best, found = sp, true
		}
	}
	if !found {
		return 0
	}
	return best.start
}

// suppressions maps file -> line -> analyzer names silenced there. A
// finding is silenced when an ignore directive sits on its line, on
// the line directly above, or — for findings inside a multi-line
// statement — on the statement's first line or the line above that.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) matches(d Diagnostic, spans *stmtSpans) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	candidates := []int{d.Pos.Line, d.Pos.Line - 1}
	if spans != nil {
		if start := spans.stmtStart(d.Pos.Filename, d.Pos.Line); start > 0 && start != d.Pos.Line {
			candidates = append(candidates, start, start-1)
		}
	}
	for _, line := range candidates {
		if names := lines[line]; names != nil && names[d.Analyzer] {
			return true
		}
	}
	return false
}

// collectSuppressions scans comments for //arcvet:ignore directives,
// accumulating them into sup. Malformed directives (no analyzer
// named, or an unknown analyzer) become diagnostics themselves so
// waivers stay auditable.
func collectSuppressions(loader *Loader, files []*ast.File, sup suppressions) []Diagnostic {
	var bad []Diagnostic
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "arcvet:ignore")
				if !ok {
					continue
				}
				pos := loader.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{
						Analyzer: "arcvet",
						Pos:      pos,
						Message:  "arcvet:ignore must name the analyzer it suppresses",
					})
					continue
				}
				name := fields[0]
				if !known[name] {
					bad = append(bad, Diagnostic{
						Analyzer: "arcvet",
						Pos:      pos,
						Message:  fmt.Sprintf("arcvet:ignore names unknown analyzer %q", name),
					})
					continue
				}
				if sup[pos.Filename] == nil {
					sup[pos.Filename] = map[int]map[string]bool{}
				}
				if sup[pos.Filename][pos.Line] == nil {
					sup[pos.Filename][pos.Line] = map[string]bool{}
				}
				sup[pos.Filename][pos.Line][name] = true
			}
		}
	}
	return bad
}
