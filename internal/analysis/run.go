package analysis

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// Result is the outcome of analyzing a set of directories.
type Result struct {
	Diagnostics []Diagnostic
	// Packages counts the units (including external test packages)
	// that were loaded and checked.
	Packages int
}

// Run loads every directory and applies the given analyzers,
// returning position-sorted, suppression-filtered diagnostics.
func Run(loader *Loader, dirs []string, analyzers []*Analyzer) (*Result, error) {
	res := &Result{}
	for _, dir := range dirs {
		units, err := loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, unit := range units {
			res.Packages++
			sup, bad := collectSuppressions(loader, unit.Files)
			res.Diagnostics = append(res.Diagnostics, bad...)
			var diags []Diagnostic
			for _, a := range analyzers {
				if !a.AppliesTo(unit.Path) {
					continue
				}
				pass := &Pass{
					Analyzer: a,
					Fset:     loader.Fset,
					Files:    unit.Files,
					Pkg:      unit.Pkg,
					Info:     unit.Info,
					PkgPath:  unit.Path,
					diags:    &diags,
				}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("%s on %s: %w", a.Name, unit.Path, err)
				}
			}
			for _, d := range diags {
				if !sup.matches(d) {
					res.Diagnostics = append(res.Diagnostics, d)
				}
			}
		}
	}
	for i := range res.Diagnostics {
		d := &res.Diagnostics[i]
		d.File, d.Line, d.Col = d.Pos.Filename, d.Pos.Line, d.Pos.Column
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

// suppressions maps file -> line -> analyzer names silenced there. A
// finding is silenced when an ignore directive sits on its line or on
// the line directly above.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) matches(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if names := lines[line]; names != nil && names[d.Analyzer] {
			return true
		}
	}
	return false
}

// collectSuppressions scans comments for //arcvet:ignore directives.
// Malformed directives (no analyzer named, or an unknown analyzer)
// become diagnostics themselves so waivers stay auditable.
func collectSuppressions(loader *Loader, files []*ast.File) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var bad []Diagnostic
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "arcvet:ignore")
				if !ok {
					continue
				}
				pos := loader.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{
						Analyzer: "arcvet",
						Pos:      pos,
						Message:  "arcvet:ignore must name the analyzer it suppresses",
					})
					continue
				}
				name := fields[0]
				if !known[name] {
					bad = append(bad, Diagnostic{
						Analyzer: "arcvet",
						Pos:      pos,
						Message:  fmt.Sprintf("arcvet:ignore names unknown analyzer %q", name),
					})
					continue
				}
				if sup[pos.Filename] == nil {
					sup[pos.Filename] = map[int]map[string]bool{}
				}
				if sup[pos.Filename][pos.Line] == nil {
					sup[pos.Filename][pos.Line] = map[string]bool{}
				}
				sup[pos.Filename][pos.Line][name] = true
			}
		}
	}
	return sup, bad
}
