package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Result is the outcome of analyzing a set of directories.
type Result struct {
	Diagnostics []Diagnostic
	// Packages counts the units (including external test packages)
	// that were loaded and checked or replayed from cache.
	Packages int
	// Facts is the run's fact store, exposed for tests and debugging.
	Facts *FactStore
	// Graph is the whole-repo call graph.
	Graph *CallGraph
	// Stats breaks down how much work the run actually did.
	Stats RunStats
}

// RunStats reports the incremental-cache effectiveness of one run.
type RunStats struct {
	// Units counts all analysis units; LiveUnits were parsed,
	// type-checked, and analyzed this run; CachedUnits replayed.
	Units       int
	LiveUnits   int
	CachedUnits int
	// LiveDirs lists the module-relative directories analyzed live.
	LiveDirs []string
}

// Options tunes a driver run.
type Options struct {
	// CacheDir, when set, enables the incremental cache: directories
	// whose content key (own sources plus transitive module-local
	// deps) matches a stored entry are replayed instead of analyzed.
	CacheDir string
	// WaiverCheck reports //arcvet:ignore directives that suppressed
	// nothing this run. It requires the full analyzer set — with a
	// subset, waivers for the analyzers not run would read as stale.
	WaiverCheck bool
}

// Run analyzes dirs with no cache and no waiver check.
func Run(loader *Loader, dirs []string, analyzers []*Analyzer) (*Result, error) {
	return RunWith(loader, dirs, analyzers, Options{})
}

// workUnit is one unit to process: either a live loaded Unit or a
// replayable cached record.
type workUnit struct {
	path    string
	imports []string
	dir     string // absolute package directory
	live    *Unit
	cached  *cachedUnit
}

// RunWith loads or replays every directory, orders units
// topologically by import dependency, builds the call graph and taint
// summaries, applies the given analyzers unit by unit, then runs each
// analyzer's Finish phase over the accumulated facts. It returns
// position-sorted, suppression-filtered diagnostics.
func RunWith(loader *Loader, dirs []string, analyzers []*Analyzer, opts Options) (*Result, error) {
	res := &Result{Facts: NewFactStore(), Graph: &CallGraph{nodes: map[string]*CGNode{}}}

	// Content keys decide which directories replay from cache.
	var keys map[string]string
	var infos map[string]*dirInfo
	if opts.CacheDir != "" {
		var err error
		infos, err = scanDirs(loader, dirs)
		if err != nil {
			return nil, err
		}
		keys = computeDirKeys(cacheHeader(loader, analyzers), infos)
	}

	var work []*workUnit
	liveByDir := map[string][]*workUnit{}
	cachedDirs := map[string]*cacheEntry{}
	for _, dir := range dirs {
		abs := dir
		if infos != nil {
			if info := infos[absPath(dir)]; info != nil {
				abs = info.Dir
				if ent := loadCacheEntry(opts.CacheDir, info.Rel, keys[abs]); ent != nil {
					cachedDirs[abs] = ent
					for i := range ent.Units {
						cu := &ent.Units[i]
						work = append(work, &workUnit{path: cu.Path, imports: cu.Imports, dir: abs, cached: cu})
					}
					continue
				}
			}
		}
		units, err := loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, u := range units {
			w := &workUnit{path: u.Path, imports: importPaths(u), dir: abs, live: u}
			work = append(work, w)
			liveByDir[abs] = append(liveByDir[abs], w)
		}
		if opts.CacheDir != "" && liveByDir[abs] == nil {
			// A dir with no buildable files still earns an (empty)
			// entry so warm runs skip re-scanning its sources.
			liveByDir[abs] = []*workUnit{}
		}
	}
	work = topoSortWork(work)
	res.Packages = len(work)
	res.Stats.Units = len(work)

	// The CHA pool for per-unit call-graph construction: every live
	// unit's package scope plus every dependency package the loader
	// type-checked. Implementations living in cached packages that no
	// live unit imports are approximated by the cached subgraph edges.
	var extraTypes []types.Type
	for _, w := range work {
		if w.live != nil {
			extraTypes = append(extraTypes, scopeTypes(w.live.Pkg)...)
		}
	}
	for _, pkg := range loader.deps {
		extraTypes = append(extraTypes, scopeTypes(pkg)...)
	}

	sup := suppressions{}
	spans := newStmtSpans()
	var waiverRecs []suppRecord
	var badDiags []Diagnostic
	var rawDiags []Diagnostic
	capture := map[string][]cachedUnit{}

	for _, w := range work {
		if w.cached != nil {
			cu := w.cached
			if err := res.Facts.replayOps(cu.FactOps); err != nil {
				return nil, fmt.Errorf("cache replay %s: %w", w.path, err)
			}
			res.Graph.mergeCached(cu.Nodes)
			res.Graph.finalize()
			for _, r := range cu.Waivers {
				sup.add(r)
			}
			waiverRecs = append(waiverRecs, cu.Waivers...)
			spans.merge(cu.Spans)
			badDiags = append(badDiags, withPos(cu.BadDirectives)...)
			rawDiags = append(rawDiags, withPos(cu.Diags)...)
			res.Stats.CachedUnits++
			continue
		}

		unit := w.live
		recs, bad := collectSuppressions(loader, unit.Files)
		for _, r := range recs {
			sup.add(r)
		}
		waiverRecs = append(waiverRecs, recs...)
		unitSpans := collectSpans(loader.Fset, unit.Files)
		spans.merge(unitSpans)
		badDiags = append(badDiags, bad...)

		var ops []factOp
		res.Facts.setJournal(&ops)
		summarizeUnitTaint(loader.Fset, unit, res.Facts)

		ug := &CallGraph{nodes: map[string]*CGNode{}}
		ug.addUnits(loader.Fset, []*Unit{unit}, extraTypes)
		res.Graph.mergeLive(ug)
		res.Graph.finalize()

		var unitDiags []Diagnostic
		for _, a := range analyzers {
			if !a.AppliesTo(unit.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     loader.Fset,
				Files:    unit.Files,
				Pkg:      unit.Pkg,
				Info:     unit.Info,
				PkgPath:  unit.Path,
				Facts:    res.Facts,
				Graph:    res.Graph,
				diags:    &unitDiags,
			}
			if err := a.Run(pass); err != nil {
				res.Facts.setJournal(nil)
				return nil, fmt.Errorf("%s on %s: %w", a.Name, unit.Path, err)
			}
		}
		res.Facts.setJournal(nil)
		rawDiags = append(rawDiags, unitDiags...)
		res.Stats.LiveUnits++

		if opts.CacheDir != "" {
			capture[w.dir] = append(capture[w.dir], cachedUnit{
				Path:          unit.Path,
				Imports:       w.imports,
				Diags:         flattened(unitDiags),
				BadDirectives: flattened(bad),
				FactOps:       ops,
				Nodes:         snapshotGraph(ug),
				Waivers:       recs,
				Spans:         unitSpans,
			})
		}
	}
	res.Graph.finalize()

	var finishDiags []Diagnostic
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     loader.Fset,
			Facts:    res.Facts,
			Graph:    res.Graph,
			diags:    &finishDiags,
		}
		if err := a.Finish(pass); err != nil {
			return nil, fmt.Errorf("%s finish: %w", a.Name, err)
		}
	}

	// Persist entries for every live directory (after a fully
	// successful analysis pass, never mid-run).
	if opts.CacheDir != "" {
		for dir, units := range liveByDir {
			info := infos[dir]
			if info == nil {
				continue
			}
			cus := make([]cachedUnit, 0, len(units))
			cus = append(cus, capture[dir]...)
			if err := writeCacheEntry(opts.CacheDir, info.Rel, keys[dir], cus); err != nil {
				return nil, fmt.Errorf("cache write %s: %w", info.Rel, err)
			}
			res.Stats.LiveDirs = append(res.Stats.LiveDirs, info.Rel)
		}
		sort.Strings(res.Stats.LiveDirs)
	} else {
		for dir := range liveByDir {
			res.Stats.LiveDirs = append(res.Stats.LiveDirs, dir)
		}
		sort.Strings(res.Stats.LiveDirs)
	}

	used := map[string]bool{}
	res.Diagnostics = append(res.Diagnostics, badDiags...)
	for _, d := range append(rawDiags, finishDiags...) {
		if !sup.matches(d, spans, used) {
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}

	if opts.WaiverCheck {
		seen := map[string]bool{}
		for _, r := range waiverRecs {
			k := fmt.Sprintf("%s:%d:%s", r.File, r.Line, r.Analyzer)
			if used[k] || seen[k] {
				continue
			}
			seen[k] = true
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Analyzer: "waivercheck",
				Pos:      token.Position{Filename: r.File, Line: r.Line, Column: 1},
				Message:  fmt.Sprintf("arcvet:ignore %s suppresses nothing here; remove the stale waiver", r.Analyzer),
			})
		}
	}

	for i := range res.Diagnostics {
		d := &res.Diagnostics[i]
		d.File, d.Line, d.Col = d.Pos.Filename, d.Pos.Line, d.Pos.Column
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

// absPath resolves dir, swallowing errors (callers fall back to the
// original string on failure).
func absPath(dir string) string {
	if abs, err := filepath.Abs(dir); err == nil {
		return abs
	}
	return dir
}

// importPaths lists every import of a live unit.
func importPaths(u *Unit) []string {
	var out []string
	for _, imp := range u.Pkg.Imports() {
		out = append(out, imp.Path())
	}
	sort.Strings(out)
	return out
}

// scopeTypes collects the named types declared at package scope.
func scopeTypes(pkg *types.Package) []types.Type {
	var out []types.Type
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
			out = append(out, tn.Type())
		}
	}
	return out
}

// flattened copies diags with File/Line/Col mirrored from Pos so the
// positions survive JSON serialization.
func flattened(diags []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, len(diags))
	for i, d := range diags {
		d.File, d.Line, d.Col = d.Pos.Filename, d.Pos.Line, d.Pos.Column
		out[i] = d
	}
	return out
}

// withPos reconstructs Pos from the flattened fields after replay.
func withPos(diags []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, len(diags))
	for i, d := range diags {
		d.Pos = token.Position{Filename: d.File, Line: d.Line, Column: d.Col}
		out[i] = d
	}
	return out
}

// topoSortWork orders units so every unit follows the units it
// imports (Kahn's algorithm; ties break on import path so the order
// is deterministic). External test units depend on their base unit.
func topoSortWork(units []*workUnit) []*workUnit {
	index := map[string]int{}
	for i, u := range units {
		index[u.path] = i
	}
	indeg := make([]int, len(units))
	dependents := make([][]int, len(units))
	addEdge := func(from, to int) { // from depends on to
		dependents[to] = append(dependents[to], from)
		indeg[from]++
	}
	for i, u := range units {
		for _, imp := range u.imports {
			if j, ok := index[imp]; ok && j != i {
				addEdge(i, j)
			}
		}
		if base, ok := strings.CutSuffix(u.path, "_test"); ok {
			if j, ok := index[base]; ok && j != i {
				addEdge(i, j)
			}
		}
	}
	var ready []int
	for i := range units {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	byPath := func(a, b int) bool { return units[a].path < units[b].path }
	sort.Slice(ready, func(i, j int) bool { return byPath(ready[i], ready[j]) })
	var order []*workUnit
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		order = append(order, units[i])
		released := false
		for _, dep := range dependents[i] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
				released = true
			}
		}
		if released {
			sort.Slice(ready, func(a, b int) bool { return byPath(ready[a], ready[b]) })
		}
	}
	// Import cycles cannot occur in compiled Go; if something slipped
	// through, keep the leftovers rather than dropping units.
	if len(order) < len(units) {
		seen := map[*workUnit]bool{}
		for _, u := range order {
			seen[u] = true
		}
		for _, u := range units {
			if !seen[u] {
				order = append(order, u)
			}
		}
	}
	return order
}

// stmtSpans indexes the line spans of every statement (and top-level
// declaration) so a waiver directive anchored to the first line of a
// multi-line statement covers findings on its continuation lines.
type stmtSpans struct {
	files map[string][]lineSpan
}

type lineSpan struct{ start, end int }

func newStmtSpans() *stmtSpans {
	return &stmtSpans{files: map[string][]lineSpan{}}
}

// collectSpans extracts the multi-line statement spans of files in a
// serializable form.
func collectSpans(fset *token.FileSet, files []*ast.File) []spanRecord {
	var out []spanRecord
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n.(type) {
			case ast.Stmt, *ast.GenDecl, *ast.ValueSpec:
				start := fset.Position(n.Pos())
				end := fset.Position(n.End())
				if end.Line > start.Line {
					out = append(out, spanRecord{File: start.Filename, Start: start.Line, End: end.Line})
				}
			}
			return true
		})
	}
	return out
}

func (ss *stmtSpans) merge(recs []spanRecord) {
	for _, r := range recs {
		ss.files[r.File] = append(ss.files[r.File], lineSpan{r.Start, r.End})
	}
}

// stmtStart returns the first line of the innermost multi-line
// statement covering (file, line), or 0 when the line is not inside
// one. "Innermost" keeps a directive on an assignment from waiving an
// entire enclosing block.
func (ss *stmtSpans) stmtStart(file string, line int) int {
	best := lineSpan{}
	found := false
	for _, sp := range ss.files[file] {
		if line < sp.start || line > sp.end {
			continue
		}
		if !found || sp.end-sp.start < best.end-best.start ||
			(sp.end-sp.start == best.end-best.start && sp.start > best.start) {
			best, found = sp, true
		}
	}
	if !found {
		return 0
	}
	return best.start
}

// suppressions maps file -> line -> analyzer names silenced there. A
// finding is silenced when an ignore directive sits on its line, on
// the line directly above, or — for findings inside a multi-line
// statement — on the statement's first line or the line above that.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) add(r suppRecord) {
	if s[r.File] == nil {
		s[r.File] = map[int]map[string]bool{}
	}
	if s[r.File][r.Line] == nil {
		s[r.File][r.Line] = map[string]bool{}
	}
	s[r.File][r.Line][r.Analyzer] = true
}

// matches reports whether d is suppressed; a match also marks the
// matching directive as used in the used map (key file:line:analyzer)
// so -waivercheck can report the directives that matched nothing.
func (s suppressions) matches(d Diagnostic, spans *stmtSpans, used map[string]bool) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	candidates := []int{d.Pos.Line, d.Pos.Line - 1}
	if spans != nil {
		if start := spans.stmtStart(d.Pos.Filename, d.Pos.Line); start > 0 && start != d.Pos.Line {
			candidates = append(candidates, start, start-1)
		}
	}
	for _, line := range candidates {
		if names := lines[line]; names != nil && names[d.Analyzer] {
			if used != nil {
				used[fmt.Sprintf("%s:%d:%s", d.Pos.Filename, line, d.Analyzer)] = true
			}
			return true
		}
	}
	return false
}

// collectSuppressions scans comments for //arcvet:ignore directives,
// returning the well-formed directives as records plus diagnostics
// for malformed ones (no analyzer named, or an unknown analyzer) so
// waivers stay auditable.
func collectSuppressions(loader *Loader, files []*ast.File) ([]suppRecord, []Diagnostic) {
	var recs []suppRecord
	var bad []Diagnostic
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "arcvet:ignore")
				if !ok {
					continue
				}
				pos := loader.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{
						Analyzer: "arcvet",
						Pos:      pos,
						Message:  "arcvet:ignore must name the analyzer it suppresses",
					})
					continue
				}
				name := fields[0]
				if !known[name] {
					bad = append(bad, Diagnostic{
						Analyzer: "arcvet",
						Pos:      pos,
						Message:  fmt.Sprintf("arcvet:ignore names unknown analyzer %q", name),
					})
					continue
				}
				recs = append(recs, suppRecord{File: pos.Filename, Line: pos.Line, Analyzer: name})
			}
		}
	}
	return recs, bad
}
