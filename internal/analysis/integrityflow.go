package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// integrityflow tracks the verification state of untrusted bytes and
// enforces ARC's end-to-end integrity contract: data that enters from
// storage (an abstract ReaderAt) or the wire (a frame payload) is
// "unverified" until it flows through a recognized sanitizer — a CRC
// comparison, a checked decode/parse, or a helper carrying an
// integrity.verifies fact. Unverified bytes must not escape through
// an exported API return, a service response payload, or a cache
// insert; and a computed verification result (an ecc repair Report or
// a verifier's error) must not be discarded while its siblings are
// used. Helper summaries cross package boundaries as facts:
//
//	integrity.verifies — the function verifies the bytes behind the
//	    listed parameter indices before returning without error
//	integrity.escapes  — the function's byte results are unverified
//	    (callers inherit the origin)

// VerifiesFact marks a function that verifies the byte content behind
// the listed parameters (zero-based, receiver excluded) before it
// returns without error. Callers may treat those argument roots as
// verified once they have checked the function's error.
type VerifiesFact struct {
	Params []int `json:"params"`
}

func (*VerifiesFact) FactName() string { return "integrity.verifies" }

// EscapesFact marks a function whose byte-slice results are
// unverified; Origin describes where the bytes entered.
type EscapesFact struct {
	Result bool   `json:"result"`
	Origin string `json:"origin"`
}

func (*EscapesFact) FactName() string { return "integrity.escapes" }

func init() {
	RegisterFactType(func() Fact { return new(VerifiesFact) })
	RegisterFactType(func() Fact { return new(EscapesFact) })
	Register(&Analyzer{
		Name: "integrityflow",
		Doc: "unverified bytes from storage or the wire escape through an exported API return, a service " +
			"response payload, or a cache insert without passing a CRC comparison or checked decode; or a " +
			"verification result (repair report, verifier error) is computed and then discarded",
		Run: runIntegrityFlow,
	})
}

// verifierPrefixes are callee-name prefixes treated as sanitizers
// when the call's error result is bound and (presumably) checked.
var verifierPrefixes = []string{
	"Decode", "decode", "Unmarshal", "unmarshal", "Parse", "parse",
	"Verify", "verify", "Validate", "validate", "Check", "check",
}

func isVerifierName(name string) bool {
	for _, p := range verifierPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// checksumNames match callables whose results, compared against an
// expected value, constitute a verification of their input bytes.
var checksumNames = []string{"CRC", "Checksum", "Sum", "Digest", "Hash"}

func isChecksumName(name string) bool {
	for _, s := range checksumNames {
		if strings.Contains(name, s) {
			return true
		}
	}
	return false
}

const (
	storageOriginPrefix = "storage bytes"
	wireOriginPrefix    = "wire bytes"
)

// wireOrigin reports whether the origin class is wire (frame payload)
// rather than storage. Wire payloads are by-design unverified until a
// decode, so the exported-return sink only fires for storage bytes.
func wireOrigin(origin string) bool { return strings.HasPrefix(origin, wireOriginPrefix) }

func runIntegrityFlow(pass *Pass) error {
	var decls []*ast.FuncDecl
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// Summary rounds first: intra-package helper chains need a
	// fixpoint before the reporting pass consumes their facts.
	for round := 0; round < 4; round++ {
		changed := false
		for _, fd := range decls {
			e := newIntegrityEngine(pass, fd, false)
			if e != nil && e.summarize() {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, fd := range decls {
		if e := newIntegrityEngine(pass, fd, true); e != nil {
			e.stmts(fd.Body.List)
		}
	}
	return nil
}

// integrityEngine walks one declaration tracking which root objects
// hold unverified bytes. Verification state is per root object: once
// buf passes a CRC check, buf.b and buf[i:j] are verified too.
type integrityEngine struct {
	pass   *Pass
	fn     *types.Func
	decl   *ast.FuncDecl
	report bool

	// unverified maps a root object to the origin of its bytes;
	// verified marks roots that passed a sanitizer.
	unverified map[types.Object]string
	verified   map[types.Object]bool

	// params maps parameter objects to their index, for VerifiesFact.
	params         map[types.Object]int
	verifiedParams map[int]bool

	// escapeOrigin records the first unverified origin returned by an
	// unexported function, for EscapesFact.
	escapeOrigin string

	// cacheRet counts enclosing cache-loader function literals whose
	// return values are inserted into a cache.
	cacheRet int

	// reported dedups diagnostics: loop bodies are walked twice so
	// verification state reaches the loop head.
	reported map[string]bool
}

func newIntegrityEngine(pass *Pass, fd *ast.FuncDecl, report bool) *integrityEngine {
	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	e := &integrityEngine{
		pass:           pass,
		fn:             fn,
		decl:           fd,
		report:         report,
		unverified:     map[types.Object]string{},
		verified:       map[types.Object]bool{},
		params:         map[types.Object]int{},
		verifiedParams: map[int]bool{},
		reported:       map[string]bool{},
	}
	if sig, ok := fn.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			e.params[sig.Params().At(i)] = i
		}
	}
	return e
}

// summarize runs the walk in summary mode and exports or withdraws
// this function's facts, reporting whether anything changed.
func (e *integrityEngine) summarize() bool {
	e.stmts(e.decl.Body.List)
	key := FuncKey(e.fn)
	changed := false

	var idx []int
	for i := range e.verifiedParams {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	if exportOrWithdraw(e.pass.Facts, key, len(idx) > 0, &VerifiesFact{Params: idx}) {
		changed = true
	}

	// Exported functions report the escape directly; only unexported
	// helpers summarize it for their callers.
	escapes := e.escapeOrigin != "" && !e.fn.Exported()
	if exportOrWithdraw(e.pass.Facts, key, escapes, &EscapesFact{Result: true, Origin: e.escapeOrigin}) {
		changed = true
	}
	return changed
}

func (e *integrityEngine) reportf(pos token.Pos, format string, args ...any) {
	if !e.report {
		return
	}
	key := fmt.Sprintf("%d:%s", pos, fmt.Sprintf(format, args...))
	if e.reported[key] {
		return
	}
	e.reported[key] = true
	e.pass.Reportf(pos, format, args...)
}

func (e *integrityEngine) markUnverified(obj types.Object, origin string) {
	if obj == nil || origin == "" {
		return
	}
	delete(e.verified, obj)
	e.unverified[obj] = origin
}

func (e *integrityEngine) markVerified(obj types.Object) {
	if obj == nil {
		return
	}
	delete(e.unverified, obj)
	e.verified[obj] = true
	if i, ok := e.params[obj]; ok {
		e.verifiedParams[i] = true
	}
}

// ---- statement walk ----

func (e *integrityEngine) stmts(list []ast.Stmt) {
	for _, s := range list {
		e.stmt(s)
	}
}

func (e *integrityEngine) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		e.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						e.assignTo(name, e.expr(vs.Values[i]), vs.Values[i])
					}
				}
			}
		}
	case *ast.ExprStmt:
		e.expr(s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			e.stmt(s.Init)
		}
		e.expr(s.Cond)
		e.condVerify(s.Cond)
		e.stmts(s.Body.List)
		if s.Else != nil {
			e.stmt(s.Else)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			e.stmt(s.Init)
		}
		if s.Tag != nil {
			e.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, x := range cc.List {
					e.expr(x)
					e.condVerify(x)
				}
				e.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			e.stmt(s.Init)
		}
		e.stmt(s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				e.stmts(cc.Body)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			e.stmt(s.Init)
		}
		if s.Cond != nil {
			e.expr(s.Cond)
			e.condVerify(s.Cond)
		}
		if s.Post != nil {
			e.stmt(s.Post)
		}
		// Two passes so state reaching the loop tail feeds the head.
		e.stmts(s.Body.List)
		e.stmts(s.Body.List)
	case *ast.RangeStmt:
		o := e.expr(s.X)
		if s.Value != nil {
			e.assignTo(s.Value, o, s.X)
		}
		e.stmts(s.Body.List)
		e.stmts(s.Body.List)
	case *ast.BlockStmt:
		e.stmts(s.List)
	case *ast.ReturnStmt:
		e.ret(s)
	case *ast.DeferStmt:
		e.expr(s.Call)
	case *ast.GoStmt:
		e.expr(s.Call)
	case *ast.SendStmt:
		e.expr(s.Chan)
		e.expr(s.Value)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					e.stmt(cc.Comm)
				}
				e.stmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		e.stmt(s.Stmt)
	case *ast.IncDecStmt:
		e.expr(s.X)
	}
}

// ret handles return statements: the exported-API sink, the
// cache-insert sink (when inside a cache loader literal), and escape
// summaries for unexported helpers.
func (e *integrityEngine) ret(s *ast.ReturnStmt) {
	for _, r := range s.Results {
		o := e.expr(r)
		if o == "" || !isByteishExpr(e.pass.Info, r) {
			continue
		}
		if e.cacheRet > 0 {
			e.reportf(r.Pos(), "unverified %s inserted into cache; verify integrity before caching", o)
			continue
		}
		if e.fn.Exported() && !wireOrigin(o) {
			e.reportf(r.Pos(), "unverified %s returned from exported %s; verify (CRC compare or checked decode) before returning", o, e.fn.Name())
		}
		if e.escapeOrigin == "" {
			e.escapeOrigin = o
		}
	}
}

// assign handles the verifier/drop logic for call assignments, the
// response-payload sink, and plain propagation.
func (e *integrityEngine) assign(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			e.callAssign(s, call)
			return
		}
	}
	for i, rhs := range s.Rhs {
		o := e.expr(rhs)
		if i < len(s.Lhs) {
			e.assignTo(s.Lhs[i], o, rhs)
		}
	}
}

// callAssign processes `lhs... := call(...)`: discarded verification
// results, verifier sanitization, and escape-fact propagation.
func (e *integrityEngine) callAssign(s *ast.AssignStmt, call *ast.CallExpr) {
	o := e.expr(call) // walks args, applies sources/sinks inside
	callee := calleeFunc(e.pass.Info, call)
	if callee == nil {
		for _, lhs := range s.Lhs {
			e.assignTo(lhs, o, call)
		}
		return
	}
	sig, _ := callee.Type().(*types.Signature)
	results := sig.Results()

	// Discarded verification results. Only multi-result assignments
	// with at least one used value count: a lone `_ = f()` is an
	// explicit opt-out, and `f()` alone is uncheckederr's business.
	if e.report && len(s.Lhs) >= 2 && len(s.Lhs) == results.Len() && hasNonBlank(s.Lhs) {
		for i := 0; i < results.Len(); i++ {
			if !isBlank(s.Lhs[i]) {
				continue
			}
			rt := results.At(i).Type()
			if named, ok := derefType(rt).(*types.Named); ok && named.Obj().Name() == "Report" {
				e.reportf(s.Lhs[i].Pos(), "repair report from %s is discarded; silent-correction counts must be surfaced or the discard waived with a justification", callee.Name())
			} else if isErrorType(rt) && isVerifierName(callee.Name()) {
				e.reportf(s.Lhs[i].Pos(), "error from verifier %s is discarded while its other results are used; a failed verification must not go unnoticed", callee.Name())
			}
		}
	}

	// Sanitization: a verifier whose error result is bound (or that
	// has no error result) verifies its byte-slice arguments' roots.
	errIdx := -1
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			errIdx = i
			break
		}
	}
	errBound := errIdx < 0 || (errIdx < len(s.Lhs) && !isBlank(s.Lhs[errIdx]))
	if errBound {
		if f, ok := e.pass.Facts.ImportKey(FuncKey(callee), "integrity.verifies"); ok {
			for _, p := range f.(*VerifiesFact).Params {
				if p < len(call.Args) {
					e.markVerified(rootObjOf(e.pass.Info, call.Args[p]))
				}
			}
			o = ""
		} else if isVerifierName(callee.Name()) {
			for _, a := range call.Args {
				if isByteishExpr(e.pass.Info, a) {
					e.markVerified(rootObjOf(e.pass.Info, a))
				}
			}
			o = ""
		}
	}
	for _, lhs := range s.Lhs {
		e.assignTo(lhs, o, call)
	}
}

// assignTo records origin o flowing into the lhs expression. rhs is
// the source expression, used for the byte-ish gate at sinks.
func (e *integrityEngine) assignTo(lhs ast.Expr, o string, rhs ast.Expr) {
	if isBlank(lhs) {
		return
	}
	// Response-payload sink: resp.payload = <unverified bytes>.
	if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && o != "" && isByteishExpr(e.pass.Info, rhs) {
		if strings.EqualFold(sel.Sel.Name, "payload") {
			if tn := namedTypeName(e.pass.Info, sel.X); strings.Contains(strings.ToLower(tn), "response") {
				e.reportf(lhs.Pos(), "unverified %s assigned to %s payload; verify integrity before building the response", o, tn)
			}
		}
	}
	root := rootObjOf(e.pass.Info, lhs)
	if root == nil {
		return
	}
	if o != "" {
		e.markUnverified(root, o)
	} else if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		// A whole-variable overwrite with clean data resets state;
		// partial writes (buf[i] = x) keep the root's prior state.
		delete(e.unverified, root)
		delete(e.verified, root)
	}
}

// condVerify scans a condition for CRC/checksum comparisons: a
// `computed == expected` (or !=) where one side calls a checksum
// function verifies that call's byte arguments.
func (e *integrityEngine) condVerify(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(e.pass.Info, call)
				if callee == nil || !isChecksumName(callee.Name()) {
					return true
				}
				for _, a := range call.Args {
					if isByteishExpr(e.pass.Info, a) {
						e.markVerified(rootObjOf(e.pass.Info, a))
					}
				}
				return true
			})
		}
		return true
	})
}

// ---- expression walk ----

// expr walks x and returns the origin of the unverified bytes it
// evaluates to ("" when clean or not byte-carrying).
func (e *integrityEngine) expr(x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		if obj := e.pass.Info.Uses[x]; obj != nil {
			return e.unverified[obj]
		}
		return ""
	case *ast.SelectorExpr:
		if o := e.frameSource(x); o != "" {
			return o
		}
		return e.expr(x.X)
	case *ast.IndexExpr:
		e.expr(x.Index)
		return e.expr(x.X)
	case *ast.SliceExpr:
		for _, b := range []ast.Expr{x.Low, x.High, x.Max} {
			if b != nil {
				e.expr(b)
			}
		}
		return e.expr(x.X)
	case *ast.StarExpr:
		return e.expr(x.X)
	case *ast.UnaryExpr:
		return e.expr(x.X)
	case *ast.BinaryExpr:
		a := e.expr(x.X)
		b := e.expr(x.Y)
		if a != "" {
			return a
		}
		return b
	case *ast.CallExpr:
		return e.call(x)
	case *ast.CompositeLit:
		var origin string
		for _, el := range x.Elts {
			var o string
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				o = e.expr(kv.Value)
			} else {
				o = e.expr(el)
			}
			if origin == "" {
				origin = o
			}
		}
		return origin
	case *ast.KeyValueExpr:
		return e.expr(x.Value)
	case *ast.TypeAssertExpr:
		return e.expr(x.X)
	case *ast.FuncLit:
		// A literal not attached to a cache insert: analyze its body
		// with the cache sink disabled.
		saved := e.cacheRet
		e.cacheRet = 0
		e.stmts(x.Body.List)
		e.cacheRet = saved
		return ""
	}
	return ""
}

// call handles sources (abstract ReadAt), sinks (cache inserts), and
// propagation through escape facts and builtins.
func (e *integrityEngine) call(call *ast.CallExpr) string {
	// Builtins first: copy propagates, append/conversion combine.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isBuiltin(e.pass.Info, id) {
		switch id.Name {
		case "copy":
			if len(call.Args) == 2 {
				if o := e.expr(call.Args[1]); o != "" {
					e.markUnverified(rootObjOf(e.pass.Info, call.Args[0]), o)
				}
				e.expr(call.Args[0])
			}
			return ""
		case "append":
			var origin string
			for _, a := range call.Args {
				if o := e.expr(a); origin == "" {
					origin = o
				}
			}
			return origin
		default:
			for _, a := range call.Args {
				e.expr(a)
			}
			return ""
		}
	}

	// Type conversion []byte(x) etc: propagate the operand.
	if tv, ok := e.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return e.expr(call.Args[0])
	}

	callee := calleeFunc(e.pass.Info, call)

	// Cache-insert sink: literals passed to GetOrLoad have their
	// return values inserted; direct byte args to cache mutators too.
	if callee != nil && e.isCacheInsert(callee, call) {
		for _, a := range call.Args {
			if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
				e.cacheRet++
				e.stmts(lit.Body.List)
				e.cacheRet--
				continue
			}
			o := e.expr(a)
			if o != "" && isByteishExpr(e.pass.Info, a) {
				e.reportf(a.Pos(), "unverified %s inserted into cache; verify integrity before caching", o)
			}
		}
		return ""
	}

	for _, a := range call.Args {
		e.expr(a)
	}

	// Source: ReadAt through an interface fills its buffer with
	// unverified storage bytes. Concrete ReadAt implementations (e.g.
	// *RangeReader) verify internally and are not sources.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "ReadAt" && len(call.Args) == 2 {
		if tv, ok := e.pass.Info.Types[sel.X]; ok && tv.Type != nil && types.IsInterface(tv.Type) {
			e.markUnverified(rootObjOf(e.pass.Info, call.Args[0]),
				storageOriginPrefix+" read via ReaderAt.ReadAt")
		}
	}

	if callee != nil {
		if f, ok := e.pass.Facts.ImportKey(FuncKey(callee), "integrity.escapes"); ok {
			ef := f.(*EscapesFact)
			if ef.Result {
				return fmt.Sprintf("%s (via %s)", ef.Origin, callee.Name())
			}
		}
	}
	return ""
}

// frameSource recognizes `f.Payload` on a wire Frame as a wire-class
// source.
func (e *integrityEngine) frameSource(sel *ast.SelectorExpr) string {
	if sel.Sel.Name != "Payload" {
		return ""
	}
	if namedTypeName(e.pass.Info, sel.X) == "Frame" {
		return wireOriginPrefix + " from frame payload"
	}
	return ""
}

// isCacheInsert recognizes calls that place bytes into a cache: a
// GetOrLoad-style loader, or Add/Put/Insert/Store on a *Cache* type.
func (e *integrityEngine) isCacheInsert(callee *types.Func, call *ast.CallExpr) bool {
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	if callee.Name() == "GetOrLoad" {
		return true
	}
	switch callee.Name() {
	case "Add", "Put", "Insert", "Store":
		return strings.Contains(derefTypeName(sig.Recv().Type()), "Cache")
	}
	return false
}

// ---- small type helpers ----

func isBlank(x ast.Expr) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	return ok && id.Name == "_"
}

func hasNonBlank(list []ast.Expr) bool {
	for _, x := range list {
		if !isBlank(x) {
			return true
		}
	}
	return false
}

// isByteishExpr reports whether x's static type is a byte slice (or
// named byte-slice type).
func isByteishExpr(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// derefTypeName returns the named type's name behind t (through one
// pointer), or "".
func derefTypeName(t types.Type) string {
	if named, ok := derefType(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// namedTypeName resolves the named type behind expression x (through
// pointers), or "".
func namedTypeName(info *types.Info, x ast.Expr) string {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return ""
	}
	return derefTypeName(tv.Type)
}
