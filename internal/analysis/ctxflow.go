package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxflow enforces the cancellation contracts the arcd serving layer
// will rely on:
//
//  1. an exported API whose synchronous flow blocks indefinitely
//     (plain channel send/receive, range over a channel, a Wait that
//     is not a local fork-join) must give callers a way out — a
//     context.Context or done-channel reachable through its
//     parameters or receiver;
//  2. a spawned goroutine must not loop forever with no cancellation
//     signal (no channel operation, select, return, or break in the
//     loop);
//  3. context.Context does not belong in struct fields — contexts
//     are call-scoped and must flow through parameters;
//  4. a function that takes a context must let its cancellation
//     reach the goroutines it spawns.
//
// The blocking set is deliberately narrower than lockorder's: select
// statements are excluded (a multi-case select normally encodes the
// cancellation path already) and interface I/O is excluded (Go I/O
// carries no context by design; callers bound it with deadlines).

// CtxBlockFact carries the unbounded blocking operations a function
// performs on its caller's goroutine, for propagation to exported
// entry points in dependent packages.
type CtxBlockFact struct {
	Ops []BlockSite `json:"ops"`
}

func (*CtxBlockFact) FactName() string { return "ctxflow.blocks" }

// maxCtxOps bounds the per-function op sample, mirroring panicfact.
const maxCtxOps = 6

func init() {
	RegisterFactType(func() Fact { return new(CtxBlockFact) })
	Register(&Analyzer{
		Name: "ctxflow",
		Doc: "cancellation contract violation: an exported API blocks with no context.Context or done-channel " +
			"for callers to cancel it, a goroutine loops forever with no cancellation signal, a context is " +
			"stored in a struct field, or a context-taking function spawns goroutines its cancellation cannot reach",
		Run: runCtxFlow,
	})
}

// ctxCollect is the synchronous-flow summary of one body: blocking
// operations and the calls whose callee facts must be merged.
type ctxCollect struct {
	ops   []BlockSite
	calls []*ast.CallExpr
}

// ctxSyncFlow walks the statements that run on the function's own
// goroutine: function literals, go/defer bodies are skipped, and so
// are select communications (an op inside a select has siblings that
// can unblock it).
func ctxSyncFlow(pass *Pass, top *ast.BlockStmt) *ctxCollect {
	c := &ctxCollect{}
	var walkStmt func(ast.Stmt)
	addOp := func(pos token.Pos, what string) {
		p := pass.Fset.Position(pos)
		c.ops = append(c.ops, BlockSite{File: p.Filename, Line: p.Line, Col: p.Column, What: what})
	}
	walkExpr := func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if root, path, ok := chainOf(pass.Info, n.X); ok &&
						localJoinReceive(pass.Info, top, root, path) {
						return true
					}
					addOp(n.Pos(), "channel receive")
				}
			case *ast.CallExpr:
				c.calls = append(c.calls, n)
				if what, ok := blockingCall(pass.Info, n); ok {
					switch what {
					case "sync.WaitGroup.Wait":
						if sel, selOK := ast.Unparen(n.Fun).(*ast.SelectorExpr); selOK {
							if root, path, chOK := chainOf(pass.Info, sel.X); chOK &&
								localForkJoinWait(pass.Info, top, root, path) {
								return true
							}
						}
						addOp(n.Pos(), what)
					case "sync.Cond.Wait":
						addOp(n.Pos(), what)
					}
					// Interface I/O and io helpers: excluded here.
				}
			}
			return true
		})
	}
	walkStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.BlockStmt:
			for _, st := range s.List {
				walkStmt(st)
			}
		case *ast.ExprStmt:
			walkExpr(s.X)
		case *ast.AssignStmt:
			for _, e := range s.Rhs {
				walkExpr(e)
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, e := range vs.Values {
							walkExpr(e)
						}
					}
				}
			}
		case *ast.SendStmt:
			walkExpr(s.Value)
			addOp(s.Pos(), "channel send")
		case *ast.ReturnStmt:
			for _, e := range s.Results {
				walkExpr(e)
			}
		case *ast.IfStmt:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			walkExpr(s.Cond)
			walkStmt(s.Body)
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *ast.ForStmt:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			walkExpr(s.Cond)
			walkStmt(s.Body)
			if s.Post != nil {
				walkStmt(s.Post)
			}
		case *ast.RangeStmt:
			walkExpr(s.X)
			if tv, ok := pass.Info.Types[s.X]; ok && isChanType(tv.Type) {
				addOp(s.Pos(), "range over channel")
			}
			walkStmt(s.Body)
		case *ast.SwitchStmt:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			walkExpr(s.Tag)
			walkStmt(s.Body)
		case *ast.TypeSwitchStmt:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			walkStmt(s.Body)
		case *ast.CaseClause:
			for _, st := range s.Body {
				walkStmt(st)
			}
		case *ast.SelectStmt:
			// Only the case bodies are sync flow; the communications
			// themselves have alternatives.
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					for _, st := range cc.Body {
						walkStmt(st)
					}
				}
			}
		case *ast.LabeledStmt:
			walkStmt(s.Stmt)
		case *ast.IncDecStmt:
			walkExpr(s.X)
		case *ast.GoStmt, *ast.DeferStmt:
			// Not this goroutine's flow; rules 2 and 4 inspect them.
		}
	}
	for _, st := range top.List {
		walkStmt(st)
	}
	return c
}

// funcCarriesCancel reports whether callers of fn hold a cancellation
// affordance: a context or channel reachable through a parameter or
// the receiver.
func funcCarriesCancel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() != nil && carriesCancel(sig.Recv().Type(), 0) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if carriesCancel(sig.Params().At(i).Type(), 0) {
			return true
		}
	}
	return false
}

func runCtxFlow(pass *Pass) error {
	targets := nonTestDecls(pass)

	// Fixpoint on blocking-op facts. Ops of a callee whose receiver
	// carries a cancellation affordance are not propagated: that
	// callee's blocking is governed by its own type's protocol (e.g.
	// a pipeline's internal drain), so wrappers above it are not
	// holding their caller hostage.
	flows := make([]*ctxCollect, len(targets))
	for i, t := range targets {
		flows[i] = ctxSyncFlow(pass, t.decl.Body)
	}
	for round := 0; round < 6; round++ {
		changed := false
		for i, t := range targets {
			merged := map[string]BlockSite{}
			for _, op := range flows[i].ops {
				merged[op.key()] = op
			}
			for _, call := range flows[i].calls {
				callee := calleeFunc(pass.Info, call)
				if callee == nil || funcCarriesCancel(callee) {
					continue
				}
				f, ok := pass.Facts.Import(callee, "ctxflow.blocks")
				if !ok {
					continue
				}
				mergeBlockSites(merged, FuncKey(callee), f.(*CtxBlockFact).Ops)
			}
			present := len(merged) > 0
			fact := &CtxBlockFact{}
			if present {
				for _, op := range merged {
					fact.Ops = append(fact.Ops, op)
				}
				sortBlockSites(fact.Ops)
				if len(fact.Ops) > maxCtxOps {
					fact.Ops = fact.Ops[:maxCtxOps]
				}
			}
			if exportOrWithdraw(pass.Facts, FuncKey(t.fn), present, fact) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Rule 1: exported, affordance-free, blocking.
	reported := map[string]bool{}
	for _, t := range targets {
		if !t.fn.Exported() || funcCarriesCancel(t.fn) {
			continue
		}
		f, ok := pass.Facts.Import(t.fn, "ctxflow.blocks")
		if !ok {
			continue
		}
		for _, op := range f.(*CtxBlockFact).Ops {
			if reported[op.key()] {
				continue
			}
			reported[op.key()] = true
			via := ""
			if op.Via != "" {
				via = " (via " + op.Via + ")"
			}
			pass.ReportAt(token.Position{Filename: op.File, Line: op.Line, Column: op.Col},
				"exported %s blocks on %s%s with no cancellation affordance: callers cannot abandon the call — thread a context.Context or done-channel",
				t.fn.Name(), op.What, via)
		}
	}

	// Rules 2 and 4: spawned goroutines.
	for _, t := range targets {
		checkSpawns(pass, t)
	}

	// Rule 3: contexts stored in structs.
	for _, file := range pass.Files {
		if isTestFilename(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if tv, ok := pass.Info.Types[fld.Type]; ok && isContextType(tv.Type) {
					pass.Reportf(fld.Pos(), "context.Context stored in a struct field: contexts are call-scoped — accept one per call instead of freezing a lifetime into the value")
				}
			}
			return true
		})
	}
	return nil
}

// checkSpawns applies the goroutine rules to one declaration: an
// uncancellable infinite loop in a spawned body (rule 2), and a
// context parameter whose cancellation never reaches the spawned
// work (rule 4).
func checkSpawns(pass *Pass, t declTarget) {
	sig := t.fn.Type().(*types.Signature)
	var ctxParam types.Object
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			ctxParam = sig.Params().At(i)
			break
		}
	}
	ast.Inspect(t.decl.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		if loop := uncancellableLoop(pass, lit.Body); loop != nil {
			pass.Reportf(loop.Pos(), "goroutine loops forever with no cancellation signal: no channel operation, select, return, or break can stop it — give it a done-channel or context")
		}
		if ctxParam != nil && !usesObject(pass.Info, lit.Body, ctxParam) && !hasChanOp(pass.Info, lit.Body) {
			pass.Reportf(g.Pos(), "cancellation does not reach this goroutine: %s's context is never consulted by the spawned work and it watches no channel", t.fn.Name())
		}
		return true
	})
}

// uncancellableLoop finds a `for {}`-style loop directly in body (not
// in nested literals) containing no exit or signal: no channel op,
// select, return, or break.
func uncancellableLoop(pass *Pass, body *ast.BlockStmt) *ast.ForStmt {
	var found *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		exits := false
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SendStmt, *ast.SelectStmt, *ast.ReturnStmt:
				exits = true
			case *ast.BranchStmt:
				if m.Tok == token.BREAK || m.Tok == token.GOTO {
					exits = true
				}
			case *ast.UnaryExpr:
				if m.Op == token.ARROW {
					exits = true
				}
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[m.X]; ok && isChanType(tv.Type) {
					exits = true
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok && id.Name == "panic" && isBuiltin(pass.Info, id) {
					exits = true
				}
			}
			return !exits
		})
		if !exits {
			found = loop
		}
		return true
	})
	return found
}

func usesObject(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

func hasChanOp(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && isChanType(tv.Type) {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && isBuiltin(info, id) {
				found = true
			}
		}
		return !found
	})
	return found
}
