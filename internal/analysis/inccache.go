package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// The incremental cache stores, per package directory, everything a
// later run needs to skip re-analyzing it: raw diagnostics, the fact
// journal, the call-graph subgraph, and the waiver directives. An
// entry is keyed by a content hash that folds in the directory's own
// sources and — through the strongly-connected condensation of the
// dir-level import graph — every module-local directory it depends
// on, so an edit invalidates exactly the edited package and its
// transitive dependents.

// cacheSchema versions the entry format; bump on any shape change.
const cacheSchema = "arcvet-cache-v1"

// ---- directory scanning ----

// dirInfo is the pre-typecheck scan of one package directory: which
// buildable files it holds (with content digests) and which
// module-local directories its imports reach.
type dirInfo struct {
	Dir   string // absolute
	Rel   string // module-relative, slash-separated ("." for the root)
	Files []fileDigest
	// DepDirs are the absolute directories of module-local imports
	// across all buildable files (tests included — external test
	// imports pull their targets into this dir's key).
	DepDirs []string
}

type fileDigest struct {
	Name string `json:"name"`
	Sum  string `json:"sum"`
}

// scanDirs digests every requested directory plus the transitive
// closure of module-local import targets: a dependency outside the
// analyzed set still shapes typechecking, so its content belongs in
// the dependents' keys.
func scanDirs(loader *Loader, dirs []string) (map[string]*dirInfo, error) {
	infos := map[string]*dirInfo{}
	queue := append([]string(nil), dirs...)
	for len(queue) > 0 {
		dir := queue[0]
		queue = queue[1:]
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		if _, done := infos[abs]; done {
			continue
		}
		info, err := scanDir(loader, abs)
		if err != nil {
			return nil, err
		}
		infos[abs] = info
		queue = append(queue, info.DepDirs...)
	}
	return infos, nil
}

// scanDir digests one directory, applying the same file filters as
// the loader (name-based platform rules and //go:build evaluation) so
// the key covers exactly what analysis would read.
func scanDir(loader *Loader, abs string) (*dirInfo, error) {
	rel, err := filepath.Rel(loader.RootDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("%s is outside module %s", abs, loader.ModulePath)
	}
	info := &dirInfo{Dir: abs, Rel: filepath.ToSlash(rel)}
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		if goodOSArchFile(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	depDirs := map[string]bool{}
	fset := token.NewFileSet()
	for _, name := range names {
		path := filepath.Join(abs, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		// ParseComments keeps //go:build lines visible to the
		// constraint evaluator in import-only mode.
		file, err := parser.ParseFile(fset, path, data, parser.ImportsOnly|parser.ParseComments)
		if err != nil {
			// Unparseable files still belong in the key: their content
			// decides whether the live run errors.
			sum := sha256.Sum256(data)
			info.Files = append(info.Files, fileDigest{Name: name, Sum: hex.EncodeToString(sum[:])})
			continue
		}
		if !buildConstraintsSatisfied(file) {
			continue
		}
		sum := sha256.Sum256(data)
		info.Files = append(info.Files, fileDigest{Name: name, Sum: hex.EncodeToString(sum[:])})
		for _, imp := range file.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == loader.ModulePath || strings.HasPrefix(p, loader.ModulePath+"/") {
				sub := strings.TrimPrefix(strings.TrimPrefix(p, loader.ModulePath), "/")
				depDirs[filepath.Join(loader.RootDir, filepath.FromSlash(sub))] = true
			}
		}
	}
	for d := range depDirs {
		if d != abs {
			info.DepDirs = append(info.DepDirs, d)
		}
	}
	sort.Strings(info.DepDirs)
	return info, nil
}

// ---- key derivation ----

// cacheHeader hashes everything that invalidates the whole cache at
// once: the entry schema, the toolchain and platform, the analyzer
// set, and go.mod (module path and language version shape loading).
func cacheHeader(loader *Loader, analyzers []*Analyzer) string {
	h := sha256.New()
	_, _ = fmt.Fprintln(h, cacheSchema)
	_, _ = fmt.Fprintln(h, runtime.Version(), runtime.GOOS, runtime.GOARCH)
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	_, _ = fmt.Fprintln(h, strings.Join(names, ","))
	if data, err := os.ReadFile(filepath.Join(loader.RootDir, "go.mod")); err == nil {
		_, _ = h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// computeDirKeys derives one content key per scanned directory. Keys
// are computed bottom-up over the strongly-connected condensation of
// the dir import graph (external test files can create dir-level
// cycles), so each key transitively covers every module-local source
// that can influence the directory's analysis.
func computeDirKeys(header string, infos map[string]*dirInfo) map[string]string {
	dirs := make([]string, 0, len(infos))
	for d := range infos {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	comps := tarjanSCC(dirs, func(d string) []string { return infos[d].DepDirs })

	keys := map[string]string{}
	sccKey := map[int]string{}
	comp := map[string]int{}
	for i, members := range comps {
		for _, d := range members {
			comp[d] = i
		}
	}
	// tarjanSCC emits components in reverse topological order:
	// dependencies complete before their dependents.
	for i, members := range comps {
		sort.Strings(members)
		h := sha256.New()
		_, _ = fmt.Fprintln(h, header)
		depKeys := map[string]bool{}
		for _, d := range members {
			info := infos[d]
			_, _ = fmt.Fprintln(h, info.Rel)
			for _, f := range info.Files {
				_, _ = fmt.Fprintln(h, f.Name, f.Sum)
			}
			for _, dep := range info.DepDirs {
				if comp[dep] != i {
					depKeys[sccKey[comp[dep]]] = true
				}
			}
		}
		sorted := make([]string, 0, len(depKeys))
		for k := range depKeys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			_, _ = fmt.Fprintln(h, k)
		}
		sccKey[i] = hex.EncodeToString(h.Sum(nil))
		for _, d := range members {
			dh := sha256.Sum256([]byte(sccKey[i] + "\x00" + infos[d].Rel))
			keys[d] = hex.EncodeToString(dh[:])
		}
	}
	return keys
}

// tarjanSCC returns the strongly connected components of the graph
// (nodes, deps) in reverse topological order of the condensation.
func tarjanSCC(nodes []string, deps func(string) []string) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var comps [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range deps(v) {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			comps = append(comps, members)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comps
}

// ---- on-disk entries ----

// cacheEntry is one directory's serialized analysis.
type cacheEntry struct {
	Schema string       `json:"schema"`
	Key    string       `json:"key"`
	Units  []cachedUnit `json:"units"`
}

// cachedUnit replays one analysis unit without loading its sources.
type cachedUnit struct {
	Path    string   `json:"path"`
	Imports []string `json:"imports,omitempty"`
	// Diags are the unit's raw analyzer findings, pre-suppression;
	// BadDirectives are malformed-waiver diagnostics, which bypass
	// the suppression filter.
	Diags         []Diagnostic `json:"diags,omitempty"`
	BadDirectives []Diagnostic `json:"bad_directives,omitempty"`
	FactOps       []factOp     `json:"fact_ops,omitempty"`
	Nodes         []cachedNode `json:"nodes,omitempty"`
	Waivers       []suppRecord `json:"waivers,omitempty"`
	Spans         []spanRecord `json:"spans,omitempty"`
}

// cachedNode is the serializable slice of a CGNode.
type cachedNode struct {
	Key        string   `json:"key"`
	HasDecl    bool     `json:"has_decl,omitempty"`
	Name       string   `json:"name,omitempty"`
	Exported   bool     `json:"exported,omitempty"`
	IsMethod   bool     `json:"is_method,omitempty"`
	TestFile   bool     `json:"test_file,omitempty"`
	File       string   `json:"file,omitempty"`
	Line       int      `json:"line,omitempty"`
	Col        int      `json:"col,omitempty"`
	HasRecover bool     `json:"has_recover,omitempty"`
	Callees    []string `json:"callees,omitempty"`
}

// suppRecord is one //arcvet:ignore directive occurrence.
type suppRecord struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
}

// spanRecord is one multi-line statement span, for waiver anchoring.
type spanRecord struct {
	File  string `json:"file"`
	Start int    `json:"start"`
	End   int    `json:"end"`
}

// entryPath maps a module-relative dir to its entry file.
func entryPath(cacheDir, rel string) string {
	name := strings.ReplaceAll(rel, "/", "__")
	if rel == "." {
		name = "_root"
	}
	return filepath.Join(cacheDir, name+".json")
}

// loadCacheEntry returns the entry for rel when it exists and its key
// matches; any mismatch or decode error reads as a miss.
func loadCacheEntry(cacheDir, rel, key string) *cacheEntry {
	data, err := os.ReadFile(entryPath(cacheDir, rel))
	if err != nil {
		return nil
	}
	var ent cacheEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		return nil
	}
	if ent.Schema != cacheSchema || ent.Key != key {
		return nil
	}
	return &ent
}

// writeCacheEntry persists a directory's entry atomically (temp file
// plus rename), so a crashed run never leaves a torn entry behind.
func writeCacheEntry(cacheDir, rel, key string, units []cachedUnit) error {
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(cacheEntry{Schema: cacheSchema, Key: key, Units: units})
	if err != nil {
		return err
	}
	path := entryPath(cacheDir, rel)
	tmp, err := os.CreateTemp(cacheDir, ".entry-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ---- graph snapshot and replay ----

// snapshotGraph serializes a per-unit call graph (pre-finalize: edges
// still live in the internal map).
func snapshotGraph(ug *CallGraph) []cachedNode {
	var out []cachedNode
	for _, key := range ug.Keys() {
		n := ug.nodes[key]
		cn := cachedNode{
			Key:        key,
			HasDecl:    n.HasDecl,
			Name:       n.Name,
			Exported:   n.Exported,
			IsMethod:   n.IsMethod,
			TestFile:   n.TestFile,
			HasRecover: n.HasRecover,
		}
		if n.HasDecl {
			cn.File, cn.Line, cn.Col = n.Position.Filename, n.Position.Line, n.Position.Column
		}
		for c := range n.callees {
			cn.Callees = append(cn.Callees, c)
		}
		sort.Strings(cn.Callees)
		out = append(out, cn)
	}
	return out
}

// mergeCached folds a replayed subgraph into g.
func (g *CallGraph) mergeCached(nodes []cachedNode) {
	for _, cn := range nodes {
		n := g.node(cn.Key)
		if cn.HasDecl {
			n.HasDecl = true
			n.Name = cn.Name
			n.Exported = cn.Exported
			n.IsMethod = cn.IsMethod
			n.TestFile = cn.TestFile
			n.Position = token.Position{Filename: cn.File, Line: cn.Line, Column: cn.Col}
			n.HasRecover = cn.HasRecover
		}
		for _, c := range cn.Callees {
			g.edge(cn.Key, c)
		}
	}
}

// mergeLive folds a freshly built per-unit graph into g, carrying the
// live-only fields (Fn, Decl) alongside the serializable metadata.
func (g *CallGraph) mergeLive(ug *CallGraph) {
	for key, un := range ug.nodes {
		n := g.node(key)
		if un.HasDecl {
			n.Fn, n.Decl, n.Pos = un.Fn, un.Decl, un.Pos
			n.HasDecl = true
			n.Name = un.Name
			n.Exported = un.Exported
			n.IsMethod = un.IsMethod
			n.TestFile = un.TestFile
			n.Position = un.Position
			n.HasRecover = un.HasRecover
		}
		if n.Fn == nil && un.Fn != nil {
			n.Fn = un.Fn
		}
		for c := range un.callees {
			g.edge(key, c)
		}
	}
}
