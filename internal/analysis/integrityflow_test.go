package analysis_test

import (
	"testing"
)

// TestIntegrityFlow seeds the three contract violations integrityflow
// exists to catch — an unverified escape through an exported return, a
// discarded repair report, and a cache insert ahead of any CRC — plus
// the sanitizer paths that must stay quiet.
func TestIntegrityFlow(t *testing.T) {
	files := map[string]string{"p/p.go": `package p

import (
	"errors"
	"hash/crc32"
	"io"
)

// ---- exported-return sink ----

func ReadRaw(r io.ReaderAt) ([]byte, error) {
	buf := make([]byte, 16)
	if _, err := r.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil // want integrityflow
}

func ReadVerified(r io.ReaderAt, sum uint32) ([]byte, error) {
	buf := make([]byte, 16)
	if _, err := r.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(buf) != sum {
		return nil, errors.New("checksum mismatch")
	}
	return buf, nil
}

func ReadDecoded(r io.ReaderAt) ([]byte, error) {
	raw := make([]byte, 16)
	if _, err := r.ReadAt(raw, 0); err != nil {
		return nil, err
	}
	out, err := decodePayload(raw)
	if err != nil {
		return nil, err
	}
	return out, nil
}

func decodePayload(b []byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, errors.New("empty")
	}
	return b, nil
}

// ---- fact propagation across helpers ----

func fetchRaw(r io.ReaderAt) []byte {
	buf := make([]byte, 8)
	if _, err := r.ReadAt(buf, 0); err != nil {
		return nil
	}
	return buf
}

func Fetch(r io.ReaderAt) []byte {
	return fetchRaw(r) // want integrityflow
}

func checkCRC(b []byte, sum uint32) error {
	if crc32.ChecksumIEEE(b) != sum {
		return errors.New("checksum mismatch")
	}
	return nil
}

func ReadChecked(r io.ReaderAt, sum uint32) ([]byte, error) {
	buf := make([]byte, 16)
	if _, err := r.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	if err := checkCRC(buf, sum); err != nil {
		return nil, err
	}
	return buf, nil
}

// ---- discarded verification results ----

type Report struct{ Corrected int }

func DecodeTo(dst, src []byte) ([]byte, Report, error) {
	copy(dst, src)
	return dst, Report{}, nil
}

func Restore(dst, src []byte) ([]byte, error) {
	out, _, err := DecodeTo(dst, src) // want integrityflow
	if err != nil {
		return nil, err
	}
	return out, nil
}

func Restored(dst, src []byte) ([]byte, Report, error) {
	return DecodeTo(dst, src)
}

func parsePair(b []byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, errors.New("empty")
	}
	return b, nil
}

func UseParsed(b []byte) []byte {
	out, _ := parsePair(b) // want integrityflow
	return out
}

// ---- cache-insert sink ----

type blockCache struct{}

func (c *blockCache) GetOrLoad(k string, load func() ([]byte, error)) ([]byte, error) {
	return load()
}

func (c *blockCache) Put(k string, v []byte) {}

func CachedRead(c *blockCache, r io.ReaderAt) ([]byte, error) {
	return c.GetOrLoad("k", func() ([]byte, error) {
		buf := make([]byte, 8)
		if _, err := r.ReadAt(buf, 0); err != nil {
			return nil, err
		}
		return buf, nil // want integrityflow
	})
}

func StoreRaw(c *blockCache, r io.ReaderAt) error {
	buf := make([]byte, 8)
	if _, err := r.ReadAt(buf, 0); err != nil {
		return err
	}
	c.Put("k", buf) // want integrityflow
	return nil
}

func CachedChecked(c *blockCache, r io.ReaderAt, sum uint32) ([]byte, error) {
	return c.GetOrLoad("k", func() ([]byte, error) {
		buf := make([]byte, 8)
		if _, err := r.ReadAt(buf, 0); err != nil {
			return nil, err
		}
		if crc32.ChecksumIEEE(buf) != sum {
			return nil, errors.New("checksum mismatch")
		}
		return buf, nil
	})
}

// ---- response-payload sink; wire class ----

type Frame struct{ Payload []byte }

type rangeResponse struct{ payload []byte }

func buildResponse(f *Frame, resp *rangeResponse) {
	resp.payload = f.Payload // want integrityflow
}

func RequestPayload(f *Frame) []byte {
	return f.Payload // wire bytes may cross an exported API pre-decode
}
`}
	root := writeFixture(t, files)
	checkMarkers(t, root, files, analyze(t, root))
}
