package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// SARIF (Static Analysis Results Interchange Format) rendering for
// arcvet findings. The emitted document targets SARIF 2.1.0 with the
// minimal shape GitHub code scanning ingests: one run, one tool
// driver, one rule per analyzer that produced a finding, and one
// result per diagnostic with a single physical location. Paths are
// rendered relative to root (the module root arcvet ran from) so the
// upload matches the repository layout regardless of the checkout
// directory.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log. Rule metadata
// comes from the registered analyzer docs; an analyzer that produced
// no findings is omitted from the rules array to keep uploads small.
// Diagnostics are assumed pre-sorted (Run's contract), which makes
// the output deterministic for golden tests.
func WriteSARIF(w io.Writer, root string, diags []Diagnostic) error {
	docs := make(map[string]string)
	for _, a := range All() {
		docs[a.Name] = a.Doc
	}

	used := make(map[string]bool)
	for _, d := range diags {
		used[d.Analyzer] = true
	}
	names := make([]string, 0, len(used))
	for name := range used {
		names = append(names, name)
	}
	sort.Strings(names)

	rules := make([]sarifRule, 0, len(names))
	index := make(map[string]int, len(names))
	for i, name := range names {
		index[name] = i
		doc := docs[name]
		if doc == "" {
			doc = name
		}
		rules = append(rules, sarifRule{
			ID:               name,
			ShortDescription: sarifMessage{Text: doc},
		})
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: index[d.Analyzer],
			Level:     "warning",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "arcvet",
				Rules: rules,
			}},
			Results: results,
		}},
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
