package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	Register(&Analyzer{
		Name: "mathbits",
		Doc: "reports value-changing integer conversions (sign flips and " +
			"narrowing) in the quantizer/negabinary/codec packages, where an " +
			"unguarded overflow silently corrupts reconstructed data",
		// The bug class lives where floats are quantized to ints and
		// ints are re-mapped bitwise: SZ's quantizer, ZFP's negabinary
		// block coder, and the Huffman symbol tables.
		Packages: []string{"internal/sz", "internal/zfp", "internal/huffman"},
		Run:      runMathBits,
	})
}

func runMathBits(pass *Pass) error {
	for _, file := range pass.Files {
		shiftCounts := collectShiftCounts(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			// A conversion feeding a shift count is exempt: Go range-
			// checks constant counts, and a negative variable count
			// yields an oversized shift the bitwidth class covers.
			if shiftCounts[call] {
				return true
			}
			// A conversion is a CallExpr whose Fun denotes a type.
			tv, ok := pass.Info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst, ok := basicInt(tv.Type)
			if !ok {
				return true
			}
			argTV, ok := pass.Info.Types[call.Args[0]]
			if !ok || argTV.Type == nil || argTV.Value != nil {
				// Constant operands are range-checked at compile time.
				return true
			}
			src, ok := basicInt(argTV.Type)
			if !ok {
				return true
			}
			srcBits, dstBits := intBits(src), intBits(dst)
			switch {
			case isSigned(src) && !isSigned(dst):
				// len/cap are non-negative by definition, so widening
				// them to a 64-bit unsigned type cannot change value.
				if dstBits == 64 && isLenOrCap(pass.Info, call.Args[0]) {
					return true
				}
				pass.Reportf(call.Pos(), "%s(%s) wraps negative values to huge %s", dst.Name(), src.Name(), dst.Name())
			case !isSigned(src) && isSigned(dst) && srcBits >= dstBits:
				pass.Reportf(call.Pos(), "%s(%s) overflows when the value exceeds %s's range", dst.Name(), src.Name(), dst.Name())
			case isSigned(src) == isSigned(dst) && dstBits < srcBits:
				pass.Reportf(call.Pos(), "narrowing %s -> %s truncates without a guard", src.Name(), dst.Name())
			}
			return true
		})
	}
	return nil
}

// collectShiftCounts gathers the expressions used as shift counts in
// a file so conversions there can be exempted.
func collectShiftCounts(file *ast.File) map[ast.Expr]bool {
	counts := map[ast.Expr]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if x.Op == token.SHL || x.Op == token.SHR {
				counts[ast.Unparen(x.Y)] = true
			}
		case *ast.AssignStmt:
			if x.Tok == token.SHL_ASSIGN || x.Tok == token.SHR_ASSIGN {
				counts[ast.Unparen(x.Rhs[0])] = true
			}
		}
		return true
	})
	return counts
}

// isLenOrCap reports whether e is a builtin len or cap call.
func isLenOrCap(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || (id.Name != "len" && id.Name != "cap") {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
